(* Failure semantics of the Par fork-join pool: deterministic exception
   choice, degenerate inputs, spawn-failure fallback (exercised through
   the fault-injection hook), and governor-driven sibling
   cancellation. *)

open Helpers
module Par = Xq_par.Par
module Governor = Xq_governor.Governor
module Xerror = Xq_xdm.Xerror

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

let with_faults ~seed ~rate f =
  Governor.set_faults ~seed ~rate;
  Fun.protect ~finally:Governor.clear_faults f

let run_tasks_tests =
  [
    test "empty task array is a no-op" (fun () -> Par.run_tasks [||]);
    test "single task runs on the caller" (fun () ->
        let hit = ref false in
        Par.run_tasks [| (fun () -> hit := true) |];
        check_bool "ran" true !hit);
    test "a raising task re-raises after all siblings complete" (fun () ->
        let done_ = Array.make 4 false in
        (match
           Par.run_tasks
             (Array.init 4 (fun i ->
                  fun () ->
                    if i = 2 then raise (Boom 2) else done_.(i) <- true))
         with
        | () -> Alcotest.fail "expected Boom"
        | exception Boom 2 -> ()
        | exception e -> raise e);
        (* every non-raising task ran to completion: domains were joined,
           none abandoned *)
        check_bool "task 0 completed" true done_.(0);
        check_bool "task 1 completed" true done_.(1);
        check_bool "task 3 completed" true done_.(3));
    test "several raising tasks: the lowest-indexed exception wins" (fun () ->
        match
          Par.run_tasks (Array.init 6 (fun i -> fun () -> raise (Boom i)))
        with
        | () -> Alcotest.fail "expected Boom"
        | exception Boom 0 -> ()
        | exception Boom i -> Alcotest.failf "expected Boom 0, got Boom %d" i);
    test "map exception matches sequential left-to-right order" (fun () ->
        let src = Array.init 100 (fun i -> i) in
        match
          Par.map ~degree:4 ~min_chunk:1
            (fun i -> if i >= 37 then raise (Boom i) else i)
            src
        with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom 37 -> ()
        | exception Boom i -> Alcotest.failf "expected Boom 37, got Boom %d" i);
    test "map of the empty array" (fun () ->
        check_int "length" 0 (Array.length (Par.map ~degree:4 succ [||])));
    test "map of a 1-element array" (fun () ->
        Alcotest.(check (array int))
          "mapped" [| 2 |]
          (Par.map ~degree:4 ~min_chunk:1 succ [| 1 |]));
  ]

let fallback_tests =
  [
    test "spawn faults at rate 1.0 degrade to sequential, same output"
      (fun () ->
        let src = Array.init 1000 (fun i -> i) in
        let expected = Array.map (fun i -> i * i) src in
        with_faults ~seed:1 ~rate:1.0 (fun () ->
            Alcotest.(check (array int))
              "map" expected
              (Par.map ~degree:4 ~min_chunk:1 (fun i -> i * i) src);
            let a = Array.init 1000 (fun i -> (i * 7919) mod 1000) in
            let b = Array.copy a in
            Par.sort ~degree:4 ~min_chunk:8 compare a;
            Array.stable_sort compare b;
            Alcotest.(check (array int)) "sort" b a));
    test "spawn faults under a raising task still pick the first error"
      (fun () ->
        with_faults ~seed:2 ~rate:1.0 (fun () ->
            match
              Par.run_tasks
                (Array.init 4 (fun i -> fun () -> raise (Boom i)))
            with
            | () -> Alcotest.fail "expected Boom"
            | exception Boom 0 -> ()
            | exception Boom i ->
              Alcotest.failf "expected Boom 0, got Boom %d" i));
    test "partial spawn faults (rate 0.5) keep map output intact" (fun () ->
        let src = Array.init 500 string_of_int in
        let expected = Array.map (fun s -> s ^ "!") src in
        for seed = 0 to 9 do
          with_faults ~seed ~rate:0.5 (fun () ->
              Alcotest.(check (array string))
                (Printf.sprintf "seed %d" seed)
                expected
                (Par.map ~degree:4 ~min_chunk:1 (fun s -> s ^ "!") src))
        done);
  ]

let cancellation_tests =
  [
    test "a failing worker cancels ticking siblings via the governor"
      (fun () ->
        let g = Governor.create () in
        Governor.with_governor g (fun () ->
            let sibling_cancelled = ref false in
            (match
               Par.run_tasks
                 [|
                   (fun () ->
                     (* ticks until the sibling's failure marks an abort;
                        time-bounded so a missed cancellation fails the
                        test instead of hanging it *)
                     let deadline = Unix.gettimeofday () +. 10.0 in
                     try
                       while Unix.gettimeofday () < deadline do
                         Governor.tick ()
                       done
                     with
                     | Xerror.Error (Xerror.XQENG0004, _) as e ->
                       sibling_cancelled := true;
                       raise e);
                   (fun () -> raise (Boom 1));
                 |]
             with
            | () -> Alcotest.fail "expected Boom"
            | exception Boom 1 -> ()
            | exception e ->
              Alcotest.failf "expected Boom 1, got %s" (Printexc.to_string e));
            check_bool "sibling observed the cancellation" true
              !sibling_cancelled;
            (* the abort marks were released: the governor is usable again *)
            check_int "no pending aborts" 0 (Governor.pending_aborts g);
            Governor.tick ()));
    test "explicit cancel trips XQENG0004 within one stride of ticks"
      (fun () ->
        let g = Governor.create () in
        Governor.with_governor g (fun () ->
            Governor.tick ();
            Governor.cancel g;
            match
              (* the cancellation flag is read at stride boundaries *)
              for _ = 1 to 128 do
                Governor.tick ()
              done
            with
            | () -> Alcotest.fail "expected XQENG0004"
            | exception Xerror.Error (Xerror.XQENG0004, _) -> ()));
  ]

let suites =
  [
    ("par.run-tasks", run_tasks_tests);
    ("par.fallback", fallback_tests);
    ("par.cancellation", cancellation_tests);
  ]
