(* The differential fuzzing subsystem itself: generator round-trips,
   in-process differential sweeps over the base configurations, shrinker
   minimization against the injected test-only engine bug, and the
   xq_fuzz CLI's exit-code taxonomy and --help golden. *)

module Qgen = Xq_qgen.Qgen
module Fuzz = Xq_fuzzer.Fuzz

let parse q = Xq_lang.Parser.parse_query q

(* --- generator properties ---------------------------------------------- *)

let roundtrip_sweep () =
  for seed = 0 to 199 do
    let case = Qgen.generate seed in
    match Qgen.round_trips case.query with
    | Ok () -> ()
    | Error _ ->
      Alcotest.failf "seed %d does not round-trip:\n%s" seed
        (Qgen.query_text case.query)
  done

let generator_deterministic () =
  let a = Qgen.generate 42 and b = Qgen.generate 42 in
  Alcotest.(check bool) "same query" true (a.query = b.query);
  Alcotest.(check string) "same doc" a.doc b.doc

let docs_parse () =
  for seed = 0 to 199 do
    let case = Qgen.generate seed in
    ignore (Xq_xml.Xml_parse.parse case.doc)
  done

(* --- differential sweep (in-process) ------------------------------------ *)

let differential_sweep () =
  for seed = 0 to 119 do
    let case = Qgen.generate seed in
    match
      Fuzz.check_case ~configs:Fuzz.base_configs ~doc:case.doc case.query
    with
    | Fuzz.Pass n ->
      Alcotest.(check int) "all configs ran" (List.length Fuzz.base_configs) n
    | Fuzz.Oracle_unsupported what ->
      Alcotest.failf "seed %d: oracle unsupported (%s)" seed what
    | Fuzz.Roundtrip_failure -> Alcotest.failf "seed %d: round-trip" seed
    | Fuzz.Divergence { config; _ } ->
      Alcotest.failf "seed %d diverges under %s:\n%s" seed
        (Fuzz.config_label config)
        (Qgen.query_text case.query)
  done

let sampled_configs_deterministic () =
  let a = Fuzz.sampled_configs ~seed:7 and b = Fuzz.sampled_configs ~seed:7 in
  Alcotest.(check (list string)) "same matrix"
    (List.map Fuzz.config_label a)
    (List.map Fuzz.config_label b);
  Alcotest.(check int) "base + three sampled" 11 (List.length a)

(* --- order pinning and agreement ----------------------------------------- *)

let pinned_order_units () =
  let check label expected text =
    Alcotest.(check bool) label expected (Fuzz.pinned_order (parse text))
  in
  check "no group by is pinned" true "for $i in /data/item return $i";
  check "grouped without trailing order by is unpinned" false
    "for $i in /data/item group by $i/@k into $k return $k";
  check "trailing order by pins" true
    "for $i in /data/item group by $i/@k into $k order by fn:string($k) \
     return $k";
  check "order by before group by does not pin" false
    "for $i in /data/item order by $i/@k group by $i/@k into $k return $k";
  check "non-FLWOR body is pinned" true "1 + 2"

let outcomes_agree_units () =
  let out xs = Fuzz.Output xs in
  Alcotest.(check bool) "pinned: order matters" false
    (Fuzz.outcomes_agree ~pinned:true (out [ "a"; "b" ]) (out [ "b"; "a" ]));
  Alcotest.(check bool) "unpinned: multiset compare" true
    (Fuzz.outcomes_agree ~pinned:false (out [ "a"; "b" ]) (out [ "b"; "a" ]));
  Alcotest.(check bool) "unpinned: multiplicity matters" false
    (Fuzz.outcomes_agree ~pinned:false (out [ "a"; "a" ]) (out [ "a" ]));
  Alcotest.(check bool) "same error code agrees" true
    (Fuzz.outcomes_agree ~pinned:true (Fuzz.Error_code "FOAR0001")
       (Fuzz.Error_code "FOAR0001"));
  Alcotest.(check bool) "error vs output disagrees" false
    (Fuzz.outcomes_agree ~pinned:false (Fuzz.Error_code "FOAR0001") (out []))

(* --- the shrinker minimizes the injected bug ----------------------------- *)

let line_count s =
  String.split_on_char '\n' (String.trim s) |> List.length

let shrinker_minimizes () =
  (* seed 100 generates an 11-line query; with the injected drop-last-item
     defect the shrinker must bring the reproducer to <= 10 lines (the
     acceptance bar) — in practice it lands at 2. *)
  let case = Qgen.generate 100 in
  let original_lines = line_count (Qgen.query_text case.query) in
  Alcotest.(check bool) "original is big enough to be worth shrinking" true
    (original_lines > 10);
  match
    Fuzz.check_case ~inject_bug:true ~configs:Fuzz.base_configs ~doc:case.doc
      case.query
  with
  | Fuzz.Divergence { config; _ } ->
    let small_q, small_doc =
      Fuzz.shrink_divergence ~inject_bug:true config ~doc:case.doc case.query
    in
    let shrunk_lines = line_count (Qgen.query_text small_q) in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to <= 10 lines (got %d)" shrunk_lines)
      true (shrunk_lines <= 10);
    Alcotest.(check bool) "shrunk doc no bigger" true
      (String.length small_doc <= String.length case.doc);
    (* the minimized case must still reproduce the divergence *)
    let context_node = Xq_xml.Xml_parse.parse small_doc in
    let oracle = Fuzz.oracle_outcome context_node small_q in
    let engine =
      Fuzz.engine_outcome ~inject_bug:true config context_node small_q
    in
    Alcotest.(check bool) "minimized case still diverges" false
      (Fuzz.outcomes_agree ~pinned:(Fuzz.pinned_order small_q) oracle engine)
  | _ -> Alcotest.fail "injected bug was not detected on seed 100"

let injected_bug_is_caught () =
  (* the injected defect only fires on non-empty outputs, so sweep a few
     seeds and require that at least one diverges *)
  let caught = ref 0 in
  for seed = 0 to 19 do
    let case = Qgen.generate seed in
    match
      Fuzz.check_case ~inject_bug:true ~configs:Fuzz.base_configs
        ~doc:case.doc case.query
    with
    | Fuzz.Divergence _ -> incr caught
    | _ -> ()
  done;
  Alcotest.(check bool) "at least one seed catches the injected bug" true
    (!caught > 0)

(* --- the CLI ------------------------------------------------------------- *)

(* Tests run from _build/default/test; the driver sits next door. *)
let fuzz_exe = Filename.concat ".." (Filename.concat "bin" "xq_fuzz.exe")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_dir = Filename.concat (Filename.dirname Sys.executable_name) "golden"

let gdir =
  if Sys.file_exists golden_dir && Sys.is_directory golden_dir then golden_dir
  else "golden"

let cli_help_golden () =
  let ic = Unix.open_process_in (fuzz_exe ^ " --help") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "--help must exit 0");
  let expected =
    read_file (Filename.concat gdir (Filename.concat "fuzz" "help.txt"))
  in
  Alcotest.(check string) "--help output" expected (Buffer.contents buf)

let exit_of cmd =
  match Sys.command cmd with
  | n -> n

let cli_exit_codes () =
  Alcotest.(check int) "clean sweep exits 0" 0
    (exit_of (fuzz_exe ^ " --seeds 0-19 > /dev/null"));
  Alcotest.(check int) "injected bug exits 3" 3
    (exit_of (fuzz_exe ^ " --seeds 0-19 --inject-bug > /dev/null"));
  Alcotest.(check int) "unknown flag exits 1" 1
    (exit_of (fuzz_exe ^ " --badflag > /dev/null 2> /dev/null"));
  Alcotest.(check int) "missing value exits 1" 1
    (exit_of (fuzz_exe ^ " --seeds > /dev/null 2> /dev/null"));
  Alcotest.(check int) "bad range exits 1" 1
    (exit_of (fuzz_exe ^ " --seeds 9-3 > /dev/null 2> /dev/null"))

let cli_writes_reproducers () =
  let dir = Filename.temp_file "xq_fuzz_out" "" in
  Sys.remove dir;
  let code =
    exit_of
      (Printf.sprintf "%s --seeds 0-9 --inject-bug --out %s > /dev/null"
         fuzz_exe (Filename.quote dir))
  in
  Alcotest.(check int) "exits 3" 3 code;
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check bool) "wrote fail-*.xq reproducers" true
    (List.exists (fun f -> Filename.check_suffix f ".xq") files);
  Alcotest.(check bool) "wrote fail-*.xml documents" true
    (List.exists (fun f -> Filename.check_suffix f ".xml") files);
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Unix.rmdir dir

let suites =
  [
    ( "fuzz-generator",
      [
        Alcotest.test_case "pretty/parse round-trip, seeds 0-199" `Quick
          roundtrip_sweep;
        Alcotest.test_case "generation is deterministic" `Quick
          generator_deterministic;
        Alcotest.test_case "generated documents parse" `Quick docs_parse;
      ] );
    ( "fuzz-differential",
      [
        Alcotest.test_case "base configs agree with oracle, seeds 0-119"
          `Quick differential_sweep;
        Alcotest.test_case "sampled config matrix is deterministic" `Quick
          sampled_configs_deterministic;
        Alcotest.test_case "pinned_order" `Quick pinned_order_units;
        Alcotest.test_case "outcomes_agree" `Quick outcomes_agree_units;
      ] );
    ( "fuzz-shrinker",
      [
        Alcotest.test_case "injected bug is caught" `Quick
          injected_bug_is_caught;
        Alcotest.test_case "shrinks seed 100 to <= 10 lines" `Quick
          shrinker_minimizes;
      ] );
    ( "fuzz-cli",
      [
        Alcotest.test_case "--help matches golden" `Quick cli_help_golden;
        Alcotest.test_case "exit codes: 0 clean / 3 divergence / 1 usage"
          `Quick cli_exit_codes;
        Alcotest.test_case "--out writes reproducer files" `Quick
          cli_writes_reproducers;
      ] );
  ]
