(* The resource governor: limit trips, budget accounting, installation
   scoping, and the fault-injection differential suite — every injected
   run must either complete byte-identically to the clean run or fail
   closed with a structured XQENG* error. *)

open Helpers
module Governor = Xq_governor.Governor
module Xerror = Xq_xdm.Xerror
module Exec = Xq_algebra.Exec
module Optimizer = Xq_algebra.Optimizer
module Prng = Xq_workload.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let serialize = Xq_xml.Serialize.sequence

let expect_code code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Xerror.code_to_string code)
  | exception Xerror.Error (actual, _) ->
    Alcotest.(check string)
      "error code"
      (Xerror.code_to_string code)
      (Xerror.code_to_string actual)

(* --- unit tests of the trips -------------------------------------------- *)

let trip_tests =
  [
    test "ticks are free when no governor is installed" (fun () ->
        for _ = 1 to 1000 do
          Governor.tick ()
        done);
    test "deadline trips XQENG0001 within one slow-check stride" (fun () ->
        let g = Governor.create ~timeout_ms:1 () in
        Unix.sleepf 0.005;
        Governor.with_governor g (fun () ->
            expect_code Xerror.XQENG0001 (fun () ->
                (* the deadline has passed; at most one stride of ticks may
                   elapse before the trip *)
                for _ = 1 to 128 do
                  Governor.tick ()
                done)));
    test "group cap trips XQENG0003 exactly past the limit" (fun () ->
        let g = Governor.create ~max_groups:10 () in
        Governor.with_governor g (fun () ->
            for _ = 1 to 10 do
              Governor.count_groups 1
            done;
            expect_code Xerror.XQENG0003 (fun () -> Governor.count_groups 1)));
    test "charged bytes trip XQENG0002 immediately" (fun () ->
        let g = Governor.create ~max_mem_mb:1 () in
        Governor.with_governor g (fun () ->
            Governor.charge_bytes 1024;
            expect_code Xerror.XQENG0002 (fun () ->
                Governor.charge_bytes (2 * 1024 * 1024))));
    test "gc-delta memory budget trips XQENG0002" (fun () ->
        let g = Governor.create ~max_mem_mb:2 () in
        Governor.with_governor g (fun () ->
            expect_code Xerror.XQENG0002 (fun () ->
                (* allocate well past 2 MB, ticking as we go; bounded so a
                   missed trip ends the loop instead of exhausting memory *)
                let keep = ref [] in
                for i = 1 to 10_000 do
                  keep := String.make 65536 'm' :: !keep;
                  ignore (List.length !keep);
                  ignore i;
                  for _ = 1 to 128 do
                    Governor.tick ()
                  done
                done)));
    test "count_groups and charge_bytes are no-ops when uninstalled"
      (fun () ->
        Governor.count_groups 1_000_000;
        Governor.charge_bytes max_int);
    test "with_governor restores the previous governor" (fun () ->
        let outer = Governor.create ~max_groups:5 () in
        let inner = Governor.create ~max_groups:50 () in
        let installed_is g =
          match Governor.current () with Some x -> x == g | None -> false
        in
        Governor.with_governor outer (fun () ->
            Governor.with_governor inner (fun () ->
                check_bool "inner installed" true (installed_is inner));
            check_bool "outer restored" true (installed_is outer));
        check_bool "uninstalled at the end" true (Governor.current () = None));
    test "with_governor restores on exception too" (fun () ->
        let g = Governor.create () in
        (try
           Governor.with_governor g (fun () -> failwith "boom")
         with Failure _ -> ());
        check_bool "uninstalled" true (Governor.current () = None));
    test "of_limits is None with no limits and no faults" (fun () ->
        check_bool "none" true
          (Governor.of_limits () = None));
    test "of_limits arms tick points when only faults are on" (fun () ->
        Governor.set_faults ~seed:7 ~rate:0.5;
        Fun.protect ~finally:Governor.clear_faults (fun () ->
            check_bool "some" true (Governor.of_limits () <> None)));
    test "stats count ticks, groups and trips" (fun () ->
        let g = Governor.create ~max_groups:3 () in
        Governor.with_governor g (fun () ->
            (* ticks are flushed to the shared counter in stride batches,
               so exactly two full strides must be visible *)
            for _ = 1 to 128 do
              Governor.tick ()
            done;
            Governor.count_groups 2;
            (try Governor.count_groups 5
             with Xerror.Error (Xerror.XQENG0003, _) -> ());
            let s = Governor.stats g in
            check_int "ticks" 128 s.Governor.s_ticks;
            check_int "groups" 7 s.Governor.s_groups;
            Alcotest.(check (list (pair string int)))
              "trips"
              [ ("groups", 1) ]
              (List.map
                 (fun (k, n) -> (Governor.kind_name k, n))
                 s.Governor.s_trips);
            check_bool "summary mentions the trip" true
              (let sum = Governor.summary g in
               String.length sum > 0)));
  ]

(* --- end-to-end trips through the engine --------------------------------- *)

let orders_doc =
  lazy Xq_workload.Orders.(generate (with_lineitems 3000 default))

let group_query =
  "for $l in //lineitem group by $l/partkey into $p nest $l into $ls \
   return <part key=\"{$p}\">{count($ls)}</part>"

let engine_tests =
  [
    test "a grouping query trips --max-groups deterministically" (fun () ->
        let doc = Lazy.force orders_doc in
        for _ = 1 to 3 do
          let g = Governor.create ~max_groups:10 () in
          Governor.with_governor g (fun () ->
              expect_code Xerror.XQENG0003 (fun () ->
                  Xq_engine.Eval.run ~context_node:doc group_query))
        done);
    test "all three strategies trip the group cap" (fun () ->
        let doc = Lazy.force orders_doc in
        List.iter
          (fun strategy ->
            let g = Governor.create ~max_groups:10 () in
            Governor.with_governor g (fun () ->
                expect_code Xerror.XQENG0003 (fun () ->
                    Exec.run_string ~strategy ~context_node:doc group_query)))
          [ Optimizer.Hash; Optimizer.Sort; Optimizer.Auto ]);
    test "a long evaluation trips an expired deadline" (fun () ->
        let doc = Lazy.force orders_doc in
        let g = Governor.create ~timeout_ms:1 () in
        Unix.sleepf 0.005;
        Governor.with_governor g (fun () ->
            expect_code Xerror.XQENG0001 (fun () ->
                Xq_engine.Eval.run ~context_node:doc group_query)));
    test "parallel grouping trips the cap and joins its domains" (fun () ->
        let doc = Lazy.force orders_doc in
        let g = Governor.create ~max_groups:10 () in
        Governor.with_governor g (fun () ->
            (match
               Exec.run_string ~strategy:Optimizer.Hash ~parallel:4
                 ~context_node:doc group_query
             with
            | _ -> Alcotest.fail "expected a resource trip"
            | exception Xerror.Error (code, _) ->
              check_bool "resource-class error" true (Xerror.is_resource code));
            check_int "no pending aborts" 0 (Governor.pending_aborts g)));
  ]

(* --- fault-injection differential suite ---------------------------------- *)

(* Same shape as the strategy differential suite (random docs from the
   workload PRNG), but every run executes under injected faults: spawn
   failures force the sequential fallback (output must not change) and
   allocation-pressure trips abort the run (which must then fail closed
   with a structured XQENG* error, leaving no abort marks behind). *)
let random_doc rng =
  let open Xq_xml.Builder in
  let pool = 1 + Prng.int rng 8 in
  let n = 20 + Prng.int rng 60 in
  let item _ =
    el "i"
      [
        el_text "k" (string_of_int (Prng.int rng pool));
        el_text "v" (string_of_int (Prng.int rng 100));
      ]
  in
  doc (el "r" (List.init n item))

let fault_query =
  "for $i in //i group by $i/k into $k nest $i/v into $vs \
   order by $k return <g>{$k}<n>{count($vs)}</n><s>{sum($vs)}</s></g>"

let strategies =
  [
    ("hash", Optimizer.Hash);
    ("sort", Optimizer.Sort);
    ("auto", Optimizer.Auto);
  ]

let parallels = [ 1; 2; 4 ]
let fault_seeds = 24

let differential_tests =
  [
    test
      (Printf.sprintf
         "injected runs are byte-identical or fail closed (%d seeds × 3 \
          strategies × parallel 1,2,4)"
         fault_seeds)
      (fun () ->
        let completed = ref 0 and failed_closed = ref 0 in
        for seed = 1 to fault_seeds do
          let rng = Prng.create (0xfa017 + seed) in
          let doc = random_doc rng in
          let expected =
            serialize (Xq_engine.Eval.run ~context_node:doc fault_query)
          in
          List.iter
            (fun (label, strategy) ->
              List.iter
                (fun parallel ->
                  Governor.set_faults ~seed ~rate:0.02;
                  Fun.protect ~finally:Governor.clear_faults (fun () ->
                      (* an unlimited governor arms the tick points so
                         alloc-pressure faults can fire *)
                      let g = Governor.create () in
                      Governor.with_governor g (fun () ->
                          match
                            Exec.run_string ~strategy ~parallel
                              ~context_node:doc fault_query
                          with
                          | result ->
                            incr completed;
                            let got = serialize result in
                            if got <> expected then
                              Alcotest.failf
                                "seed %d, %s, parallel %d: injected run \
                                 diverged\nexpected %s\ngot      %s"
                                seed label parallel expected got
                          | exception Xerror.Error (code, _) ->
                            incr failed_closed;
                            if not (Xerror.is_resource code) then
                              Alcotest.failf
                                "seed %d, %s, parallel %d: expected an \
                                 XQENG* failure, got %s"
                                seed label parallel
                                (Xerror.code_to_string code)
                          | exception e ->
                            Alcotest.failf
                              "seed %d, %s, parallel %d: unstructured \
                               failure %s"
                              seed label parallel (Printexc.to_string e));
                      check_int
                        (Printf.sprintf "seed %d %s par %d: aborts released"
                           seed label parallel)
                        0
                        (Governor.pending_aborts g)))
                parallels)
            strategies
        done;
        (* the sweep must exercise both outcomes, otherwise the rate is
           mistuned and the suite proves nothing *)
        check_bool "some runs completed" true (!completed > 0);
        check_bool "some runs failed closed" true (!failed_closed > 0));
    test "injection is deterministic per seed" (fun () ->
        let rng = Prng.create 0xdead in
        let doc = random_doc rng in
        let outcome () =
          Governor.set_faults ~seed:5 ~rate:0.05;
          Fun.protect ~finally:Governor.clear_faults (fun () ->
              let g = Governor.create () in
              Governor.with_governor g (fun () ->
                  match
                    Exec.run_string ~strategy:Optimizer.Hash ~parallel:1
                      ~context_node:doc fault_query
                  with
                  | result -> Ok (serialize result)
                  | exception Xerror.Error (code, _) -> Error code))
        in
        let a = outcome () and b = outcome () in
        check_bool "same outcome on replay" true (a = b));
  ]

let suites =
  [
    ("governor.trips", trip_tests);
    ("governor.engine", engine_tests);
    ("governor.faults", differential_tests);
  ]
