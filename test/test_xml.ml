(* Tests for the XML parser, serializer and builder. *)

open Xq_xdm
open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Xq_xml.Xml_parse.parse
let parse_fragment = Xq_xml.Xml_parse.parse_fragment
let serialize = Xq_xml.Serialize.node

let roundtrip src = serialize (List.hd (Node.children (parse src)))

let parser_tests =
  [
    test "simple element" (fun () ->
        check_string "rt" "<a><b>x</b></a>" (roundtrip "<a><b>x</b></a>"));
    test "attributes both quote styles" (fun () ->
        check_string "rt" {|<a x="1" y="two"/>|} (roundtrip "<a x='1' y=\"two\"/>"));
    test "self-closing vs empty pair serialize alike" (fun () ->
        check_string "rt" "<a/>" (roundtrip "<a></a>"));
    test "predefined entities" (fun () ->
        let el = parse_fragment "<a>&lt;&gt;&amp;&apos;&quot;</a>" in
        check_string "decoded" "<>&'\"" (Node.string_value el));
    test "character references" (fun () ->
        let el = parse_fragment "<a>&#65;&#x42;</a>" in
        check_string "decoded" "AB" (Node.string_value el));
    test "CDATA" (fun () ->
        let el = parse_fragment "<a><![CDATA[<not> & markup]]></a>" in
        check_string "cdata" "<not> & markup" (Node.string_value el));
    test "comments preserved" (fun () ->
        let el = parse_fragment "<a><!--note--><b/></a>" in
        match Node.children el with
        | [ c; b ] ->
          check_bool "comment" true (Node.kind c = Node.Comment);
          check_string "text" "note" (Node.comment_text c);
          check_string "b" "b" (Node.local_name b)
        | _ -> Alcotest.fail "expected comment + element");
    test "processing instructions" (fun () ->
        let el = parse_fragment "<a><?php echo ?></a>" in
        match Node.children el with
        | [ p ] ->
          check_string "target" "php" (Node.pi_target p);
          check_string "data" "echo " (Node.pi_data p)
        | _ -> Alcotest.fail "expected a PI");
    test "whitespace-only text dropped by default" (fun () ->
        let el = parse_fragment "<a>\n  <b/>\n  <c/>\n</a>" in
        check_int "children" 2 (List.length (Node.children el)));
    test "whitespace kept on request" (fun () ->
        let el = parse_fragment ~keep_whitespace:true "<a> <b/> </a>" in
        check_int "children" 3 (List.length (Node.children el)));
    test "mixed content keeps interior whitespace" (fun () ->
        let el = parse_fragment "<a>hello <b/> world</a>" in
        check_string "sv" "hello  world" (Node.string_value el));
    test "XML declaration and DOCTYPE skipped" (fun () ->
        let d = parse "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>" in
        match Node.children d with
        | [ a ] -> check_string "root" "a" (Node.local_name a)
        | _ -> Alcotest.fail "expected one root");
    test "attribute entities" (fun () ->
        let el = parse_fragment "<a x=\"1 &amp; 2\"/>" in
        match Node.attributes el with
        | [ at ] -> check_string "value" "1 & 2" (Node.attribute_value at)
        | _ -> Alcotest.fail "expected one attribute");
    test "deep nesting" (fun () ->
        let el = parse_fragment "<a><b><c><d><e>deep</e></d></c></b></a>" in
        check_string "sv" "deep" (Node.string_value el));
    test "ids assigned in document order" (fun () ->
        let d = parse "<a><b/><c><d/></c></a>" in
        let ids = List.map Node.id (Node.descendant_or_self d) in
        check_bool "preorder" true (List.sort compare ids = ids));
  ]

let parse_error line col src name =
  match parse src with
  | _ -> Alcotest.failf "%s: expected a parse error" name
  | exception Xq_xml.Xml_parse.Parse_error { line = l; column = c; _ } ->
    Alcotest.(check (pair int int)) name (line, col) (l, c)

let error_tests =
  [
    test "mismatched end tag" (fun () ->
        match parse "<a><b></a></b>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_xml.Xml_parse.Parse_error { message; _ } ->
          check_bool "mentions tags" true (String.length message > 0));
    test "unterminated element" (fun () ->
        match parse "<a><b>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_xml.Xml_parse.Parse_error _ -> ());
    test "unknown entity" (fun () ->
        match parse "<a>&nope;</a>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_xml.Xml_parse.Parse_error _ -> ());
    test "content after root" (fun () ->
        match parse "<a/><b/>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_xml.Xml_parse.Parse_error _ -> ());
    test "lt in attribute" (fun () ->
        match parse "<a x=\"<\"/>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_xml.Xml_parse.Parse_error _ -> ());
    test "error position is 1-based" (fun () ->
        parse_error 1 1 "" "empty input");
  ]

(* --- hostile / malformed input ------------------------------------------ *)

(* <d><d>…x…</d></d>, [n] levels deep. *)
let deep n =
  let b = Buffer.create (n * 8) in
  for _ = 1 to n do Buffer.add_string b "<d>" done;
  Buffer.add_string b "x";
  for _ = 1 to n do Buffer.add_string b "</d>" done;
  Buffer.contents b

let expect_parse_error name src =
  match parse src with
  | _ -> Alcotest.failf "%s: expected a parse error" name
  | exception Xq_xml.Xml_parse.Parse_error _ -> ()

let hostile_tests =
  [
    test "nesting beyond the default cap fails, not stack overflow" (fun () ->
        match parse (deep 2000) with
        | _ -> Alcotest.fail "expected a parse error"
        | exception Xq_xml.Xml_parse.Parse_error { message; _ } ->
          check_bool "mentions nesting" true
            (String.length message > 0
             && String.exists (fun c -> c = '5') message));
    test "nesting exactly at an explicit cap parses" (fun () ->
        let el = Xq_xml.Xml_parse.parse_fragment ~max_depth:10 (deep 10) in
        check_string "sv" "x" (Node.string_value el));
    test "nesting one past an explicit cap fails" (fun () ->
        match Xq_xml.Xml_parse.parse ~max_depth:10 (deep 11) with
        | _ -> Alcotest.fail "expected a parse error"
        | exception Xq_xml.Xml_parse.Parse_error _ -> ());
    test "governor depth limit raises XQENG0005" (fun () ->
        let g = Xq_governor.Governor.create ~max_depth:5 () in
        Xq_governor.Governor.with_governor g (fun () ->
            match parse (deep 6) with
            | _ -> Alcotest.fail "expected XQENG0005"
            | exception Xerror.Error (Xerror.XQENG0005, _) -> ()));
    test "an explicit cap wins over the governor's" (fun () ->
        let g = Xq_governor.Governor.create ~max_depth:5 () in
        Xq_governor.Governor.with_governor g (fun () ->
            let el =
              Xq_xml.Xml_parse.parse_fragment ~max_depth:20 (deep 12)
            in
            check_string "sv" "x" (Node.string_value el)));
    test "explicit input-size cap raises a positioned error" (fun () ->
        match Xq_xml.Xml_parse.parse ~max_bytes:8 "<a>abcdefgh</a>" with
        | _ -> Alcotest.fail "expected a parse error"
        | exception Xq_xml.Xml_parse.Parse_error { message; _ } ->
          check_bool "mentions bytes" true
            (String.length message > 0));
    test "governor input-size limit raises XQENG0005" (fun () ->
        let g = Xq_governor.Governor.create ~max_input_bytes:8 () in
        Xq_governor.Governor.with_governor g (fun () ->
            match parse "<a>abcdefgh</a>" with
            | _ -> Alcotest.fail "expected XQENG0005"
            | exception Xerror.Error (Xerror.XQENG0005, _) -> ()));
    test "unterminated start tag" (fun () -> expect_parse_error "tag" "<a");
    test "unterminated attribute" (fun () ->
        expect_parse_error "attr" "<a x='v");
    test "unterminated attribute in nested element" (fun () ->
        expect_parse_error "nested attr" "<a><b x=\"v</a>");
    test "unterminated comment" (fun () ->
        expect_parse_error "comment" "<a><!-- never closed</a>");
    test "unterminated CDATA" (fun () ->
        expect_parse_error "cdata" "<a><![CDATA[stuck</a>");
    test "unterminated DOCTYPE" (fun () ->
        expect_parse_error "doctype" "<!DOCTYPE a [<a/>");
    test "truncated entity" (fun () -> expect_parse_error "entity" "<a>&am");
    test "truncated decimal character reference" (fun () ->
        expect_parse_error "charref" "<a>&#12");
    test "truncated hex character reference" (fun () ->
        expect_parse_error "hex charref" "<a>&#x1F");
    test "malformed character reference" (fun () ->
        expect_parse_error "bad charref" "<a>&#xZZ;</a>");
    test "character reference out of range" (fun () ->
        expect_parse_error "out of range" "<a>&#x110000;</a>");
    test "huge attribute value survives" (fun () ->
        let v = String.make 100_000 'v' in
        let el = parse_fragment (Printf.sprintf "<a x=\"%s\"/>" v) in
        match Node.attributes el with
        | [ at ] ->
          check_int "attr length" 100_000
            (String.length (Node.attribute_value at))
        | _ -> Alcotest.fail "expected one attribute");
    test "parse ticks the governor (deadline applies to parsing)" (fun () ->
        let g = Xq_governor.Governor.create ~timeout_ms:1 () in
        Unix.sleepf 0.005;
        Xq_governor.Governor.with_governor g (fun () ->
            match parse (deep 400) with
            | _ -> Alcotest.fail "expected XQENG0001"
            | exception Xerror.Error (Xerror.XQENG0001, _) -> ()));
  ]

let serializer_tests =
  [
    test "escapes text" (fun () ->
        let el = Node.element (Xname.of_string "a") in
        Node.append_child el (Node.text "x < y & z > w");
        check_string "escaped" "<a>x &lt; y &amp; z &gt; w</a>" (serialize el));
    test "escapes attributes" (fun () ->
        let el = Node.element (Xname.of_string "a") in
        Node.set_attribute el (Node.attribute (Xname.of_string "x") "say \"hi\" & go");
        check_string "escaped" {|<a x="say &quot;hi&quot; &amp; go"/>|} (serialize el));
    test "sequence: atomics space-separated, nodes abut" (fun () ->
        let seq =
          [ Xq_xdm.Item.of_int 1; Xq_xdm.Item.of_int 2;
            Xq_xdm.Item.Node (Node.text "t"); Xq_xdm.Item.of_int 3 ]
        in
        check_string "serialized" "1 2t3" (Xq_xml.Serialize.sequence seq));
    test "indent mode produces newlines" (fun () ->
        let el = parse_fragment "<a><b>x</b><c/></a>" in
        let s = Xq_xml.Serialize.node ~indent:true el in
        check_bool "has newline" true (String.contains s '\n'));
    test "escape helpers" (fun () ->
        check_string "text" "&amp;&lt;&gt;" (Xq_xml.Serialize.escape_text "&<>");
        check_string "attr" "&amp;&lt;&quot;" (Xq_xml.Serialize.escape_attribute "&<\""));
  ]

let builder_tests =
  [
    test "builder constructs expected tree" (fun () ->
        let open Xq_xml.Builder in
        let n =
          build
            (el_attrs "book" [ ("id", "7") ]
               [ el_text "title" "T"; el "empty" []; txt "tail" ])
        in
        check_string "xml" {|<book id="7"><title>T</title><empty/>tail</book>|}
          (serialize n));
    test "builder document wrapper" (fun () ->
        let open Xq_xml.Builder in
        let d = doc (el "root" []) in
        check_bool "is doc" true (Node.kind d = Node.Document);
        check_int "one child" 1 (List.length (Node.children d)));
    test "builder attr part" (fun () ->
        let open Xq_xml.Builder in
        let n = build (el "a" [ attr "k" "v"; txt "x" ]) in
        check_string "xml" {|<a k="v">x</a>|} (serialize n));
    test "parse of builder output is deep-equal" (fun () ->
        let open Xq_xml.Builder in
        let n = build (el "a" [ el_text "b" "x"; el_attrs "c" [ ("k", "v") ] [] ]) in
        let reparsed = parse_fragment (serialize n) in
        check_bool "deep-equal" true (Deep_equal.nodes n reparsed));
  ]

(* --- hostile streams ------------------------------------------------------ *)

(* The streaming scan must reject exactly what the materializing parser
   rejects, with the same reported position — both paths fail closed on
   a truncated or torn document, never returning partial data. *)

let stream_root_path =
  [ { Xq_xml.Xml_stream.desc = false; test = Xq_xml.Xml_stream.Any } ]

let both_reject name src =
  let position f =
    match f () with
    | _ -> None
    | exception Xq_xml.Xml_parse.Parse_error { line; column; _ } ->
      Some (line, column)
  in
  let materializing = position (fun () -> parse src) in
  let streaming =
    position (fun () ->
        Xq_xml.Xml_stream.collect ~path:stream_root_path (`String src))
  in
  match materializing, streaming with
  | Some m, Some s ->
    Alcotest.(check (pair int int)) (name ^ ": same position") m s
  | None, _ -> Alcotest.failf "%s: materializing parser accepted it" name
  | _, None -> Alcotest.failf "%s: streaming scan accepted it" name

let hostile_stream_tests =
  [
    test "EOF mid-tag" (fun () -> both_reject "mid-tag" "<a><b");
    test "EOF mid-attribute" (fun () ->
        both_reject "mid-attribute" "<a><b x=\"v");
    test "EOF mid-entity" (fun () -> both_reject "mid-entity" "<a>&am");
    test "EOF mid-charref" (fun () -> both_reject "mid-charref" "<a>&#x1F");
    test "EOF mid-comment" (fun () ->
        both_reject "mid-comment" "<a><!-- never closed");
    test "EOF mid-CDATA" (fun () ->
        both_reject "mid-cdata" "<a><![CDATA[stuck");
    test "EOF before the close tag" (fun () ->
        both_reject "unclosed root" "<a><b>text</b>");
    test "mismatched close tag" (fun () ->
        both_reject "mismatch" "<a><b></c></a>");
    test "bare attribute" (fun () -> both_reject "bare attr" "<a><b x></b></a>");
    test "content after the root" (fun () ->
        both_reject "trailing" "<a/><a/>");
    test "character reference out of range" (fun () ->
        both_reject "charref range" "<a>&#x110000;</a>");
    test "well-formed document still streams" (fun () ->
        let nodes =
          Xq_xml.Xml_stream.collect ~path:stream_root_path
            (`String "<a><b>x</b></a>")
        in
        match nodes with
        | [ n ] -> check_string "root subtree" "<a><b>x</b></a>" (serialize n)
        | _ -> Alcotest.fail "expected exactly the root match");
  ]

let suites =
  [
    ("xml.parser", parser_tests);
    ("xml.errors", error_tests);
    ("xml.hostile", hostile_tests);
    ("xml.hostile-stream", hostile_stream_tests);
    ("xml.serializer", serializer_tests);
    ("xml.builder", builder_tests);
  ]
