(* The eager-aggregation rewrite (ISSUE 10): accumulator folds must
   replicate the builtin aggregates exactly (values and error codes),
   the rewritten plans must be byte-identical to the unrewritten ones
   across every strategy × parallel degree × spill watermark, torn or
   out-of-range accumulator spill frames must fail closed, and both
   rewrites must announce themselves in EXPLAIN. *)

open Helpers
open Xq_xdm
module Acc = Xq_engine.Acc
module Builtins = Xq_engine.Builtins
module Context = Xq_engine.Context
module Governor = Xq_governor.Governor
module Exec = Xq_algebra.Exec
module Plan = Xq_algebra.Plan
module Optimizer = Xq_algebra.Optimizer
module Pipeline = Xq_pipeline.Pipeline
module Prng = Xq_workload.Prng

let to_alcotest = QCheck_alcotest.to_alcotest
let serialize = Xq_xml.Serialize.sequence
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Run the body under a given pushdown setting, restoring whatever the
   process had (the suite must behave under XQ_NO_AGG_PUSHDOWN=1 too —
   CI runs it both ways). *)
let with_pushdown enabled f =
  let saved = Optimizer.agg_pushdown_on () in
  Optimizer.set_agg_pushdown enabled;
  Fun.protect ~finally:(fun () -> Optimizer.set_agg_pushdown saved) f

let all_kinds = Acc.[ Count; Sum; Avg; Min; Max ]

(* --- accumulator vs builtin reference ------------------------------------- *)

(* Atomics skewed toward the aggregate folds' edges: integer boundaries
   (the sum overflow frontier), NaN and the infinities, untyped lexicals
   both castable and not, and plainly non-numeric items. *)
let gen_edge_atom : Atomic.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (5, map (fun i -> Atomic.Int i) (int_range (-1000) 1000));
      (1, oneofl [ Atomic.Int max_int; Atomic.Int min_int; Atomic.Int 0 ]);
      (3, map (fun f -> Atomic.Dec (float_of_int f /. 100.)) (int_range (-100000) 100000));
      (2, map (fun f -> Atomic.Dbl f) (float_bound_inclusive 1e6));
      ( 1,
        oneofl
          [
            Atomic.Dbl Float.nan;
            Atomic.Dbl Float.infinity;
            Atomic.Dbl Float.neg_infinity;
            Atomic.Dbl (-0.);
          ] );
      (2, map (fun i -> Atomic.Untyped (string_of_int i)) (int_range (-500) 500));
      ( 1,
        oneofl
          [
            Atomic.Untyped " 3.5 ";
            Atomic.Untyped "1e3";
            Atomic.Untyped "not-a-number";
            Atomic.Untyped "";
            Atomic.Str "abc";
            Atomic.Bool true;
          ] );
    ]

(* A group's member values: a list of per-tuple sequences, some empty —
   the per-member-empty case must vanish without a trace. *)
let gen_members : Xseq.t list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_bound 12)
    (list_size (int_bound 3) (map (fun a -> Item.Atomic a) gen_edge_atom))

let arb_members =
  QCheck.make
    ~print:(fun ms -> String.concat " | " (List.map serialize ms))
    gen_members

let acc_of members =
  let acc = Acc.create () in
  List.iter (Acc.step acc) members;
  acc

(* The unrewritten semantics: materialize the member list, then apply
   the builtin at the call site. *)
let reference kind members =
  let seq = Xseq.concat members in
  let name = Xname.make (Acc.kind_name kind) in
  match Builtins.call Context.empty name [ seq ] with
  | v -> Ok v
  | exception Xerror.Error (code, msg) -> Error (code, msg)

let same_outcome got want =
  match got, want with
  | Ok a, Ok b -> Stdlib.compare a b = 0
  | Error (c, _), Error (c', _) -> c = c'
  | _ -> false

let acc_props =
  [
    QCheck.Test.make ~count:800
      ~name:
        "folded aggregates = materialize-then-aggregate (values and \
         error codes, all five kinds)"
      arb_members
      (fun members ->
        let acc = acc_of members in
        List.for_all
          (fun kind ->
            same_outcome (Acc.finish acc kind) (reference kind members))
          all_kinds);
    QCheck.Test.make ~count:400
      ~name:"error messages match the builtins' too" arb_members
      (fun members ->
        let acc = acc_of members in
        List.for_all
          (fun kind ->
            match Acc.finish acc kind, reference kind members with
            | Ok _, Ok _ -> true
            | Error (c, m), Error (c', m') -> c = c' && m = m'
            | _ -> false)
          all_kinds);
    QCheck.Test.make ~count:400
      ~name:"merge of a split group = one pass (integer data is exact)"
      QCheck.(
        pair
          (make
             (Gen.list_size (Gen.int_bound 8)
                (Gen.list_size (Gen.int_bound 3)
                   (Gen.map
                      (fun i -> Item.Atomic (Atomic.Int i))
                      (Gen.int_range (-1000) 1000)))))
          (make
             (Gen.list_size (Gen.int_bound 8)
                (Gen.list_size (Gen.int_bound 3)
                   (Gen.map
                      (fun i -> Item.Atomic (Atomic.Int i))
                      (Gen.int_range (-1000) 1000))))))
      (fun (earlier, later) ->
        let merged = Acc.merge (acc_of earlier) (acc_of later) in
        let whole = acc_of (earlier @ later) in
        List.for_all
          (fun kind ->
            same_outcome (Acc.finish merged kind) (Acc.finish whole kind))
          all_kinds);
  ]

let acc_unit_tests =
  [
    test "an empty group: count 0, sum 0, avg/min/max empty" (fun () ->
        let acc = Acc.create () in
        check_bool "count" true
          (Acc.finish acc Acc.Count = Ok [ Item.of_int 0 ]);
        check_bool "sum" true (Acc.finish acc Acc.Sum = Ok [ Item.of_int 0 ]);
        check_bool "avg" true (Acc.finish acc Acc.Avg = Ok []);
        check_bool "min" true (Acc.finish acc Acc.Min = Ok []);
        check_bool "max" true (Acc.finish acc Acc.Max = Ok []));
    test "NaN members: sum/avg are NaN, min/max keep the running best"
      (fun () ->
        let members =
          [
            [ Item.Atomic (Atomic.Dbl 2.0) ];
            [ Item.Atomic (Atomic.Dbl Float.nan) ];
            [ Item.Atomic (Atomic.Dbl 1.0) ];
          ]
        in
        let acc = acc_of members in
        List.iter
          (fun kind ->
            check_bool (Acc.kind_name kind) true
              (same_outcome (Acc.finish acc kind) (reference kind members)))
          all_kinds);
    test "mixed untyped + decimal avg matches the builtin's typing"
      (fun () ->
        let members =
          [
            [ Item.Atomic (Atomic.Untyped "4") ];
            [ Item.Atomic (Atomic.Dec 1.5) ];
          ]
        in
        let acc = acc_of members in
        List.iter
          (fun kind ->
            check_bool (Acc.kind_name kind) true
              (same_outcome (Acc.finish acc kind) (reference kind members)))
          all_kinds);
    test "a poisoned fold still counts: count never errors" (fun () ->
        let members =
          [ [ Item.Atomic (Atomic.Str "abc") ]; [ Item.Atomic (Atomic.Int 1) ] ]
        in
        let acc = acc_of members in
        check_bool "count ok" true
          (Acc.finish acc Acc.Count = Ok [ Item.of_int 2 ]);
        check_bool "sum errs FORG0006" true
          (match Acc.finish acc Acc.Sum with
           | Error (Xerror.FORG0006, _) -> true
           | _ -> false));
  ]

(* --- the rewrite differential sweep --------------------------------------- *)

(* Integer data keeps the float folds associative-exact, so even spilled
   (merged) groups must be byte-identical to the materializing plan.
   Half the seeds use a few fat groups, half use hundreds of skinny
   ones — the skinny half is what pushes the O(groups) accumulator
   state past the 64 KB flush floor so the tiny watermark really
   spills folded runs, not just materializing ones. *)
let random_doc rng =
  let open Xq_xml.Builder in
  let pool =
    if Prng.int rng 2 = 0 then 2 + Prng.int rng 9 else 400 + Prng.int rng 400
  in
  let n = 600 + Prng.int rng 600 in
  let item _ =
    el "i"
      [
        el_text "k" (string_of_int (Prng.int rng pool));
        el_text "v" (string_of_int (Prng.int rng 1000));
      ]
  in
  doc (el "r" (List.init n item))

(* Every nest consumption is an eligible aggregate call, so the
   optimizer folds $v away entirely. *)
let agg_query =
  "for $i in //i group by $i/k into $k nest $i/v into $v order by $k \
   return <g>{$k/text()}<c>{count($v)}</c><s>{sum($v)}</s><a>{avg($v)}</a>\
   <m>{min($v)}</m><x>{max($v)}</x></g>"

let strategies =
  [ ("hash", Optimizer.Hash); ("sort", Optimizer.Sort); ("auto", Optimizer.Auto) ]

let parallels = [ 1; 2; 4 ]
let watermarks = [ ("none", None); ("tiny", Some 1) ]
let diff_seeds = 24

let differential_tests =
  [
    test "the sweep's query actually gets rewritten" (fun () ->
        let q = Xq.parse agg_query in
        match q.Xq_lang.Ast.body with
        | Xq_lang.Ast.Flwor f ->
          let plan =
            with_pushdown true (fun () ->
                Optimizer.push_aggregates
                  (Optimizer.apply_strategy Optimizer.Hash (Plan.of_flwor f)))
          in
          (* one accumulator slot, all five kinds folded into it *)
          check_int "pushed kinds" 5 (Optimizer.agg_pushdown_count plan)
        | _ -> Alcotest.fail "expected a FLWOR body");
    test
      (Printf.sprintf
         "rewrite on/off is byte-identical (%d seeds × 3 strategies × \
          parallel 1,2,4 × watermark none/tiny)"
         diff_seeds)
      (fun () ->
        let spilled_runs = ref 0 in
        for seed = 1 to diff_seeds do
          let rng = Prng.create (0xa66 + seed) in
          let doc = random_doc rng in
          (* the engine evaluator: never sees the plan layer or the
             rewrite — the ground truth for both settings *)
          let expected =
            serialize (Xq_engine.Eval.run ~context_node:doc agg_query)
          in
          List.iter
            (fun (slabel, strategy) ->
              List.iter
                (fun parallel ->
                  List.iter
                    (fun (wlabel, watermark) ->
                      let run enabled =
                        with_pushdown enabled (fun () ->
                            let g =
                              Governor.create ?spill_watermark_bytes:watermark
                                ()
                            in
                            let out =
                              Governor.with_governor g (fun () ->
                                  serialize
                                    (Exec.run_string ~strategy ~parallel
                                       ~context_node:doc agg_query))
                            in
                            let s = Governor.stats g in
                            if s.Governor.s_spill_files > 0 then
                              incr spilled_runs;
                            out)
                      in
                      let folded = run true in
                      let materialized = run false in
                      if folded <> expected || materialized <> expected then
                        Alcotest.failf
                          "seed %d, %s, parallel %d, watermark %s: diverged\n\
                           expected     %s\n\
                           folded       %s\n\
                           materialized %s"
                          seed slabel parallel wlabel expected folded
                          materialized)
                    watermarks)
                parallels)
            strategies
        done;
        (* the tiny watermark must actually exercise the O(groups)
           accumulator spill path *)
        check_bool "some runs spilled" true (!spilled_runs > 0));
    test "nest-expression errors surface identically in both modes"
      (fun () ->
        let doc = Xq_xml.Xml_parse.parse "<r><i><k>0</k><v>1</v></i></r>" in
        let q =
          "for $i in //i group by $i/k into $k nest $i/v idiv 0 into $q \
           return count($q)"
        in
        let code enabled =
          with_pushdown enabled (fun () ->
              match
                Exec.run_string ~strategy:Optimizer.Hash ~context_node:doc q
              with
              | _ -> Alcotest.fail "expected a dynamic error"
              | exception Xerror.Error (c, _) -> c)
        in
        check_bool "same code" true (code true = code false));
    test "call-site errors surface identically in both modes" (fun () ->
        let doc =
          Xq_xml.Xml_parse.parse
            "<r><i><k>0</k><v>oops</v></i><i><k>0</k><v>2</v></i></r>"
        in
        let q =
          "for $i in //i group by $i/k into $k nest $i/v into $v \
           return sum($v)"
        in
        let outcome enabled =
          with_pushdown enabled (fun () ->
              match
                Exec.run_string ~strategy:Optimizer.Hash ~context_node:doc q
              with
              | _ -> Alcotest.fail "expected FORG0001"
              | exception Xerror.Error (c, m) -> (c, m))
        in
        check_bool "same code and message" true (outcome true = outcome false));
  ]

(* --- torn accumulator spill frames ---------------------------------------- *)

let expect_corrupt f =
  match f () with
  | (_ : Acc.t) -> Alcotest.fail "decoded a corrupt accumulator"
  | exception Binio.Corrupt _ -> ()

let spill_props =
  [
    QCheck.Test.make ~count:500
      ~name:"accumulators roundtrip through the spill codec exactly"
      arb_members
      (fun members ->
        let acc = acc_of members in
        let buf = Buffer.create 64 in
        Acc.encode buf acc;
        let acc' = Acc.decode (Binio.reader (Buffer.contents buf)) in
        List.for_all
          (fun kind ->
            match Acc.finish acc kind, Acc.finish acc' kind with
            | Ok a, Ok b -> Stdlib.compare a b = 0
            | Error a, Error b -> a = b
            | _ -> false)
          all_kinds
        && Acc.nest_err acc = Acc.nest_err acc'
        && Acc.charged_bytes acc = Acc.charged_bytes acc');
    QCheck.Test.make ~count:300
      ~name:"every torn accumulator prefix is rejected, never misdecoded"
      arb_members
      (fun members ->
        let acc = acc_of members in
        Acc.poison_nest acc Xerror.FOAR0001 "division by zero";
        let buf = Buffer.create 64 in
        Acc.encode buf acc;
        let whole = Buffer.contents buf in
        let ok = ref true in
        for cut = 0 to String.length whole - 1 do
          (match Acc.decode (Binio.reader (String.sub whole 0 cut)) with
           | (_ : Acc.t) -> ok := false
           | exception Binio.Corrupt _ -> ())
        done;
        !ok);
  ]

let spill_unit_tests =
  [
    test "a negative count is corrupt" (fun () ->
        let buf = Buffer.create 16 in
        Binio.put_varint buf (-1);
        expect_corrupt (fun () -> Acc.decode (Binio.reader (Buffer.contents buf))));
    test "an out-of-range numeric-type tag is corrupt" (fun () ->
        let buf = Buffer.create 16 in
        Binio.put_varint buf 1;
        Binio.put_float buf 1.0;
        Binio.put_varint buf 7;
        expect_corrupt (fun () -> Acc.decode (Binio.reader (Buffer.contents buf))));
    test "an out-of-range error tag is corrupt" (fun () ->
        let buf = Buffer.create 16 in
        Binio.put_varint buf 1;
        Binio.put_float buf 1.0;
        Binio.put_varint buf 0;
        (* num_err present, with a tag the codec never writes *)
        Binio.put_varint buf 1;
        Binio.put_varint buf 9;
        expect_corrupt (fun () -> Acc.decode (Binio.reader (Buffer.contents buf))));
    test "an unknown nest-error code is corrupt" (fun () ->
        let acc = acc_of [ [ Item.Atomic (Atomic.Int 1) ] ] in
        Acc.poison_nest acc Xerror.FOAR0001 "division by zero";
        let buf = Buffer.create 64 in
        Acc.encode buf acc;
        let whole = Buffer.contents buf in
        (* the encoded code string "FOAR0001" holds the only 'F' in the
           frame; flip it to something code_of_string cannot resolve *)
        let mangled = String.map (function 'F' -> 'Z' | c -> c) whole in
        expect_corrupt (fun () -> Acc.decode (Binio.reader mangled)));
    test "spilled corrupt frames fail closed as XQENG0006 end-to-end"
      (fun () ->
        (* the group layer converts Binio.Corrupt from any spill codec
           into a spill trip; the accumulator codec rides that path *)
        check_bool "resource error" true (Xerror.is_resource Xerror.XQENG0006);
        match Governor.spill_trip "spill decode failed: probe" with
        | () -> Alcotest.fail "expected XQENG0006"
        | exception Xerror.Error (Xerror.XQENG0006, msg) ->
          check_bool "message carries the decode reason" true
            (contains_sub msg "decode"));
  ]

(* --- EXPLAIN surfacing ----------------------------------------------------- *)

let lineitems_doc () =
  Xq_xml.Xml_parse.parse
    {|<orders>
  <order><lineitem><sku>A1</sku><qty>2</qty></lineitem>
         <lineitem><sku>B7</sku><qty>3</qty></lineitem></order>
  <order><lineitem><sku>A1</sku><qty>5</qty></lineitem></order>
</orders>|}

let explain_tests =
  [
    test "EXPLAIN ANALYZE announces the pushdown, and only then" (fun () ->
        let doc = lineitems_doc () in
        let analyze () =
          Xq_rewrite.Explain.analyze_query ~timings:false
            ~strategy:Optimizer.Hash ~context_node:doc (Xq.parse agg_query)
        in
        let pushed = with_pushdown true analyze in
        check_bool "rewrite line" true
          (contains_sub pushed "rewrite: agg-pushdown=5");
        check_bool "agg annotation on the group op" true
          (contains_sub pushed " agg=[$v:count,sum,avg,min,max]");
        let off = with_pushdown false analyze in
        check_bool "silent when disabled" false
          (contains_sub off "agg-pushdown"));
    test "the kill switch really reaches the planner" (fun () ->
        let q = Xq.parse agg_query in
        match q.Xq_lang.Ast.body with
        | Xq_lang.Ast.Flwor f ->
          let plan () =
            Optimizer.push_aggregates
              (Optimizer.apply_strategy Optimizer.Hash (Plan.of_flwor f))
          in
          check_int "disabled: nothing pushed" 0
            (with_pushdown false (fun () ->
                 Optimizer.agg_pushdown_count (plan ())));
          check_int "enabled: pushed" 5
            (with_pushdown true (fun () ->
                 Optimizer.agg_pushdown_count (plan ())))
        | _ -> Alcotest.fail "expected a FLWOR body");
    test "--rewrite EXPLAIN ANALYZE announces the implicit-grouping \
          rewrite on the paper's Q idiom" (fun () ->
        let source =
          "for $sku in distinct-values(//order/lineitem/sku) \
           let $grp := for $i in //order/lineitem where $i/sku = $sku \
           return $i return <r>{$sku, count($grp)}</r>"
        in
        let report =
          Pipeline.run
            ~knobs:
              { Pipeline.default_knobs with Pipeline.k_rewrite = true }
            ~explain_analyze:true ~source
            ~load_doc:(fun () -> lineitems_doc ())
            ()
        in
        check_bool "implicit-grouping line" true
          (contains_sub report.Pipeline.r_output
             "rewrite: implicit-grouping=1");
        (* without --rewrite the line must not appear *)
        let plain =
          Pipeline.run ~explain_analyze:true ~source
            ~load_doc:(fun () -> lineitems_doc ())
            ()
        in
        check_bool "silent without --rewrite" false
          (contains_sub plain.Pipeline.r_output "implicit-grouping"));
    test "--rewrite produces the same output as the unrewritten Q idiom"
      (fun () ->
        let source =
          "for $sku in distinct-values(//order/lineitem/sku) \
           let $grp := for $i in //order/lineitem where $i/sku = $sku \
           return $i return <r>{$sku, count($grp)}</r>"
        in
        let out rewrite =
          (Pipeline.run
             ~knobs:
               { Pipeline.default_knobs with Pipeline.k_rewrite = rewrite }
             ~source
             ~load_doc:(fun () -> lineitems_doc ())
             ())
            .Pipeline.r_output
        in
        Alcotest.(check string) "same output" (out false) (out true));
  ]

let suites =
  [
    ( "agg",
      acc_unit_tests
      @ List.map to_alcotest acc_props
      @ differential_tests
      @ List.map to_alcotest spill_props
      @ spill_unit_tests @ explain_tests );
  ]
