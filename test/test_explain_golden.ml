(* Golden tests for plan explanations: every test/golden/explain/NN-name.xq
   (with the same "(: fixture: … :)" header the result-golden corpus uses)
   must render exactly to three paired files:

     NN-name.plan.expected          Explain.query          (the --explain view)
     NN-name.analyze.expected       EXPLAIN ANALYZE, hash strategy
     NN-name.analyze-auto.expected  EXPLAIN ANALYZE, auto strategy (sort fusion)

   The ANALYZE views run with [timings:false] so only deterministic
   fields (rows in/out, groups, comparator calls) appear.  To regenerate
   after an intentional change:

     XQ_EXPLAIN_BLESS=$PWD/test/golden/explain dune exec test/test_main.exe -- test explain-golden *)

open Helpers

let dir = Filename.concat Test_golden.dir "explain"

let bless_dir = Sys.getenv_opt "XQ_EXPLAIN_BLESS"

let check_golden file suffix actual =
  let expected_file = Filename.chop_suffix file ".xq" ^ suffix in
  match bless_dir with
  | Some d ->
    let oc = open_out (Filename.concat d expected_file) in
    output_string oc actual;
    close_out oc
  | None ->
    let expected =
      String.trim (Test_golden.read_file (Filename.concat dir expected_file))
    in
    Alcotest.(check string) expected_file expected (String.trim actual)

let contains_ms s =
  let n = String.length s in
  let rec go i = i + 1 < n && ((s.[i] = 'm' && s.[i + 1] = 's') || go (i + 1)) in
  go 0

let cases =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.sort compare
  else []

let explain_tests =
  if cases = [] then
    [ test "explain golden corpus present" (fun () ->
          Alcotest.failf "no explain golden queries under %s (cwd %s)" dir
            (Sys.getcwd ())) ]
  else
    List.map
      (fun file ->
        test file (fun () ->
            (* the goldens pin the default planning, which includes the
               aggregation pushdown — run them with the switch on even
               under an XQ_NO_AGG_PUSHDOWN=1 sweep (whose point is the
               executed outputs, not the explain text) *)
            let saved = Xq_algebra.Optimizer.agg_pushdown_on () in
            Xq_algebra.Optimizer.set_agg_pushdown true;
            Fun.protect
              ~finally:(fun () -> Xq_algebra.Optimizer.set_agg_pushdown saved)
            @@ fun () ->
            let source = Test_golden.read_file (Filename.concat dir file) in
            let data =
              Test_golden.fixture_of_name (Test_golden.fixture_header source)
            in
            let doc = Xq_xml.Xml_parse.parse data in
            let query = Xq.parse source in
            Xq.check query;
            check_golden file ".plan.expected" (Xq_rewrite.Explain.query query);
            List.iter
              (fun (suffix, strategy) ->
                let actual =
                  Xq_rewrite.Explain.analyze_query ~timings:false ~strategy
                    ~context_node:doc query
                in
                Alcotest.(check bool)
                  (file ^ suffix ^ " has no timings") false
                  (contains_ms actual);
                check_golden file suffix actual)
              [
                (".analyze.expected", Xq_algebra.Optimizer.Hash);
                (".analyze-auto.expected", Xq_algebra.Optimizer.Auto);
              ]))
      cases

let suites = [ ("explain-golden", explain_tests) ]
