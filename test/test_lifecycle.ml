(* Server-lifecycle battery: graceful drain, request-frame bounds, the
   connection cap, the retrying client layer, and — through the real
   xq-server binary — signal handling (EINTR hardening), socket-steal
   refusal, drain-under-load and the supervised chaos run.

   In-process tests drive [Server_core] directly on a Unix socket, like
   test_server.ml. Subprocess tests spawn ../bin/xq_server_main.exe
   (tests run from _build/default/test) so signals, fork, the
   supervisor and process exit codes are the production ones. *)

module Governor = Xq_governor.Governor
module Pipeline = Xq_pipeline.Pipeline
module Protocol = Xq_server.Protocol
module Server = Xq_server.Server_core
module Client = Xq_client.Client

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run_cmd ?(doc = Protocol.Doc_none) source =
  Protocol.Run
    {
      Protocol.rq_source = source;
      rq_doc = doc;
      rq_knobs = Pipeline.default_knobs;
      rq_indent = false;
    }

(* A query whose runtime scales as n^3: slow enough to still be in
   flight when the drain switch flips, fast enough to finish inside a
   generous drain window. Counts to exactly n^3. *)
let slow_doc n =
  let b = Buffer.create (n * 8) in
  Buffer.add_string b "<a>";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "<b>%d</b>" (i mod 7))
  done;
  Buffer.add_string b "</a>";
  Buffer.contents b

let slow_query =
  "fn:count(for $x in /a/b for $y in /a/b for $z in /a/b return 1)"

let slow_expected n = Printf.sprintf "%d\n" (n * n * n)

(* --- socket plumbing ----------------------------------------------------- *)

let sock_counter = ref 0

let fresh_sock_path () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xq-lc-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let wait_for_file path =
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.01;
      wait (n - 1)
    end
  in
  wait 500

(* A lifecycle-aware harness: serves until [f] returns (or drains
   earlier), then joins the accept loop and hands back its
   drain_report. *)
let with_server ?config f =
  let t = Server.create ?config () in
  let path = fresh_sock_path () in
  let report = ref None in
  let th =
    Thread.create
      (fun () ->
        report := Some (Server.serve_unix t ~path ~stop:(fun () -> false) ()))
      ()
  in
  wait_for_file path;
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f t path);
  match !report with
  | Some r -> r
  | None -> Alcotest.fail "serve_unix died without a drain report"

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let close_conn (sock, _ic, oc) =
  (try flush oc with Sys_error _ -> ());
  try Unix.close sock with Unix.Unix_error _ -> ()

let request path cmd =
  let ((_, ic, oc) as conn) = connect path in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      Protocol.write_command oc cmd;
      Protocol.read_response ic)

(* PING on an already-open connection: proves the accept loop has
   picked it up (a connection still parked in the listen backlog when
   the listener closes is silently dropped). *)
let ack_conn (_, ic, oc) =
  Protocol.write_command oc Protocol.Ping;
  match Protocol.read_response ic with
  | Protocol.Payload "pong" -> ()
  | _ -> Alcotest.fail "connection not acknowledged"

let stat_of_text stats key =
  String.split_on_char '\n' stats
  |> List.find_map (fun line ->
         match String.split_on_char ' ' line with
         | [ k; v ] when k = key -> int_of_string_opt v
         | _ -> None)

(* --- protocol: retry hints and frame bounds ------------------------------ *)

let test_retry_hint_roundtrip () =
  let tmp = Filename.temp_file "xq-hint" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let responses =
        [
          Protocol.Error
            {
              code = "XQENG0007";
              exit = 4;
              message = "admission rejected: draining";
              retry_after_ms = Some 1234;
            };
          Protocol.Error
            {
              code = "XQENG0004";
              exit = 4;
              message = "cancelled";
              retry_after_ms = None;
            };
          Protocol.Payload "2\n";
        ]
      in
      let oc = open_out_bin tmp in
      List.iter (Protocol.write_response oc) responses;
      close_out oc;
      let ic = open_in_bin tmp in
      let got = List.map (fun _ -> Protocol.read_response ic) responses in
      close_in ic;
      Alcotest.(check bool) "hinted, bare and OK frames round-trip" true
        (got = responses))

let test_oversized_request_bounded () =
  let config =
    { Server.default_config with Server.c_max_request_bytes = 1024 }
  in
  let check_raw raw label =
    ignore
      (with_server ~config (fun _t path ->
           let ((_, ic, oc) as conn) = connect path in
           Fun.protect
             ~finally:(fun () -> close_conn conn)
             (fun () ->
               output_string oc raw;
               flush oc;
               (* the cap fires on the declared length, before any body
                  bytes arrive: the server answers although the payload
                  was never sent *)
               match Protocol.read_response ic with
               | Protocol.Error { code; exit; retry_after_ms; _ } ->
                 Alcotest.(check string) (label ^ " code") "USAGE" code;
                 Alcotest.(check int) (label ^ " exit family") 1 exit;
                 Alcotest.(check bool) (label ^ " no hint") true
                   (retry_after_ms = None)
               | Protocol.Payload _ ->
                 Alcotest.failf "%s: oversized frame was served" label);
           match request path Protocol.Ping with
           | Protocol.Payload p ->
             Alcotest.(check string) (label ^ " still serving") "pong" p
           | Protocol.Error { message; _ } ->
             Alcotest.failf "%s: wedged after oversize: %s" label message))
  in
  check_raw "QUERY 9999999\n" "oversized QUERY";
  check_raw "QUERY 5\n1 + 1\nDOCINLINE 9999999\n" "oversized DOCINLINE"

let test_client_bounds_response_frames () =
  ignore
    (with_server (fun _t path ->
         (* a client with a tiny response cap must reject the daemon's
            (much larger) STATS frame as garbled rather than allocate *)
         let c =
           Client.create ~attempts:2 ~base_backoff_ms:1
             ~max_response_bytes:16 ~seed:3 ~socket:path ()
         in
         Fun.protect
           ~finally:(fun () -> Client.close c)
           (fun () ->
             match Client.request c Protocol.Stats with
             | Ok _ -> Alcotest.fail "over-cap response was accepted"
             | Error (Client.Server_error _) ->
               Alcotest.fail "frame cap must surface as a transport failure"
             | Error (Client.Unreachable m) ->
               Alcotest.(check bool) "names the frame cap" true
                 (contains m "frame cap"))))

(* --- the connection cap -------------------------------------------------- *)

let test_connection_cap () =
  let config =
    {
      Server.default_config with
      Server.c_max_connections = 2;
      c_retry_after_ms = 77;
    }
  in
  ignore
    (with_server ~config (fun _t path ->
         (* two parked, idle connections fill the cap *)
         let idle1 = connect path in
         let idle2 = connect path in
         Fun.protect
           ~finally:(fun () ->
             close_conn idle1;
             close_conn idle2)
           (fun () ->
             ack_conn idle1;
             ack_conn idle2;
             let ((_, ic, _) as over) = connect path in
             Fun.protect
               ~finally:(fun () -> close_conn over)
               (fun () ->
                 match Protocol.read_response ic with
                 | Protocol.Error { code; exit; retry_after_ms; _ } ->
                   Alcotest.(check string) "refused XQENG0007" "XQENG0007"
                     code;
                   Alcotest.(check int) "resource exit family" 4 exit;
                   Alcotest.(check (option int)) "carries the backoff hint"
                     (Some 77) retry_after_ms
                 | Protocol.Payload _ ->
                   Alcotest.fail "third connection admitted over the cap"));
         (* the idle pair released: the server admits again and the
            refusal is on the books *)
         let rec settle n =
           if n = 0 then Alcotest.fail "connection slots never released";
           match request path Protocol.Stats with
           | Protocol.Payload stats -> stats
           | Protocol.Error _ ->
             (* still at the cap: the idle threads have not noticed the
                close yet *)
             Thread.delay 0.02;
             settle (n - 1)
           | exception _ ->
             Thread.delay 0.02;
             settle (n - 1)
         in
         let stats = settle 200 in
         (match stat_of_text stats "conn_rejected" with
          | Some n ->
            Alcotest.(check bool) "conn_rejected counted" true (n >= 1)
          | None -> Alcotest.fail "conn_rejected missing from STATS");
         match stat_of_text stats "conn_active" with
         | Some _ -> ()
         | None -> Alcotest.fail "conn_active missing from STATS"))

(* --- graceful drain ------------------------------------------------------ *)

let wait_active t =
  let rec wait k =
    if k = 0 then Alcotest.fail "slow query never started";
    if Server.active t = 0 then begin
      Thread.delay 0.01;
      wait (k - 1)
    end
  in
  wait 1000

let test_drain_completes_inflight () =
  let n = 90 in
  let doc = Protocol.Doc_inline (slow_doc n) in
  let config =
    { Server.default_config with Server.c_drain_timeout_ms = 30_000 }
  in
  let report =
    with_server ~config (fun t path ->
        let ((_, slow_ic, slow_oc) as slow_conn) = connect path in
        Fun.protect
          ~finally:(fun () -> close_conn slow_conn)
          (fun () ->
            (* open (and acknowledge) the late connection before the
               drain closes the listener *)
            let ((_, late_ic, late_oc) as late_conn) = connect path in
            Fun.protect
              ~finally:(fun () -> close_conn late_conn)
              (fun () ->
                ack_conn late_conn;
                Protocol.write_command slow_oc (run_cmd ~doc slow_query);
                wait_active t;
                Server.request_drain t;
                Protocol.write_command late_oc (run_cmd "1 + 1");
                (match Protocol.read_response late_ic with
                 | Protocol.Error { code; exit; retry_after_ms; _ } ->
                   Alcotest.(check string) "draining refuses new RUNs"
                     "XQENG0007" code;
                   Alcotest.(check int) "resource exit family" 4 exit;
                   Alcotest.(check (option int)) "hints the drain window"
                     (Some 30_000) retry_after_ms
                 | Protocol.Payload _ ->
                   Alcotest.fail "RUN admitted while draining");
                (* the in-flight query still completes, byte-identical *)
                match Protocol.read_response slow_ic with
                | Protocol.Payload got ->
                  Alcotest.(check string) "in-flight completes intact"
                    (slow_expected n) got
                | Protocol.Error { message; _ } ->
                  Alcotest.failf "in-flight query broken by drain: %s"
                    message)))
  in
  Alcotest.(check int) "one query was in flight at the signal" 1
    report.Server.dr_inflight_at_drain;
  Alcotest.(check int) "nothing needed cancelling" 0 report.Server.dr_cancelled

let test_drain_cancels_stragglers () =
  let n = 110 in
  let doc = Protocol.Doc_inline (slow_doc n) in
  let config =
    { Server.default_config with Server.c_drain_timeout_ms = 100 }
  in
  let report =
    with_server ~config (fun t path ->
        let ((_, slow_ic, slow_oc) as slow_conn) = connect path in
        Fun.protect
          ~finally:(fun () -> close_conn slow_conn)
          (fun () ->
            Protocol.write_command slow_oc (run_cmd ~doc slow_query);
            wait_active t;
            Server.request_drain t;
            (* past the 100 ms window the governor is cancelled: the
               client gets a clean XQENG0004 ERR, never partial bytes *)
            match Protocol.read_response slow_ic with
            | Protocol.Error { code; exit; _ } ->
              Alcotest.(check string) "straggler cancelled cooperatively"
                "XQENG0004" code;
              Alcotest.(check int) "resource exit family" 4 exit
            | Protocol.Payload _ ->
              Alcotest.fail "straggler outlived the drain deadline"))
  in
  Alcotest.(check int) "the straggler was cancelled" 1
    report.Server.dr_cancelled

let test_inprocess_socket_guard () =
  ignore
    (with_server (fun _t path ->
         let other = Server.create () in
         (match Server.serve_unix other ~path ~stop:(fun () -> true) () with
          | _ -> Alcotest.fail "second server bound over a live socket"
          | exception Server.Socket_in_use msg ->
            Alcotest.(check bool) "names the socket path" true
              (contains msg path));
         (* and the probe did not disturb the live server *)
         match request path Protocol.Ping with
         | Protocol.Payload p ->
           Alcotest.(check string) "original still serving" "pong" p
         | Protocol.Error { message; _ } ->
           Alcotest.failf "original server upset by the probe: %s" message))

(* --- the retrying client ------------------------------------------------- *)

let test_client_honors_retry_hints () =
  let config =
    {
      Server.default_config with
      Server.c_admission_watermark_mb = Some 64;
      c_retry_after_ms = 60;
    }
  in
  ignore
    (with_server ~config (fun t path ->
         let hot = 512 * 1024 * 1024 in
         Governor.charge_on (Server.house t) hot;
         (* pressure lifts while the client is backing off on hints *)
         let lifter =
           Thread.create
             (fun () ->
               Thread.delay 0.35;
               Governor.uncharge_on (Server.house t) hot)
             ()
         in
         let c =
           Client.create ~attempts:12 ~base_backoff_ms:20 ~seed:7
             ~socket:path ()
         in
         Fun.protect
           ~finally:(fun () ->
             Client.close c;
             Thread.join lifter)
           (fun () ->
             (match Client.request c (run_cmd "1 + 1") with
              | Ok p ->
                Alcotest.(check string) "served once pressure lifted" "2\n" p
              | Error f ->
                Alcotest.failf "client gave up: %s" (Client.failure_message f));
             let s = Client.stats c in
             Alcotest.(check bool) "retried at least once" true
               (s.Client.s_retries >= 1);
             Alcotest.(check bool) "honoured a RETRY-AFTER-MS hint" true
               (s.Client.s_honored_hints >= 1))))

(* with_server picks its own socket path, so the late-server test runs
   its own small harness bound to the client's path. *)
let test_client_reconnects_to_late_server () =
  let path = fresh_sock_path () in
  let c =
    Client.create ~attempts:30 ~base_backoff_ms:40 ~seed:9 ~socket:path ()
  in
  let result = ref (Error (Client.Unreachable "not attempted")) in
  let requester =
    Thread.create (fun () -> result := Client.request c Protocol.Ping) ()
  in
  (* let the first attempts fail against the absent socket *)
  Thread.delay 0.3;
  let t = Server.create () in
  let th =
    Thread.create
      (fun () ->
        ignore (Server.serve_unix t ~path ~stop:(fun () -> false) ()))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Thread.join th;
      Client.close c;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Thread.join requester;
      (match !result with
       | Ok p -> Alcotest.(check string) "pong after reconnect" "pong" p
       | Error f ->
         Alcotest.failf "client never reached the late server: %s"
           (Client.failure_message f));
      let s = Client.stats c in
      Alcotest.(check bool) "reconnects were counted" true
        (s.Client.s_reconnects >= 1))

(* --- the real binary ----------------------------------------------------- *)

let server_exe =
  Filename.concat ".." (Filename.concat "bin" "xq_server_main.exe")

let spawn_daemon ?(env = []) args ~stderr_file =
  let err_fd =
    Unix.openfile stderr_file
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o600
  in
  let argv = Array.of_list (server_exe :: args) in
  let pid =
    if env = [] then
      Unix.create_process server_exe argv Unix.stdin Unix.stdout err_fd
    else
      Unix.create_process_env server_exe argv
        (Array.append (Unix.environment ()) (Array.of_list env))
        Unix.stdin Unix.stdout err_fd
  in
  Unix.close err_fd;
  pid

(* Reap [pid] within [timeout_ms]; SIGKILL and fail if it overstays. *)
let reap pid ~timeout_ms ~what =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0) in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Alcotest.failf "%s did not exit within %d ms" what timeout_ms
      end
      else begin
        Thread.delay 0.02;
        wait ()
      end
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let kill_quietly pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let status_name = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n

let ping_daemon ?(attempts = 60) path =
  let c =
    Client.create ~attempts ~base_backoff_ms:25 ~max_backoff_ms:200 ~seed:1
      ~socket:path ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> Client.request c Protocol.Ping)

let wait_ready pid path ~what =
  match ping_daemon path with
  | Ok "pong" -> ()
  | Ok other -> Alcotest.failf "%s: odd ping reply %S" what other
  | Error f ->
    kill_quietly pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Alcotest.failf "%s never became ready: %s" what (Client.failure_message f)

(* Spawn the real daemon, run [f pid path] (which must reap the daemon
   and return its status), and hand back (status, stderr bytes). *)
let with_daemon ?env args f =
  let path = fresh_sock_path () in
  let stderr_file = Filename.temp_file "xq-daemon" ".err" in
  let pid = spawn_daemon ?env ([ "serve"; "-s"; path ] @ args) ~stderr_file in
  let status =
    Fun.protect
      ~finally:(fun () ->
        (* belt and braces: nothing survives a failing test *)
        kill_quietly pid Sys.sigkill;
        (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
         with Unix.Unix_error _ -> ());
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        wait_ready pid path ~what:"daemon";
        f pid path)
  in
  let err = read_file stderr_file in
  (try Sys.remove stderr_file with Sys_error _ -> ());
  (status, err)

let test_daemon_survives_signals () =
  let status, err =
    with_daemon [] (fun pid path ->
        (* a handled signal lands in select(2)/accept(2) as EINTR; the
           pre-fix daemon died here with an uncaught Unix_error *)
        for _ = 1 to 5 do
          kill_quietly pid Sys.sigusr1;
          Thread.delay 0.03
        done;
        (match ping_daemon path with
         | Ok p -> Alcotest.(check string) "answers after signals" "pong" p
         | Error f ->
           Alcotest.failf "daemon lost to SIGUSR1: %s"
             (Client.failure_message f));
        kill_quietly pid Sys.sigusr1;
        (match ping_daemon path with
         | Ok p -> Alcotest.(check string) "still answering" "pong" p
         | Error f -> Alcotest.failf "lost: %s" (Client.failure_message f));
        kill_quietly pid Sys.sigterm;
        reap pid ~timeout_ms:10_000 ~what:"daemon")
  in
  (match status with
   | Unix.WEXITED 0 -> ()
   | s ->
     Alcotest.failf "SIGTERM must drain to exit 0, got %s" (status_name s));
  Alcotest.(check bool) "final drain note flushed" true
    (contains err "drained")

let test_daemon_refuses_live_socket () =
  let status, _ =
    with_daemon [] (fun pid path ->
        let stderr2 = Filename.temp_file "xq-steal" ".err" in
        let pid2 = spawn_daemon [ "serve"; "-s"; path ] ~stderr_file:stderr2 in
        let status2 = reap pid2 ~timeout_ms:15_000 ~what:"second daemon" in
        let err2 = read_file stderr2 in
        (try Sys.remove stderr2 with Sys_error _ -> ());
        (match status2 with
         | Unix.WEXITED 1 -> ()
         | s ->
           Alcotest.failf "socket steal must be a usage error (exit 1), got %s"
             (status_name s));
        Alcotest.(check bool) "refusal names the path" true
          (contains err2 path);
        Alcotest.(check bool) "refusal names the owning pid" true
          (contains err2 (Printf.sprintf "pid %d" pid));
        Alcotest.(check bool) "refusal is explicit" true
          (contains err2 "refusing to steal");
        (* the probe and refusal left the original daemon untouched *)
        (match ping_daemon path with
         | Ok p -> Alcotest.(check string) "original unharmed" "pong" p
         | Error f ->
           Alcotest.failf "original daemon lost: %s"
             (Client.failure_message f));
        kill_quietly pid Sys.sigterm;
        reap pid ~timeout_ms:10_000 ~what:"daemon")
  in
  match status with
  | Unix.WEXITED 0 -> ()
  | s ->
    Alcotest.failf "original daemon failed to drain cleanly: %s"
      (status_name s)

let test_daemon_drains_under_load () =
  let n = 90 in
  let doc = Protocol.Doc_inline (slow_doc n) in
  let status, err =
    with_daemon [ "--drain-timeout"; "30000" ] (fun pid path ->
        let ((_, slow_ic, slow_oc) as slow_conn) = connect path in
        let ((_, late_ic, late_oc) as late_conn) = connect path in
        Fun.protect
          ~finally:(fun () ->
            close_conn slow_conn;
            close_conn late_conn)
          (fun () ->
            ack_conn late_conn;
            Protocol.write_command slow_oc (run_cmd ~doc slow_query);
            (* wait until STATS shows the query admitted *)
            let rec wait k =
              if k = 0 then Alcotest.fail "query never showed in STATS";
              match request path Protocol.Stats with
              | Protocol.Payload stats
                when stat_of_text stats "active" = Some 1 ->
                ()
              | _ ->
                Thread.delay 0.01;
                wait (k - 1)
              | exception _ ->
                Thread.delay 0.01;
                wait (k - 1)
            in
            wait 500;
            kill_quietly pid Sys.sigterm;
            Thread.delay 0.05;
            (* new work on a surviving connection: refused with the
               drain-window hint *)
            Protocol.write_command late_oc (run_cmd "1 + 1");
            (match Protocol.read_response late_ic with
             | Protocol.Error { code; retry_after_ms; _ } ->
               Alcotest.(check string) "draining refusal" "XQENG0007" code;
               Alcotest.(check (option int)) "hints the drain window"
                 (Some 30_000) retry_after_ms
             | Protocol.Payload _ -> Alcotest.fail "admitted while draining");
            (* the in-flight query's bytes arrive whole *)
            (match Protocol.read_response slow_ic with
             | Protocol.Payload got ->
               Alcotest.(check string) "in-flight byte-identical"
                 (slow_expected n) got
             | Protocol.Error { message; _ } ->
               Alcotest.failf "in-flight query lost to drain: %s" message);
            reap pid ~timeout_ms:30_000 ~what:"draining daemon"))
  in
  (match status with
   | Unix.WEXITED 0 -> ()
   | s -> Alcotest.failf "drain under load must exit 0, got %s" (status_name s));
  Alcotest.(check bool) "drain report on stderr" true (contains err "drained")

(* --- supervised chaos ----------------------------------------------------- *)

let corpus_dir =
  let beside =
    Filename.concat (Filename.dirname Sys.executable_name) "corpus"
  in
  if Sys.file_exists beside && Sys.is_directory beside then beside
  else "corpus"

let corpus_entries =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.map Filename.remove_extension
    |> List.sort compare
  else []

(* The chaos invariant, per request: a full byte-identical payload, a
   clean well-formed ERR, or a connection failure the client retried —
   never partial output. Injected faults in the daemon (connection
   kills, worker crashes, allocation/spawn trips) make all three
   outcomes common; the supervisor keeps the daemon resurrectable
   throughout. *)
let test_supervised_chaos () =
  Alcotest.(check bool) "corpus present" true (corpus_entries <> []);
  (* Rates are deliberately split: the shared XQ_FAULTS rate stays low
     (the alloc stream draws dozens of times per query, so even 0.05
     would turn almost every query into a resource trip) while the
     crash stream runs hot enough to kill the worker many times over
     the storm. The restart window is short so the supervisor's
     crash-count stays small and its backoff stays near the base. *)
  let args =
    [
      "--supervise"; "--chaos-crash=0.08"; "--backoff-ms"; "30";
      "--max-restarts"; "25"; "--restart-window"; "5"; "--max-concurrent";
      "1"; "--drain-timeout"; "10000";
    ]
  in
  let status, err =
    with_daemon ~env:[ "XQ_FAULTS=11:0.01" ] args (fun pid path ->
        let violations = ref [] in
        let clean_errs = ref 0 and unreachable = ref 0 and ok = ref 0 in
        let honored = ref 0 and reconnects = ref 0 in
        let tally = Mutex.create () in
        let note r =
          Mutex.lock tally;
          r ();
          Mutex.unlock tally
        in
        let worker tid =
          let c =
            Client.create ~attempts:10 ~base_backoff_ms:30 ~max_backoff_ms:1000
              ~deadline_ms:20_000 ~seed:(100 + tid) ~socket:path ()
          in
          Fun.protect
            ~finally:(fun () ->
              let s = Client.stats c in
              note (fun () ->
                  honored := !honored + s.Client.s_honored_hints;
                  reconnects := !reconnects + s.Client.s_reconnects);
              Client.close c)
            (fun () ->
              let nent = List.length corpus_entries in
              for round = 0 to 1 do
                List.iteri
                  (fun i _ ->
                    let name =
                      List.nth corpus_entries ((i + tid + round) mod nent)
                    in
                    let base = Filename.concat corpus_dir name in
                    let expected = read_file (base ^ ".expected") in
                    let doc =
                      Protocol.Doc_inline (read_file (base ^ ".xml"))
                    in
                    match
                      Client.request c
                        (run_cmd ~doc (read_file (base ^ ".xq")))
                    with
                    | Ok got when got = expected -> note (fun () -> incr ok)
                    | Ok got ->
                      note (fun () ->
                          violations :=
                            Printf.sprintf "%s: partial/corrupt %S" name got
                            :: !violations)
                    | Error (Client.Server_error { code; _ })
                      when String.length code >= 5
                           && String.sub code 0 5 = "XQENG" ->
                      (* injected resource/cancellation trips: clean,
                         well-formed, attributable *)
                      note (fun () -> incr clean_errs)
                    | Error (Client.Server_error { code; message; _ }) ->
                      note (fun () ->
                          violations :=
                            Printf.sprintf "%s: unclean ERR %s %s" name code
                              message
                            :: !violations)
                    | Error (Client.Unreachable _) ->
                      (* retries exhausted while the supervisor was
                         restarting the worker; allowed as long as the
                         daemon comes back (checked below) *)
                      note (fun () -> incr unreachable))
                  corpus_entries
              done)
        in
        let threads = List.init 3 (fun tid -> Thread.create worker tid) in
        List.iter Thread.join threads;
        (match !violations with
         | [] -> ()
         | v :: _ ->
           Alcotest.failf "%d invariant violation(s), first: %s"
             (List.length !violations)
             v);
        Alcotest.(check bool) "some requests served byte-identically" true
          (!ok > 0);
        (* never a wedged daemon: whatever the storm did, it answers *)
        (match ping_daemon ~attempts:80 path with
         | Ok p -> Alcotest.(check string) "resurrectable daemon" "pong" p
         | Error f ->
           Alcotest.failf "daemon wedged after chaos: %s"
             (Client.failure_message f));
        (* Backstop for the hint assertion: the storm makes admission
           collisions (and so honoured hints) overwhelmingly likely but
           not certain, so if none happened, force one — park a slow
           query in the single admission slot, then ask a retrying
           client for new work; its first attempt draws XQENG0007 with
           a RETRY-AFTER-MS hint and it backs off accordingly. *)
        let tries = ref 0 in
        while !honored = 0 && !tries < 5 do
          incr tries;
          let ((_, _, slow_oc) as slow_conn) = connect path in
          ack_conn slow_conn;
          Protocol.write_command slow_oc
            (run_cmd ~doc:(Protocol.Doc_inline (slow_doc 90)) slow_query);
          let c =
            Client.create ~attempts:6 ~base_backoff_ms:50 ~deadline_ms:5000
              ~seed:(!tries * 7) ~socket:path ()
          in
          (match Client.request c (run_cmd "1 + 1") with
           | Ok _ | Error _ -> ());
          let s = Client.stats c in
          honored := !honored + s.Client.s_honored_hints;
          Client.close c;
          close_conn slow_conn
        done;
        Alcotest.(check bool) "at least one RETRY-AFTER-MS hint honoured" true
          (!honored >= 1);
        ignore (!reconnects, !clean_errs, !unreachable);
        kill_quietly pid Sys.sigterm;
        reap pid ~timeout_ms:30_000 ~what:"supervised daemon")
  in
  (match status with
   | Unix.WEXITED 0 -> ()
   | s ->
     Alcotest.failf "supervised drain must exit 0, got %s" (status_name s));
  (* the crash stream fired and the supervisor brought the worker back *)
  Alcotest.(check bool) "at least one supervisor restart" true
    (contains err "xq-supervisor: worker")

let suites =
  [
    ( "lifecycle-protocol",
      [
        Alcotest.test_case "RETRY-AFTER-MS hint round trip" `Quick
          test_retry_hint_roundtrip;
        Alcotest.test_case "oversized counted fields answered USAGE" `Quick
          test_oversized_request_bounded;
        Alcotest.test_case "client bounds response frames" `Quick
          test_client_bounds_response_frames;
      ] );
    ( "lifecycle-connections",
      [
        Alcotest.test_case "connection cap refuses with hint" `Quick
          test_connection_cap;
        Alcotest.test_case "live socket is not stolen (in-process)" `Quick
          test_inprocess_socket_guard;
      ] );
    ( "lifecycle-drain",
      [
        Alcotest.test_case "drain completes in-flight, refuses new" `Quick
          test_drain_completes_inflight;
        Alcotest.test_case "drain deadline cancels stragglers" `Quick
          test_drain_cancels_stragglers;
      ] );
    ( "lifecycle-client",
      [
        Alcotest.test_case "backoff honours RETRY-AFTER-MS" `Quick
          test_client_honors_retry_hints;
        Alcotest.test_case "reconnects to a late server" `Quick
          test_client_reconnects_to_late_server;
      ] );
    ( "lifecycle-daemon",
      [
        Alcotest.test_case "handled signals never kill the accept loop" `Quick
          test_daemon_survives_signals;
        Alcotest.test_case "refuses to steal a live socket" `Quick
          test_daemon_refuses_live_socket;
        Alcotest.test_case "SIGTERM drains under load, exit 0" `Quick
          test_daemon_drains_under_load;
      ] );
    ( "server-chaos",
      [
        Alcotest.test_case "supervised corpus run under kill faults" `Quick
          test_supervised_chaos;
      ] );
  ]
