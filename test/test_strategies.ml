(* Cross-strategy differential tests: the same randomized workloads run
   through the direct evaluator and through the plan executor under every
   grouping strategy (hash / sort / auto with sort fusion), and must
   serialize identically.  Plus direct unit tests of the grouping
   operators: forced hash collisions, comparator-scan grouping, and the
   run-splitting that keeps sort-based grouping exact. *)

open Xq_xdm
open Helpers
module Plan = Xq_algebra.Plan
module Exec = Xq_algebra.Exec
module Optimizer = Xq_algebra.Optimizer
module Group = Xq_engine.Group
module Key = Xq_engine.Key
module Prng = Xq_workload.Prng

let check_int = Alcotest.(check int)
let serialize = Xq_xml.Serialize.sequence
let to_alcotest = QCheck_alcotest.to_alcotest

(* --- randomized differential tests ---------------------------------------- *)

(* A random <r><i><k>…</k><v>…</v></i>…</r> document.  Keys are drawn
   from a small pool so groups have several members; the pool mixes
   plain integers, letters and zero-padded numerals (so "07" and "7"
   stay distinct keys), and the occasional item has no <k> at all
   (grouping on the empty sequence). *)
let random_doc rng =
  let open Xq_xml.Builder in
  let pool = 1 + Prng.int rng 8 in
  let n = 1 + Prng.int rng 50 in
  let key () =
    match Prng.int rng 4 with
    | 0 -> string_of_int (Prng.int rng pool)
    | 1 -> String.make 1 (Char.chr (Char.code 'a' + Prng.int rng pool))
    | 2 -> Printf.sprintf "%02d" (Prng.int rng pool)
    | _ -> string_of_int (10 * Prng.int rng pool)
  in
  let item _ =
    el "i"
      ((if Prng.one_in rng 12 then [] else [ el_text "k" (key ()) ])
       @ [ el_text "v" (string_of_int (Prng.int rng 100)) ])
  in
  doc (el "r" (List.init n item))

let q_plain =
  "for $i in //i group by $i/k into $k nest $i/v into $vs \
   return <g>{$k}<n>{count($vs)}</n><s>{sum($vs)}</s></g>"

(* The order-by is on exactly the (bare, ascending) group key, so the
   Auto strategy fuses it into a sorted-output sort grouping. *)
let q_ordered =
  "for $i in //i group by $i/k into $k nest $i/v into $vs \
   order by $k return <g>{$k}{$vs}</g>"

(* Two keys, ordered by both — multi-key fusion. *)
let q_multi =
  "for $i in //i group by $i/k into $k, $i/v into $v nest $i into $is \
   order by $k, $v return <g>{$k}{$v}<n>{count($is)}</n></g>"

(* A [using] comparator forces the scan-group operator under every
   strategy. *)
let q_using =
  "for $i in //i group by $i/k into $k using deep-equal \
   nest $i/v into $vs return <g>{$k}{$vs}</g>"

let strategies =
  [ ("hash", Optimizer.Hash); ("sort", Optimizer.Sort); ("auto", Optimizer.Auto) ]

(* Every strategy must also be byte-identical at any domain-pool degree
   (sequential execution is the reference). *)
let parallels = [ 1; 2; 4 ]

let seeds = 120

let differential name query =
  test (Printf.sprintf "%s agrees across strategies (%d seeds)" name seeds)
    (fun () ->
      for seed = 0 to seeds - 1 do
        let rng = Prng.create (0x5eed + seed) in
        let doc = random_doc rng in
        let expected = serialize (Xq_engine.Eval.run ~context_node:doc query) in
        List.iter
          (fun (label, strategy) ->
            List.iter
              (fun parallel ->
                let got =
                  serialize
                    (Exec.run_string ~strategy ~parallel ~context_node:doc
                       query)
                in
                if got <> expected then
                  Alcotest.failf
                    "seed %d, strategy %s, parallel %d:\nexpected %s\ngot      %s"
                    seed label parallel expected got)
              parallels;
            (* the plan optimizer must not disturb any strategy either *)
            let optimized =
              serialize
                (Exec.run_string ~optimize:true ~strategy ~parallel:1
                   ~context_node:doc query)
            in
            if optimized <> expected then
              Alcotest.failf "seed %d, strategy %s (optimized):\nexpected %s\ngot      %s"
                seed label expected optimized)
          strategies
      done)

let differential_tests =
  [
    differential "plain grouping" q_plain;
    differential "ordered grouping (sort fusion)" q_ordered;
    differential "multi-key ordered grouping" q_multi;
    differential "using-comparator grouping" q_using;
  ]

(* Batch size is a third dimension: 1 (item-at-a-time, the pre-batching
   executor), 3 (vector boundaries land mid-group everywhere) and the
   default must all serialize identically under every strategy. *)
let batch_sizes = [ Some 1; Some 3; None ]

let batch_differential name query =
  test
    (Printf.sprintf "%s agrees across batch sizes (%d seeds)" name (seeds / 2))
    (fun () ->
      Fun.protect
        ~finally:(fun () -> Xq_par.Batch.set_size None)
        (fun () ->
          for seed = 0 to (seeds / 2) - 1 do
            let rng = Prng.create (0xba7c4 + seed) in
            let doc = random_doc rng in
            Xq_par.Batch.set_size None;
            let expected =
              serialize (Xq_engine.Eval.run ~context_node:doc query)
            in
            List.iter
              (fun batch ->
                Xq_par.Batch.set_size batch;
                List.iter
                  (fun (label, strategy) ->
                    let got =
                      serialize
                        (Exec.run_string ~strategy ~parallel:1
                           ~context_node:doc query)
                    in
                    if got <> expected then
                      Alcotest.failf
                        "seed %d, strategy %s, batch %s:\n\
                         expected %s\ngot      %s"
                        seed label
                        (match batch with
                         | Some b -> string_of_int b
                         | None -> "default")
                        expected got)
                  strategies)
              batch_sizes
          done))

let batch_tests =
  [
    batch_differential "plain grouping" q_plain;
    batch_differential "ordered grouping (sort fusion)" q_ordered;
    batch_differential "using-comparator grouping" q_using;
  ]

(* --- hash collisions ------------------------------------------------------- *)

let seq_int n : Xseq.t = [ Item.Atomic (Atomic.Int n) ]

let members g = List.map snd g.Group.members

let collision_tests =
  [
    test "distinct keys stay separate under forced hash collisions" (fun () ->
        let tuples = [ (1, "a"); (2, "b"); (1, "c"); (2, "d"); (3, "e") ] in
        let keys_of (k, _) = [ seq_int k ] in
        let grouped hash = Group.group_hash ?hash ~keys_of tuples in
        let collided = grouped (Some (fun _ -> 42)) in
        check_int "groups despite collisions" 3 (List.length collided);
        Alcotest.(check (list (list string)))
          "same groups as the honest hash"
          (List.map members (grouped None))
          (List.map members collided);
        Alcotest.(check (list string))
          "first group keeps input order" [ "a"; "c" ]
          (members (List.hd collided)));
    test "collision probing is counted as comparator work" (fun () ->
        let tally = ref 0 in
        let tuples = [ (1, "a"); (2, "b"); (3, "c") ] in
        ignore
          (Group.group_hash ~hash:(fun _ -> 0) ~tally
             ~keys_of:(fun (k, _) -> [ seq_int k ])
             tuples);
        (* everything lands in one bucket: tuple 2 probes group 1, tuple 3
           probes groups 1 and 2 *)
        check_int "deep-equal probes" 3 !tally);
  ]

(* --- comparator-scan grouping ---------------------------------------------- *)

let scan_tests =
  [
    test "scan grouping with a mod-3 comparator" (fun () ->
        let tally = ref 0 in
        let equal _i (a : Key.single) (b : Key.single) =
          match (a.Key.orig, b.Key.orig) with
          | [ Item.Atomic (Atomic.Int x) ], [ Item.Atomic (Atomic.Int y) ] ->
            x mod 3 = y mod 3
          | _ -> false
        in
        let tuples = [ (1, "a"); (4, "b"); (2, "c"); (7, "d"); (3, "e") ] in
        let groups =
          Group.group_scan ~tally ~keys_of:(fun (k, _) -> [ seq_int k ])
            ~equal tuples
        in
        check_int "groups" 3 (List.length groups);
        Alcotest.(check (list (list string)))
          "members, first-occurrence order"
          [ [ "a"; "b"; "d" ]; [ "c" ]; [ "e" ] ]
          (List.map members groups);
        (* representative key is the first member's *)
        (match (List.hd groups).Group.keys with
         | [ [ Item.Atomic (Atomic.Int 1) ] ] -> ()
         | _ -> Alcotest.fail "representative key should be the first tuple's");
        (* newest-first probing: b:1, c:1, d:2 (misses group c first), e:2 *)
        check_int "comparator calls" 6 !tally);
    test "scan grouping short-circuits on key-arity mismatch" (fun () ->
        let tally = ref 0 in
        let keys_of (ks, _) = List.map seq_int ks in
        let equal _i (a : Key.single) (b : Key.single) =
          a.Key.orig = b.Key.orig
        in
        let groups =
          Group.group_scan ~tally ~keys_of ~equal
            [ ([ 1; 2 ], "a"); ([ 1 ], "b") ]
        in
        check_int "groups" 2 (List.length groups);
        (* the first keys match (1 call), then the arity mismatch is
           detected without invoking the comparator again *)
        check_int "comparator calls" 1 !tally);
  ]

(* --- sort-based grouping --------------------------------------------------- *)

let node_key text : Xseq.t =
  [ Item.Node (Xq_xml.Builder.(build (el_text "k" text))) ]

let str_key text : Xseq.t = [ Item.Atomic (Atomic.Str text) ]

let sort_group_tests =
  [
    test "sort grouping splits runs the sort order conflates" (fun () ->
        (* a <k>a</k> element and the string "a" compare 0 under the sort
           order (nodes order by string value) but are not deep-equal, so
           they must land in different groups *)
        check_int "sort order conflates node and string"
          0
          (Group.compare_key_lists [ node_key "a" ] [ str_key "a" ]);
        let tuples =
          [ (node_key "a", 1); (str_key "a", 2); (node_key "a", 3) ]
        in
        let keys_of (k, _) = [ k ] in
        let sorted = Group.group_sort ~keys_of tuples in
        let hashed = Group.group_hash ~keys_of tuples in
        Alcotest.(check (list (list int)))
          "same groups as hash" (List.map members hashed)
          (List.map members sorted);
        check_int "two groups" 2 (List.length sorted));
    test "sorted_output emits groups in nondecreasing key order" (fun () ->
        let tuples =
          List.map (fun k -> (seq_int k, k)) [ 5; 1; 3; 1; 5; 2; 3 ]
        in
        let groups =
          Group.group_sort ~sorted_output:true ~keys_of:(fun (k, _) -> [ k ])
            tuples
        in
        check_int "groups" 4 (List.length groups);
        let keys = List.map (fun g -> g.Group.keys) groups in
        let rec nondecreasing = function
          | a :: (b :: _ as rest) ->
            Group.compare_key_lists a b <= 0 && nondecreasing rest
          | _ -> true
        in
        Alcotest.(check bool) "key order" true (nondecreasing keys);
        Alcotest.(check (list (list int)))
          "members follow input order within each group"
          [ [ 1; 1 ]; [ 2 ]; [ 3; 3 ]; [ 5; 5 ] ]
          (List.map members groups));
  ]

(* --- plan shapes under each strategy --------------------------------------- *)

let plan_of src =
  match (Xq_lang.Parser.parse_query src).Xq_lang.Ast.body with
  | Xq_lang.Ast.Flwor f -> Plan.of_flwor f
  | _ -> Alcotest.fail "expected a FLWOR body"

let pipeline_under strategy src =
  (Optimizer.apply_strategy strategy (plan_of src)).Plan.pipeline

let shape_tests =
  [
    test "sort strategy turns hash grouping into sort grouping" (fun () ->
        match
          pipeline_under Optimizer.Sort
            "for $x in //i group by $x/k into $k return $k"
        with
        | Plan.Sort_group { sorted_output = false; _ } -> ()
        | _ -> Alcotest.fail "expected SORT-GROUP without sorted output");
    test "auto fuses an order-by on exactly the group keys" (fun () ->
        match
          pipeline_under Optimizer.Auto
            "for $x in //i group by $x/k into $k nest $x into $is order by \
             $k return $k"
        with
        | Plan.Sort_group { sorted_output = true; _ } -> ()
        | _ -> Alcotest.fail "expected the sort to fuse into SORT-GROUP");
    test "auto keeps the sort when it is not on the bare keys" (fun () ->
        match
          pipeline_under Optimizer.Auto
            "for $x in //i group by $x/k into $k nest $x into $is order by \
             number($k) return $k"
        with
        | Plan.Sort { input = Plan.Hash_group _; _ } -> ()
        | _ -> Alcotest.fail "number($k) must not be fused");
    test "auto keeps the sort when it is descending" (fun () ->
        match
          pipeline_under Optimizer.Auto
            "for $x in //i group by $x/k into $k nest $x into $is order by \
             $k descending return $k"
        with
        | Plan.Sort { input = Plan.Hash_group _; _ } -> ()
        | _ -> Alcotest.fail "a descending sort must not be fused");
    test "strategies leave using-comparator groupings as scans" (fun () ->
        let src =
          "for $x in //i group by $x/k into $k using deep-equal return $k"
        in
        match
          (pipeline_under Optimizer.Sort src, pipeline_under Optimizer.Auto src)
        with
        | Plan.Scan_group _, Plan.Scan_group _ -> ()
        | _ -> Alcotest.fail "scan groupings must survive every strategy");
  ]

(* --- instrumentation ------------------------------------------------------- *)

let instrumentation_tests =
  [
    test "run_instrumented reports per-operator rows and groups" (fun () ->
        let doc =
          Xq_xml.Xml_parse.parse
            "<r><i><k>a</k></i><i><k>b</k></i><i><k>a</k></i></r>"
        in
        let q =
          Xq_lang.Parser.parse_query
            "for $i in //i group by $i/k into $k nest $i into $is return $k"
        in
        let plan =
          match q.Xq_lang.Ast.body with
          | Xq_lang.Ast.Flwor f -> Plan.of_flwor f
          | _ -> Alcotest.fail "expected FLWOR"
        in
        let ctx = Exec.query_context ~context_node:doc q in
        let result, stats = Exec.run_instrumented ctx plan in
        check_int "one entry per operator plus RETURN"
          (Plan.size plan.Plan.pipeline + 1)
          (List.length stats);
        let last = List.nth stats (List.length stats - 1) in
        Alcotest.(check string) "RETURN last" "RETURN" last.Exec.Stats.label;
        check_int "RETURN emits the result" (List.length result)
          last.Exec.Stats.rows_out;
        let by_label l =
          List.find (fun (s : Exec.Stats.entry) -> s.Exec.Stats.label = l) stats
        in
        let group = by_label "HASH-GROUP" in
        check_int "group rows in" 3 group.Exec.Stats.rows_in;
        check_int "group rows out" 2 group.Exec.Stats.rows_out;
        Alcotest.(check (option int))
          "groups built" (Some 2) group.Exec.Stats.groups_built;
        Alcotest.(check bool)
          "duplicate keys force deep-equal probes" true
          (group.Exec.Stats.cmp_calls > 0);
        check_int "expand rows out" 3 (by_label "FOR-EXPAND $i").Exec.Stats.rows_out);
    test "run_instrumented matches plain execution under every strategy"
      (fun () ->
        let rng = Prng.create 7 in
        let doc = random_doc rng in
        let q = Xq_lang.Parser.parse_query q_ordered in
        let ctx = Exec.query_context ~context_node:doc q in
        let expected = serialize (Exec.run_string ~context_node:doc q_ordered) in
        List.iter
          (fun (label, strategy) ->
            let plan =
              match q.Xq_lang.Ast.body with
              | Xq_lang.Ast.Flwor f ->
                Optimizer.apply_strategy strategy (Plan.of_flwor f)
              | _ -> Alcotest.fail "expected FLWOR"
            in
            let result, stats = Exec.run_instrumented ctx plan in
            Alcotest.(check string) label expected (serialize result);
            let grouping =
              List.find
                (fun (s : Exec.Stats.entry) ->
                  s.Exec.Stats.groups_built <> None)
                stats
            in
            Alcotest.(check bool)
              (label ^ " counts comparator work") true
              (grouping.Exec.Stats.cmp_calls >= 0))
          strategies);
  ]

(* --- order invariants of the sort comparator (qcheck) ---------------------- *)

let order_props =
  [
    QCheck.Test.make ~count:500
      ~name:"deep-equal key lists compare 0 under the sort order"
      (QCheck.pair Test_props.arb_sequence Test_props.arb_sequence)
      (fun (a, b) ->
        (not (Deep_equal.sequences a b))
        || Group.compare_key_lists [ a ] [ b ] = 0);
    QCheck.Test.make ~count:500 ~name:"the sort order is antisymmetric"
      (QCheck.pair Test_props.arb_sequence Test_props.arb_sequence)
      (fun (a, b) ->
        let sign n = compare n 0 in
        sign (Group.compare_key_lists [ a ] [ b ])
        = -sign (Group.compare_key_lists [ b ] [ a ]));
    QCheck.Test.make ~count:300
      ~name:"group_sort ≡ group_hash on random key sequences"
      (QCheck.list_of_size (QCheck.Gen.int_range 0 25) Test_props.arb_sequence)
      (fun keys ->
        let tuples = List.mapi (fun i k -> (k, i)) keys in
        let keys_of (k, _) = [ k ] in
        List.map members (Group.group_sort ~keys_of tuples)
        = List.map members (Group.group_hash ~keys_of tuples));
    QCheck.Test.make ~count:300
      ~name:"sorted_output is the same partition, reordered"
      (QCheck.list_of_size (QCheck.Gen.int_range 0 25) Test_props.arb_sequence)
      (fun keys ->
        let tuples = List.mapi (fun i k -> (k, i)) keys in
        let keys_of (k, _) = [ k ] in
        let as_multiset groups =
          List.sort compare (List.map members groups)
        in
        as_multiset (Group.group_sort ~sorted_output:true ~keys_of tuples)
        = as_multiset (Group.group_hash ~keys_of tuples));
  ]

let suites =
  [
    ("strategies.differential", differential_tests);
    ("strategies.batch", batch_tests);
    ("strategies.collisions", collision_tests);
    ("strategies.scan", scan_tests);
    ("strategies.sort-group", sort_group_tests);
    ("strategies.plans", shape_tests);
    ("strategies.instrumentation", instrumentation_tests);
    ("strategies.order", List.map to_alcotest order_props);
  ]
