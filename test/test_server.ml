(* Query-server battery: plan-cache and doc-store unit tests, admission
   control, a concurrent differential replay of test/corpus through a
   live socket server, a short Qgen fuzz sweep through the server path,
   and seeded connection-fault injection.

   The concurrency tests start a real [Server_core.serve_unix] daemon on
   a Unix socket under [Filename.get_temp_dir_name] and talk the wire
   protocol from client threads, so they exercise the same accept loop,
   per-connection threads and per-query worker domains production
   uses. *)

module Governor = Xq_governor.Governor
module Pipeline = Xq_pipeline.Pipeline
module Plan_cache = Xq_server.Plan_cache
module Doc_store = Xq_server.Doc_store
module Protocol = Xq_server.Protocol
module Server = Xq_server.Server_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* --- plan cache --------------------------------------------------------- *)

let compile_counting count source =
  fun () ->
    incr count;
    Pipeline.compile source

let knobs = Pipeline.default_knobs

let test_plan_lru_eviction () =
  let t = Plan_cache.create ~capacity:2 () in
  let count = ref 0 in
  let key n = Pipeline.cache_key ~knobs (Printf.sprintf "%d + %d" n n) in
  let get n =
    Plan_cache.find_or_add t (key n)
      (compile_counting count (Printf.sprintf "%d + %d" n n))
  in
  ignore (get 1);
  ignore (get 2);
  (* touch 1 so 2 becomes the LRU victim *)
  ignore (get 1);
  ignore (get 3);
  let s = Plan_cache.stats t in
  Alcotest.(check int) "capacity held" 2 s.Plan_cache.p_entries;
  Alcotest.(check int) "one eviction" 1 s.Plan_cache.p_evictions;
  (* 1 and 3 resident, 2 evicted: only 2 recompiles *)
  ignore (get 1);
  ignore (get 3);
  Alcotest.(check int) "no recompile for resident" 3 !count;
  ignore (get 2);
  Alcotest.(check int) "evicted key recompiles" 4 !count

let test_plan_cache_keying () =
  (* distinct strategies and flags must not share a slot, and the
     XQ_GROUP_STRATEGY environment default is part of the key *)
  let source = "for $x in /a/b return $x" in
  let k_direct = Pipeline.cache_key ~knobs source in
  let k_hash =
    Pipeline.cache_key
      ~knobs:{ knobs with Pipeline.k_strategy = Some Xq_algebra.Optimizer.Hash }
      source
  in
  let k_sort =
    Pipeline.cache_key
      ~knobs:{ knobs with Pipeline.k_strategy = Some Xq_algebra.Optimizer.Sort }
      source
  in
  let k_rw =
    Pipeline.cache_key ~knobs:{ knobs with Pipeline.k_rewrite = true } source
  in
  let k_ix =
    Pipeline.cache_key ~knobs:{ knobs with Pipeline.k_use_index = true } source
  in
  let keys = [ k_direct; k_hash; k_sort; k_rw; k_ix ] in
  Alcotest.(check int)
    "all keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  let saved = Sys.getenv_opt "XQ_GROUP_STRATEGY" in
  Unix.putenv "XQ_GROUP_STRATEGY" "sort";
  let k_env = Pipeline.cache_key ~knobs source in
  (match saved with
   | Some v -> Unix.putenv "XQ_GROUP_STRATEGY" v
   | None -> Unix.putenv "XQ_GROUP_STRATEGY" "");
  Alcotest.(check bool) "env default changes the key" true (k_env <> k_direct);
  (* and the key is injective against crafted query text: a query whose
     text embeds another key's rendering must not collide *)
  let k_sneaky = Pipeline.cache_key ~knobs k_direct in
  Alcotest.(check bool) "length-prefixing defeats embedding" true
    (k_sneaky <> k_direct)

let test_plan_cache_counters () =
  let house = Governor.create () in
  let t = Plan_cache.create ~capacity:4 ~account:house () in
  let count = ref 0 in
  let key = Pipeline.cache_key ~knobs "1 + 2" in
  ignore (Plan_cache.find_or_add t key (compile_counting count "1 + 2"));
  ignore (Plan_cache.find_or_add t key (compile_counting count "1 + 2"));
  ignore (Plan_cache.find_or_add t key (compile_counting count "1 + 2"));
  let s = Plan_cache.stats t in
  Alcotest.(check int) "hits" 2 s.Plan_cache.p_hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.p_misses;
  Alcotest.(check int) "compiled once" 1 !count;
  Alcotest.(check bool) "bytes charged on the account" true
    (Governor.charged_on house > 0);
  Alcotest.(check int) "stats agree with account" (Governor.charged_on house)
    s.Plan_cache.p_bytes;
  Plan_cache.clear t;
  Alcotest.(check int) "clear uncharges" 0 (Governor.charged_on house);
  (* a failing compile counts a miss and caches nothing *)
  (match
     Plan_cache.find_or_add t
       (Pipeline.cache_key ~knobs "for $")
       (fun () -> Pipeline.compile "for $")
   with
   | _ -> Alcotest.fail "bad query compiled"
   | exception _ -> ());
  Alcotest.(check int) "failure cached nothing" 0
    (Plan_cache.stats t).Plan_cache.p_entries

(* --- doc store ---------------------------------------------------------- *)

let temp_xml contents =
  let path = Filename.temp_file "xq-doc" ".xml" in
  write_file path contents;
  path

let test_doc_store_sharing_and_invalidation () =
  let t = Doc_store.create () in
  let path = temp_xml "<a><b>1</b></a>" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d1 = Doc_store.load t path in
      let d2 = Doc_store.load t path in
      Alcotest.(check bool) "identical node shared" true (d1 == d2);
      let s = Doc_store.stats t in
      Alcotest.(check int) "one miss" 1 s.Doc_store.d_misses;
      Alcotest.(check int) "one hit" 1 s.Doc_store.d_hits;
      (* rewrite with different bytes; force the mtime to move in case
         the filesystem clock is too coarse to see the rewrite *)
      write_file path "<a><b>2</b><c/></a>";
      let past = Unix.time () +. 5.0 in
      Unix.utimes path past past;
      let d3 = Doc_store.load t path in
      Alcotest.(check bool) "changed file reparsed" true (d1 != d3);
      let s = Doc_store.stats t in
      Alcotest.(check int) "invalidation recorded" 1 s.Doc_store.d_invalidations;
      Alcotest.(check int) "still one entry" 1 s.Doc_store.d_entries;
      let got =
        Xq_xml.Serialize.sequence
          (Xq_engine.Eval.eval_query ~context_node:d3
             (Xq_lang.Parser.parse_query "fn:count(/a/*)"))
      in
      Alcotest.(check string) "fresh content served" "2" got)

let test_doc_store_rename_swap () =
  (* a rename-swap of a same-length variant preserves mtime and size
     (rename(2) keeps the source file's timestamps) — only the inode
     betrays it. Regression: the store used to key on (mtime, size) and
     served the stale tree forever after such a swap. *)
  let t = Doc_store.create () in
  let path = temp_xml "<a><b>1</b></a>" in
  let alt = temp_xml "<a><b>2</b></a>" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; alt ])
    (fun () ->
      (* pin both files to one past mtime so the swap is invisible to
         an (mtime, size) check no matter the filesystem's precision *)
      let past = Unix.time () -. 60.0 in
      Unix.utimes path past past;
      Unix.utimes alt past past;
      let d1 = Doc_store.load t path in
      Sys.rename alt path;
      Unix.utimes path past past;
      let d2 = Doc_store.load t path in
      Alcotest.(check bool) "swap reparsed" true (d1 != d2);
      let got =
        Xq_xml.Serialize.sequence
          (Xq_engine.Eval.eval_query ~context_node:d2
             (Xq_lang.Parser.parse_query "string(/a/b)"))
      in
      Alcotest.(check string) "swapped content served" "2" got;
      let s = Doc_store.stats t in
      Alcotest.(check int) "swap counted as invalidation" 1
        s.Doc_store.d_invalidations)

let test_doc_store_capacity_eviction () =
  let house = Governor.create () in
  let body = String.make 200 'x' in
  let xml = "<d>" ^ body ^ "</d>" in
  let size = String.length xml in
  (* room for two resident documents, not three *)
  let cap = 2 * Doc_store.estimate_bytes ~size + 64 in
  let t = Doc_store.create ~capacity_bytes:cap ~account:house () in
  let p1 = temp_xml xml and p2 = temp_xml xml and p3 = temp_xml xml in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ p1; p2; p3 ])
    (fun () ->
      ignore (Doc_store.load t p1);
      ignore (Doc_store.load t p2);
      (* touch p1 so p2 is the LRU victim *)
      ignore (Doc_store.load t p1);
      ignore (Doc_store.load t p3);
      let s = Doc_store.stats t in
      Alcotest.(check int) "two resident" 2 s.Doc_store.d_entries;
      Alcotest.(check int) "one eviction" 1 s.Doc_store.d_evictions;
      Alcotest.(check int) "account tracks residents"
        (Governor.charged_on house) s.Doc_store.d_resident_bytes;
      (* p1 survived (recency), p2 did not *)
      let d1 = Doc_store.load t p1 in
      let d1' = Doc_store.load t p1 in
      Alcotest.(check bool) "survivor still shared" true (d1 == d1');
      ignore (Doc_store.load t p2);
      let s = Doc_store.stats t in
      Alcotest.(check int) "victim reloaded as a miss" 4 s.Doc_store.d_misses)

(* --- admission control -------------------------------------------------- *)

let run_cmd ?(doc = Protocol.Doc_none) source =
  Protocol.Run
    {
      Protocol.rq_source = source;
      rq_doc = doc;
      rq_knobs = Pipeline.default_knobs;
      rq_indent = false;
    }

let test_admission_watermark () =
  let config =
    { Server.default_config with Server.c_admission_watermark_mb = Some 64 }
  in
  let t = Server.create ~config () in
  (match Server.handle t (run_cmd "1 + 1") with
   | Protocol.Payload p -> Alcotest.(check string) "admitted before" "2\n" p
   | Protocol.Error { message; _ } -> Alcotest.failf "rejected: %s" message);
  (* saturate the gauge far past the 64 MB watermark *)
  let hot = 512 * 1024 * 1024 in
  Governor.charge_on (Server.house t) hot;
  (match Server.handle t (run_cmd "1 + 1") with
   | Protocol.Payload _ -> Alcotest.fail "admitted while hot"
   | Protocol.Error { code; exit; _ } ->
     Alcotest.(check string) "rejects with XQENG0007" "XQENG0007" code;
     Alcotest.(check int) "resource exit family" 4 exit);
  (* drain: the same server serves again, nothing was poisoned *)
  Governor.uncharge_on (Server.house t) hot;
  (match Server.handle t (run_cmd "1 + 1") with
   | Protocol.Payload p -> Alcotest.(check string) "drains back" "2\n" p
   | Protocol.Error { message; _ } ->
     Alcotest.failf "still rejecting after drain: %s" message);
  let stats = Server.stats_text t in
  Alcotest.(check bool) "reject counted" true
    (List.mem "admission_rejects 1" (String.split_on_char '\n' stats))

(* --- live-socket helpers ------------------------------------------------ *)

let sock_counter = ref 0

let with_server ?config f =
  let t = Server.create ?config () in
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xq-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        ignore
          (Server.serve_unix t ~path ~stop:(fun () -> Atomic.get stop) ()))
      ()
  in
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th)
    (fun () -> f t path)

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let request path cmd =
  let sock, ic, oc = connect path in
  Fun.protect
    ~finally:(fun () ->
      (* one fd behind both channels: flush, close exactly once — a
         double close(2) races concurrent connects that reuse the fd *)
      (try flush oc with Sys_error _ -> ());
      try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Protocol.write_command oc cmd;
      Protocol.read_response ic)

(* --- streamed requests and oversized documents --------------------------- *)

let stream_cmd ~doc source =
  Protocol.Run
    {
      Protocol.rq_source = source;
      rq_doc = doc;
      rq_knobs = { Pipeline.default_knobs with Pipeline.k_stream = Some true };
      rq_indent = false;
    }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let orders_xml n =
  let b = Buffer.create (n * 64) in
  Buffer.add_string b "<orders>";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "<order><cust>c%d</cust><amt>%d</amt></order>"
         (i mod 5) i)
  done;
  Buffer.add_string b "</orders>";
  Buffer.contents b

let orders_q =
  "for $o in /orders/order group by $o/cust into $k nest $o into $os \
   order by $k return <r>{$k, count($os), sum($os/amt)}</r>"

let test_streamed_request_identity () =
  (* the STREAM header bypasses the doc store and pulls the document
     through the streaming scan; the payload must be byte-identical to
     the materialized answer for both path and inline documents *)
  let xml = orders_xml 100 in
  let doc_path = temp_xml xml in
  Fun.protect
    ~finally:(fun () -> Sys.remove doc_path)
    (fun () ->
      with_server (fun _t sock ->
          let payload label = function
            | Protocol.Payload p -> p
            | Protocol.Error { message; _ } ->
              Alcotest.failf "%s failed: %s" label message
          in
          let mat =
            payload "materialized"
              (request sock (run_cmd ~doc:(Protocol.Doc_path doc_path) orders_q))
          in
          Alcotest.(check bool) "non-trivial payload" true
            (String.length mat > 20);
          Alcotest.(check string) "streamed path doc" mat
            (payload "streamed path"
               (request sock
                  (stream_cmd ~doc:(Protocol.Doc_path doc_path) orders_q)));
          Alcotest.(check string) "streamed inline doc" mat
            (payload "streamed inline"
               (request sock
                  (stream_cmd ~doc:(Protocol.Doc_inline xml) orders_q)))))

let test_oversized_inline_doc () =
  (* a DOCINLINE past --max-request-bytes is refused at the framing
     layer — a clean usage error, no payload bytes, and the server keeps
     serving — on both the materialized and the streamed path *)
  let config =
    { Server.default_config with Server.c_max_request_bytes = 4096 }
  in
  with_server ~config (fun _t sock ->
      let big = "<a>" ^ String.make 8192 'x' ^ "</a>" in
      let check_reject label cmd =
        match request sock cmd with
        | Protocol.Payload p ->
          Alcotest.failf "%s: oversize accepted (%d payload bytes)" label
            (String.length p)
        | Protocol.Error { exit; message; _ } ->
          Alcotest.(check int) (label ^ ": usage exit") 1 exit;
          Alcotest.(check bool)
            (label ^ ": names the cap")
            true (contains message "4096")
      in
      check_reject "materialized" (run_cmd ~doc:(Protocol.Doc_inline big) "1");
      check_reject "streamed" (stream_cmd ~doc:(Protocol.Doc_inline big) "1");
      match request sock (run_cmd "1 + 1") with
      | Protocol.Payload p -> Alcotest.(check string) "still serving" "2\n" p
      | Protocol.Error { message; _ } ->
        Alcotest.failf "server wedged after oversize: %s" message)

(* --- concurrent corpus replay ------------------------------------------- *)

let corpus_dir =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "corpus" in
  if Sys.file_exists beside && Sys.is_directory beside then beside else "corpus"

let corpus_entries =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.map Filename.remove_extension
    |> List.sort compare
  else []

let test_concurrent_corpus_replay () =
  Alcotest.(check bool) "corpus present" true (corpus_entries <> []);
  with_server (fun t path ->
      let failures = ref [] in
      let fail_lock = Mutex.create () in
      let clients = 4 in
      let rounds = 2 in
      let worker tid =
        (* each thread starts at a different corpus offset so the plan
           cache sees interleaved, not phased, access *)
        let n = List.length corpus_entries in
        for round = 0 to rounds - 1 do
          List.iteri
            (fun i _ ->
              let name = List.nth corpus_entries ((i + tid + round) mod n) in
              let base = Filename.concat corpus_dir name in
              let expected = read_file (base ^ ".expected") in
              let doc = Protocol.Doc_inline (read_file (base ^ ".xml")) in
              match request path (run_cmd ~doc (read_file (base ^ ".xq"))) with
              | Protocol.Payload got when got = expected -> ()
              | Protocol.Payload got ->
                Mutex.lock fail_lock;
                failures :=
                  Printf.sprintf "%s: %S <> expected %S" name got expected
                  :: !failures;
                Mutex.unlock fail_lock
              | Protocol.Error { message; _ } ->
                Mutex.lock fail_lock;
                failures := Printf.sprintf "%s: ERR %s" name message :: !failures;
                Mutex.unlock fail_lock)
            corpus_entries
        done
      in
      let threads = List.init clients (fun tid -> Thread.create worker tid) in
      List.iter Thread.join threads;
      (match !failures with
       | [] -> ()
       | f :: _ ->
         Alcotest.failf "%d divergence(s), first: %s" (List.length !failures) f);
      let total = clients * rounds * List.length corpus_entries in
      let s = Server.stats_text t in
      ignore s;
      Alcotest.(check int) "all served" total
        ((Plan_cache.stats (Server.plans t)).Plan_cache.p_hits
        + (Plan_cache.stats (Server.plans t)).Plan_cache.p_misses);
      Alcotest.(check bool) "plans shared across clients" true
        ((Plan_cache.stats (Server.plans t)).Plan_cache.p_hits > 0))

(* --- qgen sweep through the server path --------------------------------- *)

let test_qgen_server_sweep () =
  with_server (fun _t path ->
      for seed = 1 to 12 do
        let case = Xq_qgen.Qgen.generate seed in
        let source = Xq_qgen.Qgen.query_text case.Xq_qgen.Qgen.query in
        let doc_xml = case.Xq_qgen.Qgen.doc in
        (* single-shot reference: the same pipeline the CLI runs *)
        let reference =
          match
            Pipeline.run ~source
              ~load_doc:(fun () -> Xq_xml.Xml_parse.parse doc_xml)
              ()
          with
          | r -> Ok (r.Pipeline.r_output ^ "\n")
          | exception Xq_xdm.Xerror.Error (code, _) ->
            Error (Xq_xdm.Xerror.code_to_string code)
        in
        let served =
          match
            request path (run_cmd ~doc:(Protocol.Doc_inline doc_xml) source)
          with
          | Protocol.Payload p -> Ok p
          | Protocol.Error { code; _ } -> Error code
        in
        if served <> reference then
          Alcotest.failf "seed %d: server diverged from single-shot (%s)" seed
            source
      done)

(* --- fault injection ----------------------------------------------------- *)

let test_killed_client_mid_query () =
  with_server (fun t path ->
      let base = Filename.concat corpus_dir (List.hd corpus_entries) in
      let doc = Protocol.Doc_inline (read_file (base ^ ".xml")) in
      let source = read_file (base ^ ".xq") in
      let expected = read_file (base ^ ".expected") in
      (* several clients fire a query and vanish without reading the
         response; SIGPIPE is ignored, so the write fails as EPIPE and
         the connection is dropped, not the server *)
      for _ = 1 to 5 do
        let sock, _ic, oc = connect path in
        Protocol.write_command oc (run_cmd ~doc source);
        (* close abruptly: no QUIT, response never read *)
        Unix.close sock
      done;
      (* give the per-connection threads a beat to hit the dead pipes *)
      Thread.delay 0.2;
      (* the server must still be fully serviceable and the caches
         uncorrupted: the same query answers byte-identically *)
      match request path (run_cmd ~doc source) with
      | Protocol.Payload got ->
        Alcotest.(check string) "server survives vanished clients" expected got;
        Alcotest.(check bool) "no queries left active" true (Server.active t = 0)
      | Protocol.Error { message; _ } ->
        Alcotest.failf "server wedged after client kills: %s" message)

let test_injected_connection_faults () =
  (* a seeded connection-fault stream drops connections at read/write
     boundaries; the server must stay serviceable throughout and the
     error taxonomy must stay consistent in STATS *)
  with_server (fun t path ->
      let base = Filename.concat corpus_dir (List.hd corpus_entries) in
      let doc = Protocol.Doc_inline (read_file (base ^ ".xml")) in
      let source = read_file (base ^ ".xq") in
      let expected = read_file (base ^ ".expected") in
      Governor.set_faults ~seed:7 ~rate:0.3;
      Fun.protect ~finally:Governor.clear_faults (fun () ->
          let served = ref 0 and dropped = ref 0 and tripped = ref 0 in
          for _ = 1 to 40 do
            match request path (run_cmd ~doc source) with
            | Protocol.Payload got ->
              if got <> expected then
                Alcotest.fail "fault run corrupted an answer";
              incr served
            | Protocol.Error { code; exit; _ }
              when String.length code >= 5 && String.sub code 0 5 = "XQENG" ->
              (* XQ_FAULTS also arms the allocation/spawn streams, so a
                 query can trip an injected resource fault — that must
                 arrive as a well-formed resource error, exit family 4 *)
              Alcotest.(check int) "resource exit family under faults" 4 exit;
              incr tripped
            | Protocol.Error { message; _ } ->
              Alcotest.failf "unexpected server error under faults: %s" message
            | exception (End_of_file | Sys_error _) ->
              (* the injected connection fault killed this exchange *)
              incr dropped
          done;
          Alcotest.(check bool) "some requests survived" true (!served > 0));
      (* faults off: the same server still answers correctly *)
      match request path (run_cmd ~doc source) with
      | Protocol.Payload got ->
        Alcotest.(check string) "serviceable after fault storm" expected got;
        Alcotest.(check int) "nothing left active" 0 (Server.active t);
        (* drops were recorded in the taxonomy *)
        let stats = Server.stats_text t in
        let find key =
          String.split_on_char '\n' stats
          |> List.find_map (fun line ->
                 match String.split_on_char ' ' line with
                 | [ k; v ] when k = key -> int_of_string_opt v
                 | _ -> None)
        in
        (match find "conn_drops" with
         | Some n -> Alcotest.(check bool) "conn drops counted" true (n >= 0)
         | None -> Alcotest.fail "conn_drops missing from STATS")
      | Protocol.Error { message; _ } ->
        Alcotest.failf "server wedged after faults: %s" message)

(* --- protocol round trip ------------------------------------------------- *)

let test_protocol_roundtrip () =
  (* write_command → read_command is the identity on a knob-rich
     request, embedded newlines and all *)
  let rq =
    {
      Protocol.rq_source = "for $x in /a\nreturn $x";
      rq_doc = Protocol.Doc_inline "<a>\n<b/>\n</a>";
      rq_knobs =
        {
          Pipeline.default_knobs with
          Pipeline.k_strategy = Some Xq_algebra.Optimizer.Sort;
          k_parallel = Some 2;
          k_timeout_ms = Some 500;
          k_rewrite = true;
        };
      rq_indent = true;
    }
  in
  let tmp = Filename.temp_file "xq-proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Protocol.write_command oc (Protocol.Run rq);
      close_out oc;
      let ic = open_in_bin tmp in
      let got = Protocol.read_command ic in
      close_in ic;
      match got with
      | Some (Protocol.Run rq') ->
        Alcotest.(check bool) "round trip" true (rq = rq')
      | _ -> Alcotest.fail "did not parse back as Run")

let suites =
  [
    ( "server-plan-cache",
      [
        Alcotest.test_case "LRU eviction order" `Quick test_plan_lru_eviction;
        Alcotest.test_case "keying on strategy and env" `Quick
          test_plan_cache_keying;
        Alcotest.test_case "hit/miss counters and accounting" `Quick
          test_plan_cache_counters;
      ] );
    ( "server-doc-store",
      [
        Alcotest.test_case "sharing and mtime/size invalidation" `Quick
          test_doc_store_sharing_and_invalidation;
        Alcotest.test_case "rename-swap caught by inode" `Quick
          test_doc_store_rename_swap;
        Alcotest.test_case "capacity eviction" `Quick
          test_doc_store_capacity_eviction;
      ] );
    ( "server-streaming",
      [
        Alcotest.test_case "STREAM requests byte-identical" `Quick
          test_streamed_request_identity;
        Alcotest.test_case "oversized DOCINLINE refused cleanly" `Quick
          test_oversized_inline_doc;
      ] );
    ( "server-admission",
      [
        Alcotest.test_case "hot watermark rejects XQENG0007, drains back"
          `Quick test_admission_watermark;
      ] );
    ( "server-protocol",
      [ Alcotest.test_case "command round trip" `Quick test_protocol_roundtrip ]
    );
    ( "server-concurrency",
      [
        Alcotest.test_case "4-client corpus replay byte-identical" `Quick
          test_concurrent_corpus_replay;
        Alcotest.test_case "qgen sweep through the server" `Quick
          test_qgen_server_sweep;
      ] );
    ( "server-faults",
      [
        Alcotest.test_case "killed-mid-query clients" `Quick
          test_killed_client_mid_query;
        Alcotest.test_case "seeded connection-fault storm" `Quick
          test_injected_connection_faults;
      ] );
  ]
