(* The spill subsystem: binary codec roundtrips, frame-corruption
   rejection, pressure-callback mechanics, and the watermark
   differential suite — at any watermark and parallel degree a spilled
   run must be byte-identical to the in-memory run, and every injected
   I/O fault must fail closed with a structured XQENG0006. *)

open Helpers
open Xq_xdm
module Governor = Xq_governor.Governor
module Spill = Xq_spill.Spill
module Group = Xq_engine.Group
module Key = Xq_engine.Key
module Exec = Xq_algebra.Exec
module Optimizer = Xq_algebra.Optimizer
module Prng = Xq_workload.Prng

let to_alcotest = QCheck_alcotest.to_alcotest
let serialize = Xq_xml.Serialize.sequence
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let arb_sequence = Test_props.arb_sequence
let arb_root = Test_props.arb_root

let expect_spill_err f =
  match f () with
  | _ -> Alcotest.fail "expected XQENG0006"
  | exception Xerror.Error (Xerror.XQENG0006, _) -> ()

(* --- codec roundtrips ----------------------------------------------------- *)

let roundtrip_seq s =
  let reg = Binio.registry () in
  let buf = Buffer.create 64 in
  Binio.put_seq reg buf s;
  Binio.get_seq reg (Binio.reader (Buffer.contents buf))

let codec_props =
  [
    QCheck.Test.make ~count:500 ~name:"varint roundtrip (full int range)"
      QCheck.(frequency [ (3, int); (1, oneofl [ min_int; max_int; 0; -1 ]) ])
      (fun n ->
        let buf = Buffer.create 16 in
        Binio.put_varint buf n;
        Binio.get_varint (Binio.reader (Buffer.contents buf)) = n);
    QCheck.Test.make ~count:300 ~name:"string and float roundtrip"
      QCheck.(pair string float)
      (fun (s, f) ->
        let buf = Buffer.create 32 in
        Binio.put_string buf s;
        Binio.put_float buf f;
        let r = Binio.reader (Buffer.contents buf) in
        Binio.get_string r = s
        &&
        let f' = Binio.get_float r in
        (* bit-exact, including NaN payloads *)
        Int64.bits_of_float f' = Int64.bits_of_float f);
    QCheck.Test.make ~count:500 ~name:"atomic sequences roundtrip exactly"
      arb_sequence
      (fun s -> Stdlib.compare (roundtrip_seq s) s = 0);
    QCheck.Test.make ~count:200
      ~name:"node sequences roundtrip to the same physical nodes" arb_root
      (fun n ->
        let s = [ Item.Node n ] in
        match roundtrip_seq s with
        | [ Item.Node n' ] -> n' == n
        | _ -> false);
    QCheck.Test.make ~count:300
      ~name:"canonical keys roundtrip: equal, same hash, same charge"
      QCheck.(pair arb_sequence arb_sequence)
      (fun (a, b) ->
        let k = Key.canonicalize [ a; b ] in
        let reg = Binio.registry () in
        let buf = Buffer.create 64 in
        Key.encode reg buf k;
        let k' = Key.decode reg (Binio.reader (Buffer.contents buf)) in
        Key.equal k k' && Key.hash k = Key.hash k'
        && Key.compare k k' = 0
        && Key.charged_bytes k = Key.charged_bytes k');
    QCheck.Test.make ~count:300 ~name:"reader rejects truncated payloads"
      arb_sequence
      (fun s ->
        let reg = Binio.registry () in
        let buf = Buffer.create 64 in
        Binio.put_seq reg buf s;
        let bytes = Buffer.contents buf in
        (* Every encoding component is length-prefixed or fixed-width,
           so losing the final byte must surface as Corrupt — never as
           a silently shorter decode. *)
        let cut = String.sub bytes 0 (String.length bytes - 1) in
        match Binio.get_seq reg (Binio.reader cut) with
        | (_ : Xseq.t) -> false
        | exception Binio.Corrupt _ -> true);
  ]

(* --- spill files: frames, corruption, crash-safety ------------------------ *)

let le32 n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let frame_tests =
  [
    test "frames roundtrip in order through a cursor" (fun () ->
        let f = Spill.File.create () in
        Fun.protect ~finally:(fun () -> Spill.File.close f) (fun () ->
            let payloads = [ "alpha"; ""; String.make 10_000 'x'; "omega" ] in
            List.iter (Spill.File.write_frame f) payloads;
            check_int "frames" 4 (Spill.File.frames f);
            let c = Spill.File.cursor f in
            List.iter
              (fun p ->
                match Spill.File.next_frame c with
                | Some got -> Alcotest.(check string) "payload" p got
                | None -> Alcotest.fail "premature end")
              payloads;
            check_bool "end" true (Spill.File.next_frame c = None)));
    test "a torn final frame is rejected, prior frames readable" (fun () ->
        let f = Spill.File.create () in
        Fun.protect ~finally:(fun () -> Spill.File.close f) (fun () ->
            Spill.File.write_frame f "good";
            (* a frame header promising 64 bytes, with only 3 present *)
            Spill.File.write_raw f (le32 64);
            Spill.File.write_raw f (le32 (Spill.checksum "xyz"));
            Spill.File.write_raw f "xyz";
            let c = Spill.File.cursor f in
            check_bool "first frame survives" true
              (Spill.File.next_frame c = Some "good");
            expect_spill_err (fun () -> Spill.File.next_frame c)));
    test "a checksum mismatch is rejected" (fun () ->
        let f = Spill.File.create () in
        Fun.protect ~finally:(fun () -> Spill.File.close f) (fun () ->
            let payload = "payload-bytes" in
            Spill.File.write_raw f (le32 (String.length payload));
            Spill.File.write_raw f (le32 (Spill.checksum payload lxor 1));
            Spill.File.write_raw f payload;
            let c = Spill.File.cursor f in
            expect_spill_err (fun () -> Spill.File.next_frame c)));
    test "a truncated frame header is rejected" (fun () ->
        let f = Spill.File.create () in
        Fun.protect ~finally:(fun () -> Spill.File.close f) (fun () ->
            Spill.File.write_raw f "\x01\x02";
            let c = Spill.File.cursor f in
            expect_spill_err (fun () -> Spill.File.next_frame c)));
    test "close is idempotent" (fun () ->
        let f = Spill.File.create () in
        Spill.File.write_frame f "x";
        Spill.File.close f;
        Spill.File.close f);
  ]

(* --- governor pressure mechanics ------------------------------------------ *)

let pressure_tests =
  [
    test "the pressure callback fires past the watermark and its \
          uncharges avert the hard trip" (fun () ->
        let g =
          Governor.create ~max_mem_mb:1 ~spill_watermark_bytes:1024 ()
        in
        Governor.with_governor g (fun () ->
            check_bool "armed" true (Governor.spill_armed ());
            check_int "watermark" 1024 (Governor.spill_watermark ());
            let fired = ref 0 in
            Governor.with_pressure_callback
              (fun () ->
                incr fired;
                (* give back most of the charge, like a flush *)
                Governor.uncharge_bytes 500_000)
              (fun () ->
                (* without the callback's refunds 4 × 600 KB would blow
                   the 1 MB hard budget *)
                for _ = 1 to 4 do
                  Governor.charge_bytes 600_000
                done;
                check_bool "fired on every crossing" true (!fired >= 4))));
    test "a colliding domain never runs another domain's pressure callback"
      (fun () ->
        let g = Governor.create ~spill_watermark_bytes:16 () in
        Governor.with_governor g (fun () ->
            let ran_on = ref [] in
            let me = (Domain.self () :> int) in
            Governor.with_pressure_callback
              (fun () -> ran_on := (Domain.self () :> int) :: !ran_on)
              (fun () ->
                (* spawn fresh domains until one's id collides with this
                   domain's callback slot (ids equal mod the slot-table
                   size, 128), and push it past the watermark there: the
                   callback must be skipped, not run cross-domain *)
                let collided = ref false and tries = ref 0 in
                while (not !collided) && !tries < 512 do
                  incr tries;
                  let d =
                    Domain.spawn (fun () ->
                        if (Domain.self () :> int) land 127 = me land 127
                        then begin
                          Governor.charge_bytes 1024;
                          Governor.uncharge_bytes 1024;
                          true
                        end
                        else false)
                  in
                  if Domain.join d then collided := true
                done;
                check_bool "found a colliding domain" true !collided;
                check_bool "never ran on a foreign domain" true
                  (List.for_all (fun id -> id = me) !ran_on);
                let before = List.length !ran_on in
                Governor.charge_bytes 1024;
                Governor.uncharge_bytes 1024;
                check_bool "still fires on the owning domain" true
                  (List.length !ran_on > before))));
    test "a watermark alone arms the governor via of_limits" (fun () ->
        match Governor.of_limits ~spill_watermark_bytes:4096 () with
        | Some g ->
          check_int "watermark" 4096
            (Governor.with_governor g Governor.spill_watermark)
        | None -> Alcotest.fail "expected an armed governor");
    test "XQENG0006 is a resource error with exit code 4" (fun () ->
        check_bool "resource" true (Xerror.is_resource Xerror.XQENG0006);
        check_int "exit code" 4 (Xerror.exit_code Xerror.XQENG0006));
  ]

(* --- external grouping through Group directly ----------------------------- *)

let seq_codec : Xseq.t Group.codec =
  { Group.enc = Binio.put_seq; dec = Binio.get_seq }

let int_tuples n card = List.init n (fun i -> Xseq.of_int (i mod card))
let keys_of s = [ s ]

let groups_repr gs =
  List.map
    (fun (g : Xseq.t Group.group) ->
      ( List.map serialize g.Group.keys,
        List.map serialize g.Group.members ))
    gs

let with_tiny_watermark f =
  let g = Governor.create ~spill_watermark_bytes:1 () in
  let r = Governor.with_governor g f in
  (r, Governor.stats g)

let group_tests =
  [
    test "hash spill with constant hash: recursion bottoms out into the \
          sorted fallback, output identical" (fun () ->
        let tuples = int_tuples 3000 11 in
        let expected =
          groups_repr (Group.group_hash ~hash:(fun _ -> 42) ~keys_of tuples)
        in
        let got, stats =
          with_tiny_watermark (fun () ->
              Group.group_hash ~hash:(fun _ -> 42) ~spill:seq_codec ~keys_of
                tuples)
        in
        check_bool "spilled" true (stats.Governor.s_spill_files > 0);
        check_bool "hit the repartition cap" true
          (stats.Governor.s_repartitions > 0);
        check_bool "identical groups" true (groups_repr got = expected));
    test "sort spill merges runs into the in-memory order (both output \
          modes)" (fun () ->
        let tuples = int_tuples 3000 13 in
        List.iter
          (fun sorted_output ->
            let expected =
              groups_repr (Group.group_sort ~sorted_output ~keys_of tuples)
            in
            let got, stats =
              with_tiny_watermark (fun () ->
                  Group.group_sort ~sorted_output ~spill:seq_codec ~keys_of
                    tuples)
            in
            check_bool "spilled" true (stats.Governor.s_spill_files > 0);
            check_bool
              (Printf.sprintf "identical groups (sorted_output=%b)"
                 sorted_output)
              true
              (groups_repr got = expected))
          [ false; true ]);
    test "a hot key's cell splits across bounded frames, output identical"
      (fun () ->
        (* one key, ~1.2 MB of string members: the flush must chunk the
           cell into frames no bigger than the cap (threshold / 4 =
           1 KiB at a tiny watermark) instead of serializing it whole,
           and replay must recombine the chunks in member order *)
        let tuples =
          List.init 4000 (fun i ->
              [ Item.Atomic
                  (Atomic.Str (Printf.sprintf "%06d-%s" i (String.make 290 'm')))
              ])
        in
        let hot_key _ = [ Xseq.of_int 1 ] in
        List.iter
          (fun group_fn ->
            let expected = groups_repr (group_fn None tuples) in
            let got, stats =
              with_tiny_watermark (fun () -> group_fn (Some seq_codec) tuples)
            in
            check_bool "spilled" true (stats.Governor.s_spill_files > 0);
            check_bool "identical groups" true (groups_repr got = expected))
          [
            (fun spill ts -> Group.group_hash ?spill ~keys_of:hot_key ts);
            (fun spill ts -> Group.group_sort ?spill ~keys_of:hot_key ts);
          ]);
    test "XQ_NO_SPILL degrades to the in-memory path" (fun () ->
        Unix.putenv "XQ_NO_SPILL" "1";
        Fun.protect ~finally:(fun () -> Unix.putenv "XQ_NO_SPILL" "0")
          (fun () ->
            let tuples = int_tuples 2000 7 in
            let expected = groups_repr (Group.group_hash ~keys_of tuples) in
            let got, stats =
              with_tiny_watermark (fun () ->
                  Group.group_hash ~spill:seq_codec ~keys_of tuples)
            in
            check_int "no spill files" 0 stats.Governor.s_spill_files;
            check_bool "identical groups" true (groups_repr got = expected)));
  ]

(* --- the watermark differential suite ------------------------------------- *)

(* Random documents large enough that a tiny watermark actually forces
   flushes (the flush floor is 64 KB of live charge). Members nest the
   <i> nodes themselves, so replay exercises the node registry: decoded
   members must be the original nodes, with paths still working. *)
let random_doc rng =
  let open Xq_xml.Builder in
  let pool = 3 + Prng.int rng 12 in
  let n = 300 + Prng.int rng 400 in
  let item _ =
    el "i"
      [
        el_text "k" (string_of_int (Prng.int rng pool));
        el_text "v" (string_of_int (Prng.int rng 100));
      ]
  in
  doc (el "r" (List.init n item))

(* Grouping by the whole node makes the canonical-key fingerprints the
   dominant charge, so a tiny watermark actually pushes partitions past
   the flush floor; nesting nodes makes replay exercise the registry. *)
let diff_query =
  "for $i in //i group by $i into $g nest $i into $is order by $g/k, \
   $g/v return <g>{$g/k/text()}<n>{count($is)}</n><s>{sum($is/v)}</s></g>"

let strategies = [ ("hash", Optimizer.Hash); ("sort", Optimizer.Sort) ]
let parallels = [ 1; 2; 4 ]
let watermarks = [ ("none", None); ("tight", Some (256 * 1024)); ("tiny", Some 1) ]
let diff_seeds = 24

let differential_tests =
  [
    test
      (Printf.sprintf
         "spilled runs are byte-identical (%d seeds × 2 strategies × \
          parallel 1,2,4 × watermark none/tight/tiny)"
         diff_seeds)
      (fun () ->
        let spilled_runs = ref 0 in
        for seed = 1 to diff_seeds do
          let rng = Prng.create (0x5b111 + seed) in
          let doc = random_doc rng in
          let expected =
            serialize (Xq_engine.Eval.run ~context_node:doc diff_query)
          in
          List.iter
            (fun (slabel, strategy) ->
              List.iter
                (fun parallel ->
                  List.iter
                    (fun (wlabel, watermark) ->
                      let g =
                        Governor.create ?spill_watermark_bytes:watermark ()
                      in
                      let got =
                        Governor.with_governor g (fun () ->
                            serialize
                              (Exec.run_string ~strategy ~parallel
                                 ~context_node:doc diff_query))
                      in
                      let s = Governor.stats g in
                      if s.Governor.s_spill_files > 0 then incr spilled_runs;
                      if got <> expected then
                        Alcotest.failf
                          "seed %d, %s, parallel %d, watermark %s: \
                           diverged\nexpected %s\ngot      %s"
                          seed slabel parallel wlabel expected got)
                    watermarks)
                parallels)
            strategies
        done;
        (* the tiny watermark must actually exercise the external path *)
        check_bool "some runs spilled" true (!spilled_runs > 0));
  ]

(* --- surfacing: EXPLAIN ANALYZE annotation -------------------------------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let explain_tests =
  [
    test "EXPLAIN ANALYZE annotates spilling ops, and only those" (fun () ->
        (* big enough that per-partition live charge clears the 64 KB
           flush floor *)
        let doc =
          let open Xq_xml.Builder in
          doc
            (el "r"
               (List.init 1500 (fun i ->
                    el "i"
                      [
                        el_text "k" (string_of_int (i mod 7));
                        el_text "v" (string_of_int (i mod 100));
                      ])))
        in
        let analyze watermark =
          let g = Governor.create ?spill_watermark_bytes:watermark () in
          Governor.with_governor g (fun () ->
              Xq_rewrite.Explain.analyze_query ~timings:false
                ~strategy:Optimizer.Hash ~context_node:doc
                (Xq.parse diff_query))
        in
        let spilled = analyze (Some 1) in
        check_bool "spilled= present" true (contains_sub spilled "spilled=");
        check_bool "spill-files= present" true
          (contains_sub spilled "spill-files=");
        let unspilled = analyze None in
        check_bool "absent when nothing spills" false
          (contains_sub unspilled "spilled="));
  ]

(* --- I/O fault injection --------------------------------------------------- *)

let fault_seeds = 16

let fault_tests =
  [
    test
      (Printf.sprintf
         "injected I/O faults: byte-identical or fail closed (%d seeds)"
         fault_seeds)
      (fun () ->
        let completed = ref 0 and failed_closed = ref 0 in
        let io_trips = ref 0 in
        for seed = 1 to fault_seeds do
          let rng = Prng.create (0x10fa + seed) in
          let doc = random_doc rng in
          let expected =
            serialize (Xq_engine.Eval.run ~context_node:doc diff_query)
          in
          (* These docs see ~10× the tick points of the governor fault
             suite, plus spill I/O: sweep the rate from survivable to
             lethal so both outcomes occur. *)
          let rate = 0.001 *. float_of_int seed in
          List.iter
            (fun (slabel, strategy) ->
              List.iter
                (fun parallel ->
                  Governor.set_faults ~seed ~rate;
                  Fun.protect ~finally:Governor.clear_faults (fun () ->
                      let g =
                        Governor.create ~spill_watermark_bytes:1 ()
                      in
                      Governor.with_governor g (fun () ->
                          match
                            Exec.run_string ~strategy ~parallel
                              ~context_node:doc diff_query
                          with
                          | result ->
                            incr completed;
                            let got = serialize result in
                            if got <> expected then
                              Alcotest.failf
                                "seed %d, %s, parallel %d: faulted run \
                                 diverged"
                                seed slabel parallel
                          | exception Xerror.Error (code, _) ->
                            incr failed_closed;
                            if code = Xerror.XQENG0006 then incr io_trips;
                            if not (Xerror.is_resource code) then
                              Alcotest.failf
                                "seed %d, %s, parallel %d: expected a \
                                 resource failure, got %s"
                                seed slabel parallel
                                (Xerror.code_to_string code));
                      check_int "aborts released" 0
                        (Governor.pending_aborts g)))
                [ 1; 2 ])
            strategies
        done;
        check_bool "some runs completed" true (!completed > 0);
        check_bool "some runs failed closed" true (!failed_closed > 0);
        check_bool "some failures were injected I/O trips" true
          (!io_trips > 0));
    test "I/O fault outcomes are deterministic per seed" (fun () ->
        let rng = Prng.create 0xfee1 in
        let doc = random_doc rng in
        let outcome () =
          Governor.set_faults ~seed:3 ~rate:0.2;
          Fun.protect ~finally:Governor.clear_faults (fun () ->
              let g = Governor.create ~spill_watermark_bytes:1 () in
              Governor.with_governor g (fun () ->
                  match
                    Exec.run_string ~strategy:Optimizer.Hash ~parallel:1
                      ~context_node:doc diff_query
                  with
                  | result -> Ok (serialize result)
                  | exception Xerror.Error (code, _) -> Error code))
        in
        let a = outcome () and b = outcome () in
        check_bool "same outcome on replay" true (a = b));
  ]

let suites =
  [
    ("spill.codec", List.map to_alcotest codec_props);
    ("spill.frames", frame_tests);
    ("spill.pressure", pressure_tests);
    ("spill.group", group_tests);
    ("spill.differential", differential_tests);
    ("spill.explain", explain_tests);
    ("spill.faults", fault_tests);
  ]
