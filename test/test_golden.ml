(* Golden corpus: every test/golden/NN-name.xq runs against the fixture
   named in its first-line "(: fixture: … :)" comment and must serialize
   exactly to the paired NN-name.expected file. The .xq files are plain
   queries — they also run through the CLI. *)

open Helpers

let fixture_of_name = function
  | "bib" -> bib
  | "sales" -> sales
  | "bib-categories" ->
    {|<bib>
  <book><title>TP</title><price>59.00</price>
    <categories><software><db><concurrency/></db><distributed/></software></categories>
  </book>
  <book><title>Readings</title><price>65.00</price>
    <categories><software><db/></software><anthology/></categories>
  </book>
</bib>|}
  | "orders" ->
    {|<orders>
  <order><lineitem><a>A1</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B2</b></lineitem></order>
  <order><lineitem><a>A2</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B1</b></lineitem>
         <lineitem><a>A2</a></lineitem></order>
</orders>|}
  | "lineitems" ->
    (* numeric quantities, for the aggregate-pushdown explains *)
    {|<orders>
  <order><lineitem><sku>A1</sku><qty>2</qty></lineitem>
         <lineitem><sku>B7</sku><qty>3</qty></lineitem></order>
  <order><lineitem><sku>A1</sku><qty>5</qty></lineitem>
         <lineitem><sku>B7</sku><qty>1</qty></lineitem>
         <lineitem><sku>A1</sku><qty>4</qty></lineitem></order>
</orders>|}
  | other -> Alcotest.failf "unknown fixture %S" other

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture_header source =
  (* first line: "(: fixture: NAME :)" *)
  let line =
    match String.index_opt source '\n' with
    | Some i -> String.sub source 0 i
    | None -> source
  in
  match String.split_on_char ':' line with
  | [ _; _; name; _ ] -> String.trim name
  | _ -> Alcotest.failf "missing fixture header in %S" line

let golden_dir = Filename.concat (Filename.dirname Sys.executable_name) "golden"

(* When running via dune, the executable sits next to the copied golden
   tree; fall back to the source path for direct runs. *)
let dir =
  if Sys.file_exists golden_dir && Sys.is_directory golden_dir then golden_dir
  else "golden"

let cases =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.sort compare
  else []

let golden_tests =
  if cases = [] then
    [ test "golden corpus present" (fun () ->
          Alcotest.failf "no golden queries found under %s (cwd %s)" dir
            (Sys.getcwd ())) ]
  else
    List.map
      (fun file ->
        test file (fun () ->
            let source = read_file (Filename.concat dir file) in
            let expected =
              String.trim
                (read_file
                   (Filename.concat dir
                      (Filename.chop_suffix file ".xq" ^ ".expected")))
            in
            let data = fixture_of_name (fixture_header source) in
            let actual = String.trim (run_xml ~data source) in
            Alcotest.(check string) file expected actual))
      cases

let suites = [ ("golden", golden_tests) ]
