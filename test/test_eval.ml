(* Tests for expression evaluation: literals, arithmetic, comparisons,
   paths, predicates, constructors, builtins. *)

open Helpers

let data = "<r><a>1</a><a>2</a><b x=\"7\">3</b><c><d>4</d></c></r>"

let q query expected name = check_query ~data query expected name

(* --- scalars and arithmetic --------------------------------------------- *)

let arith_tests =
  [
    test "integer arithmetic stays integer" (fun () ->
        q "1 + 2 * 3" "7" "prec";
        q "7 idiv 2" "3" "idiv";
        q "-7 idiv 2" "-3" "idiv trunc";
        q "7 mod 3" "1" "mod";
        q "-1 - 2" "-3" "neg");
    test "integer div yields decimal" (fun () ->
        q "7 div 2" "3.5" "div";
        q "6 div 2" "3" "exact");
    test "decimal and double promotion" (fun () ->
        q "1.5 + 1" "2.5" "dec+int";
        q "1e1 + 1" "11" "dbl+int";
        q "0.1 + 0.2 < 0.4" "true" "float-ish");
    test "untyped operands cast to double" (fun () ->
        q "//a[1] + 1" "2" "node+int";
        q "//b + //a[1]" "4" "node+node");
    test "division by zero" (fun () ->
        expect_error Xq_xdm.Xerror.FOAR0001 ~data "1 div 0" "int div0";
        q "1e0 div 0" "INF" "double div0");
    test "empty operand propagates" (fun () ->
        q "() + 1" "" "empty+1";
        q "//nothing * 2" "" "missing*2");
    test "unary minus" (fun () ->
        q "-(3)" "-3" "neg int";
        q "-(//a[1])" "-1" "neg node");
    test "range expression" (fun () ->
        q "1 to 4" "1 2 3 4" "range";
        q "3 to 1" "" "empty range";
        q "2 to 2" "2" "singleton");
    (* 4611686018427387903 is max_int on a 64-bit OCaml (63-bit ints);
       min_int can't appear as a literal, so it is built by subtraction. *)
    test "integer overflow raises FOCA0002" (fun () ->
        expect_error Xq_xdm.Xerror.FOCA0002 ~data "4611686018427387903 + 1"
          "add overflow";
        expect_error Xq_xdm.Xerror.FOCA0002 ~data
          "(0 - 4611686018427387903 - 1) - 1" "sub overflow";
        expect_error Xq_xdm.Xerror.FOCA0002 ~data "4611686018427387903 * 2"
          "mul overflow";
        expect_error Xq_xdm.Xerror.FOCA0002 ~data
          "(0 - 4611686018427387903 - 1) * (0 - 1)" "min_int negation overflow");
    test "boundary arithmetic that fits does not overflow" (fun () ->
        q "4611686018427387902 + 1" "4611686018427387903" "to max_int";
        q "0 - 4611686018427387903 - 1" "-4611686018427387904" "to min_int";
        q "2305843009213693951 * 2" "4611686018427387902" "near-max mul";
        q "(0 - 4611686018427387903 - 1) * 1" "-4611686018427387904"
          "min_int * 1");
  ]

(* --- comparisons ----------------------------------------------------------- *)

let cmp_tests =
  [
    test "general comparison is existential" (fun () ->
        q "//a = 2" "true" "some eq";
        q "//a = 3" "false" "none eq";
        q "(1, 2) != (1, 2)" "true" "ne pairs";
        q "() = ()" "false" "empty");
    test "general comparison casts untyped" (fun () ->
        q "//b/@x = 7" "true" "attr num";
        q "//b/@x = \"7\"" "true" "attr str");
    test "value comparisons need singletons" (fun () ->
        q "1 eq 1" "true" "eq";
        q "2 lt 10" "true" "numeric lt";
        q "\"2\" lt \"10\"" "false" "string lt";
        q "() eq 1" "" "empty is empty";
        expect_error Xq_xdm.Xerror.XPTY0004 ~data "//a eq 1" "multi");
    test "value comparison type error" (fun () ->
        expect_error Xq_xdm.Xerror.XPTY0004 ~data "1 eq \"1\"" "int vs str");
    test "node comparisons" (fun () ->
        q "//a[1] is //a[1]" "true" "is";
        q "//a[1] is //a[2]" "false" "is not";
        q "//a[1] << //a[2]" "true" "precedes";
        q "//a[2] >> //a[1]" "true" "follows";
        q "() is //a[1]" "" "empty");
    test "and or with ebv" (fun () ->
        q "1 and \"x\"" "true" "truthy";
        q "0 or ()" "false" "falsy";
        q "//a and //nothing" "false" "nodes");
    test "if uses ebv" (fun () ->
        q "if (//a) then \"y\" else \"n\"" "y" "nodes true";
        q "if (0) then \"y\" else \"n\"" "n" "zero false");
    test "quantified" (fun () ->
        q "some $x in //a satisfies $x = 2" "true" "some";
        q "every $x in //a satisfies $x < 3" "true" "every";
        q "every $x in () satisfies 1 = 2" "true" "vacuous every";
        q "some $x in () satisfies 1 = 1" "false" "vacuous some";
        q "some $x in (1,2), $y in (2,3) satisfies $x = $y" "true" "pairs");
  ]

(* --- paths and predicates ---------------------------------------------------- *)

let nested = {|<lib>
  <shelf id="s1"><book><title>A</title><price>10</price></book>
                 <book><title>B</title><price>20</price></book></shelf>
  <shelf id="s2"><book><title>C</title><price>30</price></book></shelf>
</lib>|}

let path_tests =
  [
    test "child and descendant steps" (fun () ->
        check_query ~data:nested "count(/lib/shelf)" "2" "child";
        check_query ~data:nested "count(//book)" "3" "descendant";
        check_query ~data:nested "count(//shelf/book/title)" "3" "chain");
    test "wildcard and kind tests" (fun () ->
        check_query ~data:nested "count(//shelf/*)" "3" "star";
        check_query ~data:nested "count(//book/node())" "6" "node()";
        check_query ~data:nested "string((//title/text())[1])" "A" "text()");
    test "attributes" (fun () ->
        check_query ~data:nested "string(//shelf[1]/@id)" "s1" "attr";
        check_query ~data:nested "count(//@id)" "2" "all attrs";
        check_query ~data:nested "//shelf[@id = \"s2\"]/book/title" "<title>C</title>" "attr pred");
    test "parent and ancestor axes" (fun () ->
        check_query ~data:nested "string(//title[. = \"C\"]/../../@id)" "s2" "parent";
        check_query ~data:nested
          "count(//title[. = \"A\"]/ancestor::*)" "3" "ancestors");
    test "self and descendant-or-self" (fun () ->
        check_query ~data:nested "count(//book/descendant-or-self::*)" "9" "dos";
        check_query ~data:nested "name((//book)[1]/self::book)" "book" "self");
    test "sibling axes" (fun () ->
        check_query ~data:nested
          "string(//title[. = \"A\"]/following-sibling::price)" "10" "following";
        check_query ~data:nested
          "string(//price[. = 20]/preceding-sibling::title)" "B" "preceding");
    test "positional predicates" (fun () ->
        check_query ~data:nested "string((//book)[1]/title)" "A" "first";
        check_query ~data:nested "string((//book)[3]/title)" "C" "third";
        check_query ~data:nested "string((//book)[last()]/title)" "C" "last()";
        check_query ~data:nested "count((//book)[position() > 1])" "2" "position()");
    test "step predicates count per context node (XPath semantics)" (fun () ->
        (* //book[1] picks the first book of EACH shelf *)
        check_query ~data:nested "count(//book[1])" "2" "per-shelf first";
        check_query ~data:nested
          "for $t in //book[1]/title return string($t)" "A C" "per-shelf titles";
        check_query ~data:nested "count(//shelf/book[last()])" "2" "per-shelf last");
    test "boolean predicates" (fun () ->
        check_query ~data:nested "//book[price > 15]/title"
          "<title>B</title><title>C</title>" "boolean pred";
        check_query ~data:nested "count(//book[title])" "3" "exists pred");
    test "doc order and dedupe of path results" (fun () ->
        check_query ~data:nested
          "count((//book | //book/title)/ancestor-or-self::book)" "3" "dedupe");
    test "path mixing nodes and atomics is an error" (fun () ->
        expect_error Xq_xdm.Xerror.XPTY0004 ~data:nested
          "//book/(title, 1)" "mixed");
    test "atomics allowed as final step" (fun () ->
        check_query ~data:nested "sum(//book/(price * 2))" "120" "computed last step");
    test "root expression" (fun () ->
        check_query ~data:nested "count(/)" "1" "root";
        check_query ~data:nested "name(/lib)" "lib" "root child");
    test "filter on sequences" (fun () ->
        q "(1 to 10)[. mod 3 = 0]" "3 6 9" "filter";
        q "(5, 6, 7)[2]" "6" "positional filter");
  ]

(* --- constructors ------------------------------------------------------------ *)

let ctor_tests =
  [
    test "direct element with text" (fun () ->
        q "<a>hi</a>" "<a>hi</a>" "text");
    test "enclosed expressions: atomics joined with spaces" (fun () ->
        q "<a>{1, 2, 3}</a>" "<a>1 2 3</a>" "atomics";
        q "<a>{1}{2}</a>" "<a>12</a>" "separate exprs abut");
    test "enclosed node content is copied" (fun () ->
        q "<w>{//b}</w>" "<w><b x=\"7\">3</b></w>" "copy";
        q "<w>{//b}</w>/b is //b" "false" "fresh identity");
    test "attributes with embedded expressions" (fun () ->
        q "<a k=\"v{1 + 1}w\"/>" "<a k=\"v2w\"/>" "attr expr";
        q "<a k=\"{(1, 2)}\"/>" "<a k=\"1 2\"/>" "attr seq");
    test "nested direct elements" (fun () ->
        q "<a><b>{1}</b><c/></a>" "<a><b>1</b><c/></a>" "nested");
    test "computed element and attribute" (fun () ->
        q "element {concat(\"a\", \"b\")} {1 + 1}" "<ab>2</ab>" "comp elem";
        q "<x>{attribute k {7}}</x>" "<x k=\"7\"/>" "comp attr in content";
        q "element foo {attribute bar {1}, \"body\"}" "<foo bar=\"1\">body</foo>"
          "named comp");
    test "computed text node" (fun () ->
        q "<a>{text {\"t\"}}</a>" "<a>t</a>" "text ctor");
    test "document content unwrapped" (fun () ->
        q "<w>{/}</w>" "<w><r><a>1</a><a>2</a><b x=\"7\">3</b><c><d>4</d></c></r></w>"
          "doc copy");
    test "constructed element string value" (fun () ->
        q "string(<a>x<b>y</b>z</a>)" "xyz" "string value");
    test "escaped braces" (fun () ->
        q "<a>{{x}}</a>" "<a>{x}</a>" "braces");
  ]

(* --- builtin functions --------------------------------------------------------- *)

let builtin_tests =
  [
    test "count sum avg min max" (fun () ->
        q "count(//a)" "2" "count";
        q "sum((1, 2, 3))" "6" "sum";
        q "sum(())" "0" "sum empty";
        q "avg((1, 2, 3, 4))" "2.5" "avg";
        q "avg(())" "" "avg empty";
        q "min((3, 1, 2))" "1" "min";
        q "max((3, 1, 2))" "3" "max";
        q "min(())" "" "min empty");
    test "aggregates over node values" (fun () ->
        q "sum(//a)" "3" "sum nodes";
        q "avg(//a)" "1.5" "avg nodes";
        q "max(//a)" "2" "max untyped → double");
    test "min/max on strings" (fun () ->
        q "min((\"b\", \"a\"))" "a" "min str";
        q "max((\"b\", \"a\"))" "b" "max str");
    test "distinct-values" (fun () ->
        q "distinct-values((1, 2, 1, 3, 2))" "1 2 3" "ints";
        q "distinct-values((\"a\", \"b\", \"a\"))" "a b" "strings";
        q "distinct-values((1, 1.0, \"1\"))" "1 1" "numeric eq, string differs";
        q "count(distinct-values(//a))" "2" "nodes");
    test "deep-equal builtin" (fun () ->
        q "deep-equal((1, 2), (1, 2))" "true" "seq";
        q "deep-equal((1, 2), (2, 1))" "false" "permuted";
        q "deep-equal(<a x=\"1\">t</a>, <a x=\"1\">t</a>)" "true" "nodes";
        q "deep-equal((), ())" "true" "empty");
    test "empty exists not boolean" (fun () ->
        q "empty(())" "true" "empty";
        q "empty(//a)" "false" "nonempty";
        q "exists(//nothing)" "false" "exists";
        q "not(0)" "true" "not";
        q "boolean(\"x\")" "true" "ebv");
    test "string functions" (fun () ->
        q "string-length(\"hello\")" "5" "len";
        q "concat(\"a\", \"b\", \"c\")" "abc" "concat";
        q "concat(\"a\", (), \"c\")" "ac" "concat empty";
        q "contains(\"hello\", \"ell\")" "true" "contains";
        q "contains(\"hello\", \"\")" "true" "contains empty";
        q "starts-with(\"hello\", \"he\")" "true" "starts";
        q "ends-with(\"hello\", \"lo\")" "true" "ends";
        q "substring(\"hello\", 2)" "ello" "substring 2";
        q "substring(\"hello\", 2, 3)" "ell" "substring 2 3";
        q "substring(\"hello\", 0)" "hello" "substring clamps";
        q "substring-before(\"a/b\", \"/\")" "a" "before";
        q "substring-after(\"a/b\", \"/\")" "b" "after";
        q "string-join((\"a\", \"b\"), \"-\")" "a-b" "join";
        q "upper-case(\"aB\")" "AB" "upper";
        q "lower-case(\"aB\")" "ab" "lower";
        q "normalize-space(\"  a   b \")" "a b" "normalize";
        q "translate(\"abc\", \"abc\", \"xyz\")" "xyz" "translate";
        q "translate(\"abc\", \"b\", \"\")" "ac" "translate delete";
        q "tokenize(\"a/b/c\", \"/\")" "a b c" "tokenize");
    test "string() of things" (fun () ->
        q "string(42)" "42" "int";
        q "string(//b)" "3" "node";
        q "string(())" "" "empty");
    test "number functions" (fun () ->
        q "number(\"3.5\")" "3.5" "number";
        q "string(number(\"abc\"))" "NaN" "NaN";
        q "abs(-3)" "3" "abs";
        q "ceiling(1.2)" "2" "ceiling";
        q "floor(1.8)" "1" "floor";
        q "round(2.5)" "3" "round half up";
        q "round(-2.5)" "-2" "round negative half";
        q "abs(())" "" "empty");
    test "sequence functions" (fun () ->
        q "reverse((1, 2, 3))" "3 2 1" "reverse";
        q "subsequence((1, 2, 3, 4), 2)" "2 3 4" "subseq 2";
        q "subsequence((1, 2, 3, 4), 2, 2)" "2 3" "subseq 2 2";
        q "insert-before((1, 3), 2, 2)" "1 2 3" "insert";
        q "remove((1, 2, 3), 2)" "1 3" "remove";
        q "index-of((10, 20, 10), 10)" "1 3" "index-of";
        q "exactly-one(5)" "5" "exactly-one";
        q "zero-or-one(())" "" "zero-or-one");
    test "node functions" (fun () ->
        q "local-name(//b)" "b" "local-name";
        q "name(//b)" "b" "name";
        q "string(node-name(//b))" "b" "node-name";
        q "count(root(//d))" "1" "root";
        q "data(//a)" "1 2" "data");
    test "date and time accessors" (fun () ->
        q "year-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "2004" "year";
        q "month-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "1" "month";
        q "day-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "31" "day";
        q "hours-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "11" "hours";
        q "minutes-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "32" "minutes";
        q "seconds-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))" "7" "seconds";
        q "year-from-date(xs:date(\"1993-06-01\"))" "1993" "date year";
        q "year-from-dateTime(\"2004-01-31T11:32:07\")" "2004" "untyped cast");
    test "xs constructors" (fun () ->
        q "xs:integer(\"42\") + 1" "43" "integer";
        q "xs:double(\"1.5\") * 2" "3" "double";
        q "xs:decimal(\"1.25\")" "1.25" "decimal";
        q "xs:date(\"2004-02-29\") lt xs:date(\"2004-03-01\")" "true" "date cmp";
        q "xs:dateTime(\"2004-06-01T10:00:00Z\") eq xs:dateTime(\"2004-06-01T05:00:00-05:00\")"
          "true" "tz normalize");
    test "user function calls and recursion" (fun () ->
        q "declare function local:fact($n as xs:integer) as xs:integer { if \
           ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)"
          "720" "factorial");
    test "user functions shadow nothing and see globals" (fun () ->
        q "declare variable $g := 10; declare function local:f($x) { $x + $g \
           }; local:f(5)"
          "15" "globals visible");
    test "functions do not see caller locals" (fun () ->
        (* $y is not bound inside the function — static error *)
        expect_error Xq_xdm.Xerror.XPST0008 ~data
          "declare function local:f($x) { $x + $y }; for $y in (1) return local:f($y)"
          "no dynamic scope");
  ]

(* --- sequence types and set operators ------------------------------------ *)

let type_tests =
  [
    test "instance of atomic types" (fun () ->
        q "5 instance of xs:integer" "true" "int";
        q "5 instance of xs:decimal" "true" "int ⊆ decimal";
        q "5.0 instance of xs:integer" "false" "decimal not integer";
        q "5e0 instance of xs:double" "true" "double";
        q "\"x\" instance of xs:string" "true" "string";
        q "//a[1]/text() instance of text()" "true" "text node";
        q "5 instance of xs:anyAtomicType" "true" "anyAtomic");
    test "instance of occurrence indicators" (fun () ->
        q "() instance of xs:integer?" "true" "empty optional";
        q "() instance of xs:integer" "false" "empty not one";
        q "(1, 2) instance of xs:integer+" "true" "plus";
        q "(1, 2) instance of xs:integer" "false" "two not one";
        q "() instance of empty-sequence()" "true" "empty-sequence";
        q "1 instance of empty-sequence()" "false" "nonempty");
    test "instance of node kinds" (fun () ->
        q "//b instance of element()" "true" "element";
        q "//b instance of element(b)" "true" "named element";
        q "//b instance of element(c)" "false" "wrong name";
        q "//b/@x instance of attribute()" "true" "attribute";
        q "(/) instance of document-node()" "true" "document";
        q "//b instance of item()+" "true" "item");
    test "cast as" (fun () ->
        q "\"42\" cast as xs:integer" "42" "str→int";
        q "5 cast as xs:string" "5" "int→str";
        q "\"2004-01-31\" cast as xs:date" "2004-01-31" "str→date";
        q "() cast as xs:integer?" "" "empty optional";
        q "1.9 cast as xs:integer" "1" "dec→int truncates");
    test "cast as failure" (fun () ->
        expect_error Xq_xdm.Xerror.FORG0001 ~data "\"x\" cast as xs:integer" "bad int");
    test "castable as" (fun () ->
        q "\"42\" castable as xs:integer" "true" "yes";
        q "\"4x\" castable as xs:integer" "false" "no";
        q "\"2004-02-30\" castable as xs:date" "false" "bad date");
    test "treat as" (fun () ->
        q "(5 treat as xs:integer) + 1" "6" "pass-through";
        expect_error Xq_xdm.Xerror.XPTY0004 ~data
          "(//a treat as xs:integer) + 1" "mismatch");
    test "intersect and except" (fun () ->
        q "count(//a intersect //a)" "2" "self intersect";
        q "count((//a | //b) intersect //a)" "2" "narrowing";
        q "count(//a except //a[1])" "1" "except";
        q "count((//a | //b) except //b)" "2" "except b";
        q "count(//a intersect //b)" "0" "disjoint");
  ]

(* --- newer string/diagnostic builtins -------------------------------------- *)

let extra_builtin_tests =
  [
    test "compare" (fun () ->
        q "compare(\"a\", \"b\")" "-1" "lt";
        q "compare(\"b\", \"a\")" "1" "gt";
        q "compare(\"a\", \"a\")" "0" "eq";
        q "compare((), \"a\")" "" "empty");
    test "matches and replace (literal semantics)" (fun () ->
        q "matches(\"banana\", \"nan\")" "true" "match";
        q "matches(\"banana\", \"xyz\")" "false" "no match";
        q "replace(\"banana\", \"an\", \"o\")" "booa" "replace";
        q "replace(\"aaa\", \"aa\", \"b\")" "ba" "greedy left");
    test "codepoints" (fun () ->
        q "string-to-codepoints(\"AB\")" "65 66" "to";
        q "codepoints-to-string((72, 105))" "Hi" "from";
        q "codepoints-to-string(string-to-codepoints(\"round\"))" "round" "roundtrip");
    test "sum with zero value" (fun () ->
        q "sum((), 0.0)" "0" "custom zero";
        q "sum((1, 2), 99)" "3" "ignored when nonempty");
    test "trace is identity" (fun () ->
        q "trace((1, 2), \"label\")" "1 2" "identity");
  ]

let suites =
  [
    ("eval.arith", arith_tests);
    ("eval.compare", cmp_tests);
    ("eval.paths", path_tests);
    ("eval.constructors", ctor_tests);
    ("eval.builtins", builtin_tests);
    ("eval.types", type_tests);
    ("eval.extra-builtins", extra_builtin_tests);
  ]
