(* Streaming ingestion: projection verdicts, the streaming scan, and
   streamed-vs-materialized differential checks (spill composition,
   read-fault sweep, bounded-memory smoke). *)

open Xq_lang
module Stream = Xq_xml.Xml_stream
module Xml_parse = Xq_xml.Xml_parse
module Projection = Xq_rewrite.Projection
module Governor = Xq_governor.Governor
module Xerror = Xq_xdm.Xerror
module Pipeline = Xq_pipeline.Pipeline
module Optimizer = Xq_algebra.Optimizer

let test = Helpers.test
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let analyze src = Projection.analyze (Parser.parse_query src)

let path_of src =
  match analyze src with
  | Projection.Streamable { path; _ } -> path
  | Projection.Materialize reason ->
    Alcotest.failf "expected streamable, got: %s" reason

let materialize_reason src =
  match analyze src with
  | Projection.Materialize reason -> reason
  | Projection.Streamable _ -> Alcotest.failf "expected materialize: %s" src

(* --- projection verdicts ------------------------------------------------- *)

let verdict_streamable () =
  (match analyze "for $o in /orders/order return $o/id" with
  | Projection.Streamable { path; var; positional } ->
    check_string "path" "/orders/order" (Stream.path_to_string path);
    check_string "var" "o" var;
    check_bool "no positional" true (positional = None)
  | Projection.Materialize r -> Alcotest.failf "materialize: %s" r);
  check_string "descendant step" "/orders//item"
    (Stream.path_to_string
       (path_of "for $i in /orders//item return $i/price"));
  check_string "leading //" "//item"
    (Stream.path_to_string (path_of "for $i in //item return $i/price"));
  match analyze "for $o at $p in /orders/order return $p" with
  | Projection.Streamable { positional = Some p; _ } ->
    check_string "positional var" "p" p
  | _ -> Alcotest.fail "positional binding should be streamable"

let verdict_group_by () =
  let q =
    {|for $o in /orders/order
      group by $o/cust into $k nest $o into $os
      order by $k
      return <r>{$k, count($os)}</r>|}
  in
  match analyze q with
  | Projection.Streamable { var = "o"; _ } -> ()
  | Projection.Streamable _ -> Alcotest.fail "wrong binding"
  | Projection.Materialize r -> Alcotest.failf "materialize: %s" r

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let assert_reason src fragment =
  let r = materialize_reason src in
  check_bool
    (Printf.sprintf "reason for %S mentions %S (got %S)" src fragment r)
    true (contains r fragment)

let verdict_materialize_reasons () =
  assert_reason "1 + 2" "FLWOR";
  assert_reason "for $o in /orders/order return /orders" "document root";
  assert_reason "for $o in /orders/order return count(//x)" "document root";
  assert_reason "for $o in /orders/order return $o/.." "escapes";
  assert_reason "for $o in /orders/order return doc('x')" "doc";
  assert_reason "for $o in /orders/order return count(.)" "context item";
  (* a predicate on the first binding's path is not a pure projection *)
  ignore (materialize_reason "for $o in /orders/order[1] return $o")

let verdict_to_string () =
  check_string "rendering" "streamable: $o <- scan /orders/order"
    (Projection.to_string (analyze "for $o in /orders/order return $o"))

(* --- the streaming scan --------------------------------------------------- *)

let serialize_nodes nodes =
  Xq_xml.Serialize.sequence (List.map (fun n -> Xq_xdm.Item.Node n) nodes)

let scan_path = path_of "for $x in /a/b return $x"

let scan_basic () =
  let doc = "<a><b>1</b><c>skip</c><b>2</b></a>" in
  let nodes = Stream.collect ~path:scan_path (`String doc) in
  check_int "two matches" 2 (List.length nodes);
  check_string "projected subtrees" "<b>1</b><b>2</b>" (serialize_nodes nodes)

let scan_nested_descendant () =
  let path = path_of "for $x in //b return $x" in
  let doc = "<a><b>x<b>y</b></b><b>z</b></a>" in
  let nodes = Stream.collect ~path (`String doc) in
  check_int "outer, nested and sibling matches" 3 (List.length nodes);
  check_string "document order, nested emitted too"
    "<b>x<b>y</b></b><b>y</b><b>z</b>" (serialize_nodes nodes)

let scan_lexical_parity () =
  (* entities, character references, CDATA and whitespace handling must
     match the materializing parser byte for byte *)
  let doc =
    "<a>\n  <b at=\"v&amp;w\">x &lt; &#65; <![CDATA[raw <markup> &amp;]]> \
     tail</b>\n  <b>&quot;q&quot;</b>\n</a>"
  in
  let streamed = serialize_nodes (Stream.collect ~path:scan_path (`String doc)) in
  let materialized = Helpers.run_xml ~data:doc "for $x in /a/b return $x" in
  check_string "streamed = materialized" materialized streamed

let scan_file_source () =
  let doc = "<a><b>one</b><b>two</b></a>" in
  let path_tmp = Filename.temp_file "xq_stream" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path_tmp)
    (fun () ->
      let oc = open_out_bin path_tmp in
      output_string oc doc;
      close_out oc;
      check_string "file source = string source"
        (serialize_nodes (Stream.collect ~path:scan_path (`String doc)))
        (serialize_nodes (Stream.collect ~path:scan_path (`File path_tmp))))

let scan_limits () =
  let deep = "<a><b><c><d><e>x</e></d></c></b></a>" in
  (match Stream.collect ~max_depth:3 ~path:scan_path (`String deep) with
  | _ -> Alcotest.fail "depth cap did not trip"
  | exception Xml_parse.Parse_error _ -> ());
  let doc = "<a><b>0123456789</b></a>" in
  match Stream.collect ~max_bytes:10 ~path:scan_path (`String doc) with
  | _ -> Alcotest.fail "byte cap did not trip"
  | exception Xml_parse.Parse_error { message; _ } ->
    check_bool "byte-cap message" true (contains message "10-byte limit")

let scan_malformed () =
  let cases =
    [
      "<a><b>unclosed</a>";
      "<a><b attr></b></a>";
      "<a><b>&unknown;</b></a>";
      "<a><b>text";
    ]
  in
  List.iter
    (fun doc ->
      match Stream.collect ~path:scan_path (`String doc) with
      | _ -> Alcotest.failf "accepted malformed %S" doc
      | exception Xml_parse.Parse_error _ -> ())
    cases

(* --- streamed vs materialized execution ----------------------------------- *)

let orders_doc n =
  let b = Buffer.create (n * 64) in
  Buffer.add_string b "<orders>";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "<order><cust>c%d</cust><amt>%d</amt></order>"
         (i mod 7) i)
  done;
  Buffer.add_string b "</orders>";
  Buffer.contents b

let group_q =
  {|for $o in /orders/order
    group by $o/cust into $k nest $o into $os
    order by $k
    return <r><k>{$k}</k><n>{count($os)}</n><s>{sum($os/amt)}</s></r>|}

let streamed_result ?(strategy = Optimizer.Hash) q doc =
  let query = Parser.parse_query q in
  match Projection.analyze query with
  | Projection.Streamable { path; var; positional } ->
    Pipeline.render
      (Xq_algebra.Exec.eval_query_stream ~strategy ~source:(`String doc)
         ~path ~var ~positional query)
  | Projection.Materialize r -> Alcotest.failf "not streamable: %s" r

let materialized_result ?(strategy = Optimizer.Hash) q doc =
  let query = Parser.parse_query q in
  Static.check_query query;
  Pipeline.render
    (Pipeline.eval ~strategy ~parallel:1 ~doc:(Xml_parse.parse doc)
       (Pipeline.of_query query))

let exec_byte_identity () =
  let doc = orders_doc 200 in
  let expected = materialized_result group_q doc in
  check_string "hash strategy" expected (streamed_result group_q doc);
  check_string "sort strategy" expected
    (streamed_result ~strategy:Optimizer.Sort group_q doc);
  check_bool "non-trivial result" true (String.length expected > 50)

let exec_spill_composition () =
  (* a tiny watermark forces the hash group to spill while the scan is
     still feeding it — the bounded-memory composition the tentpole
     claims: ingestion charges subtree estimates, grouping detaches
     retained subtrees to disk, and the output stays byte-identical.
     (A partition flushes once its live charge clears the 64 KB flush
     floor, so the document must carry a few thousand members.) *)
  let doc = orders_doc 4000 in
  let expected = materialized_result group_q doc in
  let g = Governor.create ~spill_watermark_bytes:4096 ~max_mem_mb:512 () in
  let streamed = Governor.with_governor g (fun () -> streamed_result group_q doc) in
  check_string "spilled streamed output" expected streamed;
  let st = Governor.stats g in
  check_bool "grouping actually spilled" true (st.Governor.s_spilled_bytes > 0)

let exec_bounded_memory () =
  (* a document an order of magnitude past the watermark completes with
     a far smaller memory peak than the materializing path: the scan
     never builds the full tree, and the spilling group releases the
     retained subtrees. Peaks are Gc-delta estimates, so the assertion
     is comparative rather than an absolute byte bound. *)
  let doc = orders_doc 40_000 in
  let watermark = 8 * 1024 in
  check_bool "doc is >10x the watermark" true
    (String.length doc > 10 * watermark);
  let gm = Governor.create ~spill_watermark_bytes:watermark ~max_mem_mb:512 () in
  let expected =
    Governor.with_governor gm (fun () -> materialized_result group_q doc)
  in
  let gs = Governor.create ~spill_watermark_bytes:watermark ~max_mem_mb:512 () in
  let streamed = Governor.with_governor gs (fun () -> streamed_result group_q doc) in
  check_string "output unchanged" expected streamed;
  let peak_m = (Governor.stats gm).Governor.s_peak_mem_bytes in
  let peak_s = (Governor.stats gs).Governor.s_peak_mem_bytes in
  check_bool "streamed run spilled" true
    ((Governor.stats gs).Governor.s_spilled_bytes > 0);
  check_bool
    (Printf.sprintf "streamed peak (%d) well under materialized peak (%d)"
       peak_s peak_m)
    true
    (peak_s * 2 < peak_m)

let exec_fault_sweep () =
  (* >=20 seeds of injected read-I/O faults: every run either fails with
     a clean structured error or produces byte-identical output — never
     partial or divergent data *)
  let doc = orders_doc 4000 in
  let expected = materialized_result group_q doc in
  let clean = ref 0 and tripped = ref 0 and truncated = ref 0 in
  for seed = 0 to 24 do
    Governor.set_faults ~seed ~rate:0.4;
    Fun.protect ~finally:Governor.clear_faults (fun () ->
        let g = Governor.create () in
        match Governor.with_governor g (fun () -> streamed_result group_q doc) with
        | out ->
          incr clean;
          check_string (Printf.sprintf "seed %d output" seed) expected out
        | exception Xerror.Error (code, _) ->
          (* usually the injected read fault's XQENG0008, but arming
             XQ_FAULTS also arms the allocation-pressure stream, so any
             engine resource trip is an acceptable clean failure *)
          incr tripped;
          let c = Xerror.code_to_string code in
          check_bool
            (Printf.sprintf "seed %d trips an engine code (got %s)" seed c)
            true
            (String.length c >= 5 && String.sub c 0 5 = "XQENG")
        | exception Xml_parse.Parse_error _ ->
          (* an injected truncation surfaces as the parser's ordinary
             unexpected-end error *)
          incr truncated)
  done;
  check_int "every seed accounted for" 25 (!clean + !tripped + !truncated);
  check_bool
    (Printf.sprintf "faults actually fired (clean %d, trip %d, trunc %d)"
       !clean !tripped !truncated)
    true
    (!tripped + !truncated > 0)

(* --- the pipeline front end ------------------------------------------------ *)

let knobs_plan =
  { Pipeline.default_knobs with Pipeline.k_strategy = Some Optimizer.Hash }

let pipeline_stream_identity () =
  let doc = orders_doc 150 in
  let streamed =
    Pipeline.run ~knobs:knobs_plan ~source:group_q
      ~stream_source:(`String doc) ()
  in
  let materialized =
    Pipeline.run ~knobs:knobs_plan ~source:group_q
      ~load_doc:(fun () -> Xml_parse.parse doc)
      ()
  in
  check_string "front-end byte identity" materialized.Pipeline.r_output
    streamed.Pipeline.r_output;
  check_int "same cardinality" materialized.Pipeline.r_items
    streamed.Pipeline.r_items

let pipeline_fallback () =
  (* a non-streamable query through the stream front end degrades to
     materializing with identical output *)
  let doc = orders_doc 20 in
  let q = "for $o in /orders/order return count(//order)" in
  let streamed =
    Pipeline.run ~knobs:knobs_plan ~source:q ~stream_source:(`String doc) ()
  in
  let materialized =
    Pipeline.run ~knobs:knobs_plan ~source:q
      ~load_doc:(fun () -> Xml_parse.parse doc)
      ()
  in
  check_string "fallback byte identity" materialized.Pipeline.r_output
    streamed.Pipeline.r_output

let pipeline_kill_switch () =
  let doc = orders_doc 20 in
  Unix.putenv "XQ_NO_STREAM" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "XQ_NO_STREAM" "0")
    (fun () ->
      let r =
        Pipeline.run ~knobs:knobs_plan ~source:group_q
          ~stream_source:(`String doc) ()
      in
      let expected =
        Pipeline.run ~knobs:knobs_plan ~source:group_q
          ~load_doc:(fun () -> Xml_parse.parse doc)
          ()
      in
      check_string "kill switch output" expected.Pipeline.r_output
        r.Pipeline.r_output)

let pipeline_explain_verdict () =
  let doc = orders_doc 5 in
  let r =
    Pipeline.run ~knobs:knobs_plan ~explain_analyze:true ~source:group_q
      ~stream_source:(`String doc) ()
  in
  check_bool "EXPLAIN carries the stream verdict" true
    (contains r.Pipeline.r_output "stream: streamable: $o <- scan /orders/order")

let suites =
  [
    ( "stream-projection",
      [
        test "streamable verdicts" verdict_streamable;
        test "group-by is streamable" verdict_group_by;
        test "materialize reasons" verdict_materialize_reasons;
        test "verdict rendering" verdict_to_string;
      ] );
    ( "stream-scan",
      [
        test "projected subtrees only" scan_basic;
        test "nested descendant matches" scan_nested_descendant;
        test "lexical parity with the parser" scan_lexical_parity;
        test "file source" scan_file_source;
        test "depth and byte caps" scan_limits;
        test "malformed input is rejected" scan_malformed;
      ] );
    ( "stream-exec",
      [
        test "byte-identical to materialized" exec_byte_identity;
        test "composes with hash-group spill" exec_spill_composition;
        test "bounded memory past the watermark" exec_bounded_memory;
        test "read-fault sweep: clean error or identical" exec_fault_sweep;
      ] );
    ( "stream-pipeline",
      [
        test "front-end byte identity" pipeline_stream_identity;
        test "unstreamable query degrades" pipeline_fallback;
        test "XQ_NO_STREAM kill switch" pipeline_kill_switch;
        test "EXPLAIN stream verdict" pipeline_explain_verdict;
      ] );
  ]
