(: fixture: orders :)
for $l in //order/lineitem
group by $l/a into $a
nest $l/b into $bs
return <g>{$a}<n>{count($bs)}</n></g>
