(: fixture: sales :)
for $s in //sale
group by $s/region into $r
nest $s/quantity into $qs
order by $r
return <region>{$r}<total>{sum($qs)}</total></region>
