(: fixture: lineitems :)
for $sku in distinct-values(//order/lineitem/sku)
let $grp := for $i in //order/lineitem where $i/sku = $sku return $i
return <r>{$sku, count($grp)}</r>
