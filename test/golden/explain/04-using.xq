(: fixture: bib :)
for $b in //book
group by $b/publisher into $p using deep-equal
nest $b/title into $ts
return <p>{$p}<n>{count($ts)}</n></p>
