(: fixture: lineitems :)
for $l in //order/lineitem
group by $l/sku into $sku
nest $l/qty into $q
return <g>{$sku}<s>{sum($q)}</s><c>{count($q)}</c><a>{avg($q)}</a></g>
