(: fixture: bib :)
for $b in //book
where $b/price > 40
count $n
group by $b/year into $y
nest $b/title into $ts
return <y>{$y}<c>{count($ts)}</c></y>
