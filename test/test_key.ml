(* Canonical grouping keys (Key), the grouping hash mixer and the
   domain pool (Par).

   The qcheck properties pin the Key invariants: canonical equality
   coincides exactly with fn:deep-equal over the original sequences,
   deep-equal keys get equal hashes and compare 0, and the order is
   antisymmetric. The walk-counter tests assert the tentpole claim:
   grouping materializes (walks / stringifies) each key node subtree
   exactly once — comparisons and sorting never touch the tree again. *)

open Xq_xdm
module Key = Xq_engine.Key
module Group = Xq_engine.Group
module Par = Xq.Par

let to_alcotest = QCheck_alcotest.to_alcotest
let arb_sequence = Test_props.arb_sequence
let arb_root = Test_props.arb_root

(* --- canonical keys agree with deep-equal ------------------------------- *)

let canon1 s = Key.canonicalize [ s ]

let canonical_props =
  [
    QCheck.Test.make ~count:500
      ~name:"canonical equality = deep-equal (atomic sequences)"
      (QCheck.pair arb_sequence arb_sequence)
      (fun (a, b) -> Key.equal (canon1 a) (canon1 b) = Deep_equal.sequences a b);
    QCheck.Test.make ~count:300
      ~name:"canonical equality = deep-equal (node sequences)"
      (QCheck.pair arb_root arb_root)
      (fun (n1, n2) ->
        (* each root against the other, and against a fresh copy of
           itself — copies exercise the equal case on distinct nodes *)
        let agree a b =
          Key.equal (canon1 a) (canon1 b) = Deep_equal.sequences a b
        in
        agree [ Item.Node n1 ] [ Item.Node n2 ]
        && agree [ Item.Node n1 ] [ Item.Node (Node.copy n1) ]
        && agree [ Item.Node n2 ] [ Item.Node (Node.copy n2) ]);
    QCheck.Test.make ~count:500
      ~name:"deep-equal keys: equal canonical hash and compare 0"
      (QCheck.pair arb_sequence arb_sequence)
      (fun (a, b) ->
        (not (Deep_equal.sequences a b))
        ||
        let ka = canon1 a and kb = canon1 b in
        Key.hash ka = Key.hash kb && Key.compare ka kb = 0);
    QCheck.Test.make ~count:200
      ~name:"node copy: equal canonical hash and compare 0" arb_root
      (fun n ->
        let ka = canon1 [ Item.Node n ]
        and kb = canon1 [ Item.Node (Node.copy n) ] in
        Key.equal ka kb && Key.hash ka = Key.hash kb && Key.compare ka kb = 0);
    QCheck.Test.make ~count:300 ~name:"canonical compare is antisymmetric"
      (QCheck.pair arb_sequence arb_sequence)
      (fun (a, b) ->
        let ka = canon1 a and kb = canon1 b in
        compare (Key.compare ka kb) 0 = -compare (Key.compare kb ka) 0);
  ]

(* --- walk counter: each key node is materialized exactly once ------------ *)

(* n tuples keyed by a <k>digit</k> element node; 7 distinct key values,
   so groups have many members and the comparators run constantly. *)
let node_tuples n =
  List.init n (fun i ->
      let node =
        Xq_xml.Builder.(build (el_text "k" (string_of_int (i mod 7))))
      in
      (i, [ [ Item.Node node ] ]))

let keys_of = snd

let counting f =
  Key.reset_walk_count ();
  let r = f () in
  (r, Key.walk_count ())

let member_ids g = List.map fst g.Group.members
let group_ids gs = List.map member_ids gs

let walk_tests =
  [
    Alcotest.test_case "group_hash walks each key node exactly once" `Quick
      (fun () ->
        let tuples = node_tuples 200 in
        let tally = ref 0 in
        let groups, walks =
          counting (fun () -> Group.group_hash ~tally ~keys_of tuples)
        in
        Alcotest.(check int) "groups" 7 (List.length groups);
        Alcotest.(check int) "one walk per key node" 200 walks;
        Alcotest.(check bool) "equality tests ran" true (!tally > 0));
    Alcotest.test_case
      "group_sort sorted output: sorting adds zero node walks" `Quick
      (fun () ->
        let tuples = node_tuples 200 in
        let tally = ref 0 in
        let groups, walks =
          counting (fun () ->
              Group.group_sort ~tally ~sorted_output:true ~keys_of tuples)
        in
        Alcotest.(check int) "groups" 7 (List.length groups);
        (* the acceptance criterion: despite !tally comparator calls, no
           comparison re-walks or re-stringifies a key subtree *)
        Alcotest.(check int) "one walk per key node" 200 walks;
        Alcotest.(check bool) "comparator ran" true (!tally > 0));
    Alcotest.test_case "group_scan default equality: zero extra walks" `Quick
      (fun () ->
        let tuples = node_tuples 60 in
        let groups, walks =
          counting (fun () ->
              Group.group_scan ~keys_of
                ~equal:(fun _ a b -> Key.equal_single a b)
                tuples)
        in
        Alcotest.(check int) "groups" 7 (List.length groups);
        Alcotest.(check int) "one walk per key node" 60 walks);
  ]

(* --- parallel grouping: identical output and identical tallies ----------- *)

let parallel_tests =
  [
    Alcotest.test_case "group_hash at degree 4 = sequential (incl. tally)"
      `Quick (fun () ->
        let tuples = node_tuples 300 in
        let t1 = ref 0 and t4 = ref 0 in
        let seq = Group.group_hash ~tally:t1 ~keys_of tuples in
        let par = Group.group_hash ~tally:t4 ~parallel:4 ~keys_of tuples in
        Alcotest.(check (list (list int)))
          "same groups, order and members" (group_ids seq) (group_ids par);
        Alcotest.(check int) "same comparator tally" !t1 !t4);
    Alcotest.test_case "group_sort sorted output at degree 4 = sequential"
      `Quick (fun () ->
        let tuples = node_tuples 300 in
        let seq = Group.group_sort ~sorted_output:true ~keys_of tuples in
        let par =
          Group.group_sort ~sorted_output:true ~parallel:4 ~keys_of tuples
        in
        Alcotest.(check (list (list int)))
          "same groups, order and members" (group_ids seq) (group_ids par));
    Alcotest.test_case "group_scan at degree 4 = sequential" `Quick (fun () ->
        let tuples = node_tuples 120 in
        let equal _ a b = Key.equal_single a b in
        let seq = Group.group_scan ~keys_of ~equal tuples in
        let par = Group.group_scan ~parallel:4 ~keys_of ~equal tuples in
        Alcotest.(check (list (list int)))
          "same groups, order and members" (group_ids seq) (group_ids par));
  ]

(* --- the key dictionary --------------------------------------------------- *)

(* Interning rewrites node keys to small dictionary codes; every
   observable property (equality, hash, order — including against keys
   canonicalized WITHOUT interning) must be unchanged, and codes must
   survive the spill codec. *)
let dict_props =
  [
    QCheck.Test.make ~count:200
      ~name:"interned canon = raw canon (equality, hash, order)" arb_root
      (fun n ->
        let s = [ Item.Node n ] in
        let raw = canon1 s in
        let interned = Key.with_interning (fun () -> canon1 s) in
        Key.equal raw interned && Key.equal interned raw
        && Key.hash raw = Key.hash interned
        && Key.compare raw interned = 0);
    QCheck.Test.make ~count:200
      ~name:"interned equality coincides with deep-equal"
      (QCheck.pair arb_root arb_root)
      (fun (n1, n2) ->
        let c n = Key.with_interning (fun () -> canon1 [ Item.Node n ]) in
        let k1 = c n1 and k2 = c n2 in
        Key.equal k1 k2 = Deep_equal.sequences [ Item.Node n1 ] [ Item.Node n2 ]);
    QCheck.Test.make ~count:200
      ~name:"interned keys survive the binio spill round-trip" arb_root
      (fun n ->
        let k = Key.with_interning (fun () -> canon1 [ Item.Node n ]) in
        let reg = Binio.registry () in
        let buf = Buffer.create 64 in
        Key.encode reg buf k;
        let k' = Key.decode reg (Binio.reader (Buffer.contents buf)) in
        Key.equal k k' && Key.hash k = Key.hash k' && Key.compare k k' = 0);
  ]

let dict_tests =
  [
    Alcotest.test_case "interning actually produces dictionary codes" `Quick
      (fun () ->
        let node = Xq_xml.Builder.(build (el_text "k" "dict-probe")) in
        let before = Key.intern_count () in
        let _ = Key.with_interning (fun () -> canon1 [ Item.Node node ]) in
        Alcotest.(check bool) "interned" true (Key.intern_count () > before);
        Alcotest.(check bool) "dictionary non-empty" true
          (Key.dict_size () > 0));
    Alcotest.test_case "torn spill frame is rejected, never misdecoded"
      `Quick (fun () ->
        let node = Xq_xml.Builder.(build (el_text "k" "torn")) in
        let k = Key.with_interning (fun () -> canon1 [ Item.Node node ]) in
        let reg = Binio.registry () in
        let buf = Buffer.create 64 in
        Key.encode reg buf k;
        let whole = Buffer.contents buf in
        (* every strict prefix must fail loudly *)
        for cut = 0 to String.length whole - 1 do
          match Key.decode reg (Binio.reader (String.sub whole 0 cut)) with
          | _ -> Alcotest.fail "decoded a torn frame"
          | exception Binio.Corrupt _ -> ()
        done);
    Alcotest.test_case "codes outside the dictionary are corrupt" `Quick
      (fun () ->
        (* a frame can hold a code the dictionary no longer covers (e.g.
           written before a crash); decode must refuse it *)
        let node = Xq_xml.Builder.(build (el_text "k" "stale-code")) in
        let k = Key.with_interning (fun () -> canon1 [ Item.Node node ]) in
        let reg = Binio.registry () in
        let buf = Buffer.create 64 in
        Key.encode reg buf k;
        Key.reset_dict ();
        match Key.decode reg (Binio.reader (Buffer.contents buf)) with
        | _ -> Alcotest.fail "decoded a stale dictionary code"
        | exception Binio.Corrupt _ -> ());
    Alcotest.test_case
      "grouping with interning = without, sequential and at degree 4" `Quick
      (fun () ->
        let tuples = node_tuples 600 in
        Fun.protect
          ~finally:(fun () -> Key.set_interning_available true)
          (fun () ->
            Key.set_interning_available false;
            let plain = Group.group_hash ~keys_of tuples in
            Key.set_interning_available true;
            let interned =
              Key.with_interning (fun () -> Group.group_hash ~keys_of tuples)
            in
            let par =
              Key.with_interning (fun () ->
                  Group.group_hash ~parallel:4 ~keys_of tuples)
            in
            Alcotest.(check (list (list int)))
              "interned = plain" (group_ids plain) (group_ids interned);
            Alcotest.(check (list (list int)))
              "parallel interned = plain" (group_ids plain) (group_ids par)));
  ]

(* --- the hash mixer: wide key lists must not collapse -------------------- *)

let hash_tests =
  [
    Alcotest.test_case "key lists differing deep in a wide list hash apart"
      `Quick (fun () ->
        (* a single bounded Hashtbl.hash pass samples long lists and
           collided on exactly this pair; the fold mixer must not *)
        let key i = [ Item.Atomic (Atomic.Int i) ] in
        let l1 = List.init 30 key in
        let l2 = List.mapi (fun i k -> if i = 25 then key 999 else k) l1 in
        Alcotest.(check bool) "hashes differ" true
          (Group.hash_keys l1 <> Group.hash_keys l2));
    Alcotest.test_case "hash_keys is deep-equal-consistent" `Quick (fun () ->
        let l1 = [ [ Item.Atomic (Atomic.Int 3) ]; [ Item.Atomic (Atomic.Str "x") ] ] in
        let l2 = [ [ Item.Atomic (Atomic.Dbl 3.0) ]; [ Item.Atomic (Atomic.Untyped "x") ] ] in
        Alcotest.(check bool) "numeric/string promotion hashes equal" true
          (Group.hash_keys l1 = Group.hash_keys l2));
  ]

(* --- the domain pool ----------------------------------------------------- *)

let par_tests =
  [
    Alcotest.test_case "Par.map = Array.map at degree 4" `Quick (fun () ->
        let src = Array.init 1003 (fun i -> i) in
        let f x = x * 37 mod 101 in
        Alcotest.(check (array int))
          "map" (Array.map f src)
          (Par.map ~degree:4 ~min_chunk:8 f src));
    Alcotest.test_case "Par.sort is stable and = Array.stable_sort" `Quick
      (fun () ->
        let n = 2000 in
        let a = Array.init n (fun i -> (i * 7919 mod 13, i)) in
        let cmp (k1, _) (k2, _) = compare k1 k2 in
        let expected = Array.copy a in
        Array.stable_sort cmp expected;
        let got = Array.copy a in
        Par.sort ~degree:4 ~min_chunk:16 cmp got;
        Alcotest.(check (array (pair int int))) "sorted" expected got);
    Alcotest.test_case "Par.map raises the earliest failure" `Quick (fun () ->
        let src = Array.init 100 (fun i -> i) in
        let f x = if x = 23 || x = 71 then failwith (string_of_int x) else x in
        match Par.map ~degree:4 ~min_chunk:4 f src with
        | _ -> Alcotest.fail "expected a failure"
        | exception Failure m ->
          Alcotest.(check string) "earliest failing index wins" "23" m);
  ]

(* --- oracle agreement: canonical partition = naive deep-equal ----------- *)

(* The fuzzing oracle groups by literal pairwise fn:deep-equal over the
   original key sequences (the paper's Section 3.3 wording); the engine
   groups through canonical keys. Over collision-prone generated key
   lists — mixed atoms, untyped values, small element nodes, sequence
   keys — both must induce the same partition, groups and members in
   the same order. *)
let oracle_agreement_tests =
  let partition_of groups ~members = List.map members groups in
  [
    Alcotest.test_case
      "group_hash partition = naive pairwise deep-equal (seeds 0-99)" `Quick
      (fun () ->
        for seed = 0 to 99 do
          let tuples =
            List.mapi (fun i ks -> (i, ks)) (Xq_qgen.Qgen.key_lists seed)
          in
          let engine = Group.group_hash ~keys_of tuples in
          let naive =
            Xq_refimpl.Refimpl.group_by_deep_equal ~keys_of tuples
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "seed %d" seed)
            (partition_of naive ~members:(fun g ->
                 List.map fst g.Xq_refimpl.Refimpl.members))
            (group_ids engine)
        done);
    Alcotest.test_case
      "group_sort partition = naive pairwise deep-equal (seeds 0-49)" `Quick
      (fun () ->
        for seed = 0 to 49 do
          let tuples =
            List.mapi (fun i ks -> (i, ks)) (Xq_qgen.Qgen.key_lists seed)
          in
          let engine = Group.group_sort ~keys_of tuples in
          let naive =
            Xq_refimpl.Refimpl.group_by_deep_equal ~keys_of tuples
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "seed %d" seed)
            (partition_of naive ~members:(fun g ->
                 List.map fst g.Xq_refimpl.Refimpl.members))
            (group_ids engine)
        done);
  ]

let suites =
  [
    ("key.canonical", List.map to_alcotest canonical_props);
    ("key.oracle-agreement", oracle_agreement_tests);
    ("key.walks", walk_tests);
    ("key.parallel", parallel_tests);
    ("key.dictionary", List.map to_alcotest dict_props @ dict_tests);
    ("key.hash", hash_tests);
    ("key.par-pool", par_tests);
  ]
