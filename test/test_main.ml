(* Aggregated alcotest runner for all suites. *)

let () =
  Alcotest.run "xqgroup"
    (List.concat
       [
         Test_xdm.suites;
         Test_xml.suites;
         Test_lang.suites;
         Test_eval.suites;
         Test_flwor.suites;
         Test_paper.suites;
         Test_rewrite.suites;
         Test_extensions.suites;
         Test_algebra.suites;
         Test_use_cases.suites;
         Test_golden.suites;
         Test_explain_golden.suites;
         Test_tutorial.suites;
         Test_conformance.suites;
         Test_window.suites;
         Test_bench_queries.suites;
         Test_workload.suites;
         Test_props.suites;
         Test_key.suites;
         Test_strategies.suites;
         Test_par.suites;
         Test_governor.suites;
         Test_spill.suites;
         Test_agg.suites;
         Test_corpus.suites;
         Test_fuzz.suites;
         Test_stream.suites;
         Test_server.suites;
         Test_lifecycle.suites;
       ])
