(* Shrunk-regression corpus replay: every test/corpus/NAME.xq runs
   against its paired NAME.xml through the oracle, the direct evaluator
   and all three plan strategies, and each must serialize exactly to
   NAME.expected. Entries are minimal fuzzer finds plus hand-written
   paper idioms; re-bless after an intended output change with

     XQ_CORPUS_BLESS=$PWD/test/corpus dune exec test/test_main.exe -- test corpus *)

module Refimpl = Xq_refimpl.Refimpl
module Exec = Xq_algebra.Exec
module Optimizer = Xq_algebra.Optimizer

let bless_dir = Sys.getenv_opt "XQ_CORPUS_BLESS"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus_dir = Filename.concat (Filename.dirname Sys.executable_name) "corpus"

let dir =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then corpus_dir
  else "corpus"

let entries =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.map Filename.remove_extension
    |> List.sort compare
  else []

let evaluators =
  ("oracle", fun ~context_node q -> Refimpl.eval_query ~context_node q)
  :: ("direct", fun ~context_node q -> Xq_engine.Eval.eval_query ~context_node q)
  :: List.map
       (fun s ->
         ( "plan:" ^ Optimizer.strategy_to_string s,
           fun ~context_node q -> Exec.eval_query ~strategy:s ~context_node q ))
       [ Optimizer.Hash; Optimizer.Sort; Optimizer.Auto ]

let replay name () =
  let base = Filename.concat dir name in
  let query = Xq_lang.Parser.parse_query (read_file (base ^ ".xq")) in
  Xq_lang.Static.check_query query;
  let context_node = Xq_xml.Xml_parse.parse (read_file (base ^ ".xml")) in
  (match bless_dir with
  | Some out ->
    let got = Xq_xml.Serialize.sequence (Exec.eval_query ~context_node query) in
    let oc = open_out_bin (Filename.concat out (name ^ ".expected")) in
    output_string oc (got ^ "\n");
    close_out oc
  | None -> ());
  let expected = read_file (base ^ ".expected") in
  List.iter
    (fun (label, eval) ->
      let got = Xq_xml.Serialize.sequence (eval ~context_node query) ^ "\n" in
      Alcotest.(check string) (name ^ " via " ^ label) expected got)
    evaluators

let suites =
  [
    ( "corpus",
      List.map (fun name -> Alcotest.test_case name `Quick (replay name)) entries
      @ [
          Alcotest.test_case "corpus is non-empty" `Quick (fun () ->
              Alcotest.(check bool) "found entries" true (entries <> []));
        ] );
  ]
