for $i1 in /child::data/child::item
for $i2 in /child::data/child::item
for $i3 at $p4 in /child::data/child::item
group by fn:string-join($i1/child::w, "q""q") into $g5 nest (9, 1) into $n6
let $l7 := ((fn:number(/child::data/child::item[1]/attribute::t) mod fn:count($n6)) - fn:count(/child::data/child::item/child::w))
where (fn:string(/child::data/child::item[1]/attribute::t) gt "")
order by fn:max(/child::data/child::item/child::v) descending empty greatest
return at $r8 <row a="{fn:string-length(fn:string(/child::data/child::item[1]/attribute::k))}" b="{fn:max(/child::data/child::item/child::w)}">{/child::data/child::item/child::v}{$r8}{/child::data/child::item[1]/attribute::k}</row>