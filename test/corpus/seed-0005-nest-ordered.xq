for $i1 in /child::data/child::item
for $i2 in /child::data/child::item
for $i3 in $i1/child::v
let $l4 := $i1/descendant-or-self::node()/child::v
group by ($i1/child::s, $i1/attribute::t) into $g5 nest (4 to 0) order by fn:string-length("b") descending into $n6, (0 to 1) order by fn:string($i3/attribute::k) into $n7
order by "it's" descending empty greatest
return at $r8 <row a="#{fn:min(/child::data/child::item/child::w)}" b="{fn:avg(/child::data/child::item/child::sub/child::v)}">green{(fn:max((1, 6)), (1, /child::data/child::item[1]/attribute::k))}</row>