for $i in /data/item
group by $i/v into $vs using fn:deep-equal nest $i/@k into $ks
order by fn:count($ks) descending, fn:string-join($vs, "-")
return <class size="{fn:count($ks)}" key="{fn:string-join($vs, ",")}">{fn:string-join($ks, " ")}</class>
