for $i1 at $p2 in /child::data/child::item
let $l3 := (7, $p2)
let $l4 := fn:max($i1/child::v[. != 2])
group by $i1/child::sub/child::v into $g5 nest (3 to 4) into $n6
let $l7 := fn:avg(/child::data/child::item/child::v)
let $l8 := 9
where (/child::data/child::item/child::w = 6)
stable order by fn:avg(/child::data/child::item/child::v) descending empty least, fn:min(9 to 0) descending
return <row>{(7, 3)}</row>