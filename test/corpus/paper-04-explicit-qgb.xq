for $litem in //order/lineitem
group by $litem/sku into $a
nest $litem/qty into $q
return <r>{$a, sum($q), count($q), avg($q), min($q), max($q)}</r>
