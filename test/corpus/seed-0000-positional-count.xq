for $i1 at $p2 in /child::data/child::item
for $i3 in (1 to 3)
for $i4 at $p5 in /child::data/child::item
let $l6 := 2
count $c7
group by $i1/child::v into $g8, (fn:count($i1/child::v[. >= 1]) mod 3) into $g9
order by fn:count($g8) empty least
return <row a="{fn:avg(/child::data/child::item/child::v[3])}"><c>{fn:string-length(fn:string(fn:number(/child::data/child::item[1]/attribute::t)))}</c>{(fn:min((7, 8)), /child::data/child::item[1]/child::s)}<c>{7}</c></row>