for $i in /data/item
let $t := fn:sum($i/v)
group by $i/@k into $k nest $t into $ts
let $s := fn:sum($ts)
order by $s descending, fn:string($k)
return at $rank <rank n="{$rank}" k="{$k}" sum="{$s}"/>
