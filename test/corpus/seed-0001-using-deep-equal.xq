for $i1 in /child::data/child::item
for $i2 at $p3 in $i1/child::v
for $i4 in (1 to 3)
where ((5 to 4) >= 2)
group by (fn:count($i2/child::sub/child::v) mod 3) into $g5 using fn:deep-equal nest $i4 into $n6
let $l7 := $g5
return <row a="{fn:number(/child::data/child::item[1]/attribute::t)}"><c>{3 mod fn:count((4, 6))}</c>{$n6}blue</row>