for $i1 in /child::data/child::item
for $i2 in /child::data/child::item
for $i3 at $p4 in /child::data/child::item
group by fn:string-join($i2/child::w, "it's") into $g5, $i2/child::s into $g6 nest (8 to 1) into $n7
where (/child::data/child::item/child::v[. != 8] = 9)
order by fn:count(/child::data/child::item/child::v) descending
return <row a="#{fn:count(/child::data/child::item/child::v)}" b="#{5}">{$g6}{3 to 3}green</row>