for $a in distinct-values(//order/lineitem/sku)
let $items := for $i in //order/lineitem where $i/sku = $a return $i
return <r>{$a, count($items)}</r>
