for $i1 in /child::data/child::item
for $i2 in /child::data/child::item
for $i3 in /child::data/child::item
let $l4 := 9
let $l5 := "b"
group by ($i2/attribute::k, $i3/attribute::k) into $g6 nest $i2/descendant-or-self::node()/child::v order by fn:avg($i2/child::v) descending empty greatest into $n7
return <row>{fn:string-length("it's")}<c>{fn:avg((6, 5))}</c></row>