for $i1 at $p2 in /child::data/child::item
for $i3 in /child::data/child::item
let $l4 := 8
order by fn:number($i3/attribute::t) empty least, fn:avg($i1/child::v[3]) descending empty least
return <row a="{fn:max($i3/child::v)}">{$i1/child::v}</row>