(* The benchmark query inventory: Table 1 templates (with and without
   explicit group by) instantiated for each experiment of Section 6, plus
   the queries used by the ablation benches. *)

(* Table 1, left column: with explicit group by (Qgb). *)
let qgb_one key =
  Printf.sprintf
    {|for $litem in //order/lineitem
group by $litem/%s into $a
nest $litem into $items
return <r>{$a, count($items)}</r>|}
    key

let qgb_two key1 key2 =
  Printf.sprintf
    {|for $litem in //order/lineitem
group by $litem/%s into $a, $litem/%s into $b
nest $litem into $items
return <r>{$a, $b, count($items)}</r>|}
    key1 key2

(* Table 1, right column: without explicit group by (Q). *)
let q_one key =
  Printf.sprintf
    {|for $a in distinct-values(//order/lineitem/%s)
let $items := for $i in //order/lineitem where $i/%s = $a return $i
return <r>{$a, count($items)}</r>|}
    key key

let q_two key1 key2 =
  Printf.sprintf
    {|for $a in distinct-values(//order/lineitem/%s),
    $b in distinct-values(//order/lineitem/%s)
let $items := for $i in //order/lineitem
              where $i/%s = $a and $i/%s = $b return $i
where exists($items)
return <r>{$a, $b, count($items)}</r>|}
    key1 key2 key1 key2

(* The eager-aggregation pair: the nest variable is consumed only by
   aggregate builtins, so the optimizer folds it into per-group
   accumulators (Qgb), while the implicit Q form rescans the input per
   key — the ablation-agg bench runs both, with the pushdown on and
   off. *)
let qgb_agg key =
  Printf.sprintf
    {|for $litem in //order/lineitem
group by $litem/%s into $a
nest $litem/quantity into $q
order by $a
return <r>{$a}<c>{count($q)}</c><s>{sum($q)}</s><v>{avg($q)}</v></r>|}
    key

let q_agg key =
  Printf.sprintf
    {|for $a in distinct-values(//order/lineitem/%s)
let $items := for $i in //order/lineitem where $i/%s = $a return $i
order by $a
return <r>{$a}<c>{count($items)}</c><s>{sum($items/quantity)}</s><v>{avg($items/quantity)}</v></r>|}
    key key

(* The six experiment queries of Section 6: single-element group-bys over
   shipinstruct / shipmode / tax / quantity, and the two-element pairs. *)
type experiment = {
  label : string;
  keys : string;       (* human-readable key list *)
  qgb : string;
  q : string;
}

let experiments =
  [
    { label = "Q1"; keys = "shipinstruct"; qgb = qgb_one "shipinstruct"; q = q_one "shipinstruct" };
    { label = "Q2"; keys = "shipmode"; qgb = qgb_one "shipmode"; q = q_one "shipmode" };
    { label = "Q3"; keys = "tax"; qgb = qgb_one "tax"; q = q_one "tax" };
    { label = "Q6"; keys = "quantity"; qgb = qgb_one "quantity"; q = q_one "quantity" };
    { label = "Q4"; keys = "(shipinstruct, shipmode)";
      qgb = qgb_two "shipinstruct" "shipmode"; q = q_two "shipinstruct" "shipmode" };
    { label = "Q5"; keys = "(shipinstruct, tax)";
      qgb = qgb_two "shipinstruct" "tax"; q = q_two "shipinstruct" "tax" };
  ]

(* Ablation B: custom equality. Group books by their author sequence,
   once with the default deep-equal (hash grouping) and once with a
   user-defined set-equal (nested-loop grouping). *)
let group_by_authors_default =
  {|for $b in //book
group by $b/author into $a
nest $b/price into $prices
return <g>{count($prices)}</g>|}

let group_by_authors_set_equal =
  {|declare function local:set-equal($s as item()*, $t as item()*) as xs:boolean
{ (every $i in $s satisfies some $j in $t satisfies $i eq $j)
  and (every $j in $t satisfies some $i in $s satisfies $i eq $j) };
for $b in //book
group by $b/author into $a using local:set-equal
nest $b/price into $prices
return <g>{count($prices)}</g>|}

(* Ablation C: Q8-style moving window, via ordered nests (the paper's
   Section 3.4.1 formulation) vs. plain XQuery 1.0 (per-sale self-join
   with an ordering subquery). Window = 10 previous sales per region. *)
let window_with_nest_order =
  {|for $s in //sale
group by $s/region into $region
nest $s order by $s/timestamp into $rs
return
  <region name="{string($region)}">
    {for $s1 at $i in $rs
     return <w>{sum(for $s2 at $j in $rs
                    where $j < $i and $j >= $i - 10
                    return $s2/quantity * $s2/price)}</w>}
  </region>|}

let window_plain_xquery =
  {|for $r in distinct-values(//sale/region)
return
  <region name="{$r}">
    {let $rs := for $s in //sale where $s/region = $r
                order by $s/timestamp return $s
     return
       for $s1 at $i in $rs
       return <w>{sum(for $s2 at $j in $rs
                      where $j < $i and $j >= $i - 10
                      return $s2/quantity * $s2/price)}</w>}
  </region>|}

(* The same computation with the XQuery 3.0 window clause this repo also
   implements — the standardized successor of the idiom. *)
let window_with_window_clause =
  {|for $s in //sale
group by $s/region into $region
nest $s order by $s/timestamp into $rs
return
  <region name="{string($region)}">
    {for sliding window $win in $rs
     start $cur at $i when true()
     end at $e when $e - $i = 10
     return <w>{sum($win/(quantity * price)) - $cur/quantity * $cur/price}</w>}
  </region>|}

(* Ablation D: the Section 5 membership-function queries. *)
let paths_fn =
  {|declare function local:paths($cats as item()*) as xs:string* {
  for $c in $cats
  let $n := local-name($c)
  return ($n, for $p in local:paths($c/*) return concat($n, "/", $p)) };
|}

let rollup_q11 =
  paths_fn
  ^ {|for $b in //book
for $c in local:paths($b/categories/*)
group by $c into $category
nest $b/price into $prices
return <result><category>{$category}</category><avg-price>{avg($prices)}</avg-price></result>|}

let cube_fn =
  {|declare function local:cube($dims as item()*) as item()* {
  if (empty($dims)) then <dims/>
  else
    let $rest := local:cube(subsequence($dims, 2))
    return ($rest, for $g in $rest return <dims>{$dims[1], $g/*}</dims>) };
|}

let cube_q12 =
  cube_fn
  ^ {|for $b in //book
let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
for $d in local:cube(($pub, $b/year))
group by $d into $dims
nest $b/price into $prices
return <result>{$dims}<avg-price>{avg($prices)}</avg-price></result>|}
