(* Benchmark harness reproducing the paper's evaluation (Section 6) and
   the ablations listed in DESIGN.md §4.

   Usage:
     dune exec bench/main.exe                  — all experiments (default sizes)
     dune exec bench/main.exe -- table1        — print the Table 1 templates
     dune exec bench/main.exe -- figure6       — the speedup chart data
     dune exec bench/main.exe -- ablation-rewrite   — naive vs rewritten vs explicit
     dune exec bench/main.exe -- ablation-equality  — hash vs using-function grouping
     dune exec bench/main.exe -- ablation-window    — Q8: nests vs plain vs window clause
     dune exec bench/main.exe -- ablation-olap      — Q11 rollup / Q12 cube scaling
     dune exec bench/main.exe -- ablation-counts    — the §3.1 count optimization
     dune exec bench/main.exe -- ablation-index     — element-name index (off in §6)
     dune exec bench/main.exe -- ablation-algebra   — plan-layer overhead
     dune exec bench/main.exe -- ablation-strategy  — hash vs sort vs fused-sort grouping
     dune exec bench/main.exe -- ablation-parallel  — domain-pool degree 1/2/4 per strategy
     dune exec bench/main.exe -- ablation-batch     — item-at-a-time vs batched + key dictionary
     dune exec bench/main.exe -- ablation-governor  — resource-governor tick overhead
     dune exec bench/main.exe -- ablation-spill     — in-memory vs spill-to-disk grouping
     dune exec bench/main.exe -- ablation-stream    — materialized parse vs streaming scan
     dune exec bench/main.exe -- ablation-server    — cold pipeline vs warm daemon caches
     dune exec bench/main.exe -- ablation-agg       — eager aggregation: folded vs materialized nests
     dune exec bench/main.exe -- bechamel      — bechamel OLS run of the six pairs
     dune exec bench/main.exe -- figure6 --full    — larger sweep (slow)
     dune exec bench/main.exe -- ... --json results.json  — also dump samples as JSON

   Absolute numbers are engine- and machine-specific; the paper's claim
   is the *shape*: t(Q)/t(Qgb) grows with the number of groups because
   the implicit-grouping query rescans the input once per group. *)

let lineitems_default = 8_000

let parse_flags () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec go cmds full json = function
    | [] -> (List.rev cmds, full, json)
    | "--full" :: rest -> go cmds true json rest
    | "--json" :: path :: rest -> go cmds full (Some path) rest
    | a :: rest when String.length a > 1 && a.[0] = '-' -> go cmds full json rest
    | a :: rest -> go (a :: cmds) full json rest
  in
  go [] false None args

(* --- machine-readable samples (--json FILE) ----------------------------- *)

type sample = {
  s_bench : string;
  s_query : string;
  s_size : int;
  s_groups : int;
  s_strategy : string;
  s_parallel : int;
  s_batch : int;
  s_cores : int;
  s_spilled : int;
  s_spill_files : int;
  s_repartitions : int;
  s_peak : int;
  s_ms : float;
}

let samples : sample list ref = ref []

(* Every row records the host's core count so speedup rows from
   single-core CI runners can be told apart from real multicore data,
   and the executor batch size the measurement ran under. *)
let record ~bench ~query ~size ~groups ~strategy ~parallel ?batch
    ?(spilled = 0) ?(spill_files = 0) ?(repartitions = 0) ?(peak = 0) ~ms () =
  let batch = match batch with Some b -> b | None -> Xq.Batch.size () in
  samples :=
    { s_bench = bench; s_query = query; s_size = size; s_groups = groups;
      s_strategy = strategy; s_parallel = parallel; s_batch = batch;
      s_cores = Domain.recommended_domain_count (); s_spilled = spilled;
      s_spill_files = spill_files; s_repartitions = repartitions;
      s_peak = peak; s_ms = ms }
    :: !samples

(* All recorded strings are plain ASCII identifiers, so OCaml's %S
   escaping is valid JSON here. *)
let write_json path =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "  {\"bench\": %S, \"query\": %S, \"size\": %d, \"groups\": %d, \
         \"strategy\": %S, \"parallel\": %d, \"batch\": %d, \"cores\": %d, \
         \"spilled_bytes\": %d, \"spill_files\": %d, \"repartitions\": %d, \
         \"peak_mem_bytes\": %d, \"ms\": %.3f}"
        s.s_bench s.s_query s.s_size s.s_groups s.s_strategy s.s_parallel
        s.s_batch s.s_cores s.s_spilled s.s_spill_files s.s_repartitions
        s.s_peak s.s_ms)
    (List.rev !samples);
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "wrote %d sample(s) to %s\n%!" (List.length !samples) path

let strategy_name = function
  | Xq.Algebra.Optimizer.Hash -> "hash"
  | Xq.Algebra.Optimizer.Sort -> "sort"
  | Xq.Algebra.Optimizer.Auto -> "auto"

let orders_doc ?(tax_card = Xq_workload.Orders.default.Xq_workload.Orders.tax_card)
    lineitems =
  let p =
    Xq_workload.Orders.(
      with_lineitems lineitems { default with tax_card })
  in
  Xq_workload.Orders.generate p

let count_groups doc query =
  List.length (Xq.run doc query)

(* --- Table 1: the two query templates --------------------------------- *)

let table1 () =
  Timing.header "Table 1: query templates (as executed by this engine)";
  Printf.printf "--- With explicit group by (Qgb), one element ---\n%s\n\n"
    (Queries.qgb_one "a");
  Printf.printf "--- Without explicit group by (Q), one element ---\n%s\n\n"
    (Queries.q_one "a");
  Printf.printf "--- With explicit group by (Qgb), two elements ---\n%s\n\n"
    (Queries.qgb_two "a" "b");
  Printf.printf "--- Without explicit group by (Q), two elements ---\n%s\n"
    (Queries.q_two "a" "b");
  (* sanity: both versions parse, check and agree on a small instance *)
  let doc = orders_doc 200 in
  List.iter
    (fun (e : Queries.experiment) ->
      let ngb = count_groups doc e.qgb and n = count_groups doc e.q in
      Printf.printf "sanity %s (%s): %d groups (both versions: %b)\n%!" e.label
        e.keys ngb (ngb = n))
    Queries.experiments

(* --- Figure (Section 6): speedup vs number of groups ------------------- *)

let figure6 ~full () =
  let sizes = if full then [ 8_000; 16_000; 32_000 ] else [ lineitems_default ] in
  Timing.header
    "Figure (Section 6): t(Q) / t(Qgb) — implicit vs explicit grouping";
  Printf.printf
    "%-4s %-26s %10s %10s %12s %12s %8s\n%!"
    "qry" "grouping element(s)" "lineitems" "groups" "t(Q)" "t(Qgb)" "ratio";
  let points = ref [] in
  List.iter
    (fun lineitems ->
      let doc = orders_doc lineitems in
      List.iter
        (fun (e : Queries.experiment) ->
          let groups = count_groups doc e.qgb in
          let t_gb = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc e.qgb) in
          let t_q = Timing.measure_ms ~runs:2 (fun () -> Xq.run doc e.q) in
          let ratio = t_q /. t_gb in
          points := (groups, ratio) :: !points;
          Printf.printf "%-4s %-26s %10d %10d %12s %12s %7.1fx\n%!" e.label
            e.keys lineitems groups (Timing.fmt_ms t_q) (Timing.fmt_ms t_gb)
            ratio)
        Queries.experiments)
    sizes;
  (* extra X-axis points: raise the tax cardinality so the pair queries
     produce more groups, as in the right-hand side of the paper's chart *)
  let extra_cards = if full then [ 25; 50; 100 ] else [ 25; 50 ] in
  List.iter
    (fun tax_card ->
      let lineitems = if full then lineitems_default else 4_000 in
      let doc = orders_doc ~tax_card lineitems in
      let e = List.nth Queries.experiments 5 (* (shipinstruct, tax) *) in
      let groups = count_groups doc e.qgb in
      let t_gb = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc e.qgb) in
      let t_q = Timing.measure_ms ~runs:2 (fun () -> Xq.run doc e.q) in
      let ratio = t_q /. t_gb in
      points := (groups, ratio) :: !points;
      Printf.printf "%-4s %-26s %10d %10d %12s %12s %7.1fx\n%!" "Q5+"
        (Printf.sprintf "(shipinstruct, tax=%d)" tax_card)
        lineitems groups (Timing.fmt_ms t_q) (Timing.fmt_ms t_gb) ratio)
    extra_cards;
  let sorted = List.sort compare !points in
  Printf.printf
    "\nshape check (paper: ratio deteriorates as groups increase):\n";
  List.iter
    (fun (g, r) -> Printf.printf "  groups=%4d  ratio=%6.1fx\n" g r)
    sorted;
  let grows =
    match sorted, List.rev sorted with
    | (_, first) :: _, (_, last) :: _ -> last > first
    | _ -> false
  in
  Printf.printf "ratio grows with group count: %b\n%!" grows

(* --- Ablation A: the rewrite pass --------------------------------------- *)

let ablation_rewrite () =
  Timing.header
    "Ablation A: naive implicit vs auto-rewritten vs hand-written explicit";
  let doc = orders_doc lineitems_default in
  List.iter
    (fun (e : Queries.experiment) ->
      let t_naive = Timing.measure_ms ~runs:2 (fun () -> Xq.run doc e.q) in
      let t_rw = Timing.measure_ms ~runs:3 (fun () -> Xq.run_rewritten doc e.q) in
      let t_gb = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc e.qgb) in
      Printf.printf
        "%-4s %-26s naive=%10s rewritten=%10s explicit=%10s (rewrite speedup %.1fx)\n%!"
        e.label e.keys (Timing.fmt_ms t_naive) (Timing.fmt_ms t_rw)
        (Timing.fmt_ms t_gb) (t_naive /. t_rw))
    Queries.experiments

(* --- Ablation B: grouping equality --------------------------------------- *)

let ablation_equality () =
  Timing.header
    "Ablation B: default deep-equal (hash) vs user set-equal (nested loop)";
  List.iter
    (fun books ->
      let doc =
        Xq_workload.Bibliography.(
          generate { default with books; author_pool = 12; max_authors = 2 })
      in
      let t_hash =
        Timing.measure_ms ~runs:3 (fun () -> Xq.run doc Queries.group_by_authors_default)
      in
      let t_scan =
        Timing.measure_ms ~runs:2 (fun () ->
            Xq.run doc Queries.group_by_authors_set_equal)
      in
      let groups_hash = count_groups doc Queries.group_by_authors_default in
      let groups_scan = count_groups doc Queries.group_by_authors_set_equal in
      Printf.printf
        "books=%5d  hash(deep-equal)=%10s (%d groups)   scan(set-equal)=%10s (%d groups)  slowdown %.1fx\n%!"
        books (Timing.fmt_ms t_hash) groups_hash (Timing.fmt_ms t_scan)
        groups_scan (t_scan /. t_hash))
    [ 250; 500; 1000 ]

(* --- Ablation C: moving windows ------------------------------------------- *)

let ablation_window () =
  Timing.header
    "Ablation C: Q8 moving window — nest…order by vs plain XQuery 1.0";
  List.iter
    (fun sales ->
      let doc = Xq_workload.Sales.(generate { default with sales }) in
      let t_nest =
        Timing.measure_ms ~runs:3 (fun () -> Xq.run doc Queries.window_with_nest_order)
      in
      let t_plain =
        Timing.measure_ms ~runs:2 (fun () -> Xq.run doc Queries.window_plain_xquery)
      in
      let t_wclause =
        Timing.measure_ms ~runs:3 (fun () ->
            Xq.run doc Queries.window_with_window_clause)
      in
      Printf.printf
        "sales=%5d  nest-order-by=%10s   plain=%10s (%.1fx)   window-clause=%10s\n%!"
        sales (Timing.fmt_ms t_nest) (Timing.fmt_ms t_plain)
        (t_plain /. t_nest) (Timing.fmt_ms t_wclause))
    [ 200; 400; 800 ]

(* --- Ablation D: membership-function OLAP ----------------------------------- *)

let ablation_olap () =
  Timing.header "Ablation D: Section 5 rollup (Q11) and datacube (Q12)";
  List.iter
    (fun books ->
      let doc =
        Xq_workload.Bibliography.(
          generate { default with books; with_categories = true })
      in
      let groups11 = count_groups doc Queries.rollup_q11 in
      let t11 = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc Queries.rollup_q11) in
      let groups12 = count_groups doc Queries.cube_q12 in
      let t12 = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc Queries.cube_q12) in
      Printf.printf
        "books=%5d  Q11 rollup: %10s (%3d categories)   Q12 cube: %10s (%3d groupings)\n%!"
        books (Timing.fmt_ms t11) groups11 (Timing.fmt_ms t12) groups12)
    [ 200; 400; 800 ]

(* --- Ablation E: the count optimization (Section 3.1) ----------------------- *)

let ablation_counts () =
  Timing.header
    "Ablation E: count optimization — nest $litem vs nest literal 1";
  List.iter
    (fun lineitems ->
      let doc = orders_doc lineitems in
      let query = Xq.parse (Queries.qgb_one "shipmode") in
      Xq.check query;
      let optimized = Xq.Rewrite.Rewrite.optimize_counts_query query in
      let t_plain =
        Timing.measure_ms ~runs:3 (fun () -> Xq.run_query ~check:false doc query)
      in
      let t_opt =
        Timing.measure_ms ~runs:3 (fun () ->
            Xq.run_query ~check:false doc optimized)
      in
      Printf.printf
        "lineitems=%6d  nest $litem=%10s   nest 1=%10s   speedup %.2fx\n%!"
        lineitems (Timing.fmt_ms t_plain) (Timing.fmt_ms t_opt)
        (t_plain /. t_opt))
    [ 8_000; 16_000; 32_000 ]

(* --- Ablation F: element-name indexes ---------------------------------------- *)

let ablation_index () =
  Timing.header
    "Ablation F: //name via element-name index (paper: 'no indexes were used')";
  let doc = orders_doc lineitems_default in
  List.iter
    (fun (e : Queries.experiment) ->
      let t_scan = Timing.measure_ms ~runs:3 (fun () -> Xq.run doc e.qgb) in
      let t_idx =
        Timing.measure_ms ~runs:3 (fun () -> Xq.run ~use_index:true doc e.qgb)
      in
      let tq_scan = Timing.measure_ms ~runs:2 (fun () -> Xq.run doc e.q) in
      let tq_idx =
        Timing.measure_ms ~runs:2 (fun () -> Xq.run ~use_index:true doc e.q)
      in
      Printf.printf
        "%-4s Qgb: scan=%9s indexed=%9s (%.1fx)   Q: scan=%9s indexed=%9s (%.1fx)\n%!"
        e.label (Timing.fmt_ms t_scan) (Timing.fmt_ms t_idx) (t_scan /. t_idx)
        (Timing.fmt_ms tq_scan) (Timing.fmt_ms tq_idx) (tq_scan /. tq_idx))
    [ List.hd Queries.experiments; List.nth Queries.experiments 3 ]

(* --- Ablation G: explicit algebra vs direct evaluation ----------------------- *)

let ablation_algebra () =
  Timing.header
    "Ablation G: plan-compiled execution (Plan/Exec) vs direct evaluation";
  let doc = orders_doc lineitems_default in
  List.iter
    (fun (e : Queries.experiment) ->
      let query = Xq.parse e.qgb in
      Xq.check query;
      let t_direct =
        Timing.measure_ms ~runs:3 (fun () -> Xq.run_query ~check:false doc query)
      in
      let t_algebra =
        Timing.measure_ms ~runs:3 (fun () ->
            Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      Printf.printf "%-4s %-26s direct=%10s algebra=%10s (overhead %.2fx)\n%!"
        e.label e.keys (Timing.fmt_ms t_direct) (Timing.fmt_ms t_algebra)
        (t_algebra /. t_direct))
    Queries.experiments

(* --- Ablation H: grouping strategy ------------------------------------------- *)

let ablation_strategy () =
  Timing.header
    "Ablation H: hash vs sort vs auto (fused-sort) grouping across group counts";
  (* The group-by feeds an order-by on its key, so `auto` can fuse the
     sort into the grouping operator; tax cardinality controls the
     number of groups. *)
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  List.iter
    (fun tax_card ->
      let doc = orders_doc ~tax_card 4_000 in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      let run strategy =
        let ms =
          Timing.measure_ms ~runs:3 (fun () ->
              Xq.Algebra.Exec.eval_query ~check:false ~strategy
                ~context_node:doc query)
        in
        record ~bench:"ablation-strategy" ~query:"tax-group-order" ~size:4_000
          ~groups ~strategy:(strategy_name strategy) ~parallel:1 ~ms ();
        ms
      in
      let t_hash = run Xq.Algebra.Optimizer.Hash in
      let t_sort = run Xq.Algebra.Optimizer.Sort in
      let t_auto = run Xq.Algebra.Optimizer.Auto in
      Printf.printf
        "tax_card=%4d groups=%4d  hash+sort=%10s  sort-group=%10s  \
         auto(fused)=%10s  sort/hash %.2fx  fused/hash %.2fx\n%!"
        tax_card groups (Timing.fmt_ms t_hash) (Timing.fmt_ms t_sort)
        (Timing.fmt_ms t_auto) (t_sort /. t_hash) (t_auto /. t_hash))
    [ 5; 25; 100; 400 ]

(* --- Ablation I: multicore parallel grouping ---------------------------------- *)

let ablation_parallel ~full () =
  Timing.header
    "Ablation I: domain-pool degree 1/2/4 (parallel grouping + sort), per \
     strategy";
  Printf.printf
    "(speedups depend on available cores: nproc=%d on this machine)\n%!"
    (Domain.recommended_domain_count ());
  if Domain.recommended_domain_count () <= 1 then
    Printf.printf
      "WARNING: this host reports a single core — parallel degrees > 1 \
       measure pool overhead only, expect no speedup\n%!";
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  let degrees = [ 1; 2; 4 ] in
  let workloads =
    if full then [ (100, 8_000); (400, 16_000); (400, 32_000) ]
    else [ (100, 8_000); (400, 16_000) ]
  in
  List.iter
    (fun (tax_card, lineitems) ->
      let doc = orders_doc ~tax_card lineitems in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      List.iter
        (fun strategy ->
          let times =
            List.map
              (fun parallel ->
                let ms =
                  Timing.measure_ms ~runs:3 (fun () ->
                      Xq.Algebra.Exec.eval_query ~check:false ~strategy
                        ~parallel ~context_node:doc query)
                in
                record ~bench:"ablation-parallel" ~query:"tax-group-order"
                  ~size:lineitems ~groups ~strategy:(strategy_name strategy)
                  ~parallel ~ms ();
                (parallel, ms))
              degrees
          in
          let base = List.assoc 1 times in
          Printf.printf "tax_card=%4d n=%6d groups=%4d %-5s  %s\n%!" tax_card
            lineitems groups (strategy_name strategy)
            (String.concat "  "
               (List.map
                  (fun (p, ms) ->
                    Printf.sprintf "p%d=%s (%.2fx)" p (Timing.fmt_ms ms)
                      (base /. ms))
                  times)))
        [ Xq.Algebra.Optimizer.Hash; Xq.Algebra.Optimizer.Sort;
          Xq.Algebra.Optimizer.Auto ])
    workloads

(* --- Ablation M: batched execution ------------------------------------- *)

(* Item-at-a-time (batch size 1, dictionary interning and presize
   feedback disabled — the executor as it was before batching) vs the
   batched defaults, on the same grouping query the strategy ablation
   uses. Output is byte-identical; only the wall clock moves. *)
let ablation_batch ~full () =
  Timing.header
    "Ablation M: item-at-a-time (batch=1, no key dictionary) vs batched \
     execution with dictionary-encoded grouping keys";
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  let sizes = if full then [ 8_000; 16_000; 32_000 ] else [ 8_000; 16_000 ] in
  let configure = function
    | `Item ->
      Xq.Batch.set_size (Some 1);
      Xq.Engine.Key.set_interning_available false;
      Xq.Algebra.Optimizer.set_estimate_feedback false
    | `Batched ->
      Xq.Batch.set_size None;
      Xq.Engine.Key.set_interning_available true;
      Xq.Algebra.Optimizer.set_estimate_feedback true
  in
  Fun.protect
    ~finally:(fun () -> configure `Batched)
    (fun () ->
      List.iter
        (fun (tax_card, lineitems) ->
          let doc = orders_doc ~tax_card lineitems in
          let groups =
            Xq.length
              (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
          in
          let measure mode label =
            configure mode;
            let ms =
              Timing.measure_ms ~runs:3 (fun () ->
                  Xq.Algebra.Exec.eval_query ~check:false
                    ~strategy:Xq.Algebra.Optimizer.Hash ~context_node:doc
                    query)
            in
            (* record's batch default reads the size [configure] set *)
            record ~bench:"ablation-batch" ~query:"tax-group-order"
              ~size:lineitems ~groups ~strategy:label ~parallel:1 ~ms ();
            ms
          in
          let t_item = measure `Item "hash-item" in
          let t_batched = measure `Batched "hash-batched" in
          Printf.printf
            "tax_card=%4d n=%6d groups=%4d  item-at-a-time=%10s  \
             batched(%d)=%10s  speedup %.2fx\n%!"
            tax_card lineitems groups (Timing.fmt_ms t_item)
            (Xq.Batch.size ()) (Timing.fmt_ms t_batched)
            (t_item /. t_batched))
        (List.map (fun n -> (100, n)) sizes))

(* --- Ablation J: resource-governor overhead ------------------------------------ *)

let ablation_governor () =
  Timing.header
    "Ablation J: governor tick overhead — ungoverned vs armed with \
     non-tripping budgets";
  (* Worst-case-for-the-governor configuration: every budget is set (so
     the slow check computes the deadline AND the Gc-delta memory
     estimate) but none can trip, on the same grouping query the
     strategy ablation uses. The claim is <2% overhead. *)
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  let armed f =
    let g =
      Xq.Governor.create ~timeout_ms:3_600_000 ~max_groups:max_int
        ~max_mem_mb:1_048_576 ()
    in
    Xq.Governor.with_governor g f
  in
  let overheads = ref [] in
  List.iter
    (fun (tax_card, lineitems) ->
      let doc = orders_doc ~tax_card lineitems in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      List.iter
        (fun strategy ->
          let run () =
            ignore
              (Xq.Algebra.Exec.eval_query ~check:false ~strategy
                 ~context_node:doc query)
          in
          (* A 2% effect drowns in machine noise if the variants are
             timed in separate blocks, so measure adjacent pairs — one
             ungoverned, one armed, each from a freshly majored heap,
             alternating which goes first — and take the median of the
             paired differences: adjacent runs share load conditions,
             so interference cancels in the difference. Compacting
             first discards heap bloat left by earlier ablations, which
             would otherwise inflate every GC slice measured here. *)
          Gc.compact ();
          run ();
          armed run;
          let runs = 21 in
          let offs = ref [] and diffs = ref [] in
          for i = 1 to runs do
            let sample f =
              Gc.major ();
              snd (Timing.time_once f)
            in
            let off, on =
              if i land 1 = 0 then
                let off = sample run in
                (off, sample (fun () -> armed run))
              else
                let on = sample (fun () -> armed run) in
                (sample run, on)
            in
            offs := off :: !offs;
            diffs := (on -. off) :: !diffs
          done;
          let median l = List.nth (List.sort compare l) (runs / 2) in
          let t_off = median !offs in
          let t_on = t_off +. median !diffs in
          record ~bench:"ablation-governor" ~query:"governor-off"
            ~size:lineitems ~groups ~strategy:(strategy_name strategy)
            ~parallel:1 ~ms:t_off ();
          record ~bench:"ablation-governor" ~query:"governor-on"
            ~size:lineitems ~groups ~strategy:(strategy_name strategy)
            ~parallel:1 ~ms:t_on ();
          let pct = (t_on -. t_off) /. t_off *. 100. in
          overheads := pct :: !overheads;
          Printf.printf
            "tax_card=%4d n=%6d groups=%4d %-5s  off=%10s  on=%10s  \
             overhead %+.2f%%\n%!"
            tax_card lineitems groups (strategy_name strategy)
            (Timing.fmt_ms t_off) (Timing.fmt_ms t_on) pct)
        [ Xq.Algebra.Optimizer.Hash; Xq.Algebra.Optimizer.Sort;
          Xq.Algebra.Optimizer.Auto ])
    [ (100, 8_000); (400, 16_000) ];
  let mean =
    List.fold_left ( +. ) 0. !overheads
    /. float_of_int (List.length !overheads)
  in
  Printf.printf "mean overhead across cells: %+.2f%% (claim: < 2%%)\n%!" mean

(* --- Ablation K: spill-to-disk external grouping -------------------------------- *)

let ablation_spill () =
  Timing.header
    "Ablation K: external grouping — in-memory vs spilling at a tight \
     watermark (byte-identical output, bounded memory)";
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  List.iter
    (fun (tax_card, lineitems) ->
      let doc = orders_doc ~tax_card lineitems in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      List.iter
        (fun strategy ->
          List.iter
            (fun parallel ->
              let t_mem =
                Timing.measure_ms ~runs:3 (fun () ->
                    Xq.Algebra.Exec.eval_query ~check:false ~strategy ~parallel
                      ~context_node:doc query)
              in
              record ~bench:"ablation-spill" ~query:"tax-group-order-mem"
                ~size:lineitems ~groups ~strategy:(strategy_name strategy)
                ~parallel ~ms:t_mem ();
              (* A fresh governor per run so the recorded spill counters
                 are one run's, not the sum over warm-up + samples. *)
              let last_gov = ref None in
              let t_spill =
                Timing.measure_ms ~runs:3 (fun () ->
                    let gov =
                      Xq.Governor.create
                        ~spill_watermark_bytes:(256 * 1024) ()
                    in
                    last_gov := Some gov;
                    Xq.Governor.with_governor gov (fun () ->
                        Xq.Algebra.Exec.eval_query ~check:false ~strategy
                          ~parallel ~context_node:doc query))
              in
              let s = Xq.Governor.stats (Option.get !last_gov) in
              record ~bench:"ablation-spill" ~query:"tax-group-order-spill"
                ~size:lineitems ~groups ~strategy:(strategy_name strategy)
                ~parallel ~spilled:s.Xq.Governor.s_spilled_bytes
                ~spill_files:s.Xq.Governor.s_spill_files
                ~repartitions:s.Xq.Governor.s_repartitions ~ms:t_spill ();
              Printf.printf
                "tax_card=%4d n=%6d groups=%4d %-5s p%d  mem=%10s  \
                 spill=%10s (%.2fx slower, %dB in %d file(s), %d \
                 repartition(s))\n%!"
                tax_card lineitems groups (strategy_name strategy) parallel
                (Timing.fmt_ms t_mem) (Timing.fmt_ms t_spill)
                (t_spill /. t_mem) s.Xq.Governor.s_spilled_bytes
                s.Xq.Governor.s_spill_files s.Xq.Governor.s_repartitions)
            [ 1; 2 ])
        [ Xq.Algebra.Optimizer.Hash; Xq.Algebra.Optimizer.Sort ])
    [ (100, 8_000); (400, 16_000) ]

(* --- Ablation L: query server — resident caches vs cold invocations ---------- *)

(* What the server amortizes is everything before evaluation: reading
   and parsing the document, parsing/checking the query. The cold
   column pays that per request (a fresh CLI invocation, minus process
   startup — so the measured speedup is a floor); the warm column asks
   a resident [Server_core.t] whose doc store and plan cache were
   primed by one prior request. Output is byte-identical either way —
   both columns run the same [Pipeline]. *)
let ablation_server () =
  Timing.header
    "Ablation L: query server — cold per-invocation pipeline (read + parse \
     document, compile, evaluate) vs warm daemon requests served from the \
     plan cache and resident document store";
  let module Server = Xq_server.Server_core in
  let module Protocol = Xq_server.Protocol in
  let queries =
    [ ("count-orders", "<total>{count(/orders/order)}</total>");
      ( "tax-group-order",
        "for $litem in //order/lineitem\n\
         group by $litem/tax into $a\n\
         nest $litem into $items\n\
         order by $a\n\
         return <r>{$a, count($items)}</r>" ) ]
  in
  List.iter
    (fun lineitems ->
      let doc = orders_doc lineitems in
      let path = Filename.temp_file "xq-bench-orders" ".xml" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out path in
          output_string oc (Xq.to_xml (Xq_xdm.Xseq.of_nodes [ doc ]));
          close_out oc;
          let server = Server.create () in
          List.iter
            (fun (label, q_src) ->
              let groups = count_groups doc q_src in
              let t_cold =
                Timing.measure_ms ~runs:5 (fun () ->
                    let compiled = Xq.Pipeline.compile q_src in
                    ignore
                      (Xq.Pipeline.run ~compiled
                         ~load_doc:(fun () -> Xq.load_file path)
                         ()))
              in
              let request =
                Protocol.Run
                  {
                    Protocol.rq_source = q_src;
                    rq_doc = Protocol.Doc_path path;
                    rq_knobs = Xq.Pipeline.default_knobs;
                    rq_indent = false;
                  }
              in
              let serve () =
                match Server.handle server request with
                | Protocol.Payload _ -> ()
                | Protocol.Error { message; _ } ->
                  failwith ("ablation-server: " ^ message)
              in
              (* prime the caches: the first request compiles and parses *)
              serve ();
              let t_warm = Timing.measure_ms ~runs:5 serve in
              record ~bench:"ablation-server" ~query:(label ^ "-cold")
                ~size:lineitems ~groups ~strategy:"direct" ~parallel:1
                ~ms:t_cold ();
              record ~bench:"ablation-server" ~query:(label ^ "-warm")
                ~size:lineitems ~groups ~strategy:"direct" ~parallel:1
                ~ms:t_warm ();
              Printf.printf
                "n=%6d %-18s  cold=%10s  warm=%10s  (%.1fx faster resident)\n%!"
                lineitems label (Timing.fmt_ms t_cold) (Timing.fmt_ms t_warm)
                (t_cold /. t_warm))
            queries;
          let plans = Xq_server.Plan_cache.stats (Server.plans server) in
          let docs = Xq_server.Doc_store.stats (Server.docs server) in
          Printf.printf
            "        caches: plan hits=%d misses=%d — doc hits=%d misses=%d\n%!"
            plans.Xq_server.Plan_cache.p_hits
            plans.Xq_server.Plan_cache.p_misses
            docs.Xq_server.Doc_store.d_hits docs.Xq_server.Doc_store.d_misses))
    [ 4_000; 8_000 ]

(* --- Ablation M: streaming ingestion — materialized parse vs projected scan --- *)

(* Both columns pay for ingestion from raw bytes: the materialized
   column parses the whole document and runs the plan executor over the
   tree; the streamed column pulls only the projected subtrees through
   the streaming scan into the same executor, with the spill watermark
   armed so retained group state detaches to disk. Outputs are
   byte-identical; the peak column is the governor's memory estimate
   (counted bytes + Gc-heap delta), which is where streaming pays off. *)

let ablation_stream () =
  Timing.header
    "Ablation M: streaming ingestion — materialized parse vs projected \
     streaming scan (byte-identical output, bounded memory)";
  let q_src =
    {|for $litem in //order/lineitem
group by $litem/tax into $a
nest $litem into $items
order by $a
return <r>{$a, count($items)}</r>|}
  in
  let query = Xq.parse q_src in
  Xq.check query;
  let path, var, positional =
    match Xq.Rewrite.Projection.analyze query with
    | Xq.Rewrite.Projection.Streamable { path; var; positional } ->
      (path, var, positional)
    | Xq.Rewrite.Projection.Materialize reason ->
      failwith ("ablation-stream query is not streamable: " ^ reason)
  in
  let watermark = 256 * 1024 in
  List.iter
    (fun (tax_card, lineitems) ->
      let doc = orders_doc ~tax_card lineitems in
      let xml = Xq.Xml.Serialize.node doc in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc query)
      in
      List.iter
        (fun strategy ->
          let gov_mat = ref None in
          let t_mat =
            Timing.measure_ms ~runs:3 (fun () ->
                let gov =
                  Xq.Governor.create ~spill_watermark_bytes:watermark ()
                in
                gov_mat := Some gov;
                Xq.Governor.with_governor gov (fun () ->
                    let d = Xq.Xml.Xml_parse.parse xml in
                    Xq.Algebra.Exec.eval_query ~check:false ~strategy
                      ~context_node:d query))
          in
          let sm = Xq.Governor.stats (Option.get !gov_mat) in
          record ~bench:"ablation-stream" ~query:"tax-group-order-mat"
            ~size:lineitems ~groups ~strategy:(strategy_name strategy)
            ~parallel:1 ~spilled:sm.Xq.Governor.s_spilled_bytes
            ~peak:sm.Xq.Governor.s_peak_mem_bytes ~ms:t_mat ();
          let gov_str = ref None in
          let t_stream =
            Timing.measure_ms ~runs:3 (fun () ->
                let gov =
                  Xq.Governor.create ~spill_watermark_bytes:watermark ()
                in
                gov_str := Some gov;
                Xq.Governor.with_governor gov (fun () ->
                    Xq.Algebra.Exec.eval_query_stream ~check:false ~strategy
                      ~source:(`String xml) ~path ~var ~positional query))
          in
          let ss = Xq.Governor.stats (Option.get !gov_str) in
          record ~bench:"ablation-stream" ~query:"tax-group-order-stream"
            ~size:lineitems ~groups ~strategy:(strategy_name strategy)
            ~parallel:1 ~spilled:ss.Xq.Governor.s_spilled_bytes
            ~peak:ss.Xq.Governor.s_peak_mem_bytes ~ms:t_stream ();
          Printf.printf
            "tax_card=%4d n=%6d groups=%4d %-5s  mat=%10s peak=%9d  \
             stream=%10s peak=%9d (%.2fx, %dB spilled)\n%!"
            tax_card lineitems groups (strategy_name strategy)
            (Timing.fmt_ms t_mat) sm.Xq.Governor.s_peak_mem_bytes
            (Timing.fmt_ms t_stream) ss.Xq.Governor.s_peak_mem_bytes
            (t_stream /. t_mat) ss.Xq.Governor.s_spilled_bytes)
        [ Xq.Algebra.Optimizer.Hash; Xq.Algebra.Optimizer.Sort ])
    [ (100, 8_000); (400, 16_000) ]

(* --- Ablation N: eager aggregation into the group build ---------------------- *)

(* The nest variable in [Queries.qgb_agg] is consumed only by
   count/sum/avg, so the optimizer replaces its member lists with
   per-group accumulators. Folded vs materialized is the same plan with
   the pushdown switch on/off; the Q column is the paper's implicit
   form of the same aggregation for scale. The spilled variant is where
   the O(groups)-not-O(items) story shows: accumulator frames are a few
   dozen bytes per group where member frames carry every item. *)
let ablation_agg () =
  Timing.header
    "Ablation N: eager aggregation — folded accumulators vs materialized \
     nests (byte-identical output), in-memory, spilled and streamed";
  let qgb = Xq.parse (Queries.qgb_agg "tax") in
  let q = Xq.parse (Queries.q_agg "tax") in
  Xq.check qgb;
  Xq.check q;
  let with_pushdown enabled f =
    let saved = Xq.Algebra.Optimizer.agg_pushdown_on () in
    Xq.Algebra.Optimizer.set_agg_pushdown enabled;
    Fun.protect
      ~finally:(fun () -> Xq.Algebra.Optimizer.set_agg_pushdown saved)
      f
  in
  let watermark = 256 * 1024 in
  let strategy = Xq.Algebra.Optimizer.Hash in
  List.iter
    (fun (tax_card, lineitems) ->
      let doc = orders_doc ~tax_card lineitems in
      let xml = Xq.Xml.Serialize.node doc in
      let groups =
        Xq.length
          (Xq.Algebra.Exec.eval_query ~check:false ~context_node:doc qgb)
      in
      (* in-memory and spilled, folded vs materialized *)
      let timed label enabled ~spill =
        let last_gov = ref None in
        let ms =
          Timing.measure_ms ~runs:3 (fun () ->
              with_pushdown enabled (fun () ->
                  if spill then begin
                    let gov =
                      Xq.Governor.create ~spill_watermark_bytes:watermark ()
                    in
                    last_gov := Some gov;
                    Xq.Governor.with_governor gov (fun () ->
                        Xq.Algebra.Exec.eval_query ~check:false ~strategy
                          ~context_node:doc qgb)
                  end
                  else
                    Xq.Algebra.Exec.eval_query ~check:false ~strategy
                      ~context_node:doc qgb))
        in
        let spilled, files =
          match !last_gov with
          | Some g ->
            let s = Xq.Governor.stats g in
            (s.Xq.Governor.s_spilled_bytes, s.Xq.Governor.s_spill_files)
          | None -> (0, 0)
        in
        record ~bench:"ablation-agg" ~query:label ~size:lineitems ~groups
          ~strategy:(strategy_name strategy) ~parallel:1 ~spilled
          ~spill_files:files ~ms ();
        (ms, spilled)
      in
      let t_folded, _ = timed "qgb-agg-folded" true ~spill:false in
      let t_mat, _ = timed "qgb-agg-materialized" false ~spill:false in
      let t_folded_sp, b_folded = timed "qgb-agg-folded-spill" true ~spill:true in
      let t_mat_sp, b_mat = timed "qgb-agg-materialized-spill" false ~spill:true in
      (* the implicit form for scale: same aggregation, no group by *)
      let t_q =
        Timing.measure_ms ~runs:3 (fun () ->
            Xq.Algebra.Exec.eval_query ~check:false ~strategy ~context_node:doc
              q)
      in
      record ~bench:"ablation-agg" ~query:"q-implicit" ~size:lineitems ~groups
        ~strategy:(strategy_name strategy) ~parallel:1 ~ms:t_q ();
      Printf.printf
        "tax_card=%4d n=%6d groups=%4d  folded=%10s  materialized=%10s \
         (%.2fx)  spilled: folded=%10s/%dB  materialized=%10s/%dB  \
         Q(implicit)=%10s\n%!"
        tax_card lineitems groups (Timing.fmt_ms t_folded)
        (Timing.fmt_ms t_mat) (t_mat /. t_folded)
        (Timing.fmt_ms t_folded_sp) b_folded (Timing.fmt_ms t_mat_sp) b_mat
        (Timing.fmt_ms t_q);
      (* streamed variant, when the projection verdict allows *)
      match Xq.Rewrite.Projection.analyze qgb with
      | Xq.Rewrite.Projection.Materialize reason ->
        Printf.printf "  (streamed variant skipped: %s)\n%!" reason
      | Xq.Rewrite.Projection.Streamable { path; var; positional } ->
        let streamed label enabled =
          let last_gov = ref None in
          let ms =
            Timing.measure_ms ~runs:3 (fun () ->
                with_pushdown enabled (fun () ->
                    let gov =
                      Xq.Governor.create ~spill_watermark_bytes:watermark ()
                    in
                    last_gov := Some gov;
                    Xq.Governor.with_governor gov (fun () ->
                        Xq.Algebra.Exec.eval_query_stream ~check:false
                          ~strategy ~source:(`String xml) ~path ~var
                          ~positional qgb)))
          in
          let s = Xq.Governor.stats (Option.get !last_gov) in
          record ~bench:"ablation-agg" ~query:label ~size:lineitems ~groups
            ~strategy:(strategy_name strategy) ~parallel:1
            ~spilled:s.Xq.Governor.s_spilled_bytes
            ~peak:s.Xq.Governor.s_peak_mem_bytes ~ms ();
          (ms, s.Xq.Governor.s_spilled_bytes)
        in
        let t_fs, b_fs = streamed "qgb-agg-folded-stream" true in
        let t_ms, b_ms = streamed "qgb-agg-materialized-stream" false in
        Printf.printf
          "  streamed: folded=%10s/%dB spilled  materialized=%10s/%dB \
           spilled (%.2fx)\n%!"
          (Timing.fmt_ms t_fs) b_fs (Timing.fmt_ms t_ms) b_ms (t_ms /. t_fs))
    [ (100, 8_000); (400, 16_000) ]

(* --- bechamel run of the six Qgb/Q pairs ------------------------------------- *)

let bechamel_run () =
  Timing.header "bechamel (OLS) estimates per run, six query pairs, 2K lineitems";
  let open Bechamel in
  let doc = orders_doc 2_000 in
  let tests =
    List.concat_map
      (fun (e : Queries.experiment) ->
        [ Test.make ~name:(e.label ^ "-Qgb") (Staged.stage (fun () -> Xq.run doc e.qgb));
          Test.make ~name:(e.label ^ "-Q") (Staged.stage (fun () -> Xq.run doc e.q)) ])
      Queries.experiments
  in
  let test = Test.make_grouped ~name:"section6" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-24s %12.3f ms/run\n%!" name (est /. 1e6)
      | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
    results

let () =
  let cmds, full, json = parse_flags () in
  let all = cmds = [] in
  let want name = all || List.mem name cmds in
  if want "table1" then table1 ();
  if want "figure6" then figure6 ~full ();
  if want "ablation-rewrite" then ablation_rewrite ();
  if want "ablation-equality" then ablation_equality ();
  if want "ablation-window" then ablation_window ();
  if want "ablation-olap" then ablation_olap ();
  if want "ablation-counts" then ablation_counts ();
  if want "ablation-index" then ablation_index ();
  if want "ablation-algebra" then ablation_algebra ();
  if want "ablation-strategy" then ablation_strategy ();
  if want "ablation-parallel" then ablation_parallel ~full ();
  if want "ablation-batch" then ablation_batch ~full ();
  if want "ablation-governor" then ablation_governor ();
  if want "ablation-spill" then ablation_spill ();
  if want "ablation-stream" then ablation_stream ();
  if want "ablation-server" then ablation_server ();
  if want "ablation-agg" then ablation_agg ();
  if (not all) && List.mem "bechamel" cmds then bechamel_run ();
  (match json with Some path -> write_json path | None -> ());
  Printf.printf "\nDone.\n%!"
