open Xq_xdm
open Xq_lang
module Governor = Xq_governor.Governor

module Smap = Map.Make (String)

(* FLWOR tuples: the named variable bindings of one point in the stream. *)
type tuple = Xseq.t Smap.t

let ctx_with_tuple ctx tuple =
  Smap.fold (fun v value ctx -> Context.bind ctx v value) tuple ctx

(* Spill codec for FLWOR tuples: sorted (variable, sequence) bindings.
   Handed to the grouping operator so it can serialize tuples when the
   governor's memory watermark trips. *)
let tuple_codec : tuple Group.codec =
  {
    Group.enc =
      (fun reg buf tup ->
        Binio.put_varint buf (Smap.cardinal tup);
        Smap.iter
          (fun v value ->
            Binio.put_string buf v;
            Binio.put_seq reg buf value)
          tup);
    dec =
      (fun reg r ->
        let n = Binio.get_varint r in
        let rec go acc i =
          if i >= n then acc
          else begin
            let v = Binio.get_string r in
            let value = Binio.get_seq reg r in
            go (Smap.add v value acc) (i + 1)
          end
        in
        go Smap.empty 0);
  }

(* --- axes and node tests ---------------------------------------------- *)

let axis_nodes axis node =
  match (axis : Ast.axis) with
  | Child -> Node.children node
  | Descendant -> Node.descendants node
  | Attribute_axis -> Node.attributes node
  | Self -> [ node ]
  | Parent -> Option.to_list (Node.parent node)
  | Descendant_or_self -> Node.descendant_or_self node
  | Ancestor -> Node.ancestors node
  | Ancestor_or_self -> node :: Node.ancestors node
  | Following_sibling -> Node.following_siblings node
  | Preceding_sibling -> Node.preceding_siblings node

(* The principal node kind of an axis: attributes for the attribute axis,
   elements otherwise (name tests match only the principal kind). *)
let principal_is_attribute = function
  | Ast.Attribute_axis -> true
  | _ -> false

let name_matches expected node =
  match Node.name node with
  | Some actual -> Xname.equal expected actual
  | None -> false

let test_matches axis test node =
  let principal_kind_ok =
    if principal_is_attribute axis then Node.is_attribute node
    else Node.is_element node
  in
  match (test : Ast.node_test) with
  | Name_test nm -> principal_kind_ok && name_matches nm node
  | Wildcard -> principal_kind_ok
  | Prefix_wildcard p ->
    principal_kind_ok
    && (match Node.name node with
        | Some nm -> nm.Xname.prefix = Some p
        | None -> false)
  | Kind_node -> true
  | Kind_text -> Node.is_text node
  | Kind_comment -> Node.kind node = Node.Comment
  | Kind_element None -> Node.is_element node
  | Kind_element (Some nm) -> Node.is_element node && name_matches nm node
  | Kind_attribute None -> Node.is_attribute node
  | Kind_attribute (Some nm) -> Node.is_attribute node && name_matches nm node
  | Kind_document -> Node.kind node = Node.Document

(* --- fused path scan ---------------------------------------------------- *)

(* Vectorized fast path for predicate-free child/descendant path spines
   (e.g. [//order/lineitem], [$x/a//b]): instead of materializing the
   intermediate node list of every step — with one focus record, one
   [eval] dispatch and one doc-order sort per level — the whole spine
   compiles to a bitmask NFA evaluated in a single pre-order DFS.

   Bit [j] at a node means "this node is in the result of the first [j]
   steps". A [//] step's target bit is closed over descendants by
   inheritance; a child step's target bit is gained when the node test
   matches. A node with bit [k] (all steps consumed) set is emitted; the
   single pre-order walk of one root yields exactly the deduplicated
   document order the step-at-a-time path ends with. Attributes never
   appear (the child axis does not yield them), matching [axis_nodes].

   Only active when execution is batched ([Batch.size () > 1]) — at
   [XQ_BATCH=1] the legacy step-at-a-time scan runs, which is the
   item-granularity baseline the bench ablation compares against. *)

module Batch = Xq_par.Batch

type scan_step = SChild of Ast.node_test | SDos

type spine_head =
  | HRoot  (* absolute: start at the focus item's root *)
  | HFocus (* relative: start at the focus node *)
  | HVar of string (* start at the nodes a variable is bound to *)

let max_fused_steps = 30

let compile_spine e =
  let rec flat acc = function
    | Ast.Slash (a, b) -> flat (b :: acc) a
    | hd -> hd :: acc
  in
  let step_of = function
    | Ast.Step (Ast.Child, t, []) -> Some (SChild t)
    | Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, []) -> Some SDos
    | _ -> None
  in
  let rec steps_of acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | p :: ps -> (
      match step_of p with Some s -> steps_of (s :: acc) ps | None -> None)
  in
  match flat [] e with
  | parts when List.length parts > max_fused_steps -> None
  | Ast.Root :: rest when rest <> [] ->
    Option.map (fun s -> (HRoot, s)) (steps_of [] rest)
  | (Ast.Step _ :: _) as parts ->
    Option.map (fun s -> (HFocus, s)) (steps_of [] parts)
  | Ast.Var v :: rest when rest <> [] ->
    Option.map (fun s -> (HVar v, s)) (steps_of [] rest)
  | _ -> None

(* One DFS from [root]; appends matches in reverse pre-order to [out]. *)
let fused_walk steps root out =
  let k = Array.length steps in
  let accept_bit = 1 lsl k in
  let dos_targets = ref 0 and child_sources = ref 0 in
  Array.iteri
    (fun j s ->
      match s with
      | SDos -> dos_targets := !dos_targets lor (1 lsl (j + 1))
      | SChild _ -> child_sources := !child_sources lor (1 lsl j))
    steps;
  let dos_targets = !dos_targets and child_sources = !child_sources in
  (* cascading [//] bits only ever move upward, so one ascending pass
     reaches the fixpoint *)
  let closure m0 =
    let m = ref m0 in
    for j = 0 to k - 1 do
      if !m land (1 lsl j) <> 0 then
        match steps.(j) with SDos -> m := !m lor (1 lsl (j + 1)) | SChild _ -> ()
    done;
    !m
  in
  let visited = ref 0 in
  let rec visit n m0 =
    (* batch-granularity governor ticks: one per 256 nodes *)
    if !visited land 255 = 0 then Governor.tick ();
    incr visited;
    let m = closure m0 in
    if m land accept_bit <> 0 then out := n :: !out;
    if m land (dos_targets lor child_sources) <> 0 then
      List.iter
        (fun c ->
          let cm = ref (m land dos_targets) in
          for j = 0 to k - 1 do
            if m land (1 lsl j) <> 0 then
              match steps.(j) with
              | SChild t ->
                if test_matches Ast.Child t c then cm := !cm lor (1 lsl (j + 1))
              | SDos -> ()
          done;
          if !cm <> 0 then visit c !cm)
        (Node.children n)
  in
  visit root 1

(* [Some result] when the spine qualifies and the start nodes resolve,
   [None] to fall back to the step-at-a-time scan (which also owns the
   error cases, e.g. '/' with an atomic focus). [HVar] evaluation is a
   pure lookup, so falling back after it cannot double side effects. *)
let fused_scan_path ctx e =
  if not (Batch.batched ()) then None
  else
    match compile_spine e with
    | None -> None
    | Some (head, steps) ->
      let focus_node () =
        match Context.focus ctx with
        | Some { Context.item = Item.Node n; _ } -> Some n
        | Some _ | None -> None
      in
      let roots =
        match head with
        | HRoot -> Option.map (fun n -> [ Node.root n ]) (focus_node ())
        | HFocus -> Option.map (fun n -> [ n ]) (focus_node ())
        | HVar v -> (
          match Context.lookup ctx v with
          | Some seq -> Some (Xseq.nodes seq)
          | None -> None)
      in
      match roots with
      | None -> None
      | Some roots ->
        let acc = ref [] in
        List.iter (fun r -> fused_walk steps r acc) roots;
        let nodes = List.rev !acc in
        let nodes =
          (* a single root's pre-order is already deduplicated document
             order; several (possibly nested) roots need the full sort *)
          match roots with
          | [] | [ _ ] -> nodes
          | _ -> Node.sort_in_doc_order nodes
        in
        Some (Xseq.of_nodes nodes)

(* --- main evaluator ---------------------------------------------------- *)

(* May [e] be evaluated concurrently on several domains? The evaluator
   is functional except for node construction ([Node.fresh_id] bumps a
   global non-atomic counter), so an expression is parallel-safe when it
   constructs no nodes anywhere — including inside the functions it
   calls. User function bodies are opaque here, so any call resolved by
   the context disqualifies; builtins are safe except the registry
   readers and [fn:trace] (observable output order). Conservative by
   design: grouping falls back to sequential key evaluation, never the
   other way. *)
let parallel_safe ctx e =
  (not (Ast_utils.constructs_nodes e))
  && List.for_all
       (fun ((name : Xname.t), arity) ->
         Context.find_function ctx name arity = None
         && Xname.is_default_fn name
         && not (List.mem name.Xname.local [ "doc"; "collection"; "trace" ]))
       (Ast_utils.call_sites e)

let rec eval ctx (e : Ast.expr) : Xseq.t =
  Governor.tick ();
  match e with
  | Literal a -> [ Item.Atomic a ]
  | Var v -> Context.lookup_exn ctx v
  | Context_item -> [ (Context.focus_exn ctx).Context.item ]
  | Sequence es -> Xseq.concat (List.map (eval ctx) es)
  | Range (a, b) -> begin
    match Xseq.atomized_opt (eval ctx a), Xseq.atomized_opt (eval ctx b) with
    | None, _ | _, None -> Xseq.empty
    | Some x, Some y ->
      let lo = Atomic.cast_to_integer x and hi = Atomic.cast_to_integer y in
      if lo > hi then Xseq.empty
      else
        List.init (hi - lo + 1) (fun i ->
            Governor.tick ();
            Item.of_int (lo + i))
  end
  | Arith (op, a, b) -> Compare.arith op (eval ctx a) (eval ctx b)
  | Neg a -> begin
    match Xseq.atomized_opt (eval ctx a) with
    | None -> Xseq.empty
    | Some (Atomic.Int i) -> [ Item.of_int (-i) ]
    | Some (Atomic.Dec f) -> [ Item.Atomic (Atomic.Dec (-.f)) ]
    | Some (Atomic.Dbl f) -> [ Item.Atomic (Atomic.Dbl (-.f)) ]
    | Some (Atomic.Untyped s) ->
      [ Item.of_double (-.Atomic.cast_to_double (Atomic.Untyped s)) ]
    | Some a ->
      Xerror.failf XPTY0004 "unary minus on %s" (Atomic.type_name a)
  end
  | General_cmp (op, a, b) ->
    Xseq.of_bool (Compare.general op (eval ctx a) (eval ctx b))
  | Value_cmp (op, a, b) -> begin
    match Compare.value op (eval ctx a) (eval ctx b) with
    | None -> Xseq.empty
    | Some r -> Xseq.of_bool r
  end
  | Node_cmp (op, a, b) -> begin
    match Compare.node op (eval ctx a) (eval ctx b) with
    | None -> Xseq.empty
    | Some r -> Xseq.of_bool r
  end
  | And (a, b) ->
    Xseq.of_bool
      (Xseq.effective_boolean_value (eval ctx a)
       && Xseq.effective_boolean_value (eval ctx b))
  | Or (a, b) ->
    Xseq.of_bool
      (Xseq.effective_boolean_value (eval ctx a)
       || Xseq.effective_boolean_value (eval ctx b))
  | Union (a, b) ->
    let l = Xseq.nodes (eval ctx a) and r = Xseq.nodes (eval ctx b) in
    Xseq.of_nodes (Node.sort_in_doc_order (l @ r))
  | Intersect (a, b) ->
    let l = Xseq.nodes (eval ctx a) and r = Xseq.nodes (eval ctx b) in
    let keep n = List.exists (Node.same n) r in
    Xseq.of_nodes (Node.sort_in_doc_order (List.filter keep l))
  | Except (a, b) ->
    let l = Xseq.nodes (eval ctx a) and r = Xseq.nodes (eval ctx b) in
    let keep n = not (List.exists (Node.same n) r) in
    Xseq.of_nodes (Node.sort_in_doc_order (List.filter keep l))
  | Instance_of (e, t) -> Xseq.of_bool (Type_check.matches (eval ctx e) t)
  | Treat_as (e, t) ->
    let v = eval ctx e in
    if Type_check.matches v t then v
    else
      Xerror.failf XPTY0004 "treat as: value does not match %s"
        (Type_check.to_string t)
  | Castable_as (e, t) -> begin
    match Type_check.cast (eval ctx e) t with
    | _ -> Xseq.of_bool true
    | exception Xerror.Error _ -> Xseq.of_bool false
  end
  | Cast_as (e, t) -> Type_check.cast (eval ctx e) t
  | If (c, t, e) ->
    if Xseq.effective_boolean_value (eval ctx c) then eval ctx t
    else eval ctx e
  | Quantified (q, binds, body) -> Xseq.of_bool (eval_quantified ctx q binds body)
  | Flwor f -> eval_flwor ctx f
  | Root -> begin
    match (Context.focus_exn ctx).Context.item with
    | Item.Node n -> [ Item.Node (Node.root n) ]
    | Item.Atomic _ ->
      Xerror.fail XPTY0004 "'/' requires the context item to be a node"
  end
  | Step (axis, test, preds) -> begin
    match (Context.focus_exn ctx).Context.item with
    | Item.Node n ->
      let nodes =
        List.filter (test_matches axis test) (axis_nodes axis n)
      in
      apply_predicates ctx (Xseq.of_nodes nodes) preds
    | Item.Atomic _ ->
      Xerror.fail XPTY0004 "a path step requires the context item to be a node"
  end
  | Slash (a, b) -> eval_slash ctx a b
  | Filter (e, preds) -> apply_predicates ctx (eval ctx e) preds
  | Call (name, args) -> eval_call ctx name args
  | Direct_elem d -> [ Item.Node (construct_direct ctx d) ]
  | Comp_elem (name_e, content_e) ->
    let name = constructor_name ctx name_e in
    let el = Node.element name in
    fill_element ctx el [ Ast.Content_expr content_e ];
    [ Item.Node el ]
  | Comp_attr (name_e, content_e) ->
    let name = constructor_name ctx name_e in
    let value = atomics_to_text (Xseq.atomize (eval ctx content_e)) in
    [ Item.Node (Node.attribute name (Option.value value ~default:"")) ]
  | Comp_text content_e -> begin
    match atomics_to_text (Xseq.atomize (eval ctx content_e)) with
    | None -> Xseq.empty
    | Some s -> [ Item.Node (Node.text s) ]
  end

and eval_quantified ctx q binds body =
  (* expand bindings left to right; some = exists, every = forall *)
  let rec go ctx = function
    | [] -> Xseq.effective_boolean_value (eval ctx body)
    | (v, src) :: rest ->
      let items = eval ctx src in
      let test item = go (Context.bind ctx v [ item ]) rest in
      (match q with
       | Ast.Some_quant -> List.exists test items
       | Ast.Every_quant -> List.for_all test items)
  in
  match q with
  | Ast.Some_quant -> go ctx binds
  | Ast.Every_quant -> go ctx binds

and eval_slash ctx a b =
  match index_fast_path ctx a b with
  | Some result -> result
  | None -> (
    match fused_scan_path ctx (Ast.Slash (a, b)) with
    | Some result -> result
    | None -> eval_slash_scan ctx a b)

(* Answer //name (i.e. /descendant-or-self::node()/child::name) from the
   element-name index when one is registered for the context tree. *)
and index_fast_path ctx a b =
  match a, b, Context.name_index ctx with
  | Ast.Slash (Ast.Root, Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, [])),
    Ast.Step (Ast.Child, Ast.Name_test nm, preds),
    Some idx
    when nm.Xname.prefix = None -> begin
    match Context.focus ctx with
    | Some { Context.item = Item.Node n; _ }
      when Node.same (Node.root n) (Name_index.indexed_root idx) ->
      let nodes = Name_index.find idx nm.Xname.local in
      Some (apply_predicates ctx (Xseq.of_nodes nodes) preds)
    | Some _ | None -> None
  end
  | _ -> None

and eval_slash_scan ctx a b =
  let left = eval ctx a in
  let nodes = Xseq.nodes left in
  let size = List.length nodes in
  let results =
    List.mapi
      (fun i n ->
        let focus =
          { Context.item = Item.Node n; position = i + 1; size }
        in
        eval (Context.with_focus ctx focus) b)
      nodes
  in
  let all = Xseq.concat results in
  let has_node = List.exists Item.is_node all in
  let has_atomic = List.exists (fun it -> not (Item.is_node it)) all in
  if has_node && has_atomic then
    Xerror.fail XPTY0004 "path result mixes nodes and atomic values"
  else if has_node then Xseq.of_nodes (Node.sort_in_doc_order (Xseq.nodes all))
  else all

and apply_predicates ctx items preds =
  List.fold_left (apply_predicate ctx) items preds

and apply_predicate ctx items pred =
  let size = List.length items in
  List.filteri
    (fun i item ->
      let focus = { Context.item; position = i + 1; size } in
      let v = eval (Context.with_focus ctx focus) pred in
      match v with
      | [ Item.Atomic (Atomic.Int n) ] -> n = i + 1
      | [ Item.Atomic (Atomic.Dec f) ] | [ Item.Atomic (Atomic.Dbl f) ] ->
        f = float_of_int (i + 1)
      | other -> Xseq.effective_boolean_value other)
    items

and eval_call ctx name args_e =
  let args = List.map (eval ctx) args_e in
  (* the eager-aggregation unwrap builtin first: its name contains "!"
     so no user-written or user-defined function can shadow it, and
     [Fn_sigs] does not know it *)
  if Xname.is_default_fn name && name.Xname.local = Acc.unwrap_local then begin
    match args with
    | [
     [
       Item.Atomic (Atomic.Str tag);
       Item.Atomic (Atomic.Str code);
       Item.Atomic (Atomic.Str msg);
     ];
    ]
      when tag = Acc.poison_tag -> begin
      (* the error the aggregate builtin would have raised here *)
      match Xerror.code_of_string code with
      | Some c -> raise (Xerror.Error (c, msg))
      | None -> Xerror.failf FORG0006 "corrupt aggregate poison code %S" code
    end
    | [ seq ] -> seq
    | _ ->
      Xerror.failf XPST0017 "unknown function %s#%d" (Xname.to_string name)
        (List.length args)
  end
  else
    match Context.find_function ctx name (List.length args) with
    | Some f -> apply_user_function ctx f args
    | None ->
      if Fn_sigs.accepts name (List.length args) then Builtins.call ctx name args
      else
        Xerror.failf XPST0017 "unknown function %s#%d" (Xname.to_string name)
          (List.length args)

and apply_user_function ctx (f : Context.func) args =
  let bindings = List.combine f.Context.fn_params args in
  eval (Context.function_scope ctx bindings) f.Context.fn_body

(* --- constructors ------------------------------------------------------ *)

and constructor_name ctx name_e =
  match Xseq.atomized_opt (eval ctx name_e) with
  | Some (Atomic.QName n) -> n
  | Some a -> Xname.of_string (Atomic.to_string a)
  | None -> Xerror.fail XPTY0004 "constructor name evaluated to ()"

(* Adjacent atomic values become one text node, space-separated. *)
and atomics_to_text atoms =
  match atoms with
  | [] -> None
  | _ -> Some (String.concat " " (List.map Atomic.to_string atoms))

and construct_direct ctx (d : Ast.direct_elem) =
  let el = Node.element d.tag in
  List.iter
    (fun (a : Ast.direct_attr) ->
      let buf = Buffer.create 16 in
      List.iter
        (fun piece ->
          match (piece : Ast.attr_piece) with
          | Attr_text s -> Buffer.add_string buf s
          | Attr_expr e ->
            let atoms = Xseq.atomize (eval ctx e) in
            Buffer.add_string buf
              (String.concat " " (List.map Atomic.to_string atoms)))
        a.attr_value;
      Node.set_attribute el (Node.attribute a.attr_tag (Buffer.contents buf)))
    d.attrs;
  fill_element ctx el d.content;
  el

(* Evaluate constructor content into an element: copies content nodes
   (constructor semantics), merges adjacent atomics into text nodes and
   attaches attribute nodes produced by enclosed expressions. *)
and fill_element ctx el content =
  let pending_text = Buffer.create 16 in
  let pending_sep = ref false in
  let flush_text () =
    if Buffer.length pending_text > 0 then begin
      Node.append_child el (Node.text (Buffer.contents pending_text));
      Buffer.clear pending_text
    end;
    pending_sep := false
  in
  let add_atomic a =
    if !pending_sep then Buffer.add_char pending_text ' ';
    Buffer.add_string pending_text (Atomic.to_string a);
    pending_sep := true
  in
  let add_node n =
    match Node.kind n with
    | Node.Attribute ->
      flush_text ();
      Node.set_attribute el
        (Node.attribute
           (Option.get (Node.name n))
           (Node.attribute_value n))
    | Node.Document ->
      flush_text ();
      List.iter (fun c -> Node.append_child el (Node.copy c)) (Node.children n)
    | Node.Element | Node.Text | Node.Comment | Node.Pi ->
      flush_text ();
      Node.append_child el (Node.copy n)
  in
  List.iter
    (fun item ->
      match (item : Ast.content_item) with
      | Content_text s ->
        flush_text ();
        Node.append_child el (Node.text s)
      | Content_comment s ->
        flush_text ();
        Node.append_child el (Node.comment s)
      | Content_elem child ->
        flush_text ();
        Node.append_child el (construct_direct ctx child)
      | Content_expr e ->
        let items = eval ctx e in
        List.iter
          (fun it ->
            match (it : Item.t) with
            | Item.Atomic a -> add_atomic a
            | Item.Node n ->
              pending_sep := false;
              add_node n)
          items;
        (* a following enclosed expression's atomics are separated *)
        pending_sep := false;
        flush_text ())
    content;
  flush_text ()

(* --- FLWOR -------------------------------------------------------------- *)

and eval_flwor ctx (f : Ast.flwor) =
  let tuples = List.fold_left (eval_clause ctx) [ Smap.empty ] f.clauses in
  let numbered =
    match f.return_at with
    | None -> List.map (fun t -> t) tuples
    | Some v ->
      List.mapi (fun i t -> Smap.add v (Xseq.of_int (i + 1)) t) tuples
  in
  Xseq.concat
    (List.map (fun t -> eval (ctx_with_tuple ctx t) f.return_expr) numbered)

and eval_clause ctx tuples (clause : Ast.clause) =
  match clause with
  | For bindings ->
    List.fold_left
      (fun tuples (fb : Ast.for_binding) ->
        List.concat_map
          (fun tuple ->
            let items = eval (ctx_with_tuple ctx tuple) fb.for_src in
            List.mapi
              (fun i item ->
                let tuple = Smap.add fb.for_var [ item ] tuple in
                match fb.positional with
                | Some p -> Smap.add p (Xseq.of_int (i + 1)) tuple
                | None -> tuple)
              items)
          tuples)
      tuples bindings
  | Let bindings ->
    List.map
      (fun tuple ->
        List.fold_left
          (fun tuple (v, e) ->
            Smap.add v (eval (ctx_with_tuple ctx tuple) e) tuple)
          tuple bindings)
      tuples
  | Where e ->
    List.filter
      (fun tuple ->
        Xseq.effective_boolean_value (eval (ctx_with_tuple ctx tuple) e))
      tuples
  | Order_by { specs; _ } -> sort_tuples ctx tuples specs
  | Count v ->
    List.mapi (fun i tuple -> Smap.add v (Xseq.of_int (i + 1)) tuple) tuples
  | Window w -> List.concat_map (eval_window ctx w) tuples
  | Group_by g -> eval_group_by ctx tuples g

(* Expand one tuple into one tuple per window over the clause's source
   sequence (XQuery 3.0 tumbling/sliding semantics; boundary search in
   Window_sem). *)
and eval_window ctx (w : Ast.window_clause) tuple =
  let tctx = ctx_with_tuple ctx tuple in
  let items = Array.of_list (eval tctx w.w_src) in
  let length = Array.length items in
  (* bind a condition's variables for position [pos] (1-based) *)
  let bind_cond (wc : Ast.window_vars_cond) pos tuple =
    let add var value tuple =
      match var with
      | Some v -> Smap.add v value tuple
      | None -> tuple
    in
    tuple
    |> add wc.wc_item [ items.(pos - 1) ]
    |> add wc.wc_pos (Xseq.of_int pos)
    |> add wc.wc_prev (if pos >= 2 then [ items.(pos - 2) ] else [])
    |> add wc.wc_next (if pos < length then [ items.(pos) ] else [])
  in
  let holds (wc : Ast.window_vars_cond) pos =
    let inner = ctx_with_tuple ctx (bind_cond wc pos tuple) in
    Xseq.effective_boolean_value (eval inner wc.wc_when)
  in
  let start_when pos = holds w.w_start pos in
  let end_when, only_end =
    match w.w_end with
    | Some { we_only; we_cond } ->
      (* the end condition also sees the start condition's variables,
         bound at the window's start position *)
      ( Some
          (fun ~start_pos pos ->
            let t = bind_cond w.w_start start_pos tuple in
            let t = bind_cond we_cond pos t in
            Xseq.effective_boolean_value
              (eval (ctx_with_tuple ctx t) we_cond.wc_when)),
        we_only )
    | None -> (None, false)
  in
  let bounds =
    Window_sem.compute ~kind:w.w_kind ~start_when ~end_when ~only_end ~length
  in
  List.map
    (fun (b : Window_sem.bounds) ->
      let window_items =
        List.init (b.end_pos - b.start_pos + 1) (fun i ->
            items.(b.start_pos - 1 + i))
      in
      let tuple = Smap.add w.w_var window_items tuple in
      let tuple = bind_cond w.w_start b.start_pos tuple in
      match w.w_end with
      | Some { we_cond; _ } -> bind_cond we_cond b.end_pos tuple
      | None -> tuple)
    bounds

(* Sort tuples by the order specs (stable; the [stable] keyword therefore
   holds in all cases, and is ignored for grouped FLWORs per 3.4.2). *)
and sort_tuples ctx tuples specs =
  let keyed =
    List.map
      (fun tuple ->
        let tctx = ctx_with_tuple ctx tuple in
        let keys =
          List.map
            (fun (e, modifier) ->
              let k =
                match Xseq.atomized_opt (eval tctx e) with
                | Some a -> Some a
                | None -> None
              in
              (k, modifier))
            specs
        in
        (keys, tuple))
      tuples
  in
  let compare_keys (ka, _) (kb, _) =
    let rec go = function
      | [] -> 0
      | ((a, modifier), (b, _)) :: rest ->
        let c = Compare.order_keys modifier a b in
        if c <> 0 then c else go rest
    in
    go (List.combine ka kb)
  in
  List.map snd (List.stable_sort compare_keys keyed)

and eval_group_by ctx tuples (g : Ast.group_clause) =
  let keys_of tuple =
    let tctx = ctx_with_tuple ctx tuple in
    List.map (fun (k : Ast.group_key) -> eval tctx k.key_expr) g.keys
  in
  let parallel = Xq_par.Par.default_degree () in
  let parallel_keys =
    parallel > 1
    && List.for_all
         (fun (k : Ast.group_key) -> parallel_safe ctx k.key_expr)
         g.keys
  in
  let any_using =
    List.exists (fun (k : Ast.group_key) -> k.using <> None) g.keys
  in
  let groups =
    if not any_using then
      Group.group_hash ~spill:tuple_codec ~parallel ~parallel_keys ~keys_of
        tuples
    else begin
      let comparators =
        Array.of_list
          (List.map
             (fun (k : Ast.group_key) ->
               match k.using with
               | None ->
                 fun (a : Key.single) (b : Key.single) -> Key.equal_single a b
               | Some fname ->
                 fun (a : Key.single) (b : Key.single) ->
                   let a = a.Key.orig and b = b.Key.orig in
                   let result =
                     match Context.find_function ctx fname 2 with
                     | Some f -> apply_user_function ctx f [ a; b ]
                     | None ->
                       if Fn_sigs.accepts fname 2 then
                         Builtins.call ctx fname [ a; b ]
                       else
                         Xerror.failf XPST0017
                           "unknown grouping equality function %s"
                           (Xname.to_string fname)
                   in
                   Xseq.effective_boolean_value result)
             g.keys)
      in
      Group.group_scan ~parallel ~parallel_keys ~keys_of
        ~equal:(fun i a b -> comparators.(i) a b)
        tuples
    end
  in
  List.map
    (fun (grp : tuple Group.group) ->
      (* grouping variables: representative key values *)
      let out =
        List.fold_left2
          (fun out (k : Ast.group_key) key_value ->
            Smap.add k.key_var key_value out)
          Smap.empty g.keys grp.Group.keys
      in
      (* nesting variables: concatenation over the group's tuples, in
         input order or per the nest's own order-by (Section 3.4.1) *)
      List.fold_left
        (fun out (n : Ast.nest_spec) ->
          let value =
            match n.nest_expr, n.nest_order with
            | Ast.Literal a, [] ->
              (* count-optimized nests (nest 1 into $v): one literal per
                 tuple, no per-tuple evaluation needed *)
              List.map
                (fun _ -> Item.Atomic a)
                grp.Group.members
            | _ ->
              let members =
                if n.nest_order = [] then grp.Group.members
                else sort_tuples ctx grp.Group.members n.nest_order
              in
              Xseq.concat
                (List.map
                   (fun tuple -> eval (ctx_with_tuple ctx tuple) n.nest_expr)
                   members)
          in
          Smap.add n.nest_var value out)
        out g.nests)
    groups

(* Bridge for the algebra executor: window expansion over association-list
   tuples (the executor has its own tuple map type). *)
let expand_window_bindings ctx w bindings =
  let tuple =
    List.fold_left (fun m (v, value) -> Smap.add v value m) Smap.empty bindings
  in
  List.map Smap.bindings (eval_window ctx w tuple)

(* --- query entry points -------------------------------------------------- *)

let eval_query ?(check = true) ?(use_index = false) ?(documents = [])
    ?(collections = []) ?default_collection ~context_node (q : Ast.query) =
  if check then Static.check_query q;
  let ctx = Context.of_prolog q.prolog in
  let ctx =
    if use_index then Context.set_name_index ctx (Name_index.build context_node)
    else ctx
  in
  let ctx =
    List.fold_left (fun ctx (uri, d) -> Context.add_document ctx ~uri d) ctx documents
  in
  let ctx =
    List.fold_left
      (fun ctx (name, nodes) -> Context.add_collection ctx ~name nodes)
      ctx collections
  in
  let ctx =
    match default_collection with
    | Some nodes -> Context.set_default_collection ctx nodes
    | None -> ctx
  in
  let focus =
    { Context.item = Item.Node context_node; position = 1; size = 1 }
  in
  let ctx = Context.with_focus ctx focus in
  let ctx =
    List.fold_left
      (fun ctx (v, e) -> Context.bind_global ctx v (eval ctx e))
      ctx q.prolog.global_vars
  in
  eval ctx q.body

let run ?use_index ?documents ?collections ?default_collection ~context_node
    src =
  eval_query ?use_index ?documents ?collections ?default_collection
    ~context_node (Parser.parse_query src)
