open Xq_xdm

type 'a group = { keys : Xseq.t list; members : 'a list }

type 'a cell = { c_keys : Xseq.t list; mutable rev_members : 'a list }

let finalize order =
  List.rev_map
    (fun cell -> { keys = cell.c_keys; members = List.rev cell.rev_members })
    order

let hash_keys keys = Hashtbl.hash (List.map Deep_equal.hash_sequence keys)

let keys_deep_equal a b = List.for_all2 Deep_equal.sequences a b

let tick = function Some r -> incr r | None -> ()

let group_hash ?(hash = hash_keys) ?tally ~keys_of tuples =
  let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tuple ->
      let keys = keys_of tuple in
      let h = hash keys in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      match
        List.find_opt
          (fun cell ->
            tick tally;
            keys_deep_equal cell.c_keys keys)
          !bucket
      with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        let cell = { c_keys = keys; rev_members = [ tuple ] } in
        bucket := cell :: !bucket;
        order := cell :: !order)
    tuples;
  finalize !order

let group_scan ?tally ~keys_of ~equal tuples =
  let order = ref [] in
  List.iter
    (fun tuple ->
      (* hoist the key list once per tuple; compare against a candidate
         cell without rebuilding index/pair lists, short-circuiting on a
         length mismatch (unequal arity can never match) *)
      let keys = keys_of tuple in
      let same cell =
        let rec go i ks cs =
          match ks, cs with
          | [], [] -> true
          | k :: ks, c :: cs ->
            tick tally;
            equal i k c && go (i + 1) ks cs
          | [], _ :: _ | _ :: _, [] -> false
        in
        go 0 keys cell.c_keys
      in
      match List.find_opt same !order with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None -> order := { c_keys = keys; rev_members = [ tuple ] } :: !order)
    tuples;
  (* !order is newest-first; finalize reverses *)
  finalize !order

(* --- sort-based grouping ------------------------------------------------- *)

(* A total preorder on key lists, consistent with deep-equal: deep-equal
   keys always compare 0 (the converse need not hold — a run that
   conflates distinct keys is split by a deep-equal pass afterwards, so
   the groups produced are exactly the hash strategy's). Nodes sort by
   string value; untyped sorts with strings; all numerics sort on one
   axis so Int/Dec/Dbl values that deep-equal land together. *)

let atom_rank = function
  | Atomic.Bool _ -> 0
  | Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _ -> 1
  | Atomic.Untyped _ | Atomic.Str _ -> 2
  | Atomic.DateTime _ -> 3
  | Atomic.Date _ -> 4
  | Atomic.QName _ -> 5

let compare_atoms a b =
  let ra = atom_rank a and rb = atom_rank b in
  if ra <> rb then Int.compare ra rb
  else
    match a, b with
    | Atomic.Bool x, Atomic.Bool y -> Bool.compare x y
    | ( (Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _),
        (Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _) ) ->
      let is_nan = function
        | Atomic.Dec f | Atomic.Dbl f -> Float.is_nan f
        | _ -> false
      in
      (match is_nan a, is_nan b with
       | true, true -> 0
       | true, false -> -1
       | false, true -> 1
       | false, false -> Float.compare (Atomic.number a) (Atomic.number b))
    | (Atomic.Untyped x | Atomic.Str x), (Atomic.Untyped y | Atomic.Str y) ->
      String.compare x y
    | Atomic.DateTime x, Atomic.DateTime y -> Xdatetime.compare_date_time x y
    | Atomic.Date x, Atomic.Date y -> Xdatetime.compare_date x y
    | Atomic.QName x, Atomic.QName y -> Xname.compare x y
    | _ -> 0 (* unreachable: differing ranks are handled above *)

let item_sort_atom = function
  | Item.Atomic a -> a
  | Item.Node _ as it -> Atomic.Str (Item.string_value it)

let compare_sequences a b =
  let rec go a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = compare_atoms (item_sort_atom x) (item_sort_atom y) in
      if c <> 0 then c else go xs ys
  in
  go a b

let compare_key_lists a b =
  let rec go a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = compare_sequences x y in
      if c <> 0 then c else go xs ys
  in
  go a b

let group_sort ?tally ?(sorted_output = false) ~keys_of tuples =
  let decorated = List.mapi (fun i tuple -> (i, keys_of tuple, tuple)) tuples in
  let sorted =
    List.stable_sort
      (fun (_, ka, _) (_, kb, _) ->
        tick tally;
        compare_key_lists ka kb)
      decorated
  in
  (* After the stable sort, equal-comparing keys are adjacent and their
     tuples are in input order. Emit cells from the runs, splitting each
     run with deep-equal so sort-order conflations never merge groups. *)
  let cells = ref [] in (* (first input index, cell), newest run first *)
  let run_repr = ref None in
  let run_cells = ref [] in
  let flush () =
    cells := !run_cells @ !cells;
    run_cells := []
  in
  List.iter
    (fun (i, keys, tuple) ->
      let same_run =
        match !run_repr with
        | None -> false
        | Some repr ->
          tick tally;
          compare_key_lists repr keys = 0
      in
      if not same_run then begin
        flush ();
        run_repr := Some keys
      end;
      match
        List.find_opt
          (fun (_, cell) ->
            tick tally;
            keys_deep_equal cell.c_keys keys)
          !run_cells
      with
      | Some (_, cell) -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        run_cells :=
          (i, { c_keys = keys; rev_members = [ tuple ] }) :: !run_cells)
    sorted;
  flush ();
  let in_emit_order =
    if sorted_output then List.rev !cells
    else List.sort (fun (i, _) (j, _) -> Int.compare i j) !cells
  in
  List.map
    (fun (_, cell) ->
      { keys = cell.c_keys; members = List.rev cell.rev_members })
    in_emit_order
