open Xq_xdm
module Par = Xq_par.Par
module Governor = Xq_governor.Governor

type 'a group = { keys : Xseq.t list; members : 'a list }

(* Parallelism thresholds: below these sizes a fork-join round costs more
   than it saves, so the sequential path runs even when a degree > 1 is
   requested. Deliberately low so small randomized test workloads still
   exercise the parallel code paths. *)
let par_keys_min_chunk = 16
let par_build_min = 32
let par_sort_min_chunk = 32

let hash_keys keys =
  List.fold_left
    (fun h k -> Key.mix h (Deep_equal.hash_sequence k))
    (Key.mix Key.hash_seed (List.length keys))
    keys

let tick = function Some r -> incr r | None -> ()

(* --- canonicalization --------------------------------------------------- *)

(* Evaluate and canonicalize every tuple's key list. Key evaluation runs
   on the pool only when the caller vouches it is thread-safe
   ([parallel_keys] — the evaluator checks the key expressions construct
   no nodes); canonicalization itself only reads the tree and always
   parallelizes. *)
let canonicalized ~parallel ~parallel_keys ~keys_of tuples =
  let arr = Array.of_list tuples in
  if parallel > 1 && parallel_keys then
    Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk
      (fun t -> (Key.canonicalize (keys_of t), t))
      arr
  else begin
    let keys = Array.map keys_of arr in
    let canon =
      Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk Key.canonicalize
        keys
    in
    Array.map2 (fun k t -> (k, t)) canon arr
  end

(* --- hash-based building ------------------------------------------------ *)

type 'a cell = {
  c_key : Key.t;
  c_first : int; (* input index of the first member — the group's rank *)
  mutable rev_members : 'a list;
}

(* One hash-grouping pass over the indices whose hash [accept]s; buckets
   key on the full hash value, probes compare canonical keys. Returns
   cells in first-encounter order. *)
let build_seq ?tally keyed hashes accept =
  let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let n = Array.length keyed in
  for i = 0 to n - 1 do
    let h = hashes.(i) in
    if accept h then begin
      Governor.tick ();
      let key, tuple = keyed.(i) in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      match
        List.find_opt
          (fun cell ->
            tick tally;
            Key.equal cell.c_key key)
          !bucket
      with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        Governor.count_groups 1;
        let cell = { c_key = key; c_first = i; rev_members = [ tuple ] } in
        bucket := cell :: !bucket;
        order := cell :: !order
    end
  done;
  List.rev !order

(* Hash-partitioned parallel build: domain [j] owns the tuples whose key
   hash is ≡ j (mod degree), so equal keys always land in one partition
   and each partition's Hashtbl sees exactly the probes the sequential
   build would have made for those tuples — the summed tally is
   identical. The merged group order (ascending first-member index) is
   the sequential first-encounter order. *)
let build ?tally ~parallel keyed hashes =
  let n = Array.length keyed in
  let p = if n >= par_build_min then max 1 (min parallel n) else 1 in
  if p <= 1 then build_seq ?tally keyed hashes (fun _ -> true)
  else begin
    let parts = Array.make p [] in
    let tallies = Array.make p 0 in
    Par.run_tasks
      (Array.init p (fun j ->
           fun () ->
             let t = ref 0 in
             parts.(j) <-
               build_seq ~tally:t keyed hashes (fun h -> (h land max_int) mod p = j);
             tallies.(j) <- !t));
    (match tally with
     | Some r -> r := !r + Array.fold_left ( + ) 0 tallies
     | None -> ());
    List.sort
      (fun a b -> Int.compare a.c_first b.c_first)
      (List.concat (Array.to_list parts))
  end

let to_groups cells =
  List.map
    (fun c -> { keys = Key.originals c.c_key; members = List.rev c.rev_members })
    cells

(* --- strategies --------------------------------------------------------- *)

let group_hash ?hash ?tally ?(parallel = 1) ?(parallel_keys = false) ~keys_of
    tuples =
  let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
  let hashes =
    match hash with
    | None -> Array.map (fun (k, _) -> Key.hash k) keyed
    | Some h -> Array.map (fun (k, _) -> h (Key.originals k)) keyed
  in
  to_groups (build ?tally ~parallel keyed hashes)

let group_sort ?tally ?(sorted_output = false) ?(parallel = 1)
    ?(parallel_keys = false) ~keys_of tuples =
  let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
  let hashes = Array.map (fun (k, _) -> Key.hash k) keyed in
  let cells = build ?tally ~parallel keyed hashes in
  let cells =
    if not sorted_output then cells
    else begin
      (* Only the group representatives are sorted — g·log g canonical
         comparisons instead of PR 1's n·log n subtree-walking ones. The
         sort is stable and cells arrive in first-encounter order, so
         ties (distinct keys the preorder conflates) keep exactly the
         order the old sort-the-tuples implementation produced. *)
      let arr = Array.of_list cells in
      Par.sort ~degree:parallel ~min_chunk:par_sort_min_chunk
        (fun a b ->
          tick tally;
          Governor.tick ();
          Key.compare a.c_key b.c_key)
        arr;
      Array.to_list arr
    end
  in
  to_groups cells

let group_scan ?tally ?(parallel = 1) ?(parallel_keys = false) ~keys_of ~equal
    tuples =
  let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
  let order = ref [] in
  Array.iter
    (fun ((key : Key.t), tuple) ->
      Governor.tick ();
      (* compare against each existing group's representative, one key
         position at a time, short-circuiting on the first mismatch
         (unequal arity can never match) *)
      let ks = key.Key.singles in
      let nk = Array.length ks in
      let same cell =
        let cs = cell.c_key.Key.singles in
        let nc = Array.length cs in
        let rec go i =
          if i >= nk && i >= nc then true
          else if i >= nk || i >= nc then false
          else begin
            tick tally;
            equal i ks.(i) cs.(i) && go (i + 1)
          end
        in
        go 0
      in
      match List.find_opt same !order with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        Governor.count_groups 1;
        order := { c_key = key; c_first = 0; rev_members = [ tuple ] } :: !order)
    keyed;
  (* !order is newest-first *)
  to_groups (List.rev !order)

(* --- raw key-list comparison (tests) ------------------------------------ *)

let compare_key_lists a b = Key.compare (Key.canonicalize a) (Key.canonicalize b)
