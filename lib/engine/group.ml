open Xq_xdm
module Par = Xq_par.Par
module Governor = Xq_governor.Governor

type 'a group = { keys : Xseq.t list; members : 'a list }

(* Parallelism thresholds: below these sizes a fork-join round costs more
   than it saves, so the sequential path runs even when a degree > 1 is
   requested. Deliberately low so small randomized test workloads still
   exercise the parallel code paths. *)
let par_keys_min_chunk = 16
let par_build_min = 32
let par_sort_min_chunk = 32

let hash_keys keys =
  List.fold_left
    (fun h k -> Key.mix h (Deep_equal.hash_sequence k))
    (Key.mix Key.hash_seed (List.length keys))
    keys

let tick = function Some r -> incr r | None -> ()

(* --- canonicalization --------------------------------------------------- *)

(* Evaluate and canonicalize every tuple's key list. Key evaluation runs
   on the pool only when the caller vouches it is thread-safe
   ([parallel_keys] — the evaluator checks the key expressions construct
   no nodes); canonicalization itself only reads the tree and always
   parallelizes. *)
let canonicalized ~parallel ~parallel_keys ~keys_of tuples =
  let arr = Array.of_list tuples in
  if parallel > 1 && parallel_keys then
    Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk
      (fun t -> (Key.canonicalize (keys_of t), t))
      arr
  else begin
    let keys = Array.map keys_of arr in
    let canon =
      Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk Key.canonicalize
        keys
    in
    Array.map2 (fun k t -> (k, t)) canon arr
  end

(* --- hash-based building ------------------------------------------------ *)

type 'a cell = {
  c_key : Key.t;
  c_first : int; (* input index of the first member — the group's rank *)
  mutable rev_members : 'a list;
}

(* One hash-grouping pass over the indices whose hash [accept]s; buckets
   key on the full hash value, probes compare canonical keys. Returns
   cells in first-encounter order. *)
let build_seq ?tally keyed hashes accept =
  let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let n = Array.length keyed in
  for i = 0 to n - 1 do
    let h = hashes.(i) in
    if accept h then begin
      Governor.tick ();
      let key, tuple = keyed.(i) in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      match
        List.find_opt
          (fun cell ->
            tick tally;
            Key.equal cell.c_key key)
          !bucket
      with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        Governor.count_groups 1;
        let cell = { c_key = key; c_first = i; rev_members = [ tuple ] } in
        bucket := cell :: !bucket;
        order := cell :: !order
    end
  done;
  List.rev !order

(* Hash-partitioned parallel build: domain [j] owns the tuples whose key
   hash is ≡ j (mod degree), so equal keys always land in one partition
   and each partition's Hashtbl sees exactly the probes the sequential
   build would have made for those tuples — the summed tally is
   identical. The merged group order (ascending first-member index) is
   the sequential first-encounter order. *)
let build ?tally ~parallel keyed hashes =
  let n = Array.length keyed in
  let p = if n >= par_build_min then max 1 (min parallel n) else 1 in
  if p <= 1 then build_seq ?tally keyed hashes (fun _ -> true)
  else begin
    let parts = Array.make p [] in
    let tallies = Array.make p 0 in
    Par.run_tasks
      (Array.init p (fun j ->
           fun () ->
             let t = ref 0 in
             parts.(j) <-
               build_seq ~tally:t keyed hashes (fun h -> (h land max_int) mod p = j);
             tallies.(j) <- !t));
    (match tally with
     | Some r -> r := !r + Array.fold_left ( + ) 0 tallies
     | None -> ());
    List.sort
      (fun a b -> Int.compare a.c_first b.c_first)
      (List.concat (Array.to_list parts))
  end

let to_groups cells =
  List.map
    (fun c -> { keys = Key.originals c.c_key; members = List.rev c.rev_members })
    cells

(* --- spill-to-disk external grouping ------------------------------------ *)

(* When the governor's soft watermark is armed and the caller supplies a
   tuple codec, hash and sort grouping run an external build instead of
   the in-memory one:

   - canonicalization is interleaved with insertion in batches, so the
     full array of canonical keys never has to exist at once;
   - each partition registers a pressure callback: when charged bytes
     cross the watermark, the triggering partition serializes its whole
     hash table to its spill file as framed cells (key + first-member
     index + members) and returns the bytes to the budget;
   - hash grouping replays spill files through a fresh table, first
     recursively repartitioning any file larger than its replay
     threshold (the watermark divided by the partition count) by a
     depth-salted hash (a bounded number of times — duplicate-heavy
     keys collide at every salt, so at the depth cap the file is
     finished with sorted runs instead);
   - sort grouping flushes sorted runs and merges them with a loser
     tree, combining [Key.equal] cells within compare-equal clusters.

   Output is byte-identical to the in-memory path at any watermark and
   parallel degree: a key flushed and re-encountered simply yields two
   cells that the merge recombines — members concatenate in flush
   (= input) order and the merged first-member index is the original
   first encounter — and the final cell order is recomputed from
   first-member indices exactly as the parallel in-memory merge does. *)

module Spill = Xq_spill.Spill

type 'a codec = {
  enc : Binio.node_registry -> Buffer.t -> 'a -> unit;
  dec : Binio.node_registry -> Binio.reader -> 'a;
}

(* Approximate live-heap bookkeeping costs, charged per insert and
   returned on flush; canonical-key bytes are already charged by
   [Key.canonicalize] and returned when the key is dropped. *)
let member_cost = 24
let cell_cost = 96

let ext_batch = 2048
let repartition_fanout = 4
let max_repartition_depth = 4

type 'a part = {
  ptable : (int, 'a cell list ref) Hashtbl.t;
  mutable live_charge : int;  (* bytes to return on flush *)
  mutable pfile : Spill.File.t option;
  mutable runs : (int * int) list;  (* sort mode: (off, len), newest first *)
  reg : Binio.node_registry;
  pcodec : 'a codec;
  sort_mode : bool;
  pthreshold : int;
      (* replay/repartition threshold: a file no larger than this
         replays straight into a table, bigger ones repartition (or
         batch into sorted runs of this size). Sized to
         watermark / #partitions so all partitions replaying at once
         stay within one watermark of serialized state. *)
}

let new_part ~codec ~sort_mode ~threshold =
  {
    ptable = Hashtbl.create 64;
    live_charge = 0;
    pfile = None;
    runs = [];
    reg = Binio.registry ();
    pcodec = codec;
    sort_mode;
    pthreshold = threshold;
  }

let corrupt_trip m = Governor.spill_trip ("spill decode failed: " ^ m)

(* Frame payload: bucket hash (the build's, override included), first
   index, canonical key, members in input order. A record whose member
   list would exceed [frame_cap] splits greedily across several frames
   repeating the same (hash, first, key) prefix: flush then allocates
   one bounded buffer instead of a hot key's full serialized size (and
   can never overflow the u32 frame length). Replay recombines
   [Key.equal] cells preserving member order, so the split is invisible
   in the output. *)
let frame_cap part = max 4096 (part.pthreshold / 4)

let write_rec part file buf (h, c_first, key, members) =
  let cap = frame_cap part in
  Buffer.clear buf;
  Binio.put_varint buf h;
  Binio.put_varint buf c_first;
  Key.encode part.reg buf key;
  let prefix = Buffer.contents buf in
  let scratch = Buffer.create 256 in
  let emit chunk_rev n =
    Buffer.clear buf;
    Buffer.add_string buf prefix;
    Binio.put_varint buf n;
    List.iter (Buffer.add_string buf) (List.rev chunk_rev);
    Spill.File.write_frame file (Buffer.contents buf)
  in
  let rec go chunk_rev n bytes = function
    | [] -> emit chunk_rev n
    | m :: ms ->
      Buffer.clear scratch;
      part.pcodec.enc part.reg scratch m;
      let s = Buffer.contents scratch in
      if n > 0 && bytes + String.length s > cap then begin
        emit chunk_rev n;
        go [ s ] 1 (String.length s) ms
      end
      else go (s :: chunk_rev) (n + 1) (bytes + String.length s) ms
  in
  go [] 0 0 members

let decode_rec part payload =
  let r =
    try
      let r = Binio.reader payload in
      let h = Binio.get_varint r in
      let c_first = Binio.get_varint r in
      let key = Key.decode part.reg r in
      let nm = Binio.get_varint r in
      if nm < 0 then raise (Binio.Corrupt "negative member count");
      let members = List.init nm (fun _ -> part.pcodec.dec part.reg r) in
      (h, c_first, key, members)
    with Binio.Corrupt m -> corrupt_trip m
  in
  (* Decoded bytes count against the budget like any other
     materialization: replayed cells are live output (the sorted
     fallback's transient batches are returned when each run is
     written back out), so the hard check sees merge-phase growth
     instead of waiting for a Gc-delta slow tick. *)
  Governor.charge_bytes (String.length payload);
  r

let cmp_rec (_, f1, k1, _) (_, f2, k2, _) =
  let c = Key.compare k1 k2 in
  if c <> 0 then c else Int.compare f1 f2

let ensure_file part =
  match part.pfile with
  | Some f -> f
  | None ->
    let f = Spill.File.create () in
    part.pfile <- Some f;
    f

(* Serialize the partition's whole table and reset it — the pressure
   callback. In sort mode the cells go out as one sorted run. *)
let flush_part part =
  if Hashtbl.length part.ptable > 0 then begin
    let file = ensure_file part in
    let recs =
      Hashtbl.fold
        (fun h b acc ->
          List.fold_left
            (fun acc c -> (h, c.c_first, c.c_key, List.rev c.rev_members) :: acc)
            acc !b)
        part.ptable []
    in
    let recs = if part.sort_mode then List.sort cmp_rec recs else recs in
    let start = Spill.File.pos file in
    let buf = Buffer.create 1024 in
    List.iter (write_rec part file buf) recs;
    if part.sort_mode then
      part.runs <- (start, Spill.File.pos file - start) :: part.runs;
    Hashtbl.reset part.ptable;
    Governor.uncharge_bytes part.live_charge;
    part.live_charge <- 0
  end

let ext_insert ?tally part h key tuple gi =
  Governor.tick ();
  let bucket =
    match Hashtbl.find_opt part.ptable h with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add part.ptable h b;
      b
  in
  match
    List.find_opt
      (fun cell ->
        tick tally;
        Key.equal cell.c_key key)
      !bucket
  with
  | Some cell ->
    cell.rev_members <- tuple :: cell.rev_members;
    (* the probe key is garbage now; swap its bytes for one cons *)
    Governor.uncharge_bytes (Key.charged_bytes key);
    part.live_charge <- part.live_charge + member_cost;
    Governor.charge_bytes member_cost
  | None ->
    let cell = { c_key = key; c_first = gi; rev_members = [ tuple ] } in
    bucket := cell :: !bucket;
    let add = cell_cost + member_cost in
    part.live_charge <- part.live_charge + add + Key.charged_bytes key;
    Governor.charge_bytes add

(* k-way merge of sorted runs, recombining [Key.equal] cells inside
   each compare-equal cluster (the preorder conflates some distinct
   keys, so equality must be re-checked). Emits cells in (key, first)
   order; clusters flush their distinct keys in first-encounter
   order. *)
let merge_sorted_runs ?tally part file runs =
  match runs with
  | [] -> []
  | _ ->
    let pulls =
      Array.of_list
        (List.map
           (fun (off, len) ->
             let cur = Spill.File.cursor ~off ~len file in
             fun () ->
               Option.map (decode_rec part) (Spill.File.next_frame cur))
           runs)
    in
    let out = ref [] in
    let cluster = ref [] in
    let flush_cluster () =
      let cs =
        List.sort (fun a b -> Int.compare a.c_first b.c_first) !cluster
      in
      out := List.rev_append cs !out;
      cluster := []
    in
    Spill.merge_runs
      ~cmp:(fun a b ->
        tick tally;
        cmp_rec a b)
      pulls
      (fun (_, c_first, key, members) ->
        Governor.tick ();
        (match !cluster with
         | c :: _ when Key.compare c.c_key key <> 0 -> flush_cluster ()
         | _ -> ());
        match
          List.find_opt
            (fun c ->
              tick tally;
              Key.equal c.c_key key)
            !cluster
        with
        | Some c -> c.rev_members <- List.rev_append members c.rev_members
        | None ->
          cluster :=
            { c_key = key; c_first; rev_members = List.rev members }
            :: !cluster);
    flush_cluster ();
    List.rev !out

(* Depth-cap fallback: batch the file into sorted runs and loser-tree
   merge them — insensitive to hash skew, so duplicate-heavy keys that
   defeat repartitioning still terminate. *)
let fallback_sorted ?tally part file =
  let runs_file = Spill.File.create () in
  Fun.protect
    ~finally:(fun () -> Spill.File.close runs_file)
    (fun () ->
      let threshold = part.pthreshold in
      let runs = ref [] in
      let batch = ref [] and batch_bytes = ref 0 in
      let buf = Buffer.create 1024 in
      let flush_run () =
        if !batch <> [] then begin
          (* [batch] is newest-first; restore decode order before the
             (stable) sort — chunks of one split cell compare equal and
             must stay in chunk order *)
          let recs = List.sort cmp_rec (List.rev !batch) in
          let start = Spill.File.pos runs_file in
          List.iter (write_rec part runs_file buf) recs;
          runs := (start, Spill.File.pos runs_file - start) :: !runs;
          (* the batch was transient: its decode charges go back now
             that the records are on disk again *)
          Governor.uncharge_bytes !batch_bytes;
          batch := [];
          batch_bytes := 0
        end
      in
      let cur = Spill.File.cursor file in
      let rec go () =
        match Spill.File.next_frame cur with
        | None -> ()
        | Some payload ->
          Governor.tick ();
          batch := decode_rec part payload :: !batch;
          batch_bytes := !batch_bytes + String.length payload;
          if !batch_bytes > threshold then flush_run ();
          go ()
      in
      go ();
      flush_run ();
      merge_sorted_runs ?tally part runs_file (List.rev !runs))

(* Replay a hash-mode spill file into cells: small files hash-merge in
   memory; large ones repartition by a depth-salted hash and recurse. *)
let rec replay_hash ?tally part file depth =
  let threshold = part.pthreshold in
  if Spill.File.bytes file > threshold && depth < max_repartition_depth then begin
    let subs = Array.init repartition_fanout (fun _ -> Spill.File.create ()) in
    Fun.protect
      ~finally:(fun () -> Array.iter Spill.File.close subs)
      (fun () ->
        let cur = Spill.File.cursor file in
        let rec go () =
          match Spill.File.next_frame cur with
          | None -> ()
          | Some payload ->
            Governor.tick ();
            let h =
              try Binio.get_varint (Binio.reader payload)
              with Binio.Corrupt m -> corrupt_trip m
            in
            let idx =
              Key.mix (Key.salt depth) h land max_int mod repartition_fanout
            in
            (* raw re-route: the frame bytes move unchanged *)
            Spill.File.write_frame subs.(idx) payload;
            go ()
        in
        go ();
        Governor.note_spill ~bytes:0 ~files:0 ~repartitions:1;
        Array.fold_left
          (fun acc sub -> List.rev_append (replay_hash ?tally part sub (depth + 1)) acc)
          [] subs)
  end
  else if Spill.File.bytes file > threshold then fallback_sorted ?tally part file
  else begin
    let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let cur = Spill.File.cursor file in
    let rec go () =
      match Spill.File.next_frame cur with
      | None -> ()
      | Some payload ->
        Governor.tick ();
        let h, c_first, key, members = decode_rec part payload in
        let bucket =
          match Hashtbl.find_opt table h with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.add table h b;
            b
        in
        (match
           List.find_opt
             (fun c ->
               tick tally;
               Key.equal c.c_key key)
             !bucket
         with
         | Some c -> c.rev_members <- List.rev_append members c.rev_members
         | None ->
           let cell = { c_key = key; c_first; rev_members = List.rev members } in
           bucket := cell :: !bucket;
           order := cell :: !order);
        go ()
    in
    go ();
    !order
  end

(* Merge phase for one partition; closes its files. *)
let ext_part_cells ?tally part =
  match part.pfile with
  | None ->
    (* never spilled: everything is still in the table *)
    let cells = Hashtbl.fold (fun _ b acc -> !b @ acc) part.ptable [] in
    Hashtbl.reset part.ptable;
    cells
  | Some file ->
    Fun.protect
      ~finally:(fun () -> Spill.File.close file)
      (fun () ->
        flush_part part;
        if part.sort_mode then
          merge_sorted_runs ?tally part file (List.rev part.runs)
        else replay_hash ?tally part file 0)

let group_ext ?tally ~codec ~sort_mode ~sorted_output ~hash_fn ~parallel
    ~parallel_keys ~keys_of tuples =
  let arr = Array.of_list tuples in
  let n = Array.length arr in
  let p = if n >= par_build_min then max 1 (min parallel n) else 1 in
  (* All [p] partitions replay concurrently in the merge phase, so each
     one's threshold is the watermark divided by [p]: their combined
     replay buffers stay within one watermark, which is exactly the
     headroom the CLI default leaves below the hard budget (watermark =
     budget / 2) — merge-phase growth cannot blow through the budget
     the flushes just averted. *)
  let threshold = max (Governor.spill_watermark () / p) 4096 in
  let parts = Array.init p (fun _ -> new_part ~codec ~sort_mode ~threshold) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun part ->
          match part.pfile with Some f -> Spill.File.close f | None -> ())
        parts)
    (fun () ->
      let base = ref 0 in
      while !base < n do
        let len = min ext_batch (n - !base) in
        let slice = Array.sub arr !base len in
        let keys =
          if parallel > 1 && parallel_keys then
            Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk
              (fun t -> Key.canonicalize (keys_of t))
              slice
          else if parallel > 1 then begin
            let ks = Array.map keys_of slice in
            Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk
              Key.canonicalize ks
          end
          else Array.map (fun t -> Key.canonicalize (keys_of t)) slice
        in
        let hashes = Array.map hash_fn keys in
        (* Under Gc-dominated pressure the estimate can sit above the
           watermark for the rest of the build, so the callback fires on
           every slow tick. Only flush once the table holds enough to be
           worth a frame, and collect right after so the freed keys and
           cells are actually reusable before the hard-budget check. *)
        let flush_floor = max 65536 (Governor.spill_watermark () / (16 * p)) in
        let pressure_flush j () =
          if parts.(j).live_charge >= flush_floor then begin
            flush_part parts.(j);
            Gc.full_major ()
          end
        in
        let insert_range j accept =
          Governor.with_pressure_callback (pressure_flush j)
            (fun () ->
              for i = 0 to len - 1 do
                if accept hashes.(i) then
                  ext_insert ?tally parts.(j) hashes.(i) keys.(i) slice.(i)
                    (!base + i)
              done)
        in
        if p = 1 then insert_range 0 (fun _ -> true)
        else
          Par.run_tasks
            (Array.init p (fun j ->
                 fun () -> insert_range j (fun h -> (h land max_int) mod p = j)));
        base := !base + len
      done;
      let per_part = Array.make p [] in
      if p = 1 then per_part.(0) <- ext_part_cells ?tally parts.(0)
      else
        Par.run_tasks
          (Array.init p (fun j ->
               fun () -> per_part.(j) <- ext_part_cells ?tally parts.(j)));
      let cells = List.concat (Array.to_list per_part) in
      let cells =
        if sort_mode && sorted_output then
          List.sort
            (fun a b ->
              let c = Key.compare a.c_key b.c_key in
              if c <> 0 then c else Int.compare a.c_first b.c_first)
            cells
        else List.sort (fun a b -> Int.compare a.c_first b.c_first) cells
      in
      Governor.count_groups (List.length cells);
      to_groups cells)

(* Spill only when the caller supplied a codec, the governor arms a
   watermark, and a spill directory is usable — otherwise warn once and
   keep the in-memory path's hard-trip behaviour. *)
let spill_active = function
  | None -> false
  | Some _ ->
    Governor.spill_armed ()
    &&
    if Spill.available () then true
    else begin
      Spill.warn_unavailable ();
      false
    end

(* --- strategies --------------------------------------------------------- *)

let hash_fn_of = function
  | None -> Key.hash
  | Some h -> fun k -> h (Key.originals k)

let group_hash ?hash ?tally ?spill ?(parallel = 1) ?(parallel_keys = false)
    ~keys_of tuples =
  if spill_active spill then
    group_ext ?tally
      ~codec:(Option.get spill)
      ~sort_mode:false ~sorted_output:false ~hash_fn:(hash_fn_of hash)
      ~parallel ~parallel_keys ~keys_of tuples
  else begin
    let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
    let hashes =
      match hash with
      | None -> Array.map (fun (k, _) -> Key.hash k) keyed
      | Some h -> Array.map (fun (k, _) -> h (Key.originals k)) keyed
    in
    to_groups (build ?tally ~parallel keyed hashes)
  end

let group_sort_mem ?tally ~sorted_output ~parallel ~parallel_keys ~keys_of
    tuples =
  let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
  let hashes = Array.map (fun (k, _) -> Key.hash k) keyed in
  let cells = build ?tally ~parallel keyed hashes in
  let cells =
    if not sorted_output then cells
    else begin
      (* Only the group representatives are sorted — g·log g canonical
         comparisons instead of PR 1's n·log n subtree-walking ones. The
         sort is stable and cells arrive in first-encounter order, so
         ties (distinct keys the preorder conflates) keep exactly the
         order the old sort-the-tuples implementation produced. *)
      let arr = Array.of_list cells in
      Par.sort ~degree:parallel ~min_chunk:par_sort_min_chunk
        (fun a b ->
          tick tally;
          Governor.tick ();
          Key.compare a.c_key b.c_key)
        arr;
      Array.to_list arr
    end
  in
  to_groups cells

let group_sort ?tally ?(sorted_output = false) ?spill ?(parallel = 1)
    ?(parallel_keys = false) ~keys_of tuples =
  if spill_active spill then
    group_ext ?tally
      ~codec:(Option.get spill)
      ~sort_mode:true ~sorted_output ~hash_fn:Key.hash ~parallel
      ~parallel_keys ~keys_of tuples
  else
    group_sort_mem ?tally ~sorted_output ~parallel ~parallel_keys ~keys_of
      tuples

let group_scan ?tally ?(parallel = 1) ?(parallel_keys = false) ~keys_of ~equal
    tuples =
  let keyed = canonicalized ~parallel ~parallel_keys ~keys_of tuples in
  let order = ref [] in
  Array.iter
    (fun ((key : Key.t), tuple) ->
      Governor.tick ();
      (* compare against each existing group's representative, one key
         position at a time, short-circuiting on the first mismatch
         (unequal arity can never match) *)
      let ks = key.Key.singles in
      let nk = Array.length ks in
      let same cell =
        let cs = cell.c_key.Key.singles in
        let nc = Array.length cs in
        let rec go i =
          if i >= nk && i >= nc then true
          else if i >= nk || i >= nc then false
          else begin
            tick tally;
            equal i ks.(i) cs.(i) && go (i + 1)
          end
        in
        go 0
      in
      match List.find_opt same !order with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        Governor.count_groups 1;
        order := { c_key = key; c_first = 0; rev_members = [ tuple ] } :: !order)
    keyed;
  (* !order is newest-first *)
  to_groups (List.rev !order)

(* --- raw key-list comparison (tests) ------------------------------------ *)

let compare_key_lists a b = Key.compare (Key.canonicalize a) (Key.canonicalize b)
