open Xq_xdm
module Par = Xq_par.Par
module Governor = Xq_governor.Governor

type 'a group = { keys : Xseq.t list; members : 'a list }

(* Parallelism thresholds: below these sizes a fork-join round costs more
   than it saves, so the sequential path runs even when a degree > 1 is
   requested. Deliberately low so small randomized test workloads still
   exercise the parallel code paths. *)
let par_keys_min_chunk = 16
let par_build_min = 32
let par_sort_min_chunk = 32

let hash_keys keys =
  List.fold_left
    (fun h k -> Key.mix h (Deep_equal.hash_sequence k))
    (Key.mix Key.hash_seed (List.length keys))
    keys

let tick = function Some r -> incr r | None -> ()

(* --- canonicalization --------------------------------------------------- *)

(* Inputs below this many tuples never intern keys in the dictionary —
   keeps the golden-explain corpus (and every other tiny query) free of
   dictionary state while large builds get int-code probes. *)
let dict_min_input = 256

(* Canonicalize one batch of tuples' key lists. Key evaluation runs on
   the pool only when the caller vouches it is thread-safe
   ([parallel_keys] — the evaluator checks the key expressions construct
   no nodes); canonicalization itself only reads the tree and always
   parallelizes. [fed] is how many tuples earlier batches contributed:
   once the input is provably ≥ [dict_min_input] and execution is
   batched, node keys intern to dictionary codes (raw and interned
   canons agree on hash/equality, so the mid-stream switch is sound). *)
let canonicalize_slice ~parallel ~parallel_keys ~keys_of ~fed slice =
  let run () =
    if parallel > 1 && parallel_keys then
      Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk
        (fun t -> Key.canonicalize (keys_of t))
        slice
    else if parallel > 1 then begin
      let keys = Array.map keys_of slice in
      Par.map ~degree:parallel ~min_chunk:par_keys_min_chunk Key.canonicalize
        keys
    end
    else Array.map (fun t -> Key.canonicalize (keys_of t)) slice
  in
  if Xq_par.Batch.batched () && fed + Array.length slice >= dict_min_input then
    Key.with_interning run
  else run ()

(* --- hash-based building ------------------------------------------------ *)

type 'a cell = {
  c_key : Key.t;
  c_first : int; (* input index of the first member — the group's rank *)
  mutable rev_members : 'a list;
}

let to_groups cells =
  List.map
    (fun c -> { keys = Key.originals c.c_key; members = List.rev c.rev_members })
    cells

(* --- reduce mode (eager aggregation) ------------------------------------ *)

(* With a [reduce] function every cell retains exactly one member — a
   running accumulator — and each insertion folds the new tuple into it
   ([f earlier later], earlier argument on the left, preserving input
   order). Spilled records then carry one encoded accumulator per
   group, so the external build's disk and live-heap footprint is
   O(groups) instead of O(members); the parallel partial merges move
   scalars, not member lists. *)

let add_member reduce cell tuple =
  match reduce, cell.rev_members with
  | Some f, acc :: _ -> cell.rev_members <- [ f acc tuple ]
  | _ -> cell.rev_members <- tuple :: cell.rev_members

(* Fold a replayed record's members (chronological order) into an
   existing cell — the spill-merge counterpart of [add_member]. *)
let merge_members reduce cell members =
  match reduce, cell.rev_members with
  | Some f, acc :: _ -> cell.rev_members <- [ List.fold_left f acc members ]
  | Some f, [] -> begin
    match members with
    | [] -> ()
    | m :: ms -> cell.rev_members <- [ List.fold_left f m ms ]
  end
  | None, _ -> cell.rev_members <- List.rev_append members cell.rev_members

(* First members of a fresh replayed cell (input: chronological order;
   stored: newest-first, or a single fold under reduce). *)
let initial_members reduce members =
  match reduce, members with
  | Some f, m :: ms -> [ List.fold_left f m ms ]
  | _ -> List.rev members

(* --- spill-to-disk external grouping ------------------------------------ *)

(* When the governor's soft watermark is armed and the caller supplies a
   tuple codec, hash and sort grouping run an external build instead of
   the in-memory one:

   - canonicalization is interleaved with insertion in batches, so the
     full array of canonical keys never has to exist at once;
   - each partition registers a pressure callback: when charged bytes
     cross the watermark, the triggering partition serializes its whole
     hash table to its spill file as framed cells (key + first-member
     index + members) and returns the bytes to the budget;
   - hash grouping replays spill files through a fresh table, first
     recursively repartitioning any file larger than its replay
     threshold (the watermark divided by the partition count) by a
     depth-salted hash (a bounded number of times — duplicate-heavy
     keys collide at every salt, so at the depth cap the file is
     finished with sorted runs instead);
   - sort grouping flushes sorted runs and merges them with a loser
     tree, combining [Key.equal] cells within compare-equal clusters.

   Output is byte-identical to the in-memory path at any watermark and
   parallel degree: a key flushed and re-encountered simply yields two
   cells that the merge recombines — members concatenate in flush
   (= input) order and the merged first-member index is the original
   first encounter — and the final cell order is recomputed from
   first-member indices exactly as the parallel in-memory merge does. *)

module Spill = Xq_spill.Spill

type 'a codec = {
  enc : Binio.node_registry -> Buffer.t -> 'a -> unit;
  dec : Binio.node_registry -> Binio.reader -> 'a;
}

(* Approximate live-heap bookkeeping costs, charged per insert and
   returned on flush; canonical-key bytes are already charged by
   [Key.canonicalize] and returned when the key is dropped. *)
let member_cost = 24
let cell_cost = 96

let ext_batch = 2048
let repartition_fanout = 4
let max_repartition_depth = 4

type 'a part = {
  ptable : (int, 'a cell list ref) Hashtbl.t;
  mutable live_charge : int;  (* bytes to return on flush *)
  mutable pfile : Spill.File.t option;
  mutable runs : (int * int) list;  (* sort mode: (off, len), newest first *)
  reg : Binio.node_registry;
  pcodec : 'a codec;
  preduce : ('a -> 'a -> 'a) option;
  sort_mode : bool;
  pthreshold : int;
      (* replay/repartition threshold: a file no larger than this
         replays straight into a table, bigger ones repartition (or
         batch into sorted runs of this size). Sized to
         watermark / #partitions so all partitions replaying at once
         stay within one watermark of serialized state. *)
}

let new_part ~codec ~reduce ~sort_mode ~threshold =
  {
    ptable = Hashtbl.create 64;
    live_charge = 0;
    pfile = None;
    runs = [];
    (* streamed queries spill detached subtrees by value so the flush
       actually releases their memory; see Binio and Governor *)
    reg = Binio.registry ~detach:(Governor.stream_detach ()) ();
    pcodec = codec;
    preduce = reduce;
    sort_mode;
    pthreshold = threshold;
  }

let corrupt_trip m = Governor.spill_trip ("spill decode failed: " ^ m)

(* Frame payload: bucket hash (the build's, override included), first
   index, canonical key, members in input order. A record whose member
   list would exceed [frame_cap] splits greedily across several frames
   repeating the same (hash, first, key) prefix: flush then allocates
   one bounded buffer instead of a hot key's full serialized size (and
   can never overflow the u32 frame length). Replay recombines
   [Key.equal] cells preserving member order, so the split is invisible
   in the output. *)
let frame_cap part = max 4096 (part.pthreshold / 4)

let write_rec part file buf (h, c_first, key, members) =
  let cap = frame_cap part in
  Buffer.clear buf;
  Binio.put_varint buf h;
  Binio.put_varint buf c_first;
  Key.encode part.reg buf key;
  let prefix = Buffer.contents buf in
  let scratch = Buffer.create 256 in
  let emit chunk_rev n =
    Buffer.clear buf;
    Buffer.add_string buf prefix;
    Binio.put_varint buf n;
    List.iter (Buffer.add_string buf) (List.rev chunk_rev);
    Spill.File.write_frame file (Buffer.contents buf)
  in
  let rec go chunk_rev n bytes = function
    | [] -> emit chunk_rev n
    | m :: ms ->
      Buffer.clear scratch;
      part.pcodec.enc part.reg scratch m;
      let s = Buffer.contents scratch in
      if n > 0 && bytes + String.length s > cap then begin
        emit chunk_rev n;
        go [ s ] 1 (String.length s) ms
      end
      else go (s :: chunk_rev) (n + 1) (bytes + String.length s) ms
  in
  go [] 0 0 members

let decode_rec part payload =
  let r =
    try
      let r = Binio.reader payload in
      let h = Binio.get_varint r in
      let c_first = Binio.get_varint r in
      let key = Key.decode part.reg r in
      let nm = Binio.get_varint r in
      if nm < 0 then raise (Binio.Corrupt "negative member count");
      let members = List.init nm (fun _ -> part.pcodec.dec part.reg r) in
      (h, c_first, key, members)
    with Binio.Corrupt m -> corrupt_trip m
  in
  (* Decoded bytes count against the budget like any other
     materialization: replayed cells are live output (the sorted
     fallback's transient batches are returned when each run is
     written back out), so the hard check sees merge-phase growth
     instead of waiting for a Gc-delta slow tick. *)
  Governor.charge_bytes (String.length payload);
  r

let cmp_rec (_, f1, k1, _) (_, f2, k2, _) =
  let c = Key.compare k1 k2 in
  if c <> 0 then c else Int.compare f1 f2

let ensure_file part =
  match part.pfile with
  | Some f -> f
  | None ->
    let f = Spill.File.create () in
    part.pfile <- Some f;
    f

(* Serialize the partition's whole table and reset it — the pressure
   callback. In sort mode the cells go out as one sorted run. *)
let flush_part part =
  if Hashtbl.length part.ptable > 0 then begin
    let file = ensure_file part in
    let recs =
      Hashtbl.fold
        (fun h b acc ->
          List.fold_left
            (fun acc c -> (h, c.c_first, c.c_key, List.rev c.rev_members) :: acc)
            acc !b)
        part.ptable []
    in
    let recs = if part.sort_mode then List.sort cmp_rec recs else recs in
    let start = Spill.File.pos file in
    let buf = Buffer.create 1024 in
    List.iter (write_rec part file buf) recs;
    if part.sort_mode then
      part.runs <- (start, Spill.File.pos file - start) :: part.runs;
    Hashtbl.reset part.ptable;
    Governor.uncharge_bytes part.live_charge;
    part.live_charge <- 0
  end

let ext_insert ?tally ~cost part h key tuple gi =
  Governor.tick ();
  let bucket =
    match Hashtbl.find_opt part.ptable h with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add part.ptable h b;
      b
  in
  match
    List.find_opt
      (fun cell ->
        tick tally;
        Key.equal cell.c_key key)
      !bucket
  with
  | Some cell ->
    add_member part.preduce cell tuple;
    (* the probe key is garbage now; swap its bytes for one cons *)
    Governor.uncharge_bytes (Key.charged_bytes key);
    (* reduce mode: the fold replaces the retained member, so live
       charge stays O(groups) — nothing new is pinned *)
    if part.preduce = None then begin
      let mc = cost tuple in
      part.live_charge <- part.live_charge + mc;
      Governor.charge_bytes mc
    end
  | None ->
    let cell = { c_key = key; c_first = gi; rev_members = [ tuple ] } in
    bucket := cell :: !bucket;
    let add = cell_cost + cost tuple in
    part.live_charge <- part.live_charge + add + Key.charged_bytes key;
    Governor.charge_bytes add

(* k-way merge of sorted runs, recombining [Key.equal] cells inside
   each compare-equal cluster (the preorder conflates some distinct
   keys, so equality must be re-checked). Emits cells in (key, first)
   order; clusters flush their distinct keys in first-encounter
   order. *)
let merge_sorted_runs ?tally part file runs =
  match runs with
  | [] -> []
  | _ ->
    let pulls =
      Array.of_list
        (List.map
           (fun (off, len) ->
             let cur = Spill.File.cursor ~off ~len file in
             fun () ->
               Option.map (decode_rec part) (Spill.File.next_frame cur))
           runs)
    in
    let out = ref [] in
    let cluster = ref [] in
    let flush_cluster () =
      let cs =
        List.sort (fun a b -> Int.compare a.c_first b.c_first) !cluster
      in
      out := List.rev_append cs !out;
      cluster := []
    in
    Spill.merge_runs
      ~cmp:(fun a b ->
        tick tally;
        cmp_rec a b)
      pulls
      (fun (_, c_first, key, members) ->
        Governor.tick ();
        (match !cluster with
         | c :: _ when Key.compare c.c_key key <> 0 -> flush_cluster ()
         | _ -> ());
        match
          List.find_opt
            (fun c ->
              tick tally;
              Key.equal c.c_key key)
            !cluster
        with
        | Some c -> merge_members part.preduce c members
        | None ->
          cluster :=
            { c_key = key; c_first;
              rev_members = initial_members part.preduce members }
            :: !cluster);
    flush_cluster ();
    List.rev !out

(* Depth-cap fallback: batch the file into sorted runs and loser-tree
   merge them — insensitive to hash skew, so duplicate-heavy keys that
   defeat repartitioning still terminate. *)
let fallback_sorted ?tally part file =
  let runs_file = Spill.File.create () in
  Fun.protect
    ~finally:(fun () -> Spill.File.close runs_file)
    (fun () ->
      let threshold = part.pthreshold in
      let runs = ref [] in
      let batch = ref [] and batch_bytes = ref 0 in
      let buf = Buffer.create 1024 in
      let flush_run () =
        if !batch <> [] then begin
          (* [batch] is newest-first; restore decode order before the
             (stable) sort — chunks of one split cell compare equal and
             must stay in chunk order *)
          let recs = List.sort cmp_rec (List.rev !batch) in
          let start = Spill.File.pos runs_file in
          List.iter (write_rec part runs_file buf) recs;
          runs := (start, Spill.File.pos runs_file - start) :: !runs;
          (* the batch was transient: its decode charges go back now
             that the records are on disk again *)
          Governor.uncharge_bytes !batch_bytes;
          batch := [];
          batch_bytes := 0
        end
      in
      let cur = Spill.File.cursor file in
      let rec go () =
        match Spill.File.next_frame cur with
        | None -> ()
        | Some payload ->
          Governor.tick ();
          batch := decode_rec part payload :: !batch;
          batch_bytes := !batch_bytes + String.length payload;
          if !batch_bytes > threshold then flush_run ();
          go ()
      in
      go ();
      flush_run ();
      merge_sorted_runs ?tally part runs_file (List.rev !runs))

(* Replay a hash-mode spill file into cells: small files hash-merge in
   memory; large ones repartition by a depth-salted hash and recurse. *)
let rec replay_hash ?tally part file depth =
  let threshold = part.pthreshold in
  if Spill.File.bytes file > threshold && depth < max_repartition_depth then begin
    let subs = Array.init repartition_fanout (fun _ -> Spill.File.create ()) in
    Fun.protect
      ~finally:(fun () -> Array.iter Spill.File.close subs)
      (fun () ->
        let cur = Spill.File.cursor file in
        let rec go () =
          match Spill.File.next_frame cur with
          | None -> ()
          | Some payload ->
            Governor.tick ();
            let h =
              try Binio.get_varint (Binio.reader payload)
              with Binio.Corrupt m -> corrupt_trip m
            in
            let idx =
              Key.mix (Key.salt depth) h land max_int mod repartition_fanout
            in
            (* raw re-route: the frame bytes move unchanged *)
            Spill.File.write_frame subs.(idx) payload;
            go ()
        in
        go ();
        Governor.note_spill ~bytes:0 ~files:0 ~repartitions:1;
        Array.fold_left
          (fun acc sub -> List.rev_append (replay_hash ?tally part sub (depth + 1)) acc)
          [] subs)
  end
  else if Spill.File.bytes file > threshold then fallback_sorted ?tally part file
  else begin
    let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let cur = Spill.File.cursor file in
    let rec go () =
      match Spill.File.next_frame cur with
      | None -> ()
      | Some payload ->
        Governor.tick ();
        let h, c_first, key, members = decode_rec part payload in
        let bucket =
          match Hashtbl.find_opt table h with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.add table h b;
            b
        in
        (match
           List.find_opt
             (fun c ->
               tick tally;
               Key.equal c.c_key key)
             !bucket
         with
         | Some c -> merge_members part.preduce c members
         | None ->
           let cell =
             { c_key = key; c_first;
               rev_members = initial_members part.preduce members }
           in
           bucket := cell :: !bucket;
           order := cell :: !order);
        go ()
    in
    go ();
    !order
  end

(* Merge phase for one partition; closes its files. *)
let ext_part_cells ?tally part =
  match part.pfile with
  | None ->
    (* never spilled: everything is still in the table *)
    let cells = Hashtbl.fold (fun _ b acc -> !b @ acc) part.ptable [] in
    Hashtbl.reset part.ptable;
    cells
  | Some file ->
    Fun.protect
      ~finally:(fun () -> Spill.File.close file)
      (fun () ->
        flush_part part;
        if part.sort_mode then
          merge_sorted_runs ?tally part file (List.rev part.runs)
        else replay_hash ?tally part file 0)

(* Spill only when the caller supplied a codec, the governor arms a
   watermark, and a spill directory is usable — otherwise warn once and
   keep the in-memory path's hard-trip behaviour. *)
let spill_active = function
  | None -> false
  | Some _ ->
    Governor.spill_armed ()
    &&
    if Spill.available () then true
    else begin
      Spill.warn_unavailable ();
      false
    end

(* --- incremental builder ------------------------------------------------- *)

(* The batched executor feeds tuples a vector at a time; each strategy is
   an accumulator created once per group operator. The one-shot
   [group_hash]/[group_sort]/[group_scan] entry points below are thin
   wrappers that chunk a list through a builder at [Batch.size ()].

   The in-memory hash build is hash-partitioned at creation time: [p]
   tables, table [j] owning the keys whose hash is ≡ j (mod p). Equal
   keys always land in one partition, so each partition's table sees
   exactly the probes a sequential build would have made for those
   tuples — the summed tally is identical at any degree — and the merged
   group order (ascending first-member index) is the sequential
   first-encounter order. Below [par_build_min] tuples a feed runs the
   partition loops inline instead of forking tasks. *)

type 'a mem_state = {
  m_p : int;
  m_tables : (int, 'a cell list ref) Hashtbl.t array;
  m_orders : 'a cell list ref array; (* newest-first per partition *)
  m_hash_fn : Key.t -> int;
  m_sort_mode : bool;
  m_sorted_output : bool;
}

type 'a ext_state = {
  e_p : int;
  e_parts : 'a part array;
  e_hash_fn : Key.t -> int;
  e_sort_mode : bool;
  e_sorted_output : bool;
}

type 'a scan_state = {
  s_equal : int -> Key.single -> Key.single -> bool;
  mutable s_rev_cells : 'a cell list; (* newest-first *)
}

type 'a impl =
  | Mem of 'a mem_state
  | Ext of 'a ext_state
  | Scan of 'a scan_state

type 'a builder = {
  impl : 'a impl;
  b_tally : int ref option;
  b_parallel : int;
  b_parallel_keys : bool;
  b_keys_of : 'a -> Xseq.t list;
  b_reduce : ('a -> 'a -> 'a) option;
      (* eager aggregation: fold members per group instead of retaining
         them (see the reduce-mode helpers above) *)
  b_cost : 'a -> int;
      (* live-heap bytes a retained member pins beyond the bookkeeping
         constant; flush accounting is only as honest as this estimate *)
  mutable b_fed : int; (* global input index of the next tuple *)
  mutable b_feeding : bool;
      (* a feed is in flight: pool domains may be mutating partitions,
         so [relieve] must not touch them *)
}

let hash_fn_of = function
  | None -> Key.hash
  | Some h -> fun k -> h (Key.originals k)

(* How many groups an in-memory table is presized for: capped so a wild
   estimate cannot allocate an absurd bucket array, floored at the
   default so a low one costs nothing. *)
let presize_slots ~p est = max 64 (min ((est / p) + 1) 65536)

let builder ?hash ?tally ?spill ?presize ?cost ?reduce ?(parallel = 1)
    ?(parallel_keys = false) ~mode ~keys_of () =
  let parallel = max 1 parallel in
  let impl =
    match mode with
    | `Scan equal -> Scan { s_equal = equal; s_rev_cells = [] }
    | (`Hash | `Sort _) as m ->
      let sort_mode, sorted_output =
        match m with `Hash -> (false, false) | `Sort so -> (true, so)
      in
      let hash_fn =
        match m with `Hash -> hash_fn_of hash | `Sort _ -> Key.hash
      in
      if spill_active spill then begin
        (* All [p] partitions replay concurrently in the merge phase, so
           each one's threshold is the watermark divided by [p]: their
           combined replay buffers stay within one watermark, which is
           exactly the headroom the CLI default leaves below the hard
           budget (watermark = budget / 2) — merge-phase growth cannot
           blow through the budget the flushes just averted. *)
        let p = parallel in
        let threshold = max (Governor.spill_watermark () / p) 4096 in
        let codec = Option.get spill in
        Ext
          {
            e_p = p;
            e_parts =
              Array.init p (fun _ ->
                  new_part ~codec ~reduce ~sort_mode ~threshold);
            e_hash_fn = hash_fn;
            e_sort_mode = sort_mode;
            e_sorted_output = sorted_output;
          }
      end
      else begin
        let p = parallel in
        let slots =
          match presize with
          | Some est when est > 0 -> presize_slots ~p est
          | _ -> 64
        in
        Mem
          {
            m_p = p;
            m_tables = Array.init p (fun _ -> Hashtbl.create slots);
            m_orders = Array.init p (fun _ -> ref []);
            m_hash_fn = hash_fn;
            m_sort_mode = sort_mode;
            m_sorted_output = sorted_output;
          }
      end
  in
  {
    impl;
    b_tally = tally;
    b_parallel = parallel;
    b_parallel_keys = parallel_keys;
    b_keys_of = keys_of;
    b_reduce = reduce;
    b_cost = (match cost with Some f -> f | None -> fun _ -> member_cost);
    b_fed = 0;
    b_feeding = false;
  }

let canonicalize_batch b slice =
  canonicalize_slice ~parallel:b.b_parallel ~parallel_keys:b.b_parallel_keys
    ~keys_of:b.b_keys_of ~fed:b.b_fed slice

(* One probe loop over the slice indices partition [j] accepts. The
   governor is ticked at batch granularity (every 64 accepted tuples),
   not per tuple — amortizing the slow-tick bookkeeping is part of what
   batching buys. *)
let mem_insert m reduce tally slice keys hashes base j =
  let p = m.m_p in
  let table = m.m_tables.(j) and order = m.m_orders.(j) in
  let n = Array.length slice in
  let accepted = ref 0 in
  for i = 0 to n - 1 do
    let h = hashes.(i) in
    if p = 1 || (h land max_int) mod p = j then begin
      if !accepted land 63 = 0 then Governor.tick ();
      incr accepted;
      let key = keys.(i) in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      match
        List.find_opt
          (fun cell ->
            tick tally;
            Key.equal cell.c_key key)
          !bucket
      with
      | Some cell -> add_member reduce cell slice.(i)
      | None ->
        Governor.count_groups 1;
        let cell = { c_key = key; c_first = base + i; rev_members = [ slice.(i) ] } in
        bucket := cell :: !bucket;
        order := cell :: !order
    end
  done

let feed_mem b m slice =
  let keys = canonicalize_batch b slice in
  let hashes = Array.map m.m_hash_fn keys in
  let base = b.b_fed in
  let n = Array.length slice in
  if m.m_p = 1 || n < par_build_min then
    for j = 0 to m.m_p - 1 do
      mem_insert m b.b_reduce b.b_tally slice keys hashes base j
    done
  else begin
    let tallies = Array.make m.m_p 0 in
    Par.run_tasks
      (Array.init m.m_p (fun j ->
           fun () ->
             let t = ref 0 in
             mem_insert m b.b_reduce (Some t) slice keys hashes base j;
             tallies.(j) <- !t));
    match b.b_tally with
    | Some r -> r := !r + Array.fold_left ( + ) 0 tallies
    | None -> ()
  end;
  b.b_fed <- base + n

let ext_close_files e =
  Array.iter
    (fun part ->
      match part.pfile with Some f -> Spill.File.close f | None -> ())
    e.e_parts

let feed_ext b e slice =
  try
    let p = e.e_p in
    let n = Array.length slice in
    (* sub-slice at [ext_batch] so canonical keys for at most one small
       window exist before their tuples are inserted (and flushable) *)
    let off = ref 0 in
    while !off < n do
      let len = min ext_batch (n - !off) in
      let sub = if !off = 0 && len = n then slice else Array.sub slice !off len in
      let keys = canonicalize_batch b sub in
      let hashes = Array.map e.e_hash_fn keys in
      let base = b.b_fed in
      (* Under Gc-dominated pressure the estimate can sit above the
         watermark for the rest of the build, so the callback fires on
         every slow tick. Only flush once the table holds enough to be
         worth a frame, and collect right after so the freed keys and
         cells are actually reusable before the hard-budget check. *)
      let flush_floor = max 65536 (Governor.spill_watermark () / (16 * p)) in
      let pressure_flush j () =
        if e.e_parts.(j).live_charge >= flush_floor then begin
          flush_part e.e_parts.(j);
          Gc.full_major ()
        end
      in
      let insert_range j accept =
        Governor.with_pressure_callback (pressure_flush j)
          (fun () ->
            for i = 0 to len - 1 do
              if accept hashes.(i) then
                ext_insert ?tally:b.b_tally ~cost:b.b_cost e.e_parts.(j)
                  hashes.(i) keys.(i) sub.(i) (base + i)
            done)
      in
      if p = 1 then insert_range 0 (fun _ -> true)
      else
        Par.run_tasks
          (Array.init p (fun j ->
               fun () -> insert_range j (fun h -> (h land max_int) mod p = j)));
      b.b_fed <- base + len;
      off := !off + len
    done
  with exn ->
    ext_close_files e;
    raise exn

let finish_ext b e =
  Fun.protect
    ~finally:(fun () -> ext_close_files e)
    (fun () ->
      let p = e.e_p in
      let per_part = Array.make p [] in
      if p = 1 then per_part.(0) <- ext_part_cells ?tally:b.b_tally e.e_parts.(0)
      else
        Par.run_tasks
          (Array.init p (fun j ->
               fun () ->
                 per_part.(j) <- ext_part_cells ?tally:b.b_tally e.e_parts.(j)));
      let cells = List.concat (Array.to_list per_part) in
      let cells =
        if e.e_sort_mode && e.e_sorted_output then
          List.sort
            (fun a b ->
              let c = Key.compare a.c_key b.c_key in
              if c <> 0 then c else Int.compare a.c_first b.c_first)
            cells
        else List.sort (fun a b -> Int.compare a.c_first b.c_first) cells
      in
      Governor.count_groups (List.length cells);
      to_groups cells)

let feed_scan b s slice =
  let keys = canonicalize_batch b slice in
  Array.iteri
    (fun i (key : Key.t) ->
      Governor.tick ();
      let tuple = slice.(i) in
      (* compare against each existing group's representative, one key
         position at a time, short-circuiting on the first mismatch
         (unequal arity can never match) *)
      let ks = key.Key.singles in
      let nk = Array.length ks in
      let same cell =
        let cs = cell.c_key.Key.singles in
        let nc = Array.length cs in
        let rec go i =
          if i >= nk && i >= nc then true
          else if i >= nk || i >= nc then false
          else begin
            tick b.b_tally;
            s.s_equal i ks.(i) cs.(i) && go (i + 1)
          end
        in
        go 0
      in
      match List.find_opt same s.s_rev_cells with
      | Some cell -> add_member b.b_reduce cell tuple
      | None ->
        Governor.count_groups 1;
        s.s_rev_cells <-
          { c_key = key; c_first = 0; rev_members = [ tuple ] }
          :: s.s_rev_cells)
    keys;
  b.b_fed <- b.b_fed + Array.length slice

let feed b slice =
  if Array.length slice > 0 then begin
    b.b_feeding <- true;
    Fun.protect
      ~finally:(fun () -> b.b_feeding <- false)
      (fun () ->
        match b.impl with
        | Mem m -> feed_mem b m slice
        | Ext e -> feed_ext b e slice
        | Scan s -> feed_scan b s slice)
  end

(* Shed flushable external state from outside a feed window. Feeds
   register their own per-partition pressure callbacks, but those only
   cover the short insert windows; for a streamed scan nearly every
   governor tick lands in the parser, where the builder's retained
   members would otherwise just sit and grow until the hard trip. The
   executor's scan-side pressure callback calls this between vectors.
   No-op while a feed is in flight (pool domains may be mutating
   partitions) and for in-memory/scan builds, which have nothing to
   shed. *)
let relieve b =
  match b.impl with
  | Ext e when not b.b_feeding ->
    let floor = max 65536 (Governor.spill_watermark () / (16 * e.e_p)) in
    let shed = ref false in
    Array.iter
      (fun part ->
        if part.live_charge >= floor then begin
          flush_part part;
          shed := true
        end)
      e.e_parts;
    if !shed then Gc.full_major ()
  | Ext _ | Mem _ | Scan _ -> ()

let finish_mem b m =
  let cells =
    if m.m_p = 1 then List.rev !(m.m_orders.(0))
    else
      List.sort
        (fun a b -> Int.compare a.c_first b.c_first)
        (List.concat (Array.to_list (Array.map ( ! ) m.m_orders)))
  in
  let cells =
    if not (m.m_sort_mode && m.m_sorted_output) then cells
    else begin
      (* Only the group representatives are sorted — g·log g canonical
         comparisons instead of PR 1's n·log n subtree-walking ones. The
         sort is stable and cells arrive in first-encounter order, so
         ties (distinct keys the preorder conflates) keep exactly the
         order the old sort-the-tuples implementation produced. *)
      let arr = Array.of_list cells in
      Par.sort ~degree:b.b_parallel ~min_chunk:par_sort_min_chunk
        (fun x y ->
          tick b.b_tally;
          Governor.tick ();
          Key.compare x.c_key y.c_key)
        arr;
      Array.to_list arr
    end
  in
  to_groups cells

let finish b =
  match b.impl with
  | Mem m -> finish_mem b m
  | Ext e -> finish_ext b e
  | Scan s -> to_groups (List.rev s.s_rev_cells)

(* --- one-shot strategy entry points ------------------------------------- *)

let run_batched bld tuples =
  let arr = Array.of_list tuples in
  let n = Array.length arr in
  let bs = Xq_par.Batch.size () in
  if bs >= n then feed bld arr
  else begin
    let base = ref 0 in
    while !base < n do
      let len = min bs (n - !base) in
      feed bld (Array.sub arr !base len);
      base := !base + len
    done
  end;
  finish bld

let group_hash ?hash ?tally ?spill ?presize ?(parallel = 1)
    ?(parallel_keys = false) ~keys_of tuples =
  run_batched
    (builder ?hash ?tally ?spill ?presize ~parallel ~parallel_keys ~mode:`Hash
       ~keys_of ())
    tuples

let group_sort ?tally ?(sorted_output = false) ?spill ?presize ?(parallel = 1)
    ?(parallel_keys = false) ~keys_of tuples =
  run_batched
    (builder ?tally ?spill ?presize ~parallel ~parallel_keys
       ~mode:(`Sort sorted_output) ~keys_of ())
    tuples

let group_scan ?tally ?(parallel = 1) ?(parallel_keys = false) ~keys_of ~equal
    tuples =
  run_batched
    (builder ?tally ~parallel ~parallel_keys ~mode:(`Scan equal) ~keys_of ())
    tuples

(* --- raw key-list comparison (tests) ------------------------------------ *)

let compare_key_lists a b = Key.compare (Key.canonicalize a) (Key.canonicalize b)
