open Xq_xdm

(* Canonical grouping keys.

   Grouping compares each tuple's key list against many others — with
   deep-equal semantics, and (for the sort strategy) under a total
   preorder consistent with deep-equal. Both used to re-walk key node
   subtrees on every single comparison. A canonical key walks each node
   exactly once, producing:

   - [fp]: a fingerprint string that characterizes the node's
     deep-equal class exactly — two nodes are [Deep_equal.nodes]-equal
     iff their fingerprints are equal strings. The encoding is an
     injective, length-prefixed serialization of precisely the features
     deep-equal inspects (kinds, element/attribute names via
     [Xname.equal], attributes as the same sorted [(to_string, value)]
     pairs [Deep_equal.attrs_equal] compares, text content, and
     significant children only — comments and PIs inside element content
     are skipped, mirroring [Deep_equal.significant_children]).
   - [sv]: the node's string value, memoized so the sort strategy's
     order (nodes order by string value, exactly as before) costs a
     string compare instead of a subtree walk.

   Atomic items stay as themselves: [Atomic.deep_eq] is already O(1),
   and large integers must keep exact 63-bit comparison semantics. *)

type canon =
  | CAtom of Atomic.t
  | CNode of { fp : string; sv : string }
  | CCode of int

type single = { orig : Xseq.t; items : canon array; h : int }

type t = { singles : single array; hash : int }

(* --- key dictionary ----------------------------------------------------- *)

(* Interns node fingerprints so grouping hashes/compares a small int code
   instead of a fingerprint string. The table is process-wide and
   append-only (codes stay valid for the lifetime of spill frames that
   carry them); interning is *scoped* per query via [with_interning], so
   small inputs and the golden-explain corpus never see codes. A code's
   hash is memoized as [Hashtbl.hash fp] — identical to the raw [CNode]
   hash — so interned and raw canons of the same node class agree on
   hash and equality even when both appear in one build. *)
module Dict = struct
  type entry = { e_fp : string; e_sv : string; e_hash : int }

  let dummy = { e_fp = ""; e_sv = ""; e_hash = 0 }
  let cap = 1 lsl 20
  let lock = Mutex.create ()
  let table : (string, int) Hashtbl.t = Hashtbl.create 1024 (* guarded by [lock] *)

  (* Lock-free reader side: [entries] is swapped to a grown copy *before*
     [count] is bumped, so any reader that observes [count = n] observes
     an array with at least [n] valid slots. *)
  let entries = Stdlib.Atomic.make ([||] : entry array)
  let count = Stdlib.Atomic.make 0
  let interns = Stdlib.Atomic.make 0

  let size () = Stdlib.Atomic.get count

  let get code =
    let n = Stdlib.Atomic.get count in
    if code < 0 || code >= n then
      invalid_arg (Printf.sprintf "Key.Dict.get: stale code %d (size %d)" code n)
    else (Stdlib.Atomic.get entries).(code)

  (* [Some (code, fresh)] or [None] once the table is full. *)
  let intern fp sv =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table fp with
        | Some c -> Some (c, false)
        | None ->
          let n = Stdlib.Atomic.get count in
          if n >= cap then None
          else begin
            let arr = Stdlib.Atomic.get entries in
            let arr =
              if n >= Array.length arr then begin
                let grown = Array.make (max 1024 (2 * Array.length arr)) dummy in
                Array.blit arr 0 grown 0 n;
                Stdlib.Atomic.set entries grown;
                grown
              end
              else arr
            in
            arr.(n) <- { e_fp = fp; e_sv = sv; e_hash = Hashtbl.hash fp };
            Stdlib.Atomic.set count (n + 1);
            Hashtbl.replace table fp n;
            Some (n, true)
          end)

  let reset () =
    Mutex.protect lock (fun () ->
        Hashtbl.reset table;
        Stdlib.Atomic.set count 0;
        Stdlib.Atomic.set entries [||];
        Stdlib.Atomic.set interns 0)
end

(* What one interned code charges to the memory budget in place of its
   fingerprint + string-value bytes (the strings themselves stay charged
   once, by whichever canonicalization first interned them). *)
let code_cost = 16

let scope_depth = Stdlib.Atomic.make 0

let interning_available =
  Stdlib.Atomic.make
    (match Sys.getenv_opt "XQ_DICT" with
     | Some ("0" | "off" | "OFF") -> false
     | _ -> true)

let set_interning_available b = Stdlib.Atomic.set interning_available b

let interning_on () =
  Stdlib.Atomic.get interning_available && Stdlib.Atomic.get scope_depth > 0

let with_interning f =
  Stdlib.Atomic.incr scope_depth;
  Fun.protect ~finally:(fun () -> Stdlib.Atomic.decr scope_depth) f

let intern_count () = Stdlib.Atomic.get Dict.interns
let dict_size () = Dict.size ()
let dict_lookup code = try Some ((Dict.get code).e_fp, (Dict.get code).e_sv) with Invalid_argument _ -> None
let reset_dict () = Dict.reset ()

(* --- instrumentation: how many node subtrees were materialized -------- *)

let walks = Stdlib.Atomic.make 0
let walk_count () = Stdlib.Atomic.get walks
let reset_walk_count () = Stdlib.Atomic.set walks 0

(* --- hashing ----------------------------------------------------------- *)

(* FNV-1a-style fold mixer: every ingredient influences the result, so
   wide key lists cannot degenerate the way a single [Hashtbl.hash] over
   a long list does (it samples a bounded number of nodes). *)
let hash_seed = 0x811c9dc5
let mix h x = (h * 0x01000193) lxor x

(* --- node fingerprints ------------------------------------------------- *)

let add_field buf tag s =
  Buffer.add_char buf tag;
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let fingerprint n0 =
  Xq_governor.Governor.tick ();
  Stdlib.Atomic.incr walks;
  let fb = Buffer.create 64 and sb = Buffer.create 32 in
  let add_name fb n =
    (match n.Xname.prefix with
     | None -> Buffer.add_char fb 'n'
     | Some p -> add_field fb 'p' p);
    add_field fb 'l' n.Xname.local
  in
  (* deep-equal compares attributes as sorted (Xname.to_string, value)
     pairs — reproduce that exact keying, quirks included *)
  let attr_entries n =
    List.sort compare
      (List.map
         (fun a ->
           ( (match Node.name a with
              | Some nm -> Xname.to_string nm
              | None -> ""),
             Node.attribute_value a ))
         (Node.attributes n))
  in
  let rec go n =
    match Node.kind n with
    | Node.Document ->
      Buffer.add_char fb 'D';
      children n
    | Node.Element ->
      Buffer.add_char fb 'E';
      (match Node.name n with Some nm -> add_name fb nm | None -> ());
      List.iter
        (fun (k, v) ->
          add_field fb 'a' k;
          add_field fb 'v' v)
        (attr_entries n);
      children n
    | Node.Text ->
      let t = Node.text_content n in
      add_field fb 'T' t;
      Buffer.add_string sb t
    | Node.Comment -> add_field fb 'C' (Node.comment_text n)
    | Node.Pi ->
      add_field fb 'P' (Node.pi_target n);
      add_field fb 'd' (Node.pi_data n)
    | Node.Attribute ->
      (match Node.name n with Some nm -> add_name fb nm | None -> ());
      add_field fb 'A' (Node.attribute_value n)
  and children n =
    Buffer.add_char fb '(';
    List.iter
      (fun c ->
        match Node.kind c with
        | Node.Comment | Node.Pi -> () (* insignificant for deep-equal *)
        | Node.Document | Node.Element | Node.Attribute | Node.Text -> go c)
      (Node.children n);
    Buffer.add_char fb ')'
  in
  go n0;
  let sv =
    match Node.kind n0 with
    | Node.Attribute -> Node.attribute_value n0
    | Node.Comment -> Node.comment_text n0
    | Node.Pi -> Node.pi_data n0
    | Node.Document | Node.Element | Node.Text -> Buffer.contents sb
  in
  let fp = Buffer.contents fb in
  (* canonical keys are materialized state the Gc delta may lag behind;
     count them against the memory budget directly *)
  Xq_governor.Governor.charge_bytes (String.length fp + String.length sv);
  (fp, sv)

(* --- canonicalization --------------------------------------------------- *)

let canon_of_item = function
  | Item.Atomic a -> CAtom a
  | Item.Node n ->
    let fp, sv = fingerprint n in
    if interning_on () then
      match Dict.intern fp sv with
      | Some (code, fresh) ->
        Stdlib.Atomic.incr Dict.interns;
        (* [fingerprint] charged fp+sv; a hit drops both strings (the
           dictionary already holds them), a fresh entry keeps them
           resident in the dictionary, so its charge stands. *)
        if not fresh then
          Xq_governor.Governor.uncharge_bytes (String.length fp + String.length sv);
        Xq_governor.Governor.charge_bytes code_cost;
        CCode code
      | None -> CNode { fp; sv }
    else CNode { fp; sv }

let canon_hash = function
  | CAtom a -> Atomic.hash a
  | CNode { fp; _ } -> Hashtbl.hash fp
  | CCode c -> (Dict.get c).e_hash

let canonicalize_single (seq : Xseq.t) =
  let items = Array.of_list (List.map canon_of_item seq) in
  let h =
    Array.fold_left
      (fun h c -> mix h (canon_hash c))
      (mix hash_seed (Array.length items))
      items
  in
  { orig = seq; items; h }

let canonicalize (keys : Xseq.t list) =
  let singles = Array.of_list (List.map canonicalize_single keys) in
  let hash =
    Array.fold_left
      (fun h s -> mix h s.h)
      (mix hash_seed (Array.length singles))
      singles
  in
  { singles; hash }

let originals k = Array.to_list (Array.map (fun s -> s.orig) k.singles)
let hash k = k.hash

(* --- spill support ------------------------------------------------------- *)

(* Exactly the bytes [fingerprint] charged for this key — what a spill
   gives back to the budget when the in-memory key is dropped. *)
let charged_bytes k =
  Array.fold_left
    (fun acc s ->
      Array.fold_left
        (fun acc c ->
          match c with
          | CAtom _ -> acc
          | CNode { fp; sv } -> acc + String.length fp + String.length sv
          | CCode _ -> acc + code_cost)
        acc s.items)
    0 k.singles

(* Per-depth repartition salt: recursive spill levels re-split on
   [mix (salt depth) (hash k)] so keys that collided modulo the fanout
   at one level spread at the next. *)
let salt depth = mix hash_seed (0x9e3779b9 * (depth + 1))

(* Spill frames carry the dictionary *code* plus nothing else — the
   process dictionary is the side table replay resolves against (it is
   append-only, so codes written before a spill stay valid at replay).
   Codes outside the published dictionary are corruption (a torn or
   cross-process frame) and fail closed. *)
let put_canon buf = function
  | CAtom a ->
    Binio.put_varint buf 0;
    Binio.put_atom buf a
  | CNode { fp; sv } ->
    Binio.put_varint buf 1;
    Binio.put_string buf fp;
    Binio.put_string buf sv
  | CCode c ->
    Binio.put_varint buf 2;
    Binio.put_varint buf c

let get_canon r =
  match Binio.get_varint r with
  | 0 -> CAtom (Binio.get_atom r)
  | 1 ->
    let fp = Binio.get_string r in
    let sv = Binio.get_string r in
    CNode { fp; sv }
  | 2 ->
    let c = Binio.get_varint r in
    if c < 0 || c >= Dict.size () then
      raise (Binio.Corrupt (Printf.sprintf "dictionary code %d out of range" c))
    else CCode c
  | t -> raise (Binio.Corrupt (Printf.sprintf "bad canon tag %d" t))

(* Stored hashes ([s.h], [k.hash]) are written out rather than
   recomputed on decode: a custom bucket hash (the [?hash] override)
   would otherwise be lost, and replay bucketing must see exactly the
   values the build saw. *)
let encode reg buf k =
  Binio.put_varint buf (Array.length k.singles);
  Array.iter
    (fun s ->
      Binio.put_seq reg buf s.orig;
      Binio.put_varint buf (Array.length s.items);
      Array.iter (put_canon buf) s.items;
      Binio.put_varint buf s.h)
    k.singles;
  Binio.put_varint buf k.hash

let decode reg r =
  let ns = Binio.get_varint r in
  if ns < 0 then raise (Binio.Corrupt "negative singles count");
  let singles =
    Array.init ns (fun _ ->
        let orig = Binio.get_seq reg r in
        let ni = Binio.get_varint r in
        if ni < 0 then raise (Binio.Corrupt "negative canon count");
        let items = Array.init ni (fun _ -> get_canon r) in
        let h = Binio.get_varint r in
        { orig; items; h })
  in
  let hash = Binio.get_varint r in
  { singles; hash }

(* --- equality (deep-equal semantics) ------------------------------------ *)

let canon_equal a b =
  match a, b with
  | CAtom x, CAtom y -> Atomic.deep_eq x y
  | CNode x, CNode y -> String.equal x.fp y.fp
  | CCode x, CCode y -> Int.equal x y
  | CCode x, CNode y | CNode y, CCode x -> String.equal (Dict.get x).e_fp y.fp
  | CAtom _, (CNode _ | CCode _) | (CNode _ | CCode _), CAtom _ -> false

let arrays_for_all2 eq a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (eq (Array.unsafe_get a i) (Array.unsafe_get b i) && go (i + 1)) in
  go 0

let equal_single a b = a.h = b.h && arrays_for_all2 canon_equal a.items b.items

let equal a b =
  a.hash = b.hash && arrays_for_all2 equal_single a.singles b.singles

(* --- total preorder (sort strategy) ------------------------------------- *)

(* Same order as PR 1's [Group.compare_key_lists]: nodes sort by string
   value; untyped sorts with strings; all numerics on one axis so
   Int/Dec/Dbl values that deep-equal land together; NaN sorts least
   among numerics. Deep-equal keys always compare 0; the converse need
   not hold (runs the order conflates are split by {!equal}). *)

let atom_rank = function
  | Atomic.Bool _ -> 0
  | Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _ -> 1
  | Atomic.Untyped _ | Atomic.Str _ -> 2
  | Atomic.DateTime _ -> 3
  | Atomic.Date _ -> 4
  | Atomic.QName _ -> 5

let compare_atoms a b =
  let ra = atom_rank a and rb = atom_rank b in
  if ra <> rb then Int.compare ra rb
  else
    match a, b with
    | Atomic.Bool x, Atomic.Bool y -> Bool.compare x y
    | ( (Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _),
        (Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _) ) ->
      let is_nan = function
        | Atomic.Dec f | Atomic.Dbl f -> Float.is_nan f
        | _ -> false
      in
      (match is_nan a, is_nan b with
       | true, true -> 0
       | true, false -> -1
       | false, true -> 1
       | false, false -> Float.compare (Atomic.number a) (Atomic.number b))
    | (Atomic.Untyped x | Atomic.Str x), (Atomic.Untyped y | Atomic.Str y) ->
      String.compare x y
    | Atomic.DateTime x, Atomic.DateTime y -> Xdatetime.compare_date_time x y
    | Atomic.Date x, Atomic.Date y -> Xdatetime.compare_date x y
    | Atomic.QName x, Atomic.QName y -> Xname.compare x y
    | _ -> 0 (* unreachable: differing ranks are handled above *)

let sort_atom = function
  | CAtom a -> a
  | CNode { sv; _ } -> Atomic.Str sv
  | CCode c -> Atomic.Str (Dict.get c).e_sv

let compare_canon a b = compare_atoms (sort_atom a) (sort_atom b)

let compare_arrays cmp a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = cmp a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let compare_single a b = compare_arrays compare_canon a.items b.items
let compare a b = compare_arrays compare_single a.singles b.singles
