(** Canonical grouping keys.

    A canonical key is built from a tuple's key list exactly once:
    node items are atomized into a deep-equal-exact fingerprint plus a
    memoized string value, and a deep-equal-consistent hash and sort
    atom are precomputed. After canonicalization no grouping strategy
    re-walks a key subtree — equality is a hash fast-reject plus string
    compare, ordering is a string/float compare.

    Invariants (checked by [test/test_key.ml] qcheck properties):
    - {!equal} coincides exactly with [Deep_equal.sequences] over the
      original key lists;
    - deep-equal keys have equal {!hash};
    - {!compare} is a total preorder in which deep-equal keys compare 0,
      identical to PR 1's [Group.compare_key_lists] order. *)

open Xq_xdm

(** One canonicalized item. *)
type canon =
  | CAtom of Atomic.t
  | CNode of { fp : string; sv : string }
      (** [fp]: injective encoding of the node's deep-equal class;
          [sv]: its string value (the sort key for nodes). *)
  | CCode of int
      (** Dictionary code: an interned [CNode]. Hash, equality and sort
          atom resolve through the process key dictionary and agree
          exactly with the raw [CNode] they intern (including when one
          side is interned and the other is not). *)

(** One canonicalized key sequence (the value of one [group by] key). *)
type single = { orig : Xseq.t; items : canon array; h : int }

(** A canonicalized key list (all keys of one tuple). *)
type t = { singles : single array; hash : int }

val canonicalize : Xseq.t list -> t

(** The original key sequences, unchanged (representative values for the
    grouping variables). *)
val originals : t -> Xseq.t list

val hash : t -> int
val equal : t -> t -> bool
val equal_single : single -> single -> bool

(** Total preorder consistent with deep-equal (see module doc). *)
val compare : t -> t -> int

val compare_single : single -> single -> int

(** Order on raw atoms underlying {!compare} — exposed for the executor's
    reuse and for tests. *)
val compare_atoms : Atomic.t -> Atomic.t -> int

(** {1 Hash mixing}

    FNV-1a-style fold, used to combine per-key hashes so wide key lists
    don't collapse through a single bounded [Hashtbl.hash] pass. *)

val hash_seed : int
val mix : int -> int -> int

(** {1 Spill support} *)

(** Exactly the bytes {!canonicalize} charged to the governor for this
    key (node fingerprint + string-value lengths) — what a spill
    returns to the budget when the in-memory key is dropped. *)
val charged_bytes : t -> int

(** Per-depth repartition salt: level [d] of a recursive spill re-splits
    on [mix (salt d) (hash k)], so keys that collided modulo the fanout
    at one level spread at the next. *)
val salt : int -> int

(** Binary codec (spill frames). Stored hashes are written, not
    recomputed, so replay sees exactly the values the build saw even
    under a custom bucket hash; node items in [orig] encode by registry
    reference. [decode] raises [Binio.Corrupt] on malformed input. *)

val encode : Binio.node_registry -> Buffer.t -> t -> unit
val decode : Binio.node_registry -> Binio.reader -> t

(** {1 Instrumentation}

    A process-wide counter of node-subtree materializations (fingerprint
    walks). EXPLAIN ANALYZE reports the per-operator delta; tests assert
    grouping walks each key node exactly once. *)

val walk_count : unit -> int
val reset_walk_count : unit -> unit

(** {1 Key dictionary}

    A process-wide, append-only intern table keyed on node fingerprints.
    While interning is in scope, {!canonicalize} emits [CCode] items for
    node keys instead of raw fingerprint strings, so grouping hashes and
    compares small int codes. Spill frames carry the codes (the
    dictionary is the side table replay resolves against); the codec
    rejects codes outside the published dictionary as [Binio.Corrupt]. *)

(** Run [f] with dictionary interning enabled (scopes nest; thread-safe).
    The batched executor wraps canonicalization of large inputs in this. *)
val with_interning : (unit -> 'a) -> 'a

(** Whether {!with_interning} scopes currently intern (false when disabled
    via {!set_interning_available} or [XQ_DICT=0]). *)
val interning_on : unit -> bool

(** Process-wide kill switch (bench baselines, [XQ_DICT=0]). *)
val set_interning_available : bool -> unit

(** Monotonic count of node keys interned to a code (EXPLAIN's [dict=]
    counter is conditional on its per-operator delta). *)
val intern_count : unit -> int

(** Number of distinct entries in the dictionary. *)
val dict_size : unit -> int

(** [(fingerprint, string-value)] for a code, or [None] if stale. *)
val dict_lookup : int -> (string * string) option

(** Drop all entries and codes. Test-only: live [CCode] keys or spill
    frames from before a reset are invalidated by it. *)
val reset_dict : unit -> unit
