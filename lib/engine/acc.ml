open Xq_xdm

(* Per-group running aggregate state for the eager-aggregation rewrite.

   When a nest variable is consumed only by fn:sum/count/avg/min/max,
   the executor folds each member's value into one of these instead of
   retaining the member list (ISSUE 10 / the hash-vs-sort group-by
   study's pre-aggregation effect). One accumulator serves every
   aggregate applied to the same variable: it tracks the count, the
   numeric running sum (for sum/avg) and the running min/max fold
   side by side, so `<r>{count($v), sum($v)}</r>` needs a single state.

   The folds replicate the builtin aggregates exactly, item by item in
   input order — including their error behaviour. Errors do not raise
   here: the aggregate call site is downstream of the group build (in
   the return expression), so an error must surface exactly where and
   when the unrewritten plan would have raised it. Instead the first
   error per fold family is recorded sticky, and {!finish} returns it
   for the executor to deliver at the original call site (via the
   internal unwrap builtin). A NaN keeps min/max folds where they are
   (Unordered comparisons never move [best]), matching the builtin.

   Exactness caveat (documented in README): accumulator {!merge} only
   happens when a spilled group is re-encountered — it adds partial
   float sums (reassociation) and compares partial min/max bests in one
   step rather than replaying the later items one by one. Error *codes*
   and integer results are unaffected; float results can differ in the
   last ulp from the unrewritten plan only for spilled groups with
   non-associative float data, and an Incomparable error *message* can
   name the partial best instead of the global one. The differential
   sweeps pin byte-identity on integer/small-decimal data, where the
   fold is exact. *)

type numeric_err =
  | Non_numeric of string  (* FORG0006: dynamic type name of the item *)
  | Bad_cast of string     (* FORG0001: untyped lexical that won't parse *)

type order_err =
  | Incomparable_pair of string * string
      (* FORG0006: (new item's type, best-so-far's type) *)
  | Order_cast of string   (* FORG0001, from norming an untyped item *)

type numeric_ty = [ `Int | `Dec | `Dbl ]

type t = {
  mutable n : int;  (* item count; atomization is 1:1, so = value count *)
  mutable total : float;
  mutable ty : numeric_ty;
  mutable num_err : numeric_err option;
  mutable best_min : Atomic.t option;
  mutable min_err : order_err option;
  mutable best_max : Atomic.t option;
  mutable max_err : order_err option;
  mutable nest_err : (Xerror.code * string) option;
      (* a dynamic error raised by the nest expression itself for some
         member — re-raised before any group output is pushed, exactly
         when the unrewritten plan's materialization would have *)
}

let create () =
  {
    n = 0;
    total = 0.;
    ty = `Int;
    num_err = None;
    best_min = None;
    min_err = None;
    best_max = None;
    max_err = None;
    nest_err = None;
  }

let poison_nest acc code msg =
  if acc.nest_err = None then acc.nest_err <- Some (code, msg)

let nest_err acc = acc.nest_err

(* Builtins.to_number on an untyped atomic, without raising. *)
let parse_untyped s = float_of_string_opt (String.trim s)

let join_ty a b =
  match a, b with
  | `Dbl, _ | _, `Dbl -> `Dbl
  | `Dec, _ | _, `Dec -> `Dec
  | `Int, `Int -> `Int

(* One step of the sum/avg fold (Builtins.numeric_values +
   common_numeric_type, fused): first bad item sticks. *)
let step_numeric acc a =
  match acc.num_err with
  | Some _ -> ()
  | None -> begin
    match a with
    | Atomic.Int i ->
      acc.total <- acc.total +. float_of_int i
    | Atomic.Dec f ->
      acc.total <- acc.total +. f;
      acc.ty <- join_ty acc.ty `Dec
    | Atomic.Dbl f ->
      acc.total <- acc.total +. f;
      acc.ty <- `Dbl
    | Atomic.Untyped s -> begin
      match parse_untyped s with
      | Some f ->
        acc.total <- acc.total +. f;
        acc.ty <- `Dbl
      | None -> acc.num_err <- Some (Bad_cast s)
    end
    | _ -> acc.num_err <- Some (Non_numeric (Atomic.type_name a))
  end

(* One step of the min/max fold (Builtins.minmax): untyped norms to
   double first, NaN comparisons keep the current best, an incomparable
   pair is a sticky error naming (new, best) like the builtin does. *)
let step_order ~pick best err a =
  match !err with
  | Some _ -> ()
  | None -> begin
    let normed =
      match a with
      | Atomic.Untyped s -> begin
        match parse_untyped s with
        | Some f -> Ok (Atomic.Dbl f)
        | None -> Error (Order_cast s)
      end
      | _ -> Ok a
    in
    match normed with
    | Error e -> err := Some e
    | Ok v -> begin
      match !best with
      | None -> best := Some v
      | Some b -> begin
        match Atomic.value_compare v b with
        | Atomic.Ordered c -> if pick c then best := Some v
        | Atomic.Unordered -> ()
        | Atomic.Incomparable ->
          err := Some (Incomparable_pair (Atomic.type_name v, Atomic.type_name b))
      end
    end
  end

(* Fold one member's value (the nest expression's result for one tuple)
   into the accumulator, item by item in sequence order. *)
let step acc (seq : Xseq.t) =
  List.iter
    (fun item ->
      let a = Item.atomize item in
      acc.n <- acc.n + 1;
      step_numeric acc a;
      let bmin = ref acc.best_min and emin = ref acc.min_err in
      step_order ~pick:(fun c -> c < 0) bmin emin a;
      acc.best_min <- !bmin;
      acc.min_err <- !emin;
      let bmax = ref acc.best_max and emax = ref acc.max_err in
      step_order ~pick:(fun c -> c > 0) bmax emax a;
      acc.best_max <- !bmax;
      acc.max_err <- !emax)
    seq

(* Merge a later partial into an earlier one (spill re-encounter).
   Earlier state wins every sticky error; the later best folds in as one
   comparison step. Mutates and returns [a]. *)
let merge a b =
  a.n <- a.n + b.n;
  a.total <- a.total +. b.total;
  a.ty <- join_ty a.ty b.ty;
  if a.num_err = None then a.num_err <- b.num_err;
  let merge_order ~pick best err b_best b_err =
    if !err = None then begin
      (match b_best with
       | None -> ()
       | Some v -> begin
         match !best with
         | None -> best := Some v
         | Some cur -> begin
           match Atomic.value_compare v cur with
           | Atomic.Ordered c -> if pick c then best := Some v
           | Atomic.Unordered -> ()
           | Atomic.Incomparable ->
             err :=
               Some
                 (Incomparable_pair (Atomic.type_name v, Atomic.type_name cur))
         end
       end);
      if !err = None then err := b_err
    end
  in
  let bmin = ref a.best_min and emin = ref a.min_err in
  merge_order ~pick:(fun c -> c < 0) bmin emin b.best_min b.min_err;
  a.best_min <- !bmin;
  a.min_err <- !emin;
  let bmax = ref a.best_max and emax = ref a.max_err in
  merge_order ~pick:(fun c -> c > 0) bmax emax b.best_max b.max_err;
  a.best_max <- !bmax;
  a.max_err <- !emax;
  if a.nest_err = None then a.nest_err <- b.nest_err;
  a

(* --- finishing ---------------------------------------------------------- *)

type kind = Count | Sum | Avg | Min | Max

let kind_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let kind_of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

(* Builtins.wrap_numeric *)
let wrap_numeric ty f =
  match ty with
  | `Int when Float.is_integer f -> Item.of_int (int_of_float f)
  | `Int | `Dec -> Item.Atomic (Atomic.Dec f)
  | `Dbl -> Item.Atomic (Atomic.Dbl f)

let numeric_result name acc =
  match acc.num_err with
  | Some (Non_numeric tn) ->
    Error
      ( Xerror.FORG0006,
        Printf.sprintf "%s: non-numeric item of type %s" name tn )
  | Some (Bad_cast s) ->
    Error (Xerror.FORG0001, Printf.sprintf "cannot cast %S to a number" s)
  | None -> Ok ()

let order_result name err =
  match err with
  | Some (Incomparable_pair (a, b)) ->
    Error
      ( Xerror.FORG0006,
        Printf.sprintf "%s: incomparable items %s and %s" name a b )
  | Some (Order_cast s) ->
    Error (Xerror.FORG0001, Printf.sprintf "cannot cast %S to a number" s)
  | None -> Ok ()

(* The aggregate's value for the group — or the error the builtin would
   have raised at its call site. *)
let finish acc kind : (Xseq.t, Xerror.code * string) result =
  match kind with
  | Count -> Ok [ Item.of_int acc.n ]
  | Sum ->
    if acc.n = 0 then Ok [ Item.of_int 0 ]
    else begin
      match numeric_result "sum" acc with
      | Error _ as e -> e
      | Ok () -> Ok [ wrap_numeric acc.ty acc.total ]
    end
  | Avg ->
    if acc.n = 0 then Ok []
    else begin
      match numeric_result "avg" acc with
      | Error _ as e -> e
      | Ok () ->
        let ty = match acc.ty with `Int -> `Dec | t -> t in
        Ok [ wrap_numeric ty (acc.total /. float_of_int acc.n) ]
    end
  | Min ->
    if acc.n = 0 then Ok []
    else begin
      match order_result "min" acc.min_err with
      | Error _ as e -> e
      | Ok () -> Ok [ Item.Atomic (Option.get acc.best_min) ]
    end
  | Max ->
    if acc.n = 0 then Ok []
    else begin
      match order_result "max" acc.max_err with
      | Error _ as e -> e
      | Ok () -> Ok [ Item.Atomic (Option.get acc.best_max) ]
    end

(* --- spill codec --------------------------------------------------------- *)

(* Encoded accumulator layout (all tags validated on decode):
     varint n            (>= 0)
     float  total
     tag    ty           (0 `Int | 1 `Dec | 2 `Dbl)
     opt    num_err      (tag 0 Non_numeric string | 1 Bad_cast string)
     opt    best_min atom
     opt    min_err      (tag 0 Incomparable_pair s s | 1 Order_cast s)
     opt    best_max atom
     opt    max_err
     opt    nest_err     (code string, message string)
   Spill frames carrying these are O(1) per group — the whole point of
   the rewrite's external-grouping story. *)

let put_numeric_err buf = function
  | Non_numeric s ->
    Binio.put_varint buf 0;
    Binio.put_string buf s
  | Bad_cast s ->
    Binio.put_varint buf 1;
    Binio.put_string buf s

let get_numeric_err r =
  match Binio.get_varint r with
  | 0 -> Non_numeric (Binio.get_string r)
  | 1 -> Bad_cast (Binio.get_string r)
  | t -> raise (Binio.Corrupt (Printf.sprintf "bad numeric-error tag %d" t))

let put_order_err buf = function
  | Incomparable_pair (a, b) ->
    Binio.put_varint buf 0;
    Binio.put_string buf a;
    Binio.put_string buf b
  | Order_cast s ->
    Binio.put_varint buf 1;
    Binio.put_string buf s

let get_order_err r =
  match Binio.get_varint r with
  | 0 ->
    let a = Binio.get_string r in
    let b = Binio.get_string r in
    Incomparable_pair (a, b)
  | 1 -> Order_cast (Binio.get_string r)
  | t -> raise (Binio.Corrupt (Printf.sprintf "bad order-error tag %d" t))

let put_nest_err buf (code, msg) =
  Binio.put_string buf (Xerror.code_to_string code);
  Binio.put_string buf msg

let get_nest_err r =
  let code_s = Binio.get_string r in
  let msg = Binio.get_string r in
  match Xerror.code_of_string code_s with
  | Some code -> (code, msg)
  | None -> raise (Binio.Corrupt ("unknown error code " ^ code_s))

let encode buf acc =
  Binio.put_varint buf acc.n;
  Binio.put_float buf acc.total;
  Binio.put_varint buf
    (match acc.ty with `Int -> 0 | `Dec -> 1 | `Dbl -> 2);
  Binio.put_opt put_numeric_err buf acc.num_err;
  Binio.put_opt Binio.put_atom buf acc.best_min;
  Binio.put_opt put_order_err buf acc.min_err;
  Binio.put_opt Binio.put_atom buf acc.best_max;
  Binio.put_opt put_order_err buf acc.max_err;
  Binio.put_opt put_nest_err buf acc.nest_err

let decode r =
  let n = Binio.get_varint r in
  if n < 0 then raise (Binio.Corrupt "negative accumulator count");
  let total = Binio.get_float r in
  let ty =
    match Binio.get_varint r with
    | 0 -> `Int
    | 1 -> `Dec
    | 2 -> `Dbl
    | t -> raise (Binio.Corrupt (Printf.sprintf "bad numeric-type tag %d" t))
  in
  let num_err = Binio.get_opt get_numeric_err r in
  let best_min = Binio.get_opt Binio.get_atom r in
  let min_err = Binio.get_opt get_order_err r in
  let best_max = Binio.get_opt Binio.get_atom r in
  let max_err = Binio.get_opt get_order_err r in
  let nest_err = Binio.get_opt get_nest_err r in
  { n; total; ty; num_err; best_min; min_err; best_max; max_err; nest_err }

(* Rough live-heap bytes one accumulator pins — what the governor is
   charged per retained group in place of the member-list bytes. *)
let charged_bytes acc =
  let atom_cost = function
    | Some (Atomic.Str s | Atomic.Untyped s) -> 32 + String.length s
    | Some _ -> 32
    | None -> 0
  in
  let err_cost = function None -> 0 | Some _ -> 64 in
  96
  + atom_cost acc.best_min
  + atom_cost acc.best_max
  + err_cost acc.num_err
  + err_cost acc.min_err
  + err_cost acc.max_err
  + match acc.nest_err with None -> 0 | Some (_, m) -> 64 + String.length m

(* --- call-site plumbing ------------------------------------------------ *)

(* "!" cannot appear in an NCName, so neither name can collide with (or
   be spelled by) user queries. *)
let unwrap_local = "agg-unwrap!"

let poison_tag = "!err"

let mangle v kind = v ^ "!" ^ kind_name kind
