(** Per-group running aggregate state for the eager-aggregation rewrite.

    When a nest variable is consumed only by [fn:sum]/[count]/[avg]/
    [min]/[max], the executor folds each member's value into one of
    these instead of materializing (or spilling) the member list. One
    accumulator serves every aggregate applied to the same variable.

    The folds replicate the builtin aggregates exactly, item by item in
    input order, including their error behaviour — except that errors
    are recorded sticky rather than raised, so the executor can deliver
    them exactly where and when the unrewritten plan would have (at the
    aggregate's call site in the return expression, or before any group
    output for a failing nest expression).

    Exactness caveat: {!merge} (spill re-encounter only) adds partial
    float sums and compares partial min/max bests in one step; error
    codes and integer results are unaffected, float results can differ
    in the last ulp for spilled groups with non-associative data. *)

open Xq_xdm

type t

val create : unit -> t

(** Fold one member's value (the nest expression's result for one
    tuple) into the accumulator, item by item in sequence order. Never
    raises. *)
val step : t -> Xseq.t -> unit

(** Record a dynamic error raised by the nest expression itself (first
    one sticks). The executor re-raises it before pushing any group
    output, matching the unrewritten materialization order. *)
val poison_nest : t -> Xerror.code -> string -> unit

val nest_err : t -> (Xerror.code * string) option

(** [merge earlier later] — combine a later partial into an earlier one
    (spilled group re-encountered). Earlier sticky errors win. Mutates
    and returns [earlier]. *)
val merge : t -> t -> t

(** Which aggregate a call site applies. *)
type kind = Count | Sum | Avg | Min | Max

val kind_name : kind -> string
val kind_of_name : string -> kind option

(** The aggregate's value for the group, or the error the builtin would
    have raised at its call site. *)
val finish : t -> kind -> (Xseq.t, Xerror.code * string) result

(** {1 Spill codec}

    Accumulators are plain atoms and strings — no node references — so
    the codec needs no registry. [decode] raises [Binio.Corrupt] on any
    out-of-range tag, negative count or torn payload. *)

val encode : Buffer.t -> t -> unit
val decode : Binio.reader -> t

(** Rough live-heap bytes one accumulator pins (the governor's charge
    per retained group, replacing the member-list bytes). *)
val charged_bytes : t -> int

(** {1 Call-site plumbing}

    The optimizer substitutes each [fn:agg($v)] call site with
    [agg-unwrap!($v!agg)]: the executor binds the mangled variable to
    the finished aggregate value — or to a poison marker carrying the
    error the builtin would have raised — and the internal unwrap
    builtin returns the value or raises the error at exactly the
    original call site. ["!"] cannot appear in an NCName, so neither
    name can collide with user-written queries. *)

(** Local name of the internal unwrap builtin (default fn namespace). *)
val unwrap_local : string

(** First item of a 3-item poison marker [(tag, code, message)] — the
    value bound when {!finish} reports the error the aggregate builtin
    would have raised; the unwrap builtin re-raises it. Real aggregate
    results are at most one item, so the marker is unambiguous. *)
val poison_tag : string

(** [mangle v kind] — the tuple variable carrying [kind]'s result for
    nest variable [v] (e.g. ["items!sum"]). *)
val mangle : string -> kind -> string
