(** The grouping operator underlying the [group by] clause.

    Three strategies, the first two matching Section 3.3 of the paper:
    - {!group_hash}: used when every key compares with the default
      [fn:deep-equal] — one pass, hash on the key sequences, deep-equal
      within buckets;
    - {!group_scan}: used when any key has a [using] function — compares
      each tuple against the representatives of the existing groups with
      the per-key equality (user functions are opaque, so no hashing is
      possible);
    - {!group_sort}: an alternative to {!group_hash} — sort tuples by a
      total order on atomized keys, emit groups from equal runs,
      splitting any run the sort order conflates with the same
      deep-equal the hash strategy uses, so the groups (and, by default,
      their order) are identical to {!group_hash}'s.

    All strategies preserve first-occurrence order of groups and the
    input order of members within each group (which is what the [nest]
    clause concatenates, per Section 3.4.1); {!group_sort} can instead
    emit groups in key order for fusion with a downstream sort. *)

open Xq_xdm

type 'a group = {
  keys : Xseq.t list;  (** representative key values (first tuple's) *)
  members : 'a list;   (** in input order *)
}

(** The bucket hash used by {!group_hash}: consistent with deep-equal
    (deep-equal key lists hash equally). Exposed so tests can force
    collisions. *)
val hash_keys : Xseq.t list -> int

(** [tally], on every strategy, counts comparator work: one increment
    per equality test / comparator invocation. [hash] overrides the
    bucket hash (tests use a constant to force collisions). *)
val group_hash :
  ?hash:(Xseq.t list -> int) ->
  ?tally:int ref ->
  keys_of:('a -> Xseq.t list) ->
  'a list ->
  'a group list

(** [equal i] compares values of the [i]-th key. *)
val group_scan :
  ?tally:int ref ->
  keys_of:('a -> Xseq.t list) ->
  equal:(int -> Xseq.t -> Xseq.t -> bool) ->
  'a list ->
  'a group list

(** Sort-based grouping. With [sorted_output:false] (the default) the
    result is identical to {!group_hash} — groups in first-occurrence
    order; with [sorted_output:true] groups stay in ascending key order
    (the order the sort produced), which lets a downstream sort on the
    same keys be elided. *)
val group_sort :
  ?tally:int ref ->
  ?sorted_output:bool ->
  keys_of:('a -> Xseq.t list) ->
  'a list ->
  'a group list

(** The total preorder {!group_sort} sorts by — deep-equal key lists
    always compare 0. Exposed for tests. *)
val compare_key_lists : Xseq.t list -> Xseq.t list -> int
