(** The grouping operator underlying the [group by] clause.

    Three strategies, the first two matching Section 3.3 of the paper:
    - {!group_hash}: used when every key compares with the default
      [fn:deep-equal] — one pass, hash on the key sequences, deep-equal
      within buckets;
    - {!group_scan}: used when any key has a [using] function — compares
      each tuple against the representatives of the existing groups with
      the per-key equality (user functions are opaque, so no hashing is
      possible);
    - {!group_sort}: an alternative to {!group_hash} — identical groups
      in identical order, but able to emit groups in key order so a
      downstream sort on the keys can be elided.

    Every strategy first canonicalizes each tuple's key list exactly once
    ({!Key.canonicalize}): key node subtrees are walked a single time,
    after which all equality tests and sort comparisons run on canonical
    keys (hash fast-reject + string compare) — no strategy re-walks a
    subtree or re-stringifies a node per comparison.

    With [parallel] > 1 the strategies use the {!Par} domain pool:
    canonicalization is chunked, the hash build is hash-partitioned with
    a deterministic first-encounter-order merge, and the sorted-output
    sort is a parallel stable merge sort. Output is byte-identical at
    any degree; [parallel_keys] additionally evaluates [keys_of] on the
    pool and must only be set when the caller knows the key expressions
    are thread-safe (no node construction).

    All strategies preserve first-occurrence order of groups and the
    input order of members within each group (which is what the [nest]
    clause concatenates, per Section 3.4.1); {!group_sort} can instead
    emit groups in key order for fusion with a downstream sort.

    When the caller passes a tuple codec via [spill] and the governor
    arms a soft memory watermark, {!group_hash} and {!group_sort}
    degrade to an external build instead of hard-tripping: partitions
    under pressure serialize their tables to crash-safe spill files and
    return the bytes to the budget; hash grouping replays the files with
    bounded recursive repartitioning (depth-salted hash, sorted-run
    fallback at the cap), sort grouping merges sorted runs with a loser
    tree. Output stays byte-identical to the in-memory path at any
    watermark and parallel degree; under spilling the group-cardinality
    budget is checked once per partition merge rather than per insert,
    and [tally] counts the external probes/comparisons actually made
    (not the in-memory path's). If no spill directory is usable, a
    one-line warning is printed once and the in-memory hard-trip path
    runs. {!group_scan} never spills (user equality functions cannot be
    replayed). *)

open Xq_xdm

(** Serialize/deserialize one tuple for spill frames. Node items must
    go through the registry (see {!Binio}) so identity survives. *)
type 'a codec = {
  enc : Binio.node_registry -> Buffer.t -> 'a -> unit;
  dec : Binio.node_registry -> Binio.reader -> 'a;
}

type 'a group = {
  keys : Xseq.t list;  (** representative key values (first tuple's) *)
  members : 'a list;   (** in input order *)
}

(** The bucket hash used by {!group_hash}: consistent with deep-equal
    (deep-equal key lists hash equally). Per-key hashes are combined
    with {!Key.mix}, so wide key lists don't collapse through a single
    bounded [Hashtbl.hash] pass. Exposed so tests can force
    collisions. *)
val hash_keys : Xseq.t list -> int

(** {1 Incremental builder}

    The batched executor's interface: one accumulator per group
    operator, fed tuple vectors as upstream operators produce them.
    [mode] picks the strategy ([`Sort b] is sort with [sorted_output:b];
    [`Scan eq] is the user-equality scan). [presize] is a cardinality
    estimate: in-memory hash tables are created with roughly that many
    slots (clamped) instead of growing by rehash from 64.

    [cost] estimates the live-heap bytes a retained member pins beyond
    the builder's own bookkeeping (default: a small constant). The
    external build's flush accounting is only as honest as this
    estimate: members that own large detached structures (streamed scan
    tuples) must report their real size or partitions never look big
    enough to flush and the heap outruns the budget unrecorded.

    Feeding is where key canonicalization happens; once the running
    input size reaches an internal floor (and batching is on), node keys
    intern into the process key dictionary ({!Key.with_interning}) so
    probes hash/compare int codes. Interned and raw keys agree on
    hash/equality, so results are independent of where the switch lands.

    {!finish} returns the groups exactly as the one-shot entry points
    below would for the concatenated feeds — byte-identical at any
    batch size, parallel degree, strategy and spill watermark.

    [reduce] switches the builder to eager-aggregation mode: every
    group retains exactly one member — a running accumulator — and each
    insertion folds the new tuple into it with [reduce earlier later]
    (earlier argument on the left, preserving input order). Spill
    frames then carry one encoded accumulator per group, so the
    external build's disk and live-heap footprint is O(groups), not
    O(members), and parallel partial merges combine accumulators. The
    caller's [reduce] must be associative over input order splits for
    {!finish} to be independent of spill watermark and parallel
    degree. *)

type 'a builder

val builder :
  ?hash:(Xseq.t list -> int) ->
  ?tally:int ref ->
  ?spill:'a codec ->
  ?presize:int ->
  ?cost:('a -> int) ->
  ?reduce:('a -> 'a -> 'a) ->
  ?parallel:int ->
  ?parallel_keys:bool ->
  mode:
    [ `Hash
    | `Sort of bool
    | `Scan of int -> Key.single -> Key.single -> bool ] ->
  keys_of:('a -> Xseq.t list) ->
  unit ->
  'a builder

(** Feed one vector of tuples (in input order). The array is not
    retained. On a spill-path exception the builder's files are closed
    before the exception propagates. *)
val feed : 'a builder -> 'a array -> unit

(** Under memory pressure, flush any external partition holding enough
    to be worth a frame (and collect, so the freed cells are reusable
    before the next hard-budget check). Safe to call at any point
    between {!feed}s — a streamed scan's pressure callback uses it,
    since governor ticks during parsing land outside the feed windows
    where the builder's own callbacks are registered. No-op during a
    feed and for in-memory builds. *)
val relieve : 'a builder -> unit

(** Merge and return the groups. Call at most once. *)
val finish : 'a builder -> 'a group list

(** [tally], on every strategy, counts comparator work: one increment
    per equality test / comparator invocation (identical at any
    [parallel] degree). [hash] overrides the bucket hash (tests use a
    constant to force collisions). *)
val group_hash :
  ?hash:(Xseq.t list -> int) ->
  ?tally:int ref ->
  ?spill:'a codec ->
  ?presize:int ->
  ?parallel:int ->
  ?parallel_keys:bool ->
  keys_of:('a -> Xseq.t list) ->
  'a list ->
  'a group list

(** [equal i] compares canonicalized values of the [i]-th key (their
    original sequences are in [Key.orig]). *)
val group_scan :
  ?tally:int ref ->
  ?parallel:int ->
  ?parallel_keys:bool ->
  keys_of:('a -> Xseq.t list) ->
  equal:(int -> Key.single -> Key.single -> bool) ->
  'a list ->
  'a group list

(** Sort-based grouping. With [sorted_output:false] (the default) the
    result is identical to {!group_hash} — groups in first-occurrence
    order; with [sorted_output:true] groups stay in ascending key order,
    which lets a downstream sort on the same keys be elided. Only the
    group representatives are sorted (g·log g canonical comparisons),
    not the n tuples. *)
val group_sort :
  ?tally:int ref ->
  ?sorted_output:bool ->
  ?spill:'a codec ->
  ?presize:int ->
  ?parallel:int ->
  ?parallel_keys:bool ->
  keys_of:('a -> Xseq.t list) ->
  'a list ->
  'a group list

(** The total preorder the sort strategy orders groups by — deep-equal
    key lists always compare 0. Exposed for tests. *)
val compare_key_lists : Xseq.t list -> Xseq.t list -> int
