(** The tuple-stream evaluator: XQuery expressions plus the paper's
    extensions ([group by]/[nest]/[using], post-group [let]/[where],
    [nest … order by], [return at]). *)

open Xq_xdm
open Xq_lang

(** Evaluate an expression in a context. *)
val eval : Context.t -> Ast.expr -> Xseq.t

(** True when evaluating the expression concurrently on several domains
    is safe: it constructs no nodes (node ids come from a global
    non-atomic counter) and calls no user functions nor the
    registry-reading or tracing builtins. Conservative — used to decide
    whether grouping may evaluate key expressions on the {!Par} pool. *)
val parallel_safe : Context.t -> Ast.expr -> bool

(** Expand one FLWOR tuple (as variable/value bindings) into one tuple
    per window of the clause — exposed for the algebra executor so both
    back ends share the XQuery 3.0 window semantics. *)
val expand_window_bindings :
  Context.t ->
  Ast.window_clause ->
  (string * Xseq.t) list ->
  (string * Xseq.t) list list

(** Evaluate a full query against a context node (usually a document):
    builds the context from the prolog, evaluates the global variables,
    sets the focus to the context node and evaluates the body. Runs
    {!Static.check_query} first unless [check] is [false].

    [documents], [collections] and [default_collection] populate the
    dynamic context's registry behind [fn:doc] and [fn:collection].
    [use_index] builds a {!Name_index} over the context tree and lets the
    evaluator answer [//name] from it (off by default: the paper's
    experiments are index-free). *)
val eval_query :
  ?check:bool ->
  ?use_index:bool ->
  ?documents:(string * Node.t) list ->
  ?collections:(string * Node.t list) list ->
  ?default_collection:Node.t list ->
  context_node:Node.t ->
  Ast.query ->
  Xseq.t

(** Parse, check and evaluate a query string against a context node. *)
val run :
  ?use_index:bool ->
  ?documents:(string * Node.t) list ->
  ?collections:(string * Node.t list) list ->
  ?default_collection:Node.t list ->
  context_node:Node.t ->
  string ->
  Xseq.t
