open Xq_xdm
open Xq_lang

let general_op_holds op (c : int) =
  match (op : Ast.general_cmp) with
  | Gen_eq -> c = 0
  | Gen_ne -> c <> 0
  | Gen_lt -> c < 0
  | Gen_le -> c <= 0
  | Gen_gt -> c > 0
  | Gen_ge -> c >= 0

let value_op_holds op (c : int) =
  match (op : Ast.value_cmp) with
  | Val_eq -> c = 0
  | Val_ne -> c <> 0
  | Val_lt -> c < 0
  | Val_le -> c <= 0
  | Val_gt -> c > 0
  | Val_ge -> c >= 0

let general op left right =
  let ls = Xseq.atomize left and rs = Xseq.atomize right in
  List.exists
    (fun a ->
      List.exists
        (fun b ->
          match Atomic.general_compare a b with
          | Atomic.Ordered c -> general_op_holds op c
          | Atomic.Unordered -> false
          | Atomic.Incomparable ->
            Xerror.failf XPTY0004 "cannot compare %s with %s"
              (Atomic.type_name a) (Atomic.type_name b))
        rs)
    ls

let value op left right =
  match Xseq.atomized_opt left, Xseq.atomized_opt right with
  | None, _ | _, None -> None
  | Some a, Some b ->
    (match Atomic.value_compare a b with
     | Atomic.Ordered c -> Some (value_op_holds op c)
     | Atomic.Unordered -> Some false
     | Atomic.Incomparable ->
       Xerror.failf XPTY0004 "cannot compare %s with %s (value comparison)"
         (Atomic.type_name a) (Atomic.type_name b))

let node op left right =
  let single seq =
    match Xseq.zero_or_one seq with
    | None -> None
    | Some (Item.Node n) -> Some n
    | Some (Item.Atomic a) ->
      Xerror.failf XPTY0004 "node comparison requires nodes, got %s"
        (Atomic.type_name a)
  in
  match single left, single right with
  | None, _ | _, None -> None
  | Some a, Some b ->
    Some
      (match (op : Ast.node_cmp) with
       | Node_is -> Node.same a b
       | Node_precedes -> Node.doc_order_compare a b < 0
       | Node_follows -> Node.doc_order_compare a b > 0)

(* Order-by keys: untyped compares as string; empty (or NaN) sorts
   per the empty-greatest/least modifier. *)
let order_keys (modifier : Ast.order_modifier) a b =
  let empty_greatest = Option.value modifier.empty_greatest ~default:false in
  let rank = function
    | None -> if empty_greatest then 1 else -1
    | Some v ->
      let nan = match v with
        | Atomic.Dec f | Atomic.Dbl f -> Float.is_nan f
        | _ -> false
      in
      if nan then (if empty_greatest then 1 else -1) else 0
  in
  let base =
    match rank a, rank b with
    | 0, 0 -> begin
      match a, b with
      | Some x, Some y -> begin
        match Atomic.value_compare x y with
        | Atomic.Ordered c -> c
        | Atomic.Unordered -> 0
        | Atomic.Incomparable ->
          Xerror.failf XPTY0004 "order by keys of incomparable types %s and %s"
            (Atomic.type_name x) (Atomic.type_name y)
      end
      | _ -> assert false
    end
    | ra, rb -> Int.compare ra rb
  in
  if modifier.descending then -base else base

type numeric_rank = R_int | R_dec | R_dbl

let numeric_of_atomic a =
  match a with
  | Atomic.Int i -> (R_int, float_of_int i)
  | Atomic.Dec f -> (R_dec, f)
  | Atomic.Dbl f -> (R_dbl, f)
  | Atomic.Untyped s -> begin
    match float_of_string_opt (String.trim s) with
    | Some f -> (R_dbl, f)
    | None ->
      Xerror.failf FORG0001 "cannot cast %S to xs:double for arithmetic" s
  end
  | Atomic.Str _ | Atomic.Bool _ | Atomic.DateTime _ | Atomic.Date _
  | Atomic.QName _ ->
    Xerror.failf XPTY0004 "arithmetic on non-numeric %s" (Atomic.type_name a)

let join_rank a b =
  match a, b with
  | R_dbl, _ | _, R_dbl -> R_dbl
  | R_dec, _ | _, R_dec -> R_dec
  | R_int, R_int -> R_int

let arith op left right =
  match Xseq.atomized_opt left, Xseq.atomized_opt right with
  | None, _ | _, None -> Xseq.empty
  | Some (Atomic.Int x), Some (Atomic.Int y) -> begin
    (* exact integer arithmetic; detect 63-bit wraparound and raise
       FOCA0002 like the float path does instead of silently wrapping *)
    let overflow () = Xerror.fail FOCA0002 "integer overflow" in
    let checked_add x y =
      let r = x + y in
      if x >= 0 = (y >= 0) && r >= 0 <> (x >= 0) then overflow () else r
    in
    let checked_sub x y =
      let r = x - y in
      if x >= 0 <> (y >= 0) && r >= 0 <> (x >= 0) then overflow () else r
    in
    let checked_mul x y =
      if x = 0 || y = 0 then 0
      else if (x = -1 && y = min_int) || (y = -1 && x = min_int) then
        (* min_int / -1 wraps, so the division check below misses it *)
        overflow ()
      else begin
        let r = x * y in
        if r / x <> y then overflow () else r
      end
    in
    match (op : Ast.arith_op) with
    | Add -> [ Item.of_int (checked_add x y) ]
    | Sub -> [ Item.of_int (checked_sub x y) ]
    | Mul -> [ Item.of_int (checked_mul x y) ]
    | Div ->
      if y = 0 then Xerror.fail FOAR0001 "division by zero"
      else [ Item.Atomic (Atomic.Dec (float_of_int x /. float_of_int y)) ]
    | Idiv ->
      (* OCaml (/) truncates toward zero, matching xs:integer idiv *)
      if y = 0 then Xerror.fail FOAR0001 "integer division by zero"
      else [ Item.of_int (x / y) ]
    | Mod ->
      if y = 0 then Xerror.fail FOAR0001 "modulo by zero"
      else [ Item.of_int (x mod y) ]
  end
  | Some a, Some b ->
    let ra, fa = numeric_of_atomic a in
    let rb, fb = numeric_of_atomic b in
    let rank = join_rank ra rb in
    let wrap f =
      match rank with
      | R_int ->
        if Float.abs f < 4.611686018427388e18 then [ Item.of_int (int_of_float f) ]
        else Xerror.fail FOCA0002 "integer overflow"
      | R_dec -> [ Item.Atomic (Atomic.Dec f) ]
      | R_dbl -> [ Item.Atomic (Atomic.Dbl f) ]
    in
    (match (op : Ast.arith_op) with
     | Add -> wrap (fa +. fb)
     | Sub -> wrap (fa -. fb)
     | Mul -> wrap (fa *. fb)
     | Div ->
       if fb = 0. && rank <> R_dbl then
         Xerror.fail FOAR0001 "division by zero"
       else begin
         let q = fa /. fb in
         match rank with
         | R_int | R_dec -> [ Item.Atomic (Atomic.Dec q) ]
         | R_dbl -> [ Item.Atomic (Atomic.Dbl q) ]
       end
     | Idiv ->
       if fb = 0. then Xerror.fail FOAR0001 "integer division by zero"
       else [ Item.of_int (int_of_float (Float.trunc (fa /. fb))) ]
     | Mod ->
       if fb = 0. && rank <> R_dbl then Xerror.fail FOAR0001 "modulo by zero"
       else wrap (Float.rem fa fb))
