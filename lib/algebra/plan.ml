open Xq_lang

type op =
  | Unit
  | For_expand of {
      var : string;
      positional : string option;
      source : Ast.expr;
      input : op;
    }
  | Let_bind of { var : string; expr : Ast.expr; input : op }
  | Select of { pred : Ast.expr; input : op }
  | Number of { var : string; input : op }
  | Window_expand of { window : Ast.window_clause; input : op }
  | Sort of {
      stable : bool;
      specs : (Ast.expr * Ast.order_modifier) list;
      input : op;
    }
  | Hash_group of group_shape
  | Scan_group of group_shape
  | Sort_group of { shape : group_shape; sorted_output : bool }

and group_shape = {
  keys : Ast.group_key list;
  nests : Ast.nest_spec list;
  aggs : (string * Xq_engine.Acc.kind list) list;
  input : op;
}

type plan = {
  pipeline : op;
  return_at : string option;
  return_expr : Ast.expr;
}

let compile clauses =
  List.fold_left
    (fun input (clause : Ast.clause) ->
      match clause with
      | Ast.For bindings ->
        List.fold_left
          (fun input (fb : Ast.for_binding) ->
            For_expand
              {
                var = fb.Ast.for_var;
                positional = fb.Ast.positional;
                source = fb.Ast.for_src;
                input;
              })
          input bindings
      | Ast.Let bindings ->
        List.fold_left
          (fun input (v, e) -> Let_bind { var = v; expr = e; input })
          input bindings
      | Ast.Where pred -> Select { pred; input }
      | Ast.Count var -> Number { var; input }
      | Ast.Window w -> Window_expand { window = w; input }
      | Ast.Order_by { stable; specs } -> Sort { stable; specs; input }
      | Ast.Group_by g ->
        let shape = { keys = g.Ast.keys; nests = g.Ast.nests; aggs = []; input } in
        if List.for_all (fun (k : Ast.group_key) -> k.Ast.using = None) g.Ast.keys
        then Hash_group shape
        else Scan_group shape)
    Unit clauses

let of_flwor (f : Ast.flwor) =
  {
    pipeline = compile f.Ast.clauses;
    return_at = f.Ast.return_at;
    return_expr = f.Ast.return_expr;
  }

let input_of = function
  | Unit -> None
  | For_expand { input; _ }
  | Let_bind { input; _ }
  | Select { input; _ }
  | Number { input; _ }
  | Window_expand { input; _ }
  | Sort { input; _ }
  | Hash_group { input; _ }
  | Scan_group { input; _ }
  | Sort_group { shape = { input; _ }; _ } ->
    Some input

let rec size op =
  match input_of op with None -> 1 | Some input -> 1 + size input

let short e =
  let s = Pretty.expr e in
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

let group_fields (shape : group_shape) =
  Printf.sprintf "keys=[%s] nests=[%s]"
    (String.concat "; "
       (List.map
          (fun (k : Ast.group_key) ->
            Printf.sprintf "%s -> $%s%s" (short k.Ast.key_expr) k.Ast.key_var
              (match k.Ast.using with
               | Some f -> " using " ^ Xq_xdm.Xname.to_string f
               | None -> ""))
          shape.keys))
    (String.concat "; "
       (List.map (fun (n : Ast.nest_spec) -> "$" ^ n.Ast.nest_var) shape.nests))
  ^
  if shape.aggs = [] then ""
  else
    Printf.sprintf " agg=[%s]"
      (String.concat "; "
         (List.map
            (fun (v, kinds) ->
              Printf.sprintf "$%s:%s" v
                (if kinds = [] then "-"
                 else
                   String.concat ","
                     (List.map Xq_engine.Acc.kind_name kinds)))
            shape.aggs))

let op_line = function
  | Unit -> "UNIT"
  | For_expand { var; positional; source; _ } ->
    Printf.sprintf "FOR-EXPAND $%s%s <- %s" var
      (match positional with Some p -> " at $" ^ p | None -> "")
      (short source)
  | Let_bind { var; expr; _ } ->
    Printf.sprintf "LET-BIND $%s := %s" var (short expr)
  | Select { pred; _ } -> Printf.sprintf "SELECT %s" (short pred)
  | Number { var; _ } -> Printf.sprintf "NUMBER $%s" var
  | Window_expand { window; _ } ->
    Printf.sprintf "WINDOW-%s $%s over %s"
      (match window.Ast.w_kind with
       | Ast.Tumbling -> "TUMBLING"
       | Ast.Sliding -> "SLIDING")
      window.Ast.w_var (short window.Ast.w_src)
  | Sort { stable; specs; _ } ->
    Printf.sprintf "SORT%s [%s]"
      (if stable then " stable" else "")
      (String.concat "; " (List.map (fun (e, _) -> short e) specs))
  | Hash_group shape -> "HASH-GROUP " ^ group_fields shape
  | Scan_group shape -> "SCAN-GROUP " ^ group_fields shape
  | Sort_group { shape; sorted_output } ->
    Printf.sprintf "SORT-GROUP%s %s"
      (if sorted_output then " (sorted output, fused sort)" else "")
      (group_fields shape)

let return_line plan =
  Printf.sprintf "RETURN%s %s"
    (match plan.return_at with Some v -> " at $" ^ v | None -> "")
    (short plan.return_expr)

let to_string plan =
  let buf = Buffer.create 256 in
  let line depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  line 0 (return_line plan);
  let rec go depth op =
    line depth (op_line op);
    match input_of op with None -> () | Some input -> go (depth + 1) input
  in
  go 1 plan.pipeline;
  Buffer.contents buf
