(** Logical rewrites over {!Plan} operator trees, applied to a fixpoint:

    - {b select pushdown}: a [Select] commutes below a [Sort] (filtering
      then sorting equals sorting then filtering, and the sort is
      stable), and below a [Let_bind] whose variable the predicate does
      not reference — on a selective predicate this skips evaluating the
      binding for tuples that are about to be dropped (a freedom the
      XQuery spec grants explicitly: a processor need not evaluate what
      the result does not require);
    - {b select fusion}: adjacent [Select]s conjoin into one;
    - {b dead-binding elimination}: a [Let_bind] whose variable nothing
      downstream references is dropped, when its expression is pure
      (cannot raise);
    - {b trivial-select elimination}: [where true()] and literal-true
      predicates vanish.

    All rewrites preserve results; the test suite checks every rule both
    structurally and by executing randomized plans before and after. *)

(** Optimize a plan's pipeline (the return clause is the root use-site
    for liveness). *)
val optimize : Plan.plan -> Plan.plan

(** Number of rule applications the optimizer performed (for tests and
    plan output). *)
val last_rewrite_count : unit -> int

(** {1 Grouping-strategy selection}

    Which physical operator executes a default-equality [group by]:
    - [Hash] (the default): the paper's one-pass hash grouping;
    - [Sort]: {!Plan.Sort_group} — sort by atomized keys and emit groups
      from runs; results are identical to hash;
    - [Auto]: keep hash, except when the grouping feeds a sort on
      exactly its key variables (ascending, default empty handling) — in
      that case the sort is fused away and the grouping emits groups
      already in key order.

    Groupings with a [using] comparator always stay {!Plan.Scan_group}. *)

type group_strategy = Hash | Sort | Auto

val strategy_of_string : string -> group_strategy option
val strategy_to_string : group_strategy -> string

(** Reads [XQ_GROUP_STRATEGY] ([hash]/[sort]/[auto]); [Hash] when unset
    or unrecognized. *)
val strategy_from_env : unit -> group_strategy

val apply_strategy : group_strategy -> Plan.plan -> Plan.plan

(** {1 Group-cardinality estimates}

    A process-wide feedback registry: executed grouping operators report
    the group count they built, keyed on the operator's [Plan.op_line]
    signature, and later executions of a structurally identical operator
    presize their hash tables from it. A hint only — results never
    depend on it. *)

(** Record that the operator with this signature built [n] groups. *)
val note_groups : signature:string -> int -> unit

(** Last recorded group count for this signature, if any. *)
val estimated_groups : signature:string -> int option

(** Disable/enable the registry (bench item-at-a-time baselines). *)
val set_estimate_feedback : bool -> unit

(** {1 Eager-aggregation pushdown}

    When every use of a nest variable above the grouping operator is an
    eligible one-argument aggregate call ([fn:count]/[sum]/[avg]/[min]/
    [max] on exactly [$v]), {!push_aggregates} marks the group shape
    ([Plan.group_shape.aggs]) so the executor folds members into
    per-group running accumulators ({!Xq_engine.Acc}) instead of
    materializing (or spilling) member lists, and substitutes each call
    site with the internal unwrap call on the mangled accumulator
    variable. All-or-nothing per group: every nest variable must be
    aggregate-only or completely unread, none may be shadowed anywhere
    in a consumer expression, and [nest ... order by] disables the
    rewrite. Results are byte-identical either way; the rewrite is a
    plan-shape and resource change only. Apply after strategy selection
    and before {!optimize}. *)

val push_aggregates : Plan.plan -> Plan.plan

(** Number of aggregate kinds folded into the plan's grouping operator
    (the [agg-pushdown=N] figure in EXPLAIN); [0] when the rewrite did
    not apply. *)
val agg_pushdown_count : Plan.plan -> int

(** Kill switch ([false] disables {!push_aggregates}; initialized to
    disabled when [XQ_NO_AGG_PUSHDOWN] is set in the environment). *)
val set_agg_pushdown : bool -> unit

(** The switch's current state — lets harnesses that toggle it (the
    fuzzer's rewrite differential, the test sweeps) restore whatever
    the environment established rather than assuming [true]. *)
val agg_pushdown_on : unit -> bool
