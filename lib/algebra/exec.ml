open Xq_xdm
open Xq_lang

module Smap = Map.Make (String)
module Par = Xq_par.Par
module Governor = Xq_governor.Governor

type tuple = Xseq.t Smap.t

let ctx_with_tuple ctx tuple =
  Smap.fold (fun v value ctx -> Xq_engine.Context.bind ctx v value) tuple ctx

(* Spill codec for executor tuples — same wire shape as the evaluator's
   (sorted variable/sequence bindings), letting grouping operators
   degrade to the external build under memory pressure. *)
let tuple_codec : tuple Xq_engine.Group.codec =
  {
    Xq_engine.Group.enc =
      (fun reg buf tup ->
        Binio.put_varint buf (Smap.cardinal tup);
        Smap.iter
          (fun v value ->
            Binio.put_string buf v;
            Binio.put_seq reg buf value)
          tup);
    dec =
      (fun reg r ->
        let n = Binio.get_varint r in
        let rec go acc i =
          if i >= n then acc
          else begin
            let v = Binio.get_string r in
            let value = Binio.get_seq reg r in
            go (Smap.add v value acc) (i + 1)
          end
        in
        go Smap.empty 0);
  }

(* Live-heap estimate of a streamed tuple: its bindings own detached
   subtrees (nothing else references them), so a group member pins the
   whole tree until the partition flushes. The builder's flush
   accounting needs the real size — its default per-member constant
   assumes members alias an already-resident document. *)
let rec node_cost n =
  match Node.kind n with
  | Node.Text -> 64 + String.length (Node.text_content n)
  | Node.Attribute -> 64 + String.length (Node.attribute_value n)
  | Node.Comment -> 64 + String.length (Node.comment_text n)
  | Node.Pi -> 64 + String.length (Node.pi_data n)
  | Node.Element | Node.Document ->
    List.fold_left
      (fun acc c -> acc + node_cost c)
      (List.fold_left (fun acc a -> acc + node_cost a) 64 (Node.attributes n))
      (Node.children n)

let tuple_cost tup =
  Smap.fold
    (fun _ value acc ->
      List.fold_left
        (fun acc item ->
          match item with Item.Node n -> acc + node_cost n | _ -> acc + 32)
        acc value)
    tup 24

let eval_in ctx tuple e = Xq_engine.Eval.eval (ctx_with_tuple ctx tuple) e

let tick = function Some r -> incr r | None -> ()

(* Sort tuples by order specs — same semantics as the engine's order by
   (stable; untyped keys as strings; empty least unless specified). With
   [parallel] > 1 the stable sort runs on the domain pool (key
   evaluation stays sequential — order expressions are arbitrary);
   output is byte-identical at any degree. *)
let sort_tuples ?tally ?(parallel = 1) ctx specs tuples =
  let keyed =
    List.map
      (fun tuple ->
        let keys =
          List.map
            (fun (e, modifier) ->
              (Xseq.atomized_opt (eval_in ctx tuple e), modifier))
            specs
        in
        (keys, tuple))
      tuples
  in
  let compare_keys (ka, _) (kb, _) =
    tick tally;
    Governor.tick ();
    let rec go = function
      | [] -> 0
      | ((a, modifier), (b, _)) :: rest ->
        let c = Xq_engine.Compare.order_keys modifier a b in
        if c <> 0 then c else go rest
    in
    go (List.combine ka kb)
  in
  if parallel <= 1 then List.map snd (List.stable_sort compare_keys keyed)
  else begin
    let arr = Array.of_list keyed in
    Par.sort ~degree:parallel compare_keys arr;
    List.map snd (Array.to_list arr)
  end

let group_output ?tally ctx (shape : Plan.group_shape) groups =
  List.map
    (fun (grp : tuple Xq_engine.Group.group) ->
      let out =
        List.fold_left2
          (fun out (k : Ast.group_key) key_value ->
            Smap.add k.Ast.key_var key_value out)
          Smap.empty shape.Plan.keys grp.Xq_engine.Group.keys
      in
      List.fold_left
        (fun out (n : Ast.nest_spec) ->
          let members =
            if n.Ast.nest_order = [] then grp.Xq_engine.Group.members
            else
              sort_tuples ?tally ctx n.Ast.nest_order
                grp.Xq_engine.Group.members
          in
          let value =
            Xseq.concat
              (List.map (fun tuple -> eval_in ctx tuple n.Ast.nest_expr) members)
          in
          Smap.add n.Ast.nest_var value out)
        out shape.Plan.nests)
    groups

(* --- eager aggregation (shape.aggs <> []) -------------------------------- *)

module Acc = Xq_engine.Acc

(* When the optimizer marked the group shape ([aggs]), members are not
   materialized: each input tuple becomes a row carrying its key values
   and one running accumulator per nest slot, and the group builder's
   reduce mode folds rows of the same group together — every group
   retains exactly one row, spill frames carry O(groups) encoded
   accumulators, and parallel partial merges combine accumulators. *)
type agg_row = {
  ar_keys : Xseq.t list;
      (* [[]] on rows decoded from spill frames: the frame's canonical
         key re-keys the group, the row is only ever merged as a member *)
  ar_accs : Acc.t array;  (* one per nest spec, in spec order *)
}

(* Re-raise the first recorded nest-expression error in group-emission ×
   slot order — exactly where the materializing path, which evaluates
   nest expressions group by group before any output, would have raised
   it — then bind each aggregate's finished value (or its call-site
   poison marker, unwrapped by the engine's internal builtin) under the
   mangled variable names the optimizer substituted. *)
let agg_output (shape : Plan.group_shape) groups =
  List.iter
    (fun (grp : agg_row Xq_engine.Group.group) ->
      List.iter
        (fun row ->
          Array.iter
            (fun acc ->
              match Acc.nest_err acc with
              | Some (code, msg) -> raise (Xerror.Error (code, msg))
              | None -> ())
            row.ar_accs)
        grp.Xq_engine.Group.members)
    groups;
  List.map
    (fun (grp : agg_row Xq_engine.Group.group) ->
      let row =
        match grp.Xq_engine.Group.members with
        | [ row ] -> row
        | _ -> assert false (* reduce mode retains exactly one member *)
      in
      let out =
        List.fold_left2
          (fun out (k : Ast.group_key) key_value ->
            Smap.add k.Ast.key_var key_value out)
          Smap.empty shape.Plan.keys grp.Xq_engine.Group.keys
      in
      let slot = ref (-1) in
      List.fold_left
        (fun out (v, kinds) ->
          incr slot;
          let acc = row.ar_accs.(!slot) in
          List.fold_left
            (fun out kind ->
              let value =
                match Acc.finish acc kind with
                | Ok seq -> seq
                | Error (code, msg) ->
                  [
                    Item.Atomic (Atomic.Str Acc.poison_tag);
                    Item.Atomic (Atomic.Str (Xerror.code_to_string code));
                    Item.Atomic (Atomic.Str msg);
                  ]
              in
              Smap.add (Acc.mangle v kind) value out)
            out kinds)
        out shape.Plan.aggs)
    groups

(* Apply a user (or builtin) equality function to two key sequences by
   binding them to fresh variables and evaluating a call. *)
let apply_equality ctx fname a b =
  let va = "xq-algebra-eq-lhs" and vb = "xq-algebra-eq-rhs" in
  let ctx = Xq_engine.Context.bind (Xq_engine.Context.bind ctx va a) vb b in
  Xseq.effective_boolean_value
    (Xq_engine.Eval.eval ctx (Ast.Call (fname, [ Ast.Var va; Ast.Var vb ])))

let shape_keys_of ctx (shape : Plan.group_shape) tuple =
  List.map
    (fun (k : Ast.group_key) -> eval_in ctx tuple k.Ast.key_expr)
    shape.Plan.keys

(* May grouping evaluate this shape's key expressions on the pool?
   Delegated to the engine's static check. *)
let shape_parallel_keys ctx (shape : Plan.group_shape) =
  List.for_all
    (fun (k : Ast.group_key) -> Xq_engine.Eval.parallel_safe ctx k.Ast.key_expr)
    shape.Plan.keys

(* --- batched pipeline --------------------------------------------------- *)

(* The executor is batch-at-a-time: tuples flow between operators in
   vectors of [Batch.size ()] (default 4096, [XQ_BATCH]/[--batch]), so
   per-tuple dispatch, governor bookkeeping and domain-pool task setup
   amortize over a whole vector. Each operator is a sink: [push] consumes
   one vector, [close] flushes whatever the operator buffered (expansion
   remainders, the sort's accumulated input, a group builder) and closes
   downstream. [Unit] is the source — its [close] injects the seed tuple
   and drives the cascade. At [XQ_BATCH=1] the same code degenerates to
   item-at-a-time execution (every vector is a singleton), which is the
   bench ablation's baseline mode.

   Byte-identity at any batch size: stateless operators are pure maps
   over each vector; stateful ones (Number's counter, Sort's barrier,
   the group builders — see {!Xq_engine.Group.builder}) are defined over
   the concatenated stream, which is independent of where vector
   boundaries fall. *)

module Batch = Xq_par.Batch

type vec = tuple array

type sink = {
  push : vec -> unit;
  close : unit -> unit;
  pressure : unit -> unit;
      (* shed what the operator can spare under memory pressure (group
         builders flush flushable partitions); stateless operators just
         propagate downstream. Called from the streamed scan's pressure
         callback — i.e. never while a push is in flight. *)
}

(* Accumulate single tuples and emit full vectors downstream. *)
let rebatcher batch down =
  let cap = max 1 batch in
  let buf = Array.make cap Smap.empty in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      down.push (Array.sub buf 0 !fill);
      fill := 0
    end
  in
  let push_one t =
    Array.unsafe_set buf !fill t;
    incr fill;
    if !fill >= cap then flush ()
  in
  (push_one, flush)

let scan_comparators ctx (shape : Plan.group_shape) =
  let module Key = Xq_engine.Key in
  let comparators =
    Array.of_list
      (List.map
         (fun (k : Ast.group_key) ->
           match k.Ast.using with
           | None ->
             fun (a : Key.single) (b : Key.single) -> Key.equal_single a b
           | Some fname ->
             fun (a : Key.single) (b : Key.single) ->
               apply_equality ctx fname a.Key.orig b.Key.orig)
         shape.Plan.keys)
  in
  fun i a b -> comparators.(i) a b

(* Build the sink for one operator. [tally] counts comparator work (key
   equality tests, sort comparisons); [batches] counts the input vectors
   the operator receives (EXPLAIN's [batch=] annotation). [parallel] is
   the domain-pool degree; any degree produces byte-identical output. *)
let op_sink ?tally ?batches ~batch ~parallel ctx (op : Plan.op) (down : sink) :
    sink =
  let count_batch () = match batches with Some r -> incr r | None -> () in
  match op with
  | Plan.Unit ->
    {
      push = (fun _ -> ());
      close =
        (fun () ->
          Governor.tick ();
          down.push [| Smap.empty |];
          down.close ());
      pressure = down.pressure;
    }
  | Plan.For_expand { var; positional; source; _ } ->
    let push_one, flush = rebatcher batch down in
    {
      push =
        (fun vec ->
          count_batch ();
          Governor.tick ();
          Array.iter
            (fun tuple ->
              let items = eval_in ctx tuple source in
              List.iteri
                (fun i item ->
                  let t = Smap.add var [ item ] tuple in
                  let t =
                    match positional with
                    | Some p -> Smap.add p (Xseq.of_int (i + 1)) t
                    | None -> t
                  in
                  push_one t)
                items)
            vec);
      close =
        (fun () ->
          flush ();
          down.close ());
      pressure = down.pressure;
    }
  | Plan.Let_bind { var; expr; _ } ->
    let par_ok = parallel > 1 && Xq_engine.Eval.parallel_safe ctx expr in
    let bind tuple = Smap.add var (eval_in ctx tuple expr) tuple in
    {
      push =
        (fun vec ->
          count_batch ();
          Governor.tick ();
          down.push
            (if par_ok then Par.map ~degree:parallel bind vec
             else Array.map bind vec));
      close = (fun () -> down.close ());
      pressure = down.pressure;
    }
  | Plan.Select { pred; _ } ->
    let par_ok = parallel > 1 && Xq_engine.Eval.parallel_safe ctx pred in
    let test tuple = Xseq.effective_boolean_value (eval_in ctx tuple pred) in
    {
      push =
        (fun vec ->
          count_batch ();
          Governor.tick ();
          let keep =
            if par_ok then Par.map ~degree:parallel test vec
            else Array.map test vec
          in
          let kept = Array.fold_left (fun n b -> if b then n + 1 else n) 0 keep in
          if kept = Array.length vec then down.push vec
          else if kept > 0 then begin
            let out = Array.make kept Smap.empty in
            let j = ref 0 in
            Array.iteri
              (fun i t ->
                if keep.(i) then begin
                  out.(!j) <- t;
                  incr j
                end)
              vec;
            down.push out
          end);
      close = (fun () -> down.close ());
      pressure = down.pressure;
    }
  | Plan.Number { var; _ } ->
    let n = ref 0 in
    {
      push =
        (fun vec ->
          count_batch ();
          Governor.tick ();
          down.push
            (Array.map
               (fun t ->
                 incr n;
                 Smap.add var (Xseq.of_int !n) t)
               vec));
      close = (fun () -> down.close ());
      pressure = down.pressure;
    }
  | Plan.Window_expand { window; _ } ->
    let push_one, flush = rebatcher batch down in
    {
      push =
        (fun vec ->
          count_batch ();
          Governor.tick ();
          Array.iter
            (fun tuple ->
              List.iter
                (fun bindings ->
                  push_one
                    (List.fold_left
                       (fun m (v, value) -> Smap.add v value m)
                       Smap.empty bindings))
                (Xq_engine.Eval.expand_window_bindings ctx window
                   (Smap.bindings tuple)))
            vec);
      close =
        (fun () ->
          flush ();
          down.close ());
      pressure = down.pressure;
    }
  | Plan.Sort { specs; _ } ->
    (* a barrier: order is only defined over the whole stream *)
    let acc = ref [] in
    {
      push =
        (fun vec ->
          count_batch ();
          acc := vec :: !acc);
      close =
        (fun () ->
          Governor.tick ();
          let input = List.concat_map Array.to_list (List.rev !acc) in
          acc := [];
          let push_one, flush = rebatcher batch down in
          List.iter push_one (sort_tuples ?tally ~parallel ctx specs input);
          flush ();
          down.close ());
      pressure = down.pressure;
    }
  | Plan.Hash_group _ | Plan.Sort_group _ | Plan.Scan_group _ ->
    let shape =
      match op with
      | Plan.Hash_group s | Plan.Scan_group s -> s
      | Plan.Sort_group { shape; _ } -> shape
      | _ -> assert false
    in
    let mode =
      match op with
      | Plan.Hash_group _ -> `Hash
      | Plan.Sort_group { sorted_output; _ } -> `Sort sorted_output
      | _ -> `Scan (scan_comparators ctx shape)
    in
    (* EXPLAIN-fed presizing: a previous run of a structurally identical
       grouping reported its group count; start the hash tables there.
       Skipped at batch size 1 (the baseline mode measures unsized
       builds); the count is re-reported after every finish. *)
    let signature = Plan.op_line op in
    let presize =
      if batch > 1 then Optimizer.estimated_groups ~signature else None
    in
    if shape.Plan.aggs <> [] then begin
      (* eager aggregation: fold tuples into per-group accumulators at
         feed time instead of materializing member lists *)
      let nslots = List.length shape.Plan.nests in
      let nests = Array.of_list shape.Plan.nests in
      let agg_codec : agg_row Xq_engine.Group.codec =
        {
          Xq_engine.Group.enc =
            (fun _reg buf r ->
              Binio.put_varint buf (Array.length r.ar_accs);
              Array.iter (fun a -> Acc.encode buf a) r.ar_accs);
          dec =
            (fun _reg rd ->
              let n = Binio.get_varint rd in
              if n <> nslots then
                raise
                  (Binio.Corrupt
                     (Printf.sprintf "accumulator arity %d, expected %d" n
                        nslots));
              { ar_keys = []; ar_accs = Array.init nslots (fun _ -> Acc.decode rd) });
        }
      in
      let row_cost r =
        Array.fold_left (fun c a -> c + Acc.charged_bytes a) 0 r.ar_accs
      in
      let make_row tuple =
        let keys = shape_keys_of ctx shape tuple in
        let accs = Array.init nslots (fun _ -> Acc.create ()) in
        Array.iteri
          (fun i (n : Ast.nest_spec) ->
            match eval_in ctx tuple n.Ast.nest_expr with
            | value -> Acc.step accs.(i) value
            | exception Xerror.Error (code, msg)
              when not (Xerror.is_resource code) ->
              (* delivered later, in the materializing path's order *)
              Acc.poison_nest accs.(i) code msg)
          nests;
        { ar_keys = keys; ar_accs = accs }
      in
      let merge_rows a b =
        Array.iteri (fun i acc -> ignore (Acc.merge acc b.ar_accs.(i))) a.ar_accs;
        a
      in
      let par_rows =
        parallel > 1
        && shape_parallel_keys ctx shape
        && List.for_all
             (fun (n : Ast.nest_spec) ->
               Xq_engine.Eval.parallel_safe ctx n.Ast.nest_expr)
             shape.Plan.nests
      in
      let bld =
        Xq_engine.Group.builder ?tally ?presize ~spill:agg_codec ~cost:row_cost
          ~reduce:merge_rows ~parallel
          ~parallel_keys:(parallel > 1) (* keys_of is a pure field read *)
          ~mode
          ~keys_of:(fun r -> r.ar_keys)
          ()
      in
      {
        push =
          (fun vec ->
            count_batch ();
            Governor.tick ();
            Xq_engine.Group.feed bld
              (if par_rows then Par.map ~degree:parallel make_row vec
               else Array.map make_row vec));
        close =
          (fun () ->
            let groups = Xq_engine.Group.finish bld in
            Optimizer.note_groups ~signature (List.length groups);
            let push_one, flush = rebatcher batch down in
            List.iter push_one (agg_output shape groups);
            flush ();
            down.close ());
        pressure =
          (fun () ->
            Xq_engine.Group.relieve bld;
            down.pressure ());
      }
    end
    else begin
      (* streamed scans feed detached subtrees; see [tuple_cost] *)
      let cost =
        if Governor.stream_detach () then Some tuple_cost else None
      in
      let bld =
        Xq_engine.Group.builder ?tally ?presize ~spill:tuple_codec ?cost
          ~parallel
          ~parallel_keys:(parallel > 1 && shape_parallel_keys ctx shape)
          ~mode
          ~keys_of:(shape_keys_of ctx shape)
          ()
      in
      {
        push =
          (fun vec ->
            count_batch ();
            Xq_engine.Group.feed bld vec);
        close =
          (fun () ->
            let groups = Xq_engine.Group.finish bld in
            Optimizer.note_groups ~signature (List.length groups);
            let push_one, flush = rebatcher batch down in
            List.iter push_one (group_output ?tally ctx shape groups);
            flush ();
            down.close ());
        pressure =
          (fun () ->
            Xq_engine.Group.relieve bld;
            down.pressure ());
      }
    end

(* The pipeline is a linear chain; list its operators innermost first. *)
let linearize op =
  let rec go acc (op : Plan.op) =
    match Plan.input_of op with
    | None -> op :: acc
    | Some input -> go (op :: acc) input
  in
  go [] op

(* --- instrumentation ------------------------------------------------------ *)

module Stats = struct
  type entry = {
    label : string;
    rows_in : int;
    rows_out : int;
    groups_built : int option;
    cmp_calls : int;
    key_walks : int;
    spilled_bytes : int;
    spill_files : int;
    repartitions : int;
    dict_interns : int;
    dict_entries : int;
    batches : int;
    batch : int;
    par : int;
    elapsed_ms : float;
  }

  (* Innermost operator first, the return clause last — execution order. *)
  type t = entry list
end

(* Spill counters of the installed governor, for per-operator deltas
   (mirrors the key_walks delta pattern). All zero when ungoverned, so
   the fields stay silent in EXPLAIN ANALYZE output. *)
let spill_now () =
  match Governor.current () with
  | None -> (0, 0, 0)
  | Some g ->
    let s = Governor.stats g in
    ( s.Governor.s_spilled_bytes,
      s.Governor.s_spill_files,
      s.Governor.s_repartitions )

let op_label (op : Plan.op) =
  match op with
  | Plan.Unit -> "UNIT"
  | Plan.For_expand { var; _ } -> "FOR-EXPAND $" ^ var
  | Plan.Let_bind { var; _ } -> "LET-BIND $" ^ var
  | Plan.Select _ -> "SELECT"
  | Plan.Number { var; _ } -> "NUMBER $" ^ var
  | Plan.Window_expand { window; _ } -> "WINDOW $" ^ window.Ast.w_var
  | Plan.Sort _ -> "SORT"
  | Plan.Hash_group _ -> "HASH-GROUP"
  | Plan.Scan_group _ -> "SCAN-GROUP"
  | Plan.Sort_group _ -> "SORT-GROUP"

let is_grouping = function
  | Plan.Hash_group _ | Plan.Scan_group _ | Plan.Sort_group _ -> true
  | Plan.Unit | Plan.For_expand _ | Plan.Let_bind _ | Plan.Select _
  | Plan.Number _ | Plan.Window_expand _ | Plan.Sort _ ->
    false

let number_stream plan stream =
  match plan.Plan.return_at with
  | None -> stream
  | Some v -> List.mapi (fun i t -> Smap.add v (Xseq.of_int (i + 1)) t) stream

(* Which operators can actually use the pool (the [par=] annotation). *)
let op_parallelizable ctx = function
  | Plan.Sort _ -> true
  | Plan.Let_bind { expr; _ } -> Xq_engine.Eval.parallel_safe ctx expr
  | Plan.Select { pred; _ } -> Xq_engine.Eval.parallel_safe ctx pred
  | op -> is_grouping op

(* Run one operator over a materialized input, feeding it vectors of
   [batch] tuples — the instrumented path stays operator-at-a-time (so
   per-operator timings and deltas are exact) while exercising exactly
   the sinks the streaming [run] uses. *)
let apply_op ?tally ?batches ~batch ~parallel ctx op input =
  let acc = ref [] in
  let collector =
    {
      push = (fun vec -> acc := vec :: !acc);
      close = (fun () -> ());
      pressure = (fun () -> ());
    }
  in
  let s = op_sink ?tally ?batches ~batch ~parallel ctx op collector in
  (match op with
  | Plan.Unit -> ()
  | _ ->
    let arr = Array.of_list input in
    let n = Array.length arr in
    let base = ref 0 in
    while !base < n do
      let len = min batch (n - !base) in
      s.push (Array.sub arr !base len);
      base := !base + len
    done);
  s.close ();
  List.concat_map Array.to_list (List.rev !acc)

let run_instrumented ?(parallel = 1) ctx (plan : Plan.plan) =
  (* CPU-time profile per operator, innermost first (Sys.time keeps the
     library free of clock dependencies; the bench harness uses the
     monotonic clock for wall time). *)
  let batch = Batch.size () in
  let stats = ref [] in
  let stream =
    List.fold_left
      (fun input op ->
        let tally = ref 0 in
        let batches = ref 0 in
        let rows_in = List.length input in
        let walks0 = Xq_engine.Key.walk_count () in
        let interns0 = Xq_engine.Key.intern_count () in
        let sb0, sf0, rp0 = spill_now () in
        let t0 = Sys.time () in
        let out = apply_op ~tally ~batches ~batch ~parallel ctx op input in
        let elapsed_ms = (Sys.time () -. t0) *. 1000.0 in
        let sb1, sf1, rp1 = spill_now () in
        let rows_out = List.length out in
        stats :=
          {
            Stats.label = op_label op;
            rows_in;
            rows_out;
            groups_built = (if is_grouping op then Some rows_out else None);
            cmp_calls = !tally;
            key_walks = Xq_engine.Key.walk_count () - walks0;
            spilled_bytes = sb1 - sb0;
            spill_files = sf1 - sf0;
            repartitions = rp1 - rp0;
            dict_interns = Xq_engine.Key.intern_count () - interns0;
            dict_entries = Xq_engine.Key.dict_size ();
            batches = !batches;
            batch;
            par = (if op_parallelizable ctx op then parallel else 1);
            elapsed_ms;
          }
          :: !stats;
        out)
      [] (linearize plan.Plan.pipeline)
  in
  let numbered = number_stream plan stream in
  let t0 = Sys.time () in
  let result =
    Xseq.concat
      (List.map (fun t -> eval_in ctx t plan.Plan.return_expr) numbered)
  in
  let elapsed_ms = (Sys.time () -. t0) *. 1000.0 in
  stats :=
    {
      Stats.label = "RETURN";
      rows_in = List.length numbered;
      rows_out = List.length result;
      groups_built = None;
      cmp_calls = 0;
      key_walks = 0;
      spilled_bytes = 0;
      spill_files = 0;
      repartitions = 0;
      dict_interns = 0;
      dict_entries = 0;
      batches = 0;
      batch;
      par = 1;
      elapsed_ms;
    }
    :: !stats;
  (result, List.rev !stats)

type operator_stat = {
  op_label : string;
  tuples_out : int;
  elapsed_ms : float;
}

let run_profiled ?parallel ctx (plan : Plan.plan) =
  let result, stats = run_instrumented ?parallel ctx plan in
  ( result,
    List.map
      (fun (e : Stats.entry) ->
        {
          op_label = e.Stats.label;
          tuples_out = e.Stats.rows_out;
          elapsed_ms = e.Stats.elapsed_ms;
        })
      stats )

let run ?parallel ctx (plan : Plan.plan) =
  let parallel = match parallel with Some p -> p | None -> 1 in
  let batch = Batch.size () in
  let rev_out = ref [] in
  let counter = ref 0 in
  let final =
    {
      push =
        (fun vec ->
          Array.iter
            (fun t ->
              let t =
                match plan.Plan.return_at with
                | None -> t
                | Some v ->
                  incr counter;
                  Smap.add v (Xseq.of_int !counter) t
              in
              rev_out := eval_in ctx t plan.Plan.return_expr :: !rev_out)
            vec);
      close = (fun () -> ());
      pressure = (fun () -> ());
    }
  in
  let chain =
    List.fold_right
      (fun op down -> op_sink ~batch ~parallel ctx op down)
      (linearize plan.Plan.pipeline)
      final
  in
  chain.close ();
  Xseq.concat (List.rev !rev_out)

(* The body's top-level FLWORs (including members of a top-level sequence)
   execute through plans; other expressions — and FLWORs nested inside
   them — evaluate through the engine, which has identical semantics. *)
let rec eval_top ~optimize ~strategy ~parallel ctx (e : Ast.expr) =
  match e with
  | Ast.Flwor f ->
    let plan = Plan.of_flwor f in
    let plan = Optimizer.apply_strategy strategy plan in
    let plan = Optimizer.push_aggregates plan in
    let plan = if optimize then Optimizer.optimize plan else plan in
    run ~parallel ctx plan
  | Ast.Sequence es ->
    Xseq.concat (List.map (eval_top ~optimize ~strategy ~parallel ctx) es)
  | _ -> Xq_engine.Eval.eval ctx e

(* Dynamic context for a query: prolog, focus on the context node, then
   the prolog's global variables (evaluated in order). *)
let query_context ~context_node (q : Ast.query) =
  let ctx = Xq_engine.Context.of_prolog q.Ast.prolog in
  let focus =
    { Xq_engine.Context.item = Item.Node context_node; position = 1; size = 1 }
  in
  let ctx = Xq_engine.Context.with_focus ctx focus in
  List.fold_left
    (fun ctx (v, e) ->
      Xq_engine.Context.bind_global ctx v (Xq_engine.Eval.eval ctx e))
    ctx q.Ast.prolog.Ast.global_vars

let eval_query ?(check = true) ?(optimize = false) ?strategy ?parallel
    ~context_node (q : Ast.query) =
  if check then Static.check_query q;
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Optimizer.strategy_from_env ()
  in
  let parallel =
    match parallel with
    | Some p -> p
    | None -> Par.default_degree ()
  in
  let ctx = query_context ~context_node q in
  eval_top ~optimize ~strategy ~parallel ctx q.Ast.body

let run_string ?optimize ?strategy ?parallel ~context_node src =
  eval_query ?optimize ?strategy ?parallel ~context_node
    (Parser.parse_query src)

(* --- streamed execution -------------------------------------------------- *)

(* Pipelined scan: document subtrees matched by the projection path flow
   into the operator chain batch-at-a-time *while parsing proceeds* —
   the plan's [Unit; For_expand] prefix (the binding the projection
   analysis proved equivalent to the scan) is replaced by the streamed
   source, and the rest of the chain (selection, grouping with spill,
   sorting) runs unchanged. Matched subtrees are charged against the
   governor from emission until their vector is handed downstream, so
   memory pressure sees parse-ahead data; the governor's stream mode
   additionally switches group spilling to the detached by-value codec,
   which is what lets spilled members actually release heap. *)
let eval_query_stream ?(check = true) ?(optimize = false) ?strategy ?parallel
    ?keep_whitespace ~source ~path ~var ~positional (q : Ast.query) =
  if check then Static.check_query q;
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Optimizer.strategy_from_env ()
  in
  let parallel =
    match parallel with
    | Some p -> p
    | None -> Par.default_degree ()
  in
  let f =
    match q.Ast.body with
    | Ast.Flwor f -> f
    | _ -> invalid_arg "Exec.eval_query_stream: body is not a FLWOR"
  in
  let plan = Plan.of_flwor f in
  let plan = Optimizer.apply_strategy strategy plan in
  let plan = Optimizer.push_aggregates plan in
  let plan = if optimize then Optimizer.optimize plan else plan in
  let rest =
    match linearize plan.Plan.pipeline with
    | Plan.Unit :: Plan.For_expand { var = v; _ } :: rest when v = var -> rest
    | _ ->
      invalid_arg
        "Exec.eval_query_stream: plan does not start with the streamed binding"
  in
  (* the focus never escapes into the query (the projection verdict
     rejects free context items), so an empty document stands in *)
  let ctx = query_context ~context_node:(Node.document ()) q in
  let batch = Batch.size () in
  let rev_out = ref [] in
  let counter = ref 0 in
  let final =
    {
      push =
        (fun vec ->
          Array.iter
            (fun t ->
              let t =
                match plan.Plan.return_at with
                | None -> t
                | Some v ->
                  incr counter;
                  Smap.add v (Xseq.of_int !counter) t
              in
              rev_out := eval_in ctx t plan.Plan.return_expr :: !rev_out)
            vec);
      close = (fun () -> ());
      pressure = (fun () -> ());
    }
  in
  (* parse-ahead accounting: emitted subtrees stay charged until their
     vector is consumed downstream (whose own accounting then sees them
     via the heap estimate) *)
  let pending = ref 0 in
  let release () =
    if !pending > 0 then begin
      Governor.uncharge_bytes !pending;
      pending := 0
    end
  in
  (* Stream mode goes on before the chain is built: group operators read
     it at construction time to pick the detached spill codec and the
     real per-member cost estimate — built earlier they would spill
     references into files that pin the very heap the flush was meant to
     release. *)
  let was_stream = Governor.stream_detach () in
  (match Governor.current () with
   | Some g -> Governor.set_stream_mode g true
   | None -> ());
  Fun.protect
    ~finally:(fun () ->
      release ();
      match Governor.current () with
      | Some g -> Governor.set_stream_mode g was_stream
      | None -> ())
    (fun () ->
      let chain =
        List.fold_right
          (fun op down -> op_sink ~batch ~parallel ctx op down)
          rest final
      in
      let releasing =
        {
          push =
            (fun vec ->
              chain.push vec;
              release ());
          close = chain.close;
          pressure = chain.pressure;
        }
      in
      let push_one, flush = rebatcher batch releasing in
      (* Parse-ahead is bounded in bytes, not just tuples: a full
         default vector of captured subtrees can hold several MB (live
         in the heap and charged), which alone eats most of a small
         budget. Hand a partial vector downstream once the accumulated
         estimate passes a slice of the watermark; operators are
         byte-identical at any vector boundary. *)
      let ahead_cap =
        let wm = Governor.spill_watermark () in
        if wm = max_int then max_int else max (wm / 8) 65536
      in
      let idx = ref 0 in
      let emit ~bytes n =
        if bytes > 0 then begin
          Governor.charge_bytes bytes;
          pending := !pending + bytes
        end;
        incr idx;
        let t = Smap.add var [ Item.Node n ] Smap.empty in
        let t =
          match positional with
          | Some p -> Smap.add p (Xseq.of_int !idx) t
          | None -> t
        in
        push_one t;
        if !pending >= ahead_cap then flush ()
      in
      (* Parse garbage — skipped content and already-consumed subtrees —
         dominates the Gc-delta memory estimate during a streamed scan,
         and nothing else collects it before the hard budget check (the
         group's flush callback only engages once enough live group
         state accumulates). Under pressure, collect it ourselves; the
         growth guard keeps the collector from thrashing while the
         estimate stays pressure-dominated. Operators that register
         their own callback (hash-group inserts) shadow this one for
         their scope and restore it after. *)
      let floor_words =
        let wm = Governor.spill_watermark () in
        let bytes =
          if wm = max_int then 32 lsl 20 else max (wm / 8) (1 lsl 18)
        in
        bytes / (Sys.word_size / 8)
      in
      let last_heap = ref (Gc.quick_stat ()).Gc.heap_words in
      let relieve () =
        (* first let the chain shed retained state (group partitions
           flush to spill files), then collect the parse garbage *)
        chain.pressure ();
        let h = (Gc.quick_stat ()).Gc.heap_words in
        if h - !last_heap >= floor_words then begin
          Gc.full_major ();
          last_heap := (Gc.quick_stat ()).Gc.heap_words
        end
      in
      (* Bounded-memory mode trades collector idle time for footprint:
         the default pacing (space_overhead 120) lets the major heap
         balloon to > 2x the live set while parse garbage pours in at
         wire speed, and the pool high-water never comes back down — the
         Gc-delta estimate would trip the budget on memory that is
         mostly reusable. Tighter pacing keeps the heap near the live
         set for the scan's duration; ungoverned scans keep the stock
         throughput-friendly setting. *)
      let old_gc = Gc.get () in
      if Governor.spill_watermark () < max_int then
        Gc.set { old_gc with Gc.space_overhead = 30 };
      Fun.protect
        ~finally:(fun () -> Gc.set old_gc)
        (fun () ->
          Governor.with_pressure_callback relieve (fun () ->
              Xq_xml.Xml_stream.scan ?keep_whitespace ~path ~emit source;
              flush ();
              chain.close ())));
  Xseq.concat (List.rev !rev_out)
