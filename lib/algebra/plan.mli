(** A physical tuple-stream algebra for FLWOR expressions.

    The paper's argument is about plans: an explicit [group by] lets the
    engine emit a single {!Hash_group} operator where the implicit idiom
    forces nested scans. This module makes those plans first-class — the
    same shape System RX (and the Natix tuple algebra the paper cites)
    uses: a tree of operators over streams of variable-binding tuples.

    {!compile} translates a FLWOR clause list into an operator tree;
    {!Exec.run} interprets it (delegating expression evaluation to
    [Xq_engine.Eval]); [Exec.to_string] renders the plan. The test suite
    proves [Exec.run ∘ compile] agrees with the direct evaluator on the
    paper's queries and on randomized workloads. *)

open Xq_lang

type op =
  | Unit  (** the stream containing one empty tuple *)
  | For_expand of {
      var : string;
      positional : string option;
      source : Ast.expr;
      input : op;
    }  (** map-concat: one output tuple per item of [source] per input tuple *)
  | Let_bind of { var : string; expr : Ast.expr; input : op }
  | Select of { pred : Ast.expr; input : op }  (** [where] *)
  | Number of { var : string; input : op }  (** [count $var] *)
  | Window_expand of { window : Ast.window_clause; input : op }
      (** the XQuery 3.0 window clause *)
  | Sort of {
      stable : bool;
      specs : (Ast.expr * Ast.order_modifier) list;
      input : op;
    }
  | Hash_group of group_shape  (** all keys use fn:deep-equal *)
  | Scan_group of group_shape  (** some key has a [using] comparator *)
  | Sort_group of { shape : group_shape; sorted_output : bool }
      (** sort by atomized keys, emit groups from equal runs (deep-equal
          tie-break within a run keeps results identical to
          [Hash_group]); [sorted_output] leaves groups in key order — a
          downstream sort on the keys has been fused away *)

and group_shape = {
  keys : Ast.group_key list;
  nests : Ast.nest_spec list;
  aggs : (string * Xq_engine.Acc.kind list) list;
      (** non-empty iff the optimizer pushed eager aggregation into this
          group: one entry per nest spec (same order), naming the
          aggregate kinds the return expression applies to that variable
          ([[]] for a dead variable that is never read). Empty list =
          the group materializes member lists as usual. *)
  input : op;
}

(** Compile a FLWOR's clause list bottom-up into an operator tree. *)
val compile : Ast.clause list -> op

(** Compile a whole FLWOR; the result pairs the plan with the return
    clause. *)
type plan = {
  pipeline : op;
  return_at : string option;
  return_expr : Ast.expr;
}

val of_flwor : Ast.flwor -> plan

(** Operator count (plan size), for tests and plan output. *)
val size : op -> int

(** The operator's input (pipelines are linear chains); [None] for
    {!Unit}. *)
val input_of : op -> op option

(** One-line rendering of a single operator (no children). *)
val op_line : op -> string

(** One-line rendering of the plan's return clause. *)
val return_line : plan -> string

(** Render the operator tree, one operator per line, leaves last. *)
val to_string : plan -> string
