(** Interpreter for {!Plan} operator trees. Expression evaluation is
    delegated to [Xq_engine.Eval]; tuple-stream mechanics (expansion,
    selection, sorting, grouping, numbering) run here over the explicit
    operators, so a plan is exactly what executes. *)

open Xq_xdm

(** Execute a plan in a dynamic context (as built by the engine).
    [parallel] is the domain-pool degree for grouping and sorting
    operators (default: [Par.default_degree ()], i.e. [XQ_PARALLEL] or
    1); output is byte-identical at any degree. *)
val run : ?parallel:int -> Xq_engine.Context.t -> Plan.plan -> Xseq.t

(** {1 Instrumentation}

    [run_instrumented] executes the plan while collecting per-operator
    runtime statistics — what EXPLAIN ANALYZE renders. *)

module Stats : sig
  type entry = {
    label : string;        (** e.g. ["HASH-GROUP"], ["FOR-EXPAND $x"] *)
    rows_in : int;         (** cardinality of the operator's input stream *)
    rows_out : int;        (** cardinality of its output stream *)
    groups_built : int option;
        (** groups emitted, for grouping operators only *)
    cmp_calls : int;
        (** comparator work: key equality tests and sort comparisons *)
    key_walks : int;
        (** key node subtrees materialized (canonicalization walks) —
            grouping walks each key node exactly once, comparisons none *)
    spilled_bytes : int;
        (** bytes this operator wrote to spill files (0 when grouping
            stayed in memory or no governor is installed) *)
    spill_files : int;   (** spill files this operator created *)
    repartitions : int;
        (** recursive repartition passes over oversized spill files *)
    dict_interns : int;
        (** node keys this operator interned into the key dictionary
            (0 for non-grouping operators and for small inputs) *)
    dict_entries : int;
        (** size of the process key dictionary after this operator *)
    batches : int;
        (** input vectors the operator consumed (1 for small inputs;
            0 for sources) *)
    batch : int;         (** configured batch size ([XQ_BATCH]/[--batch]) *)
    par : int;
        (** domain-pool degree available to this operator (1 when the
            operator cannot parallelize) *)
    elapsed_ms : float;    (** CPU time spent in this operator *)
  }

  (** Innermost operator first, the return clause last — execution
      order. *)
  type t = entry list
end

val run_instrumented :
  ?parallel:int -> Xq_engine.Context.t -> Plan.plan -> Xseq.t * Stats.t

(** {1 Profiling (legacy summary view)} *)

type operator_stat = {
  op_label : string;    (** e.g. ["HASH-GROUP"], ["FOR-EXPAND $x"] *)
  tuples_out : int;     (** cardinality of the operator's output stream *)
  elapsed_ms : float;   (** CPU time spent in this operator *)
}

(** Execute and report per-operator statistics, innermost operator first
    and the return clause last. A projection of {!run_instrumented}. *)
val run_profiled :
  ?parallel:int ->
  Xq_engine.Context.t ->
  Plan.plan ->
  Xseq.t * operator_stat list

(** Build the dynamic context a query executes in: prolog functions, the
    focus on [context_node], and the prolog's global variables. *)
val query_context :
  context_node:Node.t -> Xq_lang.Ast.query -> Xq_engine.Context.t

(** Compile and execute a whole query against a context node — the
    algebra-backed counterpart of [Xq_engine.Eval.eval_query]: the body's
    top-level FLWORs (including members of a top-level sequence) execute
    through {!Plan} operators; FLWORs nested inside other expressions
    evaluate through the engine, which has identical semantics.
    [optimize] runs {!Optimizer.optimize} on each compiled plan.
    [strategy] selects the grouping operator (default: the
    [XQ_GROUP_STRATEGY] environment variable, else hash). [parallel]
    sets the domain-pool degree (default: [XQ_PARALLEL], else 1 —
    sequential); results are byte-identical at any degree. *)
val eval_query :
  ?check:bool ->
  ?optimize:bool ->
  ?strategy:Optimizer.group_strategy ->
  ?parallel:int ->
  context_node:Node.t ->
  Xq_lang.Ast.query ->
  Xseq.t

(** Execute a streamable query over a streamed document. The caller
    supplies the projection [path], the streamed binding's [var] and
    [positional] name (as derived by the projection analysis); the
    plan's leading [for] expansion is replaced by a pipelined scan that
    feeds matched subtrees into the remaining operator chain
    batch-at-a-time while parsing proceeds. Matched subtrees are
    charged against the installed governor until consumed downstream,
    and the governor's stream mode is enabled for the duration so
    grouping spills detach members by value (memory stays bounded by
    the watermark). Output is byte-identical to {!eval_query} over the
    materialized document for every query the projection analysis
    accepts. Raises whatever the streamed parse raises
    ([Xml_parse.Parse_error], [XQENG0005], [XQENG0008]). *)
val eval_query_stream :
  ?check:bool ->
  ?optimize:bool ->
  ?strategy:Optimizer.group_strategy ->
  ?parallel:int ->
  ?keep_whitespace:bool ->
  source:Xq_xml.Xml_stream.source ->
  path:Xq_xml.Xml_stream.path ->
  var:string ->
  positional:string option ->
  Xq_lang.Ast.query ->
  Xseq.t

(** Parse, check, compile and execute. *)
val run_string :
  ?optimize:bool ->
  ?strategy:Optimizer.group_strategy ->
  ?parallel:int ->
  context_node:Node.t ->
  string ->
  Xseq.t
