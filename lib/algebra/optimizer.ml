open Xq_lang
module Sset = Ast_utils.Sset

let rewrites = ref 0

let last_rewrite_count () = !rewrites

let free = Ast_utils.free_vars

let spec_free specs =
  List.fold_left
    (fun acc (e, _) -> Sset.union acc (free e))
    Sset.empty specs

let group_free (shape : Plan.group_shape) =
  List.fold_left
    (fun acc (k : Ast.group_key) -> Sset.union acc (free k.Ast.key_expr))
    (List.fold_left
       (fun acc (n : Ast.nest_spec) ->
         Sset.union acc
           (Sset.union (free n.Ast.nest_expr) (spec_free n.Ast.nest_order)))
       Sset.empty shape.Plan.nests)
    shape.Plan.keys

let is_true_pred = function
  | Ast.Literal (Xq_xdm.Atomic.Bool true) -> true
  | Ast.Call (name, []) ->
    Xq_xdm.Xname.is_default_fn name && name.Xq_xdm.Xname.local = "true"
  | _ -> false

(* One top-down pass. [live] is the set of variables some operator above
   (or the return clause) still reads. *)
let rec pass live (op : Plan.op) : Plan.op =
  match op with
  | Plan.Unit -> Plan.Unit
  | Plan.Select { pred; input } when is_true_pred pred ->
    incr rewrites;
    pass live input
  | Plan.Select { pred; input = Plan.Select { pred = inner; input } } ->
    incr rewrites;
    pass live (Plan.Select { pred = Ast.And (inner, pred); input })
  | Plan.Select { pred; input = Plan.Sort s } ->
    (* stable sort commutes with filtering *)
    incr rewrites;
    pass live (Plan.Sort { s with input = Plan.Select { pred; input = s.input } })
  | Plan.Select { pred; input = Plan.Let_bind l }
    when not (Sset.mem l.var (free pred)) ->
    incr rewrites;
    pass live
      (Plan.Let_bind { l with input = Plan.Select { pred; input = l.input } })
  | Plan.Select { pred; input } ->
    Plan.Select { pred; input = pass (Sset.union live (free pred)) input }
  | Plan.Let_bind { var; expr; input }
    when (not (Sset.mem var live)) && Ast_utils.pure expr ->
    incr rewrites;
    pass live input
  | Plan.Let_bind { var; expr; input } ->
    let live_below = Sset.union (Sset.remove var live) (free expr) in
    Plan.Let_bind { var; expr; input = pass live_below input }
  | Plan.For_expand { var; positional; source; input } ->
    let live_below =
      let live = Sset.remove var live in
      let live =
        match positional with Some p -> Sset.remove p live | None -> live
      in
      Sset.union live (free source)
    in
    Plan.For_expand { var; positional; source; input = pass live_below input }
  | Plan.Number { var; input } ->
    Plan.Number { var; input = pass (Sset.remove var live) input }
  | Plan.Window_expand { window; input } ->
    let cond_vars (wc : Ast.window_vars_cond) =
      List.filter_map Fun.id
        [ wc.Ast.wc_item; wc.Ast.wc_pos; wc.Ast.wc_prev; wc.Ast.wc_next ]
    in
    let bound =
      window.Ast.w_var
      :: (cond_vars window.Ast.w_start
          @ match window.Ast.w_end with
            | Some { Ast.we_cond; _ } -> cond_vars we_cond
            | None -> [])
    in
    let live_below =
      Sset.union
        (List.fold_left (Fun.flip Sset.remove) live bound)
        (Sset.union (free window.Ast.w_src)
           (Sset.union
              (free window.Ast.w_start.Ast.wc_when)
              (match window.Ast.w_end with
               | Some { Ast.we_cond; _ } -> free we_cond.Ast.wc_when
               | None -> Sset.empty)))
    in
    Plan.Window_expand { window; input = pass live_below input }
  | Plan.Sort { stable; specs; input } ->
    Plan.Sort { stable; specs; input = pass (Sset.union live (spec_free specs)) input }
  | Plan.Hash_group shape ->
    Plan.Hash_group { shape with input = pass (group_free shape) shape.input }
  | Plan.Scan_group shape ->
    Plan.Scan_group { shape with input = pass (group_free shape) shape.input }
  | Plan.Sort_group { shape; sorted_output } ->
    Plan.Sort_group
      {
        shape = { shape with input = pass (group_free shape) shape.input };
        sorted_output;
      }

let optimize (plan : Plan.plan) =
  rewrites := 0;
  let root_live =
    let live = free plan.Plan.return_expr in
    match plan.Plan.return_at with
    | Some v -> Sset.remove v live
    | None -> live
  in
  let rec fix op =
    let before = !rewrites in
    let op' = pass root_live op in
    if !rewrites = before then op' else fix op'
  in
  { plan with Plan.pipeline = fix plan.Plan.pipeline }

(* --- grouping-strategy selection ----------------------------------------- *)

type group_strategy = Hash | Sort | Auto

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "hash" -> Some Hash
  | "sort" -> Some Sort
  | "auto" -> Some Auto
  | _ -> None

let strategy_to_string = function
  | Hash -> "hash"
  | Sort -> "sort"
  | Auto -> "auto"

let strategy_from_env () =
  match Sys.getenv_opt "XQ_GROUP_STRATEGY" with
  | None -> Hash
  | Some s -> Option.value (strategy_of_string s) ~default:Hash

(* [auto] fuses a downstream sort into the grouping only when the sort
   is exactly on the group's key variables, ascending with default empty
   handling — the one case where the run order of the sort-grouping
   matches order-by semantics on singleton keys. *)
let default_modifier (m : Ast.order_modifier) =
  (not m.Ast.descending)
  && (match m.Ast.empty_greatest with None -> true | Some g -> not g)

let specs_cover_keys specs (keys : Ast.group_key list) =
  List.length specs = List.length keys
  && List.for_all2
       (fun (e, m) (k : Ast.group_key) ->
         default_modifier m
         && (match e with Ast.Var v -> v = k.Ast.key_var | _ -> false))
       specs keys

let rec map_strategy strategy (op : Plan.op) : Plan.op =
  match strategy, op with
  | Sort, Plan.Hash_group shape ->
    Plan.Sort_group
      {
        shape = { shape with Plan.input = map_strategy strategy shape.Plan.input };
        sorted_output = false;
      }
  | Auto, Plan.Sort { specs; input = Plan.Hash_group shape; _ }
    when specs_cover_keys specs shape.Plan.keys ->
    Plan.Sort_group
      {
        shape = { shape with Plan.input = map_strategy strategy shape.Plan.input };
        sorted_output = true;
      }
  | _, Plan.Unit -> Plan.Unit
  | _, Plan.For_expand r ->
    Plan.For_expand { r with input = map_strategy strategy r.input }
  | _, Plan.Let_bind r ->
    Plan.Let_bind { r with input = map_strategy strategy r.input }
  | _, Plan.Select r ->
    Plan.Select { r with input = map_strategy strategy r.input }
  | _, Plan.Number r ->
    Plan.Number { r with input = map_strategy strategy r.input }
  | _, Plan.Window_expand r ->
    Plan.Window_expand { r with input = map_strategy strategy r.input }
  | _, Plan.Sort r -> Plan.Sort { r with input = map_strategy strategy r.input }
  | _, Plan.Hash_group shape ->
    Plan.Hash_group
      { shape with Plan.input = map_strategy strategy shape.Plan.input }
  | _, Plan.Scan_group shape ->
    Plan.Scan_group
      { shape with Plan.input = map_strategy strategy shape.Plan.input }
  | _, Plan.Sort_group { shape; sorted_output } ->
    Plan.Sort_group
      {
        shape = { shape with Plan.input = map_strategy strategy shape.Plan.input };
        sorted_output;
      }

let apply_strategy strategy (plan : Plan.plan) =
  match strategy with
  | Hash -> plan
  | Sort | Auto ->
    { plan with Plan.pipeline = map_strategy strategy plan.Plan.pipeline }

(* --- group-cardinality estimates (table presizing) ----------------------- *)

(* EXPLAIN-fed feedback loop: every executed grouping operator reports
   how many groups it built, keyed on its [Plan.op_line] signature; the
   next execution of a structurally identical operator presizes its hash
   tables from that estimate instead of growing by rehash from the
   64-slot default. Purely a performance hint — a stale or missing
   estimate never changes results. Process-wide (the server's resident
   queries are the main beneficiary), bounded, and disabled alongside
   the other batched-execution fast paths for baseline measurements. *)

let estimates : (string, int) Hashtbl.t = Hashtbl.create 64
let estimates_lock = Mutex.create ()
let estimates_cap = 512
let estimate_feedback = Atomic.make true

let set_estimate_feedback b = Atomic.set estimate_feedback b

let note_groups ~signature n =
  if Atomic.get estimate_feedback && n > 0 then
    Mutex.protect estimates_lock (fun () ->
        if
          Hashtbl.length estimates >= estimates_cap
          && not (Hashtbl.mem estimates signature)
        then Hashtbl.reset estimates;
        Hashtbl.replace estimates signature n)

let estimated_groups ~signature =
  if not (Atomic.get estimate_feedback) then None
  else Mutex.protect estimates_lock (fun () -> Hashtbl.find_opt estimates signature)

(* --- eager-aggregation pushdown ------------------------------------------ *)

(* When every use of a nest variable above its grouping operator is an
   eligible one-argument aggregate call ([fn:count]/[sum]/[avg]/[min]/
   [max] on exactly [Var v]), the group need not materialize that
   variable's member list at all: the executor folds each member into a
   per-group running accumulator ({!Xq_engine.Acc}) and the call sites
   read the finished value. [push_aggregates] performs the plan surgery:
   it marks the group shape ([aggs]) and substitutes every eligible call
   site [agg($v)] with the internal unwrap call on the mangled variable
   the executor will bind ([$v!agg]).

   The analysis is deliberately conservative and scope-blind:
   - all-or-nothing per group — every nest variable must be aggregate-
     only or completely unread, or nothing is pushed;
   - a nest variable mentioned inside any construct that also introduces
     a binding of the same name is rejected (occurrence counts cannot be
     trusted under shadowing);
   - [nest ... order by] disables the rewrite (member order feeds the
     fold's error timing);
   - only the topmost grouping operator of the pipeline is considered
     (grammar allows one [group by] per FLWOR anyway);
   - two-argument variants ([sum($v, $zero)], [min($v, $collation)])
     never match the call-site pattern and so fall back to
     materialization. *)

let agg_pushdown_enabled =
  Atomic.make (Sys.getenv_opt "XQ_NO_AGG_PUSHDOWN" = None)

let set_agg_pushdown b = Atomic.set agg_pushdown_enabled b
let agg_pushdown_on () = Atomic.get agg_pushdown_enabled

let agg_kind_of_call (name : Xq_xdm.Xname.t) =
  if Xq_xdm.Xname.is_default_fn name then
    Xq_engine.Acc.kind_of_name name.Xq_xdm.Xname.local
  else None

(* Occurrences of [$v] and of eligible aggregate calls on [$v] in [e].
   Each eligible call contains exactly one [Var v], so the counts agree
   exactly when every occurrence of the variable is an aggregate
   argument. *)
let consumption v e =
  let vars = ref 0 and kinds = ref [] in
  Ast_utils.iter_exprs
    (fun sub ->
      match sub with
      | Ast.Var x when x = v -> incr vars
      | Ast.Call (name, [ Ast.Var x ]) when x = v -> begin
        match agg_kind_of_call name with
        | Some k -> kinds := k :: !kinds
        | None -> ()
      end
      | _ -> ())
    e;
  (!vars, !kinds)

let kind_order = Xq_engine.Acc.[ Count; Sum; Avg; Min; Max ]

(* Binder names and consumer expressions of one operator sitting above
   the grouping operator. *)
let op_binds_exprs (op : Plan.op) =
  match op with
  | Plan.Unit | Plan.Hash_group _ | Plan.Scan_group _ | Plan.Sort_group _ ->
    ([], [])
  | Plan.For_expand { var; positional; source; _ } ->
    (var :: Option.to_list positional, [ source ])
  | Plan.Let_bind { var; expr; _ } -> ([ var ], [ expr ])
  | Plan.Select { pred; _ } -> ([], [ pred ])
  | Plan.Number { var; _ } -> ([ var ], [])
  | Plan.Sort { specs; _ } -> ([], List.map fst specs)
  | Plan.Window_expand { window = w; _ } ->
    let cond (wc : Ast.window_vars_cond) =
      List.filter_map Fun.id
        [ wc.Ast.wc_item; wc.Ast.wc_pos; wc.Ast.wc_prev; wc.Ast.wc_next ]
    in
    ( (w.Ast.w_var :: cond w.Ast.w_start)
      @ (match w.Ast.w_end with
         | Some { Ast.we_cond; _ } -> cond we_cond
         | None -> []),
      w.Ast.w_src :: w.Ast.w_start.Ast.wc_when
      :: (match w.Ast.w_end with
          | Some { Ast.we_cond; _ } -> [ we_cond.Ast.wc_when ]
          | None -> []) )

let push_aggregates (plan : Plan.plan) =
  if not (Atomic.get agg_pushdown_enabled) then plan
  else begin
    (* locate the topmost grouping operator; collect the binders and
       consumer expressions of everything above it *)
    let rec locate above_binds above_exprs op =
      match op with
      | Plan.Hash_group shape | Plan.Scan_group shape
      | Plan.Sort_group { shape; _ } ->
        Some (above_binds, above_exprs, shape)
      | Plan.Unit -> None
      | Plan.For_expand { input; _ }
      | Plan.Let_bind { input; _ }
      | Plan.Select { input; _ }
      | Plan.Number { input; _ }
      | Plan.Window_expand { input; _ }
      | Plan.Sort { input; _ } ->
        let binds, exprs = op_binds_exprs op in
        locate (binds @ above_binds) (exprs @ above_exprs) input
    in
    match locate [] [] plan.Plan.pipeline with
    | None -> plan
    | Some (above_binds, above_exprs, shape) ->
      let nest_vars =
        List.map (fun (n : Ast.nest_spec) -> n.Ast.nest_var) shape.Plan.nests
      in
      let consumers =
        (* [return at $r] shadows [$r] in the return clause; rejected
           below when [$r] is a nest variable, so including the return
           expression unconditionally is sound *)
        plan.Plan.return_expr :: above_exprs
      in
      let shadowed v =
        List.mem v above_binds
        || plan.Plan.return_at = Some v
        || List.exists (Ast_utils.rebinds v) consumers
      in
      let classify v =
        if shadowed v then None
        else
          let vars, kinds =
            List.fold_left
              (fun (vs, ks) e ->
                let v', k' = consumption v e in
                (vs + v', k' @ ks))
              (0, []) consumers
          in
          if vars = 0 then Some []
          else if vars = List.length kinds then
            Some (List.filter (fun k -> List.mem k kinds) kind_order)
          else None
      in
      let slots = List.map (fun v -> (v, classify v)) nest_vars in
      let ok =
        shape.Plan.aggs = []
        && List.for_all
             (fun (n : Ast.nest_spec) -> n.Ast.nest_order = [])
             shape.Plan.nests
        && List.for_all (fun (_, c) -> c <> None) slots
        && List.exists (fun (_, c) -> c <> None && c <> Some []) slots
      in
      if not ok then plan
      else begin
        let aggs = List.map (fun (v, c) -> (v, Option.get c)) slots in
        let unwrap_name = Xq_xdm.Xname.make Xq_engine.Acc.unwrap_local in
        let eligible = List.filter (fun (_, ks) -> ks <> []) aggs in
        let subst e =
          Ast_utils.map_exprs
            (fun sub ->
              match sub with
              | Ast.Call (name, [ Ast.Var x ]) when List.mem_assoc x eligible
                -> begin
                  match agg_kind_of_call name with
                  | Some k ->
                    Some
                      (Ast.Call
                         (unwrap_name, [ Ast.Var (Xq_engine.Acc.mangle x k) ]))
                  | None -> None
                end
              | _ -> None)
            e
        in
        let rec rebuild op =
          match op with
          | Plan.Hash_group shape -> Plan.Hash_group { shape with aggs }
          | Plan.Scan_group shape -> Plan.Scan_group { shape with aggs }
          | Plan.Sort_group { shape; sorted_output } ->
            Plan.Sort_group { shape = { shape with aggs }; sorted_output }
          | Plan.Unit -> op
          | Plan.For_expand r ->
            Plan.For_expand
              { r with source = subst r.source; input = rebuild r.input }
          | Plan.Let_bind r ->
            Plan.Let_bind { r with expr = subst r.expr; input = rebuild r.input }
          | Plan.Select r ->
            Plan.Select { pred = subst r.pred; input = rebuild r.input }
          | Plan.Number r -> Plan.Number { r with input = rebuild r.input }
          | Plan.Window_expand r ->
            Plan.Window_expand { r with input = rebuild r.input }
          | Plan.Sort r ->
            Plan.Sort
              {
                r with
                specs = List.map (fun (e, m) -> (subst e, m)) r.specs;
                input = rebuild r.input;
              }
        in
        {
          plan with
          Plan.pipeline = rebuild plan.Plan.pipeline;
          return_expr = subst plan.Plan.return_expr;
        }
      end
  end

(* Number of aggregate kinds folded into the plan's grouping operator —
   the [agg-pushdown=N] figure EXPLAIN and the stats report. *)
let agg_pushdown_count (plan : Plan.plan) =
  let rec go op =
    match op with
    | Plan.Hash_group shape | Plan.Scan_group shape
    | Plan.Sort_group { shape; _ } ->
      List.fold_left (fun n (_, ks) -> n + List.length ks) 0 shape.Plan.aggs
    | _ -> (
      match Plan.input_of op with None -> 0 | Some input -> go input)
  in
  go plan.Plan.pipeline
