open Ast

module Sset = Set.Make (String)

let rec free_vars e =
  match e with
  | Var v -> Sset.singleton v
  | Literal _ | Context_item | Root -> Sset.empty
  | Sequence es -> unions (List.map free_vars es)
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    Sset.union (free_vars a) (free_vars b)
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    free_vars a
  | If (a, b, c) -> unions [ free_vars a; free_vars b; free_vars c ]
  | Quantified (_, binds, body) ->
    (* left-to-right: each source sees earlier bindings *)
    let bound, from_sources =
      List.fold_left
        (fun (bound, acc) (v, src) ->
          (Sset.add v bound, Sset.union acc (Sset.diff (free_vars src) bound)))
        (Sset.empty, Sset.empty) binds
    in
    Sset.union from_sources (Sset.diff (free_vars body) bound)
  | Step (_, _, preds) -> unions (List.map free_vars preds)
  | Filter (e, preds) -> unions (free_vars e :: List.map free_vars preds)
  | Call (_, args) -> unions (List.map free_vars args)
  | Direct_elem d -> direct_free_vars d
  | Flwor f -> flwor_free_vars f

and unions sets = List.fold_left Sset.union Sset.empty sets

and direct_free_vars d =
  unions
    (List.map
       (fun a ->
         unions
           (List.map
              (function Attr_text _ -> Sset.empty | Attr_expr e -> free_vars e)
              a.attr_value))
       d.attrs
    @ List.map
        (function
          | Content_text _ | Content_comment _ -> Sset.empty
          | Content_expr e -> free_vars e
          | Content_elem child -> direct_free_vars child)
        d.content)

and flwor_free_vars f =
  (* Walk clauses tracking the bound set; the group boundary replaces the
     FLWOR-local bindings with the grouping/nesting variables. *)
  let free = ref Sset.empty in
  let note bound e = free := Sset.union !free (Sset.diff (free_vars e) bound) in
  let bound =
    List.fold_left
      (fun bound clause ->
        match clause with
        | For bindings ->
          List.fold_left
            (fun bound fb ->
              note bound fb.for_src;
              let bound = Sset.add fb.for_var bound in
              match fb.positional with
              | Some p -> Sset.add p bound
              | None -> bound)
            bound bindings
        | Let bindings ->
          List.fold_left
            (fun bound (v, e) ->
              note bound e;
              Sset.add v bound)
            bound bindings
        | Where e ->
          note bound e;
          bound
        | Count v -> Sset.add v bound
        | Window w ->
          note bound w.w_src;
          let cond_vars wc =
            List.filter_map Fun.id [ wc.wc_item; wc.wc_pos; wc.wc_prev; wc.wc_next ]
          in
          let note_cond wc =
            let inner = List.fold_left (Fun.flip Sset.add) bound (cond_vars wc) in
            note inner wc.wc_when
          in
          note_cond w.w_start;
          (match w.w_end with
           | Some { we_cond; _ } ->
             (* the end condition also sees the start condition's vars *)
             let inner =
               List.fold_left (Fun.flip Sset.add) bound
                 (cond_vars w.w_start @ cond_vars we_cond)
             in
             note inner we_cond.wc_when
           | None -> ());
          let bound = Sset.add w.w_var bound in
          let bound =
            List.fold_left (Fun.flip Sset.add) bound (cond_vars w.w_start)
          in
          (match w.w_end with
           | Some { we_cond; _ } ->
             List.fold_left (Fun.flip Sset.add) bound (cond_vars we_cond)
           | None -> bound)
        | Order_by { specs; _ } ->
          List.iter (fun (e, _) -> note bound e) specs;
          bound
        | Group_by g ->
          List.iter (fun k -> note bound k.key_expr) g.keys;
          List.iter
            (fun n ->
              note bound n.nest_expr;
              List.iter (fun (e, _) -> note bound e) n.nest_order)
            g.nests;
          let bound =
            List.fold_left (fun b k -> Sset.add k.key_var b) bound g.keys
          in
          List.fold_left (fun b n -> Sset.add n.nest_var b) bound g.nests)
      Sset.empty f.clauses
  in
  let bound =
    match f.return_at with
    | Some v -> Sset.add v bound
    | None -> bound
  in
  note bound f.return_expr;
  !free

let rec pure e =
  match e with
  | Literal _ | Var _ | Context_item -> true
  | Sequence es -> List.for_all pure es
  | If (c, a, b) -> pure c && pure a && pure b
  | _ -> false

(* Apply [f] to [e] and every subexpression, scope-blind (no binding
   tracking — callers only inspect syntactic features). *)
let rec iter_exprs f e =
  f e;
  match e with
  | Literal _ | Var _ | Context_item | Root -> ()
  | Sequence es -> List.iter (iter_exprs f) es
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    iter_exprs f a;
    iter_exprs f b
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    iter_exprs f a
  | If (a, b, c) ->
    iter_exprs f a;
    iter_exprs f b;
    iter_exprs f c
  | Quantified (_, binds, body) ->
    List.iter (fun (_, src) -> iter_exprs f src) binds;
    iter_exprs f body
  | Step (_, _, preds) -> List.iter (iter_exprs f) preds
  | Filter (e, preds) ->
    iter_exprs f e;
    List.iter (iter_exprs f) preds
  | Call (_, args) -> List.iter (iter_exprs f) args
  | Direct_elem d -> iter_direct f d
  | Flwor fl -> iter_flwor f fl

and iter_direct f d =
  List.iter
    (fun a ->
      List.iter
        (function Attr_text _ -> () | Attr_expr e -> iter_exprs f e)
        a.attr_value)
    d.attrs;
  List.iter
    (function
      | Content_text _ | Content_comment _ -> ()
      | Content_expr e -> iter_exprs f e
      | Content_elem child -> iter_direct f child)
    d.content

and iter_flwor f fl =
  List.iter
    (fun clause ->
      match clause with
      | For bindings -> List.iter (fun fb -> iter_exprs f fb.for_src) bindings
      | Let bindings -> List.iter (fun (_, e) -> iter_exprs f e) bindings
      | Where e -> iter_exprs f e
      | Count _ -> ()
      | Window w ->
        iter_exprs f w.w_src;
        iter_exprs f w.w_start.wc_when;
        (match w.w_end with
         | Some { we_cond; _ } -> iter_exprs f we_cond.wc_when
         | None -> ())
      | Order_by { specs; _ } -> List.iter (fun (e, _) -> iter_exprs f e) specs
      | Group_by g ->
        List.iter (fun k -> iter_exprs f k.key_expr) g.keys;
        List.iter
          (fun n ->
            iter_exprs f n.nest_expr;
            List.iter (fun (e, _) -> iter_exprs f e) n.nest_order)
          g.nests)
    fl.clauses;
  iter_exprs f fl.return_expr

let constructs_nodes e =
  let found = ref false in
  iter_exprs
    (function
      | Direct_elem _ | Comp_elem _ | Comp_attr _ | Comp_text _ -> found := true
      | _ -> ())
    e;
  !found

let call_sites e =
  let acc = ref [] in
  iter_exprs
    (function
      | Call (name, args) -> acc := (name, List.length args) :: !acc
      | _ -> ())
    e;
  !acc
