open Ast

module Sset = Set.Make (String)

let rec free_vars e =
  match e with
  | Var v -> Sset.singleton v
  | Literal _ | Context_item | Root -> Sset.empty
  | Sequence es -> unions (List.map free_vars es)
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    Sset.union (free_vars a) (free_vars b)
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    free_vars a
  | If (a, b, c) -> unions [ free_vars a; free_vars b; free_vars c ]
  | Quantified (_, binds, body) ->
    (* left-to-right: each source sees earlier bindings *)
    let bound, from_sources =
      List.fold_left
        (fun (bound, acc) (v, src) ->
          (Sset.add v bound, Sset.union acc (Sset.diff (free_vars src) bound)))
        (Sset.empty, Sset.empty) binds
    in
    Sset.union from_sources (Sset.diff (free_vars body) bound)
  | Step (_, _, preds) -> unions (List.map free_vars preds)
  | Filter (e, preds) -> unions (free_vars e :: List.map free_vars preds)
  | Call (_, args) -> unions (List.map free_vars args)
  | Direct_elem d -> direct_free_vars d
  | Flwor f -> flwor_free_vars f

and unions sets = List.fold_left Sset.union Sset.empty sets

and direct_free_vars d =
  unions
    (List.map
       (fun a ->
         unions
           (List.map
              (function Attr_text _ -> Sset.empty | Attr_expr e -> free_vars e)
              a.attr_value))
       d.attrs
    @ List.map
        (function
          | Content_text _ | Content_comment _ -> Sset.empty
          | Content_expr e -> free_vars e
          | Content_elem child -> direct_free_vars child)
        d.content)

and flwor_free_vars f =
  (* Walk clauses tracking the bound set; the group boundary replaces the
     FLWOR-local bindings with the grouping/nesting variables. *)
  let free = ref Sset.empty in
  let note bound e = free := Sset.union !free (Sset.diff (free_vars e) bound) in
  let bound =
    List.fold_left
      (fun bound clause ->
        match clause with
        | For bindings ->
          List.fold_left
            (fun bound fb ->
              note bound fb.for_src;
              let bound = Sset.add fb.for_var bound in
              match fb.positional with
              | Some p -> Sset.add p bound
              | None -> bound)
            bound bindings
        | Let bindings ->
          List.fold_left
            (fun bound (v, e) ->
              note bound e;
              Sset.add v bound)
            bound bindings
        | Where e ->
          note bound e;
          bound
        | Count v -> Sset.add v bound
        | Window w ->
          note bound w.w_src;
          let cond_vars wc =
            List.filter_map Fun.id [ wc.wc_item; wc.wc_pos; wc.wc_prev; wc.wc_next ]
          in
          let note_cond wc =
            let inner = List.fold_left (Fun.flip Sset.add) bound (cond_vars wc) in
            note inner wc.wc_when
          in
          note_cond w.w_start;
          (match w.w_end with
           | Some { we_cond; _ } ->
             (* the end condition also sees the start condition's vars *)
             let inner =
               List.fold_left (Fun.flip Sset.add) bound
                 (cond_vars w.w_start @ cond_vars we_cond)
             in
             note inner we_cond.wc_when
           | None -> ());
          let bound = Sset.add w.w_var bound in
          let bound =
            List.fold_left (Fun.flip Sset.add) bound (cond_vars w.w_start)
          in
          (match w.w_end with
           | Some { we_cond; _ } ->
             List.fold_left (Fun.flip Sset.add) bound (cond_vars we_cond)
           | None -> bound)
        | Order_by { specs; _ } ->
          List.iter (fun (e, _) -> note bound e) specs;
          bound
        | Group_by g ->
          List.iter (fun k -> note bound k.key_expr) g.keys;
          List.iter
            (fun n ->
              note bound n.nest_expr;
              List.iter (fun (e, _) -> note bound e) n.nest_order)
            g.nests;
          let bound =
            List.fold_left (fun b k -> Sset.add k.key_var b) bound g.keys
          in
          List.fold_left (fun b n -> Sset.add n.nest_var b) bound g.nests)
      Sset.empty f.clauses
  in
  let bound =
    match f.return_at with
    | Some v -> Sset.add v bound
    | None -> bound
  in
  note bound f.return_expr;
  !free

let rec pure e =
  match e with
  | Literal _ | Var _ | Context_item -> true
  | Sequence es -> List.for_all pure es
  | If (c, a, b) -> pure c && pure a && pure b
  | _ -> false

(* Apply [f] to [e] and every subexpression, scope-blind (no binding
   tracking — callers only inspect syntactic features). *)
let rec iter_exprs f e =
  f e;
  match e with
  | Literal _ | Var _ | Context_item | Root -> ()
  | Sequence es -> List.iter (iter_exprs f) es
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    iter_exprs f a;
    iter_exprs f b
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    iter_exprs f a
  | If (a, b, c) ->
    iter_exprs f a;
    iter_exprs f b;
    iter_exprs f c
  | Quantified (_, binds, body) ->
    List.iter (fun (_, src) -> iter_exprs f src) binds;
    iter_exprs f body
  | Step (_, _, preds) -> List.iter (iter_exprs f) preds
  | Filter (e, preds) ->
    iter_exprs f e;
    List.iter (iter_exprs f) preds
  | Call (_, args) -> List.iter (iter_exprs f) args
  | Direct_elem d -> iter_direct f d
  | Flwor fl -> iter_flwor f fl

and iter_direct f d =
  List.iter
    (fun a ->
      List.iter
        (function Attr_text _ -> () | Attr_expr e -> iter_exprs f e)
        a.attr_value)
    d.attrs;
  List.iter
    (function
      | Content_text _ | Content_comment _ -> ()
      | Content_expr e -> iter_exprs f e
      | Content_elem child -> iter_direct f child)
    d.content

and iter_flwor f fl =
  List.iter
    (fun clause ->
      match clause with
      | For bindings -> List.iter (fun fb -> iter_exprs f fb.for_src) bindings
      | Let bindings -> List.iter (fun (_, e) -> iter_exprs f e) bindings
      | Where e -> iter_exprs f e
      | Count _ -> ()
      | Window w ->
        iter_exprs f w.w_src;
        iter_exprs f w.w_start.wc_when;
        (match w.w_end with
         | Some { we_cond; _ } -> iter_exprs f we_cond.wc_when
         | None -> ())
      | Order_by { specs; _ } -> List.iter (fun (e, _) -> iter_exprs f e) specs
      | Group_by g ->
        List.iter (fun k -> iter_exprs f k.key_expr) g.keys;
        List.iter
          (fun n ->
            iter_exprs f n.nest_expr;
            List.iter (fun (e, _) -> iter_exprs f e) n.nest_order)
          g.nests)
    fl.clauses;
  iter_exprs f fl.return_expr

let constructs_nodes e =
  let found = ref false in
  iter_exprs
    (function
      | Direct_elem _ | Comp_elem _ | Comp_attr _ | Comp_text _ -> found := true
      | _ -> ())
    e;
  !found

let call_sites e =
  let acc = ref [] in
  iter_exprs
    (function
      | Call (name, args) -> acc := (name, List.length args) :: !acc
      | _ -> ())
    e;
  !acc

(* Top-down rewriting map: [f e = Some e'] replaces [e] with [e'] (the
   replacement is not descended into); [None] keeps [e] and maps its
   subexpressions. Scope-blind like [iter_exprs]. *)
let rec map_exprs f e =
  match f e with
  | Some e' -> e'
  | None -> begin
    let r = map_exprs f in
    match e with
    | Literal _ | Var _ | Context_item | Root -> e
    | Sequence es -> Sequence (List.map r es)
    | Range (a, b) -> Range (r a, r b)
    | Arith (op, a, b) -> Arith (op, r a, r b)
    | Neg a -> Neg (r a)
    | General_cmp (op, a, b) -> General_cmp (op, r a, r b)
    | Value_cmp (op, a, b) -> Value_cmp (op, r a, r b)
    | Node_cmp (op, a, b) -> Node_cmp (op, r a, r b)
    | And (a, b) -> And (r a, r b)
    | Or (a, b) -> Or (r a, r b)
    | Union (a, b) -> Union (r a, r b)
    | Intersect (a, b) -> Intersect (r a, r b)
    | Except (a, b) -> Except (r a, r b)
    | Instance_of (a, t) -> Instance_of (r a, t)
    | Treat_as (a, t) -> Treat_as (r a, t)
    | Castable_as (a, t) -> Castable_as (r a, t)
    | Cast_as (a, t) -> Cast_as (r a, t)
    | If (a, b, c) -> If (r a, r b, r c)
    | Quantified (q, binds, body) ->
      Quantified (q, List.map (fun (v, src) -> (v, r src)) binds, r body)
    | Step (axis, test, preds) -> Step (axis, test, List.map r preds)
    | Slash (a, b) -> Slash (r a, r b)
    | Filter (prim, preds) -> Filter (r prim, List.map r preds)
    | Call (name, args) -> Call (name, List.map r args)
    | Comp_elem (a, b) -> Comp_elem (r a, r b)
    | Comp_attr (a, b) -> Comp_attr (r a, r b)
    | Comp_text a -> Comp_text (r a)
    | Direct_elem d -> Direct_elem (map_direct f d)
    | Flwor fl -> Flwor (map_flwor f fl)
  end

and map_direct f d =
  {
    d with
    attrs =
      List.map
        (fun a ->
          {
            a with
            attr_value =
              List.map
                (function
                  | Attr_text _ as t -> t
                  | Attr_expr e -> Attr_expr (map_exprs f e))
                a.attr_value;
          })
        d.attrs;
    content =
      List.map
        (function
          | (Content_text _ | Content_comment _) as c -> c
          | Content_expr e -> Content_expr (map_exprs f e)
          | Content_elem child -> Content_elem (map_direct f child))
        d.content;
  }

and map_flwor f fl =
  let r = map_exprs f in
  {
    clauses =
      List.map
        (fun clause ->
          match clause with
          | For bindings ->
            For (List.map (fun fb -> { fb with for_src = r fb.for_src }) bindings)
          | Let bindings -> Let (List.map (fun (v, e) -> (v, r e)) bindings)
          | Where e -> Where (r e)
          | Count _ as c -> c
          | Window w ->
            Window
              {
                w with
                w_src = r w.w_src;
                w_start = { w.w_start with wc_when = r w.w_start.wc_when };
                w_end =
                  Option.map
                    (fun we ->
                      {
                        we with
                        we_cond = { we.we_cond with wc_when = r we.we_cond.wc_when };
                      })
                    w.w_end;
              }
          | Order_by { stable; specs } ->
            Order_by { stable; specs = List.map (fun (e, m) -> (r e, m)) specs }
          | Group_by g ->
            Group_by
              {
                keys = List.map (fun k -> { k with key_expr = r k.key_expr }) g.keys;
                nests =
                  List.map
                    (fun n ->
                      {
                        n with
                        nest_expr = r n.nest_expr;
                        nest_order = List.map (fun (e, m) -> (r e, m)) n.nest_order;
                      })
                    g.nests;
              })
        fl.clauses;
    return_at = fl.return_at;
    return_expr = r fl.return_expr;
  }

(* The variable names a clause introduces into the tuple stream. *)
let clause_binders = function
  | For bindings ->
    List.concat_map
      (fun fb -> fb.for_var :: Option.to_list fb.positional)
      bindings
  | Let bindings -> List.map fst bindings
  | Where _ | Order_by _ -> []
  | Count v -> [ v ]
  | Window w ->
    let cond wc =
      List.filter_map Fun.id [ wc.wc_item; wc.wc_pos; wc.wc_prev; wc.wc_next ]
    in
    (w.w_var :: cond w.w_start)
    @ (match w.w_end with Some { we_cond; _ } -> cond we_cond | None -> [])
  | Group_by g ->
    List.map (fun k -> k.key_var) g.keys
    @ List.map (fun n -> n.nest_var) g.nests

(* Does any construct anywhere inside [e] (scope-blind) introduce a
   binding named [v]?  Used by the aggregation-pushdown analysis to
   rule out shadowing before it trusts occurrence counts of [Var v]. *)
let rebinds v e =
  let found = ref false in
  iter_exprs
    (fun e ->
      match e with
      | Quantified (_, binds, _) ->
        if List.exists (fun (x, _) -> x = v) binds then found := true
      | Flwor fl ->
        if
          List.exists (fun c -> List.mem v (clause_binders c)) fl.clauses
          || fl.return_at = Some v
        then found := true
      | _ -> ())
    e;
  !found
