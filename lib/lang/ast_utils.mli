(** AST analyses shared by the rewriter and the plan optimizer. *)

module Sset : Set.S with type elt = string

(** Free variables of an expression (scope-aware: FLWOR, quantified and
    grouping bindings shadow correctly; function calls contribute only
    their arguments — user function bodies are closed except for
    globals). *)
val free_vars : Ast.expr -> Sset.t

(** Free variables of a whole FLWOR (clauses plus return). *)
val flwor_free_vars : Ast.flwor -> Sset.t

(** True when evaluating the expression can have no observable effect
    besides its value — used to justify dropping dead bindings. With no
    side-effecting constructs in the dialect except [fn:trace] and
    dynamic errors, this is "may it raise?": conservatively false for
    arithmetic (division), casts, function calls and anything containing
    them. *)
val pure : Ast.expr -> bool

(** Apply a function to an expression and all its subexpressions
    (scope-blind: bindings are not tracked). *)
val iter_exprs : (Ast.expr -> unit) -> Ast.expr -> unit

(** True when the expression contains any node constructor (direct or
    computed). Constructors allocate fresh node ids off a global
    counter, so expressions containing them must not be evaluated
    concurrently. *)
val constructs_nodes : Ast.expr -> bool

(** Every function call in the expression, as [(name, arity)] pairs
    (duplicates preserved, order unspecified). *)
val call_sites : Ast.expr -> (Xq_xdm.Xname.t * int) list

(** Top-down rewriting map over an expression: where [f] returns
    [Some e'] the node is replaced by [e'] (the replacement is not
    descended into); where it returns [None] the node is kept and its
    subexpressions mapped. Scope-blind, like {!iter_exprs}. *)
val map_exprs : (Ast.expr -> Ast.expr option) -> Ast.expr -> Ast.expr

(** The variable names a FLWOR clause introduces. *)
val clause_binders : Ast.clause -> string list

(** True when any construct inside the expression (scope-blind)
    introduces a binding named [v] — quantifier bindings, FLWOR clause
    bindings, or a [return at] rank variable. *)
val rebinds : string -> Ast.expr -> bool
