(** The resilient client side of the query-server protocol.

    One {!t} holds a (lazily connected, transparently reconnected)
    connection to a daemon socket and a retry discipline around it:

    - {e Connection failures} — refused/absent socket at connect time,
      or the connection dying mid-exchange (server crashed, supervisor
      restarting it, an injected connection fault) — are retried with
      jittered exponential backoff. Queries are read-only, so replaying
      a [RUN] whose response never arrived is safe.
    - {e Admission refusals} — [XQENG0007], the server saying "not
      now" (hot watermark, concurrency cap, draining) — are retried
      honouring the server's [RETRY-AFTER-MS] hint when one rides the
      ERR frame, falling back to the same exponential schedule.
    - {e Every other server answer is authoritative}: payloads and
      non-admission errors are returned on the first arrival, never
      retried.

    A per-request deadline bounds the whole retry loop including
    socket reads (via [SO_RCVTIMEO]); when it expires, or attempts run
    out, the last failure is surfaced as {!Unreachable}.

    Backoff jitter comes from a per-client seeded splitmix64 stream,
    so tests get deterministic schedules. A [t] is not thread-safe:
    give each client thread its own. *)

module Protocol = Xq_server.Protocol

type t

type failure =
  | Server_error of { code : string; exit : int; message : string }
      (** the daemon answered with a non-retryable error — its word is
          final, carrying the CLI exit-code family *)
  | Unreachable of string
      (** retries exhausted or deadline expired; the message describes
          the last attempt's failure *)

(** Cumulative counters over this client's lifetime — the chaos
    harness asserts on these (e.g. "at least one RETRY-AFTER-MS hint
    was honoured"). *)
type stats = {
  s_requests : int;  (** requests issued through {!request} *)
  s_attempts : int;  (** wire attempts, including first tries *)
  s_retries : int;  (** attempts after the first, per request *)
  s_reconnects : int;  (** retries caused by connection failures *)
  s_honored_hints : int;  (** backoffs that used a server hint *)
}

(** [create ~socket ()] — a client for the daemon at Unix-socket path
    [socket]. [attempts] bounds tries per request (default 5, minimum
    1); backoff for attempt [k] is [base_backoff_ms * 2^(k-1)] capped
    at [max_backoff_ms] (defaults 50/2000), multiplied by a jitter in
    [0.5, 1.5); a [RETRY-AFTER-MS] hint replaces the exponential term
    for that sleep. [deadline_ms] bounds each request end to end
    (default none). [max_response_bytes] bounds response frames
    (default 256 MiB). [seed] fixes the jitter stream. *)
val create :
  ?attempts:int ->
  ?base_backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?deadline_ms:int ->
  ?max_response_bytes:int ->
  ?seed:int ->
  socket:string ->
  unit ->
  t

(** One command, retried per the client's discipline; returns the
    payload or the final failure. Never raises. *)
val request : t -> Protocol.command -> (string, failure) result

val stats : t -> stats

(** Drop the cached connection (a later {!request} reconnects). *)
val close : t -> unit

(** Map a failure to the CLI exit-code family: {!Server_error} keeps
    the daemon's family, {!Unreachable} is a usage-class 1 (the daemon
    isn't there). *)
val exit_code : failure -> int

val failure_message : failure -> string
