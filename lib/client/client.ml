(* Resilient client layer. See client.mli.

   The retry loop distinguishes three outcomes per wire attempt:
   authoritative answers (payload or non-admission error — return at
   once), admission refusals (XQENG0007 — back off, honouring the
   server's RETRY-AFTER-MS hint), and transport failures (connect
   refused, connection lost mid-exchange, garbled frame — drop the
   cached connection, back off, reconnect). Anything still failing
   when attempts or the deadline run out surfaces as [Unreachable]. *)

module Protocol = Xq_server.Protocol

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

type t = {
  socket : string;
  attempts : int;
  base_backoff_ms : int;
  max_backoff_ms : int;
  deadline_ms : int option;
  max_response_bytes : int;
  mutable jitter_state : int64;
  mutable conn : conn option;
  (* stats *)
  mutable n_requests : int;
  mutable n_attempts : int;
  mutable n_retries : int;
  mutable n_reconnects : int;
  mutable n_honored_hints : int;
}

type failure =
  | Server_error of { code : string; exit : int; message : string }
  | Unreachable of string

type stats = {
  s_requests : int;
  s_attempts : int;
  s_retries : int;
  s_reconnects : int;
  s_honored_hints : int;
}

(* A server dropping the connection between our write and its read
   delivers SIGPIPE, whose default disposition kills the whole client
   process (exit 141) — the retry loop never gets to see the EPIPE. Any
   process that creates a client opts into handling write failures as
   exceptions instead. Set once; never restored (a retrying client is a
   process-lifetime commitment, same as in the daemon's accept loop). *)
let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  end

let create ?(attempts = 5) ?(base_backoff_ms = 50) ?(max_backoff_ms = 2000)
    ?deadline_ms ?(max_response_bytes = 256 * 1024 * 1024) ?(seed = 1)
    ~socket () =
  ignore_sigpipe ();
  {
    socket;
    attempts = max 1 attempts;
    base_backoff_ms = max 1 base_backoff_ms;
    max_backoff_ms = max 1 max_backoff_ms;
    deadline_ms;
    max_response_bytes;
    jitter_state = Int64.of_int ((seed * 2) + 1);
    conn = None;
    n_requests = 0;
    n_attempts = 0;
    n_retries = 0;
    n_reconnects = 0;
    n_honored_hints = 0;
  }

let stats t =
  {
    s_requests = t.n_requests;
    s_attempts = t.n_attempts;
    s_retries = t.n_retries;
    s_reconnects = t.n_reconnects;
    s_honored_hints = t.n_honored_hints;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    t.conn <- None;
    (try flush c.oc with Sys_error _ -> ());
    (* one fd behind both channels: close exactly once *)
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

let close = drop_conn

(* splitmix64, private to this client: jitter must not perturb the
   engine's seeded fault streams (or vice versa). *)
let jitter_unit t =
  let open Int64 in
  let z = add t.jitter_state 0x9E3779B97F4A7C15L in
  t.jitter_state <- z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Remaining request budget in ms; [infinity] when no deadline. *)
let remaining t ~started =
  match t.deadline_ms with
  | None -> infinity
  | Some d -> (started +. float_of_int d) -. now_ms ()

let connect t ~started =
  match t.conn with
  | Some c -> c
  | None ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       (* bound blocking reads/writes by the remaining request budget
          so a wedged server cannot hold the client past its deadline *)
       (match t.deadline_ms with
        | Some _ ->
          let r = max 0.01 (remaining t ~started /. 1000.0) in
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO r;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO r
        | None -> ());
       Unix.connect fd (Unix.ADDR_UNIX t.socket)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let c =
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }
    in
    t.conn <- Some c;
    c

(* One wire attempt: connect (or reuse), send, read one response. Any
   exception means the transport failed this attempt. *)
let attempt t cmd ~started =
  let c = connect t ~started in
  Protocol.write_command c.oc cmd;
  Protocol.read_response ~max_field_bytes:t.max_response_bytes c.ic

let describe_exn = function
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | End_of_file -> "connection closed by server"
  | Sys_error m -> m
  | Protocol.Protocol_error m -> "garbled response: " ^ m
  | e -> Printexc.to_string e

(* The backoff before retry [k] (1-based): the server hint when one was
   given, else base * 2^(k-1), capped, then jittered into [0.5, 1.5)
   of itself and clamped to the remaining deadline budget. *)
let backoff t ~retry ~hint ~started =
  let nominal =
    match hint with
    | Some ms ->
      t.n_honored_hints <- t.n_honored_hints + 1;
      ms
    | None ->
      let exp = t.base_backoff_ms * (1 lsl min 20 (retry - 1)) in
      min exp t.max_backoff_ms
  in
  let jittered = float_of_int nominal *. (0.5 +. jitter_unit t) in
  let ms = Float.min jittered (Float.max 0.0 (remaining t ~started)) in
  if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

let request t cmd =
  t.n_requests <- t.n_requests + 1;
  let started = now_ms () in
  let rec go attempt_no =
    t.n_attempts <- t.n_attempts + 1;
    if attempt_no > 1 then t.n_retries <- t.n_retries + 1;
    let retryable ~conn_failure ~hint why =
      if conn_failure then begin
        t.n_reconnects <- t.n_reconnects + 1;
        drop_conn t
      end;
      if attempt_no >= t.attempts then Error (Unreachable why)
      else if remaining t ~started <= 0.0 then
        Error (Unreachable (why ^ " (request deadline exhausted)"))
      else begin
        backoff t ~retry:attempt_no ~hint ~started;
        go (attempt_no + 1)
      end
    in
    match attempt t cmd ~started with
    | Protocol.Payload p -> Ok p
    | Protocol.Error { code = "XQENG0007"; retry_after_ms; message; _ } ->
      retryable ~conn_failure:false ~hint:retry_after_ms
        ("server refused admission: " ^ message)
    | Protocol.Error { code; exit; message; _ } ->
      Error (Server_error { code; exit; message })
    | exception
        (( Unix.Unix_error _ | End_of_file | Sys_error _
         | Protocol.Protocol_error _ ) as e) ->
      retryable ~conn_failure:true ~hint:None
        ("connection failed: " ^ describe_exn e)
  in
  go 1

let exit_code = function
  | Server_error { exit; _ } -> exit
  | Unreachable _ -> 1

let failure_message = function
  | Server_error { message; _ } -> message
  | Unreachable m -> m
