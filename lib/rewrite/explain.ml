open Xq_xdm
open Xq_lang
open Ast

let add buf depth line =
  Buffer.add_string buf (String.make (2 * depth) ' ');
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let short e =
  let s = Pretty.expr e in
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

let rec explain_expr buf depth e =
  match e with
  | Flwor f -> explain_flwor buf depth f
  | Sequence es -> List.iter (explain_expr buf depth) es
  | If (_, t, els) ->
    if contains_flwor t || contains_flwor els then begin
      add buf depth "conditional:";
      explain_expr buf (depth + 1) t;
      explain_expr buf (depth + 1) els
    end
  | Call (_, args) -> List.iter (explain_expr buf depth) args
  | Slash (a, b) ->
    explain_expr buf depth a;
    explain_expr buf depth b
  | Filter (e, preds) ->
    explain_expr buf depth e;
    List.iter (explain_expr buf depth) preds
  | Direct_elem d -> explain_direct buf depth d
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    explain_expr buf depth a;
    explain_expr buf depth b
  | Comp_text a | Neg a -> explain_expr buf depth a
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) ->
    explain_expr buf depth a;
    explain_expr buf depth b
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    explain_expr buf depth a
  | Quantified (_, binds, body) ->
    List.iter (fun (_, e) -> explain_expr buf depth e) binds;
    explain_expr buf depth body
  | Step (_, _, preds) -> List.iter (explain_expr buf depth) preds
  | Literal _ | Var _ | Context_item | Root -> ()

and explain_direct buf depth d =
  List.iter
    (fun a ->
      List.iter
        (function Attr_text _ -> () | Attr_expr e -> explain_expr buf depth e)
        a.attr_value)
    d.attrs;
  List.iter
    (function
      | Content_text _ | Content_comment _ -> ()
      | Content_expr e -> explain_expr buf depth e
      | Content_elem child -> explain_direct buf depth child)
    d.content

and contains_flwor = function
  | Flwor _ -> true
  | Literal _ | Var _ | Context_item | Root -> false
  | Sequence es -> List.exists contains_flwor es
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    contains_flwor a || contains_flwor b
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    contains_flwor a
  | If (a, b, c) -> contains_flwor a || contains_flwor b || contains_flwor c
  | Quantified (_, binds, body) ->
    List.exists (fun (_, e) -> contains_flwor e) binds || contains_flwor body
  | Step (_, _, preds) -> List.exists contains_flwor preds
  | Filter (e, preds) -> contains_flwor e || List.exists contains_flwor preds
  | Call (_, args) -> List.exists contains_flwor args
  | Direct_elem _ -> false

and explain_flwor buf depth f =
  add buf depth "FLWOR pipeline:";
  let d = depth + 1 in
  List.iter
    (fun c ->
      match c with
      | For bindings ->
        List.iter
          (fun fb ->
            add buf d
              (Printf.sprintf "FOR $%s%s in %s  -- expand tuples" fb.for_var
                 (match fb.positional with
                  | Some p -> " at $" ^ p
                  | None -> "")
                 (short fb.for_src));
            explain_expr buf (d + 1) fb.for_src)
          bindings
      | Let bindings ->
        List.iter
          (fun (v, e) ->
            add buf d (Printf.sprintf "LET $%s := %s" v (short e));
            explain_expr buf (d + 1) e)
          bindings
      | Where e ->
        add buf d (Printf.sprintf "WHERE %s  -- filter tuples" (short e));
        explain_expr buf (d + 1) e
      | Count v -> add buf d (Printf.sprintf "COUNT $%s  -- number tuples" v)
      | Window w ->
        add buf d
          (Printf.sprintf "WINDOW (%s) $%s over %s"
             (match w.w_kind with Tumbling -> "tumbling" | Sliding -> "sliding")
             w.w_var (short w.w_src))
      | Order_by { stable; specs } ->
        add buf d
          (Printf.sprintf "SORT%s on %d key(s): %s"
             (if stable then " (stable)" else "")
             (List.length specs)
             (String.concat ", " (List.map (fun (e, _) -> short e) specs)))
      | Group_by g ->
        let strategy =
          if List.for_all (fun k -> k.using = None) g.keys then
            "HASH GROUP (one pass, fn:deep-equal keys)"
          else "SCAN GROUP (comparator scan: custom 'using' equality)"
        in
        add buf d
          (Printf.sprintf "%s by %s" strategy
             (String.concat ", "
                (List.map
                   (fun k ->
                     Printf.sprintf "%s -> $%s%s" (short k.key_expr) k.key_var
                       (match k.using with
                        | Some fn -> " using " ^ Xname.to_string fn
                        | None -> ""))
                   g.keys)));
        List.iter
          (fun n ->
            let note =
              match n.nest_expr, n.nest_order with
              | Literal _, [] -> "  -- count-optimized (no per-tuple eval)"
              | _, [] -> ""
              | _, _ -> "  -- sorted within groups"
            in
            add buf (d + 1)
              (Printf.sprintf "NEST %s -> $%s%s" (short n.nest_expr) n.nest_var
                 note))
          g.nests)
    f.clauses;
  (match Rewrite.detect f with
   | Some _ ->
     add buf d
       "NOTE: matches the implicit-grouping idiom; Rewrite.rewrite_expr \
        would turn this into a HASH GROUP"
   | None -> ());
  add buf d
    (Printf.sprintf "RETURN%s %s"
       (match f.return_at with Some v -> " at $" ^ v | None -> "")
       (short f.return_expr));
  explain_expr buf (d + 1) f.return_expr

let expr e =
  let buf = Buffer.create 256 in
  explain_expr buf 0 e;
  if Buffer.length buf = 0 then "no FLWOR pipelines (scalar expression)\n"
  else Buffer.contents buf

let query (q : Ast.query) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (f : Ast.fun_def) ->
      add buf 0 (Printf.sprintf "function %s:" (Xname.to_string f.fun_name));
      Buffer.add_string buf (expr f.body))
    q.prolog.functions;
  Buffer.add_string buf (expr q.body);
  Buffer.contents buf

(* --- EXPLAIN ANALYZE ------------------------------------------------------ *)

module Plan = Xq_algebra.Plan
module Exec = Xq_algebra.Exec
module Optimizer = Xq_algebra.Optimizer

let fmt_stat ~timings (e : Exec.Stats.entry) =
  Printf.sprintf "  [in=%d out=%d%s%s%s%s%s%s%s%s" e.Exec.Stats.rows_in
    e.Exec.Stats.rows_out
    (match e.Exec.Stats.groups_built with
     | Some g -> Printf.sprintf " groups=%d" g
     | None -> "")
    (if e.Exec.Stats.cmp_calls > 0 then
       Printf.sprintf " cmp=%d" e.Exec.Stats.cmp_calls
     else "")
    (if e.Exec.Stats.key_walks > 0 then
       Printf.sprintf " walks=%d" e.Exec.Stats.key_walks
     else "")
    (* Spill counters only appear when the operator actually spilled, so
       ungoverned runs (and all goldens) are byte-stable. *)
    (if e.Exec.Stats.spill_files > 0 then
       Printf.sprintf " spilled=%dB spill-files=%d%s" e.Exec.Stats.spilled_bytes
         e.Exec.Stats.spill_files
         (if e.Exec.Stats.repartitions > 0 then
            Printf.sprintf " repartitions=%d" e.Exec.Stats.repartitions
          else "")
     else "")
    (* Dictionary/batch counters likewise stay silent unless the operator
       interned keys (small inputs never do) or actually vectorized: more
       than one input vector of width > 1 — so the golden corpus stays
       stable, including under XQ_BATCH=1 where every vector is a
       singleton and "batch=1" would say nothing. *)
    (if e.Exec.Stats.dict_interns > 0 then
       Printf.sprintf " dict=%d" e.Exec.Stats.dict_entries
     else "")
    (if e.Exec.Stats.batches > 1 && e.Exec.Stats.batch > 1 then
       Printf.sprintf " batch=%d" e.Exec.Stats.batch
     else "")
    (if e.Exec.Stats.par > 1 then Printf.sprintf " par=%d" e.Exec.Stats.par
     else "")
    (if timings then Printf.sprintf " %.2fms]" e.Exec.Stats.elapsed_ms
     else "]")

let analyzed ?(timings = true) (plan : Plan.plan) (stats : Exec.Stats.t) =
  let buf = Buffer.create 256 in
  match List.rev stats with
  | [] -> Plan.to_string plan
  | ret :: outer_first ->
    (* stats run innermost-first with RETURN last; the tree prints RETURN
       first, then outermost down — i.e. the reversed stats order. *)
    add buf 0 (Plan.return_line plan ^ fmt_stat ~timings ret);
    let rec go depth op stats =
      let annotation, rest =
        match stats with
        | s :: rest -> (fmt_stat ~timings s, rest)
        | [] -> ("", [])
      in
      add buf depth (Plan.op_line op ^ annotation);
      match Plan.input_of op with
      | None -> ()
      | Some input -> go (depth + 1) input rest
    in
    go 1 plan.Plan.pipeline outer_first;
    Buffer.contents buf

let analyze_query ?(timings = true) ?(optimize = false) ?strategy ?parallel
    ~context_node (q : Ast.query) =
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Optimizer.strategy_from_env ()
  in
  let ctx = Exec.query_context ~context_node q in
  let buf = Buffer.create 256 in
  let total = ref 0 in
  let rec go (e : Ast.expr) =
    match e with
    | Flwor f ->
      let plan = Plan.of_flwor f in
      let plan = Optimizer.apply_strategy strategy plan in
      let plan = Optimizer.push_aggregates plan in
      let plan = if optimize then Optimizer.optimize plan else plan in
      let result, stats = Exec.run_instrumented ?parallel ctx plan in
      total := !total + List.length result;
      (* pushdown annotation before the plan it reshaped, only when it
         applied — the untouched golden corpus stays byte-stable *)
      let n = Optimizer.agg_pushdown_count plan in
      if n > 0 then add buf 0 (Printf.sprintf "rewrite: agg-pushdown=%d" n);
      Buffer.add_string buf (analyzed ~timings plan stats)
    | Sequence es -> List.iter go es
    | other ->
      let result = Xq_engine.Eval.eval ctx other in
      total := !total + List.length result;
      add buf 0 "(non-FLWOR expression: evaluated directly)"
  in
  go q.body;
  add buf 0 (Printf.sprintf "result: %d item(s)" !total);
  (* governor trip counts and peak budgets, only when one is installed —
     ungoverned runs (and the golden explain corpus) are unchanged *)
  (match Xq_governor.Governor.current () with
   | Some g -> add buf 0 (Xq_governor.Governor.summary g)
   | None -> ());
  Buffer.contents buf
