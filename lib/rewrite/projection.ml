(* Static projection analysis for streaming ingestion.

   Decides, from the checked AST alone, whether a query can run over a
   streamed document — reading it front to back, materializing only the
   subtrees a single root-anchored path selects — and still produce
   output byte-identical to materializing the whole tree.

   The streamable fragment is deliberately conservative: the query's
   only door into the document must be the first [for] binding of a
   top-level FLWOR, and that binding's source must be an absolute
   child/descendant element path with no predicates. Everything else in
   the query must provably never reach the document again: no other
   absolute paths, no free context item (at the top level it denotes
   the document), no upward or sideways axes anywhere (a streamed
   subtree is detached — its capture root has no parent or siblings),
   and no calls to the document-reaching builtins ([fn:doc],
   [fn:collection], [fn:root]). Each rejection carries the reason, which
   EXPLAIN surfaces so users can see why a query materializes. *)

open Xq_xdm
open Xq_lang
module Xml_stream = Xq_xml.Xml_stream

type verdict =
  | Streamable of {
      path : Xml_stream.path;
      var : string;
      positional : string option;
    }
  | Materialize of string

exception Reject of string

let reject fmt = Format.kasprintf (fun m -> raise (Reject m)) fmt

(* --- the scan path ------------------------------------------------------- *)

(* Element name tests only: the scanner emits elements, so a step that
   could select text, comments, attributes or PIs is not streamable. *)
let elem_test = function
  | Ast.Name_test n -> Some (Xml_stream.Name n)
  | Ast.Wildcard -> Some Xml_stream.Any
  | Ast.Prefix_wildcard p -> Some (Xml_stream.Prefix p)
  | Ast.Kind_element None -> Some Xml_stream.Any
  | Ast.Kind_element (Some n) -> Some (Xml_stream.Name n)
  | Ast.Kind_node | Ast.Kind_text | Ast.Kind_comment | Ast.Kind_attribute _
  | Ast.Kind_document ->
    None

type raw_step = Child_of of Xml_stream.test | Desc_of of Xml_stream.test | Dos

let raw_step_of = function
  | Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, []) -> Some Dos
  | Ast.Step (Ast.Child, t, []) ->
    Option.map (fun t -> Child_of t) (elem_test t)
  | Ast.Step (Ast.Descendant, t, []) ->
    Option.map (fun t -> Desc_of t) (elem_test t)
  | _ -> None

(* Unroll [Slash] left-spine from an absolute root; innermost step last. *)
let rec unroll e acc =
  match e with
  | Ast.Root -> Some acc
  | Ast.Slash (l, r) -> begin
    match raw_step_of r with
    | Some s -> unroll l (s :: acc)
    | None -> None
  end
  | _ -> None

(* Fuse desugared [descendant-or-self::node()/child::t] pairs into
   descendant steps ([dos/descendant::t] collapses the same way). *)
let rec fuse = function
  | [] -> Some []
  | Dos :: Dos :: rest -> fuse (Dos :: rest)
  | Dos :: Child_of t :: rest | Dos :: Desc_of t :: rest
  | Desc_of t :: rest ->
    Option.map
      (fun p -> { Xml_stream.desc = true; test = t } :: p)
      (fuse rest)
  | Child_of t :: rest ->
    Option.map
      (fun p -> { Xml_stream.desc = false; test = t } :: p)
      (fuse rest)
  | [ Dos ] -> None  (* trailing dos selects non-elements *)

let scan_path_of (e : Ast.expr) : Xml_stream.path option =
  match unroll e [] with
  | None -> None
  | Some raws -> begin
    match fuse raws with
    | Some path
      when path <> [] && List.length path <= Xml_stream.max_steps ->
      Some path
    | _ -> None
  end

(* --- the rest of the query must never reach the document ----------------- *)

let axis_name = function
  | Ast.Parent -> "parent"
  | Ast.Ancestor -> "ancestor"
  | Ast.Ancestor_or_self -> "ancestor-or-self"
  | Ast.Following_sibling -> "following-sibling"
  | Ast.Preceding_sibling -> "preceding-sibling"
  | _ -> ""

let escaping_axis = function
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following_sibling
  | Ast.Preceding_sibling ->
    true
  | _ -> false

(* Builtins that (re-)reach a document tree. *)
let doc_reaching (name : Xname.t) =
  (match name.Xname.prefix with None | Some "fn" -> true | Some _ -> false)
  && List.mem name.Xname.local [ "doc"; "collection"; "root" ]

(* [ctx_ok] is true where the context item is locally bound (inside
   predicates and on the right of a [/]); elsewhere the context item —
   and a bare axis step, which implicitly applies to it — denotes the
   document being streamed. *)
let rec check ~ctx_ok (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Var _ -> ()
  | Ast.Context_item ->
    if not ctx_ok then
      reject "the context item denotes the document outside a path"
  | Ast.Root -> reject "an absolute path re-anchors at the document root"
  | Ast.Step (axis, _, preds) ->
    if escaping_axis axis then
      reject "the %s axis escapes the streamed subtree" (axis_name axis);
    if not ctx_ok then
      reject "a bare axis step applies to the document context";
    List.iter (check ~ctx_ok:true) preds
  | Ast.Slash (l, r) ->
    check ~ctx_ok l;
    check ~ctx_ok:true r
  | Ast.Filter (p, preds) ->
    check ~ctx_ok p;
    List.iter (check ~ctx_ok:true) preds
  | Ast.Call (name, args) ->
    if doc_reaching name then
      reject "fn:%s reaches outside the streamed subtree" name.Xname.local;
    List.iter (check ~ctx_ok) args
  | Ast.Sequence es -> List.iter (check ~ctx_ok) es
  | Ast.Range (a, b)
  | Ast.Arith (_, a, b)
  | Ast.General_cmp (_, a, b)
  | Ast.Value_cmp (_, a, b)
  | Ast.Node_cmp (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Union (a, b)
  | Ast.Intersect (a, b)
  | Ast.Except (a, b)
  | Ast.Comp_elem (a, b)
  | Ast.Comp_attr (a, b) ->
    check ~ctx_ok a;
    check ~ctx_ok b
  | Ast.Neg a
  | Ast.Instance_of (a, _)
  | Ast.Treat_as (a, _)
  | Ast.Castable_as (a, _)
  | Ast.Cast_as (a, _)
  | Ast.Comp_text a ->
    check ~ctx_ok a
  | Ast.If (c, t, f) ->
    check ~ctx_ok c;
    check ~ctx_ok t;
    check ~ctx_ok f
  | Ast.Quantified (_, binds, cond) ->
    List.iter (fun (_, src) -> check ~ctx_ok src) binds;
    check ~ctx_ok cond
  | Ast.Flwor f -> check_flwor ~ctx_ok f
  | Ast.Direct_elem d -> check_direct ~ctx_ok d

and check_direct ~ctx_ok (d : Ast.direct_elem) =
  List.iter
    (fun (a : Ast.direct_attr) ->
      List.iter
        (function
          | Ast.Attr_text _ -> ()
          | Ast.Attr_expr e -> check ~ctx_ok e)
        a.Ast.attr_value)
    d.Ast.attrs;
  List.iter
    (function
      | Ast.Content_text _ | Ast.Content_comment _ -> ()
      | Ast.Content_expr e -> check ~ctx_ok e
      | Ast.Content_elem d -> check_direct ~ctx_ok d)
    d.Ast.content

and check_flwor ~ctx_ok (f : Ast.flwor) =
  List.iter
    (function
      | Ast.For bindings ->
        List.iter
          (fun (b : Ast.for_binding) -> check ~ctx_ok b.Ast.for_src)
          bindings
      | Ast.Let bindings -> List.iter (fun (_, e) -> check ~ctx_ok e) bindings
      | Ast.Where e -> check ~ctx_ok e
      | Ast.Group_by g ->
        List.iter
          (fun (k : Ast.group_key) -> check ~ctx_ok k.Ast.key_expr)
          g.Ast.keys;
        List.iter
          (fun (n : Ast.nest_spec) ->
            check ~ctx_ok n.Ast.nest_expr;
            List.iter (fun (e, _) -> check ~ctx_ok e) n.Ast.nest_order)
          g.Ast.nests
      | Ast.Order_by { specs; _ } ->
        List.iter (fun (e, _) -> check ~ctx_ok e) specs
      | Ast.Count _ -> ()
      | Ast.Window w ->
        check ~ctx_ok w.Ast.w_src;
        check ~ctx_ok w.Ast.w_start.Ast.wc_when;
        Option.iter
          (fun (we : Ast.window_end) -> check ~ctx_ok we.Ast.we_cond.Ast.wc_when)
          w.Ast.w_end)
    f.Ast.clauses;
  check ~ctx_ok f.Ast.return_expr

(* --- the verdict --------------------------------------------------------- *)

let analyze (q : Ast.query) : verdict =
  try
    (* the prolog must not touch the document either: globals evaluate
       before streaming starts, function bodies run during it *)
    List.iter
      (fun (fd : Ast.fun_def) -> check ~ctx_ok:false fd.Ast.body)
      q.Ast.prolog.Ast.functions;
    List.iter (fun (_, e) -> check ~ctx_ok:false e) q.Ast.prolog.Ast.global_vars;
    match q.Ast.body with
    | Ast.Flwor f -> begin
      match f.Ast.clauses with
      | Ast.For (first :: other_bindings) :: other_clauses -> begin
        match scan_path_of first.Ast.for_src with
        | None ->
          Materialize
            "the first for binding is not an absolute child/descendant \
             element path"
        | Some path ->
          (* everything after the scan source must stay inside the
             streamed subtrees *)
          List.iter
            (fun (b : Ast.for_binding) -> check ~ctx_ok:false b.Ast.for_src)
            other_bindings;
          check_flwor ~ctx_ok:false
            { f with Ast.clauses = other_clauses; return_expr = f.return_expr };
          Streamable
            {
              path;
              var = first.Ast.for_var;
              positional = first.Ast.positional;
            }
      end
      | _ -> Materialize "the query does not start with a for clause"
    end
    | _ -> Materialize "the query body is not a single FLWOR"
  with Reject reason -> Materialize reason

let to_string = function
  | Streamable { path; var; positional } ->
    Printf.sprintf "streamable: $%s%s <- scan %s" var
      (match positional with Some p -> " at $" ^ p | None -> "")
      (Xml_stream.path_to_string path)
  | Materialize reason -> "materialize: " ^ reason
