(** Textual evaluation-plan explanations.

    Describes how the tuple-stream evaluator will execute a query: the
    clause pipeline of every FLWOR, which grouping strategy applies (one
    hash pass for default deep-equal keys, a comparator scan when any key
    has [using]), count-optimized nests, sorts — and flags FLWORs that
    match the implicit-grouping idiom {!Rewrite.detect} could rewrite. *)

open Xq_lang

val expr : Ast.expr -> string
val query : Ast.query -> string

(** {1 EXPLAIN ANALYZE}

    Renders the plan tree that actually executed, each operator
    annotated with its runtime counters — rows in/out, groups built,
    comparator calls, key-subtree walks ([walks=], when any), the
    domain-pool degree ([par=], when above 1), and (unless
    [timings:false], which golden tests use for determinism)
    per-operator CPU time. *)

(** Render one executed plan with its statistics. *)
val analyzed :
  ?timings:bool -> Xq_algebra.Plan.plan -> Xq_algebra.Exec.Stats.t -> string

(** Compile, execute and render every top-level FLWOR of the query body
    (non-FLWOR parts evaluate directly and are noted as such), ending
    with the total result cardinality. [strategy] defaults to
    [XQ_GROUP_STRATEGY] (else hash); [optimize] runs the plan
    optimizer first; [parallel] sets the domain-pool degree (default
    [XQ_PARALLEL], else 1). *)
val analyze_query :
  ?timings:bool ->
  ?optimize:bool ->
  ?strategy:Xq_algebra.Optimizer.group_strategy ->
  ?parallel:int ->
  context_node:Xq_xdm.Node.t ->
  Ast.query ->
  string
