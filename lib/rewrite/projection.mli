(** Static projection analysis for streaming ingestion.

    Decides whether a checked query can execute over a streamed
    document — materializing only the subtrees selected by one
    root-anchored element path — with output byte-identical to the
    materializing path, and derives that projection path.

    The streamable fragment: the body is a single FLWOR whose first
    clause is a [for] whose first binding ranges over an absolute
    child/descendant element path without predicates; no other part of
    the query (remaining bindings, clauses, return, prolog globals and
    function bodies) may reach the document again — no absolute paths,
    no free context item, no upward/sideways axes, no [fn:doc] /
    [fn:collection] / [fn:root]. Anything outside the fragment yields
    {!Materialize} with the reason, which EXPLAIN surfaces. *)

type verdict =
  | Streamable of {
      path : Xq_xml.Xml_stream.path;  (** the projection to scan *)
      var : string;  (** the first binding's variable *)
      positional : string option;  (** its [at $p] variable *)
    }
  | Materialize of string  (** not streamable, with the reason *)

val analyze : Xq_lang.Ast.query -> verdict

(** One-line rendering, e.g. ["streamable: $o <- scan /orders/order"]
    or ["materialize: the context item denotes the document …"]. *)
val to_string : verdict -> string
