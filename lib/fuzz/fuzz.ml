open Xq_xdm
open Xq_lang
module Optimizer = Xq_algebra.Optimizer
module Prng = Xq_workload.Prng

type engine_kind =
  | Direct
  | Plan of Optimizer.group_strategy

type config = {
  kind : engine_kind;
  parallel : int;
  spill : bool;
  stream : bool;
  nopush : bool;
}

let config_label c =
  let kind =
    match c.kind with
    | Direct -> "direct"
    | Plan s -> "plan:" ^ Optimizer.strategy_to_string s
  in
  kind
  ^ (if c.parallel > 1 then Printf.sprintf "/par=%d" c.parallel else "")
  ^ (if c.spill then "/spill" else "")
  ^ (if c.stream then "/stream" else "")
  ^ if c.nopush then "/nopush" else ""

let base_configs =
  [
    { kind = Direct; parallel = 1; spill = false; stream = false;
      nopush = false };
    { kind = Plan Optimizer.Hash; parallel = 1; spill = false; stream = false;
      nopush = false };
    { kind = Plan Optimizer.Sort; parallel = 1; spill = false; stream = false;
      nopush = false };
    { kind = Plan Optimizer.Auto; parallel = 1; spill = false; stream = false;
      nopush = false };
    { kind = Plan Optimizer.Hash; parallel = 1; spill = false; stream = true;
      nopush = false };
    { kind = Plan Optimizer.Hash; parallel = 1; spill = true; stream = true;
      nopush = false };
    (* the rewrite differential: the same plan with the eager-aggregation
       pushdown forced off — a pushdown bug shows up as this column
       disagreeing with its rewritten twin (both against the oracle),
       and shrinks like any other divergence *)
    { kind = Plan Optimizer.Hash; parallel = 1; spill = false; stream = false;
      nopush = true };
    { kind = Plan Optimizer.Hash; parallel = 1; spill = true; stream = false;
      nopush = true };
  ]

let sampled_configs ~seed =
  (* derive from a distinct stream so adding configurations never
     perturbs the generator's choices for the same seed; nopush draws
     from its own stream so the older fields replay identically too *)
  let rng = Prng.create (seed lxor 0x5eed5eed) in
  let rng_push = Prng.create (seed lxor 0x906070) in
  let strategies = [| Optimizer.Hash; Optimizer.Sort; Optimizer.Auto |] in
  base_configs
  @ List.init 3 (fun _ ->
        {
          kind = Plan (Prng.pick rng strategies);
          parallel = (if Prng.one_in rng 2 then 2 else 4);
          spill = Prng.one_in rng 2;
          stream = Prng.one_in rng 2;
          nopush = Prng.one_in rng_push 3;
        })

type outcome =
  | Output of string list
  | Error_code of string

let serialize_items seq =
  List.map (fun item -> Xq_xml.Serialize.sequence [ item ]) seq

let capture f =
  match f () with
  | seq -> Output (serialize_items seq)
  | exception Xerror.Error (code, _) -> Error_code (Xerror.code_to_string code)

let oracle_outcome context_node query =
  capture (fun () -> Xq_refimpl.Refimpl.eval_query ~context_node query)

(* A tiny watermark plus a roomy hard limit: grouping spills to disk
   almost immediately, while the XQENG0002 hard trip stays out of reach
   for these small cases. *)
let spill_governor () = Xq_governor.Governor.create ~spill_watermark_bytes:4096 ~max_mem_mb:512 ()

let engine_outcome ?(inject_bug = false) ?doc config context_node query =
  (* both engine paths go through the shared pipeline — the same
     dispatch the CLI, REPL and query server use — with the static
     check hoisted (the historical entry points defaulted check:true) *)
  let compiled = Xq_pipeline.Pipeline.of_query query in
  let run () =
    Xq_lang.Static.check_query query;
    match config.kind with
    | Direct -> Xq_pipeline.Pipeline.eval ~doc:context_node compiled
    | Plan strategy -> begin
      match doc with
      | Some src when config.stream -> begin
        (* the streamed column runs the projection verdict exactly as the
           CLI would: streamable plans pull the document through the
           streaming scan, the rest degrade to the materialized executor.
           A wrong Streamable verdict therefore shows up as an ordinary
           divergence and shrinks like one. *)
        match Xq_rewrite.Projection.analyze query with
        | Xq_rewrite.Projection.Streamable { path; var; positional } ->
          Xq_algebra.Exec.eval_query_stream ~check:false ~strategy
            ~parallel:config.parallel ~source:(`String src) ~path ~var
            ~positional query
        | Xq_rewrite.Projection.Materialize _ ->
          Xq_pipeline.Pipeline.eval ~strategy ~parallel:config.parallel
            ~doc:context_node compiled
      end
      | _ ->
        Xq_pipeline.Pipeline.eval ~strategy ~parallel:config.parallel
          ~doc:context_node compiled
    end
  in
  let run () =
    if config.nopush then begin
      let saved = Optimizer.agg_pushdown_on () in
      Optimizer.set_agg_pushdown false;
      Fun.protect
        ~finally:(fun () -> Optimizer.set_agg_pushdown saved)
        run
    end
    else run ()
  in
  let outcome =
    capture (fun () ->
        if config.spill then
          Xq_governor.Governor.with_governor (spill_governor ()) run
        else run ())
  in
  match outcome with
  | Output (_ :: _ as items) when inject_bug ->
    Output (List.filteri (fun i _ -> i < List.length items - 1) items)
  | o -> o

let pinned_order (q : Ast.query) =
  match q.body with
  | Flwor f ->
    let grouped =
      List.exists (function Ast.Group_by _ -> true | _ -> false) f.clauses
    in
    let ordered =
      match List.rev f.clauses with
      | Ast.Order_by _ :: _ -> true
      | _ -> false
    in
    ordered || not grouped
  | _ -> true

let outcomes_agree ~pinned a b =
  match a, b with
  | Error_code x, Error_code y -> x = y
  | Output x, Output y ->
    if pinned then x = y
    else List.sort String.compare x = List.sort String.compare y
  | _ -> false

type verdict =
  | Pass of int
  | Oracle_unsupported of string
  | Roundtrip_failure
  | Divergence of { config : config; oracle : outcome; engine : outcome }

let check_case ?(inject_bug = false) ~configs ~doc query =
  match Xq_qgen.Qgen.round_trips query with
  | Error _ -> Roundtrip_failure
  | Ok () -> begin
    let context_node = Xq_xml.Xml_parse.parse doc in
    match oracle_outcome context_node query with
    | exception Xq_refimpl.Refimpl.Unsupported what -> Oracle_unsupported what
    | oracle ->
      let pinned = pinned_order query in
      let rec go n = function
        | [] -> Pass n
        | config :: rest ->
          let engine = engine_outcome ~inject_bug ~doc config context_node query in
          if outcomes_agree ~pinned oracle engine then go (n + 1) rest
          else Divergence { config; oracle; engine }
      in
      go 0 configs
  end

let shrink_divergence ?(inject_bug = false) config ~doc query =
  let still_failing q d =
    match Xq_xml.Xml_parse.parse d with
    | exception _ -> false
    | context_node -> begin
      match oracle_outcome context_node q with
      | exception Xq_refimpl.Refimpl.Unsupported _ -> false
      | oracle ->
        let engine = engine_outcome ~inject_bug ~doc:d config context_node q in
        not (outcomes_agree ~pinned:(pinned_order q) oracle engine)
    end
  in
  Xq_qgen.Shrink.shrink ~still_failing ~query ~doc
