(** The differential harness: one generated case, many engine
    configurations, one oracle.

    Each case runs through the real engine under a sampled configuration
    matrix — the direct evaluator plus the plan executor at strategy
    hash/sort/auto, parallel degree 1/2/4, spill watermark armed or off,
    document materialized or pulled through the streaming scan when the
    projection verdict allows (fault injection always cleared) — and
    every outcome is compared
    against {!Xq_refimpl.Refimpl}. Outputs are compared per returned
    item, as ordered lists when the query pins its tuple order (a
    trailing [order by], or no [group by] at all) and as multisets
    otherwise, implementing Section 3.4.2's undefined group order.
    Dynamic errors agree when their W3C error codes agree. *)

open Xq_xdm
open Xq_lang

type engine_kind =
  | Direct  (** [Xq_engine.Eval] — the tuple-stream evaluator *)
  | Plan of Xq_algebra.Optimizer.group_strategy  (** the plan executor *)

type config = {
  kind : engine_kind;
  parallel : int;  (** domain-pool degree; only the plan executor reads it *)
  spill : bool;    (** arm a tiny spill watermark to force external grouping *)
  stream : bool;
      (** run the projection verdict and, when streamable, pull the
          document through the streaming scan instead of materializing;
          plan configurations only *)
  nopush : bool;
      (** force the eager-aggregation pushdown off for this run — the
          rewritten-vs-unrewritten differential column. The process
          switch is restored afterwards, so an [XQ_NO_AGG_PUSHDOWN]
          environment still governs the other columns. *)
}

(** e.g. ["plan:sort/par=4/spill/stream"] — stable, used in reports. *)
val config_label : config -> string

(** The always-run configurations: direct, each strategy at parallel 1
    without spilling, the streamed hash executor with and without the
    spill watermark armed, and the hash executor with the aggregation
    pushdown forced off (unspilled and spilled). *)
val base_configs : config list

(** [base_configs] plus three seed-sampled stress configurations
    (strategy × parallel 2/4 × spill × stream). Deterministic per
    seed. *)
val sampled_configs : seed:int -> config list

type outcome =
  | Output of string list  (** serialized per returned item, in order *)
  | Error_code of string   (** a W3C/engine error code, e.g. "XPTY0004" *)

(** Serialized per-item result, or the error code. *)
val oracle_outcome : Node.t -> Ast.query -> outcome

(** Run one engine configuration. [inject_bug] artificially drops the
    last result item (when the result is non-empty) — a test-only fake
    engine defect for exercising the shrinker end-to-end. [doc] is the
    raw document text, required for streamed configurations (without it
    they fall back to the materialized executor): a streamed run
    re-reads the document through the streaming scan, so a wrong
    [Streamable] projection verdict surfaces as an ordinary divergence
    and shrinks like one. *)
val engine_outcome :
  ?inject_bug:bool -> ?doc:string -> config -> Node.t -> Ast.query -> outcome

(** True when the query's top-level FLWOR pins its tuple order: a
    trailing [order by], or no [group by]. Non-FLWOR bodies are pinned. *)
val pinned_order : Ast.query -> bool

val outcomes_agree : pinned:bool -> outcome -> outcome -> bool

type verdict =
  | Pass of int  (** configurations run *)
  | Oracle_unsupported of string
  | Roundtrip_failure  (** [parse (pretty q)] is not [q] *)
  | Divergence of { config : config; oracle : outcome; engine : outcome }

(** Check the pretty-printer round-trip, then every configuration
    against the oracle; first disagreement wins. *)
val check_case :
  ?inject_bug:bool -> configs:config list -> doc:string -> Ast.query -> verdict

(** Greedily minimize a diverging case under the one configuration that
    caught it (see {!Xq_qgen.Shrink}). *)
val shrink_divergence :
  ?inject_bug:bool ->
  config ->
  doc:string ->
  Ast.query ->
  Ast.query * string
