(** Binary encoding primitives used by the spill subsystem.

    Writers append to a [Buffer.t]; readers consume a string payload
    with full bounds checking, raising {!Corrupt} on malformed input
    (the spill layer converts that into a structured [XQENG0006]).

    Integers are zigzag varints, strings length-prefixed, floats IEEE
    bit patterns — so every value round-trips exactly, including NaN
    payloads and 63-bit integers.

    Items and sequences encode nodes {e by reference}: a node
    serializes as its id, registered in a {!node_registry} at encode
    time and resolved through it on decode. The decoded item is the
    {e original} node — identity, parent links and document order all
    survive the round trip, and the registry is what keeps spilled
    nodes pinned while their bytes live on disk.

    A registry created with [~detach:true] (streamed execution) instead
    encodes {e detached} trees — nodes whose tree root is not a document
    node, i.e. streamed subtrees and constructed elements — {e by
    value}, carrying their original ids. Decoding rebuilds a
    structurally identical tree with the same ids, so document order and
    id-based identity are preserved, while the original tree is left
    collectable: spilling then genuinely releases memory, which is what
    lets a streamed group-by stay bounded by the watermark. Nodes of a
    materialized document still encode by reference (their parent chain
    above the item must survive). *)

exception Corrupt of string

(** {1 Primitives} *)

val put_varint : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
val put_bool : Buffer.t -> bool -> unit
val put_float : Buffer.t -> float -> unit
val put_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

type reader = { src : string; mutable pos : int }

val reader : string -> reader
val at_end : reader -> bool
val get_varint : reader -> int
val get_string : reader -> string
val get_bool : reader -> bool
val get_float : reader -> float
val get_opt : (reader -> 'a) -> reader -> 'a option

(** {1 Data-model values} *)

val put_atom : Buffer.t -> Atomic.t -> unit
val get_atom : reader -> Atomic.t

(** Maps spilled node ids back to the live nodes. One registry per
    grouping partition: encode and decode sides must share it. *)
type node_registry

val registry : ?detach:bool -> unit -> node_registry

val put_item : node_registry -> Buffer.t -> Item.t -> unit
val get_item : node_registry -> reader -> Item.t
val put_seq : node_registry -> Buffer.t -> Xseq.t -> unit
val get_seq : node_registry -> reader -> Xseq.t
