type code =
  | XPST0003
  | XPST0008
  | XPST0017
  | XQST0094
  | XPTY0004
  | XPDY0002
  | FORG0001
  | FORG0006
  | FOAR0001
  | FOCA0002
  | FODT0001
  | XQDY0025
  | XQENG0001
  | XQENG0002
  | XQENG0003
  | XQENG0004
  | XQENG0005
  | XQENG0006
  | XQENG0007
  | XQENG0008

exception Error of code * string

let code_to_string = function
  | XPST0003 -> "XPST0003"
  | XPST0008 -> "XPST0008"
  | XPST0017 -> "XPST0017"
  | XQST0094 -> "XQST0094"
  | XPTY0004 -> "XPTY0004"
  | XPDY0002 -> "XPDY0002"
  | FORG0001 -> "FORG0001"
  | FORG0006 -> "FORG0006"
  | FOAR0001 -> "FOAR0001"
  | FOCA0002 -> "FOCA0002"
  | FODT0001 -> "FODT0001"
  | XQDY0025 -> "XQDY0025"
  | XQENG0001 -> "XQENG0001"
  | XQENG0002 -> "XQENG0002"
  | XQENG0003 -> "XQENG0003"
  | XQENG0004 -> "XQENG0004"
  | XQENG0005 -> "XQENG0005"
  | XQENG0006 -> "XQENG0006"
  | XQENG0007 -> "XQENG0007"
  | XQENG0008 -> "XQENG0008"

let all_codes =
  [ XPST0003; XPST0008; XPST0017; XQST0094; XPTY0004; XPDY0002; FORG0001;
    FORG0006; FOAR0001; FOCA0002; FODT0001; XQDY0025; XQENG0001; XQENG0002;
    XQENG0003; XQENG0004; XQENG0005; XQENG0006; XQENG0007; XQENG0008 ]

let code_of_string s =
  List.find_opt (fun c -> code_to_string c = s) all_codes

type severity = Static | Dynamic | Resource

let severity = function
  | XPST0003 | XPST0008 | XPST0017 | XQST0094 -> Static
  | XPTY0004 | XPDY0002 | FORG0001 | FORG0006 | FOAR0001 | FOCA0002
  | FODT0001 | XQDY0025 ->
    Dynamic
  | XQENG0001 | XQENG0002 | XQENG0003 | XQENG0004 | XQENG0005 | XQENG0006
  | XQENG0007 | XQENG0008 ->
    Resource

let is_resource code = severity code = Resource

(* The CLI exit-code taxonomy: 0 ok, 1 usage, 2 static, 3 dynamic,
   4 resource limit. Usage errors never reach this function (they are
   not [Error]s); everything else maps from its severity. *)
let exit_code code =
  match severity code with Static -> 2 | Dynamic -> 3 | Resource -> 4

let to_message code msg = Printf.sprintf "[%s] %s" (code_to_string code) msg

let fail code msg = raise (Error (code, msg))

let failf code fmt = Format.kasprintf (fun msg -> fail code msg) fmt

let () =
  Printexc.register_printer (function
    | Error (code, msg) -> Some (to_message code msg)
    | _ -> None)
