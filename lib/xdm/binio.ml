(* Binary encoding primitives for the spill subsystem.

   A compact, self-contained wire format: zigzag varints for integers,
   length-prefixed strings, IEEE bit patterns for floats. Atop the
   primitives sit codecs for the data-model values grouping spills —
   atomic values, and items/sequences with nodes encoded *by reference*:
   a node serializes as its id and is resolved on decode through a
   registry populated at encode time. Serializing node structure would
   be both wrong (node identity must survive the round trip — [same]
   and document order are id-based) and explosive (parent pointers
   reach the whole document); the registry pins exactly the nodes that
   were spilled, and the decoded item is the original node.

   Decoders validate every read against the payload bounds and raise
   {!Corrupt} on malformed input; the spill layer converts that into a
   structured XQENG0006 failure. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

(* --- writer primitives (over Buffer) ------------------------------------ *)

(* Zigzag-mapped LEB128: small magnitudes of either sign stay short. *)
let put_varint buf n =
  let z = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr z)
    else begin
      Buffer.add_char buf (Char.chr (z land 0x7f lor 0x80));
      go (z lsr 7)
    end
  in
  go z

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xff))
  done

let put_opt put buf = function
  | None -> put_bool buf false
  | Some v ->
    put_bool buf true;
    put buf v

(* --- reader -------------------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let at_end r = r.pos >= String.length r.src

let byte r =
  if r.pos >= String.length r.src then corrupt "varint past end of payload";
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (- (z land 1))

let get_string r =
  let n = get_varint r in
  if n < 0 || r.pos + n > String.length r.src then
    corrupt "string length %d overruns payload" n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_bool r =
  match byte r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "invalid boolean byte %#x" b

let get_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (i * 8))
  done;
  Int64.float_of_bits !bits

let get_opt get r = if get_bool r then Some (get r) else None

(* --- atomic values ------------------------------------------------------- *)

let put_date_time buf (d : Xdatetime.t) =
  put_varint buf d.Xdatetime.year;
  put_varint buf d.Xdatetime.month;
  put_varint buf d.Xdatetime.day;
  put_varint buf d.Xdatetime.hour;
  put_varint buf d.Xdatetime.minute;
  put_float buf d.Xdatetime.second;
  put_opt put_varint buf d.Xdatetime.tz_minutes

let get_date_time r =
  let year = get_varint r in
  let month = get_varint r in
  let day = get_varint r in
  let hour = get_varint r in
  let minute = get_varint r in
  let second = get_float r in
  let tz_minutes = get_opt get_varint r in
  { Xdatetime.year; month; day; hour; minute; second; tz_minutes }

let put_date buf (d : Xdatetime.date) =
  put_varint buf d.Xdatetime.d_year;
  put_varint buf d.Xdatetime.d_month;
  put_varint buf d.Xdatetime.d_day;
  put_opt put_varint buf d.Xdatetime.d_tz

let get_date r =
  let d_year = get_varint r in
  let d_month = get_varint r in
  let d_day = get_varint r in
  let d_tz = get_opt get_varint r in
  { Xdatetime.d_year; d_month; d_day; d_tz }

let put_atom buf (a : Atomic.t) =
  match a with
  | Atomic.Untyped s ->
    Buffer.add_char buf '\000';
    put_string buf s
  | Atomic.Str s ->
    Buffer.add_char buf '\001';
    put_string buf s
  | Atomic.Bool b ->
    Buffer.add_char buf '\002';
    put_bool buf b
  | Atomic.Int n ->
    Buffer.add_char buf '\003';
    put_varint buf n
  | Atomic.Dec f ->
    Buffer.add_char buf '\004';
    put_float buf f
  | Atomic.Dbl f ->
    Buffer.add_char buf '\005';
    put_float buf f
  | Atomic.DateTime d ->
    Buffer.add_char buf '\006';
    put_date_time buf d
  | Atomic.Date d ->
    Buffer.add_char buf '\007';
    put_date buf d
  | Atomic.QName n ->
    Buffer.add_char buf '\008';
    put_opt put_string buf n.Xname.prefix;
    put_string buf n.Xname.local

let get_atom r : Atomic.t =
  match byte r with
  | 0 -> Atomic.Untyped (get_string r)
  | 1 -> Atomic.Str (get_string r)
  | 2 -> Atomic.Bool (get_bool r)
  | 3 -> Atomic.Int (get_varint r)
  | 4 -> Atomic.Dec (get_float r)
  | 5 -> Atomic.Dbl (get_float r)
  | 6 -> Atomic.DateTime (get_date_time r)
  | 7 -> Atomic.Date (get_date r)
  | 8 ->
    let prefix = get_opt get_string r in
    let local = get_string r in
    Atomic.QName { Xname.prefix; local }
  | t -> corrupt "unknown atom tag %#x" t

(* --- items and sequences (nodes by registry reference) ------------------- *)

type node_registry = { tbl : (int, Node.t) Hashtbl.t; detach : bool }

let registry ?(detach = false) () : node_registry =
  { tbl = Hashtbl.create 64; detach }

let put_xname buf (n : Xname.t) =
  put_opt put_string buf n.Xname.prefix;
  put_string buf n.Xname.local

let get_xname r : Xname.t =
  let prefix = get_opt get_string r in
  let local = get_string r in
  { Xname.prefix; local }

(* Structural (by-value) node encoding, used for detached subtrees in
   streamed mode: the original ids ride along so document order and
   id-based identity survive the round trip, and — unlike a registry
   reference — nothing pins the encoded tree in memory while its bytes
   live on disk. Document nodes never reach here (a tree rooted in a
   document encodes by reference; see [put_item]). *)
let rec put_tree buf n =
  put_varint buf (Node.id n);
  match Node.kind n with
  | Node.Element ->
    Buffer.add_char buf 'E';
    put_xname buf (Option.get (Node.name n));
    let attrs = Node.attributes n in
    put_varint buf (List.length attrs);
    List.iter
      (fun a ->
        put_varint buf (Node.id a);
        put_xname buf (Option.get (Node.name a));
        put_string buf (Node.attribute_value a))
      attrs;
    let children = Node.children n in
    put_varint buf (List.length children);
    List.iter (put_tree buf) children
  | Node.Text ->
    Buffer.add_char buf 'T';
    put_string buf (Node.text_content n)
  | Node.Comment ->
    Buffer.add_char buf 'C';
    put_string buf (Node.comment_text n)
  | Node.Pi ->
    Buffer.add_char buf 'P';
    put_string buf (Node.pi_target n);
    put_string buf (Node.pi_data n)
  | Node.Attribute ->
    Buffer.add_char buf 'A';
    put_xname buf (Option.get (Node.name n));
    put_string buf (Node.attribute_value n)
  | Node.Document -> corrupt "document node in a by-value spill encoding"

let rec get_tree r =
  let id = get_varint r in
  match byte r with
  | c when c = Char.code 'E' ->
    let name = get_xname r in
    let el = Node.element_with_id ~id name in
    let n_attrs = get_varint r in
    if n_attrs < 0 then corrupt "negative attribute count %d" n_attrs;
    for _ = 1 to n_attrs do
      let aid = get_varint r in
      let aname = get_xname r in
      let v = get_string r in
      Node.set_attribute el (Node.attribute_with_id ~id:aid aname v)
    done;
    let n_children = get_varint r in
    if n_children < 0 then corrupt "negative child count %d" n_children;
    for _ = 1 to n_children do
      Node.append_child el (get_tree r)
    done;
    el
  | c when c = Char.code 'T' -> Node.text_with_id ~id (get_string r)
  | c when c = Char.code 'C' -> Node.comment_with_id ~id (get_string r)
  | c when c = Char.code 'P' ->
    let target = get_string r in
    let data = get_string r in
    Node.pi_with_id ~id ~target ~data
  | c when c = Char.code 'A' ->
    let name = get_xname r in
    Node.attribute_with_id ~id name (get_string r)
  | t -> corrupt "unknown tree-node tag %#x" t

let put_item (reg : node_registry) buf (it : Item.t) =
  match it with
  | Item.Atomic a ->
    Buffer.add_char buf '\000';
    put_atom buf a
  | Item.Node n ->
    if reg.detach && Node.kind (Node.root n) <> Node.Document then begin
      (* a detached tree (streamed subtree or constructed node): encode
         the structure so the live tree really can be collected *)
      Buffer.add_char buf '\002';
      put_tree buf n
    end
    else begin
      let id = Node.id n in
      if not (Hashtbl.mem reg.tbl id) then Hashtbl.add reg.tbl id n;
      Buffer.add_char buf '\001';
      put_varint buf id
    end

let get_item (reg : node_registry) r : Item.t =
  match byte r with
  | 0 -> Item.Atomic (get_atom r)
  | 1 ->
    let id = get_varint r in
    (match Hashtbl.find_opt reg.tbl id with
     | Some n -> Item.Node n
     | None -> corrupt "node id %d not in spill registry" id)
  | 2 -> Item.Node (get_tree r)
  | t -> corrupt "unknown item tag %#x" t

let put_seq reg buf (s : Xseq.t) =
  put_varint buf (List.length s);
  List.iter (put_item reg buf) s

let get_seq reg r : Xseq.t =
  let n = get_varint r in
  if n < 0 then corrupt "negative sequence length %d" n;
  List.init n (fun _ -> get_item reg r)
