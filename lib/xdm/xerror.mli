(** Typed XQuery error conditions.

    Codes follow the W3C error-code naming (XPST* static, XPTY*/XPDY*
    type/dynamic, FO* functions-and-operators), plus an engine-specific
    [XQENG*] family for resource-governor trips so callers can
    distinguish resource exhaustion from query errors. *)

type code =
  | XPST0003  (** static: syntax error *)
  | XPST0008  (** static: undefined variable *)
  | XPST0017  (** static: unknown function name / arity *)
  | XQST0094  (** static: illegal variable reference across group by *)
  | XPTY0004  (** type error *)
  | XPDY0002  (** dynamic: absent context item *)
  | FORG0001  (** invalid cast / constructor argument *)
  | FORG0006  (** invalid argument type (e.g. effective boolean value) *)
  | FOAR0001  (** division by zero *)
  | FOCA0002  (** invalid lexical value *)
  | FODT0001  (** date/time overflow *)
  | XQDY0025  (** duplicate attribute name in constructor *)
  | XQENG0001 (** resource: wall-clock deadline exceeded *)
  | XQENG0002 (** resource: memory budget exceeded *)
  | XQENG0003 (** resource: group/tuple cardinality cap exceeded *)
  | XQENG0004 (** resource: query cancelled *)
  | XQENG0005 (** resource: input document limit exceeded *)
  | XQENG0006
      (** resource: spill I/O failure (external grouping could not
          write, read or validate a spill file; the message carries the
          failing path and operation) *)
  | XQENG0007
      (** resource: admission rejected — the query server's global
          memory watermark is hot or its concurrency cap is reached, so
          the query was refused before execution rather than started
          and starved. Retryable once the server drains. *)
  | XQENG0008
      (** resource: read I/O failure on a streamed input document (an
          EIO or torn read from the streaming XML reader, real or
          injected; the message carries the source and position) *)

exception Error of code * string

val code_to_string : code -> string

(** Inverse of {!code_to_string}; [None] for unknown strings. Used where
    a code crosses a serialization boundary (spilled accumulator error
    state, fuzzer outcome comparison). *)
val code_of_string : string -> code option

(** Error classes, as the CLI exit-code taxonomy sees them. *)
type severity = Static | Dynamic | Resource

val severity : code -> severity

(** [true] exactly for the [XQENG*] resource-governor family. *)
val is_resource : code -> bool

(** CLI exit code for a raised [code]: 2 static, 3 dynamic, 4 resource
    limit (0 is success and 1 usage errors, neither of which carries a
    code). *)
val exit_code : code -> int

(** Raise [Error (code, msg)]. *)
val fail : code -> string -> 'a

(** [failf code fmt ...] — formatted variant of {!fail}. *)
val failf : code -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** ["[CODE] message"] rendering, used by CLI and tests. *)
val to_message : code -> string -> string
