type kind = Document | Element | Attribute | Text | Comment | Pi

type t = {
  id : int;
  mutable parent : t option;
  body : body;
}

(* Children are stored in reverse so append_child is O(1); accessors
   reverse on demand, which is no worse than the traversal that follows. *)
and body =
  | BDocument of { mutable rev_children : t list }
  | BElement of {
      name : Xname.t;
      mutable rev_attributes : t list;
      mutable rev_children : t list;
    }
  | BAttribute of { name : Xname.t; value : string }
  | BText of { text : string }
  | BComment of string
  | BPi of { target : string; data : string }

let counter = ref 0

let fresh_id () = incr counter; !counter

let reset_ids_for_testing () = counter := 0

let mk body = { id = fresh_id (); parent = None; body }

let document () = mk (BDocument { rev_children = [] })
let element name = mk (BElement { name; rev_attributes = []; rev_children = [] })
let attribute name value = mk (BAttribute { name; value })
let text s = mk (BText { text = s })
let comment s = mk (BComment s)
let pi ~target ~data = mk (BPi { target; data })

(* Explicit-id constructors for the spill codec: a decoded streamed
   subtree keeps its original ids so document order survives the round
   trip. Ids come from earlier [fresh_id] calls of the same process, so
   the monotone counter never reissues them to new nodes. *)
let mk_id id body = { id; parent = None; body }

let element_with_id ~id name =
  mk_id id (BElement { name; rev_attributes = []; rev_children = [] })

let attribute_with_id ~id name value = mk_id id (BAttribute { name; value })
let text_with_id ~id s = mk_id id (BText { text = s })
let comment_with_id ~id s = mk_id id (BComment s)
let pi_with_id ~id ~target ~data = mk_id id (BPi { target; data })

let kind n =
  match n.body with
  | BDocument _ -> Document
  | BElement _ -> Element
  | BAttribute _ -> Attribute
  | BText _ -> Text
  | BComment _ -> Comment
  | BPi _ -> Pi

let id n = n.id
let parent n = n.parent

let append_child p c =
  (match c.body with
   | BAttribute _ -> invalid_arg "Node.append_child: attribute child"
   | BDocument _ -> invalid_arg "Node.append_child: document child"
   | BElement _ | BText _ | BComment _ | BPi _ -> ());
  match p.body with
  | BDocument d -> c.parent <- Some p; d.rev_children <- c :: d.rev_children
  | BElement e -> c.parent <- Some p; e.rev_children <- c :: e.rev_children
  | BAttribute _ | BText _ | BComment _ | BPi _ ->
    invalid_arg "Node.append_child: receiver cannot have children"

let set_attribute p a =
  match p.body, a.body with
  | BElement e, BAttribute { name; _ } ->
    let dup other =
      match other.body with
      | BAttribute { name = n'; _ } -> Xname.equal n' name
      | _ -> false
    in
    if List.exists dup e.rev_attributes then
      Xerror.failf XQDY0025 "duplicate attribute %s" (Xname.to_string name);
    a.parent <- Some p;
    e.rev_attributes <- a :: e.rev_attributes
  | BElement _, _ -> invalid_arg "Node.set_attribute: not an attribute"
  | _, _ -> invalid_arg "Node.set_attribute: receiver not an element"

let children n =
  match n.body with
  | BDocument d -> List.rev d.rev_children
  | BElement e -> List.rev e.rev_children
  | BAttribute _ | BText _ | BComment _ | BPi _ -> []

let attributes n =
  match n.body with
  | BElement e -> List.rev e.rev_attributes
  | BDocument _ | BAttribute _ | BText _ | BComment _ | BPi _ -> []

let name n =
  match n.body with
  | BElement e -> Some e.name
  | BAttribute a -> Some a.name
  | BDocument _ | BText _ | BComment _ | BPi _ -> None

let local_name n =
  match n.body with
  | BElement e -> e.name.Xname.local
  | BAttribute a -> a.name.Xname.local
  | BPi p -> p.target
  | BDocument _ | BText _ | BComment _ -> ""

let is_element n = match n.body with BElement _ -> true | _ -> false
let is_attribute n = match n.body with BAttribute _ -> true | _ -> false
let is_text n = match n.body with BText _ -> true | _ -> false

let attribute_value n =
  match n.body with
  | BAttribute a -> a.value
  | _ -> invalid_arg "Node.attribute_value: not an attribute"

let text_content n =
  match n.body with
  | BText t -> t.text
  | _ -> invalid_arg "Node.text_content: not a text node"

let comment_text n =
  match n.body with
  | BComment s -> s
  | _ -> invalid_arg "Node.comment_text: not a comment"

let pi_target n =
  match n.body with
  | BPi p -> p.target
  | _ -> invalid_arg "Node.pi_target: not a PI"

let pi_data n =
  match n.body with
  | BPi p -> p.data
  | _ -> invalid_arg "Node.pi_data: not a PI"

let string_value n =
  match n.body with
  | BAttribute a -> a.value
  | BText t -> t.text
  | BComment s -> s
  | BPi p -> p.data
  | BDocument _ | BElement _ ->
    let buf = Buffer.create 64 in
    let rec go n =
      match n.body with
      | BText t -> Buffer.add_string buf t.text
      | BElement e -> List.iter go (List.rev e.rev_children)
      | BDocument d -> List.iter go (List.rev d.rev_children)
      | BAttribute _ | BComment _ | BPi _ -> ()
    in
    go n;
    Buffer.contents buf

let typed_value n =
  match n.body with
  | BComment s -> Atomic.Str s
  | BPi p -> Atomic.Str p.data
  | BDocument _ | BElement _ | BAttribute _ | BText _ ->
    Atomic.Untyped (string_value n)

let copy n =
  let rec go n =
    match n.body with
    | BDocument _ ->
      let d = document () in
      List.iter (fun c -> append_child d (go c)) (children n);
      d
    | BElement e ->
      let el = element e.name in
      List.iter (fun a -> set_attribute el (go a)) (attributes n);
      List.iter (fun c -> append_child el (go c)) (children n);
      el
    | BAttribute a -> attribute a.name a.value
    | BText t -> text t.text
    | BComment s -> comment s
    | BPi p -> pi ~target:p.target ~data:p.data
  in
  go n

let rec root n =
  match n.parent with
  | None -> n
  | Some p -> root p

let descendants n =
  let rec go acc n =
    List.fold_left (fun acc c -> go (c :: acc) c) acc (children n)
  in
  List.rev (go [] n)

let descendant_or_self n = n :: descendants n

let ancestors n =
  let rec go acc n =
    match n.parent with
    | None -> List.rev acc
    | Some p -> go (p :: acc) p
  in
  go [] n

let siblings_of n =
  match n.parent with
  | None -> []
  | Some p -> if is_attribute n then [] else children p

let following_siblings n =
  let rec after = function
    | [] -> []
    | c :: rest -> if c == n then rest else after rest
  in
  after (siblings_of n)

let preceding_siblings n =
  let rec before acc = function
    | [] -> []
    | c :: rest -> if c == n then acc else before (c :: acc) rest
  in
  before [] (siblings_of n)

let doc_order_compare a b = Int.compare a.id b.id

let same a b = a.id = b.id

let sort_in_doc_order nodes =
  (* Path steps almost always produce already-ordered, duplicate-free
     results; detect that in one pass before paying for a sort. *)
  let rec strictly_sorted = function
    | a :: (b :: _ as rest) -> a.id < b.id && strictly_sorted rest
    | [ _ ] | [] -> true
  in
  if strictly_sorted nodes then nodes
  else begin
    let sorted = List.sort doc_order_compare nodes in
    let rec dedup = function
      | a :: (b :: _ as rest) when a.id = b.id -> dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted
  end
