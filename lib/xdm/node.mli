(** XML tree nodes with identity and document order.

    Every node carries a process-wide unique [id] assigned at creation.
    Parsers and builders create nodes in preorder, so within one tree the
    ids coincide with document order; across trees the ids give an
    arbitrary but stable implementation-defined order, as the XQuery data
    model permits. Element construction in queries copies its content
    (fresh ids), matching the XQuery constructor semantics.

    The representation is abstract so children can be stored for O(1)
    append; inspect nodes through {!kind} and the accessors. *)

type t

type kind = Document | Element | Attribute | Text | Comment | Pi

(** {1 Construction} *)

val document : unit -> t
val element : Xname.t -> t
val attribute : Xname.t -> string -> t
val text : string -> t
val comment : string -> t
val pi : target:string -> data:string -> t

(** Append a child (sets its parent); O(1). Raises [Invalid_argument]
    when the receiver cannot have children or the child is an attribute
    or document. *)
val append_child : t -> t -> unit

(** Attach an attribute to an element (sets its parent). Raises
    [Xerror.Error (XQDY0025, _)] on a duplicate attribute name and
    [Invalid_argument] when the receiver is not an element or the
    argument not an attribute. *)
val set_attribute : t -> t -> unit

(** Deep copy with fresh ids assigned in preorder (used by element
    constructors). *)
val copy : t -> t

(** {1 Explicit-id construction (spill codec only)}

    Rebuild a node carrying a given id instead of drawing a fresh one,
    so a spilled subtree decoded from disk keeps its original document
    order and identity. Only ever call these with ids previously issued
    by this process (the codec round-trips them); the global counter is
    monotone and never reissues an id, so no collision with live nodes
    is possible. *)

val element_with_id : id:int -> Xname.t -> t
val attribute_with_id : id:int -> Xname.t -> string -> t
val text_with_id : id:int -> string -> t
val comment_with_id : id:int -> string -> t
val pi_with_id : id:int -> target:string -> data:string -> t

(** {1 Accessors} *)

val id : t -> int
val kind : t -> kind
val parent : t -> t option

(** Children in document order (empty for childless kinds). *)
val children : t -> t list

(** Attribute nodes of an element (empty otherwise). *)
val attributes : t -> t list

(** Element or attribute name. *)
val name : t -> Xname.t option

(** [local-name()]: empty string for unnamed kinds. *)
val local_name : t -> string

val is_element : t -> bool
val is_attribute : t -> bool
val is_text : t -> bool

(** Content of an attribute node. Raises [Invalid_argument] otherwise. *)
val attribute_value : t -> string

(** Content of a text node. Raises [Invalid_argument] otherwise. *)
val text_content : t -> string

val comment_text : t -> string
val pi_target : t -> string
val pi_data : t -> string

(** The string-value: concatenated descendant text for documents and
    elements; the value for attributes; the content for text, comments
    and PIs. *)
val string_value : t -> string

(** The typed value of a schemaless node: [Untyped (string_value n)],
    except comments and PIs whose value is a string. *)
val typed_value : t -> Atomic.t

(** {1 Navigation} *)

val root : t -> t

(** Descendants in document order, excluding [n] and attributes. *)
val descendants : t -> t list

(** [n] followed by its descendants. *)
val descendant_or_self : t -> t list

(** Ancestors from parent to root. *)
val ancestors : t -> t list

val following_siblings : t -> t list
val preceding_siblings : t -> t list

(** Document order within a tree; across trees, a stable arbitrary order. *)
val doc_order_compare : t -> t -> int

(** Identity (the [is] operator). *)
val same : t -> t -> bool

(** Sort into document order and drop duplicate identities (the implicit
    semantics of path-expression results). *)
val sort_in_doc_order : t list -> t list

(** Reset the global id counter — test-only helper for reproducibility. *)
val reset_ids_for_testing : unit -> unit
