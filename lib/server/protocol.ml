module Pipeline = Xq_pipeline.Pipeline
module Optimizer = Xq_algebra.Optimizer

type doc_source = Doc_none | Doc_path of string | Doc_inline of string

type run_request = {
  rq_source : string;
  rq_doc : doc_source;
  rq_knobs : Pipeline.knobs;
  rq_indent : bool;
}

type command = Run of run_request | Stats | Ping | Quit

type response =
  | Payload of string
  | Error of {
      code : string;
      exit : int;
      message : string;
      retry_after_ms : int option;
    }

exception Protocol_error of string

let proto_fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* input_line keeps a trailing \r if a client talks CRLF; strip it so
   header parsing is transport-agnostic. *)
let read_line ic =
  let line = input_line ic in
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Counted fields are bounded: an unchecked length would let a one-line
   [QUERY 999999999999] header force a giant allocation in
   [really_input_string] before a single query byte arrives. The server
   passes its --max-request-bytes here; the client bounds response
   frames the same way. *)
let parse_len ~max_bytes what s =
  match int_of_string_opt s with
  | Some n when n >= 0 && n <= max_bytes -> n
  | Some n when n > max_bytes ->
    proto_fail "%s: length %d exceeds the %d-byte frame cap" what n max_bytes
  | _ -> proto_fail "%s: bad length %S" what s

let parse_pos what s =
  match int_of_string_opt s with
  | Some n when n > 0 -> n
  | _ -> proto_fail "%s must be a positive integer, got %S" what s

(* A counted field is <n> bytes followed by the frame's terminating
   newline (not part of the field). *)
let read_counted ic n =
  let s = really_input_string ic n in
  (match input_char ic with
   | '\n' -> ()
   | c -> proto_fail "expected newline after counted field, got %C" c);
  s

let split2 line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )

let read_command ?(max_field_bytes = max_int) ic =
  let parse_len = parse_len ~max_bytes:max_field_bytes in
  match read_line ic with
  | exception End_of_file -> None
  | first ->
    let rec headers source doc knobs indent line =
      let word, rest = split2 line in
      let continue source doc knobs indent =
        headers source doc knobs indent (read_line ic)
      in
      match word with
      | "RUN" -> begin
        match source with
        | None -> proto_fail "RUN without a QUERY header"
        | Some rq_source ->
          Run { rq_source; rq_doc = doc; rq_knobs = knobs; rq_indent = indent }
      end
      | "QUERY" ->
        let q = read_counted ic (parse_len "QUERY" rest) in
        continue (Some q) doc knobs indent
      | "DOC" ->
        if rest = "" then proto_fail "DOC needs a path";
        continue source (Doc_path rest) knobs indent
      | "DOCINLINE" ->
        let xml = read_counted ic (parse_len "DOCINLINE" rest) in
        continue source (Doc_inline xml) knobs indent
      | "STRATEGY" ->
        let s =
          match rest with
          | "hash" -> Optimizer.Hash
          | "sort" -> Optimizer.Sort
          | "auto" -> Optimizer.Auto
          | other -> proto_fail "STRATEGY must be hash|sort|auto, got %S" other
        in
        continue source doc { knobs with Pipeline.k_strategy = Some s } indent
      | "PARALLEL" ->
        continue source doc
          { knobs with Pipeline.k_parallel = Some (parse_pos "PARALLEL" rest) }
          indent
      | "BATCH" ->
        continue source doc
          { knobs with Pipeline.k_batch = Some (parse_pos "BATCH" rest) }
          indent
      | "TIMEOUT" ->
        continue source doc
          { knobs with Pipeline.k_timeout_ms = Some (parse_pos "TIMEOUT" rest) }
          indent
      | "MAX-GROUPS" ->
        continue source doc
          { knobs with
            Pipeline.k_max_groups = Some (parse_pos "MAX-GROUPS" rest) }
          indent
      | "MAX-MEM" ->
        continue source doc
          { knobs with
            Pipeline.k_max_mem_mb = Some (parse_pos "MAX-MEM" rest) }
          indent
      | "SPILL-AT" ->
        continue source doc
          { knobs with
            Pipeline.k_spill_at_mb = Some (parse_pos "SPILL-AT" rest) }
          indent
      | "REWRITE" ->
        continue source doc { knobs with Pipeline.k_rewrite = true } indent
      | "STREAM" ->
        (* explicit opt-in: server-side streaming changes which requests
           bypass the document store, so it never happens implicitly *)
        continue source doc { knobs with Pipeline.k_stream = Some true } indent
      | "NO-STREAM" ->
        continue source doc { knobs with Pipeline.k_stream = Some false } indent
      | "INDEX" ->
        continue source doc { knobs with Pipeline.k_use_index = true } indent
      | "INDENT" -> continue source doc knobs true
      | "" -> continue source doc knobs indent  (* blank lines are noise *)
      | other -> proto_fail "unknown header %S" other
    in
    (match first with
     | "STATS" -> Some Stats
     | "PING" -> Some Ping
     | "QUIT" -> Some Quit
     | line ->
       Some (headers None Doc_none Pipeline.default_knobs false line))

let write_command oc cmd =
  (match cmd with
   | Stats -> output_string oc "STATS\n"
   | Ping -> output_string oc "PING\n"
   | Quit -> output_string oc "QUIT\n"
   | Run rq ->
     Printf.fprintf oc "QUERY %d\n%s\n" (String.length rq.rq_source)
       rq.rq_source;
     (match rq.rq_doc with
      | Doc_none -> ()
      | Doc_path p -> Printf.fprintf oc "DOC %s\n" p
      | Doc_inline xml ->
        Printf.fprintf oc "DOCINLINE %d\n%s\n" (String.length xml) xml);
     let k = rq.rq_knobs in
     (match k.Pipeline.k_strategy with
      | Some s ->
        Printf.fprintf oc "STRATEGY %s\n" (Optimizer.strategy_to_string s)
      | None -> ());
     let num hdr = function
       | Some n -> Printf.fprintf oc "%s %d\n" hdr n
       | None -> ()
     in
     num "PARALLEL" k.Pipeline.k_parallel;
     num "BATCH" k.Pipeline.k_batch;
     num "TIMEOUT" k.Pipeline.k_timeout_ms;
     num "MAX-GROUPS" k.Pipeline.k_max_groups;
     num "MAX-MEM" k.Pipeline.k_max_mem_mb;
     num "SPILL-AT" k.Pipeline.k_spill_at_mb;
     if k.Pipeline.k_rewrite then output_string oc "REWRITE\n";
     (match k.Pipeline.k_stream with
      | Some true -> output_string oc "STREAM\n"
      | Some false -> output_string oc "NO-STREAM\n"
      | None -> ());
     if k.Pipeline.k_use_index then output_string oc "INDEX\n";
     if rq.rq_indent then output_string oc "INDENT\n";
     output_string oc "RUN\n");
  flush oc

let write_response oc r =
  (match r with
   | Payload p -> Printf.fprintf oc "OK %d\n%s\n" (String.length p) p
   | Error { code; exit; message; retry_after_ms } ->
     let hint =
       match retry_after_ms with
       | Some ms -> Printf.sprintf " RETRY-AFTER-MS=%d" ms
       | None -> ""
     in
     Printf.fprintf oc "ERR %s %d %d%s\n%s\n" code exit
       (String.length message) hint message);
  flush oc

let parse_exit s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> proto_fail "ERR: bad exit code %S" s

let parse_retry_hint s =
  let prefix = "RETRY-AFTER-MS=" in
  let pn = String.length prefix in
  if String.length s > pn && String.sub s 0 pn = prefix then
    match int_of_string_opt (String.sub s pn (String.length s - pn)) with
    | Some ms when ms >= 0 -> ms
    | _ -> proto_fail "ERR: bad retry hint %S" s
  else proto_fail "ERR: unknown trailer %S" s

let read_response ?(max_field_bytes = max_int) ic =
  let parse_len = parse_len ~max_bytes:max_field_bytes in
  let line = read_line ic in
  match String.split_on_char ' ' line with
  | [ "OK"; len ] -> Payload (read_counted ic (parse_len "OK" len))
  | [ "ERR"; code; exit; len ] ->
    Error
      {
        code;
        exit = parse_exit exit;
        message = read_counted ic (parse_len "ERR" len);
        retry_after_ms = None;
      }
  | [ "ERR"; code; exit; len; hint ] ->
    (* the hint rides the status line so pre-hint readers that split on
       spaces fail loudly rather than mis-framing the payload *)
    let retry = parse_retry_hint hint in
    Error
      {
        code;
        exit = parse_exit exit;
        message = read_counted ic (parse_len "ERR" len);
        retry_after_ms = Some retry;
      }
  | _ -> proto_fail "bad response line %S" line
