module Governor = Xq_governor.Governor
module Pipeline = Xq_pipeline.Pipeline

type entry = {
  e_plan : Pipeline.compiled;
  e_bytes : int;
  mutable e_gen : int;  (* recency stamp: larger = more recent *)
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  cap : int;
  account : Governor.t option;
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bytes : int;
}

let create ?(capacity = 64) ?account () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    cap = capacity;
    account;
    gen = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    bytes = 0;
  }

let capacity t = t.cap

(* The AST shares the source's strings and adds node overhead roughly
   linear in its length; a fixed multiple of the key length (which
   embeds the source) is a stable, deterministic estimate. *)
let estimate_bytes key = (4 * String.length key) + 256

let charge t n =
  t.bytes <- t.bytes + n;
  match t.account with Some g -> Governor.charge_on g n | None -> ()

let uncharge t n =
  t.bytes <- t.bytes - n;
  match t.account with Some g -> Governor.uncharge_on g n | None -> ()

let touch t e =
  t.gen <- t.gen + 1;
  e.e_gen <- t.gen

(* O(n) victim scan — capacities are small (dozens) and eviction only
   runs on insert past capacity, so this beats maintaining an intrusive
   list under the lock. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.e_gen <= e.e_gen -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, e) ->
    Hashtbl.remove t.table k;
    uncharge t e.e_bytes;
    t.evictions <- t.evictions + 1

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        Some e.e_plan
      | None ->
        t.misses <- t.misses + 1;
        None)

let insert_if_absent t key plan =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        (* a concurrent miss beat us to the insert: share its plan *)
        touch t e;
        e.e_plan
      | None ->
        let e = { e_plan = plan; e_bytes = estimate_bytes key; e_gen = 0 } in
        touch t e;
        Hashtbl.add t.table key e;
        charge t e.e_bytes;
        while Hashtbl.length t.table > t.cap do
          evict_lru t
        done;
        plan)

let find_or_add t key compile =
  match find t key with
  | Some plan -> plan
  | None ->
    (* compile outside the lock: parsing is the expensive part and a
       failure must not wedge the cache *)
    let plan = compile () in
    insert_if_absent t key plan

let clear t =
  locked t (fun () ->
      Hashtbl.iter (fun _ e -> uncharge t e.e_bytes) t.table;
      Hashtbl.reset t.table)

type stats = {
  p_hits : int;
  p_misses : int;
  p_evictions : int;
  p_entries : int;
  p_bytes : int;
}

let stats t =
  locked t (fun () ->
      {
        p_hits = t.hits;
        p_misses = t.misses;
        p_evictions = t.evictions;
        p_entries = Hashtbl.length t.table;
        p_bytes = t.bytes;
      })
