(** Shared resident document store for the query server.

    Parsed documents are immutable (the XDM tree is purely functional),
    so one resident copy can serve any number of concurrent queries:
    two loads of the same file return the {e physically identical}
    node. Entries are keyed on path and validated against the file's
    (mtime, size, inode) on every load — re-statted under the store
    lock, so both in-place rewrites and rename-swaps that preserve
    mtime and size are caught — and a changed file is reparsed in
    place with the stale tree dropped. Capacity is a resident-byte bound with
    least-recently-used eviction; bytes (an estimate — the node tree
    costs a small multiple of the serialized form) are charged against
    an optional accounting governor feeding the server's admission
    gauge. All operations are thread-safe. *)

type t

(** [create ?capacity_bytes ?account ()] — [capacity_bytes] bounds the
    resident-byte estimate (default 256 MB); [account] is charged via
    {!Xq_governor.Governor.charge_on} (never installed, never trips). *)
val create :
  ?capacity_bytes:int -> ?account:Xq_governor.Governor.t -> unit -> t

(** The deterministic resident estimate for a file of [size] bytes —
    exposed so tests can predict eviction. *)
val estimate_bytes : size:int -> int

(** [load t path] returns the resident document for [path], parsing it
    on first use or when its (mtime, size, inode) changed since it was
    cached.
    Raises [Sys_error] when the file cannot be read and the XML
    parser's errors when it cannot be parsed; neither leaves a cache
    entry behind. *)
val load : t -> string -> Xq_xdm.Node.t

(** Evict everything (uncharging the account). Counters survive. *)
val clear : t -> unit

type stats = {
  d_hits : int;
  d_misses : int;  (** includes invalidations — each implies a reparse *)
  d_evictions : int;  (** capacity evictions only *)
  d_invalidations : int;  (** (mtime, size, inode) mismatches *)
  d_entries : int;
  d_resident_bytes : int;
}

val stats : t -> stats
