(** The query server's engine room: one resident process multiplexing
    concurrent queries over shared caches.

    Three pieces from the rest of the tree meet here:

    - {!Plan_cache} and {!Doc_store} hold compiled plans and parsed
      documents across requests, charging their resident bytes to a
      long-lived {e house} governor that is never installed — it is a
      plain gauge, not a tripwire.
    - Admission control consults that gauge before each query: when the
      house estimate (resident bytes + process heap growth) is past its
      watermark, or the concurrency cap is reached, the request is
      refused up front with [XQENG0007] (exit family 4) and a
      [RETRY-AFTER-MS] backoff hint instead of being started and
      starved. Refusal is cheap and retryable; the PR 4 spill machinery
      already makes admitted queries degrade rather than die.
    - Each admitted query runs on a dedicated worker domain under its
      own {e scoped} governor ({!Xq_governor.Governor.with_scoped_governor}),
      so per-query deadlines, budgets and cancellation never touch a
      neighbour. Execution goes through {!Xq_pipeline.Pipeline} — the
      identical compile-and-run path the CLI, REPL and fuzzer use, so
      server output is byte-identical to [xq run].

    {b Lifecycle.} {!request_drain} (wired to SIGTERM/SIGINT by the
    daemon, async-signal-safe) flips the server into draining mode: the
    accept loop closes the listener at once, new [RUN]s on surviving
    connections are refused with [XQENG0007] plus a [RETRY-AFTER-MS]
    hint of the drain window, in-flight queries get
    [c_drain_timeout_ms] to finish, and any stragglers are then
    cooperatively cancelled through their registered scoped governors
    ([XQENG0004] — a clean ERR to their clients, never partial
    output). {!serve_unix} returns a {!drain_report} once drained.

    Connection handling injects faults from the seeded [XQ_FAULTS]
    connection stream ({!Xq_governor.Governor.conn_fault}): a drawn
    fault behaves exactly like a client vanishing mid-exchange, and the
    server must shrug — drop the connection, keep every shared
    structure consistent, keep serving. The fifth (worker-crash)
    stream, when the daemon arms it, kills the whole serving process at
    a crash point mid-query; surviving that is the supervisor's job. *)

type config = {
  c_plan_capacity : int;  (** plan-cache entries (default 64) *)
  c_doc_capacity_bytes : int;  (** doc-store resident bound (default 256 MB) *)
  c_max_concurrent : int;  (** admission concurrency cap (default 8) *)
  c_admission_watermark_mb : int option;
      (** house-governor soft watermark; [None] disables the memory
          gate (the concurrency cap still applies). Default 1024. *)
  c_max_request_bytes : int;
      (** counted-field cap on request frames — a longer [QUERY]/
          [DOCINLINE] length is answered [USAGE] before any
          allocation (default 8 MiB) *)
  c_max_connections : int;
      (** connection-thread cap, separate from query admission: idle
          connections park a thread and an fd each (default 64).
          Over-cap connects get one [XQENG0007] refusal frame and are
          closed. *)
  c_drain_timeout_ms : int;
      (** how long in-flight queries may keep running after
          {!request_drain} before cooperative cancellation
          (default 5000) *)
  c_retry_after_ms : int;
      (** the [RETRY-AFTER-MS] hint on load-based refusals
          (default 200); drain-mode refusals hint the drain window
          instead *)
  c_knobs : Xq_pipeline.Pipeline.knobs;
      (** per-query defaults; request headers override field-wise *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

(** The house governor — tests saturate the admission gauge by charging
    bytes on it directly. *)
val house : t -> Xq_governor.Governor.t

val plans : t -> Plan_cache.t
val docs : t -> Doc_store.t

(** Queries currently executing (admitted, not yet finished). *)
val active : t -> int

(** Flip the server into draining mode. Async-signal-safe (one atomic
    store): the daemon calls it straight from its SIGTERM/SIGINT
    handlers. Idempotent. *)
val request_drain : t -> unit

val draining : t -> bool

(** Cancel every in-flight query's scoped governor (each trips
    [XQENG0004] within a stride and answers its client with a clean
    ERR). Returns how many were cancelled. The drain path calls this
    when the timeout expires; exposed for tests. *)
val cancel_inflight : t -> int

(** Handle one command synchronously; [Run] blocks until the query
    finishes (on its own worker domain). Never raises — every failure
    is an [Error] response carrying the CLI exit-code family. *)
val handle : t -> Protocol.command -> Protocol.response

(** The [STATS] payload: one [key value] per line — pid, drain state,
    served/error counters by exit family, admission and connection
    rejects, drain cancellations, connection drops, and both caches'
    hit/miss/eviction counters. *)
val stats_text : t -> string

(** [serve_connection t ic oc] — read commands until [QUIT], EOF or a
    (possibly injected) connection fault, answering each on [oc].
    Request frames are bounded by [c_max_request_bytes]. Never raises;
    returns when the connection is done. *)
val serve_connection : t -> in_channel -> out_channel -> unit

(** Raised by {!serve_unix} instead of binding when a live server
    already answers on the socket path — stealing a serving daemon's
    socket would silently black-hole its clients. The message names
    the path and (when its STATS disclose one) the owning pid. *)
exception Socket_in_use of string

(** What the drain phase did: queries in flight when draining began,
    how many had to be cancelled at the deadline, and how long the
    drain took. *)
type drain_report = {
  dr_inflight_at_drain : int;
  dr_cancelled : int;
  dr_elapsed_ms : int;
}

(** [serve_unix t ~path ~stop ()] — bind a Unix-domain socket at
    [path] (replacing a {e stale} socket file only: if a live server
    answers there, raises {!Socket_in_use}), accept in a loop until
    [stop ()] becomes true or {!request_drain} is called, and serve
    each connection on its own thread (bounded by
    [c_max_connections]). Installs [Signal_ignore] for SIGPIPE so
    vanishing clients surface as [EPIPE] and are handled, not fatal;
    EINTR from handled signals restarts the accept loop. On
    stop/drain, closes the listener immediately, waits out in-flight
    queries per [c_drain_timeout_ms], cancels stragglers and returns
    the {!drain_report}. *)
val serve_unix :
  t -> path:string -> stop:(unit -> bool) -> unit -> drain_report
