(** The query server's engine room: one resident process multiplexing
    concurrent queries over shared caches.

    Three pieces from the rest of the tree meet here:

    - {!Plan_cache} and {!Doc_store} hold compiled plans and parsed
      documents across requests, charging their resident bytes to a
      long-lived {e house} governor that is never installed — it is a
      plain gauge, not a tripwire.
    - Admission control consults that gauge before each query: when the
      house estimate (resident bytes + process heap growth) is past its
      watermark, or the concurrency cap is reached, the request is
      refused up front with [XQENG0007] (exit family 4) instead of
      being started and starved. Refusal is cheap and retryable; the
      PR 4 spill machinery already makes admitted queries degrade
      rather than die.
    - Each admitted query runs on a dedicated worker domain under its
      own {e scoped} governor ({!Xq_governor.Governor.with_scoped_governor}),
      so per-query deadlines, budgets and cancellation never touch a
      neighbour. Execution goes through {!Xq_pipeline.Pipeline} — the
      identical compile-and-run path the CLI, REPL and fuzzer use, so
      server output is byte-identical to [xq run].

    Connection handling injects faults from the seeded [XQ_FAULTS]
    connection stream ({!Xq_governor.Governor.conn_fault}): a drawn
    fault behaves exactly like a client vanishing mid-exchange, and the
    server must shrug — drop the connection, keep every shared
    structure consistent, keep serving. *)

type config = {
  c_plan_capacity : int;  (** plan-cache entries (default 64) *)
  c_doc_capacity_bytes : int;  (** doc-store resident bound (default 256 MB) *)
  c_max_concurrent : int;  (** admission concurrency cap (default 8) *)
  c_admission_watermark_mb : int option;
      (** house-governor soft watermark; [None] disables the memory
          gate (the concurrency cap still applies). Default 1024. *)
  c_knobs : Xq_pipeline.Pipeline.knobs;
      (** per-query defaults; request headers override field-wise *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

(** The house governor — tests saturate the admission gauge by charging
    bytes on it directly. *)
val house : t -> Xq_governor.Governor.t

val plans : t -> Plan_cache.t
val docs : t -> Doc_store.t

(** Queries currently executing (admitted, not yet finished). *)
val active : t -> int

(** Handle one command synchronously; [Run] blocks until the query
    finishes (on its own worker domain). Never raises — every failure
    is an [Error] response carrying the CLI exit-code family. *)
val handle : t -> Protocol.command -> Protocol.response

(** The [STATS] payload: one [key value] per line — served/error
    counters by exit family, admission rejects, connection drops, and
    both caches' hit/miss/eviction counters. *)
val stats_text : t -> string

(** [serve_connection t ic oc] — read commands until [QUIT], EOF or a
    (possibly injected) connection fault, answering each on [oc].
    Never raises; returns when the connection is done. *)
val serve_connection : t -> in_channel -> out_channel -> unit

(** [serve_unix t ~path ~stop ()] — bind a Unix-domain socket at
    [path] (replacing any stale socket file), accept in a loop until
    [stop ()] becomes true, and serve each connection on its own
    thread. Installs [Signal_ignore] for SIGPIPE so vanishing clients
    surface as [EPIPE] and are handled, not fatal. *)
val serve_unix : t -> path:string -> stop:(unit -> bool) -> unit -> unit
