module Governor = Xq_governor.Governor

type entry = {
  e_node : Xq_xdm.Node.t;
  e_mtime : float;
  e_size : int;
  e_ino : int;
  e_bytes : int;
  mutable e_gen : int;
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  cap_bytes : int;
  account : Governor.t option;
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable resident : int;
}

let create ?(capacity_bytes = 256 * 1024 * 1024) ?account () =
  if capacity_bytes < 1 then
    invalid_arg "Doc_store.create: capacity_bytes must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 16;
    cap_bytes = capacity_bytes;
    account;
    gen = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    resident = 0;
  }

(* An XDM tree costs a small multiple of the serialized bytes (records
   per node, per-string headers); ×4 plus a floor is deterministic and
   close enough for an admission gauge. *)
let estimate_bytes ~size = (4 * size) + 512

let charge t n =
  t.resident <- t.resident + n;
  match t.account with Some g -> Governor.charge_on g n | None -> ()

let uncharge t n =
  t.resident <- t.resident - n;
  match t.account with Some g -> Governor.uncharge_on g n | None -> ()

let touch t e =
  t.gen <- t.gen + 1;
  e.e_gen <- t.gen

let evict_lru ~keep t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        if k = keep then acc
        else
          match acc with
          | Some (_, best) when best.e_gen <= e.e_gen -> acc
          | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> false
  | Some (k, e) ->
    Hashtbl.remove t.table k;
    uncharge t e.e_bytes;
    t.evictions <- t.evictions + 1;
    true

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Cache identity is (mtime, size, inode): mtime alone misses
   same-second rewrites on coarse filesystems, mtime+size misses a
   rename-swap that preserves both (mv of a same-length variant keeps
   the old mtime) — the inode catches the swap, the pair catches
   in-place rewrites. *)
let stat path =
  let st = Unix.stat path in
  (st.Unix.st_mtime, st.Unix.st_size, st.Unix.st_ino)

let fresh e (mtime, size, ino) =
  e.e_mtime = mtime && e.e_size = size && e.e_ino = ino

let load t path =
  let st0 =
    try stat path
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  let restat () = try Some (stat path) with Unix.Unix_error _ -> None in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table path with
        | None ->
          t.misses <- t.misses + 1;
          None
        | Some e -> begin
          (* revalidate against the file's identity *now*, under the
             lock — the pre-lock stat can predate a concurrent swap of
             the path, and serving off it would pin the stale tree *)
          match restat () with
          | Some st when fresh e st ->
            t.hits <- t.hits + 1;
            touch t e;
            Some e.e_node
          | _ ->
            (* the file changed underneath us: drop the stale tree now
               so a parse failure of the new content leaves nothing
               behind *)
            Hashtbl.remove t.table path;
            uncharge t e.e_bytes;
            t.invalidations <- t.invalidations + 1;
            t.misses <- t.misses + 1;
            None
        end)
  in
  match cached with
  | Some node -> node
  | None ->
    (* parse outside the lock: concurrent first loads of one path may
       both parse; the first insert wins and the loser's tree is
       dropped, trading a little duplicate work for no lock-held IO *)
    let node = Xq_xml.Xml_parse.parse_file path in
    locked t (fun () ->
        match Hashtbl.find_opt t.table path with
        | Some e when fresh e st0 ->
          touch t e;
          e.e_node
        | other ->
          (match other with
           | Some e ->
             Hashtbl.remove t.table path;
             uncharge t e.e_bytes
           | None -> ());
          let mtime, size, ino = st0 in
          let e =
            {
              e_node = node;
              e_mtime = mtime;
              e_size = size;
              e_ino = ino;
              e_bytes = estimate_bytes ~size;
              e_gen = 0;
            }
          in
          touch t e;
          Hashtbl.add t.table path e;
          charge t e.e_bytes;
          (* the newest entry is exempt: a single oversize document is
             still served resident rather than thrashing *)
          while t.resident > t.cap_bytes && evict_lru ~keep:path t do
            ()
          done;
          node)

let clear t =
  locked t (fun () ->
      Hashtbl.iter (fun _ e -> uncharge t e.e_bytes) t.table;
      Hashtbl.reset t.table)

type stats = {
  d_hits : int;
  d_misses : int;
  d_evictions : int;
  d_invalidations : int;
  d_entries : int;
  d_resident_bytes : int;
}

let stats t =
  locked t (fun () ->
      {
        d_hits = t.hits;
        d_misses = t.misses;
        d_evictions = t.evictions;
        d_invalidations = t.invalidations;
        d_entries = Hashtbl.length t.table;
        d_resident_bytes = t.resident;
      })
