(** LRU cache of compiled query plans for the query server.

    Entries are keyed on {!Xq_pipeline.Pipeline.cache_key} — query text
    × strategy × rewrite/index flags × the [XQ_GROUP_STRATEGY]
    environment default — so two requests share a plan exactly when
    they would compile to the same thing. Capacity is a bounded entry
    count with least-recently-used eviction; resident bytes (an
    estimate — the AST is roughly proportional to the source) are
    charged against an optional accounting governor so the server's
    admission gauge sees them. All operations are thread-safe. *)

type t

(** [create ?capacity ?account ()] — [capacity] is the maximum entry
    count (default 64, must be ≥ 1); [account] is the governor charged
    with resident bytes via {!Xq_governor.Governor.charge_on} (never
    installed, never trips). *)
val create : ?capacity:int -> ?account:Xq_governor.Governor.t -> unit -> t

val capacity : t -> int

(** [find_or_add t key compile] returns the cached plan for [key],
    bumping its recency, or runs [compile ()] (outside the lock) and
    caches the result. A compile failure propagates and caches
    nothing — it still counts as a miss. If two threads miss on the
    same key concurrently, the first insertion wins and both callers
    get the shared plan. *)
val find_or_add :
  t -> string -> (unit -> Xq_pipeline.Pipeline.compiled) ->
  Xq_pipeline.Pipeline.compiled

(** [find t key] — lookup without inserting; bumps recency on hit and
    counts a hit/miss. *)
val find : t -> string -> Xq_pipeline.Pipeline.compiled option

(** Evict everything (uncharging the account). Counters survive. *)
val clear : t -> unit

type stats = {
  p_hits : int;
  p_misses : int;
  p_evictions : int;
  p_entries : int;
  p_bytes : int;  (** resident-byte estimate currently charged *)
}

val stats : t -> stats
