(** The query server's wire protocol.

    A deliberately boring length-prefixed text protocol, equally usable
    over a Unix socket or a pipe pair ([--once] mode). A request is a
    block of header lines terminated by [RUN]:

    {v
    QUERY <n>\n<n bytes of query text>\n
    DOC <path>\n          | DOCINLINE <n>\n<n bytes of XML>\n
    STRATEGY hash|sort|auto\n
    PARALLEL <k>\n    TIMEOUT <ms>\n    MAX-GROUPS <n>\n
    MAX-MEM <mb>\n    SPILL-AT <mb>\n
    REWRITE\n    INDEX\n    INDENT\n
    RUN\n
    v}

    plus the standalone commands [STATS\n], [PING\n] and [QUIT\n].
    Every variable-length field carries its byte count up front, so
    query text and documents need no quoting and embedded newlines are
    fine. Responses are:

    {v
    OK <len>\n<len bytes of payload>\n
    ERR <CODE> <exit> <len>\n<len bytes of message>\n
    v}

    where [<CODE>] is an [Xerror] code (e.g. [XQENG0007]) or one of
    the transport codes [USAGE], [XMLPARSE], [IOERR], [INTERNAL], and
    [<exit>] is the CLI exit-code family the error belongs to (1
    usage, 2 static, 3 dynamic, 4 resource) — the server's taxonomy is
    the CLI's. *)

type doc_source = Doc_none | Doc_path of string | Doc_inline of string

type run_request = {
  rq_source : string;
  rq_doc : doc_source;
  rq_knobs : Xq_pipeline.Pipeline.knobs;
  rq_indent : bool;
}

type command = Run of run_request | Stats | Ping | Quit

type response = Payload of string | Error of { code : string; exit : int; message : string }

(** Malformed request framing (bad header, bad length, bad knob
    value). The server answers [ERR USAGE 1 …] and keeps the
    connection. *)
exception Protocol_error of string

(** [read_command ic] — [None] on clean EOF at a command boundary.
    Raises {!Protocol_error} on a malformed request and [End_of_file]
    on EOF mid-frame. *)
val read_command : in_channel -> command option

val write_command : out_channel -> command -> unit

(** [write_response oc r] writes and flushes one framed response. *)
val write_response : out_channel -> response -> unit

val read_response : in_channel -> response
