(** The query server's wire protocol.

    A deliberately boring length-prefixed text protocol, equally usable
    over a Unix socket or a pipe pair ([--once] mode). A request is a
    block of header lines terminated by [RUN]:

    {v
    QUERY <n>\n<n bytes of query text>\n
    DOC <path>\n          | DOCINLINE <n>\n<n bytes of XML>\n
    STRATEGY hash|sort|auto\n
    PARALLEL <k>\n    TIMEOUT <ms>\n    MAX-GROUPS <n>\n
    MAX-MEM <mb>\n    SPILL-AT <mb>\n
    REWRITE\n    INDEX\n    INDENT\n
    RUN\n
    v}

    plus the standalone commands [STATS\n], [PING\n] and [QUIT\n].
    Every variable-length field carries its byte count up front, so
    query text and documents need no quoting and embedded newlines are
    fine. Responses are:

    {v
    OK <len>\n<len bytes of payload>\n
    ERR <CODE> <exit> <len> [RETRY-AFTER-MS=<ms>]\n<len bytes of message>\n
    v}

    where [<CODE>] is an [Xerror] code (e.g. [XQENG0007]) or one of
    the transport codes [USAGE], [XMLPARSE], [IOERR], [INTERNAL], and
    [<exit>] is the CLI exit-code family the error belongs to (1
    usage, 2 static, 3 dynamic, 4 resource) — the server's taxonomy is
    the CLI's. The optional [RETRY-AFTER-MS=<ms>] trailer on an [ERR]
    line is the server's backoff hint: it rides admission rejections
    ([XQENG0007]) and tells a retrying client how long the server
    expects the refusal to last (a drain-mode hint of the remaining
    drain window, a load hint otherwise).

    Counted fields are bounded by [max_field_bytes] on the reading
    side: a length past the cap is a {!Protocol_error} (answered
    [USAGE]) {e before} any allocation, so a hostile
    [QUERY 999999999999] header cannot force a giant
    [really_input_string]. *)

type doc_source = Doc_none | Doc_path of string | Doc_inline of string

type run_request = {
  rq_source : string;
  rq_doc : doc_source;
  rq_knobs : Xq_pipeline.Pipeline.knobs;
  rq_indent : bool;
}

type command = Run of run_request | Stats | Ping | Quit

type response =
  | Payload of string
  | Error of {
      code : string;
      exit : int;
      message : string;
      retry_after_ms : int option;
          (** backoff hint for retryable refusals (admission, drain) *)
    }

(** Malformed request framing (bad header, bad length, overlong
    counted field, bad knob value). The server answers [ERR USAGE 1 …]
    and keeps the connection. *)
exception Protocol_error of string

(** [read_command ic] — [None] on clean EOF at a command boundary.
    Raises {!Protocol_error} on a malformed request (including any
    counted field past [max_field_bytes], checked before allocating)
    and [End_of_file] on EOF mid-frame. *)
val read_command : ?max_field_bytes:int -> in_channel -> command option

val write_command : out_channel -> command -> unit

(** [write_response oc r] writes and flushes one framed response. *)
val write_response : out_channel -> response -> unit

(** [read_response ic] bounds the payload frame by [max_field_bytes]
    like {!read_command} does requests. *)
val read_response : ?max_field_bytes:int -> in_channel -> response
