module Governor = Xq_governor.Governor
module Pipeline = Xq_pipeline.Pipeline
module Xerror = Xq_xdm.Xerror

type config = {
  c_plan_capacity : int;
  c_doc_capacity_bytes : int;
  c_max_concurrent : int;
  c_admission_watermark_mb : int option;
  c_knobs : Pipeline.knobs;
}

let default_config =
  {
    c_plan_capacity = 64;
    c_doc_capacity_bytes = 256 * 1024 * 1024;
    c_max_concurrent = 8;
    c_admission_watermark_mb = Some 1024;
    c_knobs = Pipeline.default_knobs;
  }

type counters = {
  mutable n_ok : int;
  mutable n_err_usage : int;
  mutable n_err_static : int;
  mutable n_err_dynamic : int;
  mutable n_err_resource : int;
  mutable n_rejected : int;
  mutable n_conn_drops : int;
  mutable n_active : int;
}

type t = {
  cfg : config;
  house : Governor.t;
  plan_cache : Plan_cache.t;
  doc_store : Doc_store.t;
  lock : Mutex.t;  (* guards counters (admission decisions included) *)
  counters : counters;
  inline_lock : Mutex.t;  (* serializes the no-spare-domain fallback *)
}

let create ?(config = default_config) () =
  (* The house governor is a gauge, never installed: its watermark is
     the admission threshold, its charged bytes are the caches'
     resident estimates, and its Gc baseline is the freshly started
     server so heap growth counts too. No watermark = max_int keeps
     pressure_on constantly false. *)
  let house =
    Governor.create
      ?spill_watermark_bytes:
        (Option.map
           (fun mb -> mb * 1024 * 1024)
           config.c_admission_watermark_mb)
      ()
  in
  {
    cfg = config;
    house;
    plan_cache =
      Plan_cache.create ~capacity:config.c_plan_capacity ~account:house ();
    doc_store =
      Doc_store.create ~capacity_bytes:config.c_doc_capacity_bytes
        ~account:house ();
    lock = Mutex.create ();
    counters =
      {
        n_ok = 0;
        n_err_usage = 0;
        n_err_static = 0;
        n_err_dynamic = 0;
        n_err_resource = 0;
        n_rejected = 0;
        n_conn_drops = 0;
        n_active = 0;
      };
    inline_lock = Mutex.create ();
  }

let house t = t.house
let plans t = t.plan_cache
let docs t = t.doc_store

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let active t = locked t (fun () -> t.counters.n_active)

(* --- request knobs over server defaults -------------------------------- *)

let merge_knobs ~base ~req =
  let opt r b = match r with Some _ -> r | None -> b in
  Pipeline.
    {
      k_strategy = opt req.k_strategy base.k_strategy;
      k_parallel = opt req.k_parallel base.k_parallel;
      k_batch = opt req.k_batch base.k_batch;
      k_rewrite = req.k_rewrite || base.k_rewrite;
      k_use_index = req.k_use_index || base.k_use_index;
      k_timeout_ms = opt req.k_timeout_ms base.k_timeout_ms;
      k_max_groups = opt req.k_max_groups base.k_max_groups;
      k_max_mem_mb = opt req.k_max_mem_mb base.k_max_mem_mb;
      k_spill_at_mb = opt req.k_spill_at_mb base.k_spill_at_mb;
    }

(* --- error taxonomy ----------------------------------------------------- *)

(* The server's ERR responses carry the CLI's exit-code families so a
   client scripting against either front end sees one taxonomy. *)
let response_of_exn e : Protocol.response =
  match e with
  | Xerror.Error (code, msg) ->
    Protocol.Error
      {
        code = Xerror.code_to_string code;
        exit = Xerror.exit_code code;
        message = Xerror.to_message code msg;
      }
  | Protocol.Protocol_error m ->
    Protocol.Error { code = "USAGE"; exit = 1; message = m }
  | Sys_error m -> Protocol.Error { code = "IOERR"; exit = 3; message = m }
  | e -> begin
    match Xq_xml.Xml_parse.error_to_string e with
    | Some m -> Protocol.Error { code = "XMLPARSE"; exit = 3; message = m }
    | None ->
      Protocol.Error
        { code = "INTERNAL"; exit = 3; message = Printexc.to_string e }
  end

let count_response t (r : Protocol.response) =
  locked t (fun () ->
      let c = t.counters in
      match r with
      | Protocol.Payload _ -> c.n_ok <- c.n_ok + 1
      | Protocol.Error { exit; _ } -> begin
        match exit with
        | 1 -> c.n_err_usage <- c.n_err_usage + 1
        | 2 -> c.n_err_static <- c.n_err_static + 1
        | 4 -> c.n_err_resource <- c.n_err_resource + 1
        | _ -> c.n_err_dynamic <- c.n_err_dynamic + 1
      end)

(* --- admission ---------------------------------------------------------- *)

(* Admit-or-reject must be atomic with the active-count bump, or two
   racing requests both squeeze under the cap. *)
let try_admit t =
  locked t (fun () ->
      let c = t.counters in
      if c.n_active >= t.cfg.c_max_concurrent then begin
        c.n_rejected <- c.n_rejected + 1;
        Error
          (Printf.sprintf "server at concurrency cap (%d active)" c.n_active)
      end
      else if Governor.pressure_on t.house then begin
        c.n_rejected <- c.n_rejected + 1;
        Error
          (Printf.sprintf "server memory watermark hot (%d resident bytes)"
             (Governor.charged_on t.house))
      end
      else begin
        c.n_active <- c.n_active + 1;
        Ok ()
      end)

let release t = locked t (fun () -> t.counters.n_active <- t.counters.n_active - 1)

(* --- query execution ---------------------------------------------------- *)

let run_request t (rq : Protocol.run_request) =
  let knobs = merge_knobs ~base:t.cfg.c_knobs ~req:rq.rq_knobs in
  let key = Pipeline.cache_key ~knobs rq.rq_source in
  (* Everything below runs on the worker domain: compilation (so a
     parse error costs the client, not the accept loop), document
     loading (resident store for paths, per-query parse for inline
     XML) and evaluation under the query's own scoped governor. *)
  let work () =
    let compiled =
      Plan_cache.find_or_add t.plan_cache key (fun () ->
          Pipeline.compile ~rewrite:knobs.Pipeline.k_rewrite rq.rq_source)
    in
    let load_doc =
      match rq.rq_doc with
      | Protocol.Doc_none -> None
      | Protocol.Doc_path p -> Some (fun () -> Doc_store.load t.doc_store p)
      | Protocol.Doc_inline xml ->
        Some (fun () -> Xq_xml.Xml_parse.parse xml)
    in
    let report =
      Pipeline.run ~scope:`Domain ~knobs ~indent:rq.rq_indent ~compiled
        ?load_doc ()
    in
    (* match the CLI byte for byte: [xq run] prints the rendering with
       print_endline, so the payload carries the trailing newline *)
    report.Pipeline.r_output ^ "\n"
  in
  match Domain.spawn work with
  | domain -> Domain.join domain
  | exception _ ->
    (* no spare domain (the runtime caps them): run on this thread,
       serialized so two inline queries never share the calling
       domain's scoped-governor slot *)
    Mutex.lock t.inline_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.inline_lock) work

(* --- stats -------------------------------------------------------------- *)

let stats_text t =
  let c, active =
    locked t (fun () ->
        ( { t.counters with n_ok = t.counters.n_ok },
          t.counters.n_active ))
  in
  let p = Plan_cache.stats t.plan_cache in
  let d = Doc_store.stats t.doc_store in
  let b = Buffer.create 512 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s %d\n" k v) in
  line "active" active;
  line "served_ok" c.n_ok;
  line "err_usage" c.n_err_usage;
  line "err_static" c.n_err_static;
  line "err_dynamic" c.n_err_dynamic;
  line "err_resource" c.n_err_resource;
  line "admission_rejects" c.n_rejected;
  line "conn_drops" c.n_conn_drops;
  line "plan_hits" p.Plan_cache.p_hits;
  line "plan_misses" p.Plan_cache.p_misses;
  line "plan_evictions" p.Plan_cache.p_evictions;
  line "plan_entries" p.Plan_cache.p_entries;
  line "doc_hits" d.Doc_store.d_hits;
  line "doc_misses" d.Doc_store.d_misses;
  line "doc_evictions" d.Doc_store.d_evictions;
  line "doc_invalidations" d.Doc_store.d_invalidations;
  line "doc_entries" d.Doc_store.d_entries;
  line "resident_bytes" (Governor.charged_on t.house);
  (* batched-execution counters: dictionary size/interns are process-wide
     (the intern table is shared by all resident queries) *)
  line "dict_entries" (Xq_engine.Key.dict_size ());
  line "dict_interns" (Xq_engine.Key.intern_count ());
  line "batch_size" (Xq_par.Batch.size ());
  Buffer.contents b

(* --- command dispatch --------------------------------------------------- *)

let handle t (cmd : Protocol.command) : Protocol.response =
  match cmd with
  | Protocol.Ping -> Protocol.Payload "pong"
  | Protocol.Stats -> Protocol.Payload (stats_text t)
  | Protocol.Quit -> Protocol.Payload "bye"
  | Protocol.Run rq -> begin
    match try_admit t with
    | Error why ->
      let r =
        response_of_exn
          (Xerror.Error (Xerror.XQENG0007, "admission rejected: " ^ why))
      in
      count_response t r;
      r
    | Ok () ->
      let r =
        Fun.protect
          ~finally:(fun () -> release t)
          (fun () ->
            match run_request t rq with
            | payload -> Protocol.Payload payload
            | exception e -> response_of_exn e)
      in
      count_response t r;
      r
  end

(* --- connections -------------------------------------------------------- *)

exception Connection_lost of string

let note_drop t = locked t (fun () ->
    t.counters.n_conn_drops <- t.counters.n_conn_drops + 1)

(* The seeded connection-fault stream makes "client vanished here"
   deterministic: a drawn fault at a read or write boundary behaves
   exactly like the peer closing mid-exchange. *)
let conn_point what =
  match Governor.conn_fault () with
  | Some seed ->
    raise
      (Connection_lost (Printf.sprintf "injected connection fault at %s (seed %d)" what seed))
  | None -> ()

let serve_connection t ic oc =
  let rec loop () =
    conn_point "read";
    match Protocol.read_command ic with
    | None -> ()
    | exception (Protocol.Protocol_error _ as e) ->
      (* malformed framing: answer USAGE and keep the connection — each
         bad line costs one response, and EOF ends the loop *)
      let r = response_of_exn e in
      count_response t r;
      conn_point "write";
      Protocol.write_response oc r;
      loop ()
    | Some cmd -> begin
      let resp = handle t cmd in
      conn_point "write";
      Protocol.write_response oc resp;
      match cmd with Protocol.Quit -> () | _ -> loop ()
    end
  in
  try loop () with
  | Connection_lost _ | End_of_file -> note_drop t
  | Sys_error _ ->
    (* EPIPE from a vanished client (SIGPIPE is ignored) *)
    note_drop t

let serve_unix t ~path ~stop () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> ()
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      while not (stop ()) do
        (* poll the listener so [stop] is honoured within a beat even
           with no clients arriving *)
        match Unix.select [ sock ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ -> begin
          match Unix.accept sock with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () ->
                       (* both channels share [fd]: flush, then close
                          the descriptor exactly once — a second
                          close(2) could race a concurrent accept that
                          reused the number and kill its connection *)
                       (try flush oc with Sys_error _ -> ());
                       try Unix.close fd with Unix.Unix_error _ -> ())
                     (fun () -> serve_connection t ic oc))
                 ())
        end
      done)
