module Governor = Xq_governor.Governor
module Pipeline = Xq_pipeline.Pipeline
module Xerror = Xq_xdm.Xerror

type config = {
  c_plan_capacity : int;
  c_doc_capacity_bytes : int;
  c_max_concurrent : int;
  c_admission_watermark_mb : int option;
  c_max_request_bytes : int;
  c_max_connections : int;
  c_drain_timeout_ms : int;
  c_retry_after_ms : int;
  c_knobs : Pipeline.knobs;
}

let default_config =
  {
    c_plan_capacity = 64;
    c_doc_capacity_bytes = 256 * 1024 * 1024;
    c_max_concurrent = 8;
    c_admission_watermark_mb = Some 1024;
    c_max_request_bytes = 8 * 1024 * 1024;
    c_max_connections = 64;
    c_drain_timeout_ms = 5000;
    c_retry_after_ms = 200;
    c_knobs = Pipeline.default_knobs;
  }

type counters = {
  mutable n_ok : int;
  mutable n_err_usage : int;
  mutable n_err_static : int;
  mutable n_err_dynamic : int;
  mutable n_err_resource : int;
  mutable n_rejected : int;
  mutable n_conn_drops : int;
  mutable n_active : int;
  mutable n_conn_active : int;
  mutable n_conn_rejected : int;
  mutable n_drain_cancelled : int;
}

type t = {
  cfg : config;
  house : Governor.t;
  plan_cache : Plan_cache.t;
  doc_store : Doc_store.t;
  lock : Mutex.t;  (* guards counters (admission decisions included)
                      and the in-flight governor table *)
  counters : counters;
  inline_lock : Mutex.t;  (* serializes the no-spare-domain fallback *)
  draining : bool Atomic.t;  (* flipped from signal handlers: Atomic.set
                                is async-signal-safe, Mutex.lock is not *)
  mutable inflight : (int * Governor.t) list;
  mutable next_query_id : int;
}

let create ?(config = default_config) () =
  (* The house governor is a gauge, never installed: its watermark is
     the admission threshold, its charged bytes are the caches'
     resident estimates, and its Gc baseline is the freshly started
     server so heap growth counts too. No watermark = max_int keeps
     pressure_on constantly false. *)
  let house =
    Governor.create
      ?spill_watermark_bytes:
        (Option.map
           (fun mb -> mb * 1024 * 1024)
           config.c_admission_watermark_mb)
      ()
  in
  {
    cfg = config;
    house;
    plan_cache =
      Plan_cache.create ~capacity:config.c_plan_capacity ~account:house ();
    doc_store =
      Doc_store.create ~capacity_bytes:config.c_doc_capacity_bytes
        ~account:house ();
    lock = Mutex.create ();
    counters =
      {
        n_ok = 0;
        n_err_usage = 0;
        n_err_static = 0;
        n_err_dynamic = 0;
        n_err_resource = 0;
        n_rejected = 0;
        n_conn_drops = 0;
        n_active = 0;
        n_conn_active = 0;
        n_conn_rejected = 0;
        n_drain_cancelled = 0;
      };
    inline_lock = Mutex.create ();
    draining = Atomic.make false;
    inflight = [];
    next_query_id = 0;
  }

let house t = t.house
let plans t = t.plan_cache
let docs t = t.doc_store

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let active t = locked t (fun () -> t.counters.n_active)

(* --- drain state --------------------------------------------------------- *)

let request_drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

(* The in-flight table: every executing query's scoped governor, so the
   drain deadline can reach all of them with cooperative cancellation. *)
let register_inflight t g =
  locked t (fun () ->
      let id = t.next_query_id in
      t.next_query_id <- id + 1;
      t.inflight <- (id, g) :: t.inflight;
      id)

let unregister_inflight t id =
  locked t (fun () ->
      t.inflight <- List.filter (fun (i, _) -> i <> id) t.inflight)

(* Cancel every in-flight query (each raises XQENG0004 within one
   governor stride and answers its client with a clean ERR). Returns
   how many were cancelled. *)
let cancel_inflight t =
  let victims = locked t (fun () -> t.inflight) in
  List.iter (fun (_, g) -> Governor.cancel g) victims;
  let n = List.length victims in
  if n > 0 then
    locked t (fun () ->
        t.counters.n_drain_cancelled <- t.counters.n_drain_cancelled + n);
  n

(* --- request knobs over server defaults -------------------------------- *)

let merge_knobs ~base ~req =
  let opt r b = match r with Some _ -> r | None -> b in
  Pipeline.
    {
      k_strategy = opt req.k_strategy base.k_strategy;
      k_parallel = opt req.k_parallel base.k_parallel;
      k_batch = opt req.k_batch base.k_batch;
      k_rewrite = req.k_rewrite || base.k_rewrite;
      k_use_index = req.k_use_index || base.k_use_index;
      k_timeout_ms = opt req.k_timeout_ms base.k_timeout_ms;
      k_max_groups = opt req.k_max_groups base.k_max_groups;
      k_max_mem_mb = opt req.k_max_mem_mb base.k_max_mem_mb;
      k_spill_at_mb = opt req.k_spill_at_mb base.k_spill_at_mb;
      k_stream = opt req.k_stream base.k_stream;
    }

(* --- error taxonomy ----------------------------------------------------- *)

(* The server's ERR responses carry the CLI's exit-code families so a
   client scripting against either front end sees one taxonomy. *)
let response_of_exn e : Protocol.response =
  match e with
  | Xerror.Error (code, msg) ->
    Protocol.Error
      {
        code = Xerror.code_to_string code;
        exit = Xerror.exit_code code;
        message = Xerror.to_message code msg;
        retry_after_ms = None;
      }
  | Protocol.Protocol_error m ->
    Protocol.Error { code = "USAGE"; exit = 1; message = m; retry_after_ms = None }
  | Sys_error m ->
    Protocol.Error { code = "IOERR"; exit = 3; message = m; retry_after_ms = None }
  | e -> begin
    match Xq_xml.Xml_parse.error_to_string e with
    | Some m ->
      Protocol.Error
        { code = "XMLPARSE"; exit = 3; message = m; retry_after_ms = None }
    | None ->
      Protocol.Error
        {
          code = "INTERNAL";
          exit = 3;
          message = Printexc.to_string e;
          retry_after_ms = None;
        }
  end

let count_response t (r : Protocol.response) =
  locked t (fun () ->
      let c = t.counters in
      match r with
      | Protocol.Payload _ -> c.n_ok <- c.n_ok + 1
      | Protocol.Error { exit; _ } -> begin
        match exit with
        | 1 -> c.n_err_usage <- c.n_err_usage + 1
        | 2 -> c.n_err_static <- c.n_err_static + 1
        | 4 -> c.n_err_resource <- c.n_err_resource + 1
        | _ -> c.n_err_dynamic <- c.n_err_dynamic + 1
      end)

(* --- admission ---------------------------------------------------------- *)

(* An XQENG0007 refusal carrying the backoff hint a retrying client
   should honour. *)
let rejection ~why ~retry_after_ms =
  let e = Xerror.Error (Xerror.XQENG0007, "admission rejected: " ^ why) in
  match response_of_exn e with
  | Protocol.Error { code; exit; message; _ } ->
    Protocol.Error
      { code; exit; message; retry_after_ms = Some retry_after_ms }
  | Protocol.Payload _ -> assert false

(* Admit-or-reject must be atomic with the active-count bump, or two
   racing requests both squeeze under the cap. The draining check comes
   first: a draining server refuses everything, hinting clients to come
   back once the drain window has passed (by then either this process
   is gone and a supervisor brought a fresh one up, or the retry fails
   to connect — also retryable). *)
let try_admit t =
  if Atomic.get t.draining then begin
    locked t (fun () -> t.counters.n_rejected <- t.counters.n_rejected + 1);
    Error ("server draining", t.cfg.c_drain_timeout_ms)
  end
  else
    locked t (fun () ->
        let c = t.counters in
        if c.n_active >= t.cfg.c_max_concurrent then begin
          c.n_rejected <- c.n_rejected + 1;
          Error
            ( Printf.sprintf "server at concurrency cap (%d active)" c.n_active,
              t.cfg.c_retry_after_ms )
        end
        else if Governor.pressure_on t.house then begin
          c.n_rejected <- c.n_rejected + 1;
          Error
            ( Printf.sprintf "server memory watermark hot (%d resident bytes)"
                (Governor.charged_on t.house),
              t.cfg.c_retry_after_ms )
        end
        else begin
          c.n_active <- c.n_active + 1;
          Ok ()
        end)

let release t = locked t (fun () -> t.counters.n_active <- t.counters.n_active - 1)

(* --- injected worker crashes --------------------------------------------- *)

(* A drawn crash fault kills the serving process abruptly — SIGKILL to
   self, no cleanup, no flushes — exactly what a segfault or OOM kill
   would look like from outside. Only survivable under the supervisor;
   the stream is double-gated in [Governor] so it never fires unless
   the daemon explicitly armed it. *)
let crash_point what =
  match Governor.crash_fault () with
  | Some seed ->
    Printf.eprintf "xq-server: injected worker crash at %s (seed %d)\n%!" what
      seed;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | None -> ()

(* --- query execution ---------------------------------------------------- *)

let run_request t (rq : Protocol.run_request) =
  let knobs = merge_knobs ~base:t.cfg.c_knobs ~req:rq.rq_knobs in
  let key = Pipeline.cache_key ~knobs rq.rq_source in
  (* Everything below runs on the worker domain: compilation (so a
     parse error costs the client, not the accept loop), document
     loading (resident store for paths, per-query parse for inline
     XML) and evaluation under the query's own scoped governor. *)
  let work () =
    crash_point "query start";
    let compiled =
      Plan_cache.find_or_add t.plan_cache key (fun () ->
          Pipeline.compile ~rewrite:knobs.Pipeline.k_rewrite rq.rq_source)
    in
    (* A STREAM request bypasses the resident document store: the point
       of streaming a one-shot document is precisely not to materialize
       (or cache) it. Without the explicit header, documents keep going
       through the store / per-query parse as before. *)
    let streaming = rq.rq_knobs.Pipeline.k_stream = Some true in
    let load_doc, stream_source =
      match rq.rq_doc with
      | Protocol.Doc_none -> (None, None)
      | Protocol.Doc_path p ->
        if streaming then (None, Some (`File p))
        else (Some (fun () -> Doc_store.load t.doc_store p), None)
      | Protocol.Doc_inline xml ->
        if streaming then (None, Some (`String xml))
        else (Some (fun () -> Xq_xml.Xml_parse.parse xml), None)
    in
    (* every server query is governed (unlimited if no knob set a
       limit) and registered while it runs, so a drain deadline can
       cancel it cooperatively *)
    let slot = ref None in
    Fun.protect
      ~finally:(fun () ->
        match !slot with Some id -> unregister_inflight t id | None -> ())
      (fun () ->
        let report =
          Pipeline.run ~scope:`Domain ~force_governor:true
            ~on_governor:(fun g -> slot := Some (register_inflight t g))
            ~knobs ~indent:rq.rq_indent ~compiled ?load_doc ?stream_source ()
        in
        crash_point "before response";
        (* match the CLI byte for byte: [xq run] prints the rendering
           with print_endline, so the payload carries the trailing
           newline *)
        report.Pipeline.r_output ^ "\n")
  in
  match Domain.spawn work with
  | domain -> Domain.join domain
  | exception _ ->
    (* no spare domain (the runtime caps them): run on this thread,
       serialized so two inline queries never share the calling
       domain's scoped-governor slot *)
    Mutex.lock t.inline_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.inline_lock) work

(* --- stats -------------------------------------------------------------- *)

let stats_text t =
  let c, active =
    locked t (fun () ->
        ( { t.counters with n_ok = t.counters.n_ok },
          t.counters.n_active ))
  in
  let p = Plan_cache.stats t.plan_cache in
  let d = Doc_store.stats t.doc_store in
  let b = Buffer.create 512 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s %d\n" k v) in
  line "pid" (Unix.getpid ());
  line "draining" (if Atomic.get t.draining then 1 else 0);
  line "active" active;
  line "conn_active" c.n_conn_active;
  line "conn_rejected" c.n_conn_rejected;
  line "served_ok" c.n_ok;
  line "err_usage" c.n_err_usage;
  line "err_static" c.n_err_static;
  line "err_dynamic" c.n_err_dynamic;
  line "err_resource" c.n_err_resource;
  line "admission_rejects" c.n_rejected;
  line "drain_cancelled" c.n_drain_cancelled;
  line "conn_drops" c.n_conn_drops;
  line "plan_hits" p.Plan_cache.p_hits;
  line "plan_misses" p.Plan_cache.p_misses;
  line "plan_evictions" p.Plan_cache.p_evictions;
  line "plan_entries" p.Plan_cache.p_entries;
  line "doc_hits" d.Doc_store.d_hits;
  line "doc_misses" d.Doc_store.d_misses;
  line "doc_evictions" d.Doc_store.d_evictions;
  line "doc_invalidations" d.Doc_store.d_invalidations;
  line "doc_entries" d.Doc_store.d_entries;
  line "resident_bytes" (Governor.charged_on t.house);
  (* batched-execution counters: dictionary size/interns are process-wide
     (the intern table is shared by all resident queries) *)
  line "dict_entries" (Xq_engine.Key.dict_size ());
  line "dict_interns" (Xq_engine.Key.intern_count ());
  line "batch_size" (Xq_par.Batch.size ());
  Buffer.contents b

(* --- command dispatch --------------------------------------------------- *)

let handle t (cmd : Protocol.command) : Protocol.response =
  match cmd with
  | Protocol.Ping -> Protocol.Payload "pong"
  | Protocol.Stats -> Protocol.Payload (stats_text t)
  | Protocol.Quit -> Protocol.Payload "bye"
  | Protocol.Run rq -> begin
    match try_admit t with
    | Error (why, retry_after_ms) ->
      let r = rejection ~why ~retry_after_ms in
      count_response t r;
      r
    | Ok () ->
      let r =
        Fun.protect
          ~finally:(fun () -> release t)
          (fun () ->
            match run_request t rq with
            | payload -> Protocol.Payload payload
            | exception e -> response_of_exn e)
      in
      count_response t r;
      r
  end

(* --- connections -------------------------------------------------------- *)

exception Connection_lost of string
exception Socket_in_use of string

let note_drop t = locked t (fun () ->
    t.counters.n_conn_drops <- t.counters.n_conn_drops + 1)

(* The seeded connection-fault stream makes "client vanished here"
   deterministic: a drawn fault at a read or write boundary behaves
   exactly like the peer closing mid-exchange. *)
let conn_point what =
  match Governor.conn_fault () with
  | Some seed ->
    raise
      (Connection_lost (Printf.sprintf "injected connection fault at %s (seed %d)" what seed))
  | None -> ()

let serve_connection t ic oc =
  let rec loop () =
    conn_point "read";
    match Protocol.read_command ~max_field_bytes:t.cfg.c_max_request_bytes ic with
    | None -> ()
    | exception (Protocol.Protocol_error _ as e) ->
      (* malformed framing: answer USAGE and keep the connection — each
         bad line costs one response, and EOF ends the loop *)
      let r = response_of_exn e in
      count_response t r;
      conn_point "write";
      Protocol.write_response oc r;
      loop ()
    | Some cmd -> begin
      let resp = handle t cmd in
      conn_point "write";
      Protocol.write_response oc resp;
      match cmd with Protocol.Quit -> () | _ -> loop ()
    end
  in
  try loop () with
  | Connection_lost _ | End_of_file -> note_drop t
  | Sys_error _ ->
    (* EPIPE from a vanished client (SIGPIPE is ignored) *)
    note_drop t

(* --- the accept loop ----------------------------------------------------- *)

(* Signals interrupt slow syscalls: any OCaml-handled signal landing
   while the accept loop sits in select(2) or accept(2) surfaces as
   EINTR, which is routine, not an error — retry and let the loop
   re-check its stop/drain flags. (Before this wrapper existed, a
   single stray SIGUSR1 crashed the daemon out of its accept loop.) *)
let select_intr readers timeout =
  match Unix.select readers [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* Is a live server already answering on [path]? Distinguishes a stale
   socket file (previous daemon died without unlinking — safe to
   replace) from a running daemon whose socket we must not steal. *)
let live_server_at path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> None
  | sock ->
    let finish r =
      (try Unix.close sock with Unix.Unix_error _ -> ());
      r
    in
    (try
       (* bounded probe: a wedged server that accepts but never answers
          should not hang startup forever *)
       Unix.setsockopt_float sock Unix.SO_RCVTIMEO 2.0;
       Unix.setsockopt_float sock Unix.SO_SNDTIMEO 2.0;
       Unix.connect sock (Unix.ADDR_UNIX path);
       let ic = Unix.in_channel_of_descr sock in
       let oc = Unix.out_channel_of_descr sock in
       Protocol.write_command oc Protocol.Stats;
       match Protocol.read_response ic with
       | Protocol.Payload stats ->
         let pid =
           String.split_on_char '\n' stats
           |> List.find_map (fun line ->
                  match String.split_on_char ' ' line with
                  | [ "pid"; v ] -> int_of_string_opt v
                  | _ -> None)
         in
         finish (Some pid)
       | Protocol.Error _ -> finish (Some None)
     with
     | Unix.Unix_error _ | Sys_error _ | End_of_file
     | Protocol.Protocol_error _ ->
       finish None)

let prepare_socket_path path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> begin
    match live_server_at path with
    | Some pid ->
      raise
        (Socket_in_use
           (Printf.sprintf
              "a live xq-server%s is already serving on %s; refusing to \
               steal its socket"
              (match pid with
               | Some p -> Printf.sprintf " (pid %d)" p
               | None -> "")
              path))
    | None -> Unix.unlink path  (* stale: previous daemon died uncleanly *)
  end
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Per-connection bookkeeping for the thread cap. Admission control
   bounds executing queries; this bounds parked file descriptors and
   their threads — idle connections used to pile up unbounded. *)
let try_conn_admit t =
  locked t (fun () ->
      let c = t.counters in
      if c.n_conn_active >= t.cfg.c_max_connections then begin
        c.n_conn_rejected <- c.n_conn_rejected + 1;
        false
      end
      else begin
        c.n_conn_active <- c.n_conn_active + 1;
        true
      end)

let conn_release t =
  locked t (fun () ->
      t.counters.n_conn_active <- t.counters.n_conn_active - 1)

type drain_report = {
  dr_inflight_at_drain : int;
  dr_cancelled : int;
  dr_elapsed_ms : int;
}

(* Wait for in-flight queries to finish, up to the drain window; past
   it, cancel the stragglers' governors and wait (briefly) for the
   cancellations to land so worker domains are joined before exit. *)
let drain t =
  let deadline =
    Unix.gettimeofday () +. (float_of_int t.cfg.c_drain_timeout_ms /. 1000.0)
  in
  let started = Unix.gettimeofday () in
  let inflight_at_drain = active t in
  let rec wait_until until =
    if active t > 0 && Unix.gettimeofday () < until then begin
      Thread.delay 0.01;
      wait_until until
    end
  in
  wait_until deadline;
  let cancelled = if active t > 0 then cancel_inflight t else 0 in
  if cancelled > 0 then
    (* a cancelled query trips within one governor stride; a second,
       fixed grace window lets the trip propagate and the ERR flush *)
    wait_until (Unix.gettimeofday () +. 2.0);
  {
    dr_inflight_at_drain = inflight_at_drain;
    dr_cancelled = cancelled;
    dr_elapsed_ms =
      int_of_float ((Unix.gettimeofday () -. started) *. 1000.0);
  }

let serve_unix t ~path ~stop () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  prepare_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let listener_open = ref true in
  let close_listener () =
    if !listener_open then begin
      listener_open := false;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
    end
  in
  Fun.protect ~finally:close_listener (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      while not (stop ()) && not (Atomic.get t.draining) do
        (* poll the listener so [stop] and the drain flag are honoured
           within a beat even with no clients arriving *)
        match select_intr [ sock ] 0.2 with
        | [] -> ()
        | _ -> begin
          match Unix.accept sock with
          | exception Unix.Unix_error _ ->
            (* EINTR (a handled signal landed here instead of in
               select), ECONNABORTED, fd pressure: all retryable *)
            ()
          | fd, _ ->
            if not (try_conn_admit t) then begin
              (* over the connection cap: one refusal frame, then
                 close — the client's retry layer backs off *)
              let oc = Unix.out_channel_of_descr fd in
              (try
                 Protocol.write_response oc
                   (rejection ~why:"server at connection cap"
                      ~retry_after_ms:t.cfg.c_retry_after_ms)
               with Sys_error _ -> ());
              (try flush oc with Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else begin
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () ->
                         conn_release t;
                         (* both channels share [fd]: flush, then close
                            the descriptor exactly once — a second
                            close(2) could race a concurrent accept that
                            reused the number and kill its connection *)
                         (try flush oc with Sys_error _ -> ());
                         try Unix.close fd with Unix.Unix_error _ -> ())
                       (fun () -> serve_connection t ic oc))
                   ())
            end
        end
      done;
      (* drain: stop accepting at once — connects from here on are
         refused by the kernel, which the client retry layer treats
         like any other connection failure — then see the in-flight
         queries out *)
      close_listener ();
      drain t)
