(** Naive reference evaluator — the differential-fuzzing oracle.

    A deliberately simple interpreter for the FLWOR/grouping subset the
    query generator ({!Xq_qgen.Qgen}) emits, implementing the paper's
    declarative semantics as literally as possible:

    - grouping is a nested loop that compares each tuple's key list
      against every existing group's representative with pairwise
      [fn:deep-equal], exactly as Section 3.3 specifies — no canonical
      keys, no hashing, no sort, no governor, no spilling;
    - sorting is [List.stable_sort] over atomized keys;
    - [nest] concatenates member tuples in input order or per the
      nest's own [order by] (Section 3.4.1);
    - [return at $rank] numbers the post-grouping tuple stream 1..n
      (Section 4).

    It depends only on the data model ([Xq_xdm]) and the AST
    ([Xq_lang]) — never on the engine, the plan algebra, the canonical
    key machinery or the spill path under test. Anything outside the
    generated subset (windows, user functions, prologs, the less common
    builtins) raises {!Unsupported}: the fuzzer treats that as a
    harness bug, not a divergence.

    Dynamic errors raise [Xerror.Error] with the same W3C codes the
    engine uses, so the differential harness can also compare failure
    behaviour. *)

open Xq_xdm

(** Raised on constructs outside the oracle's subset. *)
exception Unsupported of string

(** Evaluate a query against a context node. *)
val eval_query : context_node:Node.t -> Xq_lang.Ast.query -> Xseq.t

(** Parse-and-evaluate convenience used by corpus replay. *)
val run : context_node:Node.t -> string -> Xseq.t

(** {1 The naive grouping partition}

    Exposed so [test/test_key.ml] can check that the engine's
    canonical-key partition agrees with literal pairwise deep-equal. *)

type 'a group = {
  keys : Xseq.t list;  (** the first member's key list *)
  members : 'a list;   (** in input order *)
}

(** Nested-loop grouping by pairwise [Deep_equal.sequences] on each key;
    groups in first-occurrence order, members in input order. O(n·g). *)
val group_by_deep_equal :
  keys_of:('a -> Xseq.t list) -> 'a list -> 'a group list
