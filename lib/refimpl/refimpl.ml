(* The differential-fuzzing oracle: a naive, audit-by-eye interpreter
   for the generated FLWOR/grouping subset. Where the engine builds
   canonical keys, hashes, sorts, parallelizes or spills, this file
   does the obvious thing with lists and pairwise deep-equal. It
   deliberately shares nothing with lib/engine — only the data model
   (Xq_xdm) and the AST (Xq_lang). *)

open Xq_xdm
open Xq_lang

exception Unsupported of string

let unsupported what = raise (Unsupported what)

module Smap = Map.Make (String)

(* --- the naive grouping partition (Section 3.3, literally) ------------- *)

type 'a group = {
  keys : Xseq.t list;
  members : 'a list;
}

let key_lists_deep_equal a b =
  List.length a = List.length b && List.for_all2 Deep_equal.sequences a b

let group_by_deep_equal ~keys_of items =
  (* groups held in first-occurrence order; members appended in input
     order. Quadratic on purpose: every tuple is compared against every
     existing group's representative with pairwise deep-equal. *)
  let groups = ref [] in
  List.iter
    (fun item ->
      let keys = keys_of item in
      let rec place = function
        | [] -> groups := !groups @ [ { keys; members = [ item ] } ]
        | g :: rest ->
          if key_lists_deep_equal g.keys keys then begin
            let updated = { g with members = g.members @ [ item ] } in
            groups :=
              List.map (fun g' -> if g' == g then updated else g') !groups
          end
          else place rest
      in
      place !groups)
    items;
  !groups

(* --- dynamic context --------------------------------------------------- *)

type focus = { item : Item.t; pos : int; size : int }

type ctx = { vars : Xseq.t Smap.t; focus : focus option }

let lookup ctx v =
  match Smap.find_opt v ctx.vars with
  | Some value -> value
  | None -> Xerror.failf XPST0008 "undefined variable $%s" v

let focus_exn ctx =
  match ctx.focus with
  | Some f -> f
  | None -> Xerror.fail XPDY0002 "no context item"

(* --- scalar helpers (naive re-statements of the spec) ------------------ *)

let zero_or_one_atom seq =
  match Xseq.atomize seq with
  | [] -> None
  | [ a ] -> Some a
  | _ -> Xerror.fail XPTY0004 "expected at most one atomic value"

let string_of_seq seq =
  match seq with
  | [] -> ""
  | [ item ] -> Item.string_value item
  | _ -> Xerror.fail XPTY0004 "expected at most one item for a string"

(* Numeric promotion lattice: integer < decimal < double; untyped casts
   to double. *)
type num_ty = Nint | Ndec | Ndbl

let as_number a =
  match a with
  | Atomic.Int i -> (Nint, float_of_int i)
  | Atomic.Dec f -> (Ndec, f)
  | Atomic.Dbl f -> (Ndbl, f)
  | Atomic.Untyped s -> begin
    match float_of_string_opt (String.trim s) with
    | Some f -> (Ndbl, f)
    | None ->
      Xerror.failf FORG0001 "cannot cast %S to xs:double for arithmetic" s
  end
  | _ ->
    Xerror.failf XPTY0004 "arithmetic on non-numeric %s" (Atomic.type_name a)

let join_ty a b =
  match a, b with
  | Ndbl, _ | _, Ndbl -> Ndbl
  | Ndec, _ | _, Ndec -> Ndec
  | Nint, Nint -> Nint

let arith op l r =
  match zero_or_one_atom l, zero_or_one_atom r with
  | None, _ | _, None -> Xseq.empty
  | Some (Atomic.Int x), Some (Atomic.Int y) -> begin
    (* exact integer arithmetic on OCaml's 63-bit ints; wraparound is a
       dynamic error, as in the engine *)
    let overflow () = Xerror.fail FOCA0002 "integer overflow" in
    match (op : Ast.arith_op) with
    | Add ->
      let r = x + y in
      if x >= 0 = (y >= 0) && r >= 0 <> (x >= 0) then overflow ()
      else [ Item.of_int r ]
    | Sub ->
      let r = x - y in
      if x >= 0 <> (y >= 0) && r >= 0 <> (x >= 0) then overflow ()
      else [ Item.of_int r ]
    | Mul ->
      if x = 0 || y = 0 then [ Item.of_int 0 ]
      else if (x = -1 && y = min_int) || (y = -1 && x = min_int) then
        overflow ()
      else
        let r = x * y in
        if r / x <> y then overflow () else [ Item.of_int r ]
    | Div ->
      if y = 0 then Xerror.fail FOAR0001 "division by zero"
      else [ Item.Atomic (Atomic.Dec (float_of_int x /. float_of_int y)) ]
    | Idiv ->
      if y = 0 then Xerror.fail FOAR0001 "integer division by zero"
      else [ Item.of_int (x / y) ]
    | Mod ->
      if y = 0 then Xerror.fail FOAR0001 "modulo by zero"
      else [ Item.of_int (x mod y) ]
  end
  | Some a, Some b ->
    let ta, fa = as_number a and tb, fb = as_number b in
    let ty = join_ty ta tb in
    let wrap f =
      match ty with
      | Nint ->
        if Float.abs f < 4.611686018427388e18 then [ Item.of_int (int_of_float f) ]
        else Xerror.fail FOCA0002 "integer overflow"
      | Ndec -> [ Item.Atomic (Atomic.Dec f) ]
      | Ndbl -> [ Item.Atomic (Atomic.Dbl f) ]
    in
    (match (op : Ast.arith_op) with
     | Add -> wrap (fa +. fb)
     | Sub -> wrap (fa -. fb)
     | Mul -> wrap (fa *. fb)
     | Div ->
       if fb = 0. && ty <> Ndbl then Xerror.fail FOAR0001 "division by zero"
       else begin
         let q = fa /. fb in
         match ty with
         | Nint | Ndec -> [ Item.Atomic (Atomic.Dec q) ]
         | Ndbl -> [ Item.Atomic (Atomic.Dbl q) ]
       end
     | Idiv ->
       if fb = 0. then Xerror.fail FOAR0001 "integer division by zero"
       else [ Item.of_int (int_of_float (Float.trunc (fa /. fb))) ]
     | Mod ->
       if fb = 0. && ty <> Ndbl then Xerror.fail FOAR0001 "modulo by zero"
       else wrap (Float.rem fa fb))

let general_cmp_holds op c =
  match (op : Ast.general_cmp) with
  | Gen_eq -> c = 0
  | Gen_ne -> c <> 0
  | Gen_lt -> c < 0
  | Gen_le -> c <= 0
  | Gen_gt -> c > 0
  | Gen_ge -> c >= 0

let general op l r =
  (* existential over all pairs of atomized operands *)
  let ls = Xseq.atomize l and rs = Xseq.atomize r in
  List.exists
    (fun a ->
      List.exists
        (fun b ->
          match Atomic.general_compare a b with
          | Atomic.Ordered c -> general_cmp_holds op c
          | Atomic.Unordered -> false
          | Atomic.Incomparable ->
            Xerror.failf XPTY0004 "cannot compare %s with %s"
              (Atomic.type_name a) (Atomic.type_name b))
        rs)
    ls

let value_cmp_holds op c =
  match (op : Ast.value_cmp) with
  | Val_eq -> c = 0
  | Val_ne -> c <> 0
  | Val_lt -> c < 0
  | Val_le -> c <= 0
  | Val_gt -> c > 0
  | Val_ge -> c >= 0

let value_cmp op l r =
  match zero_or_one_atom l, zero_or_one_atom r with
  | None, _ | _, None -> Xseq.empty
  | Some a, Some b ->
    (match Atomic.value_compare a b with
     | Atomic.Ordered c -> Xseq.of_bool (value_cmp_holds op c)
     | Atomic.Unordered -> Xseq.of_bool false
     | Atomic.Incomparable ->
       Xerror.failf XPTY0004 "cannot compare %s with %s (value comparison)"
         (Atomic.type_name a) (Atomic.type_name b))

(* Order-by key comparison: empty (and NaN) rank below everything by
   default, above with [empty greatest]; [descending] flips the whole
   comparison. *)
let order_key_compare (m : Ast.order_modifier) a b =
  let empty_greatest = Option.value m.empty_greatest ~default:false in
  let rank v =
    match v with
    | None -> if empty_greatest then 1 else -1
    | Some (Atomic.Dec f | Atomic.Dbl f) when Float.is_nan f ->
      if empty_greatest then 1 else -1
    | Some _ -> 0
  in
  let base =
    match rank a, rank b with
    | 0, 0 -> begin
      match a, b with
      | Some x, Some y -> begin
        match Atomic.value_compare x y with
        | Atomic.Ordered c -> c
        | Atomic.Unordered -> 0
        | Atomic.Incomparable ->
          Xerror.failf XPTY0004 "order by keys of incomparable types %s and %s"
            (Atomic.type_name x) (Atomic.type_name y)
      end
      | _ -> assert false
    end
    | ra, rb -> Int.compare ra rb
  in
  if m.descending then -base else base

(* --- builtins (the generated subset only) ------------------------------ *)

let numeric_values name seq =
  List.map
    (fun a ->
      match a with
      | Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _ | Atomic.Untyped _ ->
        snd (as_number a)
      | _ ->
        Xerror.failf FORG0006 "%s: non-numeric item of type %s" name
          (Atomic.type_name a))
    (Xseq.atomize seq)

(* The most specific common numeric type: integer stays integer, a
   decimal taints to decimal, untyped/double to double. *)
let common_type seq =
  List.fold_left
    (fun acc a ->
      match acc, a with
      | Ndbl, _ | _, (Atomic.Dbl _ | Atomic.Untyped _) -> Ndbl
      | Ndec, _ | _, Atomic.Dec _ -> Ndec
      | Nint, Atomic.Int _ -> Nint
      | Nint, _ -> Ndbl)
    Nint (Xseq.atomize seq)

let wrap_common ty f =
  match ty with
  | Nint when Float.is_integer f -> Item.of_int (int_of_float f)
  | Nint | Ndec -> Item.Atomic (Atomic.Dec f)
  | Ndbl -> Item.Atomic (Atomic.Dbl f)

let fn_sum seq =
  match seq with
  | [] -> [ Item.of_int 0 ]
  | _ ->
    let total = List.fold_left ( +. ) 0. (numeric_values "sum" seq) in
    [ wrap_common (common_type seq) total ]

let fn_avg seq =
  match seq with
  | [] -> []
  | _ ->
    let vals = numeric_values "avg" seq in
    let mean = List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals) in
    let ty = match common_type seq with Nint -> Ndec | t -> t in
    [ wrap_common ty mean ]

let fn_minmax name pick seq =
  match Xseq.atomize seq with
  | [] -> []
  | first :: rest ->
    let norm a =
      match a with
      | Atomic.Untyped s -> begin
        match float_of_string_opt (String.trim s) with
        | Some f -> Atomic.Dbl f
        | None -> Xerror.failf FORG0001 "cannot cast %S to a number" s
      end
      | _ -> a
    in
    let best =
      List.fold_left
        (fun best a ->
          let a = norm a in
          match Atomic.value_compare a best with
          | Atomic.Ordered c -> if pick c then a else best
          | Atomic.Unordered -> best
          | Atomic.Incomparable ->
            Xerror.failf FORG0006 "%s: incomparable items %s and %s" name
              (Atomic.type_name a) (Atomic.type_name best))
        (norm first) rest
    in
    [ Item.Atomic best ]

let fn_number seq =
  match zero_or_one_atom seq with
  | None -> [ Item.Atomic (Atomic.Dbl Float.nan) ]
  | Some a -> [ Item.Atomic (Atomic.Dbl (Atomic.number a)) ]

let is_fn name = Xname.is_default_fn name

let call name args =
  if not (is_fn name) then
    unsupported (Printf.sprintf "function %s" (Xname.to_string name));
  match name.Xname.local, args with
  | "count", [ s ] -> [ Item.of_int (List.length s) ]
  | "sum", [ s ] -> fn_sum s
  | "avg", [ s ] -> fn_avg s
  | "min", [ s ] -> fn_minmax "min" (fun c -> c < 0) s
  | "max", [ s ] -> fn_minmax "max" (fun c -> c > 0) s
  | "empty", [ s ] -> Xseq.of_bool (s = [])
  | "exists", [ s ] -> Xseq.of_bool (s <> [])
  | "not", [ s ] -> Xseq.of_bool (not (Xseq.effective_boolean_value s))
  | "true", [] -> Xseq.of_bool true
  | "false", [] -> Xseq.of_bool false
  | "string", [ s ] -> Xseq.of_string (string_of_seq s)
  | "string-length", [ s ] -> Xseq.of_int (String.length (string_of_seq s))
  | "number", [ s ] -> fn_number s
  | "concat", args when List.length args >= 2 ->
    Xseq.of_string
      (String.concat ""
         (List.map
            (fun s ->
              match zero_or_one_atom s with
              | None -> ""
              | Some a -> Atomic.to_string a)
            args))
  | "string-join", [ s ] ->
    Xseq.of_string (String.concat "" (List.map Item.string_value s))
  | "string-join", [ s; sep ] ->
    Xseq.of_string
      (String.concat (string_of_seq sep) (List.map Item.string_value s))
  | "deep-equal", [ a; b ] -> Xseq.of_bool (Deep_equal.sequences a b)
  | "distinct-values", [ s ] ->
    (* naive quadratic distinct, first-occurrence order *)
    let seen = ref [] in
    List.iter
      (fun a ->
        if not (List.exists (Atomic.deep_eq a) !seen) then seen := !seen @ [ a ])
      (Xseq.atomize s);
    List.map (fun a -> Item.Atomic a) !seen
  | local, args ->
    unsupported (Printf.sprintf "function fn:%s#%d" local (List.length args))

(* --- axes, node tests, paths ------------------------------------------- *)

let axis_nodes (axis : Ast.axis) node =
  match axis with
  | Child -> Node.children node
  | Descendant -> Node.descendants node
  | Attribute_axis -> Node.attributes node
  | Self -> [ node ]
  | Parent -> Option.to_list (Node.parent node)
  | Descendant_or_self -> Node.descendant_or_self node
  | Ancestor -> Node.ancestors node
  | Ancestor_or_self -> node :: Node.ancestors node
  | Following_sibling -> Node.following_siblings node
  | Preceding_sibling -> Node.preceding_siblings node

let test_matches (axis : Ast.axis) (test : Ast.node_test) node =
  let principal_ok =
    match axis with
    | Attribute_axis -> Node.is_attribute node
    | _ -> Node.is_element node
  in
  let named expected =
    match Node.name node with
    | Some actual -> Xname.equal expected actual
    | None -> false
  in
  match test with
  | Name_test nm -> principal_ok && named nm
  | Wildcard -> principal_ok
  | Prefix_wildcard p ->
    principal_ok
    && (match Node.name node with
        | Some nm -> nm.Xname.prefix = Some p
        | None -> false)
  | Kind_node -> true
  | Kind_text -> Node.is_text node
  | Kind_comment -> Node.kind node = Node.Comment
  | Kind_element None -> Node.is_element node
  | Kind_element (Some nm) -> Node.is_element node && named nm
  | Kind_attribute None -> Node.is_attribute node
  | Kind_attribute (Some nm) -> Node.is_attribute node && named nm
  | Kind_document -> Node.kind node = Node.Document

(* --- the interpreter ---------------------------------------------------- *)

type tuple = Xseq.t Smap.t

let ctx_with_tuple ctx (tuple : tuple) =
  { ctx with vars = Smap.union (fun _ t _ -> Some t) tuple ctx.vars }

let rec eval ctx (e : Ast.expr) : Xseq.t =
  match e with
  | Literal a -> [ Item.Atomic a ]
  | Var v -> lookup ctx v
  | Context_item -> [ (focus_exn ctx).item ]
  | Sequence es -> List.concat_map (eval ctx) es
  | Range (a, b) -> begin
    match zero_or_one_atom (eval ctx a), zero_or_one_atom (eval ctx b) with
    | None, _ | _, None -> Xseq.empty
    | Some x, Some y ->
      let lo = Atomic.cast_to_integer x and hi = Atomic.cast_to_integer y in
      if lo > hi then Xseq.empty
      else List.init (hi - lo + 1) (fun i -> Item.of_int (lo + i))
  end
  | Arith (op, a, b) -> arith op (eval ctx a) (eval ctx b)
  | Neg a -> begin
    match zero_or_one_atom (eval ctx a) with
    | None -> Xseq.empty
    | Some (Atomic.Int i) -> [ Item.of_int (-i) ]
    | Some (Atomic.Dec f) -> [ Item.Atomic (Atomic.Dec (-.f)) ]
    | Some (Atomic.Dbl f) -> [ Item.Atomic (Atomic.Dbl (-.f)) ]
    | Some (Atomic.Untyped s) ->
      [ Item.of_double (-.Atomic.cast_to_double (Atomic.Untyped s)) ]
    | Some a -> Xerror.failf XPTY0004 "unary minus on %s" (Atomic.type_name a)
  end
  | General_cmp (op, a, b) -> Xseq.of_bool (general op (eval ctx a) (eval ctx b))
  | Value_cmp (op, a, b) -> value_cmp op (eval ctx a) (eval ctx b)
  | And (a, b) ->
    Xseq.of_bool
      (Xseq.effective_boolean_value (eval ctx a)
       && Xseq.effective_boolean_value (eval ctx b))
  | Or (a, b) ->
    Xseq.of_bool
      (Xseq.effective_boolean_value (eval ctx a)
       || Xseq.effective_boolean_value (eval ctx b))
  | If (c, t, e) ->
    if Xseq.effective_boolean_value (eval ctx c) then eval ctx t else eval ctx e
  | Quantified (q, binds, body) ->
    let rec go ctx = function
      | [] -> Xseq.effective_boolean_value (eval ctx body)
      | (v, src) :: rest ->
        let items = eval ctx src in
        let test item =
          go { ctx with vars = Smap.add v [ item ] ctx.vars } rest
        in
        (match q with
         | Ast.Some_quant -> List.exists test items
         | Ast.Every_quant -> List.for_all test items)
    in
    Xseq.of_bool (go ctx binds)
  | Flwor f -> eval_flwor ctx f
  | Root -> begin
    match (focus_exn ctx).item with
    | Item.Node n -> [ Item.Node (Node.root n) ]
    | Item.Atomic _ ->
      Xerror.fail XPTY0004 "'/' requires the context item to be a node"
  end
  | Step (axis, test, preds) -> begin
    match (focus_exn ctx).item with
    | Item.Node n ->
      let nodes = List.filter (test_matches axis test) (axis_nodes axis n) in
      apply_predicates ctx (Xseq.of_nodes nodes) preds
    | Item.Atomic _ ->
      Xerror.fail XPTY0004 "a path step requires the context item to be a node"
  end
  | Slash (a, b) ->
    let left = eval ctx a in
    let nodes = Xseq.nodes left in
    let size = List.length nodes in
    let results =
      List.mapi
        (fun i n ->
          eval { ctx with focus = Some { item = Item.Node n; pos = i + 1; size } } b)
        nodes
    in
    let all = List.concat results in
    let has_node = List.exists Item.is_node all in
    let has_atomic = List.exists (fun it -> not (Item.is_node it)) all in
    if has_node && has_atomic then
      Xerror.fail XPTY0004 "path result mixes nodes and atomic values"
    else if has_node then
      Xseq.of_nodes (Node.sort_in_doc_order (Xseq.nodes all))
    else all
  | Filter (e, preds) -> apply_predicates ctx (eval ctx e) preds
  | Call (name, args) -> call name (List.map (eval ctx) args)
  | Direct_elem d -> [ Item.Node (construct_direct ctx d) ]
  | Union _ | Intersect _ | Except _ | Node_cmp _ | Instance_of _
  | Treat_as _ | Castable_as _ | Cast_as _ | Comp_elem _ | Comp_attr _
  | Comp_text _ ->
    unsupported "expression outside the oracle subset"

and apply_predicates ctx items preds =
  List.fold_left (apply_predicate ctx) items preds

and apply_predicate ctx items pred =
  let size = List.length items in
  List.filteri
    (fun i item ->
      let inner = { ctx with focus = Some { item; pos = i + 1; size } } in
      match eval inner pred with
      | [ Item.Atomic (Atomic.Int n) ] -> n = i + 1
      | [ Item.Atomic (Atomic.Dec f) ] | [ Item.Atomic (Atomic.Dbl f) ] ->
        f = float_of_int (i + 1)
      | other -> Xseq.effective_boolean_value other)
    items

(* --- constructors: copy content, space-join adjacent atomics ------------ *)

and construct_direct ctx (d : Ast.direct_elem) =
  let el = Node.element d.tag in
  List.iter
    (fun (a : Ast.direct_attr) ->
      let buf = Buffer.create 16 in
      List.iter
        (fun (piece : Ast.attr_piece) ->
          match piece with
          | Attr_text s -> Buffer.add_string buf s
          | Attr_expr e ->
            let atoms = Xseq.atomize (eval ctx e) in
            Buffer.add_string buf
              (String.concat " " (List.map Atomic.to_string atoms)))
        a.attr_value;
      Node.set_attribute el (Node.attribute a.attr_tag (Buffer.contents buf)))
    d.attrs;
  fill_element ctx el d.content;
  el

(* Content assembly: within one enclosed expression adjacent atomic
   values join into one text node separated by single spaces; a node
   flushes the pending text and is deep-copied; expression boundaries
   also flush (so {1}{2} yields "12" but {(1,2)} yields "1 2"). *)
and fill_element ctx el content =
  let pending = Buffer.create 16 in
  let pending_sep = ref false in
  let flush () =
    if Buffer.length pending > 0 then begin
      Node.append_child el (Node.text (Buffer.contents pending));
      Buffer.clear pending
    end;
    pending_sep := false
  in
  List.iter
    (fun (item : Ast.content_item) ->
      match item with
      | Content_text s ->
        flush ();
        Node.append_child el (Node.text s)
      | Content_comment s ->
        flush ();
        Node.append_child el (Node.comment s)
      | Content_elem child ->
        flush ();
        Node.append_child el (construct_direct ctx child)
      | Content_expr e ->
        List.iter
          (fun (it : Item.t) ->
            match it with
            | Item.Atomic a ->
              if !pending_sep then Buffer.add_char pending ' ';
              Buffer.add_string pending (Atomic.to_string a);
              pending_sep := true
            | Item.Node n -> begin
              match Node.kind n with
              | Node.Attribute ->
                flush ();
                Node.set_attribute el
                  (Node.attribute (Option.get (Node.name n))
                     (Node.attribute_value n))
              | Node.Document ->
                flush ();
                List.iter
                  (fun c -> Node.append_child el (Node.copy c))
                  (Node.children n)
              | _ ->
                flush ();
                Node.append_child el (Node.copy n)
            end)
          (eval ctx e);
        flush ())
    content;
  flush ()

(* --- FLWOR --------------------------------------------------------------- *)

and eval_flwor ctx (f : Ast.flwor) =
  let tuples = List.fold_left (eval_clause ctx) [ Smap.empty ] f.clauses in
  let numbered =
    match f.return_at with
    | None -> tuples
    | Some v -> List.mapi (fun i t -> Smap.add v (Xseq.of_int (i + 1)) t) tuples
  in
  List.concat_map
    (fun t -> eval (ctx_with_tuple ctx t) f.return_expr)
    numbered

and eval_clause ctx tuples (clause : Ast.clause) =
  match clause with
  | For bindings ->
    List.fold_left
      (fun tuples (fb : Ast.for_binding) ->
        List.concat_map
          (fun tuple ->
            let items = eval (ctx_with_tuple ctx tuple) fb.for_src in
            List.mapi
              (fun i item ->
                let tuple = Smap.add fb.for_var [ item ] tuple in
                match fb.positional with
                | Some p -> Smap.add p (Xseq.of_int (i + 1)) tuple
                | None -> tuple)
              items)
          tuples)
      tuples bindings
  | Let bindings ->
    List.map
      (fun tuple ->
        List.fold_left
          (fun tuple (v, e) ->
            Smap.add v (eval (ctx_with_tuple ctx tuple) e) tuple)
          tuple bindings)
      tuples
  | Where e ->
    List.filter
      (fun tuple ->
        Xseq.effective_boolean_value (eval (ctx_with_tuple ctx tuple) e))
      tuples
  | Order_by { specs; _ } -> sort_tuples ctx tuples specs
  | Count v ->
    List.mapi (fun i tuple -> Smap.add v (Xseq.of_int (i + 1)) tuple) tuples
  | Group_by g -> eval_group_by ctx tuples g
  | Window _ -> unsupported "window clause"

and sort_tuples ctx tuples specs =
  let keyed =
    List.map
      (fun tuple ->
        let tctx = ctx_with_tuple ctx tuple in
        (List.map
           (fun (e, m) -> (zero_or_one_atom (eval tctx e), m))
           specs,
         tuple))
      tuples
  in
  let compare_keys (ka, _) (kb, _) =
    let rec go ka kb =
      match ka, kb with
      | [], [] -> 0
      | (a, m) :: ra, (b, _) :: rb ->
        let c = order_key_compare m a b in
        if c <> 0 then c else go ra rb
      | _ -> 0
    in
    go ka kb
  in
  List.map snd (List.stable_sort compare_keys keyed)

and eval_group_by ctx tuples (g : Ast.group_clause) =
  (* only the default deep-equal equality (Section 3.3); [using
     fn:deep-equal] is the same function spelled explicitly *)
  List.iter
    (fun (k : Ast.group_key) ->
      match k.using with
      | None -> ()
      | Some f when is_fn f && f.Xname.local = "deep-equal" -> ()
      | Some f ->
        unsupported
          (Printf.sprintf "grouping equality function %s" (Xname.to_string f)))
    g.keys;
  let keys_of tuple =
    let tctx = ctx_with_tuple ctx tuple in
    List.map (fun (k : Ast.group_key) -> eval tctx k.key_expr) g.keys
  in
  let groups = group_by_deep_equal ~keys_of tuples in
  List.map
    (fun grp ->
      (* post-grouping scope: only the grouping and nesting variables *)
      let out =
        List.fold_left2
          (fun out (k : Ast.group_key) key_value ->
            Smap.add k.key_var key_value out)
          Smap.empty g.keys grp.keys
      in
      List.fold_left
        (fun out (n : Ast.nest_spec) ->
          let members =
            if n.nest_order = [] then grp.members
            else sort_tuples ctx grp.members n.nest_order
          in
          let value =
            List.concat_map
              (fun tuple -> eval (ctx_with_tuple ctx tuple) n.nest_expr)
              members
          in
          Smap.add n.nest_var value out)
        out g.nests)
    groups

(* --- entry points -------------------------------------------------------- *)

let eval_query ~context_node (q : Ast.query) =
  if q.prolog.functions <> [] || q.prolog.global_vars <> [] then
    unsupported "prolog declarations";
  let ctx =
    {
      vars = Smap.empty;
      focus = Some { item = Item.Node context_node; pos = 1; size = 1 };
    }
  in
  eval ctx q.body

let run ~context_node src =
  eval_query ~context_node (Parser.parse_query src)
