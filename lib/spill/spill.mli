(** Crash-safe spill files with checksummed frames, and the k-way
    loser-tree merge used to replay them.

    A spill file is a 5-byte header ([XQSP] + version) followed by
    frames of [payload length (u32 LE) | FNV-1a checksum (u32 LE) |
    payload]. Files are created in the spill directory and immediately
    unlinked while the descriptor stays open, so the kernel reclaims
    them on any kind of process death; where unlink-while-open is not
    possible the path is registered and removed at exit and on
    SIGINT/SIGTERM.

    Every failure — real I/O errors, torn or truncated frames, checksum
    mismatches, and injected faults from the [XQ_FAULTS] I/O stream —
    raises a structured [XQENG0006] (via [Governor.spill_trip]) naming
    the file and operation. No call ever returns partial data. *)

(** {1 Availability} *)

(** Spill directory: [set_dir] override, else [XQ_SPILL_DIR], else
    [TMPDIR], else the system temp dir. *)
val dir : unit -> string

val set_dir : string option -> unit

(** [set_enabled false] (the [--no-spill] flag) forces {!available} to
    [false]. *)
val set_enabled : bool -> unit

(** [true] when spilling may be used: enabled, [XQ_NO_SPILL] is not
    [1], and a probe file can be created in {!dir}. *)
val available : unit -> bool

(** Once-per-process stderr warning that a watermark is armed but
    spilling is unavailable, so hard memory trips stay in force —
    mirrors [Par]'s spawn-fallback warning. *)
val warn_unavailable : unit -> unit

(** FNV-1a/32 of a payload, as stored in frame headers. Exposed so
    corruption tests can fabricate valid and invalid frames. *)
val checksum : string -> int

module File : sig
  type t

  (** Create a spill file (counted in governor stats). May raise
      [XQENG0006] — including an injected open fault. *)
  val create : unit -> t

  (** Append one frame. May raise [XQENG0006]; an injected fault
      commits a torn prefix of the frame first, so the on-disk state is
      a genuinely short write. A payload too large for the u32 length
      field trips explicitly instead of truncating; frame writers
      split oversized records beforehand (see [Group]). *)
  val write_frame : t -> string -> unit

  (** Payload + framing bytes written so far (excludes the header). *)
  val bytes : t -> int

  val frames : t -> int

  (** Current write offset — record it before and after writing a
      sorted run to get the run's [(off, len)] span. *)
  val pos : t -> int

  (** Close (and for registered-path files, remove). Idempotent. *)
  val close : t -> unit

  (** Test hook: append raw bytes with no framing, to fabricate torn
      frames and corrupt checksums against the real reader. *)
  val write_raw : t -> string -> unit

  type cursor

  (** [cursor ?off ?len file] reads frames from [off] (default: just
      after the header, validating it) for [len] bytes (default: to the
      end of data). Several cursors may read one file. *)
  val cursor : ?off:int -> ?len:int -> t -> cursor

  (** Next frame payload, or [None] at the end of the span. Raises
      [XQENG0006] on torn frames, overruns or checksum mismatches. *)
  val next_frame : cursor -> string option
end

(** {1 Merging} *)

(** [merge_runs ~cmp pulls emit] merges [k] sorted pull streams with a
    loser tree (log k comparisons per record). Ties break toward the
    lower stream index, keeping equal keys in run order. *)
val merge_runs :
  cmp:('r -> 'r -> int) -> (unit -> 'r option) array -> ('r -> unit) -> unit
