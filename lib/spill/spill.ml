(* Crash-safe spill files with checksummed frames, and the k-way merge
   used to replay them.

   A spill file is a header ("XQSP" + version byte) followed by frames:

     [payload length : u32 LE] [FNV-1a checksum : u32 LE] [payload]

   Files are created with O_EXCL in the spill directory and immediately
   unlinked while the descriptor stays open — the kernel reclaims the
   bytes the instant the process dies, however it dies, so a crash can
   never leak spill space. On the rare filesystem where unlink-while-
   open fails, the path is instead registered for cleanup at exit and
   on SIGINT/SIGTERM. All reads go back through the same descriptor.

   Every failure mode — a real [Unix_error], a torn or truncated frame,
   a checksum mismatch, or an injected fault from the [XQ_FAULTS] I/O
   stream — funnels through [Governor.spill_trip], raising a structured
   [XQENG0006] that names the file and the failing operation. Nothing
   in this module ever returns partial data. *)

module Governor = Xq_governor.Governor

let magic = "XQSP\001"

(* --- availability -------------------------------------------------------- *)

let enabled = Atomic.make true
let dir_override : string option Atomic.t = Atomic.make None

let dir () =
  match Atomic.get dir_override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "XQ_SPILL_DIR" with
    | Some d when d <> "" -> d
    | Some _ | None -> (
      match Sys.getenv_opt "TMPDIR" with
      | Some d when d <> "" -> d
      | Some _ | None -> Filename.get_temp_dir_name ()))

let set_dir d =
  Atomic.set dir_override d;
  Atomic.set enabled true (* re-probe against the new directory *)

let set_enabled b = Atomic.set enabled b

let probe_counter = Atomic.make 0

(* Can we actually create a file in the spill directory? Probed with
   raw Unix calls (never the fault-injected path: an injected fault
   must surface as XQENG0006 at spill time, not silently disable
   spilling). Re-evaluated per call — it is only consulted once per
   grouping operator, and the directory can change via [set_dir]. *)
let available () =
  Atomic.get enabled
  && Sys.getenv_opt "XQ_NO_SPILL" <> Some "1"
  &&
  let path =
    Filename.concat (dir ())
      (Printf.sprintf "xq-spill-probe-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add probe_counter 1))
  in
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600 with
  | fd ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    true
  | exception Unix.Unix_error _ -> false

let warned = Atomic.make false

(* Mirrors [Par]'s spawn-fallback warning: once per process, on stderr,
   when a watermark is armed but no spill directory is usable — the
   query continues on the in-memory path with pure hard-trip
   behaviour. *)
let warn_unavailable () =
  if not (Atomic.exchange warned true) then
    prerr_endline
      "xq: warning: spill directory unavailable (XQ_NO_SPILL set or not \
       writable); continuing in memory with hard memory trips"

(* --- registered-path cleanup (fallback when unlink-while-open fails) ----- *)

let registered : (string, unit) Hashtbl.t = Hashtbl.create 8
let registered_mutex = Mutex.create ()

(* Best-effort: runs from [at_exit] and from the SIGINT/SIGTERM
   handlers. A signal lands at a safe point on a thread that may be
   inside [register_path]/[unregister_path] already holding the mutex,
   and OCaml mutexes are not reentrant — so the cleanup must never
   block on it. When [try_lock] loses, cleanup is skipped: the paths
   leak only on that unlucky race, which beats deadlocking the exit. *)
let cleanup_registered () =
  if Mutex.try_lock registered_mutex then begin
    let paths = Hashtbl.fold (fun p () acc -> p :: acc) registered [] in
    Hashtbl.reset registered;
    Mutex.unlock registered_mutex;
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths
  end

let cleanup_installed = Atomic.make false

let install_cleanup () =
  if not (Atomic.exchange cleanup_installed true) then begin
    at_exit cleanup_registered;
    List.iter
      (fun s ->
        try
          ignore
            (Sys.signal s
               (Sys.Signal_handle
                  (fun _ ->
                    cleanup_registered ();
                    exit 130)))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

let register_path p =
  install_cleanup ();
  Mutex.lock registered_mutex;
  Hashtbl.replace registered p ();
  Mutex.unlock registered_mutex

let unregister_path p =
  Mutex.lock registered_mutex;
  Hashtbl.remove registered p;
  Mutex.unlock registered_mutex

(* --- checksums ----------------------------------------------------------- *)

(* FNV-1a, 32-bit. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

(* --- files ---------------------------------------------------------------- *)

module File = struct
  type t = {
    fd : Unix.file_descr;
    path : string;  (* for error messages; may already be unlinked *)
    linked : bool;  (* true = registered-path fallback, remove on close *)
    mutable wpos : int;  (* write offset = logical end of data *)
    mutable frames : int;
    mutable closed : bool;
  }

  let trip file op fmt =
    Format.kasprintf
      (fun detail ->
        Governor.spill_trip
          (Printf.sprintf "spill %s failed on %s: %s" op file detail))
      fmt

  let file_counter = Atomic.make 0

  let write_all fd bytes off len path =
    let written = ref 0 in
    (try
       while !written < len do
         written := !written + Unix.write fd bytes (off + !written) (len - !written)
       done
     with Unix.Unix_error (e, _, _) ->
       trip path "write" "%s after %d of %d bytes" (Unix.error_message e)
         !written len)

  let create () =
    let path =
      Filename.concat (dir ())
        (Printf.sprintf "xq-spill-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add file_counter 1))
    in
    (match Governor.io_fault () with
     | Some seed ->
       Governor.spill_trip
         (Printf.sprintf
            "spill open failed on %s: injected open fault (XQ_FAULTS seed %d)"
            path seed)
     | None -> ());
    let fd =
      try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600
      with Unix.Unix_error (e, _, _) ->
        Governor.spill_trip
          (Printf.sprintf "spill open failed on %s: %s" path
             (Unix.error_message e))
    in
    let linked =
      match Unix.unlink path with
      | () -> false
      | exception Unix.Unix_error _ ->
        register_path path;
        true
    in
    let file = { fd; path; linked; wpos = 0; frames = 0; closed = false } in
    write_all fd (Bytes.of_string magic) 0 (String.length magic) path;
    file.wpos <- String.length magic;
    Governor.note_spill ~bytes:0 ~files:1 ~repartitions:0;
    file

  let header_len = 8

  (* The frame length field is a u32: [Int32.of_int] would silently
     truncate anything larger, to be caught only later as a checksum or
     overrun error. Writers are expected to split oversized cells (see
     [Group]); this trip is the backstop. *)
  let max_frame = Int32.to_int Int32.max_int

  let frame_bytes payload =
    let n = String.length payload in
    let b = Bytes.create (header_len + n) in
    Bytes.set_int32_le b 0 (Int32.of_int n);
    Bytes.set_int32_le b 4 (Int32.of_int (checksum payload));
    Bytes.blit_string payload 0 b header_len n;
    b

  let write_frame file payload =
    if String.length payload > max_frame then
      trip file.path "write" "frame payload of %d bytes exceeds the %d-byte \
                              frame limit" (String.length payload) max_frame;
    let b = frame_bytes payload in
    let len = Bytes.length b in
    (match Governor.io_fault () with
     | Some seed ->
       (* A short write: commit a prefix so the file genuinely ends in a
          torn frame, then fail closed. *)
       let torn = len / 2 in
       write_all file.fd b 0 torn file.path;
       file.wpos <- file.wpos + torn;
       trip file.path "write" "injected short write after %d of %d bytes \
                               (XQ_FAULTS seed %d)" torn len seed
     | None -> ());
    write_all file.fd b 0 len file.path;
    file.wpos <- file.wpos + len;
    file.frames <- file.frames + 1;
    Governor.note_spill ~bytes:len ~files:0 ~repartitions:0

  (* Test hook: append raw bytes, bypassing framing — used to fabricate
     torn frames and checksum corruption against the real reader. *)
  let write_raw file s =
    write_all file.fd (Bytes.of_string s) 0 (String.length s) file.path;
    file.wpos <- file.wpos + String.length s

  let pos file = file.wpos
  let data_start = String.length magic
  let bytes file = file.wpos - data_start
  let frames file = file.frames

  let close file =
    if not file.closed then begin
      file.closed <- true;
      (try Unix.close file.fd with Unix.Unix_error _ -> ());
      if file.linked then begin
        (try Sys.remove file.path with Sys_error _ -> ());
        unregister_path file.path
      end
    end

  (* --- reading ----------------------------------------------------------- *)

  type cursor = { cfile : t; mutable off : int; limit : int }

  let read_exact file off len what =
    let b = Bytes.create len in
    (try
       ignore (Unix.lseek file.fd off Unix.SEEK_SET);
       let got = ref 0 in
       while !got < len do
         let n = Unix.read file.fd b !got (len - !got) in
         if n = 0 then
           trip file.path "read" "unexpected end of file reading %s at \
                                  offset %d" what off;
         got := !got + n
       done
     with Unix.Unix_error (e, _, _) ->
       trip file.path "read" "%s reading %s at offset %d"
         (Unix.error_message e) what off);
    Bytes.unsafe_to_string b

  let cursor ?off ?len file =
    let off = match off with Some o -> o | None -> data_start in
    let limit =
      match len with Some l -> off + l | None -> file.wpos
    in
    if off = data_start && off <= file.wpos then begin
      (* validate the header once per whole-file cursor *)
      let h = read_exact file 0 data_start "header" in
      if h <> magic then
        trip file.path "read" "bad magic or version in header"
    end;
    { cfile = file; off; limit }

  let next_frame cur =
    let file = cur.cfile in
    if cur.off >= cur.limit then None
    else begin
      if cur.limit - cur.off < header_len then
        trip file.path "read" "torn frame header at offset %d (%d trailing \
                               bytes)" cur.off (cur.limit - cur.off);
      let h = read_exact file cur.off header_len "frame header" in
      let len = Int32.to_int (String.get_int32_le h 0) in
      let crc = Int32.to_int (String.get_int32_le h 4) land 0xffffffff in
      if len < 0 || cur.off + header_len + len > cur.limit then
        trip file.path "read" "frame of %d bytes at offset %d overruns the \
                               file (torn final frame?)" len cur.off;
      let payload = read_exact file (cur.off + header_len) len "frame payload" in
      if checksum payload <> crc then
        trip file.path "read" "checksum mismatch in frame at offset %d"
          cur.off;
      cur.off <- cur.off + header_len + len;
      Some payload
    end
end

(* --- k-way merge (loser tree) -------------------------------------------- *)

(* Tournament tree of losers over [k] pull streams. Internal nodes
   1..k-1 hold the losers of their subtree's final, [tree.(0)] the
   overall winner; leaf [j] sits at position [k + j]. After the winner
   is consumed only its leaf-to-root path replays: log k comparisons
   per emitted record. Ties break toward the lower stream index, which
   is what keeps equal keys in run (= input) order. *)
let merge_runs ~cmp (pulls : (unit -> 'r option) array) emit =
  let k = Array.length pulls in
  if k = 0 then ()
  else if k = 1 then begin
    let rec drain () =
      match pulls.(0) () with
      | Some r ->
        emit r;
        drain ()
      | None -> ()
    in
    drain ()
  end
  else begin
    let heads = Array.map (fun p -> p ()) pulls in
    let beats a b =
      match heads.(a), heads.(b) with
      | None, _ -> false
      | Some _, None -> true
      | Some x, Some y ->
        let c = cmp x y in
        c < 0 || (c = 0 && a < b)
    in
    let tree = Array.make k (-1) in
    let winner = Array.make (2 * k) (-1) in
    for j = 0 to k - 1 do
      winner.(k + j) <- j
    done;
    for p = k - 1 downto 1 do
      let a = winner.(2 * p) and b = winner.((2 * p) + 1) in
      if beats a b then begin
        winner.(p) <- a;
        tree.(p) <- b
      end
      else begin
        winner.(p) <- b;
        tree.(p) <- a
      end
    done;
    tree.(0) <- winner.(1);
    let replay j =
      let w = ref j and pos = ref ((k + j) / 2) in
      while !pos >= 1 do
        if beats tree.(!pos) !w then begin
          let t = tree.(!pos) in
          tree.(!pos) <- !w;
          w := t
        end;
        pos := !pos / 2
      done;
      tree.(0) <- !w
    in
    let rec drain () =
      let j = tree.(0) in
      match heads.(j) with
      | None -> ()
      | Some r ->
        emit r;
        heads.(j) <- pulls.(j) ();
        replay j;
        drain ()
    in
    drain ()
  end
