(* The shared compile-and-run pipeline. See pipeline.mli.

   Execution dispatch preserves the historical front-end paths exactly:
   no strategy = the direct tuple-stream evaluator, an explicit
   strategy = the plan algebra — so collapsing the CLI, REPL, fuzzer
   and server onto this module changes no byte of any output. *)

module Governor = Xq_governor.Governor
module Optimizer = Xq_algebra.Optimizer

type knobs = {
  k_strategy : Optimizer.group_strategy option;
  k_parallel : int option;
  k_batch : int option;
  k_rewrite : bool;
  k_use_index : bool;
  k_timeout_ms : int option;
  k_max_groups : int option;
  k_max_mem_mb : int option;
  k_spill_at_mb : int option;
  k_stream : bool option;
}

let default_knobs =
  {
    k_strategy = None;
    k_parallel = None;
    k_batch = None;
    k_rewrite = false;
    k_use_index = false;
    k_timeout_ms = None;
    k_max_groups = None;
    k_max_mem_mb = None;
    k_spill_at_mb = None;
    k_stream = None;
  }

(* Streaming is on by default when a streamable source is supplied;
   [XQ_NO_STREAM=1] is the environment kill switch, [k_stream] the
   per-request override (the CLI's --stream/--no-stream, the protocol's
   STREAM header). *)
let stream_enabled knobs =
  match Sys.getenv_opt "XQ_NO_STREAM" with
  | Some ("1" | "true" | "yes") -> false  (* the kill switch beats everything *)
  | _ -> knobs.k_stream <> Some false

type compiled = {
  c_source : string;
  c_query : Xq_lang.Ast.query;
}

let compile ?(rewrite = false) source =
  let q = Xq_lang.Parser.parse_query source in
  Xq_lang.Static.check_query q;
  let q = if rewrite then Xq_rewrite.Rewrite.rewrite_query q else q in
  { c_source = source; c_query = q }

let of_query ?(source = "") q = { c_source = source; c_query = q }
let query c = c.c_query
let source c = c.c_source

(* Length-prefixed fields make the key injective: no choice of query
   text can collide with a knob rendering. *)
let cache_key ~knobs source =
  let strategy =
    match knobs.k_strategy with
    | None -> "direct"
    | Some s -> Optimizer.strategy_to_string s
  in
  let env_strategy =
    (* the environment default that [Exec] would consult if a caller
       ever routed to the plan layer without an explicit strategy *)
    match Sys.getenv_opt "XQ_GROUP_STRATEGY" with Some s -> s | None -> ""
  in
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat ""
    [
      field strategy;
      field (if knobs.k_rewrite then "rw" else "");
      field (if knobs.k_use_index then "ix" else "");
      field env_strategy;
      field source;
    ]

let eval ?(use_index = false) ?strategy ?parallel ~doc c =
  match strategy with
  | Some s ->
    Xq_algebra.Exec.eval_query ~check:false ~strategy:s ?parallel
      ~context_node:doc c.c_query
  | None ->
    Xq_engine.Eval.eval_query ~check:false ~use_index ~context_node:doc
      c.c_query

let render ?indent seq = Xq_xml.Serialize.sequence ?indent seq

type report = {
  r_output : string;
  r_items : int;
  r_elapsed_ms : float;
  r_stats : Governor.stats option;
}

let empty_doc () = Xq_xml.Xml_parse.parse "<empty/>"

let run ?(scope = `Process) ?(force_governor = false) ?on_governor
    ?(knobs = default_knobs) ?(indent = false) ?(explain_analyze = false)
    ?compiled ?source ?load_doc ?stream_source () =
  let governed f =
    let gov =
      match
        Governor.of_limits ?timeout_ms:knobs.k_timeout_ms
          ?max_groups:knobs.k_max_groups ?max_mem_mb:knobs.k_max_mem_mb
          ?spill_watermark_bytes:
            (Option.map (fun mb -> mb * 1024 * 1024) knobs.k_spill_at_mb)
          ()
      with
      | Some _ as g -> g
      | None ->
        (* the server forces an (unlimited) governor on every query so
           drain-time cooperative cancellation has something to reach;
           ungoverned front ends keep paying nothing *)
        if force_governor then Some (Governor.create ()) else None
    in
    match gov with
    | None -> f None
    | Some g ->
      let install =
        match scope with
        | `Process -> Governor.with_governor
        | `Domain -> Governor.with_scoped_governor
      in
      install g (fun () ->
          (match on_governor with Some cb -> cb g | None -> ());
          f (Some g))
  in
  governed (fun gov ->
      (match knobs.k_parallel with
       | Some n -> Xq_par.Par.set_default_degree n
       | None -> ());
      (* The batch override is process-wide; restore it on exit so a
         per-request --batch in the server does not outlive its
         request. *)
      let saved_batch = Xq_par.Batch.get_override () in
      (match knobs.k_batch with
       | Some n -> Xq_par.Batch.set_size (Some n)
       | None -> ());
      Fun.protect ~finally:(fun () ->
          match knobs.k_batch with
          | Some _ -> Xq_par.Batch.set_size saved_batch
          | None -> ())
      @@ fun () ->
      let compiled_memo = ref compiled in
      let get_compiled () =
        match !compiled_memo with
        | Some c -> c
        | None ->
          let c =
            match source with
            | Some src -> compile ~rewrite:knobs.k_rewrite src
            | None -> invalid_arg "Pipeline.run: no compiled and no source"
          in
          compiled_memo := Some c;
          c
      in
      (* A streamed source materializes through the same parser the
         front ends always used, so the degraded path is byte-identical
         to never having asked for streaming. *)
      let materialize_doc () =
        match stream_source with
        | Some (`File p) -> Xq_xml.Xml_parse.parse_file p
        | Some (`String s) -> Xq_xml.Xml_parse.parse s
        | None -> ( match load_doc with Some f -> f () | None -> empty_doc ())
      in
      (* Streamed dispatch: a supplied source streams when the
         projection verdict allows and nothing disabled it. The verdict
         needs the checked query, so compilation precedes the document
         here (both are governed either way). *)
      let streamed =
        match stream_source with
        | Some src when (not explain_analyze) && stream_enabled knobs -> begin
          let c = get_compiled () in
          match Xq_rewrite.Projection.analyze c.c_query with
          | Xq_rewrite.Projection.Streamable { path; var; positional } ->
            Some (src, c, path, var, positional)
          | Xq_rewrite.Projection.Materialize reason ->
            (* one quiet line, only when streaming was asked for by
               name — the silent default must not get noisy *)
            if knobs.k_stream = Some true then
              Printf.eprintf
                "xq: streaming requested but not possible (%s); \
                 materializing\n%!"
                reason;
            None
        end
        | _ -> None
      in
      match streamed with
      | Some (src, compiled, path, var, positional) ->
        let strategy =
          match knobs.k_strategy with
          | Some s -> s
          | None -> Optimizer.strategy_from_env ()
        in
        (* same contract as the materialized path's post-parse
           rebaseline: --max-mem budgets the query's own work, not the
           startup heap (streamed input is charged as parse-ahead) *)
        (match gov with Some g -> Governor.rebaseline g | None -> ());
        let t0 = Sys.time () in
        let result =
          Xq_algebra.Exec.eval_query_stream ~check:false ~strategy
            ?parallel:knobs.k_parallel ~source:src ~path ~var ~positional
            compiled.c_query
        in
        let elapsed = (Sys.time () -. t0) *. 1000.0 in
        let rendered = render ~indent result in
        {
          r_output = rendered;
          r_items = List.length result;
          r_elapsed_ms = elapsed;
          r_stats = Option.map Governor.stats gov;
        }
      | None ->
        (* the document parses inside the governed region so the input
           limits (XQ_MAX_INPUT / XQ_MAX_DEPTH) apply to it *)
        let doc = materialize_doc () in
        (* budget the query's own materializations, not the document *)
        (match gov with Some g -> Governor.rebaseline g | None -> ());
        let compiled = get_compiled () in
        if explain_analyze then
          let output =
            Xq_rewrite.Explain.analyze_query ?strategy:knobs.k_strategy
              ?parallel:knobs.k_parallel ~context_node:doc compiled.c_query
          in
          (* with a streamable source in play, EXPLAIN also reports the
             projection verdict — the reason a query materializes is
             otherwise invisible *)
          (* when --rewrite recognized the implicit-grouping idiom at
             compile time, say so — the analyzed plan only shows the
             resulting group by, not where it came from *)
          let output =
            if not knobs.k_rewrite then output
            else
              let n =
                match
                  Xq_lang.Parser.parse_query compiled.c_source
                with
                | q -> Xq_rewrite.Rewrite.count_rewrites q.Xq_lang.Ast.body
                | exception _ -> 0
              in
              if n > 0 then
                Printf.sprintf "rewrite: implicit-grouping=%d\n" n ^ output
              else output
          in
          let output =
            match stream_source with
            | None -> output
            | Some _ ->
              output ^ "stream: "
              ^ Xq_rewrite.Projection.to_string
                  (Xq_rewrite.Projection.analyze compiled.c_query)
              ^ "\n"
          in
          {
            r_output = output;
            r_items = 0;
            r_elapsed_ms = 0.;
            r_stats = Option.map Governor.stats gov;
          }
        else begin
          let t0 = Sys.time () in
          let result =
            eval ~use_index:knobs.k_use_index ?strategy:knobs.k_strategy
              ?parallel:knobs.k_parallel ~doc compiled
          in
          let elapsed = (Sys.time () -. t0) *. 1000.0 in
          (* serialize fully before anything is written, so a trip
             mid-query never leaves partial output anywhere *)
          let rendered = render ~indent result in
          {
            r_output = rendered;
            r_items = List.length result;
            r_elapsed_ms = elapsed;
            r_stats = Option.map Governor.stats gov;
          }
        end)
