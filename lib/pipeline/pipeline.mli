(** The one compile-and-run pipeline behind every front end.

    The CLI, the REPL, the differential fuzzer and the query server all
    execute queries through this module, so they share one code path
    byte for byte: parse → static check → optional implicit-group-by
    rewrite ({!compile}), then direct-evaluator or plan-algebra
    execution ({!eval}), then full serialization before anything is
    written ({!render} — a trip mid-query can never leave partial
    output). {!run} wraps the whole thing in a governor built from
    {!knobs} (merged with the [XQ_*] environment), installed either
    process-wide (CLI semantics) or scoped to the calling domain (the
    server's concurrent-query semantics).

    {!compile}'s result is the server's plan-cache artifact: the
    setup cost a resident process amortizes is parsing, static
    checking and rewriting (plus document parsing, cached separately);
    building the operator tree from a checked AST is linear in query
    size and happens inside {!eval} exactly as it always has. *)

open Xq_xdm

(** Everything that selects a pipeline variant. [None] strategy is the
    direct tuple-stream evaluator (the CLI default); [Some _] routes
    through the plan algebra. Limits merge with the environment via
    [Governor.of_limits]. *)
type knobs = {
  k_strategy : Xq_algebra.Optimizer.group_strategy option;
  k_parallel : int option;  (** domain-pool degree *)
  k_batch : int option;
      (** executor batch size ([1] = item-at-a-time; default
          [XQ_BATCH] or 4096). Output is byte-identical at any size. *)
  k_rewrite : bool;  (** implicit-group-by rewrite before evaluation *)
  k_use_index : bool;  (** element-name index (direct evaluator only) *)
  k_timeout_ms : int option;
  k_max_groups : int option;
  k_max_mem_mb : int option;
  k_spill_at_mb : int option;
  k_stream : bool option;
      (** streamed ingestion when a [stream_source] is supplied:
          [None] = on when the projection verdict allows (the default),
          [Some true] = requested by name (a one-line stderr notice when
          the query is not streamable), [Some false] = off. The
          [XQ_NO_STREAM=1] environment kill switch beats all three. *)
}

(** No strategy (direct evaluator), no explicit limits, no rewrite. *)
val default_knobs : knobs

(** A parsed, statically checked, optionally rewritten query — the
    artifact the server's plan cache holds and every front end
    executes. *)
type compiled

(** Parse + static check + (when [rewrite]) the implicit-group-by
    rewrite. Raises [Xerror.Error] with a static code on bad input. *)
val compile : ?rewrite:bool -> string -> compiled

(** Wrap an already-checked query (the fuzzer's generated ASTs). *)
val of_query : ?source:string -> Xq_lang.Ast.query -> compiled

val query : compiled -> Xq_lang.Ast.query
val source : compiled -> string

(** The plan-cache key for [source] under [knobs]: query text ×
    strategy × the compile-relevant knobs (rewrite, index) × the
    [XQ_GROUP_STRATEGY] environment default — so a cached artifact is
    never reused under knobs that could compile or execute it
    differently. Injective per component (length-prefixed fields). *)
val cache_key : knobs:knobs -> string -> string

(** Execute a compiled query against a context document — the
    historical engine paths, unchanged: [strategy = None] is
    [Eval.eval_query] (direct), [Some s] is [Exec.eval_query] through
    the plan algebra. No governor management here. *)
val eval :
  ?use_index:bool ->
  ?strategy:Xq_algebra.Optimizer.group_strategy ->
  ?parallel:int ->
  doc:Node.t ->
  compiled ->
  Xseq.t

(** Serialize a full result sequence (never partial). *)
val render : ?indent:bool -> Xseq.t -> string

type report = {
  r_output : string;
      (** the rendered result — or the EXPLAIN ANALYZE text *)
  r_items : int;  (** result cardinality (0 in explain mode) *)
  r_elapsed_ms : float;  (** evaluation time, excluding document load *)
  r_stats : Xq_governor.Governor.stats option;
      (** the governor's stats when one was installed *)
}

(** The full governed pipeline: build a governor from [knobs] + the
    environment, install it ([`Process] = process-wide, CLI semantics;
    [`Domain] = scoped to this domain, server semantics), load the
    document inside the governed region (input limits apply),
    rebaseline so memory budgets cover the query's own work, compile
    [source] (or reuse [compiled]), evaluate, and serialize fully.
    [explain_analyze] renders the executed operator tree instead of
    the result. Raises [Xerror.Error] exactly as the engine does.

    [force_governor] installs an unlimited governor even when [knobs]
    and the environment set no limit, so the caller can reach the query
    with cooperative cancellation (the server's drain path);
    [on_governor] is called with the installed governor, after
    installation and before any work — the server registers it in its
    in-flight table there.

    [stream_source] supplies the document as a streamable source
    instead of [load_doc]. When streaming is enabled ([k_stream], the
    [XQ_NO_STREAM] kill switch) and the projection analysis accepts the
    query, the document is scanned with projection pushdown and
    matched subtrees flow into the plan pipeline as parsing proceeds —
    memory stays bounded by the matched working set (and the spill
    watermark) rather than the document size, with byte-identical
    output. Otherwise the source materializes through the ordinary
    parser and everything behaves as if streaming were never asked
    for; EXPLAIN ANALYZE output gains a [stream:] verdict line. *)
val run :
  ?scope:[ `Process | `Domain ] ->
  ?force_governor:bool ->
  ?on_governor:(Xq_governor.Governor.t -> unit) ->
  ?knobs:knobs ->
  ?indent:bool ->
  ?explain_analyze:bool ->
  ?compiled:compiled ->
  ?source:string ->
  ?load_doc:(unit -> Node.t) ->
  ?stream_source:Xq_xml.Xml_stream.source ->
  unit ->
  report
