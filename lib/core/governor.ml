(* Per-query resource governor.

   A [t] carries a wall-clock deadline, a group-cardinality budget, an
   approximate memory budget and a cooperative cancellation flag. Hot
   loops everywhere in the engine call the zero-argument [tick], which
   is a single atomic load (plus a branch) when no governor is
   installed, so the default configuration pays essentially nothing.
   When a governor is installed, a tick bumps a per-domain counter, and
   every [stride]-th tick reads the cancellation flags and runs the
   expensive checks (clock read, fault draw; the [Gc.quick_stat] memory
   estimate every [mem_stride]-th time) — a limit is therefore detected
   within one stride of ticks of being crossed.

   All state is atomics: the installed governor is shared by every
   domain the [Par] pool spawns, which is what makes cancellation reach
   sibling tasks.

   Fault injection ([XQ_FAULTS=<seed>:<rate>], or [set_faults]) drives
   two deterministic splitmix64 streams: one consulted by [Par] before
   each [Domain.spawn] (an injected failure makes the pool fall back to
   the sequential path), one consulted at governor tick points (an
   injected trip raises the same [XQENG0002] a real allocation-pressure
   trip would). Both are designed so an injected run either completes
   byte-identically to the clean run or fails closed with a structured
   [XQENG*] error. *)

module Xerror = Xq_xdm.Xerror

type trip_kind = Timeout | Memory | Groups | Cancelled | Input | SpillIo | ReadIo

let kind_index = function
  | Timeout -> 0
  | Memory -> 1
  | Groups -> 2
  | Cancelled -> 3
  | Input -> 4
  | SpillIo -> 5
  | ReadIo -> 6

let kind_name = function
  | Timeout -> "timeout"
  | Memory -> "memory"
  | Groups -> "groups"
  | Cancelled -> "cancelled"
  | Input -> "input"
  | SpillIo -> "spill-io"
  | ReadIo -> "read-io"

let n_kinds = 7

type t = {
  deadline : float;  (* absolute wall-clock seconds; [infinity] = none *)
  max_groups : int;  (* [max_int] = none *)
  max_mem_bytes : int;  (* [max_int] = none *)
  spill_watermark : int;  (* soft pressure threshold on charged bytes;
                             [max_int] = spilling off *)
  max_input_bytes : int option;
  max_depth : int option;
  baseline_heap_words : int Atomic.t;  (* reset by [rebaseline] *)
  ticks : int Atomic.t;
  groups : int Atomic.t;
  charged : int Atomic.t;  (* counted materialization bytes (Key/Group) *)
  peak_mem : int Atomic.t;
  cancelled : bool Atomic.t;
  aborts : int Atomic.t;  (* sibling-failure aborts held by Par.run_tasks *)
  trips : int Atomic.t array;  (* per trip_kind *)
  injected_allocs : int Atomic.t;
  spilled_bytes : int Atomic.t;
  spill_files : int Atomic.t;
  repartitions : int Atomic.t;
  stream_mode : bool Atomic.t;
      (* set by the pipeline when this query executes over a streamed
         document: spilled tuples then encode detached subtrees by value
         (see Binio) so spilling actually releases their memory *)
}

(* How many ticks between expensive checks (clock, fault draw). *)
let stride = 64

(* [Gc.quick_stat] aggregates across domains and costs ~1µs, so the
   Gc-delta memory estimate runs only every [mem_stride]-th slow check
   (every [stride * mem_stride] = 4096 ticks, which amortizes to well
   under a nanosecond per tick). Counted [charge_bytes] are still
   checked immediately. *)
let mem_stride = 64

let now () = Unix.gettimeofday ()

let word_bytes = Sys.word_size / 8

(* [Gc.quick_stat]'s [heap_words] is refreshed by major-GC slices and
   reads 0 until the first one runs, so a baseline sampled early in the
   process would charge the runtime's whole startup heap (a few MB)
   against the query budget. Fall back to [Gc.stat] — which computes an
   accurate sample and refreshes the cached one — only on the stale-zero
   reading, keeping the common case at quick_stat cost. *)
let heap_words_now () =
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > 0 then h else (Gc.stat ()).Gc.heap_words

let create ?timeout_ms ?max_groups ?max_mem_mb ?spill_watermark_bytes
    ?max_input_bytes ?max_depth () =
  let max_mem_bytes =
    match max_mem_mb with
    | Some n when n >= 0 -> n * 1024 * 1024
    | Some _ | None -> max_int
  in
  {
    deadline =
      (match timeout_ms with
       | Some ms when ms > 0 -> now () +. (float_of_int ms /. 1000.0)
       | Some _ | None -> infinity);
    max_groups =
      (match max_groups with Some n when n >= 0 -> n | Some _ | None -> max_int);
    max_mem_bytes;
    spill_watermark =
      (match spill_watermark_bytes with
       | Some n when n >= 0 -> n
       | Some _ | None -> max_int);
    max_input_bytes;
    max_depth;
    baseline_heap_words = Atomic.make (heap_words_now ());
    ticks = Atomic.make 0;
    groups = Atomic.make 0;
    charged = Atomic.make 0;
    peak_mem = Atomic.make 0;
    cancelled = Atomic.make false;
    aborts = Atomic.make 0;
    trips = Array.init n_kinds (fun _ -> Atomic.make 0);
    injected_allocs = Atomic.make 0;
    spilled_bytes = Atomic.make 0;
    spill_files = Atomic.make 0;
    repartitions = Atomic.make 0;
    stream_mode = Atomic.make false;
  }

(* Reset the Gc-delta baseline to the current heap: the CLI calls this
   after loading the input document, so --max-mem budgets the query's own
   materializations (the input is governed separately by XQ_MAX_INPUT). *)
let rebaseline g = Atomic.set g.baseline_heap_words (heap_words_now ())

(* --- fault injection ----------------------------------------------------- *)

type faults = {
  f_rate : float;
  f_seed : int;
  f_spawn : int64 Atomic.t;
  f_alloc : int64 Atomic.t;
  f_io : int64 Atomic.t;
  f_conn : int64 Atomic.t;
  f_crash : int64 Atomic.t;
  f_read : int64 Atomic.t;
}

let parse_faults s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let seed = String.sub s 0 i
    and rate = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt (String.trim seed),
           float_of_string_opt (String.trim rate))
    with
    | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
      Some
        {
          f_rate = rate;
          f_seed = seed;
          f_spawn = Atomic.make (Int64.of_int seed);
          f_alloc = Atomic.make (Int64.of_int (seed + 0x51ed));
          (* distinct offset keeps the spawn/alloc streams — and so the
             outcomes of every pre-spill fault test — unchanged *)
          f_io = Atomic.make (Int64.of_int (seed + 0x10f0));
          f_conn = Atomic.make (Int64.of_int (seed + 0x701c));
          f_crash = Atomic.make (Int64.of_int (seed + 0xc4a5));
          f_read = Atomic.make (Int64.of_int (seed + 0x5ead));
        }
    | _ -> None)

let faults_config : faults option Atomic.t = Atomic.make None
let faults_initialized = Atomic.make false

let faults () =
  if not (Atomic.get faults_initialized) then begin
    (match Sys.getenv_opt "XQ_FAULTS" with
     | Some s -> Atomic.set faults_config (parse_faults s)
     | None -> ());
    Atomic.set faults_initialized true
  end;
  Atomic.get faults_config

let set_faults ~seed ~rate =
  Atomic.set faults_config (parse_faults (Printf.sprintf "%d:%f" seed rate));
  Atomic.set faults_initialized true

let clear_faults () =
  Atomic.set faults_config None;
  Atomic.set faults_initialized true

let faults_enabled () = faults () <> None

(* splitmix64: advance the stream state with a CAS so concurrent domains
   never observe the same draw twice. *)
let splitmix_next st =
  let open Int64 in
  let rec advance () =
    let old = Atomic.get st in
    let z = add old 0x9E3779B97F4A7C15L in
    if Atomic.compare_and_set st old z then z else advance ()
  in
  let z = advance () in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A uniform draw in [0,1) from the top 53 bits. *)
let draw st =
  Int64.to_float (Int64.shift_right_logical (splitmix_next st) 11)
  /. 9007199254740992.0

let spawn_fault () =
  match faults () with
  | None -> false
  | Some f -> draw f.f_spawn < f.f_rate

(* Drawn by [Spill] before each file open and each frame write; [Some
   seed] means "pretend the I/O operation failed". *)
let io_fault () =
  match faults () with
  | None -> None
  | Some f -> if draw f.f_io < f.f_rate then Some f.f_seed else None

(* Drawn by the query server around connection reads and response
   writes; [Some seed] means "pretend the peer vanished here". A
   distinct splitmix64 stream so arming it perturbs neither the
   spawn/alloc draws nor the spill I/O stream. *)
let conn_fault () =
  match faults () with
  | None -> None
  | Some f -> if draw f.f_conn < f.f_rate then Some f.f_seed else None

(* Drawn by the streaming XML reader before each chunk refill; [Some
   seed] means "this read goes wrong here" (the reader decides how:
   short read, EIO, truncation or a torn read, cycling deterministically
   so every mode is exercised). A sixth distinct splitmix64 stream, so
   arming it perturbs none of the established streams' draws. *)
let read_fault () =
  match faults () with
  | None -> None
  | Some f -> if draw f.f_read < f.f_rate then Some f.f_seed else None

(* The worker-crash stream is doubly gated: XQ_FAULTS must be armed
   *and* the process must have opted in with [arm_crash_faults] (the
   daemon does, under XQ_CRASH=1 or --chaos-crash). A crash fault makes
   the serving process kill itself abruptly mid-query, which is only
   survivable under a supervisor — an in-process test suite that merely
   arms XQ_FAULTS for the connection stream must never draw one. *)
let crash_armed = Atomic.make false

(* The crash stream may run at its own rate: chaos harnesses want rare
   alloc/conn noise (the alloc stream draws dozens of times per query)
   but frequent worker crashes, which a single shared rate cannot
   express. [None] falls back to the shared XQ_FAULTS rate. *)
let crash_rate : float option Atomic.t = Atomic.make None

let arm_crash_faults ?rate () =
  Atomic.set crash_rate rate;
  Atomic.set crash_armed true

let disarm_crash_faults () =
  Atomic.set crash_armed false;
  Atomic.set crash_rate None

let crash_fault () =
  if not (Atomic.get crash_armed) then None
  else
    match faults () with
    | None -> None
    | Some f ->
      let rate =
        match Atomic.get crash_rate with Some r -> r | None -> f.f_rate
      in
      if draw f.f_crash < rate then Some f.f_seed else None

(* --- the installed governor --------------------------------------------- *)

(* Two installation scopes. [active] is the historical process-wide
   slot: one query at a time, shared by every domain, which is what the
   CLI and the tests use. [scoped_key] is a per-domain overlay for the
   query server, where several queries run concurrently on dedicated
   worker domains and each must tick against its own budgets; a scoped
   governor shadows the process-wide one on its domain only, and
   [Par.run_tasks] re-installs the caller's scoped governor on every
   domain it spawns so a query's whole fork-join tree shares one
   budget. [scoped_installs] gates the DLS lookup: when no scoped
   governor exists anywhere (every non-server process), the hot path
   stays the single atomic load it has always been.

   Scoped installation is per-*domain*, not per-thread: sys-threads of
   one domain share its DLS slot, so a server must run each scoped
   query on its own worker domain (or serialize). *)
let active : t option Atomic.t = Atomic.make None

let scoped_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let scoped_installs = Atomic.make 0

let scoped_current () =
  if Atomic.get scoped_installs > 0 then Domain.DLS.get scoped_key else None

(* The governor the calling domain executes under: its scoped overlay
   if it has one, else the process-wide slot. *)
let current_gov () =
  match scoped_current () with
  | Some _ as s -> s
  | None -> Atomic.get active

(* Per-domain tick counters. The hot path must not do an atomic RMW on
   a shared cache line (sorts tick from inside their comparators, and
   under [Par] several domains tick at once), so each domain counts in
   its own cache-line-padded slot and only reads the shared flags — and
   runs the expensive checks — once per [stride]. Slots are indexed by
   domain id modulo the table size; a collision between two live domains
   merely skews the stride phase, it cannot corrupt anything. The
   calling domain's counter is reset whenever a governor is installed so
   that fault draws are deterministic per single-domain run. *)
let n_slots = 128
let slot_pad = 8 (* ints: one 64-byte cache line per slot *)
let counters = Array.make (n_slots * slot_pad) 0
let slot () = ((Domain.self () :> int) land (n_slots - 1)) * slot_pad
let reset_local_ticks () = Array.unsafe_set counters (slot ()) 0

let install g =
  Atomic.set active (Some g);
  reset_local_ticks ()

let uninstall () = Atomic.set active None
let current () = current_gov ()

let with_governor g f =
  let prev = Atomic.get active in
  Atomic.set active (Some g);
  reset_local_ticks ();
  Fun.protect ~finally:(fun () -> Atomic.set active prev) f

let with_scoped_governor g f =
  let prev = Domain.DLS.get scoped_key in
  Domain.DLS.set scoped_key (Some g);
  Atomic.incr scoped_installs;
  reset_local_ticks ();
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr scoped_installs;
      Domain.DLS.set scoped_key prev)
    f

let with_scoped_opt g f =
  match g with None -> f () | Some g -> with_scoped_governor g f

(* --- trips --------------------------------------------------------------- *)

let trip g kind code msg =
  Atomic.incr g.trips.(kind_index kind);
  Xerror.fail code msg

let cancel g = Atomic.set g.cancelled true
let cancelled g = Atomic.get g.cancelled

let begin_abort () =
  match current_gov () with
  | None -> ()
  | Some g -> Atomic.incr g.aborts

let end_abort () =
  match current_gov () with
  | None -> ()
  | Some g -> Atomic.decr g.aborts

let pending_aborts g = Atomic.get g.aborts

(* --- memory pressure ------------------------------------------------------ *)

(* Per-domain pressure callbacks. A grouping operator registers a
   callback for the duration of its build; when this domain's charges —
   or the whole-process memory estimate, checked on the slow tick path —
   cross the soft watermark the callback runs (it spills and uncharges)
   before the hard budget is checked. Slots are indexed like the tick
   counters, but each slot stores the registering domain's id next to
   the callback and [fire_pressure] runs it only on that very domain: a
   callback mutates its owner's hash tables and spill files, so running
   it from a colliding domain (ids equal mod [n_slots]) would be an
   unsynchronized cross-domain race. A collision instead makes the
   dispossessed domain skip its pressure events — always safe, the hard
   budget check still runs. The [in_pressure] guard stops a callback's
   own charges from re-entering it. *)
let pressure_cbs : (int * (unit -> unit)) option Atomic.t array =
  Array.init n_slots (fun _ -> Atomic.make None)

let in_pressure = Array.init n_slots (fun _ -> Atomic.make false)
let cb_slot () = (Domain.self () :> int) land (n_slots - 1)

let with_pressure_callback f body =
  let i = cb_slot () in
  let me = (Domain.self () :> int) in
  let prev = Atomic.get pressure_cbs.(i) in
  (* Only this domain's own shadowed registration is ever restored:
     re-installing a colliding domain's entry after that domain's scope
     may have exited would resurrect a dead callback. *)
  let restore =
    match prev with Some (id, _) when id = me -> prev | Some _ | None -> None
  in
  Atomic.set pressure_cbs.(i) (Some (me, f));
  Fun.protect
    ~finally:(fun () ->
      (* restore only while we still own the slot; a colliding domain
         that registered after us keeps its callback *)
      match Atomic.get pressure_cbs.(i) with
      | Some (id, _) when id = me -> Atomic.set pressure_cbs.(i) restore
      | Some _ | None -> ())
    body

(* Run the current domain's callback, if it still owns its slot (the
   caller has already established pressure). *)
let fire_pressure () =
  let i = cb_slot () in
  let me = (Domain.self () :> int) in
  match Atomic.get pressure_cbs.(i) with
  | Some (id, f) when id = me ->
    if not (Atomic.get in_pressure.(i)) then begin
      Atomic.set in_pressure.(i) true;
      Fun.protect ~finally:(fun () -> Atomic.set in_pressure.(i) false) f
    end
  | Some _ | None -> ()

let maybe_pressure g =
  if Atomic.get g.charged > g.spill_watermark then fire_pressure ()

(* --- the check itself ---------------------------------------------------- *)

let mem_estimate g =
  let heap = (Gc.quick_stat ()).Gc.heap_words in
  let gc_bytes = (heap - Atomic.get g.baseline_heap_words) * word_bytes in
  max 0 gc_bytes + Atomic.get g.charged

let rec raise_peak g est =
  let peak = Atomic.get g.peak_mem in
  if est > peak && not (Atomic.compare_and_set g.peak_mem peak est) then
    raise_peak g est

let slow_check g ~mem =
  if g.deadline < infinity && now () > g.deadline then
    trip g Timeout Xerror.XQENG0001 "wall-clock deadline exceeded";
  if mem && (g.max_mem_bytes < max_int || g.spill_watermark < max_int) then begin
    let est = mem_estimate g in
    (* Gc growth counts toward pressure, not just charged bytes: a flush
       frees keys and group cells so the heap is reused instead of
       growing, which is what actually averts the hard trip when the
       estimate is Gc-dominated. Pressure fires with headroom (7/8 of
       the watermark) so relief — a flush plus a collection — runs
       before the watermark itself is crossed, and both the budget check
       and the peak statistic read the post-relief estimate: pressure
       exists to shed reusable memory before the check, and a recorded
       peak above a budget that never tripped would contradict the
       report. *)
    let est =
      if est > g.spill_watermark - (g.spill_watermark / 8) then begin
        fire_pressure ();
        mem_estimate g
      end
      else est
    in
    raise_peak g est;
    if est > g.max_mem_bytes then
      trip g Memory Xerror.XQENG0002
        (Printf.sprintf "memory budget exceeded (~%d bytes used, budget %d)"
           est g.max_mem_bytes)
  end;
  match faults () with
  | Some f when draw f.f_alloc < f.f_rate ->
    Atomic.incr g.injected_allocs;
    trip g Memory Xerror.XQENG0002
      (Printf.sprintf "injected allocation-pressure fault (XQ_FAULTS seed %d)"
         f.f_seed)
  | Some _ | None -> ()

let check g =
  let i = slot () in
  let c = Array.unsafe_get counters i + 1 in
  Array.unsafe_set counters i c;
  if c land (stride - 1) = 0 then begin
    if Atomic.get g.cancelled then
      trip g Cancelled Xerror.XQENG0004 "query cancelled";
    if Atomic.get g.aborts > 0 then
      trip g Cancelled Xerror.XQENG0004
        "cancelled: a sibling parallel task failed";
    let mem = c >= stride * mem_stride in
    if mem then Array.unsafe_set counters i 0;
    ignore (Atomic.fetch_and_add g.ticks stride);
    slow_check g ~mem
  end

let tick () =
  match current_gov () with None -> () | Some g -> check g

(* --- budget feeds -------------------------------------------------------- *)

let note_groups g n =
  let total = Atomic.fetch_and_add g.groups n + n in
  if total > g.max_groups then
    trip g Groups Xerror.XQENG0003
      (Printf.sprintf "group cardinality cap exceeded (%d > %d)" total
         g.max_groups)

let count_groups n =
  match current_gov () with None -> () | Some g -> note_groups g n

(* --- budget feeds (memory) ------------------------------------------------ *)

let note_charge g n =
  let c = Atomic.fetch_and_add g.charged n + n in
  if c > g.spill_watermark then maybe_pressure g;
  (* re-read: a pressure callback uncharges what it spilled *)
  let c = if c > g.spill_watermark then Atomic.get g.charged else c in
  if c > g.max_mem_bytes then
    trip g Memory Xerror.XQENG0002
      (Printf.sprintf
         "memory budget exceeded (%d materialized bytes, budget %d)" c
         g.max_mem_bytes)

let charge_bytes n =
  match current_gov () with None -> () | Some g -> note_charge g n

let uncharge_bytes n =
  match current_gov () with
  | None -> ()
  | Some g -> ignore (Atomic.fetch_and_add g.charged (-n))

(* --- resident-byte accounting (query server) ------------------------------ *)

(* The server's shared caches (resident documents, compiled plans)
   account their bytes against a long-lived "house" governor that is
   never installed anywhere: plain counters feeding the admission
   gauge, with no pressure callbacks (nothing to spill — residents are
   evicted, not flushed) and no hard trip (admission control rejects
   new work instead of killing the cache). *)

let charge_on g n =
  let c = Atomic.fetch_and_add g.charged n + n in
  let peak = Atomic.get g.peak_mem in
  if c > peak then ignore (Atomic.compare_and_set g.peak_mem peak c)

let uncharge_on g n = ignore (Atomic.fetch_and_add g.charged (-n))

let charged_on g = Atomic.get g.charged

(* The admission gauge: is [g]'s memory estimate (counted resident
   bytes plus the Gc-heap delta from its baseline) past its soft
   watermark? Same estimate and same watermark semantics as the spill
   pressure machinery, applied to a process instead of a query. *)
let pressure_on g =
  g.spill_watermark < max_int && mem_estimate g > g.spill_watermark

let spill_armed () =
  match current_gov () with
  | None -> false
  | Some g -> g.spill_watermark < max_int

(* The installed soft watermark in bytes ([max_int] when off); spill
   paths size their replay/repartition thresholds from it. *)
let spill_watermark () =
  match current_gov () with None -> max_int | Some g -> g.spill_watermark

let under_pressure () =
  match current_gov () with
  | None -> false
  | Some g -> Atomic.get g.charged > g.spill_watermark

let note_spill ~bytes ~files ~repartitions =
  match current_gov () with
  | None -> ()
  | Some g ->
    if bytes <> 0 then ignore (Atomic.fetch_and_add g.spilled_bytes bytes);
    if files <> 0 then ignore (Atomic.fetch_and_add g.spill_files files);
    if repartitions <> 0 then
      ignore (Atomic.fetch_and_add g.repartitions repartitions)

(* Record a spill-I/O trip on the installed governor (if any) and raise
   XQENG0006. Used by [Spill] for real I/O errors and injected faults
   alike, so both fail closed through the same path. *)
let spill_trip msg =
  (match current_gov () with
   | Some g -> Atomic.incr g.trips.(kind_index SpillIo)
   | None -> ());
  Xerror.fail Xerror.XQENG0006 msg

(* --- input limits (XML parser) ------------------------------------------- *)

let input_limits () =
  match current_gov () with
  | None -> (None, None)
  | Some g -> (g.max_depth, g.max_input_bytes)

let input_trip msg =
  (match current_gov () with
   | Some g -> Atomic.incr g.trips.(kind_index Input)
   | None -> ());
  Xerror.fail Xerror.XQENG0005 msg

(* Record a read-I/O trip on the installed governor (if any) and raise
   XQENG0008. Used by the streaming XML reader for real read errors and
   injected faults alike, mirroring [spill_trip]. *)
let read_trip msg =
  (match current_gov () with
   | Some g -> Atomic.incr g.trips.(kind_index ReadIo)
   | None -> ());
  Xerror.fail Xerror.XQENG0008 msg

(* --- streamed-execution mode ---------------------------------------------- *)

let set_stream_mode g b = Atomic.set g.stream_mode b

let stream_mode_on g = Atomic.get g.stream_mode

(* Is the calling domain executing a streamed query? Consulted by the
   grouping spill codec to decide whether detached subtrees encode by
   value (releasing their memory) instead of by registry reference. The
   flag rides the governor so [Par]'s scoped re-installation carries it
   to every domain of the query's fork-join tree. *)
let stream_detach () =
  match current_gov () with
  | None -> false
  | Some g -> Atomic.get g.stream_mode

(* --- stats ---------------------------------------------------------------- *)

type stats = {
  s_ticks : int;
  s_groups : int;
  s_charged_bytes : int;
  s_peak_mem_bytes : int;
  s_trips : (trip_kind * int) list;
  s_injected_allocs : int;
  s_spilled_bytes : int;
  s_spill_files : int;
  s_repartitions : int;
}

let stats g =
  {
    s_ticks = Atomic.get g.ticks;
    s_groups = Atomic.get g.groups;
    s_charged_bytes = Atomic.get g.charged;
    s_peak_mem_bytes = Atomic.get g.peak_mem;
    s_trips =
      List.filter_map
        (fun k ->
          let n = Atomic.get g.trips.(kind_index k) in
          if n > 0 then Some (k, n) else None)
        [ Timeout; Memory; Groups; Cancelled; Input; SpillIo; ReadIo ];
    s_injected_allocs = Atomic.get g.injected_allocs;
    s_spilled_bytes = Atomic.get g.spilled_bytes;
    s_spill_files = Atomic.get g.spill_files;
    s_repartitions = Atomic.get g.repartitions;
  }

let summary g =
  let s = stats g in
  let trips =
    if s.s_trips = [] then "none"
    else
      String.concat ","
        (List.map (fun (k, n) -> Printf.sprintf "%s=%d" (kind_name k) n)
           s.s_trips)
  in
  Printf.sprintf
    "governor: ticks=%d groups=%d charged=%dB peak-mem=%dB trips=%s%s%s"
    s.s_ticks s.s_groups s.s_charged_bytes s.s_peak_mem_bytes trips
    (if s.s_injected_allocs > 0 then
       Printf.sprintf " injected-allocs=%d" s.s_injected_allocs
     else "")
    (if s.s_spill_files > 0 then
       Printf.sprintf " spilled=%dB spill-files=%d repartitions=%d"
         s.s_spilled_bytes s.s_spill_files s.s_repartitions
     else "")

(* --- building a governor from CLI flags and the environment --------------- *)

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | Some _ | None -> None)

let of_limits ?timeout_ms ?max_groups ?max_mem_mb ?spill_watermark_bytes () =
  let first a b = match a with Some _ -> a | None -> b in
  let timeout_ms = first timeout_ms (env_int "XQ_TIMEOUT") in
  let max_groups = first max_groups (env_int "XQ_MAX_GROUPS") in
  let max_mem_mb = first max_mem_mb (env_int "XQ_MAX_MEM") in
  let spill_watermark_bytes =
    first spill_watermark_bytes
      (Option.map (fun mb -> mb * 1024 * 1024) (env_int "XQ_SPILL_AT"))
  in
  (* CLI semantics: a hard memory budget arms spilling at half the trip
     point, so governed queries degrade before they die. In-process
     callers of [create] get no such default — existing budget tests
     keep their exact hard-trip behaviour. *)
  let spill_watermark_bytes =
    match spill_watermark_bytes, max_mem_mb with
    | None, Some mb -> Some (mb * 1024 * 1024 / 2)
    | w, _ -> w
  in
  let max_input_bytes = env_int "XQ_MAX_INPUT" in
  let max_depth = env_int "XQ_MAX_DEPTH" in
  if
    timeout_ms = None && max_groups = None && max_mem_mb = None
    && spill_watermark_bytes = None && max_input_bytes = None
    && max_depth = None
    && not (faults_enabled ())
  then None
  else
    Some
      (create ?timeout_ms ?max_groups ?max_mem_mb ?spill_watermark_bytes
         ?max_input_bytes ?max_depth ())
