module Xdm = Xq_xdm
module Xml = Xq_xml
module Lang = Xq_lang
module Engine = Xq_engine
module Rewrite = Xq_rewrite
module Algebra = Xq_algebra
module Par = Xq_par.Par
module Batch = Xq_par.Batch
module Governor = Xq_governor.Governor
module Spill = Xq_spill.Spill
module Refimpl = Xq_refimpl.Refimpl
module Qgen = Xq_qgen.Qgen
module Shrink = Xq_qgen.Shrink
module Fuzz = Xq_fuzzer.Fuzz
module Pipeline = Xq_pipeline.Pipeline

type doc = Xq_xdm.Node.t
type result = Xq_xdm.Xseq.t

let load_string s = Xq_xml.Xml_parse.parse s
let load_file path = Xq_xml.Xml_parse.parse_file path

let parse src = Xq_lang.Parser.parse_query src
let check q = Xq_lang.Static.check_query q

let run_query ?check ?use_index ?documents ?collections ?default_collection
    doc q =
  Xq_engine.Eval.eval_query ?check ?use_index ?documents ?collections
    ?default_collection ~context_node:doc q

let run ?use_index ?documents ?collections ?default_collection doc src =
  run_query ?use_index ?documents ?collections ?default_collection doc
    (parse src)

let run_rewritten doc src =
  let q = parse src in
  Xq_lang.Static.check_query q;
  let q' = Xq_rewrite.Rewrite.rewrite_query q in
  run_query ~check:false doc q'

let to_xml ?indent seq = Xq_xml.Serialize.sequence ?indent seq

let to_strings seq = List.map Xq_xdm.Item.string_value seq

let length = List.length
