(** Per-query resource governor: wall-clock deadlines, cardinality and
    memory budgets, cooperative cancellation, and the seeded
    fault-injection hook used by the robustness test suites.

    The engine's hot loops call {!tick}, which is a single atomic load
    when no governor is installed. Install one with {!with_governor}
    (or build one from CLI flags / environment with {!of_limits});
    while installed, each tick bumps a cache-line-padded per-domain
    counter, and every 64th tick reads the cancellation flags and runs
    the expensive checks (deadline, fault draw, and — less often — the
    Gc memory estimate), so a crossed limit is detected within one
    stride of ticks without any shared read-modify-write on the hot
    path. Trips raise [Xerror.Error] with the [XQENG*] codes:
    [XQENG0001] timeout, [XQENG0002] memory, [XQENG0003] group
    cardinality, [XQENG0004] cancelled, [XQENG0005] input limit,
    [XQENG0006] spill I/O, [XQENG0008] streamed-read I/O. *)

type t

type trip_kind =
  | Timeout
  | Memory
  | Groups
  | Cancelled
  | Input
  | SpillIo
  | ReadIo

val kind_name : trip_kind -> string

(** [create ?timeout_ms ?max_groups ?max_mem_mb ?spill_watermark_bytes
    ?max_input_bytes ?max_depth ()] builds a governor. Omitted limits
    are unlimited. The memory budget combines a [Gc.quick_stat] heap
    delta from the governor's creation point with bytes explicitly
    counted via {!charge_bytes}. [spill_watermark_bytes] is the soft
    threshold on counted bytes above which pressure callbacks fire;
    when omitted, spilling stays off (only {!of_limits} defaults it,
    to half the memory budget). *)
val create :
  ?timeout_ms:int ->
  ?max_groups:int ->
  ?max_mem_mb:int ->
  ?spill_watermark_bytes:int ->
  ?max_input_bytes:int ->
  ?max_depth:int ->
  unit ->
  t

(** Merge explicit limits with the environment ([XQ_TIMEOUT],
    [XQ_MAX_GROUPS], [XQ_MAX_MEM], [XQ_SPILL_AT] in MB, [XQ_MAX_INPUT],
    [XQ_MAX_DEPTH]). Returns [None] when no limit is set anywhere and
    fault injection is off — i.e. when running governed would be pure
    overhead. Returns [Some] of an unlimited governor when only faults
    are configured, so tick points are armed for injection. When a
    memory budget is set and no watermark is given, the spill watermark
    defaults to half the budget (degrade before dying); pass
    [XQ_NO_SPILL=1] / [--no-spill] to get pure hard-trip behaviour. *)
val of_limits :
  ?timeout_ms:int ->
  ?max_groups:int ->
  ?max_mem_mb:int ->
  ?spill_watermark_bytes:int ->
  unit ->
  t option

(** Reset the Gc-delta memory baseline to the current heap. The CLI
    calls this after parsing the input document so [--max-mem] budgets
    the query's own materializations rather than the document (which
    [XQ_MAX_INPUT] governs separately). *)
val rebaseline : t -> unit

(** {1 Installation} *)

(** [with_governor g f] installs [g] as the process-wide active
    governor for the duration of [f], restoring the previous one on
    exit (normal or exceptional). The active governor is shared by all
    domains, which is what lets a trip in one worker cancel its
    siblings. *)
val with_governor : t -> (unit -> 'a) -> 'a

val install : t -> unit
val uninstall : unit -> unit

(** The governor the calling domain currently executes under: its
    scoped overlay if one is installed (see {!with_scoped_governor}),
    else the process-wide governor. *)
val current : unit -> t option

(** [with_scoped_governor g f] installs [g] for the duration of [f] on
    the {e calling domain only}, shadowing any process-wide governor
    there. This is the query server's multiplexing primitive: each
    concurrent query runs on its own worker domain under its own scoped
    governor, so budgets, deadlines and cancellation stay per-query
    while other domains (and other queries) are untouched.
    [Par.run_tasks] re-installs the caller's scoped governor on every
    domain it spawns, so a scoped query's fork-join tree shares one
    budget. Scoping is per-domain, not per-thread: sys-threads sharing
    a domain share its slot, so callers must give each scoped query a
    dedicated domain (or serialize). *)
val with_scoped_governor : t -> (unit -> 'a) -> 'a

(** [with_scoped_opt (Some g) f] is [with_scoped_governor g f];
    [with_scoped_opt None f] is [f ()]. *)
val with_scoped_opt : t option -> (unit -> 'a) -> 'a

(** The calling domain's scoped governor, if any — what [Par] captures
    at fork time. *)
val scoped_current : unit -> t option

(** {1 Tick points} *)

(** The cheap check called from hot loops. No-op (one atomic load) when
    no governor is installed. May raise [Xerror.Error] with an
    [XQENG*] code. *)
val tick : unit -> unit

(** [check g] is {!tick} against an explicit governor. *)
val check : t -> unit

(** [count_groups n] records [n] newly created groups against the
    installed governor's cardinality budget; raises [XQENG0003] when
    the budget is exceeded. No-op when no governor is installed. *)
val count_groups : int -> unit

(** [charge_bytes n] counts [n] materialized bytes (canonical keys,
    group cells) against the memory budget, checking it immediately;
    raises [XQENG0002] on exhaustion. When the running total crosses
    the soft spill watermark, the current domain's pressure callback
    (see {!with_pressure_callback}) runs first, and the hard budget is
    re-checked against whatever the callback left charged. No-op when
    uninstalled. *)
val charge_bytes : int -> unit

(** [uncharge_bytes n] returns [n] previously charged bytes to the
    budget — called after a spill writes state out of memory. No-op
    when uninstalled. *)
val uncharge_bytes : int -> unit

(** {1 Resident-byte accounting (query server)}

    The server's shared caches charge their resident bytes against an
    explicit long-lived "house" governor that is never installed:
    plain counters feeding the admission gauge — no pressure callbacks,
    no hard trip (admission rejects new work instead of killing the
    cache). *)

(** Count [n] resident bytes on [g] (peak tracked, nothing raised). *)
val charge_on : t -> int -> unit

val uncharge_on : t -> int -> unit
val charged_on : t -> int

(** [pressure_on g]: is [g]'s memory estimate (counted bytes + Gc-heap
    delta from its baseline) past its soft watermark? The spill
    machinery's pressure gauge applied to a whole process — the query
    server's admission signal. Always [false] when [g] has no
    watermark. *)
val pressure_on : t -> bool

(** {1 Memory pressure and spilling} *)

(** [with_pressure_callback f body] registers [f] as the current
    domain's pressure callback for the duration of [body]: whenever a
    {!charge_bytes} on this domain pushes the counted total past the
    soft watermark, [f] runs (outside any lock, re-entrancy guarded)
    and is expected to spill state and {!uncharge_bytes} it. Nested
    registrations on one domain shadow and restore. [f] only ever runs
    on the registering domain; if two live domains collide in the slot
    table (ids equal mod its size) the dispossessed one skips its
    pressure events — safe, since the hard budget check still runs. *)
val with_pressure_callback : (unit -> unit) -> (unit -> 'a) -> 'a

(** [true] when a governor with a finite spill watermark is installed
    — i.e. spilling can be triggered at all. *)
val spill_armed : unit -> bool

(** The installed soft watermark in bytes, [max_int] when spilling is
    off. Spill paths derive replay/repartition thresholds from it. *)
val spill_watermark : unit -> int

(** [true] while counted bytes exceed the soft watermark. *)
val under_pressure : unit -> bool

(** [note_spill ~bytes ~files ~repartitions] accumulates spill activity
    into the installed governor's stats. No-op when uninstalled. *)
val note_spill : bytes:int -> files:int -> repartitions:int -> unit

(** Record a spill-I/O trip on the installed governor (if any) and
    raise [XQENG0006] with [msg]. *)
val spill_trip : string -> 'a

(** {1 Cancellation} *)

(** [cancel g] sets the sticky cancellation flag; every domain ticking
    against [g] raises [XQENG0004] within one stride of ticks. *)
val cancel : t -> unit

val cancelled : t -> bool

(** Scoped sibling-abort marks, used by [Par.run_tasks]: while at least
    one abort mark is held, ticks raise [XQENG0004]; marks are released
    once the failing pool has joined, so the enclosing query can still
    report the original error. No-ops when no governor is installed. *)
val begin_abort : unit -> unit

val end_abort : unit -> unit
val pending_aborts : t -> int

(** {1 Input limits (XML parser)} *)

(** [(max_depth, max_input_bytes)] of the installed governor, or
    [(None, None)]. *)
val input_limits : unit -> int option * int option

(** Record an input-limit trip on the installed governor (if any) and
    raise [XQENG0005]. *)
val input_trip : string -> 'a

(** Record a read-I/O trip on the installed governor (if any) and raise
    [XQENG0008] with [msg] — the streaming XML reader's analogue of
    {!spill_trip}, for real read errors and injected faults alike. *)
val read_trip : string -> 'a

(** {1 Streamed-execution mode}

    The pipeline throws this switch on a query's governor when the
    query executes over a streamed document. While set, the grouping
    spill codec encodes {e detached} subtrees (nodes whose tree root is
    not a document — exactly what the streaming reader emits) by value
    rather than by registry reference, so spilling group members
    actually releases their memory instead of pinning the trees. The
    flag rides the governor, so [Par]'s scoped re-installation extends
    it to every domain of the query's fork-join tree. *)

val set_stream_mode : t -> bool -> unit

val stream_mode_on : t -> bool

(** [true] when the calling domain's governor is in streamed mode. *)
val stream_detach : unit -> bool

(** {1 Fault injection} *)

(** [set_faults ~seed ~rate] arms the deterministic fault streams, as
    does the environment variable [XQ_FAULTS=<seed>:<rate>]. [rate] is
    a probability in [0,1] applied independently to each draw. *)
val set_faults : seed:int -> rate:float -> unit

val clear_faults : unit -> unit
val faults_enabled : unit -> bool

(** Drawn by [Par] before each [Domain.spawn]; [true] means "pretend
    the spawn failed" and take the sequential fallback. Always [false]
    when faults are off. *)
val spawn_fault : unit -> bool

(** Drawn by [Spill] before file opens and frame writes; [Some seed]
    means "pretend this I/O operation failed" (the seed goes into the
    error message). A distinct splitmix64 stream from {!spawn_fault}
    and the allocation-pressure stream, so arming it does not perturb
    their draws. Always [None] when faults are off. *)
val io_fault : unit -> int option

(** Drawn by the query server around connection reads and response
    writes; [Some seed] means "pretend the client vanished here" — the
    server must drop the connection without corrupting any shared
    state. A fourth distinct splitmix64 stream; always [None] when
    faults are off. *)
val conn_fault : unit -> int option

(** Opt the process into worker-crash faults. A drawn crash fault makes
    the serving process kill itself abruptly mid-query — survivable
    only under a supervisor — so the fifth stream is doubly gated:
    [XQ_FAULTS] must be armed {e and} this switch thrown ([xq-server
    serve] throws it under [--chaos-crash]). In-process
    suites that arm [XQ_FAULTS] for the other streams never draw
    one. [rate] overrides the shared [XQ_FAULTS] rate for the crash
    stream only, so a chaos harness can crash often while keeping
    alloc/conn noise rare. *)
val arm_crash_faults : ?rate:float -> unit -> unit

val disarm_crash_faults : unit -> unit

(** Drawn by the query server at worker crash points; [Some seed] means
    "the worker process dies right here". A fifth distinct splitmix64
    stream; always [None] unless both gates are open. *)
val crash_fault : unit -> int option

(** Drawn by the streaming XML reader before each chunk refill; [Some
    seed] means "this read goes wrong here" — the reader cycles
    deterministically through short reads, EIO, truncation and torn
    reads so a seed sweep exercises every mode. A sixth distinct
    splitmix64 stream; always [None] when faults are off. *)
val read_fault : unit -> int option

(** {1 Stats} *)

type stats = {
  s_ticks : int;
      (** ticks observed so far, counted in stride batches (a domain's
          partial stride is not flushed), so a lower bound *)
  s_groups : int;
  s_charged_bytes : int;
  s_peak_mem_bytes : int;
  s_trips : (trip_kind * int) list;  (** only kinds with [n > 0] *)
  s_injected_allocs : int;
  s_spilled_bytes : int;
  s_spill_files : int;
  s_repartitions : int;
}

val stats : t -> stats

(** One-line rendering used by EXPLAIN ANALYZE and [profile]. *)
val summary : t -> string
