let default_size = 4096
let min_size = 1
let max_size = 1 lsl 20
let clamp n = if n < min_size then min_size else if n > max_size then max_size else n

(* 0 = no override; the env value is re-read on each resolution after a
   reset so tests can flip XQ_BATCH without re-execing. *)
let override = Atomic.make 0

let env_size () =
  match Sys.getenv_opt "XQ_BATCH" with
  | None | Some "" -> default_size
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n > 0 -> clamp n | _ -> default_size)

let size () =
  let o = Atomic.get override in
  if o > 0 then o else env_size ()

let set_size = function
  | None -> Atomic.set override 0
  | Some n -> Atomic.set override (clamp n)

let get_override () =
  match Atomic.get override with 0 -> None | n -> Some n

let batched () = size () > 1
