(** Batch-size knob for the vectorized executor.

    The executor moves tuples in vectors of [size ()] between operators;
    governor ticks, domain-pool task grain and key-dictionary interning
    all key off this value. [size () = 1] is the degenerate
    item-at-a-time mode: the batched fast paths (fused path scan, key
    interning, table presizing) disable themselves and execution matches
    the pre-batching engine operation for operation.

    Resolution order: {!set_size} override > [XQ_BATCH] environment
    variable > default 4096. The value is clamped to [1 .. 2^20]. *)

val default_size : int

(** Current batch size. *)
val size : unit -> int

(** [set_size (Some n)] overrides the batch size process-wide (the CLI
    [--batch] flag and the pipeline knob go through this);
    [set_size None] restores env/default resolution. *)
val set_size : int option -> unit

(** The current {!set_size} override, if any — save/restore this around
    a scoped change (a per-request knob must not outlive its request). *)
val get_override : unit -> int option

(** [size () > 1] — whether batched fast paths are enabled. *)
val batched : unit -> bool
