(** A minimal fork-join pool over stdlib [Domain]s.

    Everything here degrades to the plain sequential code path at degree
    1 (the default): no domain is ever spawned, so callers can thread a
    degree unconditionally and pay nothing when parallelism is off.
    Degrees above {!degree_cap} are clamped. *)

val degree_cap : int

(** The process-wide default parallelism degree: an explicit
    {!set_default_degree} override if one was made, else the
    [XQ_PARALLEL] environment variable, else 1. *)
val default_degree : unit -> int

(** Override the default degree for this process (the CLI's
    [--parallel N]). Clamped to [1 .. degree_cap]. *)
val set_default_degree : int -> unit

(** Parse a degree string as [XQ_PARALLEL] would ([None] when invalid or
    < 1). *)
val parse_degree : string -> int option

(** Run all thunks to completion, task 0 on the calling domain and the
    rest on fresh domains. If [Domain.spawn] fails (or a spawn fault is
    injected via [Governor.set_faults] / [XQ_FAULTS]), the affected
    tasks run sequentially on the caller instead — one warning on
    stderr per process, identical output. A failing task marks an abort
    on the installed governor, cancelling siblings at their next
    [Governor.tick]; once all domains have joined the marks are
    released and the lowest-indexed real exception is re-raised
    (sibling [XQENG0004] cancellations only win when nothing else
    failed). *)
val run_tasks : (unit -> unit) array -> unit

(** [map ~degree f src] is [Array.map f src], computed in up to [degree]
    chunks (each at least [min_chunk] elements, default 16). The
    exception raised, if any, is the one sequential left-to-right
    evaluation would have raised first. *)
val map : ?degree:int -> ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** In-place stable sort ([Array.stable_sort] semantics and output,
    byte-identical at any degree): chunks sort concurrently, then merge
    pairwise with ties taken from the left run. [min_chunk] defaults to
    512 — below [2 * min_chunk] elements this is exactly
    [Array.stable_sort]. *)
val sort : ?degree:int -> ?min_chunk:int -> ('a -> 'a -> int) -> 'a array -> unit
