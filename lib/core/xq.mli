(** Public API facade for the XQuery-analytics engine.

    {[
      let doc = Xq.load_string "<bib>…</bib>" in
      let result = Xq.run doc {|
        for $b in //book
        group by $b/publisher into $p
        nest $b/price into $prices
        return <r>{$p}<avg>{avg($prices)}</avg></r> |} in
      print_endline (Xq.to_xml result)
    ]}

    Re-exported submodules give access to every layer: [Xdm] (data
    model), [Xml] (parser/serializer/builder), [Lang] (AST, parser,
    pretty-printer, static checks), [Engine] (evaluator), [Rewrite]
    (implicit-group-by detection). *)

module Xdm = Xq_xdm
module Xml = Xq_xml
module Lang = Xq_lang
module Engine = Xq_engine
module Rewrite = Xq_rewrite
module Algebra = Xq_algebra

(** Fork-join domain pool behind [--parallel] / [XQ_PARALLEL]. *)
module Par = Xq_par.Par

(** Executor batch size behind [--batch] / [XQ_BATCH]. *)
module Batch = Xq_par.Batch

(** Per-query resource governor: deadlines, group/memory budgets,
    cooperative cancellation, fault injection ([XQ_FAULTS]). *)
module Governor = Xq_governor.Governor

(** Crash-safe spill files behind external grouping
    ([--spill-at] / [XQ_SPILL_AT], [--spill-dir] / [XQ_SPILL_DIR],
    [--no-spill] / [XQ_NO_SPILL]). *)
module Spill = Xq_spill.Spill

(** Naive reference evaluator — the differential-fuzzing oracle. *)
module Refimpl = Xq_refimpl.Refimpl

(** Seeded grammar-driven query/document generator. *)
module Qgen = Xq_qgen.Qgen

(** Greedy delta-debugging shrinker for failing cases. *)
module Shrink = Xq_qgen.Shrink

(** The differential harness: configuration matrix, outcome comparison
    modulo undefined group order, and failure minimization. *)
module Fuzz = Xq_fuzzer.Fuzz

(** The shared compile-and-run pipeline behind the CLI, REPL, fuzzer
    and query server. *)
module Pipeline = Xq_pipeline.Pipeline

(** A loaded document (its document node). *)
type doc = Xq_xdm.Node.t

(** The result of a query: an XQuery sequence. *)
type result = Xq_xdm.Xseq.t

(** {1 Loading data} *)

(** Parse an XML string into a document. Raises
    [Xml.Xml_parse.Parse_error] on malformed input. *)
val load_string : string -> doc

val load_file : string -> doc

(** {1 Running queries} *)

(** Parse a query (prolog + expression). Raises [Xerror.Error] with a
    static error code on bad syntax. *)
val parse : string -> Xq_lang.Ast.query

(** Run the static checks (scoping incl. the paper's group-by rules,
    function arities, clause order). *)
val check : Xq_lang.Ast.query -> unit

(** Parse, check and evaluate a query against a document. [documents],
    [collections] and [default_collection] are served to the query
    through [fn:doc] and [fn:collection]; [use_index] enables the
    element-name index over the document (off by default, as in the
    paper's experiments). *)
val run :
  ?use_index:bool ->
  ?documents:(string * doc) list ->
  ?collections:(string * doc list) list ->
  ?default_collection:doc list ->
  doc ->
  string ->
  result

(** Evaluate an already-parsed query. *)
val run_query :
  ?check:bool ->
  ?use_index:bool ->
  ?documents:(string * doc) list ->
  ?collections:(string * doc list) list ->
  ?default_collection:doc list ->
  doc ->
  Xq_lang.Ast.query ->
  result

(** Rewrite the implicit-grouping idiom (distinct-values + self-join)
    into an explicit [group by], then evaluate. *)
val run_rewritten : doc -> string -> result

(** {1 Results} *)

(** Serialize a result sequence as XML (atomic values space-separated). *)
val to_xml : ?indent:bool -> result -> string

(** Atomic convenience accessors (raise [XPTY0004] on mismatch). *)
val to_strings : result -> string list

val length : result -> int
