(* A minimal fork-join pool over stdlib domains (no domainslib). Degree 1
   always takes the caller's thread and touches no Domain API, so the
   default configuration is byte-for-byte the sequential code path. *)

let degree_cap = 64

let parse_degree s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some (min n degree_cap)
  | Some _ | None -> None

(* Read once: the environment cannot change under a running process, and
   reading lazily keeps [default_degree] allocation-free on hot paths. *)
let env_degree =
  lazy
    (match Sys.getenv_opt "XQ_PARALLEL" with
     | None -> 1
     | Some s -> ( match parse_degree s with Some n -> n | None -> 1))

let override = Atomic.make 0 (* 0 = no override, fall back to XQ_PARALLEL *)

let set_default_degree n = Atomic.set override (max 1 (min n degree_cap))

let default_degree () =
  match Atomic.get override with
  | 0 -> Lazy.force env_degree
  | n -> n

module Governor = Xq_governor.Governor

(* One warning per process when spawning fails and we degrade to the
   sequential path — output stays byte-identical, only the warning on
   stderr tells the two paths apart. *)
let warned_fallback = Atomic.make false

let warn_fallback reason =
  if not (Atomic.exchange warned_fallback true) then
    Printf.eprintf
      "xq: warning: Domain.spawn unavailable (%s); falling back to \
       sequential execution\n%!"
      reason

let is_cancel = function
  | Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XQENG0004, _) -> true
  | _ -> false

(* Run every task to completion: task 0 on the calling domain, the rest
   on fresh domains. A spawn failure (real, or injected via XQ_FAULTS)
   downgrades that task to the caller's domain — same output, no
   parallelism. A failing task marks an abort on the installed governor
   so siblings that tick cancel early instead of running to completion;
   the marks are released once every domain has joined. If several
   tasks raise, re-raise the lowest-indexed *real* exception — for
   chunked maps this is exactly the exception sequential left-to-right
   evaluation would have raised first; sibling cancellations (XQENG0004)
   provoked by the abort only win when nothing else failed. *)
let run_tasks (tasks : (unit -> unit) array) =
  let nt = Array.length tasks in
  if nt = 0 then ()
  else if nt = 1 then tasks.(0) ()
  else begin
    let errs = Array.make nt None in
    (* A process-wide governor is visible from any domain, but a
       *scoped* one (the query server's per-query overlay) lives in the
       caller's domain-local slot — capture it here and re-install it on
       every task, so a spawned worker ticks, charges and aborts against
       the same budgets as the domain that forked it. Re-installing on
       the caller's own (or an inline-fallback) task is a harmless
       re-entry: it shadows the slot with the value it already holds. *)
    let scoped = Governor.scoped_current () in
    let guarded i () =
      Governor.with_scoped_opt scoped (fun () ->
          try tasks.(i) ()
          with e ->
            errs.(i) <- Some e;
            Governor.begin_abort ())
    in
    let inline = ref [] in
    let domains =
      Array.init (nt - 1) (fun k ->
          let i = k + 1 in
          if Governor.spawn_fault () then begin
            warn_fallback "injected fault";
            inline := i :: !inline;
            None
          end
          else
            match Domain.spawn (guarded i) with
            | d -> Some d
            | exception e ->
              warn_fallback (Printexc.to_string e);
              inline := i :: !inline;
              None)
    in
    guarded 0 ();
    List.iter (fun i -> guarded i ()) (List.rev !inline);
    Array.iter (function Some d -> Domain.join d | None -> ()) domains;
    let first_real = ref None and first_any = ref None in
    Array.iter
      (function
        | None -> ()
        | Some e ->
          Governor.end_abort ();
          if Option.is_none !first_any then first_any := Some e;
          if Option.is_none !first_real && not (is_cancel e) then
            first_real := Some e)
      errs;
    match (!first_real, !first_any) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

(* How many chunks to actually use for [n] elements: never more than the
   requested degree, never chunks smaller than [min_chunk]. *)
let pieces ~degree ~min_chunk n =
  let d = max 1 (min degree degree_cap) in
  max 1 (min d (n / max 1 min_chunk))

let map ?(degree = 1) ?(min_chunk = 16) f src =
  let n = Array.length src in
  if n = 0 then [||]
  else begin
    let p = pieces ~degree ~min_chunk n in
    if p <= 1 then Array.map f src
    else begin
      (* Seed the result with element 0 computed on the caller — it both
         avoids a dummy value and preserves fail-first semantics for an
         exception at index 0. The remaining n-1 elements are chunked. *)
      let dst = Array.make n (f src.(0)) in
      let m = n - 1 in
      run_tasks
        (Array.init p (fun c ->
             let lo = 1 + (c * m / p) and hi = 1 + ((c + 1) * m / p) in
             fun () ->
               for i = lo to hi - 1 do
                 dst.(i) <- f src.(i)
               done));
      dst
    end
  end

(* In-place stable parallel merge sort: sort chunks concurrently, then
   merge adjacent runs pairwise (left run wins ties, preserving input
   order) until one run remains. Falls back to Array.stable_sort when
   the array is too small to be worth splitting. *)
let sort ?(degree = 1) ?(min_chunk = 512) cmp a =
  let n = Array.length a in
  let p = pieces ~degree ~min_chunk n in
  if p <= 1 then Array.stable_sort cmp a
  else begin
    let bounds = Array.init (p + 1) (fun i -> i * n / p) in
    run_tasks
      (Array.init p (fun c ->
           let lo = bounds.(c) and hi = bounds.(c + 1) in
           fun () ->
             let sub = Array.sub a lo (hi - lo) in
             Array.stable_sort cmp sub;
             Array.blit sub 0 a lo (hi - lo)));
    let buf = Array.copy a in
    let merge src dst lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp src.(!i) src.(!j) <= 0) then begin
          dst.(k) <- src.(!i);
          incr i
        end
        else begin
          dst.(k) <- src.(!j);
          incr j
        end
      done
    in
    let rec rounds src dst (bs : int array) =
      let runs = Array.length bs - 1 in
      if runs <= 1 then begin
        if src != a then Array.blit src 0 a 0 n
      end
      else begin
        let tasks = ref [] and next = ref [ bs.(0) ] in
        let r = ref 0 in
        while !r < runs do
          if !r + 1 < runs then begin
            let lo = bs.(!r) and mid = bs.(!r + 1) and hi = bs.(!r + 2) in
            tasks := (fun () -> merge src dst lo mid hi) :: !tasks;
            next := hi :: !next;
            r := !r + 2
          end
          else begin
            (* odd run out: carry it to the next round unchanged *)
            let lo = bs.(!r) and hi = bs.(!r + 1) in
            tasks := (fun () -> Array.blit src lo dst lo (hi - lo)) :: !tasks;
            next := hi :: !next;
            incr r
          end
        done;
        run_tasks (Array.of_list (List.rev !tasks));
        rounds dst src (Array.of_list (List.rev !next))
      end
    in
    rounds a buf bounds
  end
