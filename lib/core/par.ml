(* A minimal fork-join pool over stdlib domains (no domainslib). Degree 1
   always takes the caller's thread and touches no Domain API, so the
   default configuration is byte-for-byte the sequential code path. *)

let degree_cap = 64

let parse_degree s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some (min n degree_cap)
  | Some _ | None -> None

(* Read once: the environment cannot change under a running process, and
   reading lazily keeps [default_degree] allocation-free on hot paths. *)
let env_degree =
  lazy
    (match Sys.getenv_opt "XQ_PARALLEL" with
     | None -> 1
     | Some s -> ( match parse_degree s with Some n -> n | None -> 1))

let override = Atomic.make 0 (* 0 = no override, fall back to XQ_PARALLEL *)

let set_default_degree n = Atomic.set override (max 1 (min n degree_cap))

let default_degree () =
  match Atomic.get override with
  | 0 -> Lazy.force env_degree
  | n -> n

(* Run every task to completion: task 0 on the calling domain, the rest
   on fresh domains. If several tasks raise, re-raise the lowest-indexed
   exception — for chunked maps this is exactly the exception sequential
   left-to-right evaluation would have raised first. *)
let run_tasks (tasks : (unit -> unit) array) =
  let nt = Array.length tasks in
  if nt = 0 then ()
  else if nt = 1 then tasks.(0) ()
  else begin
    let errs = Array.make nt None in
    let guarded i () = try tasks.(i) () with e -> errs.(i) <- Some e in
    let domains = Array.init (nt - 1) (fun i -> Domain.spawn (guarded (i + 1))) in
    guarded 0 ();
    Array.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) errs
  end

(* How many chunks to actually use for [n] elements: never more than the
   requested degree, never chunks smaller than [min_chunk]. *)
let pieces ~degree ~min_chunk n =
  let d = max 1 (min degree degree_cap) in
  max 1 (min d (n / max 1 min_chunk))

let map ?(degree = 1) ?(min_chunk = 16) f src =
  let n = Array.length src in
  if n = 0 then [||]
  else begin
    let p = pieces ~degree ~min_chunk n in
    if p <= 1 then Array.map f src
    else begin
      (* Seed the result with element 0 computed on the caller — it both
         avoids a dummy value and preserves fail-first semantics for an
         exception at index 0. The remaining n-1 elements are chunked. *)
      let dst = Array.make n (f src.(0)) in
      let m = n - 1 in
      run_tasks
        (Array.init p (fun c ->
             let lo = 1 + (c * m / p) and hi = 1 + ((c + 1) * m / p) in
             fun () ->
               for i = lo to hi - 1 do
                 dst.(i) <- f src.(i)
               done));
      dst
    end
  end

(* In-place stable parallel merge sort: sort chunks concurrently, then
   merge adjacent runs pairwise (left run wins ties, preserving input
   order) until one run remains. Falls back to Array.stable_sort when
   the array is too small to be worth splitting. *)
let sort ?(degree = 1) ?(min_chunk = 512) cmp a =
  let n = Array.length a in
  let p = pieces ~degree ~min_chunk n in
  if p <= 1 then Array.stable_sort cmp a
  else begin
    let bounds = Array.init (p + 1) (fun i -> i * n / p) in
    run_tasks
      (Array.init p (fun c ->
           let lo = bounds.(c) and hi = bounds.(c + 1) in
           fun () ->
             let sub = Array.sub a lo (hi - lo) in
             Array.stable_sort cmp sub;
             Array.blit sub 0 a lo (hi - lo)));
    let buf = Array.copy a in
    let merge src dst lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp src.(!i) src.(!j) <= 0) then begin
          dst.(k) <- src.(!i);
          incr i
        end
        else begin
          dst.(k) <- src.(!j);
          incr j
        end
      done
    in
    let rec rounds src dst (bs : int array) =
      let runs = Array.length bs - 1 in
      if runs <= 1 then begin
        if src != a then Array.blit src 0 a 0 n
      end
      else begin
        let tasks = ref [] and next = ref [ bs.(0) ] in
        let r = ref 0 in
        while !r < runs do
          if !r + 1 < runs then begin
            let lo = bs.(!r) and mid = bs.(!r + 1) and hi = bs.(!r + 2) in
            tasks := (fun () -> merge src dst lo mid hi) :: !tasks;
            next := hi :: !next;
            r := !r + 2
          end
          else begin
            (* odd run out: carry it to the next round unchanged *)
            let lo = bs.(!r) and hi = bs.(!r + 1) in
            tasks := (fun () -> Array.blit src lo dst lo (hi - lo)) :: !tasks;
            next := hi :: !next;
            incr r
          end
        done;
        run_tasks (Array.of_list (List.rev !tasks));
        rounds dst src (Array.of_list (List.rev !next))
      end
    in
    rounds a buf bounds
  end
