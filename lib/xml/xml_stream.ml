(* Streaming XML ingestion with projection pushdown.

   A chunked event-style reader that parses a document front to back,
   runs a bitmask NFA over the open-element stack against a compiled
   projection path, and builds XDM subtrees only for path matches —
   everything else is validated for well-formedness and dropped at
   parse time, so the working set is the matched subtrees in flight,
   not the document.

   Lexical semantics mirror [Xml_parse] exactly (entities, CDATA,
   comments, PIs, DOCTYPE, the whitespace-only-text drop rule, depth
   and byte limits, governor ticks per element), so a streamed scan
   yields subtrees byte-identical to what the materializing parser
   would hand the same query. Errors raise the same positioned
   [Xml_parse.Parse_error] / governed [XQENG0005] the materializing
   path raises.

   The NFA follows the engine's fused path scan (see [Eval.fused_walk]):
   bit [j] on an element means "this element is in the result of the
   first [j] steps". A child step grants bit [j+1] when its test
   matches; a descendant step additionally propagates its own bit down
   unchanged. Bit [k] (all steps consumed) marks a match root. Matches
   nested inside a match (e.g. [//d] over [<d><d/></d>]) keep
   propagating inside the captured subtree and are emitted as their own
   matches, in document (pre)order, when the outermost capture closes.

   Read-I/O fault injection: the sixth [XQ_FAULTS] splitmix64 stream is
   drawn before each chunk refill. A drawn fault cycles deterministically
   through four modes — a short read (benign: the parse continues and
   the query completes identically), an injected EIO ([XQENG0008]), a
   truncation (the stream ends mid-document, surfacing as the same
   clean parse error a truncated file gives), and a torn read
   ([XQENG0008]) — so a seed sweep exercises the whole failure
   surface and every outcome is either byte-identical output or a
   structured error with no partial output. *)

open Xq_xdm
module Governor = Xq_governor.Governor

type source = [ `String of string | `File of string ]

(* Where a tripped limit came from decides how it surfaces: explicit
   and built-in limits raise a positioned parse error, governed ones a
   structured XQENG0005 — the same split the materializing parser makes. *)
type limit_source = Explicit | Governed | Default

(* --- projection paths ---------------------------------------------------- *)

type test = Any | Name of Xname.t | Prefix of string

type step = { desc : bool; test : test }

type path = step list

(* Bitmask NFA states need bit [k] to fit in a tagged int. *)
let max_steps = 60

let step_to_string s =
  (if s.desc then "//" else "/")
  ^
  match s.test with
  | Any -> "*"
  | Name n -> Xname.to_string n
  | Prefix p -> p ^ ":*"

let path_to_string p = String.concat "" (List.map step_to_string p)

(* Element name test — the element-only restriction of the engine's
   [test_matches] (the scan path never yields non-element matches). *)
let test_elem t (xn : Xname.t) =
  match t with
  | Any -> true
  | Name n -> Xname.equal n xn
  | Prefix p -> xn.Xname.prefix = Some p

(* --- the chunked reader -------------------------------------------------- *)

let chunk_size = 65536

type reader = {
  mutable rbuf : Bytes.t;
  mutable lo : int;  (* start of unconsumed data *)
  mutable hi : int;  (* end of valid data *)
  mutable reof : bool;
  mutable abs : int;  (* absolute offset of [rbuf.[lo]] in the stream *)
  mutable line : int;
  mutable bol : int;  (* absolute offset of the current line start *)
  fill : Bytes.t -> int -> int -> int;
  mutable fault_ordinal : int;  (* cycles the injected-fault mode *)
  source_name : string;
}

let reader_of ~source_name fill =
  {
    rbuf = Bytes.create chunk_size;
    lo = 0;
    hi = 0;
    reof = false;
    abs = 0;
    line = 1;
    bol = 0;
    fill;
    fault_ordinal = 0;
    source_name;
  }

let error r msg =
  raise
    (Xml_parse.Parse_error
       { line = r.line; column = r.abs - r.bol + 1; message = msg })

let refill r =
  if not r.reof then begin
    if r.lo > 0 then begin
      Bytes.blit r.rbuf r.lo r.rbuf 0 (r.hi - r.lo);
      r.hi <- r.hi - r.lo;
      r.lo <- 0
    end;
    if Bytes.length r.rbuf - r.hi < chunk_size then begin
      let b = Bytes.create (2 * Bytes.length r.rbuf) in
      Bytes.blit r.rbuf 0 b 0 r.hi;
      r.rbuf <- b
    end;
    let want = Bytes.length r.rbuf - r.hi in
    let want =
      match Governor.read_fault () with
      | None -> want
      | Some seed ->
        let mode = r.fault_ordinal land 3 in
        r.fault_ordinal <- r.fault_ordinal + 1;
        (match mode with
         | 0 -> max 1 (want / 8)  (* short read: smaller chunk, no harm *)
         | 1 ->
           Governor.read_trip
             (Printf.sprintf
                "injected read-I/O fault (EIO) on %s at byte %d (XQ_FAULTS \
                 seed %d)"
                r.source_name
                (r.abs + (r.hi - r.lo))
                seed)
         | 2 ->
           (* truncation: the stream ends here, mid-whatever *)
           r.reof <- true;
           0
         | _ ->
           Governor.read_trip
             (Printf.sprintf
                "torn read detected on %s at byte %d (XQ_FAULTS seed %d)"
                r.source_name
                (r.abs + (r.hi - r.lo))
                seed))
    in
    if want > 0 then begin
      let n = r.fill r.rbuf r.hi want in
      if n = 0 then r.reof <- true else r.hi <- r.hi + n
    end
  end

let avail r = r.hi - r.lo

let ensure r n =
  while avail r < n && not r.reof do
    refill r
  done

let at_end r =
  ensure r 1;
  avail r = 0

let peek r =
  ensure r 1;
  if avail r = 0 then '\000' else Bytes.get r.rbuf r.lo

let advance r =
  ensure r 1;
  if avail r > 0 then begin
    (if Bytes.get r.rbuf r.lo = '\n' then begin
       r.line <- r.line + 1;
       r.bol <- r.abs + 1
     end);
    r.lo <- r.lo + 1;
    r.abs <- r.abs + 1
  end
  else r.abs <- r.abs + 1

let eat r c =
  if peek r = c then advance r
  else error r (Printf.sprintf "expected %C, found %C" c (peek r))

let looking_at r s =
  let n = String.length s in
  ensure r n;
  avail r >= n
  &&
  let rec go i = i >= n || (Bytes.get r.rbuf (r.lo + i) = s.[i] && go (i + 1)) in
  go 0

let skip_string r s =
  if looking_at r s then
    for _ = 1 to String.length s do
      advance r
    done
  else error r (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws r =
  while (not (at_end r)) && is_space (peek r) do
    advance r
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name r =
  if not (is_name_start (peek r)) then error r "expected a name";
  let b = Buffer.create 16 in
  while (not (at_end r)) && is_name_char (peek r) do
    Buffer.add_char b (peek r);
    advance r
  done;
  Buffer.contents b

let read_char_ref r =
  (* after "&#" *)
  let hex = peek r = 'x' in
  if hex then advance r;
  let b = Buffer.create 8 in
  while (not (at_end r)) && peek r <> ';' do
    Buffer.add_char b (peek r);
    advance r
  done;
  let digits = Buffer.contents b in
  eat r ';';
  let code =
    try int_of_string (if hex then "0x" ^ digits else digits)
    with Failure _ -> error r "bad character reference"
  in
  let b = Buffer.create 4 in
  (try Buffer.add_utf_8_uchar b (Uchar.of_int code)
   with Invalid_argument _ -> error r "character reference out of range");
  Buffer.contents b

let read_entity r =
  (* after '&' *)
  if peek r = '#' then begin
    advance r;
    read_char_ref r
  end
  else begin
    let name = read_name r in
    eat r ';';
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> error r (Printf.sprintf "unknown entity &%s;" other)
  end

let read_attr_value r =
  let quote = peek r in
  if quote <> '"' && quote <> '\'' then error r "expected a quoted value";
  advance r;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end r then error r "unterminated attribute value"
    else if peek r = quote then advance r
    else if peek r = '&' then begin
      advance r;
      Buffer.add_string buf (read_entity r);
      go ()
    end
    else if peek r = '<' then error r "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek r);
      advance r;
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* [keep = false] validates and discards the body without buffering it,
   so skipped comments/PIs cost no memory. *)
let scan_to r ~terminator ~keep ~unterminated =
  let buf = if keep then Some (Buffer.create 16) else None in
  let rec go () =
    if at_end r then error r unterminated
    else if looking_at r terminator then begin
      skip_string r terminator;
      match buf with Some b -> Buffer.contents b | None -> ""
    end
    else begin
      (match buf with Some b -> Buffer.add_char b (peek r) | None -> ());
      advance r;
      go ()
    end
  in
  go ()

let skip_comment r ~keep =
  (* after "<!--" *)
  scan_to r ~terminator:"-->" ~keep ~unterminated:"unterminated comment"

let read_cdata r ~keep =
  (* after "<![CDATA[" *)
  scan_to r ~terminator:"]]>" ~keep ~unterminated:"unterminated CDATA section"

let read_pi r ~keep =
  (* after "<?" *)
  let target = read_name r in
  skip_ws r;
  let data =
    scan_to r ~terminator:"?>" ~keep
      ~unterminated:"unterminated processing instruction"
  in
  (target, data)

let skip_doctype r =
  (* after "<!DOCTYPE"; skip to matching '>' tracking bracket depth *)
  let depth = ref 0 in
  let rec go () =
    if at_end r then error r "unterminated DOCTYPE"
    else
      match peek r with
      | '[' ->
        incr depth;
        advance r;
        go ()
      | ']' ->
        decr depth;
        advance r;
        go ()
      | '>' when !depth = 0 -> advance r
      | _ ->
        advance r;
        go ()
  in
  go ()

(* --- the projecting scan ------------------------------------------------- *)

type scan_state = {
  steps : step array;
  accept_bit : int;
  emit : bytes:int -> Node.t -> unit;
  mutable pending : Node.t list;  (* match roots of the open capture,
                                     reverse preorder *)
  keep_whitespace : bool;
  max_depth : int;
  depth_src : limit_source;
  mutable depth : int;
}

(* NFA transition: the mask an element named [xn] gets from its
   parent's mask — child steps grant the next bit on a test match,
   descendant steps also keep their own bit live down the tree. *)
let child_mask ss m xn =
  let out = ref 0 in
  for i = 0 to Array.length ss.steps - 1 do
    if m land (1 lsl i) <> 0 then begin
      let s = Array.unsafe_get ss.steps i in
      if s.desc then out := !out lor (1 lsl i);
      if test_elem s.test xn then out := !out lor (1 lsl (i + 1))
    end
  done;
  !out

let limit_trip r src msg =
  match (src : limit_source) with
  | Governed -> Governor.input_trip msg
  | Explicit | Default -> error r msg

let enter_element r ss =
  Governor.tick ();
  ss.depth <- ss.depth + 1;
  if ss.depth > ss.max_depth then
    limit_trip r ss.depth_src
      (Printf.sprintf "element nesting deeper than %d" ss.max_depth)

(* The whole-subtree cost estimate charged per capture: the same ×4
   bytes-to-tree multiplier the document store uses. *)
let subtree_estimate span = (4 * span) + 128

let rec parse_element r ss mask (building : Node.t option) =
  (* at '<' of a start tag *)
  let entry_abs = r.abs in
  eat r '<';
  enter_element r ss;
  let name = read_name r in
  let xn = Xname.of_string name in
  let m = child_mask ss mask xn in
  let is_match = m land ss.accept_bit <> 0 in
  let node =
    match building with
    | Some _ -> Some (Node.element xn)
    | None -> if is_match then Some (Node.element xn) else None
  in
  let capture_root = building = None && node <> None in
  (match node with
   | Some n when is_match -> ss.pending <- n :: ss.pending
   | _ -> ());
  (* attributes: built when capturing; in skip mode still validated,
     including the duplicate check the materializing parser performs
     (via [Node.set_attribute]) *)
  let seen_attrs = ref [] in
  let rec attrs () =
    skip_ws r;
    match peek r with
    | '>' ->
      advance r;
      parse_content r ss m node name
    | '/' ->
      advance r;
      eat r '>'
    | c when is_name_start c ->
      let aname = read_name r in
      skip_ws r;
      eat r '=';
      skip_ws r;
      let v = read_attr_value r in
      (match node with
       | Some n ->
         Node.set_attribute n (Node.attribute (Xname.of_string aname) v)
       | None ->
         if List.mem aname !seen_attrs then
           Xerror.failf Xerror.XQDY0025 "duplicate attribute %s" aname;
         seen_attrs := aname :: !seen_attrs);
      attrs ()
    | _ -> error r "malformed start tag"
  in
  attrs ();
  ss.depth <- ss.depth - 1;
  match building, node with
  | Some parent, Some n -> Node.append_child parent n
  | None, Some _ when capture_root ->
    (* the outermost capture closed: emit its match roots in document
       (pre)order; the first carries the subtree's byte estimate *)
    let matches = List.rev ss.pending in
    ss.pending <- [];
    let est = subtree_estimate (r.abs - entry_abs) in
    List.iteri
      (fun i n -> ss.emit ~bytes:(if i = 0 then est else 0) n)
      matches
  | _ -> ()

and parse_content r ss mask (node : Node.t option) name =
  (* [mask] is this element's own mask; children derive theirs from it.
     Text accumulates in one buffer across CDATA boundaries with the
     materializing parser's whitespace-only drop rule; in skip mode the
     buffer stays unused and characters are validated then dropped. *)
  let buf = Buffer.create 16 in
  let had_entity = ref false in
  let flush_text () =
    match node with
    | None ->
      Buffer.clear buf;
      had_entity := false
    | Some el ->
      if Buffer.length buf > 0 then begin
        let s = Buffer.contents buf in
        let keep =
          ss.keep_whitespace || !had_entity || not (String.for_all is_space s)
        in
        if keep then Node.append_child el (Node.text s);
        Buffer.clear buf;
        had_entity := false
      end
  in
  let building = node <> None in
  let add_char c = if building then Buffer.add_char buf c in
  let add_string s = if building then Buffer.add_string buf s in
  let rec go () =
    if at_end r then error r (Printf.sprintf "unterminated element <%s>" name)
    else if looking_at r "</" then begin
      flush_text ();
      skip_string r "</";
      let close = read_name r in
      if close <> name then
        error r
          (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close name);
      skip_ws r;
      eat r '>'
    end
    else if looking_at r "<!--" then begin
      flush_text ();
      skip_string r "<!--";
      let body = skip_comment r ~keep:building in
      (match node with
       | Some el -> Node.append_child el (Node.comment body)
       | None -> ());
      go ()
    end
    else if looking_at r "<![CDATA[" then begin
      skip_string r "<![CDATA[";
      add_string (read_cdata r ~keep:building);
      had_entity := true;  (* CDATA forces the text to be kept *)
      go ()
    end
    else if looking_at r "<?" then begin
      flush_text ();
      skip_string r "<?";
      let target, data = read_pi r ~keep:building in
      (match node with
       | Some el -> Node.append_child el (Node.pi ~target ~data)
       | None -> ());
      go ()
    end
    else if peek r = '<' then begin
      flush_text ();
      parse_element r ss mask node;
      go ()
    end
    else if peek r = '&' then begin
      advance r;
      add_string (read_entity r);
      had_entity := true;
      go ()
    end
    else begin
      add_char (peek r);
      advance r;
      go ()
    end
  in
  go ()

(* Prolog/epilog items are parsed for well-formedness and dropped: the
   document node they would attach to is never built (a streamable
   query cannot reach it — the projection verdict rejects any use of
   the document root beyond the scan path). *)
let parse_misc r =
  let rec go () =
    skip_ws r;
    if looking_at r "<!--" then begin
      skip_string r "<!--";
      ignore (skip_comment r ~keep:false);
      go ()
    end
    else if looking_at r "<?" then begin
      skip_string r "<?";
      ignore (read_pi r ~keep:false);
      go ()
    end
    else if looking_at r "<!DOCTYPE" then begin
      skip_string r "<!DOCTYPE";
      skip_doctype r;
      go ()
    end
  in
  go ()

let scan_reader ?(keep_whitespace = false) ?max_depth ?max_bytes ~path ~emit r
    ~source_bytes =
  if path = [] then invalid_arg "Xml_stream.scan: empty projection path";
  if List.length path > max_steps then
    invalid_arg "Xml_stream.scan: projection path too long";
  let gov_depth, gov_bytes = Governor.input_limits () in
  let max_depth, depth_src =
    match (max_depth, gov_depth) with
    | Some d, _ -> (d, Explicit)
    | None, Some d -> (d, Governed)
    | None, None -> (Xml_parse.default_max_depth, Default)
  in
  (* byte caps check the source's total size up front (files are
     stat-able, strings known), exactly as the materializing parser
     checks its input string — so both paths trip identically *)
  (match (max_bytes, gov_bytes) with
   | Some cap, _ when source_bytes > cap ->
     limit_trip r Explicit
       (Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
          source_bytes cap)
   | None, Some cap when source_bytes > cap ->
     limit_trip r Governed
       (Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
          source_bytes cap)
   | _ -> ());
  let ss =
    {
      steps = Array.of_list path;
      accept_bit = 1 lsl List.length path;
      emit;
      pending = [];
      keep_whitespace;
      max_depth;
      depth_src;
      depth = 0;
    }
  in
  parse_misc r;
  if at_end r || peek r <> '<' then error r "expected a root element";
  (* the virtual document node holds state 0 *)
  parse_element r ss 1 None;
  parse_misc r;
  if not (at_end r) then error r "content after the root element"

let scan ?keep_whitespace ?max_depth ?max_bytes ~path ~emit
    (src : source) =
  match src with
  | `String s ->
    let pos = ref 0 in
    let fill buf off len =
      let n = min len (String.length s - !pos) in
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n
    in
    let r = reader_of ~source_name:"<string>" fill in
    scan_reader ?keep_whitespace ?max_depth ?max_bytes ~path ~emit r
      ~source_bytes:(String.length s)
  | `File path_name ->
    let ic =
      try open_in_bin path_name
      with Sys_error _ as e -> raise e
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        let fill buf off len =
          match input ic buf off len with
          | n -> n
          | exception Sys_error m ->
            Governor.read_trip
              (Printf.sprintf "read failed on %s: %s" path_name m)
        in
        let r = reader_of ~source_name:path_name fill in
        scan_reader ?keep_whitespace ?max_depth ?max_bytes ~path ~emit r
          ~source_bytes:total)

(* Collect all matches of [path] — the test harness's entry point. *)
let collect ?keep_whitespace ?max_depth ?max_bytes ~path src =
  let acc = ref [] in
  scan ?keep_whitespace ?max_depth ?max_bytes ~path
    ~emit:(fun ~bytes:_ n -> acc := n :: !acc)
    src;
  List.rev !acc
