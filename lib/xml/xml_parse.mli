(** A non-validating XML 1.0 parser producing {!Xq_xdm.Node} trees.

    Supported: elements, single- or double-quoted attributes, character
    data, the five
    predefined entities plus decimal/hex character references, CDATA
    sections, comments, processing instructions, an XML declaration and a
    DOCTYPE (both skipped). Not supported (out of scope for the paper's
    workloads): DTD-defined entities, namespaces-by-URI resolution.

    Whitespace policy: text that consists purely of whitespace between two
    element tags is dropped when [keep_whitespace] is false (the default),
    matching how data-oriented XQuery engines load data documents.

    Untrusted-input limits: element nesting is capped ([max_depth],
    default {!default_max_depth}) so hostile documents fail with a
    positioned {!Parse_error} instead of a stack overflow, and
    [max_bytes] caps the total input size. Limits passed explicitly (or
    the built-in depth default) raise {!Parse_error}; limits inherited
    from an installed resource governor ([XQ_MAX_DEPTH],
    [XQ_MAX_INPUT]) raise [Xerror.Error XQENG0005] so the CLI can
    classify the trip as resource exhaustion. While a governor is
    installed, the parser also ticks it per element, so deadlines and
    cancellation apply during document loading. *)

exception Parse_error of { line : int; column : int; message : string }

(** Default element-nesting cap (512). *)
val default_max_depth : int

(** Parse a complete document; the result is a [Document] node. *)
val parse :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_bytes:int ->
  string ->
  Xq_xdm.Node.t

(** Parse a single element fragment (no XML declaration required),
    returning the element node itself. *)
val parse_fragment :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_bytes:int ->
  string ->
  Xq_xdm.Node.t

val parse_file :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_bytes:int ->
  string ->
  Xq_xdm.Node.t

(** Render the error position and message. *)
val error_to_string : exn -> string option
