(** Streaming XML ingestion with projection pushdown.

    A pull-based, chunked scan of a document that builds XDM subtrees
    {e only} for elements matched by a projection path and discards
    everything else at parse time, so memory is bounded by the matched
    subtrees in flight rather than the document size.

    Lexical semantics, limits and error behaviour mirror {!Xml_parse}
    exactly: the same entity/CDATA/whitespace rules, the same depth and
    byte caps (explicit or inherited from an installed governor), the
    same positioned {!Xml_parse.Parse_error} on malformed input, and a
    governor tick per element. A query run over the streamed subtrees
    produces output byte-identical to the materializing path.

    When [XQ_FAULTS] is active, the read-I/O fault stream injects
    short reads (benign), EIO and torn reads (both [XQENG0008]) and
    truncations (a clean parse error) at chunk-refill boundaries —
    failures always surface as structured errors, never partial data. *)

open Xq_xdm

type source = [ `String of string | `File of string ]

(** An element name test of a projection step. *)
type test = Any | Name of Xname.t | Prefix of string

(** One projection step: [desc] marks a descendant ([//]) step, i.e.
    the match may sit any number of levels below, not just one. *)
type step = { desc : bool; test : test }

(** A root-anchored projection path, outermost step first. *)
type path = step list

(** Paths longer than this are rejected (the NFA packs one bit per
    step into an [int] mask). *)
val max_steps : int

(** Render a path in XPath notation, e.g. ["/orders//item"]. *)
val path_to_string : path -> string

(** [scan ~path ~emit src] parses [src] front to back and calls
    [emit ~bytes node] for every element matching [path], in document
    order. [bytes] is a heap-cost estimate for the subtree, carried by
    the first match of each top-level capture (nested matches within it
    report [0]); callers charge it against the governor to keep streamed
    execution accountable. Matches are emitted as soon as their
    outermost enclosing match closes, while parsing continues.

    Raises {!Xml_parse.Parse_error} on malformed input,
    [Xerror.Error (XQENG0005, _)] on tripped governed limits and
    [Xerror.Error (XQENG0008, _)] on (injected) read-I/O failures.
    Raises [Sys_error] if a [`File] source cannot be opened. *)
val scan :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_bytes:int ->
  path:path ->
  emit:(bytes:int -> Node.t -> unit) ->
  source ->
  unit

(** [collect ~path src] gathers all matches in document order —
    a convenience for tests. *)
val collect :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_bytes:int ->
  path:path ->
  source ->
  Node.t list
