open Xq_xdm
module Governor = Xq_governor.Governor

exception Parse_error of { line : int; column : int; message : string }

let default_max_depth = 512

(* Where a limit came from decides how a trip surfaces: a limit the
   caller set (or the built-in default) raises a positioned
   [Parse_error]; a limit inherited from the installed resource
   governor raises the structured [XQENG0005] so the CLI's exit-code
   taxonomy classifies it as a resource trip. *)
type limit_source = Explicit | Governed | Default

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  keep_whitespace : bool;
  mutable depth : int;
  max_depth : int;
  depth_src : limit_source;
}

let error st msg =
  raise (Parse_error { line = st.line; column = st.pos - st.bol + 1; message = msg })

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let advance st =
  (if peek st = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let eat st c =
  if peek st = c then advance st
  else error st (Printf.sprintf "expected %C, found %C" c (peek st))

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_string st s =
  if looking_at st s then
    for _ = 1 to String.length s do advance st done
  else error st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st = while (not (at_end st)) && is_space (peek st) do advance st done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (at_end st)) && is_name_char (peek st) do advance st done;
  String.sub st.src start (st.pos - start)

let read_char_ref st =
  (* after "&#" *)
  let hex = peek st = 'x' in
  if hex then advance st;
  let start = st.pos in
  while (not (at_end st)) && peek st <> ';' do advance st done;
  let digits = String.sub st.src start (st.pos - start) in
  eat st ';';
  let code =
    try int_of_string (if hex then "0x" ^ digits else digits)
    with Failure _ -> error st "bad character reference"
  in
  (* Encode the code point as UTF-8. *)
  let b = Buffer.create 4 in
  (try Buffer.add_utf_8_uchar b (Uchar.of_int code)
   with Invalid_argument _ -> error st "character reference out of range");
  Buffer.contents b

let read_entity st =
  (* after '&' *)
  if peek st = '#' then begin advance st; read_char_ref st end
  else begin
    let name = read_name st in
    eat st ';';
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> error st (Printf.sprintf "unknown entity &%s;" other)
  end

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then error st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (read_entity st);
      go ()
    end
    else if peek st = '<' then error st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let skip_comment st =
  (* after "<!--" *)
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated comment"
    else if looking_at st "-->" then begin
      let body = String.sub st.src start (st.pos - start) in
      skip_string st "-->";
      body
    end
    else begin advance st; go () end
  in
  go ()

let read_cdata st =
  (* after "<![CDATA[" *)
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let body = String.sub st.src start (st.pos - start) in
      skip_string st "]]>";
      body
    end
    else begin advance st; go () end
  in
  go ()

let read_pi st =
  (* after "<?" *)
  let target = read_name st in
  skip_ws st;
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let data = String.sub st.src start (st.pos - start) in
      skip_string st "?>";
      (target, data)
    end
    else begin advance st; go () end
  in
  go ()

let skip_doctype st =
  (* after "<!DOCTYPE"; skip to matching '>' tracking bracket depth *)
  let depth = ref 0 in
  let rec go () =
    if at_end st then error st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' -> incr depth; advance st; go ()
      | ']' -> decr depth; advance st; go ()
      | '>' when !depth = 0 -> advance st
      | _ -> advance st; go ()
  in
  go ()

let limit_trip st src msg =
  match (src : limit_source) with
  | Governed -> Governor.input_trip msg
  | Explicit | Default -> error st msg

let enter_element st =
  Governor.tick ();
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    limit_trip st st.depth_src
      (Printf.sprintf "element nesting deeper than %d" st.max_depth)

let rec parse_element st =
  (* at '<' of a start tag *)
  eat st '<';
  enter_element st;
  let name = read_name st in
  let el = Node.element (Xname.of_string name) in
  let rec attrs () =
    skip_ws st;
    match peek st with
    | '>' -> advance st; parse_content st el name
    | '/' -> advance st; eat st '>'
    | c when is_name_start c ->
      let aname = read_name st in
      skip_ws st;
      eat st '=';
      skip_ws st;
      let v = read_attr_value st in
      Node.set_attribute el (Node.attribute (Xname.of_string aname) v);
      attrs ()
    | _ -> error st "malformed start tag"
  in
  attrs ();
  st.depth <- st.depth - 1;
  el

and parse_content st el name =
  let buf = Buffer.create 16 in
  let had_entity = ref false in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      let keep =
        st.keep_whitespace || !had_entity
        || not (String.for_all is_space s)
      in
      if keep then Node.append_child el (Node.text s);
      Buffer.clear buf;
      had_entity := false
    end
  in
  let rec go () =
    if at_end st then error st (Printf.sprintf "unterminated element <%s>" name)
    else if looking_at st "</" then begin
      flush_text ();
      skip_string st "</";
      let close = read_name st in
      if close <> name then
        error st (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close name);
      skip_ws st;
      eat st '>'
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      skip_string st "<!--";
      Node.append_child el (Node.comment (skip_comment st));
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      skip_string st "<![CDATA[";
      Buffer.add_string buf (read_cdata st);
      had_entity := true;  (* CDATA forces the text to be kept *)
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      skip_string st "<?";
      let target, data = read_pi st in
      Node.append_child el (Node.pi ~target ~data);
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      Node.append_child el (parse_element st);
      go ()
    end
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (read_entity st);
      had_entity := true;
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let parse_misc st doc =
  (* prolog / epilog items: comments, PIs, whitespace *)
  let rec go () =
    skip_ws st;
    if looking_at st "<!--" then begin
      skip_string st "<!--";
      Node.append_child doc (Node.comment (skip_comment st));
      go ()
    end
    else if looking_at st "<?xml" then begin
      skip_string st "<?";
      let _ = read_pi st in
      go ()
    end
    else if looking_at st "<?" then begin
      skip_string st "<?";
      let target, data = read_pi st in
      Node.append_child doc (Node.pi ~target ~data);
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_string st "<!DOCTYPE";
      skip_doctype st;
      go ()
    end
  in
  go ()

let make_state ?(keep_whitespace = false) ?max_depth ?max_bytes src =
  let gov_depth, gov_bytes = Governor.input_limits () in
  let max_depth, depth_src =
    match (max_depth, gov_depth) with
    | Some d, _ -> (d, Explicit)
    | None, Some d -> (d, Governed)
    | None, None -> (default_max_depth, Default)
  in
  let st =
    {
      src;
      pos = 0;
      line = 1;
      bol = 0;
      keep_whitespace;
      depth = 0;
      max_depth;
      depth_src;
    }
  in
  (match (max_bytes, gov_bytes) with
   | Some cap, _ when String.length src > cap ->
     limit_trip st Explicit
       (Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
          (String.length src) cap)
   | None, Some cap when String.length src > cap ->
     limit_trip st Governed
       (Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
          (String.length src) cap)
   | _ -> ());
  st

let parse ?keep_whitespace ?max_depth ?max_bytes src =
  let st = make_state ?keep_whitespace ?max_depth ?max_bytes src in
  let doc = Node.document () in
  parse_misc st doc;
  if at_end st || peek st <> '<' then error st "expected a root element";
  Node.append_child doc (parse_element st);
  parse_misc st doc;
  if not (at_end st) then error st "content after the root element";
  doc

let parse_fragment ?keep_whitespace ?max_depth ?max_bytes src =
  let st = make_state ?keep_whitespace ?max_depth ?max_bytes src in
  skip_ws st;
  if at_end st || peek st <> '<' then error st "expected an element";
  let el = parse_element st in
  skip_ws st;
  if not (at_end st) then error st "content after the element";
  el

let parse_file ?keep_whitespace ?max_depth ?max_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse ?keep_whitespace ?max_depth ?max_bytes s

let error_to_string = function
  | Parse_error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at %d:%d: %s" line column message)
  | _ -> None
