(** Greedy shrinking of failing query/document pairs.

    Classic delta-debugging descent: enumerate one-step reductions of
    the query (drop a clause, a grouping key, a nest, an order spec, a
    predicate, an attribute; replace an expression by one of its
    subexpressions or by a literal), then of the document (drop an
    element, an attribute, a text child), keep the first candidate on
    which [still_failing] still holds, and repeat to a fixpoint.

    Every query candidate is pre-filtered through
    {!Xq_lang.Static.check_query} (reductions routinely unbind
    variables) and through the pretty-printer round-trip, so the
    reproducer that comes out is always a well-scoped query that can be
    stored as text and replayed. [still_failing] is never called on a
    candidate that fails those filters, and exceptions it raises count
    as "not failing". *)

open Xq_lang

(** One-step query reductions (exposed for tests). Candidates are not
    yet filtered for well-scopedness. *)
val query_candidates : Ast.query -> Ast.query list

(** One-step document reductions: the XML re-rendered with one node or
    attribute removed. Empty when the document does not parse. *)
val doc_candidates : string -> string list

(** [shrink ~still_failing ~query ~doc] greedily minimizes, returning a
    fixpoint pair on which [still_failing] holds (the inputs themselves
    if no reduction reproduces). *)
val shrink :
  still_failing:(Ast.query -> string -> bool) ->
  query:Ast.query ->
  doc:string ->
  Ast.query * string
