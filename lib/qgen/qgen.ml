open Xq_xdm
open Xq_lang
module Prng = Xq_workload.Prng

type case = {
  seed : int;
  query : Ast.query;
  doc : string;
}

let query_text q = Pretty.query q

let round_trips q =
  let reparsed = Parser.parse_query (query_text q) in
  if reparsed = q then Ok () else Error reparsed

(* --- documents ---------------------------------------------------------- *)

(* Small trees with deliberately tiny value domains so group keys
   collide: <data> of 2-10 <item>s, each with optional k/t attributes,
   0-3 repeated <v> children (the sequence-valued keys), an optional
   <w>, 0-2 <s>, and sometimes a nested <sub>. *)

let k_pool = [| "a"; "b"; "c"; "d" |]
let t_pool = [| "x"; "y"; "z" |]
let s_pool = [| "red"; "green"; "blue" |]

let gen_doc rng =
  let buf = Buffer.create 256 in
  let n = 2 + Prng.int rng 9 in
  Buffer.add_string buf "<data>\n";
  for _ = 1 to n do
    Buffer.add_string buf "  <item";
    if not (Prng.one_in rng 6) then
      Buffer.add_string buf (Printf.sprintf " k=\"%s\"" (Prng.pick rng k_pool));
    if Prng.one_in rng 2 then
      Buffer.add_string buf (Printf.sprintf " t=\"%s\"" (Prng.pick rng t_pool));
    Buffer.add_string buf ">";
    for _ = 1 to Prng.int rng 4 do
      Buffer.add_string buf (Printf.sprintf "<v>%d</v>" (Prng.int rng 10))
    done;
    if Prng.one_in rng 2 then
      Buffer.add_string buf (Printf.sprintf "<w>%d</w>" (Prng.int rng 20));
    if Prng.one_in rng 2 then
      Buffer.add_string buf (Printf.sprintf "<s>%s</s>" (Prng.pick rng s_pool));
    if Prng.one_in rng 3 then begin
      Buffer.add_string buf "<sub>";
      for _ = 1 to 1 + Prng.int rng 2 do
        Buffer.add_string buf (Printf.sprintf "<v>%d</v>" (Prng.int rng 10))
      done;
      Buffer.add_string buf "</sub>"
    end;
    Buffer.add_string buf "</item>\n"
  done;
  Buffer.add_string buf "</data>\n";
  Buffer.contents buf

(* --- scoped expression generation --------------------------------------- *)

(* Variable kinds drive which expressions a variable may appear in:
   - Kitem: a singleton element node (a [for] binding) — path base;
   - Kint:  a singleton integer (positional, count, rank);
   - Katom: atomizes to zero-or-one value — safe as an order-by key;
   - Knum:  a sequence of numeric-ish values — safe under sum/avg;
   - Kany:  an arbitrary sequence. *)
type vkind = Kitem | Kint | Katom | Knum | Kany

type env = (string * vkind) list

let vars_of k (env : env) = List.filter (fun (_, k') -> k' = k) env

let nm local = Xname.make local
let fn local = Xname.make ~prefix:"fn" local

let str_lit_pool =
  [| "a"; "b"; "c"; "x y"; "it's"; "p&q"; "lt<gt"; "q\"q"; "" |]

let int_lit rng = Ast.Literal (Atomic.Int (Prng.int rng 10))
let str_lit rng = Ast.Literal (Atomic.Str (Prng.pick rng str_lit_pool))

let child_step ?(preds = []) name = Ast.Step (Child, Name_test (nm name), preds)
let attr_step name = Ast.Step (Attribute_axis, Name_test (nm name), [])

let abs_path steps =
  List.fold_left (fun acc s -> Ast.Slash (acc, s)) Ast.Root steps

(* a predicate over <v>/<w> element context: positional or a
   context-item comparison *)
let gen_pred rng =
  if Prng.one_in rng 2 then Ast.Literal (Atomic.Int (1 + Prng.int rng 3))
  else
    Ast.General_cmp
      ( Prng.pick rng [| Ast.Gen_gt; Ast.Gen_lt; Ast.Gen_ge; Ast.Gen_ne |],
        Ast.Context_item,
        int_lit rng )

(* a path rooted at an item variable (or absolute when none is in
   scope), ending at numeric <v>/<w> elements *)
let gen_num_path rng env =
  let tail =
    match Prng.int rng 6 with
    | 0 -> [ child_step "w" ]
    | 1 -> [ child_step "sub"; child_step "v" ]
    | 2 ->
      [ Ast.Step (Descendant_or_self, Kind_node, []); child_step "v" ]
    | 3 -> [ child_step ~preds:[ gen_pred rng ] "v" ]
    | _ -> [ child_step "v" ]
  in
  match vars_of Kitem env with
  | [] -> abs_path (child_step "data" :: child_step "item" :: tail)
  | items ->
    let v, _ = Prng.pick rng (Array.of_list items) in
    List.fold_left (fun acc s -> Ast.Slash (acc, s)) (Ast.Var v) tail

(* a path ending at string-ish values: @k/@t attributes or <s> *)
let gen_str_path rng env =
  let tail =
    match Prng.int rng 4 with
    | 0 -> [ attr_step "t" ]
    | 1 -> [ child_step "s" ]
    | _ -> [ attr_step "k" ]
  in
  match vars_of Kitem env with
  | [] ->
    (* no item variable in scope (e.g. a post-group order-by key):
       pick one item positionally so the path stays zero-or-one *)
    abs_path
      (child_step "data"
       :: child_step ~preds:[ Ast.Literal (Atomic.Int 1) ] "item"
       :: tail)
  | items ->
    let v, _ = Prng.pick rng (Array.of_list items) in
    List.fold_left (fun acc s -> Ast.Slash (acc, s)) (Ast.Var v) tail

(* numeric-ish sequence: fodder for sum/avg/min/max *)
let rec gen_numseq rng env depth =
  match Prng.int rng 6 with
  | 0 when depth > 0 ->
    Ast.Range (int_lit rng, Ast.Literal (Atomic.Int (Prng.int rng 5)))
  | 1 -> Ast.Sequence [ int_lit rng; int_lit rng ]
  | 2 ->
    let nums = vars_of Knum env and ints = vars_of Kint env in
    (match nums @ ints with
     | [] -> gen_num_path rng env
     | vs -> Ast.Var (fst (Prng.pick rng (Array.of_list vs))))
  | _ -> gen_num_path rng env

(* guaranteed to atomize to one numeric value *)
and gen_num_atom rng env depth =
  match Prng.int rng 8 with
  | 0 | 1 -> int_lit rng
  | 2 -> Ast.Call (fn "count", [ gen_seq rng env (depth - 1) ])
  | 3 -> Ast.Call (fn "sum", [ gen_numseq rng env (depth - 1) ])
  | 4 when depth > 0 ->
    Ast.Arith
      ( Prng.pick rng [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Mod; Ast.Idiv |],
        gen_num_atom rng env (depth - 1),
        gen_num_atom rng env (depth - 1) )
  | 5 ->
    (match vars_of Kint env with
     | [] -> Ast.Call (fn "count", [ gen_seq rng env (depth - 1) ])
     | vs -> Ast.Var (fst (Prng.pick rng (Array.of_list vs))))
  | 6 -> Ast.Call (fn "string-length", [ gen_str_atom rng env (depth - 1) ])
  | _ -> Ast.Call (fn "number", [ gen_str_path rng env ])

(* guaranteed to atomize to at most one string *)
and gen_str_atom rng env depth =
  match Prng.int rng 5 with
  | 0 | 1 -> str_lit rng
  | 2 -> Ast.Call (fn "string", [ gen_str_path rng env ])
  | 3 when depth > 0 ->
    Ast.Call (fn "string-join", [ gen_seq rng env (depth - 1); str_lit rng ])
  | _ -> Ast.Call (fn "string", [ gen_num_atom rng env (depth - 1) ])

(* zero-or-one atomizable — safe as an order-by key *)
and gen_atom rng env depth =
  match Prng.int rng 7 with
  | 0 | 1 -> gen_num_atom rng env depth
  | 2 -> gen_str_atom rng env depth
  | 3 ->
    (match vars_of Katom env with
     | [] -> gen_num_atom rng env depth
     | vs -> Ast.Var (fst (Prng.pick rng (Array.of_list vs))))
  | 4 -> Ast.Call (fn "avg", [ gen_numseq rng env (depth - 1) ])
  | 5 ->
    Ast.Call
      (fn (if Prng.one_in rng 2 then "min" else "max"),
       [ gen_numseq rng env (depth - 1) ])
  | _ -> gen_num_atom rng env depth

(* an arbitrary sequence *)
and gen_seq rng env depth =
  match Prng.int rng 8 with
  | 0 -> gen_numseq rng env depth
  | 1 -> gen_str_path rng env
  | 2 when depth > 0 ->
    Ast.Sequence
      [ gen_atom rng env (depth - 1); gen_seq rng env (depth - 1) ]
  | 3 ->
    (match vars_of Kany env @ vars_of Knum env with
     | [] -> gen_num_path rng env
     | vs -> Ast.Var (fst (Prng.pick rng (Array.of_list vs))))
  | 4 ->
    (match vars_of Kitem env with
     | [] -> gen_numseq rng env depth
     | vs -> Ast.Var (fst (Prng.pick rng (Array.of_list vs))))
  | 5 -> gen_atom rng env depth
  | _ -> gen_numseq rng env depth

let rec gen_bool rng env depth =
  match Prng.int rng 8 with
  | 0 | 1 ->
    Ast.General_cmp
      ( Prng.pick rng
          [| Ast.Gen_eq; Ast.Gen_ne; Ast.Gen_lt; Ast.Gen_le; Ast.Gen_gt;
             Ast.Gen_ge |],
        gen_numseq rng env depth,
        gen_num_atom rng env depth )
  | 2 ->
    Ast.General_cmp
      ( Prng.pick rng [| Ast.Gen_eq; Ast.Gen_ne |],
        gen_str_path rng env,
        str_lit rng )
  | 3 ->
    let mk = if Prng.one_in rng 2 then gen_num_atom else gen_str_atom in
    Ast.Value_cmp
      ( Prng.pick rng
          [| Ast.Val_eq; Ast.Val_ne; Ast.Val_lt; Ast.Val_gt |],
        mk rng env depth,
        mk rng env depth )
  | 4 ->
    Ast.Call
      (fn (if Prng.one_in rng 2 then "exists" else "empty"),
       [ gen_seq rng env depth ])
  | 5 when depth > 0 ->
    let mk = if Prng.one_in rng 2 then fun a b -> Ast.And (a, b)
             else fun a b -> Ast.Or (a, b) in
    mk (gen_bool rng env (depth - 1)) (gen_bool rng env (depth - 1))
  | 6 when depth > 0 ->
    Ast.Call (fn "not", [ gen_bool rng env (depth - 1) ])
  | _ ->
    Ast.General_cmp
      (Ast.Gen_eq, gen_num_path rng env, int_lit rng)

(* group keys: small-domain, frequently sequence-valued. Returns the
   expression and whether it is singleton-safe (usable directly as an
   order-by key). *)
let gen_key rng env =
  match Prng.int rng 8 with
  | 0 | 1 -> (gen_str_path rng env, false)
  | 2 -> (gen_num_path rng env, false)
  | 3 -> (Ast.Call (fn "string", [ gen_str_path rng env ]), true)
  | 4 -> (Ast.Call (fn "count", [ gen_num_path rng env ]), true)
  | 5 ->
    ( Ast.Arith
        ( Ast.Mod,
          Ast.Call (fn "count", [ gen_num_path rng env ]),
          Ast.Literal (Atomic.Int (2 + Prng.int rng 2)) ),
      true )
  | 6 -> (Ast.Sequence [ gen_str_path rng env; gen_str_path rng env ], false)
  | _ -> (Ast.Call (fn "string-join", [ gen_num_path rng env; str_lit rng ]),
          true)

let gen_order_spec rng env depth =
  let modifier : Ast.order_modifier =
    {
      descending = Prng.one_in rng 2;
      empty_greatest =
        (match Prng.int rng 3 with
         | 0 -> Some true
         | 1 -> Some false
         | _ -> None);
    }
  in
  (gen_atom rng env depth, modifier)

(* --- whole queries ------------------------------------------------------ *)

let attr_pool = [| "a"; "b"; "c" |]

let gen_return rng env =
  let attrs =
    List.init (Prng.int rng 3) (fun i ->
        {
          Ast.attr_tag = nm (attr_pool.(i));
          attr_value =
            (if Prng.one_in rng 4 then
               [ Ast.Attr_text "#"; Ast.Attr_expr (gen_atom rng env 1) ]
             else [ Ast.Attr_expr (gen_atom rng env 1) ]);
        })
  in
  let content =
    List.init (1 + Prng.int rng 3) (fun _ ->
        match Prng.int rng 5 with
        | 0 -> Ast.Content_text (Prng.pick rng s_pool)
        | 1 ->
          Ast.Content_elem
            {
              tag = nm "c";
              attrs = [];
              content = [ Ast.Content_expr (gen_atom rng env 1) ];
            }
        | _ -> Ast.Content_expr (gen_seq rng env 2))
  in
  (* adjacent literal text merges into one text node when reparsed, so
     coalesce it up front to keep the round-trip property structural *)
  let rec coalesce = function
    | Ast.Content_text a :: Ast.Content_text b :: rest ->
      coalesce (Ast.Content_text (a ^ b) :: rest)
    | c :: rest -> c :: coalesce rest
    | [] -> []
  in
  let content = coalesce content in
  Ast.Direct_elem { tag = nm "row"; attrs; content }

(* The paper's §6 implicit-grouping anti-pattern (Q): distinct-values
   over a path, then a self-join recollecting each key's items, consumed
   by aggregates. Both Table 1 shapes are emitted so [Rewrite.detect]
   has to recognize each one; the fuzzer's rewrite differential replays
   these with the rewrite on and off. *)
let agg_names = [| "count"; "sum"; "avg"; "min"; "max" |]

let gen_q_idiom rng seed doc =
  let src = abs_path [ child_step "data"; child_step "item" ] in
  let rel =
    match Prng.int rng 4 with
    | 0 -> attr_step "k"
    | 1 -> attr_step "t"
    | 2 -> child_step "s"
    | _ -> child_step "v"
  in
  let kv = "d1" and items = "m1" in
  let key_src = Ast.Call (fn "distinct-values", [ Ast.Slash (src, rel) ]) in
  let items_expr =
    if Prng.one_in rng 2 then
      (* the filter-predicate shape: /data/item[REL = $d1] *)
      match src with
      | Ast.Slash (prefix, Ast.Step (axis, test, [])) ->
        Ast.Slash
          ( prefix,
            Ast.Step
              (axis, test, [ Ast.General_cmp (Ast.Gen_eq, rel, Ast.Var kv) ])
          )
      | _ -> assert false
    else
      (* the inner-FLWOR shape: for $i in SRC where $i/REL = $d1 return $i *)
      Ast.Flwor
        {
          clauses =
            [
              Ast.For
                [ { for_var = "i1"; positional = None; for_src = src } ];
              Ast.Where
                (Ast.General_cmp
                   ( Ast.Gen_eq,
                     Ast.Slash (Ast.Var "i1", rel),
                     Ast.Var kv ));
            ];
          return_at = None;
          return_expr = Ast.Var "i1";
        }
  in
  (* aggregate-only consumption of the recollected items: count over
     the nodes themselves, the numeric folds over their <v> children *)
  let aggs =
    Ast.Content_expr (Ast.Call (fn "count", [ Ast.Var items ]))
    :: List.init (Prng.int rng 3) (fun _ ->
           Ast.Content_expr
             (Ast.Call
                ( fn (Prng.pick rng agg_names),
                  [ Ast.Slash (Ast.Var items, child_step "v") ] )))
  in
  let return_expr =
    Ast.Direct_elem
      {
        tag = nm "row";
        attrs =
          [ { Ast.attr_tag = nm "a"; attr_value = [ Ast.Attr_expr (Ast.Var kv) ] } ];
        content = aggs;
      }
  in
  let query =
    Ast.query_of_expr
      (Ast.Flwor
         {
           clauses =
             [
               Ast.For
                 [ { for_var = kv; positional = None; for_src = key_src } ];
               Ast.Let [ (items, items_expr) ];
             ];
           return_at = None;
           return_expr;
         })
  in
  Static.check_query query;
  { seed; query; doc }

let generate seed =
  let rng = Prng.create seed in
  let doc = gen_doc rng in
  if Prng.one_in rng 8 then gen_q_idiom rng seed doc
  else begin
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let clauses = ref [] in
  let push c = clauses := c :: !clauses in
  let env = ref [] in
  (* for clauses *)
  let nfor = 1 + Prng.int rng 3 in
  for j = 1 to nfor do
    let item_vars = vars_of Kitem !env in
    let src, kind =
      if j = 1 || item_vars = [] || Prng.one_in rng 3 then
        (abs_path [ child_step "data"; child_step "item" ], Kitem)
      else
        match Prng.int rng 4 with
        | 0 -> (Ast.Range (Ast.Literal (Atomic.Int 1),
                           Ast.Literal (Atomic.Int (1 + Prng.int rng 4))),
                Kint)
        | 1 ->
          let v, _ = Prng.pick rng (Array.of_list item_vars) in
          (Ast.Slash (Ast.Var v, child_step "v"), Kitem)
        | _ -> (abs_path [ child_step "data"; child_step "item" ], Kitem)
    in
    let var = fresh "i" in
    let positional =
      if kind = Kitem && Prng.one_in rng 4 then Some (fresh "p") else None
    in
    push (Ast.For [ { for_var = var; positional; for_src = src } ]);
    env := (var, kind) :: !env;
    Option.iter (fun p -> env := (p, Kint) :: !env) positional
  done;
  (* pre-group lets *)
  for _ = 1 to Prng.int rng 3 do
    let var = fresh "l" in
    let e, kind =
      match Prng.int rng 3 with
      | 0 -> (gen_atom rng !env 2, Katom)
      | 1 -> (gen_numseq rng !env 2, Knum)
      | _ -> (gen_seq rng !env 2, Kany)
    in
    push (Ast.Let [ (var, e) ]);
    env := (var, kind) :: !env
  done;
  if Prng.one_in rng 6 then begin
    let var = fresh "c" in
    push (Ast.Count var);
    env := (var, Kint) :: !env
  end;
  if Prng.one_in rng 2 then push (Ast.Where (gen_bool rng !env 2));
  (* group by *)
  let grouped = not (Prng.one_in rng 4) in
  (* aggregate-only consumption: the nest variables never escape into
     the general expression pool — their only uses are the aggregate
     calls appended to the return element, which is exactly the shape
     the optimizer's eager-aggregation pushdown fires on *)
  let agg_nest_vars = ref [] in
  if grouped then begin
    let keys =
      List.init (1 + Prng.int rng 3) (fun _ ->
          let e, safe = gen_key rng !env in
          let using =
            if Prng.one_in rng 6 then Some (fn "deep-equal") else None
          in
          (({ key_expr = e; key_var = fresh "g"; using } : Ast.group_key),
           safe))
    in
    let agg_only = Prng.one_in rng 3 in
    let nests =
      List.init (Prng.int rng 3) (fun _ ->
          let e, kind =
            if Prng.one_in rng 2 then (gen_numseq rng !env 2, Knum)
            else (gen_seq rng !env 2, Kany)
          in
          (* pushdown eligibility needs unsorted nests *)
          let nest_order =
            if (not agg_only) && Prng.one_in rng 3 then
              [ gen_order_spec rng !env 1 ]
            else []
          in
          (({ nest_expr = e; nest_order; nest_var = fresh "n" } :
              Ast.nest_spec),
           kind))
    in
    push
      (Ast.Group_by
         { keys = List.map fst keys; nests = List.map fst nests });
    if agg_only then
      agg_nest_vars := List.map (fun ((n : Ast.nest_spec), _) -> n.nest_var) nests;
    env :=
      List.map
        (fun ((k : Ast.group_key), safe) ->
          (k.key_var, if safe then Katom else Kany))
        keys
      @ (if agg_only then []
         else
           List.map
             (fun ((n : Ast.nest_spec), kind) -> (n.nest_var, kind))
             nests);
    (* post-group lets and where *)
    for _ = 1 to Prng.int rng 3 do
      let var = fresh "l" in
      push (Ast.Let [ (var, gen_atom rng !env 2) ]);
      env := (var, Katom) :: !env
    done;
    if Prng.one_in rng 3 then push (Ast.Where (gen_bool rng !env 1))
  end;
  (* trailing order by *)
  let ordered =
    if grouped then not (Prng.one_in rng 3) else Prng.one_in rng 2
  in
  if ordered then
    push
      (Ast.Order_by
         {
           stable = Prng.one_in rng 4;
           specs = List.init (1 + Prng.int rng 2) (fun _ ->
               gen_order_spec rng !env 2);
         });
  (* [return at $rank] exposes tuple order, so only emit it when the
     order is pinned (a trailing order by) or no grouping reordered
     anything — otherwise the paper leaves group order undefined and the
     rank would bake an implementation choice into the output. *)
  let return_at =
    if (ordered || not grouped) && Prng.one_in rng 3 then begin
      let v = fresh "r" in
      env := (v, Kint) :: !env;
      Some v
    end
    else None
  in
  let return_expr = gen_return rng !env in
  (* aggregate-only nests surface here and nowhere else: one aggregate
     call per nest variable, appended to the returned element *)
  let return_expr =
    match return_expr, !agg_nest_vars with
    | _, [] -> return_expr
    | Ast.Direct_elem d, vars ->
      let aggs =
        List.map
          (fun v ->
            Ast.Content_expr
              (Ast.Call (fn (Prng.pick rng agg_names), [ Ast.Var v ])))
          vars
      in
      Ast.Direct_elem { d with content = d.content @ aggs }
    | other, _ -> other
  in
  let query =
    Ast.query_of_expr
      (Ast.Flwor { clauses = List.rev !clauses; return_at; return_expr })
  in
  Static.check_query query;
  { seed; query; doc }
  end

(* --- key lists for partition-agreement tests ---------------------------- *)

let key_item rng =
  match Prng.int rng 8 with
  | 0 -> Item.Atomic (Atomic.Int (Prng.int rng 3))
  | 1 -> Item.Atomic (Atomic.Str (Prng.pick rng [| "a"; "b"; "" |]))
  | 2 -> Item.Atomic (Atomic.Untyped (Prng.pick rng [| "1"; "2"; "a" |]))
  | 3 -> Item.Atomic (Atomic.Dec (float_of_int (Prng.int rng 3)))
  | 4 -> Item.Atomic (Atomic.Dbl (float_of_int (Prng.int rng 3)))
  | _ ->
    let el = Node.element (nm (Prng.pick rng [| "e"; "f" |])) in
    if Prng.one_in rng 3 then
      Node.set_attribute el
        (Node.attribute (nm "k") (Prng.pick rng [| "a"; "b" |]));
    if not (Prng.one_in rng 4) then
      Node.append_child el (Node.text (Prng.pick rng [| "1"; "2"; "x" |]));
    Item.Node el

let key_lists seed =
  let rng = Prng.create seed in
  let n_tuples = 4 + Prng.int rng 13 in
  let n_keys = 1 + Prng.int rng 3 in
  List.init n_tuples (fun _ ->
      List.init n_keys (fun _ ->
          List.init (Prng.int rng 4) (fun _ -> key_item rng)))
