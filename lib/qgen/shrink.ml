open Xq_xdm
open Xq_lang

(* --- expression reductions ---------------------------------------------- *)

(* replace a list element by each of its variants *)
let variants_at f xs =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
           (f x))
       xs)

let drop_one xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> i <> j) xs) xs

(* one-step reductions of an expression: strictly smaller subexpressions
   first, then same-shape structural reductions, then the same shape
   with one child reduced, then literal collapse as a last resort *)
let rec expr_candidates (e : Ast.expr) : Ast.expr list =
  let subs =
    match e with
    | Arith (_, a, b)
    | And (a, b)
    | Or (a, b)
    | General_cmp (_, a, b)
    | Value_cmp (_, a, b)
    | Range (a, b) -> [ a; b ]
    | Neg a -> [ a ]
    | Call (_, args) -> args
    | Sequence es -> es
    | If (c, t, e) -> [ c; t; e ]
    | Quantified (_, binds, body) -> body :: List.map snd binds
    | Slash (a, _) -> [ a ]
    | Filter (a, _) -> [ a ]
    | Direct_elem d ->
      List.filter_map
        (function Ast.Content_expr e -> Some e | _ -> None)
        d.content
    | _ -> []
  in
  let shallow =
    match e with
    | Sequence es when List.length es > 2 ->
      List.map (fun es' -> Ast.Sequence es') (drop_one es)
    | Call (n, args) when args <> [] ->
      List.map (fun args' -> Ast.Call (n, args')) (drop_one args)
    | Step (ax, t, preds) when preds <> [] ->
      List.map (fun p' -> Ast.Step (ax, t, p')) (drop_one preds)
    | Filter (a, preds) ->
      List.map (fun p' -> Ast.Filter (a, p')) (drop_one preds)
    | Quantified (q, binds, body) when List.length binds > 1 ->
      List.map (fun b' -> Ast.Quantified (q, b', body)) (drop_one binds)
    | Direct_elem d ->
      List.map (fun a' -> Ast.Direct_elem { d with attrs = a' })
        (drop_one d.attrs)
      @ List.map
          (fun c' -> Ast.Direct_elem { d with content = c' })
          (drop_one d.content)
    | _ -> []
  in
  let rec_child =
    match e with
    | Arith (op, a, b) ->
      List.map (fun a' -> Ast.Arith (op, a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.Arith (op, a, b')) (expr_candidates b)
    | And (a, b) ->
      List.map (fun a' -> Ast.And (a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.And (a, b')) (expr_candidates b)
    | Or (a, b) ->
      List.map (fun a' -> Ast.Or (a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.Or (a, b')) (expr_candidates b)
    | General_cmp (op, a, b) ->
      List.map (fun a' -> Ast.General_cmp (op, a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.General_cmp (op, a, b')) (expr_candidates b)
    | Value_cmp (op, a, b) ->
      List.map (fun a' -> Ast.Value_cmp (op, a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.Value_cmp (op, a, b')) (expr_candidates b)
    | Range (a, b) ->
      List.map (fun a' -> Ast.Range (a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.Range (a, b')) (expr_candidates b)
    | Neg a -> List.map (fun a' -> Ast.Neg a') (expr_candidates a)
    | Call (n, args) ->
      List.map (fun a' -> Ast.Call (n, a')) (variants_at expr_candidates args)
    | Sequence es ->
      List.map (fun es' -> Ast.Sequence es')
        (variants_at expr_candidates es)
    | If (c, t, e2) ->
      List.map (fun c' -> Ast.If (c', t, e2)) (expr_candidates c)
      @ List.map (fun t' -> Ast.If (c, t', e2)) (expr_candidates t)
      @ List.map (fun e' -> Ast.If (c, t, e')) (expr_candidates e2)
    | Quantified (q, binds, body) ->
      List.map
        (fun b' -> Ast.Quantified (q, b', body))
        (variants_at
           (fun (v, src) ->
             List.map (fun s' -> (v, s')) (expr_candidates src))
           binds)
      @ List.map
          (fun body' -> Ast.Quantified (q, binds, body'))
          (expr_candidates body)
    | Slash (a, b) ->
      List.map (fun a' -> Ast.Slash (a', b)) (expr_candidates a)
      @ List.map (fun b' -> Ast.Slash (a, b')) (expr_candidates b)
    | Step (ax, t, preds) ->
      List.map (fun p' -> Ast.Step (ax, t, p'))
        (variants_at expr_candidates preds)
    | Filter (a, preds) ->
      List.map (fun a' -> Ast.Filter (a', preds)) (expr_candidates a)
      @ List.map (fun p' -> Ast.Filter (a, p'))
          (variants_at expr_candidates preds)
    | Direct_elem d ->
      List.map (fun a' -> Ast.Direct_elem { d with attrs = a' })
        (variants_at
           (fun (a : Ast.direct_attr) ->
             List.map
               (fun v' -> { a with Ast.attr_value = v' })
               (variants_at
                  (function
                    | Ast.Attr_expr e ->
                      List.map (fun e' -> Ast.Attr_expr e') (expr_candidates e)
                    | Ast.Attr_text _ -> [])
                  a.attr_value))
           d.attrs)
      @ List.map
          (fun c' -> Ast.Direct_elem { d with content = c' })
          (variants_at
             (function
               | Ast.Content_expr e ->
                 List.map (fun e' -> Ast.Content_expr e') (expr_candidates e)
               | Ast.Content_elem d' ->
                 List.filter_map
                   (function
                     | Ast.Direct_elem d'' -> Some (Ast.Content_elem d'')
                     | _ -> None)
                   (expr_candidates (Ast.Direct_elem d'))
               | _ -> [])
             d.content)
    | _ -> []
  in
  let collapse =
    match e with
    | Literal (Atomic.Int n) when n <> 0 -> [ Ast.Literal (Atomic.Int 0) ]
    | Literal (Atomic.Str s) when s <> "" -> [ Ast.Literal (Atomic.Str "") ]
    | Literal _ | Var _ -> []
    | _ -> [ Ast.Literal (Atomic.Int 0) ]
  in
  subs @ shallow @ rec_child @ collapse

(* --- clause and query reductions ---------------------------------------- *)

let clause_candidates (c : Ast.clause) : Ast.clause list =
  match c with
  | For bindings ->
    List.map (fun b' -> Ast.For b') (variants_at
      (fun (fb : Ast.for_binding) ->
        (match fb.positional with
         | Some _ -> [ { fb with positional = None } ]
         | None -> [])
        @ List.map (fun s' -> { fb with for_src = s' })
            (expr_candidates fb.for_src))
      bindings)
  | Let bindings ->
    List.map (fun b' -> Ast.Let b') (variants_at
      (fun (v, e) -> List.map (fun e' -> (v, e')) (expr_candidates e))
      bindings)
  | Where e -> List.map (fun e' -> Ast.Where e') (expr_candidates e)
  | Order_by { stable; specs } ->
    (if stable then [ Ast.Order_by { stable = false; specs } ] else [])
    @ (if List.length specs > 1 then
         List.map (fun s' -> Ast.Order_by { stable; specs = s' })
           (drop_one specs)
       else [])
    @ List.map
        (fun s' -> Ast.Order_by { stable; specs = s' })
        (variants_at
           (fun (e, m) -> List.map (fun e' -> (e', m)) (expr_candidates e))
           specs)
  | Count _ -> []
  | Group_by g ->
    (if List.length g.keys > 1 then
       List.map (fun ks -> Ast.Group_by { g with keys = ks })
         (drop_one g.keys)
     else [])
    @ List.map (fun ns -> Ast.Group_by { g with nests = ns })
        (drop_one g.nests)
    @ List.map (fun ks -> Ast.Group_by { g with keys = ks })
        (variants_at
           (fun (k : Ast.group_key) ->
             (match k.using with
              | Some _ -> [ { k with using = None } ]
              | None -> [])
             @ List.map (fun e' -> { k with key_expr = e' })
                 (expr_candidates k.key_expr))
           g.keys)
    @ List.map (fun ns -> Ast.Group_by { g with nests = ns })
        (variants_at
           (fun (n : Ast.nest_spec) ->
             (if n.nest_order <> [] then [ { n with nest_order = [] } ]
              else [])
             @ List.map (fun e' -> { n with nest_expr = e' })
                 (expr_candidates n.nest_expr))
           g.nests)
  | Window _ -> []

let query_candidates (q : Ast.query) : Ast.query list =
  match q.body with
  | Flwor f ->
    let with_body body = { q with body = Ast.Flwor body } in
    List.map (fun cs -> with_body { f with clauses = cs })
      (drop_one f.clauses)
    @ (match f.return_at with
       | Some _ -> [ with_body { f with return_at = None } ]
       | None -> [])
    @ List.map (fun cs -> with_body { f with clauses = cs })
        (variants_at clause_candidates f.clauses)
    @ List.map
        (fun e' -> with_body { f with return_expr = e' })
        (expr_candidates f.return_expr)
  | body -> List.map (fun b -> { q with body = b }) (expr_candidates body)

(* --- document reductions ------------------------------------------------- *)

type tree =
  | Elem of string * (string * string) list * tree list
  | Txt of string

let rec tree_of_node n =
  match Node.kind n with
  | Node.Text -> Some (Txt (Node.string_value n))
  | Node.Element ->
    let name = Xname.to_string (Option.get (Node.name n)) in
    let attrs =
      List.map
        (fun a ->
          (Xname.to_string (Option.get (Node.name a)), Node.attribute_value a))
        (Node.attributes n)
    in
    Some (Elem (name, attrs, List.filter_map tree_of_node (Node.children n)))
  | _ -> None

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf t =
  match t with
  | Txt s -> Buffer.add_string buf (escape s)
  | Elem (name, attrs, children) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
      attrs;
    if children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (render buf) children;
      Buffer.add_string buf (Printf.sprintf "</%s>" name)
    end

let render_tree t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* all trees with one node or attribute removed; the root stays *)
let rec tree_variants t =
  match t with
  | Txt _ -> []
  | Elem (name, attrs, children) ->
    List.map (fun a' -> Elem (name, a', children)) (drop_one attrs)
    @ List.map (fun c' -> Elem (name, attrs, c')) (drop_one children)
    @ List.map
        (fun c' -> Elem (name, attrs, c'))
        (variants_at tree_variants children)

let doc_candidates doc =
  match Xq_xml.Xml_parse.parse doc with
  | exception _ -> []
  | node ->
    let root =
      match Node.kind node with
      | Node.Document -> begin
        match List.filter_map tree_of_node (Node.children node) with
        | [ t ] -> Some t
        | _ -> None
      end
      | _ -> tree_of_node node
    in
    (match root with
     | None -> []
     | Some t -> List.map render_tree (tree_variants t))

(* --- the greedy loop ----------------------------------------------------- *)

let well_formed q =
  try
    Static.check_query q;
    match Qgen.round_trips q with Ok () -> true | Error _ -> false
  with _ -> false

let shrink ~still_failing ~query ~doc =
  let fails q d = try still_failing q d with _ -> false in
  let rec loop query doc =
    let next_q =
      List.find_opt
        (fun q' -> well_formed q' && fails q' doc)
        (query_candidates query)
    in
    match next_q with
    | Some q' -> loop q' doc
    | None -> begin
      match List.find_opt (fun d' -> fails query d') (doc_candidates doc) with
      | Some d' -> loop query d'
      | None -> (query, doc)
    end
  in
  if fails query doc then loop query doc else (query, doc)
