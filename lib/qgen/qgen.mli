(** Grammar-driven generator of well-scoped FLWOR/grouping queries and
    matching small input documents, seeded with the workload splitmix64
    PRNG so every case replays from its integer seed.

    The grammar covers what the paper's extensions exercise: multiple
    [for] clauses (with positionals), [let], [where], [group by] with
    one-to-three possibly sequence-valued keys (paths to attributes,
    repeated child elements, computed keys, explicit [using
    fn:deep-equal]), [nest … order by … into], post-grouping [let] and
    [where], a trailing (optionally [stable]) [order by], [count],
    [return at $rank], and the aggregate builtins over nesting
    variables. A third of grouped queries bind aggregate-only nests
    (the nest variable's sole uses are aggregate calls in the return
    element — the eager-aggregation pushdown's trigger shape), and one
    seed in eight emits the paper's §6 implicit-grouping anti-pattern
    (a [distinct-values] self-join in either Table 1 shape, which
    [Rewrite.detect] must recognize). Scoping is correct by construction — generated queries
    always pass {!Xq_lang.Static.check_query} — and key-value domains
    are kept small so groups actually collide.

    Size budgets (item counts, clause counts, expression depth) keep
    every query's evaluation well under a millisecond, so a fuzzing run
    is generation-bound, not evaluation-bound.

    Three constructs the pretty-printer cannot round-trip losslessly are
    never emitted: boolean literals (print as [fn:true()], which
    reparses as a call), one-element [Sequence] nodes (print as plain
    parentheses, which collapse), and negative integer literals (lex as
    unary minus). The round-trip property [parse (pretty q) = q] holds
    on everything this module generates, and the fuzzer replays each
    query through the printer to enforce it. *)

type case = {
  seed : int;
  query : Xq_lang.Ast.query;  (** passes [Static.check_query] *)
  doc : string;               (** matching XML document source *)
}

(** Generate the case for a seed. Deterministic. *)
val generate : int -> case

(** Pretty-print a query ([Pretty.query_to_string] re-exported so fuzz
    tooling needs no direct [Xq_lang] dependency). *)
val query_text : Xq_lang.Ast.query -> string

(** Parse the pretty-printed text back and compare structurally —
    the round-trip property. Returns the reparsed AST on mismatch. *)
val round_trips : Xq_lang.Ast.query -> (unit, Xq_lang.Ast.query) result

(** Generate just a list of key sequences for partition-agreement tests
    (used by [test/test_key.ml]): documents' worth of small, collision-
    prone, possibly sequence-valued key lists. *)
val key_lists : int -> Xq_xdm.Xseq.t list list
