(* Differential fuzzing driver: generated queries, real engine under a
   configuration matrix, naive oracle, greedy shrinking. Argument
   parsing is hand-rolled so `--help` stays byte-stable for the golden
   test. Exit status: 0 clean sweep, 3 divergence found, 1 usage. *)

let help_text =
  "xq_fuzz - differential fuzzer: engine vs. naive reference evaluator\n\n\
   Usage: xq_fuzz [OPTIONS]\n\n\
   Generates random FLWOR/group-by queries with matching small documents\n\
   (seeded, replayable), runs each through the engine under a sampled\n\
   configuration matrix (direct evaluator; plan executor at strategy\n\
   hash/sort/auto, parallel degree 1/2/4, spill watermark armed or off;\n\
   fault injection always off) and compares per-item serialized output\n\
   against the naive reference evaluator - as multisets of items when\n\
   group order is unpinned (paper section 3.4.2). Failing cases are\n\
   greedily shrunk to minimal reproducers.\n\n\
   Options:\n\
   \  --seeds A-B      seed range to fuzz, inclusive (default 0-99); a\n\
   \                   single number N means N-N\n\
   \  --duration SECS  stop after about SECS seconds even if seeds remain\n\
   \                   (0 = no time box; default 0)\n\
   \  --out DIR        write each failure's minimized reproducer to\n\
   \                   DIR/fail-SEED.xq / .xml / .txt\n\
   \  --inject-bug     artificially drop the engine's last result item --\n\
   \                   a test-only defect that exercises the shrinker\n\
   \  --verbose        print every case as it runs\n\
   \  --help           show this help\n\n\
   Exit status: 0 clean sweep, 3 divergence or round-trip failure found,\n\
   1 usage error.\n"

let usage_error msg =
  Printf.eprintf "xq_fuzz: %s\nTry 'xq_fuzz --help'.\n" msg;
  exit 1

let parse_seeds s =
  let int_of x =
    match int_of_string_opt x with
    | Some n when n >= 0 -> n
    | _ -> usage_error (Printf.sprintf "invalid seed %S" x)
  in
  match String.index_opt s '-' with
  | None ->
    let n = int_of s in
    (n, n)
  | Some i ->
    let a = int_of (String.sub s 0 i)
    and b = int_of (String.sub s (i + 1) (String.length s - i - 1)) in
    if a > b then usage_error (Printf.sprintf "empty seed range %S" s);
    (a, b)

type opts = {
  mutable seed_lo : int;
  mutable seed_hi : int;
  mutable duration : float;
  mutable out_dir : string option;
  mutable inject_bug : bool;
  mutable verbose : bool;
}

let parse_args () =
  let o =
    {
      seed_lo = 0;
      seed_hi = 99;
      duration = 0.;
      out_dir = None;
      inject_bug = false;
      verbose = false;
    }
  in
  let rec go = function
    | [] -> o
    | "--help" :: _ | "-h" :: _ ->
      print_string help_text;
      exit 0
    | "--seeds" :: v :: rest ->
      let lo, hi = parse_seeds v in
      o.seed_lo <- lo;
      o.seed_hi <- hi;
      go rest
    | "--duration" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some d when d >= 0. ->
        o.duration <- d;
        go rest
      | _ -> usage_error (Printf.sprintf "invalid duration %S" v)
    end
    | "--out" :: v :: rest ->
      o.out_dir <- Some v;
      go rest
    | "--inject-bug" :: rest ->
      o.inject_bug <- true;
      go rest
    | "--verbose" :: rest ->
      o.verbose <- true;
      go rest
    | (("--seeds" | "--duration" | "--out") as flag) :: [] ->
      usage_error (Printf.sprintf "%s needs a value" flag)
    | arg :: _ -> usage_error (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv))

let outcome_summary = function
  | Xq_fuzzer.Fuzz.Error_code c -> "error " ^ c
  | Xq_fuzzer.Fuzz.Output items ->
    let n = List.length items in
    let shown = List.filteri (fun i _ -> i < 3) items in
    Printf.sprintf "%d item(s): %s%s" n (String.concat " " shown)
      (if n > 3 then " ..." else "")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let report_failure o ~seed ~query ~doc ~detail =
  let module Fuzz = Xq_fuzzer.Fuzz in
  let config, oracle, engine, shrink_cfg =
    match detail with
    | `Divergence (config, oracle, engine) ->
      (Fuzz.config_label config, outcome_summary oracle,
       outcome_summary engine, Some config)
    | `Roundtrip -> ("pretty/parse round-trip", "-", "-", None)
  in
  let small_q, small_doc =
    match shrink_cfg with
    | Some cfg ->
      Fuzz.shrink_divergence ~inject_bug:o.inject_bug cfg ~doc query
    | None -> (query, doc)
  in
  let q_text = Xq_qgen.Qgen.query_text small_q in
  Printf.printf
    "FAIL seed %d [%s]\n  oracle: %s\n  engine: %s\nminimized query:\n%s\n\
     minimized document:\n%s\nreplay: xq_fuzz --seeds %d-%d%s\n%!"
    seed config oracle engine q_text small_doc seed seed
    (if o.inject_bug then " --inject-bug" else "");
  match o.out_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let base = Filename.concat dir (Printf.sprintf "fail-%d" seed) in
    write_file (base ^ ".xq") q_text;
    write_file (base ^ ".xml") small_doc;
    write_file (base ^ ".txt")
      (Printf.sprintf
         "seed: %d\nconfig: %s\noracle: %s\nengine: %s\n"
         seed config oracle engine)

let () =
  let module Fuzz = Xq_fuzzer.Fuzz in
  let o = parse_args () in
  (* a stale XQ_FAULTS would make every engine run flaky on purpose;
     differential fuzzing needs the engine deterministic *)
  Xq_governor.Governor.clear_faults ();
  let started = Unix.gettimeofday () in
  let cases = ref 0
  and config_runs = ref 0
  and failures = ref 0
  and unsupported = ref 0
  and timed_out = ref false in
  (try
     for seed = o.seed_lo to o.seed_hi do
       if o.duration > 0. && Unix.gettimeofday () -. started > o.duration
       then begin
         timed_out := true;
         raise Exit
       end;
       let case = Xq_qgen.Qgen.generate seed in
       let configs = Fuzz.sampled_configs ~seed in
       if o.verbose then
         Printf.printf "seed %d (%d configs):\n%s\n%!" seed
           (List.length configs)
           (Xq_qgen.Qgen.query_text case.query);
       incr cases;
       match
         Fuzz.check_case ~inject_bug:o.inject_bug ~configs ~doc:case.doc
           case.query
       with
       | Fuzz.Pass n -> config_runs := !config_runs + n
       | Fuzz.Oracle_unsupported what ->
         incr unsupported;
         Printf.printf "seed %d: oracle cannot evaluate this case (%s)\n%!"
           seed what
       | Fuzz.Roundtrip_failure ->
         incr failures;
         report_failure o ~seed ~query:case.query ~doc:case.doc
           ~detail:`Roundtrip
       | Fuzz.Divergence { config; oracle; engine } ->
         incr failures;
         report_failure o ~seed ~query:case.query ~doc:case.doc
           ~detail:(`Divergence (config, oracle, engine))
     done
   with Exit -> ());
  Printf.printf
    "xq_fuzz: %d case(s), %d clean config-run(s), %d failure(s), %d \
     unsupported%s (%.1fs)\n"
    !cases !config_runs !failures !unsupported
    (if !timed_out then ", time box hit" else "")
    (Unix.gettimeofday () -. started);
  exit (if !failures > 0 then 3 else 0)
