(* xq — command-line front end for the engine.

     xq run query.xq --input data.xml [--rewrite] [--indent] [--time]
     xq eval 'for $x in (1,2) return $x * 2'
     xq check query.xq
     xq plan query.xq [--rewrite]
     xq gen orders --lineitems 8000 > orders.xml
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Exit-code taxonomy: 0 ok, 1 usage, 2 static error, 3 dynamic error,
   4 resource limit. Structured errors carry their class
   (Xerror.exit_code); a malformed input document is a dynamic error. *)
let with_errors f =
  match f () with
  | () -> 0
  | exception Xq.Xdm.Xerror.Error (code, msg) ->
    Printf.eprintf "error %s\n"
      (Xq.Xdm.Xerror.to_message code msg);
    Xq.Xdm.Xerror.exit_code code
  | exception (Xq.Xml.Xml_parse.Parse_error _ as e) -> begin
    match Xq.Xml.Xml_parse.error_to_string e with
    | Some m -> Printf.eprintf "%s\n" m; 3
    | None -> raise e
  end

(* Install a governor built from --timeout/--max-groups/--max-mem/
   --spill-at and the environment for the duration of [f]; [f] receives
   the governor so commands can report its stats. *)
let governed ?timeout_ms ?max_groups ?max_mem_mb ?spill_watermark_bytes f =
  match
    Xq.Governor.of_limits ?timeout_ms ?max_groups ?max_mem_mb
      ?spill_watermark_bytes ()
  with
  | None -> f None
  | Some g -> Xq.Governor.with_governor g (fun () -> f (Some g))

(* Route --spill-dir / --no-spill to the spill-file manager before any
   grouping runs. *)
let apply_spill ~spill_dir ~no_spill =
  (match spill_dir with
   | Some _ as d -> Xq.Spill.set_dir d
   | None -> ());
  if no_spill then Xq.Spill.set_enabled false

(* One stderr line when the query actually spilled, so operators see the
   degraded mode without turning on profiling. *)
let report_spill_stats = function
  | None -> ()
  | Some s ->
    if s.Xq.Governor.s_spill_files > 0 then
      Printf.eprintf "xq: spilled %d bytes across %d file(s)%s\n"
        s.Xq.Governor.s_spilled_bytes s.Xq.Governor.s_spill_files
        (if s.Xq.Governor.s_repartitions > 0 then
           Printf.sprintf " (%d repartition pass(es))"
             s.Xq.Governor.s_repartitions
         else "")

(* --- arguments -------------------------------------------------------- *)

let query_file =
  let doc = "File containing the XQuery expression." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)

let query_string =
  let doc = "The XQuery expression itself." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc)

let input_file =
  let doc = "XML document to query (default: an empty document)." in
  Arg.(value & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)

let rewrite_flag =
  let doc = "Apply the implicit-group-by rewrite before evaluation." in
  Arg.(value & flag & info [ "rewrite" ] ~doc)

let no_agg_pushdown_flag =
  let doc =
    "Disable the eager-aggregation pushdown (groups materialize member \
     lists even when nest variables are only aggregated). Results are \
     byte-identical either way; this is the ablation/kill switch. \
     $(b,XQ_NO_AGG_PUSHDOWN=1) is the environment equivalent."
  in
  Arg.(value & flag & info [ "no-agg-pushdown" ] ~doc)

let indent_flag =
  let doc = "Pretty-print the XML output." in
  Arg.(value & flag & info [ "indent" ] ~doc)

let time_flag =
  let doc = "Report evaluation wall-clock time on stderr." in
  Arg.(value & flag & info [ "time" ] ~doc)

let explain_analyze_flag =
  let doc =
    "EXPLAIN ANALYZE: execute the query through the plan algebra and \
     print the executed operator tree annotated with per-operator rows \
     in/out, groups built, comparator calls and CPU time, instead of the \
     query result."
  in
  Arg.(value & flag & info [ "explain-analyze" ] ~doc)

let strategy_opt =
  let doc =
    "Grouping strategy for the plan algebra: $(b,hash) (one-pass hash), \
     $(b,sort) (sort-based grouping) or $(b,auto) (sort when a \
     downstream order-by on the group keys can be fused). Defaults to \
     the $(b,XQ_GROUP_STRATEGY) environment variable, else hash."
  in
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("hash", Xq.Algebra.Optimizer.Hash);
                ("sort", Xq.Algebra.Optimizer.Sort);
                ("auto", Xq.Algebra.Optimizer.Auto) ]))
        None
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let parallel_opt =
  let doc =
    "Domain-pool degree for grouping and sorting (stdlib multicore \
     domains). 1 (the default) is the sequential code path; any degree \
     produces byte-identical output. Defaults to the $(b,XQ_PARALLEL) \
     environment variable, else 1."
  in
  Arg.(value & opt (some int) None & info [ "parallel" ] ~docv:"N" ~doc)

(* Limit values must be positive; a bad value is a usage error (exit 1). *)
let pos_int what =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let batch_opt =
  let doc =
    "Executor batch size: tuples flow between plan operators in vectors \
     of $(docv) (default: $(b,XQ_BATCH) or 4096). $(b,--batch 1) is \
     item-at-a-time execution; output is byte-identical at any size."
  in
  Arg.(
    value
    & opt (some (pos_int "--batch")) None
    & info [ "batch" ] ~docv:"N" ~env:(Cmd.Env.info "XQ_BATCH") ~doc)

let timeout_opt =
  let doc =
    "Abort the query after $(docv) milliseconds of wall-clock time \
     (error XQENG0001, exit code 4)."
  in
  Arg.(
    value
    & opt (some (pos_int "--timeout")) None
    & info [ "timeout" ] ~docv:"MS" ~env:(Cmd.Env.info "XQ_TIMEOUT") ~doc)

let max_groups_opt =
  let doc =
    "Abort when grouping materializes more than $(docv) groups (error \
     XQENG0003, exit code 4)."
  in
  Arg.(
    value
    & opt (some (pos_int "--max-groups")) None
    & info [ "max-groups" ] ~docv:"N" ~env:(Cmd.Env.info "XQ_MAX_GROUPS") ~doc)

let max_mem_opt =
  let doc =
    "Abort when the query's approximate memory footprint (GC heap growth \
     plus materialized key bytes) exceeds $(docv) megabytes (error \
     XQENG0002, exit code 4)."
  in
  Arg.(
    value
    & opt (some (pos_int "--max-mem")) None
    & info [ "max-mem" ] ~docv:"MB" ~env:(Cmd.Env.info "XQ_MAX_MEM") ~doc)

let spill_at_opt =
  let doc =
    "Soft memory watermark in megabytes: when grouping's charged bytes \
     cross it, in-memory groups spill to disk and the query keeps \
     running instead of tripping XQENG0002. Defaults to half of \
     $(b,--max-mem) when that is set; spilling is off otherwise."
  in
  Arg.(
    value
    & opt (some (pos_int "--spill-at")) None
    & info [ "spill-at" ] ~docv:"MB" ~env:(Cmd.Env.info "XQ_SPILL_AT") ~doc)

let spill_dir_opt =
  let doc =
    "Directory for spill files (default: $(b,TMPDIR), else /tmp). Files \
     are unlinked at creation where possible, so a crash leaves nothing \
     behind."
  in
  Arg.(
    value
    & opt (some dir) None
    & info [ "spill-dir" ] ~docv:"DIR" ~env:(Cmd.Env.info "XQ_SPILL_DIR") ~doc)

let no_spill_flag =
  let doc =
    "Disable spilling: memory pressure trips XQENG0002 (exit 4) as it \
     would with no spill directory."
  in
  Arg.(value & flag & info [ "no-spill" ] ~doc)

let stream_flag =
  let on =
    let doc =
      "Require streamed ingestion of $(b,--input): the document is \
       scanned with projection pushdown and only query-relevant \
       subtrees are materialized, so memory is bounded by the matched \
       working set instead of the document size. Streaming is on by \
       default whenever the query is streamable; this flag additionally \
       prints a notice when it is not (and the run falls back to \
       materializing). $(b,XQ_NO_STREAM=1) disables streaming globally."
    in
    (Some true, Arg.info [ "stream" ] ~doc)
  in
  let off =
    let doc = "Always materialize the input document before evaluating." in
    (Some false, Arg.info [ "no-stream" ] ~doc)
  in
  Arg.(value & vflag None [ on; off ])

(* --stream/--no-stream beats XQ_STREAM beats the silent default. *)
let stream_knob = function
  | Some _ as explicit -> explicit
  | None -> (
    match Sys.getenv_opt "XQ_STREAM" with
    | Some ("0" | "false" | "no") -> Some false
    | Some _ -> Some true
    | None -> None)

let load_input = function
  | Some path -> Xq.load_file path
  | None -> Xq.load_string "<empty/>"

(* Make --parallel the process default so both the direct evaluator and
   the plan algebra honor it. *)
let apply_parallel = function
  | Some n -> Xq.Par.set_default_degree n
  | None -> ()

(* All evaluation flows through the shared pipeline — the same
   compile-and-run path the REPL, fuzzer and query server use — so the
   front ends cannot drift apart. The CLI keeps only presentation:
   printing, --time, and the spill report. *)
let run_common ~source ~input ~rewrite ~indent ~time ~explain_analyze ~strategy
    ~parallel ~batch ~timeout ~max_groups ~max_mem ~spill_at ~spill_dir
    ~no_spill ~stream ~no_agg_pushdown =
  with_errors (fun () ->
      apply_spill ~spill_dir ~no_spill;
      if no_agg_pushdown then Xq.Algebra.Optimizer.set_agg_pushdown false;
      let knobs =
        Xq.Pipeline.
          {
            k_strategy = strategy;
            k_parallel = parallel;
            k_batch = batch;
            k_rewrite = rewrite;
            k_use_index = false;
            k_timeout_ms = timeout;
            k_max_groups = max_groups;
            k_max_mem_mb = max_mem;
            k_spill_at_mb = spill_at;
            k_stream = stream_knob stream;
          }
      in
      (* a file input goes to the pipeline as a streamable source (it
         decides, from the projection verdict and the knobs, whether to
         stream or materialize); stdin-less runs keep the empty doc *)
      let report =
        match input with
        | Some path ->
          Xq.Pipeline.run ~knobs ~indent ~explain_analyze ~source
            ~stream_source:(`File path) ()
        | None ->
          Xq.Pipeline.run ~knobs ~indent ~explain_analyze ~source
            ~load_doc:(fun () -> load_input input)
            ()
      in
      if explain_analyze then print_string report.Xq.Pipeline.r_output
      else begin
        print_endline report.Xq.Pipeline.r_output;
        if time then
          Printf.eprintf "evaluated in %.1f ms (%d items)\n"
            report.Xq.Pipeline.r_elapsed_ms report.Xq.Pipeline.r_items
      end;
      report_spill_stats report.Xq.Pipeline.r_stats;
      (* machine-checkable resource line (CI soak asserts the peak
         estimate stays under the spill watermark) *)
      match (Sys.getenv_opt "XQ_GOV_SUMMARY", report.Xq.Pipeline.r_stats) with
      | Some "1", Some s ->
        Printf.eprintf "xq: peak-mem=%dB spilled=%dB spill-files=%d\n"
          s.Xq.Governor.s_peak_mem_bytes s.Xq.Governor.s_spilled_bytes
          s.Xq.Governor.s_spill_files
      | _ -> ())

(* --- commands ----------------------------------------------------------- *)

let run_cmd =
  let action qf input rewrite indent time explain_analyze strategy parallel
      batch timeout max_groups max_mem spill_at spill_dir no_spill stream
      no_agg_pushdown =
    run_common ~source:(read_file qf) ~input ~rewrite ~indent ~time
      ~explain_analyze ~strategy ~parallel ~batch ~timeout ~max_groups
      ~max_mem ~spill_at ~spill_dir ~no_spill ~stream ~no_agg_pushdown
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a query file against an XML document.")
    Term.(
      const action $ query_file $ input_file $ rewrite_flag $ indent_flag
      $ time_flag $ explain_analyze_flag $ strategy_opt $ parallel_opt
      $ batch_opt $ timeout_opt $ max_groups_opt $ max_mem_opt $ spill_at_opt
      $ spill_dir_opt $ no_spill_flag $ stream_flag $ no_agg_pushdown_flag)

let eval_cmd =
  let action expr input rewrite indent time explain_analyze strategy parallel
      batch timeout max_groups max_mem spill_at spill_dir no_spill stream
      no_agg_pushdown =
    run_common ~source:expr ~input ~rewrite ~indent ~time ~explain_analyze
      ~strategy ~parallel ~batch ~timeout ~max_groups ~max_mem ~spill_at
      ~spill_dir ~no_spill ~stream ~no_agg_pushdown
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query given on the command line.")
    Term.(
      const action $ query_string $ input_file $ rewrite_flag $ indent_flag
      $ time_flag $ explain_analyze_flag $ strategy_opt $ parallel_opt
      $ batch_opt $ timeout_opt $ max_groups_opt $ max_mem_opt $ spill_at_opt
      $ spill_dir_opt $ no_spill_flag $ stream_flag $ no_agg_pushdown_flag)

let check_cmd =
  let action qf =
    with_errors (fun () ->
        Xq.check (Xq.parse (read_file qf));
        print_endline "ok")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and statically check a query file.")
    Term.(const action $ query_file)

let optimize_counts_flag =
  let doc = "Apply the count optimization (nest a literal 1 when the \
             nesting variable is only counted)." in
  Arg.(value & flag & info [ "optimize-counts" ] ~doc)

let explain_flag =
  let doc = "Print the evaluation plan instead of the query text." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let plan_cmd =
  let action qf rewrite optimize explain =
    with_errors (fun () ->
        let query = Xq.parse (read_file qf) in
        Xq.check query;
        let query =
          if rewrite then Xq.Rewrite.Rewrite.rewrite_query query else query
        in
        let query =
          if optimize then Xq.Rewrite.Rewrite.optimize_counts_query query
          else query
        in
        if explain then print_string (Xq.Rewrite.Explain.query query)
        else print_endline (Xq.Lang.Pretty.query query))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Print the parsed (optionally rewritten) query back as XQuery, \
             or its evaluation plan with --explain.")
    Term.(const action $ query_file $ rewrite_flag $ optimize_counts_flag
          $ explain_flag)

let plan_optimize_flag =
  let doc = "Run the logical plan optimizer before executing." in
  Arg.(value & flag & info [ "optimize" ] ~doc)

let profile_cmd =
  let action qf input optimize strategy parallel batch timeout max_groups
      max_mem spill_at spill_dir no_spill =
    with_errors (fun () ->
      apply_spill ~spill_dir ~no_spill;
      governed ?timeout_ms:timeout ?max_groups ?max_mem_mb:max_mem
        ?spill_watermark_bytes:
          (Option.map (fun mb -> mb * 1024 * 1024) spill_at)
        (fun gov ->
        apply_parallel parallel;
        (match batch with Some n -> Xq.Batch.set_size (Some n) | None -> ());
        let doc = load_input input in
        (match gov with
         | Some g -> Xq.Governor.rebaseline g
         | None -> ());
        let query = Xq.parse (read_file qf) in
        Xq.check query;
        match query.Xq.Lang.Ast.body with
        | Xq.Lang.Ast.Flwor f ->
          let plan = Xq.Algebra.Plan.of_flwor f in
          let plan =
            let strategy =
              match strategy with
              | Some s -> s
              | None -> Xq.Algebra.Optimizer.strategy_from_env ()
            in
            Xq.Algebra.Optimizer.apply_strategy strategy plan
          in
          let plan = Xq.Algebra.Optimizer.push_aggregates plan in
          let plan =
            if optimize then Xq.Algebra.Optimizer.optimize plan else plan
          in
          let ctx = Xq.Algebra.Exec.query_context ~context_node:doc query in
          print_string (Xq.Algebra.Plan.to_string plan);
          let result, stats =
            Xq.Algebra.Exec.run_instrumented ?parallel ctx plan
          in
          Printf.printf "\n%-24s %10s %10s %10s %10s %10s %8s %8s %5s %12s\n"
            "operator" "rows in" "rows out" "groups" "cmp" "walks" "dict"
            "batches" "par" "cpu ms";
          List.iter
            (fun (s : Xq.Algebra.Exec.Stats.entry) ->
              Printf.printf "%-24s %10d %10d %10s %10d %10d %8d %8d %5d %12.2f\n"
                s.Xq.Algebra.Exec.Stats.label s.Xq.Algebra.Exec.Stats.rows_in
                s.Xq.Algebra.Exec.Stats.rows_out
                (match s.Xq.Algebra.Exec.Stats.groups_built with
                 | Some g -> string_of_int g
                 | None -> "-")
                s.Xq.Algebra.Exec.Stats.cmp_calls
                s.Xq.Algebra.Exec.Stats.key_walks
                s.Xq.Algebra.Exec.Stats.dict_interns
                s.Xq.Algebra.Exec.Stats.batches s.Xq.Algebra.Exec.Stats.par
                s.Xq.Algebra.Exec.Stats.elapsed_ms)
            stats;
          Printf.printf "\nresult: %d item(s)\n" (Xq.length result);
          (match gov with
           | Some g -> Printf.printf "%s\n" (Xq.Governor.summary g)
           | None -> ())
        | _ ->
          Printf.eprintf "profile: the query body must be a FLWOR expression\n"))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Compile the query to a plan, execute it and report per-operator \
             row counts, comparator calls and CPU time.")
    Term.(
      const action $ query_file $ input_file $ plan_optimize_flag
      $ strategy_opt $ parallel_opt $ batch_opt $ timeout_opt
      $ max_groups_opt $ max_mem_opt $ spill_at_opt $ spill_dir_opt
      $ no_spill_flag)

let gen_cmd =
  let workload =
    let doc = "Workload: orders, sales or bibliography." in
    Arg.(
      required
      & pos 0 (some (enum [ ("orders", `Orders); ("sales", `Sales);
                            ("bibliography", `Bib) ])) None
      & info [] ~docv:"WORKLOAD" ~doc)
  in
  let size =
    let doc = "Collection size (lineitems / sales / books)." in
    Arg.(value & opt int 1000 & info [ "n"; "size" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let action which size seed =
    let node =
      match which with
      | `Orders ->
        Xq_workload.Orders.(generate { (with_lineitems size default) with seed })
      | `Sales -> Xq_workload.Sales.(generate { default with sales = size; seed })
      | `Bib ->
        Xq_workload.Bibliography.(
          generate { default with books = size; with_categories = true; seed })
    in
    print_endline (Xq.Xml.Serialize.node node);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic workload document on stdout.")
    Term.(const action $ workload $ size $ seed)

let () =
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 1 ~doc:"on usage errors (bad command line or option value).";
      Cmd.Exit.info 2 ~doc:"on static query errors (XPST*, XQST*).";
      Cmd.Exit.info 3
        ~doc:"on dynamic errors (type errors, malformed input documents).";
      Cmd.Exit.info 4
        ~doc:
          "on resource-limit trips (XQENG* errors from --timeout, \
           --max-groups, --max-mem, cancellation, input limits or \
           spill-file I/O failures).";
    ]
  in
  let info =
    Cmd.info "xq" ~version:"1.0.0" ~exits
      ~doc:
        "An XQuery engine with the SIGMOD 2005 analytics extensions \
         (group by / nest / using / return at)."
  in
  let cmd =
    Cmd.group info
      [ run_cmd; eval_cmd; check_cmd; plan_cmd; profile_cmd; gen_cmd ]
  in
  (* Map cmdliner's own failures onto the documented taxonomy: anything
     wrong with the command line itself is a usage error. *)
  exit
    (match Cmd.eval_value cmd with
     | Ok (`Ok code) -> code
     | Ok (`Help | `Version) -> 0
     | Error (`Parse | `Term | `Exn) -> 1)
