(* xq-repl — an interactive shell for the engine.

   Lines are accumulated until they parse as a complete query (so
   multi-line FLWORs work); a trailing ";;" forces evaluation of whatever
   has been typed. Directives:

     :load FILE      load an XML document as the context item
     :gen WHICH N    generate a workload (orders|sales|bibliography|auction)
     :plan           toggle printing the compiled plan before results
     :explain        explain the last query's evaluation plan
     :index          toggle the element-name index
     :quit           exit
*)

let banner =
  "xqgroup interactive shell — XQuery with the SIGMOD 2005 analytics \
   extensions.\nType a query (multi-line supported), :help for directives."

let help =
  ":load FILE | :gen orders|sales|bibliography|auction N | :plan | :index | \
   :explain | :help | :quit"

type state = {
  mutable doc : Xq.doc;
  mutable show_plan : bool;
  mutable use_index : bool;
  mutable last_query : Xq.Lang.Ast.query option;
}

(* The session must survive any exception; backtraces are noise for
   interactive use, so they only print under XQ_DEBUG=1. *)
let debug = Sys.getenv_opt "XQ_DEBUG" = Some "1"

let print_error e =
  let bt = if debug then Printexc.get_backtrace () else "" in
  (match e with
   | Xq.Xdm.Xerror.Error (code, msg) ->
     Printf.printf "error %s\n%!" (Xq.Xdm.Xerror.to_message code msg)
   | e -> begin
     match Xq.Xml.Xml_parse.error_to_string e with
     | Some m -> Printf.printf "%s\n%!" m
     | None -> Printf.printf "error: %s\n%!" (Printexc.to_string e)
   end);
  if bt <> "" then prerr_string bt

let evaluate st source =
  match Xq.parse source with
  | exception e -> `Parse_error e
  | query -> begin
    match Xq.check query with
    | exception e -> `Static_error e
    | () ->
      st.last_query <- Some query;
      (try
         if st.show_plan then
           match query.Xq.Lang.Ast.body with
           | Xq.Lang.Ast.Flwor f ->
             print_string
               (Xq.Algebra.Plan.to_string (Xq.Algebra.Plan.of_flwor f))
           | _ -> ()
       with e -> print_error e);
      (* evaluation goes through the shared pipeline (the CLI, fuzzer
         and query server path). Resource limits from the environment
         (XQ_TIMEOUT, XQ_MAX_GROUPS, XQ_MAX_MEM, …) apply per
         evaluation — each query gets a fresh deadline and budget, and
         a trip never takes the session down. The pipeline serializes
         before we print, so an error (from evaluation or from
         serialization itself) never emits a partial result. *)
      match
        Xq.Pipeline.run
          ~knobs:
            Xq.Pipeline.
              { default_knobs with k_use_index = st.use_index }
          ~indent:true
          ~compiled:(Xq.Pipeline.of_query ~source query)
          ~load_doc:(fun () -> st.doc)
          ()
      with
      | report ->
        print_endline report.Xq.Pipeline.r_output;
        `Ok
      | exception e -> `Dynamic_error e
  end

let directive st line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ ":quit" ] | [ ":q" ] -> `Quit
  | [ ":help" ] -> print_endline help; `Handled
  | [ ":plan" ] ->
    st.show_plan <- not st.show_plan;
    Printf.printf "plan printing %s\n%!" (if st.show_plan then "on" else "off");
    `Handled
  | [ ":index" ] ->
    st.use_index <- not st.use_index;
    Printf.printf "element-name index %s\n%!"
      (if st.use_index then "on" else "off");
    `Handled
  | [ ":explain" ] -> begin
    (match st.last_query with
     | Some q -> print_string (Xq.Rewrite.Explain.query q)
     | None -> print_endline "no query evaluated yet");
    `Handled
  end
  | [ ":load"; path ] -> begin
    (try
       st.doc <- Xq.load_file path;
       Printf.printf "loaded %s\n%!" path
     with e -> print_error e);
    `Handled
  end
  | [ ":gen"; which; n ] -> begin
    (match int_of_string_opt n with
     | None -> print_endline "usage: :gen orders|sales|bibliography|auction N"
     | Some size ->
       let doc =
         match which with
         | "orders" ->
           Some Xq_workload.Orders.(generate (with_lineitems size default))
         | "sales" ->
           Some Xq_workload.Sales.(generate { default with sales = size })
         | "bibliography" ->
           Some
             Xq_workload.Bibliography.(
               generate { default with books = size; with_categories = true })
         | "auction" ->
           Some Xq_workload.Auction.(generate { default with items = size })
         | _ -> None
       in
       match doc with
       | Some d ->
         st.doc <- d;
         Printf.printf "generated %s workload (%d)\n%!" which size
       | None -> print_endline "unknown workload");
    `Handled
  end
  | _ ->
    print_endline "unknown directive; :help lists them";
    `Handled

let () =
  if debug then Printexc.record_backtrace true;
  print_endline banner;
  let st =
    {
      doc = Xq.load_string "<empty/>";
      show_plan = false;
      use_index = false;
      last_query = None;
    }
  in
  let buffer = Buffer.create 256 in
  let prompt () =
    print_string (if Buffer.length buffer = 0 then "xq> " else "  > ");
    flush stdout
  in
  let rec loop () =
    prompt ();
    match input_line stdin with
    | exception End_of_file -> print_endline "bye"
    | line ->
      let line_trim = String.trim line in
      if Buffer.length buffer = 0 && String.length line_trim > 0
         && line_trim.[0] = ':'
      then begin
        match
          (try directive st line_trim
           with e ->
             print_error e;
             `Handled)
        with
        | `Quit -> print_endline "bye"
        | `Handled -> loop ()
      end
      else begin
        let forced =
          String.length line_trim >= 2
          && String.sub line_trim (String.length line_trim - 2) 2 = ";;"
        in
        let line =
          if forced then String.sub line_trim 0 (String.length line_trim - 2)
          else line
        in
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let source = Buffer.contents buffer in
        if String.trim source = "" then begin
          Buffer.clear buffer;
          loop ()
        end
        else begin
          match evaluate st source with
          | `Ok | `Static_error _ | `Dynamic_error _ as r ->
            (match r with
             | `Static_error e | `Dynamic_error e -> print_error e
             | _ -> ());
            Buffer.clear buffer;
            loop ()
          | `Parse_error e ->
            (* maybe the query just isn't finished: keep buffering unless
               the user forced evaluation *)
            if forced then begin
              print_error e;
              Buffer.clear buffer
            end;
            loop ()
        end
      end
  in
  loop ()
