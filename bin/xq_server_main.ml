(* xq-server — resident query daemon and its client.

     xq-server serve --socket /tmp/xq.sock [--plan-cache 64]
                     [--doc-cache-mb 256] [--max-concurrent 8]
                     [--admit-at 1024]
     xq-server once                  # protocol loop on stdin/stdout
     xq-server run query.xq --socket /tmp/xq.sock [-i data.xml] [...]
     xq-server stats --socket /tmp/xq.sock
     xq-server ping --socket /tmp/xq.sock

   The daemon keeps compiled plans and parsed documents resident
   between requests, multiplexes concurrent queries over per-query
   governors, and refuses work with XQENG0007 (exit family 4) when its
   memory watermark is hot. [run] speaks the wire protocol and prints
   exactly what [xq run] would, with the same exit-code taxonomy, so
   the two are interchangeable in scripts. *)

open Cmdliner
module Server = Xq_server.Server_core
module Protocol = Xq_server.Protocol

(* --- serve -------------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let pos_int what =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Ok n
    | Some _ | None ->
      Error
        (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let config_term =
  let plan_cache =
    let doc = "Plan-cache capacity (compiled queries kept resident)." in
    Arg.(
      value
      & opt (pos_int "--plan-cache") Server.default_config.Server.c_plan_capacity
      & info [ "plan-cache" ] ~docv:"N" ~doc)
  in
  let doc_cache_mb =
    let doc = "Document-store capacity in megabytes (resident estimate)." in
    Arg.(
      value
      & opt (pos_int "--doc-cache-mb") 256
      & info [ "doc-cache-mb" ] ~docv:"MB" ~doc)
  in
  let max_concurrent =
    let doc = "Admission concurrency cap: queries executing at once." in
    Arg.(
      value
      & opt
          (pos_int "--max-concurrent")
          Server.default_config.Server.c_max_concurrent
      & info [ "max-concurrent" ] ~docv:"N" ~doc)
  in
  let admit_at =
    let doc =
      "Admission memory watermark in megabytes: new queries are refused \
       with XQENG0007 while the server's resident-plus-heap estimate is \
       past it. 0 disables the memory gate."
    in
    Arg.(value & opt int 1024 & info [ "admit-at" ] ~docv:"MB" ~doc)
  in
  let build plan_cache doc_cache_mb max_concurrent admit_at =
    {
      Server.default_config with
      Server.c_plan_capacity = plan_cache;
      c_doc_capacity_bytes = doc_cache_mb * 1024 * 1024;
      c_max_concurrent = max_concurrent;
      c_admission_watermark_mb = (if admit_at <= 0 then None else Some admit_at);
    }
  in
  Term.(const build $ plan_cache $ doc_cache_mb $ max_concurrent $ admit_at)

let serve_cmd =
  let action socket config =
    let t = Server.create ~config () in
    Printf.eprintf "xq-server: listening on %s\n%!" socket;
    Server.serve_unix t ~path:socket ~stop:(fun () -> false) ();
    0
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the resident query daemon on a Unix socket.")
    Term.(const action $ socket_arg $ config_term)

let once_cmd =
  let action config =
    let t = Server.create ~config () in
    Server.serve_connection t stdin stdout;
    0
  in
  Cmd.v
    (Cmd.info "once"
       ~doc:
         "Serve one protocol conversation on stdin/stdout — the daemon's \
          request loop without the socket, for tests and scripting.")
    Term.(const action $ config_term)

(* --- client ------------------------------------------------------------- *)

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

(* One round trip; connection problems are usage-class failures (the
   daemon isn't there), server-reported errors keep their own family. *)
let round_trip path cmd ~on_ok =
  match connect path with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "xq-server: cannot connect to %s: %s\n" path
      (Unix.error_message e);
    1
  | sock, ic, oc ->
    Fun.protect
      ~finally:(fun () ->
        (* one fd behind both channels: flush, close once *)
        (try flush oc with Sys_error _ -> ());
        try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Protocol.write_command oc cmd;
        match Protocol.read_response ic with
        | Protocol.Payload p -> on_ok p
        | Protocol.Error { message; exit; _ } ->
          Printf.eprintf "error %s\n" message;
          exit
        | exception (End_of_file | Sys_error _) ->
          Printf.eprintf "xq-server: connection lost\n";
          1)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_cmd =
  let query_file =
    let doc = "File containing the XQuery expression." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)
  in
  let input_file =
    let doc =
      "XML document to query, referenced by path so the server's resident \
       store serves repeat queries without reparsing."
    in
    Arg.(
      value & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)
  in
  let inline_flag =
    let doc =
      "Ship the input document's bytes inline instead of its path (no \
       server-side caching; works when the server cannot see the file)."
    in
    Arg.(value & flag & info [ "inline" ] ~doc)
  in
  let strategy_opt =
    let doc = "Grouping strategy: hash, sort or auto." in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("hash", Xq.Algebra.Optimizer.Hash);
                  ("sort", Xq.Algebra.Optimizer.Sort);
                  ("auto", Xq.Algebra.Optimizer.Auto) ]))
          None
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let parallel_opt =
    Arg.(
      value
      & opt (some (pos_int "--parallel")) None
      & info [ "parallel" ] ~docv:"N" ~doc:"Domain-pool degree.")
  in
  let batch_opt =
    Arg.(
      value
      & opt (some (pos_int "--batch")) None
      & info [ "batch" ] ~docv:"N" ~doc:"Executor batch size (1 = item-at-a-time).")
  in
  let timeout_opt =
    Arg.(
      value
      & opt (some (pos_int "--timeout")) None
      & info [ "timeout" ] ~docv:"MS" ~doc:"Per-query deadline (XQENG0001).")
  in
  let max_groups_opt =
    Arg.(
      value
      & opt (some (pos_int "--max-groups")) None
      & info [ "max-groups" ] ~docv:"N" ~doc:"Group cap (XQENG0003).")
  in
  let max_mem_opt =
    Arg.(
      value
      & opt (some (pos_int "--max-mem")) None
      & info [ "max-mem" ] ~docv:"MB" ~doc:"Memory budget (XQENG0002).")
  in
  let spill_at_opt =
    Arg.(
      value
      & opt (some (pos_int "--spill-at")) None
      & info [ "spill-at" ] ~docv:"MB" ~doc:"Soft spill watermark.")
  in
  let rewrite_flag =
    Arg.(
      value & flag
      & info [ "rewrite" ] ~doc:"Apply the implicit-group-by rewrite.")
  in
  let index_flag =
    Arg.(value & flag & info [ "index" ] ~doc:"Use the element-name index.")
  in
  let indent_flag =
    Arg.(value & flag & info [ "indent" ] ~doc:"Pretty-print the output.")
  in
  let action socket qf input inline strategy parallel batch timeout max_groups
      max_mem spill_at rewrite use_index indent =
    let rq_doc =
      match input with
      | None -> Protocol.Doc_none
      | Some p when inline -> Protocol.Doc_inline (read_file p)
      | Some p ->
        (* absolute path: the daemon's cwd is not the client's *)
        Protocol.Doc_path
          (if Filename.is_relative p then
             Filename.concat (Sys.getcwd ()) p
           else p)
    in
    let cmd =
      Protocol.Run
        {
          Protocol.rq_source = read_file qf;
          rq_doc;
          rq_knobs =
            Xq.Pipeline.
              {
                k_strategy = strategy;
                k_parallel = parallel;
                k_batch = batch;
                k_rewrite = rewrite;
                k_use_index = use_index;
                k_timeout_ms = timeout;
                k_max_groups = max_groups;
                k_max_mem_mb = max_mem;
                k_spill_at_mb = spill_at;
              };
          rq_indent = indent;
        }
    in
    round_trip socket cmd ~on_ok:(fun payload ->
        (* the payload already carries [xq run]'s trailing newline *)
        print_string payload;
        0)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a query file through the daemon, printing exactly what \
          'xq run' would.")
    Term.(
      const action $ socket_arg $ query_file $ input_file $ inline_flag
      $ strategy_opt $ parallel_opt $ batch_opt $ timeout_opt $ max_groups_opt
      $ max_mem_opt $ spill_at_opt $ rewrite_flag $ index_flag $ indent_flag)

let stats_cmd =
  let action socket =
    round_trip socket Protocol.Stats ~on_ok:(fun p ->
        print_string p;
        0)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's counters, one per line.")
    Term.(const action $ socket_arg)

let ping_cmd =
  let action socket =
    round_trip socket Protocol.Ping ~on_ok:(fun p ->
        print_endline p;
        0)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Check the daemon is accepting connections.")
    Term.(const action $ socket_arg)

let () =
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 1
        ~doc:"on usage or connection errors (daemon unreachable).";
      Cmd.Exit.info 2 ~doc:"on static query errors reported by the daemon.";
      Cmd.Exit.info 3 ~doc:"on dynamic errors reported by the daemon.";
      Cmd.Exit.info 4
        ~doc:
          "on resource trips reported by the daemon, including XQENG0007 \
           admission rejections.";
    ]
  in
  let info =
    Cmd.info "xq-server" ~version:"1.0.0" ~exits
      ~doc:
        "Resident query daemon: plan cache, shared document store, \
         per-query governors and admission control over a Unix socket."
  in
  exit
    (match
       Cmd.eval_value
         (Cmd.group info [ serve_cmd; once_cmd; run_cmd; stats_cmd; ping_cmd ])
     with
     | Ok (`Ok code) -> code
     | Ok (`Help | `Version) -> 0
     | Error (`Parse | `Term | `Exn) -> 1)
