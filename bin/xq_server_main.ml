(* xq-server — resident query daemon, its supervisor and its client.

     xq-server serve --socket /tmp/xq.sock [--plan-cache 64]
                     [--doc-cache-mb 256] [--max-concurrent 8]
                     [--admit-at 1024] [--drain-timeout 5000]
                     [--max-request-bytes N] [--max-connections 64]
                     [--retry-after-ms 200]
                     [--supervise [--max-restarts 5]
                      [--restart-window 30] [--backoff-ms 100]]
                     [--chaos-crash]
     xq-server once                  # protocol loop on stdin/stdout
     xq-server run query.xq --socket /tmp/xq.sock [-i data.xml] [...]
     xq-server stats --socket /tmp/xq.sock
     xq-server ping --socket /tmp/xq.sock

   Lifecycle: SIGTERM/SIGINT flip the daemon into draining mode — the
   listener closes at once, new RUNs are refused with XQENG0007 plus a
   RETRY-AFTER-MS hint, in-flight queries get --drain-timeout to
   finish (stragglers are cooperatively cancelled, XQENG0004), final
   STATS go to stderr, and the process exits 0. Under --supervise a
   parent process restarts the serving worker on abnormal death with
   jittered exponential backoff, giving up (exit 70, crash report on
   stderr) when crashes cluster faster than --max-restarts per
   --restart-window seconds. Exit codes: 0 clean drain/shutdown, 1
   usage (bad flags, socket owned by a live server, daemon
   unreachable), 70 crash-loop give-up.

   The client commands ride lib/client: connection failures and
   XQENG0007 refusals are retried with jittered exponential backoff,
   honouring the server's RETRY-AFTER-MS hints, under --retries and an
   optional end-to-end --deadline. [run] prints exactly what [xq run]
   would, with the same exit-code taxonomy, so the two are
   interchangeable in scripts. *)

open Cmdliner
module Server = Xq_server.Server_core
module Protocol = Xq_server.Protocol
module Client = Xq_client.Client
module Governor = Xq_governor.Governor

(* --- serve -------------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let pos_int what =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Ok n
    | Some _ | None ->
      Error
        (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let config_term =
  let plan_cache =
    let doc = "Plan-cache capacity (compiled queries kept resident)." in
    Arg.(
      value
      & opt (pos_int "--plan-cache") Server.default_config.Server.c_plan_capacity
      & info [ "plan-cache" ] ~docv:"N" ~doc)
  in
  let doc_cache_mb =
    let doc = "Document-store capacity in megabytes (resident estimate)." in
    Arg.(
      value
      & opt (pos_int "--doc-cache-mb") 256
      & info [ "doc-cache-mb" ] ~docv:"MB" ~doc)
  in
  let max_concurrent =
    let doc = "Admission concurrency cap: queries executing at once." in
    Arg.(
      value
      & opt
          (pos_int "--max-concurrent")
          Server.default_config.Server.c_max_concurrent
      & info [ "max-concurrent" ] ~docv:"N" ~doc)
  in
  let admit_at =
    let doc =
      "Admission memory watermark in megabytes: new queries are refused \
       with XQENG0007 while the server's resident-plus-heap estimate is \
       past it. 0 disables the memory gate."
    in
    Arg.(value & opt int 1024 & info [ "admit-at" ] ~docv:"MB" ~doc)
  in
  let drain_timeout =
    let doc =
      "Drain window in milliseconds: after SIGTERM/SIGINT, in-flight \
       queries may keep running this long before their governors are \
       cooperatively cancelled (XQENG0004)."
    in
    Arg.(
      value
      & opt (pos_int "--drain-timeout")
          Server.default_config.Server.c_drain_timeout_ms
      & info [ "drain-timeout" ] ~docv:"MS" ~doc)
  in
  let max_request_bytes =
    let doc =
      "Cap on any counted request field (QUERY, DOCINLINE): a longer \
       declared length is answered USAGE before any allocation."
    in
    Arg.(
      value
      & opt (pos_int "--max-request-bytes")
          Server.default_config.Server.c_max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"BYTES" ~doc)
  in
  let max_connections =
    let doc =
      "Connection-thread cap, separate from query admission: over-cap \
       connects get one XQENG0007 refusal frame and are closed."
    in
    Arg.(
      value
      & opt (pos_int "--max-connections")
          Server.default_config.Server.c_max_connections
      & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let retry_after_ms =
    let doc =
      "The RETRY-AFTER-MS hint sent with load-based XQENG0007 refusals \
       (drain refusals hint the drain window instead)."
    in
    Arg.(
      value
      & opt (pos_int "--retry-after-ms")
          Server.default_config.Server.c_retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS" ~doc)
  in
  let build plan_cache doc_cache_mb max_concurrent admit_at drain_timeout
      max_request_bytes max_connections retry_after_ms =
    {
      Server.default_config with
      Server.c_plan_capacity = plan_cache;
      c_doc_capacity_bytes = doc_cache_mb * 1024 * 1024;
      c_max_concurrent = max_concurrent;
      c_admission_watermark_mb = (if admit_at <= 0 then None else Some admit_at);
      c_drain_timeout_ms = drain_timeout;
      c_max_request_bytes = max_request_bytes;
      c_max_connections = max_connections;
      c_retry_after_ms = retry_after_ms;
    }
  in
  Term.(
    const build $ plan_cache $ doc_cache_mb $ max_concurrent $ admit_at
    $ drain_timeout $ max_request_bytes $ max_connections $ retry_after_ms)

(* --- the serving worker -------------------------------------------------- *)

(* One serving process: signal wiring, the accept loop, final STATS on
   stderr once drained. Runs directly ([serve]) or as the supervised
   child ([serve --supervise]). *)
let serve_worker ~socket ~config ~chaos_crash () =
  let t = Server.create ~config () in
  (* Async-signal-safe by construction: request_drain is one atomic
     store. The interrupted select/accept surfaces as EINTR, which the
     accept loop treats as "re-check the flags". *)
  let drain = Sys.Signal_handle (fun _ -> Server.request_drain t) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain;
  (* A handled no-op, not Signal_ignore: delivery still interrupts
     syscalls, so `kill -USR1` is a liveness probe of the daemon's
     EINTR hardening (and of nothing else). *)
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ()));
  (match chaos_crash with
  | None -> ()
  | Some rate -> Governor.arm_crash_faults ?rate ());
  match
    Printf.eprintf "xq-server: listening on %s (pid %d)\n%!" socket
      (Unix.getpid ());
    Server.serve_unix t ~path:socket ~stop:(fun () -> false) ()
  with
  | report ->
    Printf.eprintf
      "xq-server: drained in %d ms (%d in flight at signal, %d cancelled)\n"
      report.Server.dr_elapsed_ms report.Server.dr_inflight_at_drain
      report.Server.dr_cancelled;
    prerr_string (Server.stats_text t);
    flush stderr;
    0
  | exception Server.Socket_in_use msg ->
    Printf.eprintf "xq-server: %s\n%!" msg;
    1

(* --- the supervisor ------------------------------------------------------ *)

(* Keep a serving child alive: fork it, wait, and on abnormal death
   (killed by a signal, or exit >= 2 — an uncaught crash) restart it
   after a jittered exponential backoff. Exit 0 is a clean drain and
   exit 1 a configuration error; neither is retried. Crashes clustering
   faster than [max_restarts] in [window_s] seconds mean restarting is
   not helping — give up with a crash report and exit 70. *)
let supervise ~max_restarts ~window_s ~backoff_ms run_child =
  let child = ref 0 in
  let stopping = ref false in
  let forward signum =
    Sys.Signal_handle
      (fun _ ->
        stopping := true;
        if !child > 0 then
          try Unix.kill !child signum with Unix.Unix_error _ -> ())
  in
  Sys.set_signal Sys.sigterm (forward Sys.sigterm);
  Sys.set_signal Sys.sigint (forward Sys.sigint);
  let jitter_state = ref (Int64.of_int ((Unix.getpid () * 2) + 1)) in
  let jitter () =
    let open Int64 in
    let z = add !jitter_state 0x9E3779B97F4A7C15L in
    jitter_state := z;
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.to_float (shift_right_logical (logxor z (shift_right_logical z 31)) 11)
    /. 9007199254740992.0
  in
  let rec waitpid pid =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
  in
  let crash_times = ref [] in
  let describe = function
    | Unix.WEXITED c -> Printf.sprintf "exit %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
  in
  let rec loop restarts =
    match Unix.fork () with
    | 0 -> Stdlib.exit (run_child ())
    | pid ->
      child := pid;
      (* a signal that raced the fork: forward it now *)
      if !stopping then
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      let status = waitpid pid in
      child := 0;
      (match status with
       | Unix.WEXITED 0 -> 0
       | Unix.WEXITED 1 ->
         Printf.eprintf
           "xq-supervisor: worker exited 1 (configuration error), not \
            restarting\n%!";
         1
       | status when !stopping ->
         Printf.eprintf "xq-supervisor: worker %s during shutdown\n%!"
           (describe status);
         (match status with Unix.WEXITED c -> c | _ -> 70)
       | status ->
         let now = Unix.gettimeofday () in
         crash_times :=
           now :: List.filter (fun t0 -> now -. t0 <= window_s) !crash_times;
         let recent = List.length !crash_times in
         if recent > max_restarts then begin
           Printf.eprintf
             "xq-supervisor: crash loop — %d crashes within %.0f s (last: \
              %s after %d restart(s)); giving up\n%!"
             recent window_s (describe status) restarts;
           70
         end
         else begin
           let nominal =
             min (backoff_ms * (1 lsl min 20 (recent - 1))) 10_000
           in
           let delay =
             float_of_int nominal *. (0.5 +. jitter ()) /. 1000.0
           in
           Printf.eprintf
             "xq-supervisor: worker %s; restart %d in %.0f ms\n%!"
             (describe status) (restarts + 1) (delay *. 1000.0);
           Unix.sleepf delay;
           if !stopping then 0 else loop (restarts + 1)
         end)
  in
  loop 0

let serve_cmd =
  let supervise_flag =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Fork the serving worker under a supervisor that restarts it \
             on abnormal death with jittered exponential backoff.")
  in
  let max_restarts =
    Arg.(
      value
      & opt (pos_int "--max-restarts") 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Crash-loop threshold: give up (exit 70) past this many \
             crashes within the restart window.")
  in
  let restart_window =
    Arg.(
      value
      & opt (pos_int "--restart-window") 30
      & info [ "restart-window" ] ~docv:"SECONDS"
          ~doc:"The sliding window for crash-loop detection.")
  in
  let backoff =
    Arg.(
      value
      & opt (pos_int "--backoff-ms") 100
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base restart backoff (doubles per recent crash, jittered).")
  in
  let chaos_crash =
    (* bare --chaos-crash draws at the shared XQ_FAULTS rate;
       --chaos-crash=0.2 gives the crash stream its own rate so chaos
       harnesses can crash often while alloc/conn noise stays rare *)
    Arg.(
      value
      & opt ~vopt:(Some None) (some (some float)) None
      & info [ "chaos-crash" ] ~docv:"RATE"
          ~doc:
            "Arm the XQ_FAULTS worker-crash stream: drawn faults kill the \
             serving process abruptly mid-query. An optional =RATE overrides \
             the shared XQ_FAULTS rate for this stream only. Chaos testing \
             only; pointless without --supervise.")
  in
  let action socket config drain_supervise max_restarts restart_window
      backoff_ms chaos_crash =
    let worker = serve_worker ~socket ~config ~chaos_crash in
    if drain_supervise then
      supervise ~max_restarts ~window_s:(float_of_int restart_window)
        ~backoff_ms worker
    else worker ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident query daemon on a Unix socket (optionally \
          supervised).")
    Term.(
      const action $ socket_arg $ config_term $ supervise_flag $ max_restarts
      $ restart_window $ backoff $ chaos_crash)

let once_cmd =
  let action config =
    let t = Server.create ~config () in
    Server.serve_connection t stdin stdout;
    0
  in
  Cmd.v
    (Cmd.info "once"
       ~doc:
         "Serve one protocol conversation on stdin/stdout — the daemon's \
          request loop without the socket, for tests and scripting.")
    Term.(const action $ config_term)

(* --- client ------------------------------------------------------------- *)

let retries_arg =
  Arg.(
    value
    & opt (pos_int "--retries") 5
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Attempts per request: connection failures and XQENG0007 \
           refusals are retried with jittered exponential backoff, \
           honouring the server's RETRY-AFTER-MS hints.")

let retry_base_arg =
  Arg.(
    value
    & opt (pos_int "--retry-base-ms") 50
    & info [ "retry-base-ms" ] ~docv:"MS"
        ~doc:"Base backoff before the first retry (doubles per attempt).")

let deadline_arg =
  Arg.(
    value
    & opt (some (pos_int "--deadline")) None
    & info [ "deadline" ] ~docv:"MS"
        ~doc:
          "End-to-end deadline for the request, covering all retries and \
           socket reads.")

(* One command through the retry layer; server-reported errors keep
   their own exit family, exhausted retries are usage-class failures
   (the daemon isn't there). *)
let round_trip socket ~retries ~retry_base ~deadline cmd ~on_ok =
  let client =
    Client.create ~attempts:retries ~base_backoff_ms:retry_base
      ?deadline_ms:deadline ~seed:(Unix.getpid ()) ~socket ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      match Client.request client cmd with
      | Ok p -> on_ok p
      | Error (Client.Server_error { message; _ } as f) ->
        Printf.eprintf "error %s\n" message;
        Client.exit_code f
      | Error (Client.Unreachable _ as f) ->
        Printf.eprintf "xq-server: %s\n" (Client.failure_message f);
        Client.exit_code f)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_cmd =
  let query_file =
    let doc = "File containing the XQuery expression." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)
  in
  let input_file =
    let doc =
      "XML document to query, referenced by path so the server's resident \
       store serves repeat queries without reparsing."
    in
    Arg.(
      value & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)
  in
  let inline_flag =
    let doc =
      "Ship the input document's bytes inline instead of its path (no \
       server-side caching; works when the server cannot see the file)."
    in
    Arg.(value & flag & info [ "inline" ] ~doc)
  in
  let strategy_opt =
    let doc = "Grouping strategy: hash, sort or auto." in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("hash", Xq.Algebra.Optimizer.Hash);
                  ("sort", Xq.Algebra.Optimizer.Sort);
                  ("auto", Xq.Algebra.Optimizer.Auto) ]))
          None
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let parallel_opt =
    Arg.(
      value
      & opt (some (pos_int "--parallel")) None
      & info [ "parallel" ] ~docv:"N" ~doc:"Domain-pool degree.")
  in
  let batch_opt =
    Arg.(
      value
      & opt (some (pos_int "--batch")) None
      & info [ "batch" ] ~docv:"N" ~doc:"Executor batch size (1 = item-at-a-time).")
  in
  let timeout_opt =
    Arg.(
      value
      & opt (some (pos_int "--timeout")) None
      & info [ "timeout" ] ~docv:"MS" ~doc:"Per-query deadline (XQENG0001).")
  in
  let max_groups_opt =
    Arg.(
      value
      & opt (some (pos_int "--max-groups")) None
      & info [ "max-groups" ] ~docv:"N" ~doc:"Group cap (XQENG0003).")
  in
  let max_mem_opt =
    Arg.(
      value
      & opt (some (pos_int "--max-mem")) None
      & info [ "max-mem" ] ~docv:"MB" ~doc:"Memory budget (XQENG0002).")
  in
  let spill_at_opt =
    Arg.(
      value
      & opt (some (pos_int "--spill-at")) None
      & info [ "spill-at" ] ~docv:"MB" ~doc:"Soft spill watermark.")
  in
  let rewrite_flag =
    Arg.(
      value & flag
      & info [ "rewrite" ] ~doc:"Apply the implicit-group-by rewrite.")
  in
  let index_flag =
    Arg.(value & flag & info [ "index" ] ~doc:"Use the element-name index.")
  in
  let indent_flag =
    Arg.(value & flag & info [ "indent" ] ~doc:"Pretty-print the output.")
  in
  let stream_flag =
    Arg.(
      value
      & vflag None
          [
            ( Some true,
              info [ "stream" ]
                ~doc:
                  "Stream the document (projection pushdown, document \
                   store bypassed) when the query allows." );
            ( Some false,
              info [ "no-stream" ] ~doc:"Always materialize the document." );
          ])
  in
  let action socket retries retry_base deadline qf input inline strategy
      parallel batch timeout max_groups max_mem spill_at rewrite use_index
      indent stream =
    let rq_doc =
      match input with
      | None -> Protocol.Doc_none
      | Some p when inline -> Protocol.Doc_inline (read_file p)
      | Some p ->
        (* absolute path: the daemon's cwd is not the client's *)
        Protocol.Doc_path
          (if Filename.is_relative p then
             Filename.concat (Sys.getcwd ()) p
           else p)
    in
    let cmd =
      Protocol.Run
        {
          Protocol.rq_source = read_file qf;
          rq_doc;
          rq_knobs =
            Xq.Pipeline.
              {
                k_strategy = strategy;
                k_parallel = parallel;
                k_batch = batch;
                k_rewrite = rewrite;
                k_use_index = use_index;
                k_timeout_ms = timeout;
                k_max_groups = max_groups;
                k_max_mem_mb = max_mem;
                k_spill_at_mb = spill_at;
                k_stream = stream;
              };
          rq_indent = indent;
        }
    in
    round_trip socket ~retries ~retry_base ~deadline cmd ~on_ok:(fun payload ->
        (* the payload already carries [xq run]'s trailing newline *)
        print_string payload;
        0)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a query file through the daemon, printing exactly what \
          'xq run' would.")
    Term.(
      const action $ socket_arg $ retries_arg $ retry_base_arg $ deadline_arg
      $ query_file $ input_file $ inline_flag $ strategy_opt $ parallel_opt
      $ batch_opt $ timeout_opt $ max_groups_opt $ max_mem_opt $ spill_at_opt
      $ rewrite_flag $ index_flag $ indent_flag $ stream_flag)

let stats_cmd =
  let action socket retries retry_base deadline =
    round_trip socket ~retries ~retry_base ~deadline Protocol.Stats
      ~on_ok:(fun p ->
        print_string p;
        0)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's counters, one per line.")
    Term.(
      const action $ socket_arg $ retries_arg $ retry_base_arg $ deadline_arg)

let ping_cmd =
  let action socket retries retry_base deadline =
    round_trip socket ~retries ~retry_base ~deadline Protocol.Ping
      ~on_ok:(fun p ->
        print_endline p;
        0)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Check the daemon is accepting connections.")
    Term.(
      const action $ socket_arg $ retries_arg $ retry_base_arg $ deadline_arg)

let () =
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success, including a clean SIGTERM drain.";
      Cmd.Exit.info 1
        ~doc:
          "on usage or connection errors (daemon unreachable after all \
           retries, or the socket is owned by a live server).";
      Cmd.Exit.info 2 ~doc:"on static query errors reported by the daemon.";
      Cmd.Exit.info 3 ~doc:"on dynamic errors reported by the daemon.";
      Cmd.Exit.info 4
        ~doc:
          "on resource trips reported by the daemon, including XQENG0007 \
           admission rejections that outlasted the client's retries.";
      Cmd.Exit.info 70
        ~doc:
          "when the supervisor gives up on a crash-looping worker \
           (--max-restarts crashes within --restart-window seconds).";
    ]
  in
  let info =
    Cmd.info "xq-server" ~version:"1.0.0" ~exits
      ~doc:
        "Resident query daemon: plan cache, shared document store, \
         per-query governors, admission control, graceful drain and \
         supervised restarts over a Unix socket."
  in
  exit
    (match
       Cmd.eval_value
         (Cmd.group info [ serve_cmd; once_cmd; run_cmd; stats_cmd; ping_cmd ])
     with
     | Ok (`Ok code) -> code
     | Ok (`Help | `Version) -> 0
     | Error (`Parse | `Term | `Exn) -> 1)
