(* Optimizer demo: the Table 1 experiment in miniature. The same grouping
   intent is expressed three ways — the implicit distinct-values idiom,
   its automatic rewrite, and the hand-written explicit group by — and
   all three are timed on the purchase-order workload.

   Run with:  dune exec examples/optimizer_demo.exe *)

let implicit =
  {|for $m in distinct-values(//order/lineitem/shipmode)
    let $items := for $i in //order/lineitem where $i/shipmode = $m return $i
    return <r>{$m, count($items)}</r>|}

let explicit =
  {|for $litem in //order/lineitem
    group by $litem/shipmode into $m
    nest $litem into $items
    return <r>{string($m), count($items)}</r>|}

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.0)

let () =
  let doc =
    Xq_workload.Orders.(generate (with_lineitems 4000 default))
  in

  (* show what the rewriter does to the implicit query *)
  let ast = Xq.parse implicit in
  let rewritten = Xq.Rewrite.Rewrite.rewrite_query ast in
  Printf.printf "rewrites found: %d\n\n"
    (Xq.Rewrite.Rewrite.count_rewrites ast.Xq.Lang.Ast.body);
  print_endline "--- implicit idiom, as written ---";
  print_endline (Xq.Lang.Pretty.query ast);
  print_endline "\n--- after the group-by rewrite ---";
  print_endline (Xq.Lang.Pretty.query rewritten);

  (* warm up, then time the three plans *)
  ignore (Xq.run doc explicit);
  let r_implicit, t_implicit = time (fun () -> Xq.run doc implicit) in
  let r_rewritten, t_rewritten = time (fun () -> Xq.run_rewritten doc implicit) in
  let r_explicit, t_explicit = time (fun () -> Xq.run doc explicit) in

  Printf.printf "\nimplicit:   %4d groups in %7.1f ms\n" (Xq.length r_implicit) t_implicit;
  Printf.printf "rewritten:  %4d groups in %7.1f ms\n" (Xq.length r_rewritten) t_rewritten;
  Printf.printf "explicit:   %4d groups in %7.1f ms\n" (Xq.length r_explicit) t_explicit;
  Printf.printf "\nspeedup from recognizing the grouping pattern: %.1fx\n"
    (t_implicit /. t_rewritten)
