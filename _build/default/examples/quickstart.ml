(* Quickstart: load a bibliography, run the paper's headline query (Q1)
   and a post-group filter query (Q4) through the public API.

   Run with:  dune exec examples/quickstart.exe *)

let bibliography =
  {|<bib>
  <book>
    <title>Transaction Processing</title>
    <author>Jim Gray</author><author>Andreas Reuter</author>
    <publisher>Morgan Kaufmann</publisher><year>1993</year>
    <price>59.00</price><discount>9.00</discount>
  </book>
  <book>
    <title>Readings in Database Systems</title>
    <author>Michael Stonebraker</author>
    <publisher>Morgan Kaufmann</publisher><year>1998</year>
    <price>65.00</price><discount>5.00</discount>
  </book>
  <book>
    <title>Understanding the New SQL</title>
    <author>Jim Melton</author><author>Alan Simon</author>
    <publisher>Morgan Kaufmann</publisher><year>1993</year>
    <price>154.95</price><discount>4.95</discount>
  </book>
  <book>
    <title>Print on Demand Pamphlet</title>
    <author>Anonymous</author>
    <year>1993</year><price>5.00</price><discount>0.00</discount>
  </book>
</bib>|}

(* Q1: average net price per publisher and year — the paper's motivating
   query, written with the explicit group by extension. Books without a
   publisher form their own group (the empty sequence is a distinct
   grouping value), which the classic distinct-values idiom loses. *)
let q1 =
  {|for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    order by string($p), string($y)
    return
      <group>
        {$p, $y}
        <avg-net-price>{avg($netprices)}</avg-net-price>
      </group>|}

(* Q4: post-group let/where — compute a group property once, filter and
   order by it. *)
let q4 =
  {|for $b in //book
    group by $b/publisher into $pub
    nest $b/price into $prices
    let $avgprice := avg($prices)
    where $avgprice > 80
    order by $avgprice descending
    return
      <expensive-publisher>
        {$pub}
        <avg-price>{$avgprice}</avg-price>
      </expensive-publisher>|}

let () =
  let doc = Xq.load_string bibliography in

  print_endline "Q1 — average net price per (publisher, year):";
  print_endline (Xq.to_xml ~indent:true (Xq.run doc q1));

  print_endline "\nQ4 — publishers with average price above 80:";
  print_endline (Xq.to_xml ~indent:true (Xq.run doc q4));

  (* The same engine exposes every layer: parse and inspect the AST… *)
  let ast = Xq.parse q1 in
  Xq.check ast;
  Printf.printf "\nQ1 parses to a FLWOR with a group by: %b\n"
    (match ast.Xq.Lang.Ast.body with
     | Xq.Lang.Ast.Flwor f -> Xq.Lang.Ast.is_grouped f
     | _ -> false)
