examples/rollup_cube.mli:
