examples/optimizer_demo.ml: Printf Sys Xq Xq_workload
