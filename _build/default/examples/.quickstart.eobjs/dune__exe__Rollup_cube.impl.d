examples/rollup_cube.ml: List Printf Xq Xq_workload
