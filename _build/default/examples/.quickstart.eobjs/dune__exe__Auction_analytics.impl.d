examples/auction_analytics.ml: List Printf Xq Xq_workload
