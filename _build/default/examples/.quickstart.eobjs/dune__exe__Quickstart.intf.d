examples/quickstart.mli:
