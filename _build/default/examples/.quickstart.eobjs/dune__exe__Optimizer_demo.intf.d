examples/optimizer_demo.mli:
