examples/quickstart.ml: Printf Xq
