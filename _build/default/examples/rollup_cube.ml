(* Advanced grouping (Section 5): rollup over a ragged category hierarchy
   (Q11) and a datacube (Q12), both expressed with user-defined
   "membership functions" and the ordinary group by — no further language
   extension needed.

   Run with:  dune exec examples/rollup_cube.exe *)

(* local:paths enumerates every category path a book belongs to; placing
   the book into the group of each path yields the rollup. *)
let q11 =
  {|declare function local:paths($cats as item()*) as xs:string* {
      for $c in $cats
      let $n := local-name($c)
      return ($n, for $p in local:paths($c/*) return concat($n, "/", $p))
    };
    for $b in //book
    for $c in local:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    order by string($category)
    return
      <result>
        <category>{$category}</category>
        <count>{count($prices)}</count>
        <avg-price>{avg($prices)}</avg-price>
      </result>|}

(* local:cube produces the powerset of the dimension sequence; grouping
   by the subset element computes all 2^n aggregation levels at once. *)
let q12 =
  {|declare function local:cube($dims as item()*) as item()* {
      if (empty($dims)) then <dims/>
      else
        let $rest := local:cube(subsequence($dims, 2))
        return ($rest, for $g in $rest return <dims>{$dims[1], $g/*}</dims>)
    };
    for $b in //book
    let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
    for $d in local:cube(($pub, $b/year))
    group by $d into $dims
    nest $b/price into $prices
    order by count($dims/*), string($dims)
    return
      <result>
        {$dims}
        <count>{count($prices)}</count>
        <avg-price>{avg($prices)}</avg-price>
      </result>|}

let () =
  let doc =
    Xq_workload.Bibliography.(
      generate
        { default with books = 60; publishers = 3; with_categories = true;
          seed = 11 })
  in

  print_endline "Q11 — rollup along the ragged category hierarchy:";
  print_endline (Xq.to_xml ~indent:true (Xq.run doc q11));

  print_endline "\nQ12 — datacube over (publisher, year):";
  let results = Xq.run doc q12 in
  Printf.printf "%d cube groups; the coarsest and finest levels:\n"
    (Xq.length results);
  (* the grand total (empty dims) comes first under the order by *)
  (match results with
   | grand :: _ -> print_endline (Xq.Xml.Serialize.item ~indent:true grand)
   | [] -> ());
  (match List.rev results with
   | finest :: _ -> print_endline (Xq.Xml.Serialize.item ~indent:true finest)
   | [] -> ())
