(* Sales analytics: the paper's Section 2/3/4 OLAP-style queries on a
   generated sales feed — multi-level aggregation (Q3), moving-window
   aggregation over ordered nests (Q8), and ranked monthly reports
   combining grouping with output numbering (Q10).

   Run with:  dune exec examples/sales_analytics.exe *)

(* Q3: for each year and state, compare state sales to the sales of the
   region containing the state. Two grouping levels: an outer group by
   (region, year) whose nest feeds an inner group by state. *)
let q3 =
  {|for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := sum( $region-sales/(quantity * price) )
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      let $state-sum := sum( $state-sales/(quantity * price) )
      order by $state
      return
        <summary>
          <year>{$year}</year>{$region, $state}
          <state-sales>{$state-sum}</state-sales>
          <region-sales>{$region-sum}</region-sales>
          <state-percentage>{round($state-sum * 100 div $region-sum)}</state-percentage>
        </summary>|}

(* Q8: within each region, order sales by timestamp, then for each sale
   report the total of the previous ten sales — the moving window falls
   out of `nest … order by` plus positional variables. *)
let q8 =
  {|for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by string($region)
    return
      <region name="{string($region)}" sales="{count($rs)}">
        {for $s1 at $i in $rs
         where $i <= 3
         return
           <sale>
             {$s1/timestamp}
             <sale-amount>{$s1/quantity * $s1/price}</sale-amount>
             <previous-ten-sales>
               {sum(for $s2 at $j in $rs
                    where $j < $i and $j >= $i - 10
                    return $s2/quantity * $s2/price)}
             </previous-ten-sales>
           </sale>}
      </region>|}

(* Q10: monthly sales ranked by region — `return at $rank` numbers the
   output stream after the descending order by. *)
let q10 =
  {|for $s in //sale
    group by year-from-dateTime($s/timestamp) into $year,
             month-from-dateTime($s/timestamp) into $month
    nest $s into $month-sales
    order by $year, $month
    return
      <monthly-report year="{$year}" month="{$month}">
        {for $ms in $month-sales
         group by $ms/region into $region
         nest $ms/quantity * $ms/price into $sales-amounts
         let $sum := sum($sales-amounts)
         order by $sum descending
         return at $rank
           <regional-results>
             <rank>{$rank}</rank>
             {$region}
             <total-sales>{$sum}</total-sales>
           </regional-results>}
      </monthly-report>|}

let () =
  let doc =
    Xq_workload.Sales.(generate { default with sales = 120; seed = 2005 })
  in

  print_endline "Q3 — state vs region yearly totals (first 3 summaries):";
  let summaries = Xq.run doc q3 in
  List.iteri
    (fun i item ->
      if i < 3 then print_endline (Xq.Xml.Serialize.item ~indent:true item))
    summaries;
  Printf.printf "(%d summaries total)\n" (Xq.length summaries);

  print_endline "\nQ8 — moving window of previous sales (3 per region shown):";
  print_endline (Xq.to_xml ~indent:true (Xq.run doc q8));

  print_endline "\nQ10 — monthly reports with ranked regions (first 2 months):";
  let reports = Xq.run doc q10 in
  List.iteri
    (fun i item ->
      if i < 2 then print_endline (Xq.Xml.Serialize.item ~indent:true item))
    reports;
  Printf.printf "(%d monthly reports total)\n" (Xq.length reports)
