(* Auction-site analytics over the XMark-flavoured workload: the
   document-centric query mix the paper's introduction motivates —
   grouping across deep hierarchies, reference joins, ranking, and a
   profiled plan for the heaviest query.

   Run with:  dune exec examples/auction_analytics.exe *)

let items_per_category =
  {|for $i in //item
    group by string($i/category) into $cat
    nest $i into $items
    order by count($items) descending, $cat
    return <category name="{$cat}">{count($items)}</category>|}

(* Reference join + grouping: revenue per seller across closed auctions,
   top five by total. *)
let top_sellers =
  {|for $ca in //closed_auction
    group by string($ca/seller/@person) into $seller
    nest $ca/price into $prices
    let $total := sum($prices)
    order by $total descending
    return at $rank
      <seller rank="{$rank}" id="{$seller}">
        <sales>{count($prices)}</sales>
        <revenue>{round($total)}</revenue>
      </seller>|}

(* Two grouping levels over references: per region, the most-bid-on
   item categories. *)
let bids_by_region_category =
  {|for $r in /site/regions/*
    return
      <region name="{local-name($r)}">
        {for $i in $r/item
         let $bids := //open_auction[itemref/@item = $i/@id]/bid
         group by string($i/category) into $cat
         nest count($bids) into $bid-counts
         let $total := sum($bid-counts)
         where $total > 0
         order by $total descending
         return <cat name="{$cat}">{$total}</cat>}
      </region>|}

(* Interest groups: people grouped by their profile interest; the empty
   group collects the profile-less. *)
let interest_groups =
  {|for $p in //person
    group by $p/profile/interest into $interest
    nest $p into $people
    order by count($people) descending, string($interest)
    return <group interest="{string($interest)}">{count($people)}</group>|}

let () =
  let doc = Xq_workload.Auction.generate Xq_workload.Auction.default in

  print_endline "Items per category:";
  print_endline (Xq.to_xml (Xq.run doc items_per_category));

  print_endline "\nTop sellers by closed-auction revenue (first 5):";
  let sellers = Xq.run doc top_sellers in
  List.iteri
    (fun i item ->
      if i < 5 then print_endline (Xq.Xml.Serialize.item ~indent:true item))
    sellers;

  print_endline "\nPeople by profile interest (empty group = no profile):";
  print_endline (Xq.to_xml (Xq.run doc interest_groups));

  print_endline "\nBids per region and category (profiled plan for region 1):";
  print_endline (Xq.to_xml ~indent:true (Xq.run doc bids_by_region_category));

  (* profile the reference-join query through the algebra *)
  let query = Xq.parse top_sellers in
  (match query.Xq.Lang.Ast.body with
   | Xq.Lang.Ast.Flwor f ->
     let plan = Xq.Algebra.Plan.of_flwor f in
     let ctx =
       Xq.Engine.Context.with_focus
         (Xq.Engine.Context.of_prolog query.Xq.Lang.Ast.prolog)
         { Xq.Engine.Context.item = Xq.Xdm.Item.Node doc; position = 1; size = 1 }
     in
     let _, stats = Xq.Algebra.Exec.run_profiled ctx plan in
     print_endline "\nOperator profile of the top-sellers query:";
     List.iter
       (fun (s : Xq.Algebra.Exec.operator_stat) ->
         Printf.printf "  %-20s %6d tuples %8.2f ms\n" s.Xq.Algebra.Exec.op_label
           s.Xq.Algebra.Exec.tuples_out s.Xq.Algebra.Exec.elapsed_ms)
       stats
   | _ -> ())
