(* Tests for the language front end: lexer, parser, pretty-printer,
   static checker. *)

open Xq_xdm
open Xq_lang
open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexer -------------------------------------------------------------- *)

let tokens_of src =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.next lx with
    | Lexer.T_eof -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let lexer_tests =
  [
    test "numbers: integer, decimal, double" (fun () ->
        match tokens_of "42 4.2 .5 4. 1e3 1.5E-2" with
        | [ T_int 42; T_dec a; T_dec b; T_dec c; T_dbl d; T_dbl e ] ->
          check_bool "4.2" true (a = 4.2);
          check_bool ".5" true (b = 0.5);
          check_bool "4." true (c = 4.0);
          check_bool "1e3" true (d = 1000.0);
          check_bool "1.5E-2" true (e = 0.015)
        | _ -> Alcotest.fail "wrong tokens");
    test "strings with escapes and entities" (fun () ->
        match tokens_of {|"a""b" 'c''d' "x&amp;y"|} with
        | [ T_string a; T_string b; T_string c ] ->
          check_string "doubled dq" "a\"b" a;
          check_string "doubled sq" "c'd" b;
          check_string "entity" "x&y" c
        | _ -> Alcotest.fail "wrong tokens");
    test "names with dashes and dots" (fun () ->
        match tokens_of "year-from-dateTime distinct-values a.b" with
        | [ T_name a; T_name b; T_name c ] ->
          check_string "fn1" "year-from-dateTime" a;
          check_string "fn2" "distinct-values" b;
          check_string "dotted" "a.b" c
        | _ -> Alcotest.fail "wrong tokens");
    test "qnames vs axis separators" (fun () ->
        match tokens_of "local:f child::x p:*" with
        | [ T_name f; T_name ax; T_axis_sep; T_name x; T_prefix_star p ] ->
          check_string "qname" "local:f" f;
          check_string "axis" "child" ax;
          check_string "test" "x" x;
          check_string "wildcard prefix" "p" p
        | _ -> Alcotest.fail "wrong tokens");
    test "operators" (fun () ->
        match tokens_of ":= // .. << >= != |" with
        | [ T_assign; T_dslash; T_ddot; T_ll; T_ge; T_ne; T_bar ] -> ()
        | _ -> Alcotest.fail "wrong tokens");
    test "variables" (fun () ->
        match tokens_of "$x $region-sales" with
        | [ T_var a; T_var b ] ->
          check_string "x" "x" a;
          check_string "dashed" "region-sales" b
        | _ -> Alcotest.fail "wrong tokens");
    test "nested comments skipped" (fun () ->
        match tokens_of "1 (: outer (: inner :) still :) 2" with
        | [ T_int 1; T_int 2 ] -> ()
        | _ -> Alcotest.fail "wrong tokens");
    test "syntax error carries position" (fun () ->
        match tokens_of "\n  #" with
        | _ -> Alcotest.fail "expected XPST0003"
        | exception Xerror.Error (Xerror.XPST0003, msg) ->
          check_bool "line 2" true
            (String.length msg >= 6 && String.sub msg 0 6 = "line 2"));
  ]

(* --- parser -------------------------------------------------------------- *)

let parse_expr = Parser.parse_expr

let parser_tests =
  [
    test "operator precedence: or < and < cmp < add < mul" (fun () ->
        match parse_expr "1 + 2 * 3 = 7 and 1 < 2 or 0" with
        | Ast.Or (Ast.And (Ast.General_cmp (Ast.Gen_eq, Ast.Arith (Ast.Add, _, Ast.Arith (Ast.Mul, _, _)), _), _), _) ->
          ()
        | _ -> Alcotest.fail "wrong tree");
    test "value vs general comparison" (fun () ->
        (match parse_expr "$a eq $b" with
         | Ast.Value_cmp (Ast.Val_eq, _, _) -> ()
         | _ -> Alcotest.fail "eq");
        match parse_expr "$a = $b" with
        | Ast.General_cmp (Ast.Gen_eq, _, _) -> ()
        | _ -> Alcotest.fail "=");
    test "keyword names usable as element steps" (fun () ->
        (* "order", "group", "div" are not reserved *)
        match parse_expr "//order/group" with
        | Ast.Slash (Ast.Slash (Ast.Slash (Ast.Root, _), Ast.Step (Ast.Child, Ast.Name_test o, _)), Ast.Step (Ast.Child, Ast.Name_test g, _)) ->
          check_string "order" "order" o.Xname.local;
          check_string "group" "group" g.Xname.local
        | _ -> Alcotest.fail "wrong tree");
    test "div as step then operator" (fun () ->
        match parse_expr "//div div 2" with
        | Ast.Arith (Ast.Div, _, Ast.Literal (Atomic.Int 2)) -> ()
        | _ -> Alcotest.fail "wrong tree");
    test "range and union" (fun () ->
        (match parse_expr "1 to 5" with
         | Ast.Range _ -> ()
         | _ -> Alcotest.fail "range");
        match parse_expr "$a | $b union $c" with
        | Ast.Union (Ast.Union _, _) -> ()
        | _ -> Alcotest.fail "union");
    test "predicates attach to steps and filters" (fun () ->
        (match parse_expr "//book[price > 50][2]" with
         | Ast.Slash (_, Ast.Step (Ast.Child, _, [ _; _ ])) -> ()
         | _ -> Alcotest.fail "step preds");
        match parse_expr "(1, 2, 3)[. mod 2 = 1]" with
        | Ast.Filter (Ast.Sequence _, [ _ ]) -> ()
        | _ -> Alcotest.fail "filter preds");
    test "attribute and parent steps" (fun () ->
        (match parse_expr "@id" with
         | Ast.Step (Ast.Attribute_axis, Ast.Name_test _, []) -> ()
         | _ -> Alcotest.fail "@");
        match parse_expr "../x" with
        | Ast.Slash (Ast.Step (Ast.Parent, Ast.Kind_node, []), _) -> ()
        | _ -> Alcotest.fail "..");
    test "explicit axes" (fun () ->
        match parse_expr "ancestor-or-self::node()" with
        | Ast.Step (Ast.Ancestor_or_self, Ast.Kind_node, []) -> ()
        | _ -> Alcotest.fail "axis step");
    test "kind tests" (fun () ->
        (match parse_expr "//text()" with
         | Ast.Slash (_, Ast.Step (Ast.Child, Ast.Kind_text, [])) -> ()
         | _ -> Alcotest.fail "text()");
        match parse_expr "self::element(book)" with
        | Ast.Step (Ast.Self, Ast.Kind_element (Some _), []) -> ()
        | _ -> Alcotest.fail "element(book)");
    test "flwor with all paper clauses" (fun () ->
        let q =
          parse_expr
            "for $b in //book group by $b/publisher into $p using local:eq \
             nest $b/price order by $b/price descending into $prices \
             let $n := count($prices) where $n > 1 order by $p return <r/>"
        in
        match q with
        | Ast.Flwor f ->
          check_int "clauses" 5 (List.length f.Ast.clauses);
          check_bool "grouped" true (Ast.is_grouped f)
        | _ -> Alcotest.fail "expected flwor");
    test "return at positional variable" (fun () ->
        match parse_expr "for $x in (1,2) return at $i $i" with
        | Ast.Flwor { return_at = Some "i"; _ } -> ()
        | _ -> Alcotest.fail "return at");
    test "for with positional at" (fun () ->
        match parse_expr "for $x at $i in (1,2) return $i" with
        | Ast.Flwor { clauses = [ Ast.For [ { positional = Some "i"; _ } ] ]; _ } -> ()
        | _ -> Alcotest.fail "for at");
    test "quantified expressions" (fun () ->
        match parse_expr "some $x in (1,2), $y in (3,4) satisfies $x < $y" with
        | Ast.Quantified (Ast.Some_quant, [ _; _ ], _) -> ()
        | _ -> Alcotest.fail "quantified");
    test "if then else" (fun () ->
        match parse_expr "if (1) then 2 else 3" with
        | Ast.If _ -> ()
        | _ -> Alcotest.fail "if");
    test "direct constructor with nested content" (fun () ->
        match parse_expr {|<a x="u{1}v"><b/>{2} t</a>|} with
        | Ast.Direct_elem d ->
          check_int "attrs" 1 (List.length d.Ast.attrs);
          check_int "content" 3 (List.length d.Ast.content)
        | _ -> Alcotest.fail "direct");
    test "boundary whitespace dropped, interior kept" (fun () ->
        match parse_expr "<a> <b/> x </a>" with
        | Ast.Direct_elem d -> begin
          match d.Ast.content with
          | [ Ast.Content_elem _; Ast.Content_text " x " ] -> ()
          | _ -> Alcotest.fail "content shape"
        end
        | _ -> Alcotest.fail "direct");
    test "escaped braces in constructors" (fun () ->
        match parse_expr "<a>{{literal}}</a>" with
        | Ast.Direct_elem { content = [ Ast.Content_text "{literal}" ]; _ } -> ()
        | _ -> Alcotest.fail "braces");
    test "computed constructors" (fun () ->
        (match parse_expr "element {\"x\"} {1}" with
         | Ast.Comp_elem _ -> ()
         | _ -> Alcotest.fail "element{}");
        (match parse_expr "element foo {1}" with
         | Ast.Comp_elem (Ast.Literal (Atomic.Str "foo"), _) -> ()
         | _ -> Alcotest.fail "element name");
        (match parse_expr "attribute size {7}" with
         | Ast.Comp_attr _ -> ()
         | _ -> Alcotest.fail "attribute");
        match parse_expr "text {\"x\"}" with
        | Ast.Comp_text _ -> ()
        | _ -> Alcotest.fail "text{}");
    test "prolog declarations" (fun () ->
        let q =
          Parser.parse_query
            "declare ordering unordered; \
             declare function local:f($x as item()*) as xs:integer { count($x) }; \
             declare variable $g := 10; \
             local:f((1, 2)) + $g"
        in
        check_int "functions" 1 (List.length q.Ast.prolog.Ast.functions);
        check_int "globals" 1 (List.length q.Ast.prolog.Ast.global_vars);
        check_bool "ordering" true (q.Ast.prolog.Ast.ordering = Some Ast.Unordered));
    test "group by syntax errors" (fun () ->
        (match Parser.parse_query "for $x in (1) group $x into $y return $y" with
         | _ -> Alcotest.fail "expected error"
         | exception Xerror.Error (Xerror.XPST0003, _) -> ());
        match Parser.parse_query "for $x in (1) group by $x return $x" with
        | _ -> Alcotest.fail "expected error (missing into)"
        | exception Xerror.Error (Xerror.XPST0003, _) -> ());
    test "unbalanced constructor is an error" (fun () ->
        match Parser.parse_query "<a><b></a></b>" with
        | _ -> Alcotest.fail "expected error"
        | exception Xerror.Error (Xerror.XPST0003, _) -> ());
    test "trailing garbage is an error" (fun () ->
        match Parser.parse_query "1 + 2 )" with
        | _ -> Alcotest.fail "expected error"
        | exception Xerror.Error (Xerror.XPST0003, _) -> ());
  ]

(* --- pretty-printer round-trips ------------------------------------------- *)

let roundtrip_queries =
  [
    "for $b in //book group by $b/publisher into $p, $b/year into $y nest \
     $b/price - $b/discount into $n return <g>{$p, $y, avg($n)}</g>";
    "for $s in //sale group by $s/region into $r nest $s order by \
     $s/timestamp into $rs return count($rs)";
    "for $b at $i in //book order by $b/price descending return at $rank \
     <r>{$rank, $i}</r>";
    "some $x in (1, 2) satisfies every $y in (3, 4) satisfies $x lt $y";
    "if (empty(//a)) then <none/> else (1 to 10)[. mod 2 = 0]";
    "declare function local:f($x as item()*) as item()* { $x[1] }; local:f((1, 2))";
    "$a/(quantity * price)";
    "//book[publisher = \"X\" and year = 1993]/title";
    "element {concat(\"a\", \"b\")} {attribute k {1}, text {\"v\"}}";
    "<out attr=\"{sum((1, 2))}\">{//x} tail</out>";
    "-(1 + 2) * 3";
    "$a instance of xs:integer+ and ($b castable as xs:date)";
    "($a treat as element(book)*) except $b";
    "(//a | //b) intersect //c";
    "\"5\" cast as xs:integer?";
    "for $x in (1, 2) count $c where $c > 1 return $c";
  ]

let pretty_tests =
  List.mapi
    (fun i q ->
      test (Printf.sprintf "roundtrip %d" i) (fun () ->
          let ast = Parser.parse_query q in
          let printed = Pretty.query ast in
          let reparsed = Parser.parse_query printed in
          if reparsed <> ast then
            Alcotest.failf "roundtrip mismatch:\n%s\n-- printed --\n%s" q printed))
    roundtrip_queries

(* --- static checks ---------------------------------------------------------- *)

let expect_static code src name =
  match Static.check_query (Parser.parse_query src) with
  | () -> Alcotest.failf "%s: expected %s" name (Xerror.code_to_string code)
  | exception Xerror.Error (actual, _) ->
    Alcotest.(check string)
      name
      (Xerror.code_to_string code)
      (Xerror.code_to_string actual)

let ok_static src name =
  match Static.check_query (Parser.parse_query src) with
  | () -> ()
  | exception Xerror.Error (c, msg) ->
    Alcotest.failf "%s: unexpected %s: %s" name (Xerror.code_to_string c) msg

let static_tests =
  [
    test "undefined variable" (fun () ->
        expect_static Xerror.XPST0008 "$nope" "undefined");
    test "unknown function" (fun () ->
        expect_static Xerror.XPST0017 "local:nothing(1)" "unknown fn");
    test "builtin wrong arity" (fun () ->
        expect_static Xerror.XPST0017 "count(1, 2)" "count/2");
    test "concat variadic accepted" (fun () ->
        ok_static "concat(\"a\", \"b\", \"c\", \"d\")" "concat/4");
    test "pre-group variable hidden after group by (3.2)" (fun () ->
        expect_static Xerror.XQST0094
          "for $b in //book let $x := 1 group by $b/year into $y return $x"
          "hidden after group");
    test "for variable hidden after group by" (fun () ->
        expect_static Xerror.XQST0094
          "for $b in //book group by $b/year into $y return $b/title"
          "for var hidden");
    test "grouping variable rebinding same name is fine (Q7)" (fun () ->
        ok_static
          "for $b in //book group by $b/publisher into $pub nest $b into $b \
           order by $pub return <p>{$b}</p>"
          "rebind");
    test "outer variables stay visible after group by" (fun () ->
        ok_static
          "for $o in //order return (for $l in $o/lineitem group by $l/a \
           into $a return ($o/orderkey, $a))"
          "outer visible");
    test "grouping expr may not reference its own grouping vars" (fun () ->
        expect_static Xerror.XPST0008
          "for $b in //book group by $b/x into $p, $p into $q return $q"
          "key scope");
    test "nest order-by sees pre-group variables" (fun () ->
        ok_static
          "for $s in //sale group by $s/region into $r nest $s order by \
           $s/timestamp into $rs return $rs"
          "nest order scope");
    test "post-group let and where see group vars" (fun () ->
        ok_static
          "for $b in //book group by $b/publisher into $p nest $b/price into \
           $prices let $a := avg($prices) where $a > 10 return $a"
          "post-group scope");
    test "return at variable in scope" (fun () ->
        ok_static "for $x in (1, 2) return at $i $i" "return at");
    test "using function must exist" (fun () ->
        expect_static Xerror.XPST0017
          "for $b in //book group by $b/author into $a using local:nope \
           return $a"
          "using unknown");
    test "using builtin deep-equal accepted" (fun () ->
        ok_static
          "for $b in //book group by $b/author into $a using deep-equal \
           return $a"
          "using builtin");
    test "clause order: two group by clauses rejected" (fun () ->
        expect_static Xerror.XPST0003
          "for $b in //book group by $b/x into $p group by $p into $q return 1"
          "two groups");
    test "clause order: for after group by rejected" (fun () ->
        expect_static Xerror.XPST0003
          "for $b in //book group by $b/x into $p for $c in //book return 1"
          "for after group");
    test "clause order: order by must be last" (fun () ->
        expect_static Xerror.XPST0003
          "for $b in //book order by $b where 1 return 1"
          "order then where");
    test "quantified binding scopes" (fun () ->
        ok_static "some $x in (1,2) satisfies $x = 1" "quantified";
        expect_static Xerror.XPST0008
          "(some $x in (1,2) satisfies $x = 1) and $x = 1"
          "quantified leak");
    test "function params in scope in body, not outside" (fun () ->
        ok_static "declare function local:f($x) { $x }; local:f(1)" "param scope";
        expect_static Xerror.XPST0008
          "declare function local:f($x) { $x }; $x"
          "param leak");
    test "recursive and mutually recursive functions" (fun () ->
        ok_static
          "declare function local:odd($n) { if ($n = 0) then false() else \
           local:even($n - 1) }; declare function local:even($n) { if ($n = \
           0) then true() else local:odd($n - 1) }; local:even(10)"
          "mutual recursion");
    test "global variables visible in order" (fun () ->
        ok_static "declare variable $a := 1; declare variable $b := $a + 1; $b"
          "globals";
        expect_static Xerror.XPST0008
          "declare variable $b := $a; declare variable $a := 1; $b"
          "forward global");
  ]

(* --- Fn_sigs / Builtins coverage ------------------------------------------- *)

let coverage_tests =
  [
    test "every declared builtin is implemented" (fun () ->
        List.iter
          (fun s ->
            check_bool
              (Printf.sprintf "fn:%s implemented" s.Fn_sigs.sig_name)
              true
              (Xq_engine.Builtins.implemented s.Fn_sigs.sig_name))
          Fn_sigs.all);
    test "accepts checks prefix and arity" (fun () ->
        check_bool "fn:count/1" true (Fn_sigs.accepts (Xname.of_string "fn:count") 1);
        check_bool "count/2" false (Fn_sigs.accepts (Xname.of_string "count") 2);
        check_bool "local:count/1" false
          (Fn_sigs.accepts (Xname.of_string "local:count") 1);
        check_bool "concat/9" true (Fn_sigs.accepts (Xname.of_string "concat") 9));
  ]

let suites =
  [
    ("lang.lexer", lexer_tests);
    ("lang.parser", parser_tests);
    ("lang.pretty", pretty_tests);
    ("lang.static", static_tests);
    ("lang.fn-sigs", coverage_tests);
  ]
