(* Realistic analytics use cases over the auction-site workload — the
   document-centric query mix the paper's introduction motivates, each
   expressed with the grouping extensions and checked either exactly (on
   a handcrafted fixture) or as invariants (on generated data). *)

open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* A small handcrafted site for exact expectations. *)
let site =
  {|<site>
  <regions>
    <europe>
      <item id="item0"><name>Clock</name><category>antiques</category><quantity>1</quantity></item>
      <item id="item1"><name>Radio</name><category>electronics</category><quantity>2</quantity></item>
    </europe>
    <asia>
      <item id="item2"><name>Vase</name><category>antiques</category><quantity>1</quantity></item>
    </asia>
  </regions>
  <people>
    <person id="person0"><name>Ada</name>
      <profile><interest>antiques</interest><income>60000</income></profile></person>
    <person id="person1"><name>Ben</name>
      <profile><interest>electronics</interest><income>30000</income></profile></person>
    <person id="person2"><name>Cyd</name></person>
  </people>
  <open_auctions>
    <open_auction id="open0"><itemref item="item0"/><seller person="person1"/>
      <initial>10.00</initial>
      <bid><bidder person="person0"/><date>2004-05-01T10:00:00</date><increase>5.00</increase></bid>
      <bid><bidder person="person2"/><date>2004-05-02T10:00:00</date><increase>7.50</increase></bid>
      <current>22.50</current></open_auction>
    <open_auction id="open1"><itemref item="item2"/><seller person="person0"/>
      <initial>50.00</initial>
      <current>50.00</current></open_auction>
  </open_auctions>
  <closed_auctions>
    <closed_auction id="closed0"><itemref item="item1"/><buyer person="person0"/>
      <seller person="person2"/><price>80.00</price><date>2004-04-01</date></closed_auction>
    <closed_auction id="closed1"><itemref item="item0"/><buyer person="person0"/>
      <seller person="person1"/><price>20.00</price><date>2004-03-15</date></closed_auction>
  </closed_auctions>
</site>|}

let exact_tests =
  [
    test "items per region (hierarchy is the grouping key)" (fun () ->
        check_query ~data:site
          {|for $r in /site/regions/*
            order by local-name($r)
            return concat(local-name($r), ":", count($r/item))|}
          "asia:1 europe:2" "regions");
    test "items per category via group by" (fun () ->
        check_query ~data:site
          {|for $i in //item
            group by string($i/category) into $c
            nest $i into $items
            order by $c
            return concat($c, "=", count($items))|}
          "antiques=2 electronics=1" "categories");
    test "buyer spending via grouping on attribute keys" (fun () ->
        check_query ~data:site
          {|for $ca in //closed_auction
            group by string($ca/buyer/@person) into $buyer
            nest $ca/price into $prices
            order by $buyer
            return concat($buyer, " spent ", sum($prices))|}
          "person0 spent 100" "spending");
    test "bidders ranked per auction (return at inside grouping)" (fun () ->
        check_query ~data:site
          {|for $a in //open_auction[bid]
            return
              <auction id="{string($a/@id)}">
                {for $b in $a/bid
                 order by number($b/increase) descending
                 return at $rank
                   <top>{$rank}:{string($b/bidder/@person)}</top>}
              </auction>|}
          {|<auction id="open0"><top>1:person2</top><top>2:person0</top></auction>|}
          "ranked bids");
    test "people without profiles form the empty group" (fun () ->
        check_query ~data:site
          {|for $p in //person
            group by $p/profile/interest into $interest
            nest $p/name into $names
            order by string($interest)
            return concat("[", string($interest), "] ", count($names))|}
          "[] 1 [antiques] 1 [electronics] 1" "optional profile");
    test "join items to their closed auctions through references" (fun () ->
        check_query ~data:site
          {|for $ca in //closed_auction
            let $item := //item[@id = $ca/itemref/@item]
            order by number($ca/price)
            return concat(string($item/name), "->", string($ca/price))|}
          "Clock->20.00 Radio->80.00" "reference join");
    test "auction activity summary mixes levels" (fun () ->
        check_query ~data:site
          {|let $open := count(//open_auction)
            let $closed := count(//closed_auction)
            let $bids := count(//bid)
            return concat($open, "/", $closed, "/", $bids)|}
          "2/2/2" "summary");
    test "grouping on derived month keys" (fun () ->
        check_query ~data:site
          {|for $ca in //closed_auction
            group by month-from-date(xs:date($ca/date)) into $m
            nest $ca/price into $prices
            order by $m
            return concat($m, ":", sum($prices))|}
          "3:20 4:80" "months");
    test "high-value bid windows via ordered nests" (fun () ->
        check_query ~data:site
          {|for $b in //open_auction/bid
            group by 1 into $all
            nest $b order by xs:dateTime($b/date) into $bs
            return string-join(for $x in $bs return string($x/increase), ",")|}
          "5.00,7.50" "time-ordered");
  ]

(* Invariant checks on generated data. *)
let generated = Xq_workload.Auction.generate Xq_workload.Auction.default

let run q = run_on generated q

let invariant_tests =
  [
    test "generated cardinalities" (fun () ->
        check_string "people" "120" (run "count(//person)");
        check_string "items" "200" (run "count(//item)");
        check_string "open" "80" (run "count(//open_auction)");
        check_string "closed" "40" (run "count(//closed_auction)"));
    test "every itemref resolves to an item" (fun () ->
        check_string "resolved" "true"
          (run
             "every $r in //itemref satisfies exists(//item[@id = $r/@item])"));
    test "every bidder is a registered person" (fun () ->
        check_string "resolved" "true"
          (run
             "every $b in //bid/bidder satisfies exists(//person[@id = $b/@person])"));
    test "items partition across regions" (fun () ->
        check_string "partition" "200"
          (run "string(sum(for $r in /site/regions/* return count($r/item)))"));
    test "category grouping covers all items" (fun () ->
        check_string "covered" "200"
          (run
             "string(sum(for $i in //item group by string($i/category) into \
              $c nest $i into $is return count($is)))"));
    test "per-category counts agree with predicate counts" (fun () ->
        List.iter
          (fun cat ->
            let by_group =
              run
                (Printf.sprintf
                   "for $i in //item group by string($i/category) into $c \
                    nest $i into $is where $c = \"%s\" return count($is)"
                   cat)
            in
            let by_pred =
              run (Printf.sprintf "count(//item[category = \"%s\"])" cat)
            in
            let by_group = if by_group = "" then "0" else by_group in
            check_string cat by_pred by_group)
          Xq_workload.Auction.category_names);
    test "top bidder rank 1 has the maximal bid count" (fun () ->
        let top =
          run
            {|(for $b in //bid
               group by string($b/bidder/@person) into $p
               nest $b into $bs
               order by count($bs) descending, $p
               return count($bs))[1]|}
        in
        let max_count =
          run
            {|string(max(for $b in //bid
                         group by string($b/bidder/@person) into $p
                         nest $b into $bs
                         return count($bs)))|}
        in
        check_string "top=max" max_count top);
    test "seller revenue sums equal total closed prices" (fun () ->
        let by_seller =
          run
            {|string(round(sum(
                for $ca in //closed_auction
                group by string($ca/seller/@person) into $s
                nest $ca/price into $ps
                return sum($ps))))|}
        in
        let total = run "string(round(sum(//closed_auction/price)))" in
        check_string "conservation" total by_seller);
    test "algebra execution agrees on a representative query" (fun () ->
        let q =
          {|for $i in //item
            group by string($i/category) into $c
            nest $i into $items
            order by count($items) descending, $c
            return <g>{$c, count($items)}</g>|}
        in
        let direct = Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:generated q) in
        let algebra =
          Xq_xml.Serialize.sequence
            (Xq_algebra.Exec.run_string ~context_node:generated q)
        in
        check_string "agree" direct algebra);
    test "index agrees on generated site" (fun () ->
        List.iter
          (fun q ->
            check_string q
              (Xq.to_xml (Xq.run generated q))
              (Xq.to_xml (Xq.run ~use_index:true generated q)))
          [ "count(//bid)";
            "string(round(sum(//closed_auction/price)))";
            "count(//person[profile])" ]);
    test "deterministic generation" (fun () ->
        check_bool "deep-equal" true
          (Xq_xdm.Deep_equal.nodes generated
             (Xq_workload.Auction.generate Xq_workload.Auction.default)));
  ]

let suites =
  [
    ("use-cases.auction-exact", exact_tests);
    ("use-cases.auction-generated", invariant_tests);
  ]
